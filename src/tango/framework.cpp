#include "tango/framework.h"

#include "common/logging.h"

namespace tango::framework {

const char* FrameworkKindName(FrameworkKind k) {
  switch (k) {
    case FrameworkKind::kTango:
      return "Tango";
    case FrameworkKind::kCeres:
      return "CERES";
    case FrameworkKind::kDsaco:
      return "DSACO";
    case FrameworkKind::kK8sNative:
      return "K8s-native";
  }
  return "?";
}

const char* LcAlgoName(LcAlgo a) {
  switch (a) {
    case LcAlgo::kDssLc:
      return "DSS-LC";
    case LcAlgo::kLoadGreedy:
      return "load-greedy";
    case LcAlgo::kK8sNative:
      return "k8s-native";
    case LcAlgo::kScoring:
      return "scoring";
  }
  return "?";
}

const char* BeAlgoName(BeAlgo a) {
  switch (a) {
    case BeAlgo::kDcgBe:
      return "DCG-BE";
    case BeAlgo::kGnnSac:
      return "GNN-SAC";
    case BeAlgo::kLoadGreedy:
      return "load-greedy";
    case BeAlgo::kK8sNative:
      return "k8s-native";
  }
  return "?";
}

namespace {

std::unique_ptr<k8s::LcScheduler> MakeLc(LcAlgo algo,
                                         const workload::ServiceCatalog* cat,
                                         std::uint64_t seed,
                                         const sched::DssLcConfig& dss) {
  switch (algo) {
    case LcAlgo::kDssLc: {
      sched::DssLcConfig cfg = dss;
      cfg.seed = seed;
      return std::make_unique<sched::DssLcScheduler>(cat, cfg);
    }
    case LcAlgo::kLoadGreedy:
      return std::make_unique<sched::LoadGreedyLcScheduler>(cat);
    case LcAlgo::kK8sNative:
      return std::make_unique<sched::KubeNativeLcScheduler>(cat);
    case LcAlgo::kScoring:
      return std::make_unique<sched::ScoringLcScheduler>(cat);
  }
  return nullptr;
}

std::unique_ptr<k8s::BeScheduler> MakeBe(BeAlgo algo,
                                         const workload::ServiceCatalog* cat,
                                         std::uint64_t seed,
                                         const sched::LearnedBeConfig& be) {
  switch (algo) {
    case BeAlgo::kDcgBe:
      return sched::MakeDcgBe(cat, gnn::EncoderKind::kGraphSage, seed, be);
    case BeAlgo::kGnnSac:
      return sched::MakeGnnSac(cat, seed, be);
    case BeAlgo::kLoadGreedy:
      return std::make_unique<sched::LoadGreedyBeScheduler>(cat);
    case BeAlgo::kK8sNative:
      return std::make_unique<sched::KubeNativeBeScheduler>(cat);
  }
  return nullptr;
}

}  // namespace

Assembly InstallPair(k8s::EdgeCloudSystem& system, LcAlgo lc, BeAlgo be,
                     bool with_hrm, const FrameworkOptions& opts) {
  Assembly a;
  const workload::ServiceCatalog* cat = &system.catalog();
  a.lc_ = MakeLc(lc, cat, opts.seed, opts.dss);
  a.be_ = MakeBe(be, cat, opts.seed + 1, opts.be);
  system.SetLcScheduler(a.lc_.get());
  system.SetBeScheduler(a.be_.get());
  if (with_hrm) {
    a.hrm_policy_ = std::make_unique<hrm::HrmAllocationPolicy>(cat, opts.hrm);
    system.SetAllocationPolicy(a.hrm_policy_.get());
    if (opts.enable_reassurance) {
      a.reassurer_ = std::make_unique<hrm::Reassurer>(
          &system, a.hrm_policy_.get(), opts.reassurance);
    }
  }
  a.description_ = std::string("LC=") + LcAlgoName(lc) + " BE=" +
                   BeAlgoName(be) + (with_hrm ? " +HRM" : " native");
  return a;
}

Assembly InstallFramework(k8s::EdgeCloudSystem& system, FrameworkKind kind,
                          const FrameworkOptions& opts) {
  const workload::ServiceCatalog* cat = &system.catalog();
  switch (kind) {
    case FrameworkKind::kTango:
      return InstallPair(system, LcAlgo::kDssLc, BeAlgo::kDcgBe,
                         /*with_hrm=*/true, opts);
    case FrameworkKind::kCeres: {
      Assembly a = InstallPair(system, LcAlgo::kK8sNative, BeAlgo::kK8sNative,
                               /*with_hrm=*/false, opts);
      a.alloc_ = std::make_unique<sched::CeresAllocationPolicy>(cat);
      system.SetAllocationPolicy(a.alloc_.get());
      a.description_ = "CERES (elastic local alloc, native dispatch)";
      return a;
    }
    case FrameworkKind::kDsaco: {
      Assembly a = InstallPair(system, LcAlgo::kScoring, BeAlgo::kGnnSac,
                               /*with_hrm=*/false, opts);
      // DSACO schedules well but performs no mixed-workload resource
      // management: containers share the node via plain proportional
      // weights (vanilla cgroup shares), class-blind and instantaneous.
      sched::CeresConfig plain;
      plain.scaling_latency = 0;
      a.alloc_ = std::make_unique<sched::CeresAllocationPolicy>(cat, plain);
      system.SetAllocationPolicy(a.alloc_.get());
      a.description_ = "DSACO (SAC scheduling, unmanaged elastic alloc)";
      return a;
    }
    case FrameworkKind::kK8sNative:
      return InstallPair(system, LcAlgo::kK8sNative, BeAlgo::kK8sNative,
                         /*with_hrm=*/false, opts);
  }
  TANGO_CHECK(false, "unknown framework kind");
  return Assembly{};
}

}  // namespace tango::framework
