// Tango framework assembly (Figure 3): given an EdgeCloudSystem, install the
// five modules — resource usage regulations + D-VPA (the HRM allocation
// policy), the QoS re-assurer, the LC traffic dispatcher (DSS-LC), and the
// BE traffic dispatcher (DCG-BE) — and keep them alive for the run.
//
// The same assembler also builds the end-to-end baselines of §7.3:
// CERES (local elastic allocation, k8s-native dispatch) and DSACO
// (SAC-driven scheduling, native fixed allocation), plus plain K8s.
#pragma once

#include <memory>
#include <string>

#include "hrm/reassurance.h"
#include "k8s/system.h"
#include "sched/be_baselines.h"
#include "sched/ceres.h"
#include "sched/dss_lc.h"
#include "sched/lc_baselines.h"
#include "sched/learned_be.h"

namespace tango::framework {

enum class FrameworkKind {
  kTango,      // HRM + re-assurance + DSS-LC + DCG-BE
  kCeres,      // CERES elastic allocation + k8s-native dispatch
  kDsaco,      // native allocation + scoring LC + GNN-SAC BE
  kK8sNative,  // native allocation + round-robin dispatch
};
const char* FrameworkKindName(FrameworkKind k);

/// Names of the pluggable algorithm choices for the pairing study (Fig. 12).
enum class LcAlgo { kDssLc, kLoadGreedy, kK8sNative, kScoring };
enum class BeAlgo { kDcgBe, kGnnSac, kLoadGreedy, kK8sNative };
const char* LcAlgoName(LcAlgo a);
const char* BeAlgoName(BeAlgo a);

struct FrameworkOptions {
  /// HRM knobs.
  hrm::HrmConfig hrm{};
  hrm::ReassuranceConfig reassurance{};
  bool enable_reassurance = true;
  /// DSS-LC knobs (edge capacity, split policy, per-type fan-out threads).
  /// The seed field is overridden by `seed` below.
  sched::DssLcConfig dss{};
  /// Learned BE scheduler knobs (granularity, reward weight, exploration).
  sched::LearnedBeConfig be{};
  /// Learner seeds (deterministic experiments).
  std::uint64_t seed = 7;
};

/// Owns every component installed on a system. Destroy after the run.
class Assembly {
 public:
  Assembly() = default;
  ~Assembly() = default;
  Assembly(Assembly&&) = default;
  Assembly& operator=(Assembly&&) = default;

  k8s::LcScheduler* lc_scheduler() { return lc_.get(); }
  k8s::BeScheduler* be_scheduler() { return be_.get(); }
  hrm::HrmAllocationPolicy* hrm_policy() { return hrm_policy_.get(); }
  hrm::Reassurer* reassurer() { return reassurer_.get(); }
  const std::string& description() const { return description_; }

 private:
  friend Assembly InstallFramework(k8s::EdgeCloudSystem&, FrameworkKind,
                                   const FrameworkOptions&);
  friend Assembly InstallPair(k8s::EdgeCloudSystem&, LcAlgo, BeAlgo, bool,
                              const FrameworkOptions&);
  std::unique_ptr<k8s::LcScheduler> lc_;
  std::unique_ptr<k8s::BeScheduler> be_;
  std::unique_ptr<k8s::AllocationPolicy> alloc_;
  std::unique_ptr<hrm::HrmAllocationPolicy> hrm_policy_;
  std::unique_ptr<hrm::Reassurer> reassurer_;
  std::string description_;
};

/// Configure `system` as one of the §7.3 end-to-end frameworks.
Assembly InstallFramework(k8s::EdgeCloudSystem& system, FrameworkKind kind,
                          const FrameworkOptions& opts = {});

/// Configure `system` with an arbitrary LC/BE algorithm pair (Fig. 12).
/// `with_hrm` selects the allocation policy (HRM vs native).
Assembly InstallPair(k8s::EdgeCloudSystem& system, LcAlgo lc, BeAlgo be,
                     bool with_hrm, const FrameworkOptions& opts = {});

}  // namespace tango::framework
