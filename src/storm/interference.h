// Co-location interference model.
//
// The paper's premise — BE co-location endangers LC QoS — is modeled
// structurally by HRM's grant compression, but a compressed grant is the
// only coupling: on real nodes, co-runners also contend for memory
// bandwidth and last-level cache, inflating execution time even when the
// victim keeps its full CPU grant (the sensitivity-aware manager of
// *Squeezing Edge Performance*). This module supplies that coupling as a
// per-service sensitivity profile: each co-runner *generates* pressure
// (membw/LLC intensity per granted core) and each victim *responds* to the
// normalized pressure vector with an execution-time inflation factor
//
//   inflate(s, P) = 1 + Σ_r sens_r(s) · P_r / (1 + P_r)
//
// — saturating, ≥ 1, and monotone nondecreasing in every pressure
// component for nonnegative sensitivities (CheckMonotone grid-audits both
// properties). The model is applied at the k8s and shard execution layers
// behind a pointer that defaults to nullptr: disabled runs execute the
// exact original float expressions and stay byte-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "workload/service.h"

namespace tango::storm {

/// What a service does to its co-runners, and how it suffers from them.
/// Intensities are abstract pressure units per granted core; sensitivities
/// are the fractional slowdown at saturation of one pressure axis.
struct SensitivityProfile {
  // Pressure generated per granted core.
  double membw_intensity = 0.0;
  double llc_intensity = 0.0;
  // Victim response per normalized pressure axis (must be >= 0).
  double cpu_sensitivity = 0.0;
  double membw_sensitivity = 0.0;
  double llc_sensitivity = 0.0;
};

/// Normalized co-runner pressure seen by one victim (own contribution
/// excluded): cpu = co-runner grants / node capacity; membw/llc =
/// co-runner intensity·cores / node cores.
struct PressureVec {
  double cpu = 0.0;
  double membw = 0.0;
  double llc = 0.0;
};

class InterferenceModel {
 public:
  InterferenceModel() = default;

  /// Paper-flavored defaults over a catalog: BE services (analytics,
  /// training, transcoding, ...) are bandwidth/LLC-intensive aggressors;
  /// LC services are the sensitive victims.
  static InterferenceModel Standard(const workload::ServiceCatalog& catalog);

  void SetProfile(ServiceId service, const SensitivityProfile& profile);
  const SensitivityProfile& Profile(ServiceId service) const;

  /// Execution-time inflation for `victim` under `pressure`; always >= 1,
  /// monotone nondecreasing in each component.
  double Inflation(ServiceId victim, const PressureVec& pressure) const;

  /// Grid-audit the curve over every profiled service: Inflation >= 1
  /// everywhere and nondecreasing along each pressure axis. Used by the
  /// TANGO_AUDIT wiring and the unit tests.
  bool CheckMonotone() const;

  int size() const { return static_cast<int>(profiles_.size()); }

 private:
  std::vector<SensitivityProfile> profiles_;  // indexed by ServiceId
  SensitivityProfile default_;
};

}  // namespace tango::storm
