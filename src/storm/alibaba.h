// Alibaba cluster-trace ingestion.
//
// Reads the 2018 Alibaba cluster-data batch task table (batch_task.csv,
// headerless: task_name,instance_num,job_name,task_type,status,start_time,
// end_time,plan_cpu,plan_mem) and maps it onto the repo's request model
// behind the workload/trace_io conventions (same Trace output, same
// TraceParseError with 1-based line numbers):
//
//   - rows with status "Terminated" become requests; others are skipped
//     (unfinished rows carry 0 timestamps in the public trace);
//   - short tasks (duration <= lc_duration_cutoff_s) map onto LC services —
//     the trace's interactive/online tier — and long ones onto BE, each
//     picked stably by task-name hash within the class pool;
//   - the origin cluster is a stable job-name hash, so one job's tasks
//     co-locate the way the trace's machine affinity does;
//   - arrivals are start_time normalized to the earliest accepted row and
//     compressed by `intensity` — with DownsampleTrace, the same file
//     drives 1x to 1000x arrival intensity.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "workload/service.h"
#include "workload/trace.h"
#include "workload/trace_io.h"

namespace tango::storm {

struct AlibabaConfig {
  const workload::ServiceCatalog* catalog = nullptr;
  int num_clusters = 4;
  /// Tasks at or under this duration map onto LC services; longer batch
  /// rows map onto BE.
  double lc_duration_cutoff_s = 60.0;
  /// Virtual-time compression: 10 replays the trace at 10x arrival
  /// intensity. Must be > 0.
  double intensity = 1.0;
  /// Row keep-fraction in (0, 1], drawn deterministically per seed before
  /// compression — pair `sample = 1/k` with `intensity = k` to hold the
  /// request count while multiplying burstiness.
  double sample = 1.0;
  std::uint64_t seed = 1;
};

/// Parse a batch_task table. Returns nullopt and fills `error` (when
/// non-null) on malformed rows; the trace comes back arrival-sorted with
/// sequential ids, like workload::ReadTraceCsv.
std::optional<workload::Trace> ReadAlibabaBatchCsv(
    std::istream& in, const AlibabaConfig& cfg,
    workload::TraceParseError* error = nullptr);
std::optional<workload::Trace> ReadAlibabaBatchCsvFile(
    const std::string& path, const AlibabaConfig& cfg,
    workload::TraceParseError* error = nullptr);

/// Compress arrivals by `factor` (> 0): factor k multiplies the arrival
/// intensity by k. Re-sorts nothing — scaling preserves order.
workload::Trace RescaleIntensity(workload::Trace trace, double factor);

/// Deterministically keep ~`keep_fraction` of the requests (ids
/// reassigned sequentially).
workload::Trace DownsampleTrace(const workload::Trace& trace,
                                double keep_fraction, std::uint64_t seed);

/// A small synthetic batch_task.csv in the v2018 column order — test and
/// bench input standing in for the real (multi-GB) trace file.
std::string SyntheticAlibabaCsv(int rows, std::uint64_t seed);

}  // namespace tango::storm
