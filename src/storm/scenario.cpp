#include "storm/scenario.h"

#include <utility>
#include <vector>

#include "common/logging.h"

namespace tango::storm {

namespace {
// Per-kind salt for the thinning stream so the same (seed, cluster) yields
// unrelated accept/reject paths across scenario families.
constexpr std::uint64_t KindSalt(ScenarioKind kind) {
  return 0x53544F00ULL + static_cast<std::uint64_t>(kind);
}

std::unique_ptr<ScenarioSource> Shaped(const StreamConfig& base_cfg,
                                       const Envelope& env,
                                       std::uint64_t thin_seed) {
  StreamConfig sc = base_cfg;
  // The base runs at the envelope's peak; Modulate thins back down, so the
  // effective rate is rate_rps × env(t).
  sc.rate_rps = base_cfg.rate_rps * env.MaxValue();
  auto base = std::make_unique<PoissonSource>(sc);
  return std::make_unique<Modulate>(std::move(base), env, thin_seed);
}
}  // namespace

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kSteady:
      return "steady";
    case ScenarioKind::kFlashCrowd:
      return "flash-crowd";
    case ScenarioKind::kDiurnal:
      return "diurnal";
    case ScenarioKind::kFailover:
      return "failover";
    case ScenarioKind::kMobility:
      return "mobility";
  }
  return "?";
}

std::unique_ptr<ScenarioSource> BuildClusterStream(ScenarioKind kind,
                                                   const ScenarioConfig& cfg,
                                                   ClusterId cluster) {
  TANGO_CHECK(cfg.catalog != nullptr, "ScenarioConfig needs a catalog");
  TANGO_CHECK(cluster.value >= 0 && cluster.value < cfg.num_clusters,
              "cluster out of range");
  StreamConfig sc;
  sc.catalog = cfg.catalog;
  sc.origin = cluster;
  sc.rate_rps = cfg.rps_per_cluster;
  sc.lc_fraction = cfg.lc_fraction;
  sc.horizon = cfg.horizon;
  sc.seed = cfg.seed;
  const std::uint64_t thin_seed =
      DeriveStreamSeed(cfg.seed, cluster.value, KindSalt(kind));
  const double ring_pos = static_cast<double>(cluster.value) /
                          static_cast<double>(cfg.num_clusters);

  switch (kind) {
    case ScenarioKind::kSteady:
      return std::make_unique<MmppSource>(sc, cfg.mmpp);

    case ScenarioKind::kFlashCrowd: {
      if (cluster.value >= cfg.spike_clusters) {
        return std::make_unique<PoissonSource>(sc);
      }
      Envelope env;
      env.kind = Envelope::Kind::kSpike;
      env.t0 = cfg.spike_at;
      env.ramp = cfg.spike_ramp;
      env.t1 = cfg.spike_at + cfg.spike_ramp + cfg.spike_hold;
      env.decay = cfg.spike_decay;
      env.mult = cfg.spike_mult;
      return Shaped(sc, env, thin_seed);
    }

    case ScenarioKind::kDiurnal: {
      Envelope env;
      env.kind = Envelope::Kind::kDiurnal;
      env.period = cfg.diurnal_period;
      env.amplitude = cfg.diurnal_amplitude;
      env.phase = ring_pos;
      return Shaped(sc, env, thin_seed);
    }

    case ScenarioKind::kFailover: {
      Envelope env;
      env.kind = Envelope::Kind::kWindow;
      env.t0 = cfg.failover_at;
      env.t1 = cfg.failover_at + cfg.failover_for;
      if (cluster == cfg.failover_cluster) {
        // Only the mid-session residual keeps arriving at the failed
        // region.
        env.mult = cfg.failover_residual;
      } else if (cfg.num_clusters > 1) {
        // The re-homed mass spreads evenly over the survivors.
        env.mult = 1.0 + (1.0 - cfg.failover_residual) /
                             static_cast<double>(cfg.num_clusters - 1);
      } else {
        env.mult = 1.0;
      }
      return Shaped(sc, env, thin_seed);
    }

    case ScenarioKind::kMobility: {
      Envelope env;
      env.kind = Envelope::Kind::kDriftWave;
      env.period = cfg.drift_period;
      env.phase = ring_pos;
      env.floor = cfg.drift_floor;
      return Shaped(sc, env, thin_seed);
    }
  }
  return nullptr;
}

std::unique_ptr<ScenarioSource> BuildScenario(ScenarioKind kind,
                                              const ScenarioConfig& cfg) {
  std::vector<std::unique_ptr<ScenarioSource>> parts;
  parts.reserve(static_cast<std::size_t>(cfg.num_clusters));
  for (int c = 0; c < cfg.num_clusters; ++c) {
    parts.push_back(BuildClusterStream(kind, cfg, ClusterId{c}));
  }
  return std::make_unique<Superpose>(std::move(parts));
}

}  // namespace tango::storm
