// TangoStorm: streaming scenario sources.
//
// A ScenarioSource is a pull-based, arrival-ordered request stream: each
// NextRequest() call produces the next request of the scenario without ever
// materializing a request vector. Generators allocate whatever they need at
// construction (service pools, child sources, merge heads) and are
// allocation-free in steady state — tests/allocation_test.cpp holds that
// with a counting operator new, and the `storm-stream` lint rule bans
// materialized request vectors in Next* paths.
//
// Determinism contract: every source draws from its own seeded Rng, derived
// as a pure function of (scenario seed, cluster id, stream salt) — never
// from global state and never order-dependently from a shared stream. A
// cluster's stream is therefore byte-identical no matter which shard (or
// how many superposed siblings) pull it, which is what lets the sharded
// engine run one stream per cluster and still match the monolithic run.
#pragma once

#include <cstdint>

#include "workload/trace.h"

namespace tango::scope {
class MetricRegistry;
}  // namespace tango::scope

namespace tango::storm {

/// Pull interface over an arrival-ordered request stream.
class ScenarioSource {
 public:
  virtual ~ScenarioSource() = default;
  ScenarioSource() = default;
  ScenarioSource(const ScenarioSource&) = delete;
  ScenarioSource& operator=(const ScenarioSource&) = delete;

  /// Produce the next request, in nondecreasing arrival order. Returns
  /// false when the stream is exhausted (past its horizon). Emitted
  /// requests carry service/origin/arrival/work_scale; ids are assigned by
  /// the consumer (Drain) because interleaved streams cannot pre-number.
  virtual bool NextRequest(workload::Request* out) = 0;
};

/// Derive a child stream seed as a pure function of its coordinates (no
/// sequential forking — stream identity must not depend on construction
/// order). splitmix64 finalizer over the mixed words.
std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::int64_t cluster,
                               std::uint64_t salt);

/// Exhaust `source` into `out` (appending), then sort by arrival and assign
/// sequential ids 0..n-1 — the one materialization point, at the harness
/// boundary where k8s::EdgeCloudSystem wants a whole Trace. Returns the
/// number of requests drained. When `metrics` is non-null the call bumps
/// the `storm.drained` counter and observes per-drain batch size on the
/// `storm.drain_batch` histogram (generator-throughput accounting).
std::size_t Drain(ScenarioSource& source, workload::Trace* out,
                  scope::MetricRegistry* metrics = nullptr);

}  // namespace tango::storm
