#include "storm/alibaba.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "storm/source.h"

namespace tango::storm {

namespace {

void SetError(workload::TraceParseError* error, int line,
              std::string message) {
  if (error != nullptr) {
    error->line = line;
    error->message = std::move(message);
  }
}

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return h;
}

/// Split a CSV row; returns false unless exactly 9 columns.
bool SplitRow(const std::string& line, std::vector<std::string>* cols) {
  cols->clear();
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      cols->push_back(line.substr(start));
      break;
    }
    cols->push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return cols->size() == 9;
}

/// Full-string numeric parse — trailing junk ("1.5xyz") is a failure, the
/// same contract workload/trace_io.cpp enforces on its rows.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  std::size_t used = 0;
  try {
    *out = std::stod(s, &used);
  } catch (...) {
    return false;
  }
  return used == s.size() && std::isfinite(*out);
}

struct Row {
  double start_s = 0.0;
  double duration_s = 0.0;
  double plan_cpu = 0.0;
  std::uint64_t task_hash = 0;
  std::uint64_t job_hash = 0;
};

}  // namespace

std::optional<workload::Trace> ReadAlibabaBatchCsv(
    std::istream& in, const AlibabaConfig& cfg,
    workload::TraceParseError* error) {
  TANGO_CHECK(cfg.catalog != nullptr, "AlibabaConfig needs a catalog");
  TANGO_CHECK(cfg.num_clusters > 0, "AlibabaConfig needs clusters");
  if (cfg.intensity <= 0.0) {
    SetError(error, 0, "intensity must be > 0");
    return std::nullopt;
  }
  const std::vector<ServiceId> lc_pool = cfg.catalog->LcServices();
  const std::vector<ServiceId> be_pool = cfg.catalog->BeServices();
  TANGO_CHECK(!lc_pool.empty() || !be_pool.empty(),
              "catalog has no services");

  std::vector<Row> rows;
  std::vector<std::string> cols;
  std::string line;
  int lineno = 0;
  double min_start = 0.0;
  bool any = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    // The public files are headerless; tolerate a pasted header line.
    if (lineno == 1 && line.rfind("task_name", 0) == 0) continue;
    if (!SplitRow(line, &cols)) {
      SetError(error, lineno,
               "malformed row (want 9 columns): " + line);
      return std::nullopt;
    }
    const std::string& status = cols[4];
    if (status != "Terminated") continue;  // unfinished rows carry 0 times
    double instances = 0.0;
    double start_s = 0.0;
    double end_s = 0.0;
    double plan_cpu = 0.0;
    if (!ParseDouble(cols[1], &instances) ||
        !ParseDouble(cols[5], &start_s) || !ParseDouble(cols[6], &end_s) ||
        !ParseDouble(cols[7], &plan_cpu)) {
      SetError(error, lineno, "junk numeric field: " + line);
      return std::nullopt;
    }
    if (start_s < 0.0 || end_s < start_s || plan_cpu <= 0.0 ||
        instances < 0.0) {
      SetError(error, lineno, "out-of-range field: " + line);
      return std::nullopt;
    }
    Row r;
    r.start_s = start_s;
    r.duration_s = end_s - start_s;
    r.plan_cpu = plan_cpu;
    r.task_hash = Fnv1a(cols[0]);
    r.job_hash = Fnv1a(cols[2]);
    rows.push_back(r);
    min_start = any ? std::min(min_start, start_s) : start_s;
    any = true;
  }
  if (!any) {
    SetError(error, lineno, "no Terminated rows");
    return std::nullopt;
  }

  Rng sampler(DeriveStreamSeed(cfg.seed, 0, 0x414C4942ULL));  // "ALIB"
  workload::Trace trace;
  trace.reserve(rows.size());
  for (const Row& r : rows) {
    const bool keep = sampler.Bernoulli(cfg.sample);  // fixed consumption
    if (!keep) continue;
    workload::Request req;
    const bool lc =
        r.duration_s <= cfg.lc_duration_cutoff_s && !lc_pool.empty();
    const auto& pool = lc || be_pool.empty() ? lc_pool : be_pool;
    req.service = pool[r.task_hash % pool.size()];
    req.origin = ClusterId{static_cast<std::int32_t>(
        r.job_hash % static_cast<std::uint64_t>(cfg.num_clusters))};
    req.arrival = static_cast<SimTime>(
        (r.start_s - min_start) * 1e6 / cfg.intensity);
    // plan_cpu is in percent of one core (100 = one core); clamp to the
    // bounded range the synthetic generators use.
    req.work_scale = std::clamp(r.plan_cpu / 100.0, 0.6, 3.0);
    trace.push_back(req);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const workload::Request& a, const workload::Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].id = RequestId{static_cast<std::int32_t>(i)};
  }
  return trace;
}

std::optional<workload::Trace> ReadAlibabaBatchCsvFile(
    const std::string& path, const AlibabaConfig& cfg,
    workload::TraceParseError* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, 0, "cannot open " + path);
    return std::nullopt;
  }
  return ReadAlibabaBatchCsv(in, cfg, error);
}

workload::Trace RescaleIntensity(workload::Trace trace, double factor) {
  TANGO_CHECK(factor > 0.0, "intensity factor must be > 0");
  for (auto& r : trace) {
    r.arrival = static_cast<SimTime>(
        static_cast<double>(r.arrival) / factor);
  }
  return trace;
}

workload::Trace DownsampleTrace(const workload::Trace& trace,
                                double keep_fraction, std::uint64_t seed) {
  Rng rng(DeriveStreamSeed(seed, 0, 0x444F574EULL));  // "DOWN"
  workload::Trace out;
  out.reserve(trace.size());
  for (const auto& r : trace) {
    if (rng.Bernoulli(keep_fraction)) out.push_back(r);
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].id = RequestId{static_cast<std::int32_t>(i)};
  }
  return out;
}

std::string SyntheticAlibabaCsv(int rows, std::uint64_t seed) {
  Rng rng(DeriveStreamSeed(seed, 0, 0x53594E54ULL));  // "SYNT"
  std::ostringstream out;
  double t = 100000.0;
  for (int i = 0; i < rows; ++i) {
    t += rng.Exponential(2.0);  // ~2 tasks/second of trace time
    const int job = static_cast<int>(rng.UniformInt(0, rows / 4 + 1));
    const bool online = rng.Bernoulli(0.7);
    const double dur =
        online ? rng.Uniform(1.0, 45.0) : rng.Uniform(120.0, 3000.0);
    const double cpu = online ? rng.Uniform(50.0, 150.0)
                              : rng.Uniform(100.0, 400.0);
    out << "task_" << i << ',' << rng.UniformInt(1, 8) << ",j_" << job
        << ",A,Terminated," << t << ',' << t + dur << ',' << cpu << ','
        << rng.Uniform(0.1, 0.9) << "\n";
    if (i % 17 == 5) {
      // The real table interleaves unfinished rows with zeroed times;
      // the parser must skip them.
      out << "task_w" << i << ",1,j_" << job << ",A,Waiting,0,0," << cpu
          << ",0.5\n";
    }
  }
  return out.str();
}

}  // namespace tango::storm
