// TangoStorm scenario families.
//
// Five families, all built from the same parts: per-cluster base streams
// (Poisson or MMPP) shaped by per-cluster envelopes, superposed into one
// arrival-ordered system stream:
//
//   kSteady     — MMPP base load per cluster (bursty open-loop baseline)
//   kFlashCrowd — multiplicative spike with linear ramp and exponential
//                 decay on the hotspot clusters
//   kDiurnal    — per-cluster phase-shifted sinusoid (time-zone waves)
//   kFailover   — a regional outage window: the failed cluster's request
//                 mass is re-homed to the surviving clusters for the same
//                 window a FaultScript fails its master
//                 (fault::MakeRegionalFailover builds the matching script)
//   kMobility   — a load hotspot travelling across the cluster ring
//                 (user-mobility origin drift)
//
// Because every cluster's stream is a pure function of (seed, cluster id),
// BuildClusterStream(k) over any grouping of clusters unions to the same
// request multiset as BuildScenario — the property the sharded engine
// leans on for per-shard generator streams.
#pragma once

#include <memory>

#include "storm/generators.h"

namespace tango::storm {

enum class ScenarioKind {
  kSteady,
  kFlashCrowd,
  kDiurnal,
  kFailover,
  kMobility,
};
inline constexpr int kNumScenarioKinds = 5;
const char* ScenarioKindName(ScenarioKind kind);

struct ScenarioConfig {
  const workload::ServiceCatalog* catalog = nullptr;
  int num_clusters = 4;
  SimTime horizon = 10 * kSecond;
  /// Mean base arrival rate per cluster (requests/second, both classes).
  double rps_per_cluster = 60.0;
  double lc_fraction = 0.8;
  std::uint64_t seed = 42;

  // kSteady
  MmppParams mmpp;

  // kFlashCrowd — spike on clusters [0, spike_clusters).
  double spike_mult = 4.0;
  SimTime spike_at = 3 * kSecond;
  SimDuration spike_ramp = 500 * kMillisecond;
  SimDuration spike_hold = 2 * kSecond;
  SimDuration spike_decay = kSecond;
  int spike_clusters = 1;

  // kDiurnal
  double diurnal_amplitude = 0.6;
  SimDuration diurnal_period = 8 * kSecond;

  // kFailover — `failover_cluster`'s mass re-homes to the others inside
  // [failover_at, failover_at + failover_for); `failover_residual` of it
  // keeps arriving locally (clients mid-session).
  ClusterId failover_cluster{0};
  SimTime failover_at = 3 * kSecond;
  SimDuration failover_for = 3 * kSecond;
  double failover_residual = 0.05;

  // kMobility
  SimDuration drift_period = 6 * kSecond;
  double drift_floor = 0.3;
};

/// The stream of requests originating at `cluster` under this scenario —
/// deterministic in (cfg.seed, cluster) alone, so any partition of clusters
/// across shards reproduces the same union.
std::unique_ptr<ScenarioSource> BuildClusterStream(ScenarioKind kind,
                                                   const ScenarioConfig& cfg,
                                                   ClusterId cluster);

/// The whole system's stream: Superpose over all clusters.
std::unique_ptr<ScenarioSource> BuildScenario(ScenarioKind kind,
                                              const ScenarioConfig& cfg);

}  // namespace tango::storm
