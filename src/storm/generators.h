// TangoStorm generators and combinators.
//
// Base streams are open-loop arrival processes for one cluster: a
// homogeneous Poisson process or a two-state MMPP (Markov-modulated
// Poisson, the classic bursty-traffic model). Time-varying shapes — flash
// crowds, diurnal waves, failover re-homing, mobility drift — are all one
// mechanism: a closed-form rate Envelope applied by the Modulate combinator
// via thinning (the base runs at the envelope's peak rate; Modulate accepts
// each candidate with probability rate(t)/peak). Superpose k-way-merges
// child streams with a one-request lookahead per child. Everything is
// allocation-free after construction and deterministic per stream seed.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "storm/source.h"
#include "workload/service.h"

namespace tango::storm {

/// One cluster's open-loop base stream.
struct StreamConfig {
  const workload::ServiceCatalog* catalog = nullptr;
  ClusterId origin;
  /// Arrival rate in requests/second (for MMPP: the low-state rate).
  double rate_rps = 50.0;
  /// Probability an emitted request is LC (service drawn uniformly within
  /// the class, work scale bounded-Pareto as in workload/trace.cpp).
  double lc_fraction = 0.8;
  SimTime horizon = 10 * kSecond;
  std::uint64_t seed = 1;
};

/// Homogeneous Poisson arrivals at `rate_rps` until `horizon`.
class PoissonSource : public ScenarioSource {
 public:
  explicit PoissonSource(const StreamConfig& cfg);
  bool NextRequest(workload::Request* out) override;

 protected:
  /// Fill service/origin/work_scale (one class draw, one service draw, one
  /// work draw — fixed consumption keeps sibling streams independent).
  void Shape(workload::Request* out, SimTime arrival);

  StreamConfig cfg_;
  std::vector<ServiceId> lc_pool_;
  std::vector<ServiceId> be_pool_;
  Rng rng_;
  double clock_s_ = 0.0;  // arrival clock in seconds (exact exponentials)
};

/// Two-state MMPP: sojourns are exponential; the high state multiplies the
/// arrival rate. Implemented by thinning a Poisson stream at the high rate,
/// so arrivals stay ordered and the modulation chain stays allocation-free.
struct MmppParams {
  double high_mult = 4.0;  // high-state rate = high_mult × rate_rps
  SimDuration mean_low = 2 * kSecond;
  SimDuration mean_high = 500 * kMillisecond;
};

class MmppSource final : public PoissonSource {
 public:
  MmppSource(const StreamConfig& cfg, const MmppParams& params);
  bool NextRequest(workload::Request* out) override;

 private:
  void AdvanceStateTo(double t_s);

  MmppParams params_;
  Rng state_rng_;  // independent stream: state path ⟂ candidate arrivals
  bool high_ = false;
  double next_switch_s_ = 0.0;
};

/// Closed-form relative-rate envelope, always ≥ 0, with a known supremum so
/// Modulate can thin against the peak. One struct covers every scenario
/// family; unused fields are ignored by the other kinds.
struct Envelope {
  enum class Kind {
    kFlat,       // 1 everywhere
    kSpike,      // 1, linear ramp to `mult` over [t0, t0+ramp], hold to t1,
                 // then exponential decay back toward 1 (time const `decay`)
    kDiurnal,    // 1 + amplitude · sin(2π(t/period + phase))
    kWindow,     // `mult` inside [t0, t1), 1 outside (re-homing windows)
    kDriftWave,  // floor + (1-floor) · max(0, cos(π·d))², d = circular
                 // distance between t/period and `phase` — a load hotspot
                 // travelling across the cluster ring
  };
  Kind kind = Kind::kFlat;
  SimTime t0 = 0;
  SimTime t1 = 0;
  SimDuration ramp = 0;
  SimDuration decay = kSecond;
  double mult = 1.0;
  SimDuration period = kHour;
  double phase = 0.0;      // fraction of a period in [0, 1)
  double amplitude = 0.0;  // diurnal swing in [0, 1)
  double floor = 0.0;      // drift-wave off-peak level in [0, 1]

  double Value(SimTime t) const;
  /// Closed-form supremum of Value over all t (thinning denominator).
  double MaxValue() const;
};

/// Thin `base` (which must run at `envelope.MaxValue()` times the wanted
/// base rate) so the effective rate follows the envelope.
class Modulate final : public ScenarioSource {
 public:
  Modulate(std::unique_ptr<ScenarioSource> base, const Envelope& envelope,
           std::uint64_t seed);
  bool NextRequest(workload::Request* out) override;

 private:
  std::unique_ptr<ScenarioSource> base_;
  Envelope env_;
  double max_;
  Rng rng_;
};

/// Order-preserving k-way merge of child streams (one-request lookahead per
/// child; ties break on child index, so the merge is deterministic).
class Superpose final : public ScenarioSource {
 public:
  explicit Superpose(std::vector<std::unique_ptr<ScenarioSource>> parts);
  bool NextRequest(workload::Request* out) override;

 private:
  struct Head {
    workload::Request req;
    bool live = false;
  };
  std::vector<std::unique_ptr<ScenarioSource>> parts_;
  std::vector<Head> heads_;
};

/// Bounded-Pareto work scale (same marginal as workload/trace.cpp).
double SampleWorkScale(Rng& rng);

}  // namespace tango::storm
