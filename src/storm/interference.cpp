#include "storm/interference.h"

#include <algorithm>

#include "common/logging.h"

namespace tango::storm {

namespace {
/// Saturating response: 0 at no pressure, -> 1 as pressure grows; monotone
/// nondecreasing for x >= 0.
double Sat(double x) { return x <= 0.0 ? 0.0 : x / (1.0 + x); }
}  // namespace

InterferenceModel InterferenceModel::Standard(
    const workload::ServiceCatalog& catalog) {
  InterferenceModel m;
  for (const auto& spec : catalog.all()) {
    SensitivityProfile p;
    if (spec.is_lc()) {
      // Latency-critical victims: little pressure generated, strong
      // response — a saturated node roughly doubles their service time.
      p.membw_intensity = 0.1;
      p.llc_intensity = 0.1;
      p.cpu_sensitivity = 0.25;
      p.membw_sensitivity = 0.45;
      p.llc_sensitivity = 0.30;
    } else {
      // Batch aggressors: streaming/scan-heavy, mostly insensitive
      // themselves (throughput-oriented, latency-tolerant).
      p.membw_intensity = 0.8;
      p.llc_intensity = 0.5;
      p.cpu_sensitivity = 0.10;
      p.membw_sensitivity = 0.10;
      p.llc_sensitivity = 0.05;
    }
    m.SetProfile(spec.id, p);
  }
  return m;
}

void InterferenceModel::SetProfile(ServiceId service,
                                   const SensitivityProfile& profile) {
  TANGO_CHECK(service.valid(), "invalid service id");
  TANGO_CHECK(profile.cpu_sensitivity >= 0.0 &&
                  profile.membw_sensitivity >= 0.0 &&
                  profile.llc_sensitivity >= 0.0 &&
                  profile.membw_intensity >= 0.0 &&
                  profile.llc_intensity >= 0.0,
              "sensitivity profile must be nonnegative");
  const auto idx = static_cast<std::size_t>(service.value);
  if (idx >= profiles_.size()) profiles_.resize(idx + 1);
  profiles_[idx] = profile;
}

const SensitivityProfile& InterferenceModel::Profile(
    ServiceId service) const {
  const auto idx = static_cast<std::size_t>(service.value);
  if (!service.valid() || idx >= profiles_.size()) return default_;
  return profiles_[idx];
}

double InterferenceModel::Inflation(ServiceId victim,
                                    const PressureVec& pressure) const {
  const SensitivityProfile& p = Profile(victim);
  return 1.0 + p.cpu_sensitivity * Sat(pressure.cpu) +
         p.membw_sensitivity * Sat(pressure.membw) +
         p.llc_sensitivity * Sat(pressure.llc);
}

bool InterferenceModel::CheckMonotone() const {
  constexpr double kGrid[] = {0.0, 0.1, 0.5, 1.0, 2.0, 8.0};
  for (std::size_t s = 0; s < profiles_.size(); ++s) {
    const ServiceId svc{static_cast<std::int32_t>(s)};
    double prev[3] = {0.0, 0.0, 0.0};
    for (int axis = 0; axis < 3; ++axis) {
      bool first = true;
      for (const double x : kGrid) {
        PressureVec v;
        (axis == 0 ? v.cpu : axis == 1 ? v.membw : v.llc) = x;
        const double f = Inflation(svc, v);
        if (f < 1.0) return false;
        if (!first && f < prev[axis]) return false;
        prev[axis] = f;
        first = false;
      }
    }
  }
  return true;
}

}  // namespace tango::storm
