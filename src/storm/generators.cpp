#include "storm/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "common/logging.h"

namespace tango::storm {

namespace {
// Stream-salt namespace: arrival clock, shaping, MMPP state path, and
// thinning each ride their own derived stream so adding a combinator never
// shifts a sibling's draws.
constexpr std::uint64_t kSaltArrivals = 0x41525256;  // "ARRV"
constexpr std::uint64_t kSaltMmppState = 0x4D4D5050;  // "MMPP"
constexpr std::uint64_t kSaltThin = 0x5448494E;       // "THIN"

double Fract(double x) { return x - std::floor(x); }
}  // namespace

double SampleWorkScale(Rng& rng) {
  // Same bounded-Pareto marginal as workload::SampleWorkScale.
  return std::clamp(rng.Pareto(0.7, 3.0), 0.6, 3.0);
}

// ---- PoissonSource --------------------------------------------------------

PoissonSource::PoissonSource(const StreamConfig& cfg)
    : cfg_(cfg),
      rng_(DeriveStreamSeed(cfg.seed, cfg.origin.value, kSaltArrivals)) {
  TANGO_CHECK(cfg.catalog != nullptr, "StreamConfig needs a catalog");
  lc_pool_ = cfg.catalog->LcServices();
  be_pool_ = cfg.catalog->BeServices();
  TANGO_CHECK(!lc_pool_.empty() || !be_pool_.empty(),
              "catalog has no services");
}

void PoissonSource::Shape(workload::Request* out, SimTime arrival) {
  // Fixed consumption: one class draw, one pool draw, one work draw.
  const bool lc = rng_.Bernoulli(cfg_.lc_fraction);
  const auto& pool =
      (lc && !lc_pool_.empty()) || be_pool_.empty() ? lc_pool_ : be_pool_;
  const auto pick = static_cast<std::size_t>(
      rng_.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
  out->id = RequestId{};
  out->service = pool[pick];
  out->origin = cfg_.origin;
  out->arrival = arrival;
  out->work_scale = SampleWorkScale(rng_);
}

bool PoissonSource::NextRequest(workload::Request* out) {
  if (cfg_.rate_rps <= 0.0) return false;
  clock_s_ += rng_.Exponential(cfg_.rate_rps);
  const auto at = FromSeconds(clock_s_);
  if (at > cfg_.horizon) return false;
  Shape(out, at);
  return true;
}

// ---- MmppSource -----------------------------------------------------------

MmppSource::MmppSource(const StreamConfig& cfg, const MmppParams& params)
    : PoissonSource(cfg),
      params_(params),
      state_rng_(
          DeriveStreamSeed(cfg.seed, cfg.origin.value, kSaltMmppState)) {
  TANGO_CHECK(params_.high_mult >= 1.0, "MMPP high_mult must be >= 1");
  next_switch_s_ =
      state_rng_.Exponential(1.0 / ToSeconds(params_.mean_low));
}

void MmppSource::AdvanceStateTo(double t_s) {
  while (next_switch_s_ <= t_s) {
    high_ = !high_;
    const SimDuration mean = high_ ? params_.mean_high : params_.mean_low;
    next_switch_s_ += state_rng_.Exponential(1.0 / ToSeconds(mean));
  }
}

bool MmppSource::NextRequest(workload::Request* out) {
  // Candidates arrive at the high-state rate; the current state thins them
  // down (acceptance 1 in high, 1/high_mult in low) — ordered by
  // construction, one candidate loop iteration costs two draws.
  if (cfg_.rate_rps <= 0.0) return false;
  const double high_rate = cfg_.rate_rps * params_.high_mult;
  for (;;) {
    clock_s_ += rng_.Exponential(high_rate);
    const auto at = FromSeconds(clock_s_);
    if (at > cfg_.horizon) return false;
    AdvanceStateTo(clock_s_);
    const double accept = high_ ? 1.0 : 1.0 / params_.high_mult;
    if (rng_.NextDouble() < accept) {
      Shape(out, at);
      return true;
    }
  }
}

// ---- Envelope -------------------------------------------------------------

double Envelope::Value(SimTime t) const {
  switch (kind) {
    case Kind::kFlat:
      return 1.0;
    case Kind::kSpike: {
      if (t < t0) return 1.0;
      if (ramp > 0 && t < t0 + ramp) {
        const double f = static_cast<double>(t - t0) /
                         static_cast<double>(ramp);
        return 1.0 + (mult - 1.0) * f;
      }
      if (t < t1) return mult;
      const double tau = static_cast<double>(decay < 1 ? 1 : decay);
      return 1.0 +
             (mult - 1.0) * std::exp(-static_cast<double>(t - t1) / tau);
    }
    case Kind::kDiurnal: {
      const double x = static_cast<double>(t) /
                           static_cast<double>(period) +
                       phase;
      return 1.0 + amplitude * std::sin(2.0 * std::numbers::pi * x);
    }
    case Kind::kWindow:
      return (t >= t0 && t < t1) ? mult : 1.0;
    case Kind::kDriftWave: {
      // Circular distance between the travelling hotspot (at t/period mod
      // 1) and this stream's ring position (phase); cos² bump of half-ring
      // width.
      double d = Fract(static_cast<double>(t) /
                           static_cast<double>(period) -
                       phase);
      if (d > 0.5) d = 1.0 - d;
      const double c = std::cos(std::numbers::pi * d);
      return floor + (1.0 - floor) * c * c;
    }
  }
  return 1.0;
}

double Envelope::MaxValue() const {
  switch (kind) {
    case Kind::kFlat:
      return 1.0;
    case Kind::kSpike:
    case Kind::kWindow:
      return std::max(1.0, mult);
    case Kind::kDiurnal:
      return 1.0 + amplitude;
    case Kind::kDriftWave:
      return std::max(1.0, floor);
  }
  return 1.0;
}

// ---- Modulate -------------------------------------------------------------

Modulate::Modulate(std::unique_ptr<ScenarioSource> base,
                   const Envelope& envelope, std::uint64_t seed)
    : base_(std::move(base)),
      env_(envelope),
      max_(envelope.MaxValue()),
      rng_(DeriveStreamSeed(seed, 0, kSaltThin)) {
  TANGO_CHECK(base_ != nullptr, "Modulate needs a base source");
  TANGO_CHECK(max_ > 0.0, "envelope supremum must be positive");
}

bool Modulate::NextRequest(workload::Request* out) {
  while (base_->NextRequest(out)) {
    if (rng_.NextDouble() < env_.Value(out->arrival) / max_) return true;
  }
  return false;
}

// ---- Superpose ------------------------------------------------------------

Superpose::Superpose(std::vector<std::unique_ptr<ScenarioSource>> parts)
    : parts_(std::move(parts)), heads_(parts_.size()) {
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    heads_[i].live = parts_[i]->NextRequest(&heads_[i].req);
  }
}

bool Superpose::NextRequest(workload::Request* out) {
  std::size_t best = heads_.size();
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    if (!heads_[i].live) continue;
    if (best == heads_.size() ||
        heads_[i].req.arrival < heads_[best].req.arrival) {
      best = i;
    }
  }
  if (best == heads_.size()) return false;
  *out = heads_[best].req;
  heads_[best].live = parts_[best]->NextRequest(&heads_[best].req);
  return true;
}

}  // namespace tango::storm
