#include "storm/source.h"

#include <algorithm>

#include "scope/metrics.h"
#include "scope/scope.h"

namespace tango::storm {

std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::int64_t cluster,
                               std::uint64_t salt) {
  // splitmix64 finalizer over the mixed coordinates; any two distinct
  // (seed, cluster, salt) triples land on independent-looking streams.
  std::uint64_t z = seed;
  z += 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(cluster) + 1);
  z += 0xBF58476D1CE4E5B9ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::size_t Drain(ScenarioSource& source, workload::Trace* out,
                  scope::MetricRegistry* metrics) {
  const std::size_t before = out->size();
  workload::Request r;
  while (source.NextRequest(&r)) {
    // tango-lint: allow(storm-stream) — the one materialization boundary.
    out->push_back(r);
  }
  std::stable_sort(out->begin(), out->end(),
                   [](const workload::Request& a, const workload::Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < out->size(); ++i) {
    (*out)[i].id = RequestId{static_cast<std::int32_t>(i)};
  }
  const std::size_t drained = out->size() - before;
  if (metrics != nullptr) {
    metrics->GetCounter("storm.drained")
        .Add(static_cast<std::int64_t>(drained));
    metrics->GetHistogram("storm.drain_batch")
        .Observe(static_cast<std::int64_t>(drained));
  }
  TANGO_SCOPE_INSTANT("storm.drain", "storm",
                      out->empty() ? 0 : out->back().arrival,
                      .request = static_cast<std::int64_t>(drained));
  return drained;
}

}  // namespace tango::storm
