#include "rl/agent.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tango::rl {

using nn::Matrix;
using nn::Var;

nn::Matrix MaskRow(const std::vector<bool>& valid, int n) {
  Matrix m(1, n, 1.0f);
  if (!valid.empty()) {
    TANGO_CHECK(static_cast<int>(valid.size()) == n, "mask size mismatch");
    bool any = false;
    for (int i = 0; i < n; ++i) {
      m.at(0, i) = valid[static_cast<std::size_t>(i)] ? 1.0f : 0.0f;
      any = any || valid[static_cast<std::size_t>(i)];
    }
    // A fully-masked state would make the softmax degenerate; fall back to
    // all-valid (the dispatcher re-queues requests that land badly anyway).
    if (!any) m.Fill(1.0f);
  }
  return m;
}

namespace {

/// Mean-pool node embeddings into a single 1×D row.
Var MeanPool(const Var& h) {
  const int n = h->value.rows();
  Matrix pool(1, n, 1.0f / static_cast<float>(n));
  return nn::MatMul(nn::Constant(std::move(pool)), h);
}

int SampleRow(const Matrix& probs, Rng& rng, bool greedy) {
  const int n = probs.cols();
  if (greedy) {
    int best = 0;
    for (int i = 1; i < n; ++i) {
      if (probs.at(0, i) > probs.at(0, best)) best = i;
    }
    return best;
  }
  double u = rng.NextDouble();
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += static_cast<double>(probs.at(0, i));
    if (u < acc) return i;
  }
  // Numerical fallback: last valid entry.
  for (int i = n - 1; i >= 0; --i) {
    if (probs.at(0, i) > 0.0f) return i;
  }
  return 0;
}

}  // namespace

// ---------------------------------------------------------------- A2C ----

A2cAgent::A2cAgent(const A2cConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  encoder_ = gnn::MakeEncoder(cfg.encoder, store_, "enc", cfg.feature_dim,
                              cfg.embed_dim, rng_);
  actor_ = nn::Mlp::PaperHead(store_, "actor", cfg.embed_dim, 1, rng_);
  critic_ = nn::Mlp::PaperHead(store_, "critic", cfg.embed_dim, 1, rng_);
  opt_ = std::make_unique<nn::Adam>(store_, cfg.adam);
}

std::string A2cAgent::name() const {
  return std::string(gnn::EncoderKindName(cfg_.encoder)) + "-A2C";
}

Var A2cAgent::PolicyLogits(const GraphState& s, Var* value_out) {
  const Var h = encoder_->Encode(s.graph, rng_);
  const Var scores = actor_.Forward(h);            // N×1
  const Var logits = nn::Transpose(scores);        // 1×N
  if (value_out != nullptr) {
    *value_out = critic_.Forward(MeanPool(h));     // 1×1
  }
  return logits;
}

bool A2cAgent::PackedActionProbs(const GraphState& s, const Matrix& mask,
                                 Matrix* probs) {
  const auto version = static_cast<std::uint64_t>(train_steps_);
  if (!encoder_->EncodeInference(s.graph, rng_, version, &embed_buf_)) {
    return false;  // no packed path (GAT): RNG untouched, tape fallback
  }
  if (actor_packed_version_ != version || actor_packed_.empty()) {
    actor_packed_.Clear();
    for (const auto& l : actor_.layers()) {
      actor_packed_.AddLayer(l.weight(), l.bias());
    }
    actor_packed_version_ = version;
  }
  const Matrix& scores = actor_packed_.Forward(embed_buf_);  // N×1
  Matrix logits(1, scores.rows());
  for (int i = 0; i < scores.rows(); ++i) {
    logits.at(0, i) = scores.at(i, 0);
  }
  *probs = nn::SoftmaxProbs(logits, &mask);
  return true;
}

int A2cAgent::Act(const GraphState& state, bool greedy) {
  const int n = state.graph.num_nodes();
  TANGO_CHECK(n > 0, "empty graph state");
  const Matrix mask = MaskRow(state.valid, n);
  int action;
  Matrix packed_probs;
  if (cfg_.packed_inference && PackedActionProbs(state, mask, &packed_probs)) {
    // Tape-free path: bit-identical probabilities (same GEMM accumulation
    // order, same SoftmaxProbs kernel), zero autograd nodes allocated.
    action = SampleRow(packed_probs, rng_, greedy);
  } else {
    const Var logits = PolicyLogits(state, nullptr);
    const Var probs = nn::Softmax(logits, &mask);
    action = SampleRow(probs->value, rng_, greedy);
  }
  pending_state_ = state;
  pending_action_ = action;
  return action;
}

void A2cAgent::Observe(float reward, const GraphState& next_state, bool done) {
  TANGO_CHECK(pending_state_.has_value(), "Observe without Act");
  rollout_.push_back({std::move(*pending_state_), pending_action_, reward});
  pending_state_.reset();
  pending_action_ = -1;
  if (done || static_cast<int>(rollout_.size()) >= cfg_.train_interval) {
    Train(next_state, done);
    rollout_.clear();
  }
}

void A2cAgent::Train(const GraphState& bootstrap_state, bool done) {
  if (rollout_.empty()) return;
  // Bootstrap value of the state following the last stored step.
  float boot = 0.0f;
  if (!done && bootstrap_state.graph.num_nodes() > 0) {
    Var v;
    PolicyLogits(bootstrap_state, &v);
    boot = nn::ScalarValue(v);
  }
  // Discounted returns, newest-to-oldest.
  std::vector<float> returns(rollout_.size());
  float r = boot;
  for (int i = static_cast<int>(rollout_.size()) - 1; i >= 0; --i) {
    r = rollout_[static_cast<std::size_t>(i)].reward + cfg_.gamma * r;
    returns[static_cast<std::size_t>(i)] = r;
  }

  Var total_loss;
  float policy_loss_acc = 0.0f;
  float value_loss_acc = 0.0f;
  for (std::size_t i = 0; i < rollout_.size(); ++i) {
    const Step& step = rollout_[i];
    const int n = step.state.graph.num_nodes();
    const Matrix mask = MaskRow(step.state.valid, n);
    Var value;
    const Var logits = PolicyLogits(step.state, &value);
    const Var logp = nn::LogSoftmax(logits, &mask);
    const Var logp_a = nn::GatherCols(logp, {step.action});  // 1×1
    const float advantage = returns[i] - nn::ScalarValue(value);
    // Policy gradient with the advantage detached (standard A2C).
    const Var pg = nn::Scale(logp_a, -advantage);
    // Critic regression toward the return.
    Matrix target(1, 1);
    target.at(0, 0) = returns[i];
    const Var diff = nn::Sub(value, nn::Constant(std::move(target)));
    const Var vloss = nn::Scale(nn::Mul(diff, diff), cfg_.value_coef);
    // Entropy bonus keeps exploration alive.
    const Var ent = nn::Scale(nn::EntropyOfSoftmax(logits, &mask),
                              -cfg_.entropy_coef);
    Var loss = nn::Add(nn::Add(pg, vloss), ent);
    policy_loss_acc += nn::ScalarValue(pg);
    value_loss_acc += nn::ScalarValue(vloss);
    total_loss = total_loss ? nn::Add(total_loss, loss) : loss;
  }
  total_loss = nn::Scale(total_loss,
                         1.0f / static_cast<float>(rollout_.size()));
  nn::Backward(total_loss);
  opt_->Step();
  ++train_steps_;
  last_policy_loss_ = policy_loss_acc / static_cast<float>(rollout_.size());
  last_value_loss_ = value_loss_acc / static_cast<float>(rollout_.size());
}

// ---------------------------------------------------------------- SAC ----

Var SacAgent::Nets::Q1(const GraphState& s, Rng& rng) {
  return nn::Transpose(q1.Forward(encoder->Encode(s.graph, rng)));
}
Var SacAgent::Nets::Q2(const GraphState& s, Rng& rng) {
  return nn::Transpose(q2.Forward(encoder->Encode(s.graph, rng)));
}

std::unique_ptr<SacAgent::Nets> SacAgent::MakeNets(const SacConfig& cfg,
                                                   const std::string& prefix,
                                                   Rng& rng) {
  auto nets = std::make_unique<Nets>();
  nets->encoder = gnn::MakeEncoder(cfg.encoder, nets->store, prefix + ".enc",
                                   cfg.feature_dim, cfg.embed_dim, rng);
  nets->q1 = nn::Mlp::PaperHead(nets->store, prefix + ".q1", cfg.embed_dim, 1,
                                rng);
  nets->q2 = nn::Mlp::PaperHead(nets->store, prefix + ".q2", cfg.embed_dim, 1,
                                rng);
  return nets;
}

SacAgent::SacAgent(const SacConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  policy_encoder_ = gnn::MakeEncoder(cfg.encoder, policy_store_, "pi.enc",
                                     cfg.feature_dim, cfg.embed_dim, rng_);
  policy_head_ =
      nn::Mlp::PaperHead(policy_store_, "pi.head", cfg.embed_dim, 1, rng_);
  policy_opt_ = std::make_unique<nn::Adam>(policy_store_, cfg.adam);
  // Seed both Q copies identically so the target starts in sync.
  Rng q_rng(cfg.seed + 1);
  Rng q_rng_copy = q_rng;
  online_ = MakeNets(cfg, "on", q_rng);
  target_ = MakeNets(cfg, "tg", q_rng_copy);
  nn::CopyParams(online_->store, target_->store);
  q_opt_ = std::make_unique<nn::Adam>(online_->store, cfg.adam);
}

std::string SacAgent::name() const {
  return std::string(gnn::EncoderKindName(cfg_.encoder)) + "-SAC";
}

Var SacAgent::PolicyLogits(const GraphState& s) {
  const Var h = policy_encoder_->Encode(s.graph, rng_);
  return nn::Transpose(policy_head_.Forward(h));
}

int SacAgent::Act(const GraphState& state, bool greedy) {
  const int n = state.graph.num_nodes();
  TANGO_CHECK(n > 0, "empty graph state");
  const Matrix mask = MaskRow(state.valid, n);
  const Var probs = nn::Softmax(PolicyLogits(state), &mask);
  const int action = SampleRow(probs->value, rng_, greedy);
  pending_state_ = state;
  pending_action_ = action;
  return action;
}

void SacAgent::Observe(float reward, const GraphState& next_state, bool done) {
  TANGO_CHECK(pending_state_.has_value(), "Observe without Act");
  replay_.push_back({std::move(*pending_state_), pending_action_, reward,
                     next_state, done});
  pending_state_.reset();
  if (static_cast<int>(replay_.size()) > cfg_.replay_capacity) {
    replay_.pop_front();
  }
  ++act_count_;
  if (act_count_ % cfg_.train_every == 0 &&
      static_cast<int>(replay_.size()) >= cfg_.batch_size) {
    Train();
  }
}

void SacAgent::Train() {
  // Sample a minibatch uniformly.
  std::vector<const Transition*> batch;
  batch.reserve(static_cast<std::size_t>(cfg_.batch_size));
  for (int i = 0; i < cfg_.batch_size; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(replay_.size()) - 1));
    batch.push_back(&replay_[idx]);
  }

  // ---- Q update.
  Var q_loss;
  for (const Transition* tr : batch) {
    // Target: r + γ Σ_a π(a|s') (min Q_t(s',a) − α log π(a|s')).
    float target = tr->reward;
    if (!tr->done && tr->next.graph.num_nodes() > 0) {
      const int n2 = tr->next.graph.num_nodes();
      const Matrix mask2 = MaskRow(tr->next.valid, n2);
      const Var logits2 = PolicyLogits(tr->next);
      const Var probs2 = nn::Softmax(logits2, &mask2);
      const Var q1t = target_->Q1(tr->next, rng_);
      const Var q2t = target_->Q2(tr->next, rng_);
      float soft_v = 0.0f;
      for (int a = 0; a < n2; ++a) {
        const float p = probs2->value.at(0, a);
        if (p <= 0.0f) continue;
        const float qmin =
            std::min(q1t->value.at(0, a), q2t->value.at(0, a));
        soft_v += p * (qmin - cfg_.alpha * std::log(p));
      }
      target += cfg_.gamma * soft_v;
    }
    Matrix tmat(1, 1);
    tmat.at(0, 0) = target;
    const Var tvar = nn::Constant(std::move(tmat));
    const Var q1 = nn::GatherCols(online_->Q1(tr->state, rng_), {tr->action});
    const Var q2 = nn::GatherCols(online_->Q2(tr->state, rng_), {tr->action});
    const Var d1 = nn::Sub(q1, tvar);
    const Var d2 = nn::Sub(q2, tvar);
    const Var l = nn::Add(nn::Mul(d1, d1), nn::Mul(d2, d2));
    q_loss = q_loss ? nn::Add(q_loss, l) : l;
  }
  q_loss = nn::Scale(q_loss, 1.0f / static_cast<float>(cfg_.batch_size));
  nn::Backward(q_loss);
  q_opt_->Step();

  // ---- Policy update: minimize Σ_a π(a|s)(α log π − min Q).
  Var pi_loss;
  for (const Transition* tr : batch) {
    const int n = tr->state.graph.num_nodes();
    const Matrix mask = MaskRow(tr->state.valid, n);
    const Var logits = PolicyLogits(tr->state);
    const Var probs = nn::Softmax(logits, &mask);
    const Var logp = nn::LogSoftmax(logits, &mask);
    const Var q1 = online_->Q1(tr->state, rng_);
    const Var q2 = online_->Q2(tr->state, rng_);
    // min Q, detached (Q params are updated by q_opt_, not the policy step).
    Matrix qmin(1, n);
    for (int a = 0; a < n; ++a) {
      qmin.at(0, a) = std::min(q1->value.at(0, a), q2->value.at(0, a));
    }
    const Var inner = nn::Sub(nn::Scale(logp, cfg_.alpha),
                              nn::Constant(std::move(qmin)));
    const Var weighted = nn::Mul(probs, inner);
    const Var l = nn::Sum(weighted);
    pi_loss = pi_loss ? nn::Add(pi_loss, l) : l;
  }
  pi_loss = nn::Scale(pi_loss, 1.0f / static_cast<float>(cfg_.batch_size));
  nn::Backward(pi_loss);
  policy_opt_->Step();

  nn::SoftUpdateParams(online_->store, target_->store, cfg_.tau);
  ++train_steps_;
}

}  // namespace tango::rl
