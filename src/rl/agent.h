// Reinforcement-learning agents for centralized BE scheduling (§5.3).
//
// Both agents act over a graph state: an encoder (GraphSAGE by default)
// embeds the topology; per-node logits are produced by the paper's 3-layer
// ReLU head; invalid nodes are removed by the policy context filter c_t
// (masked softmax). A2cAgent implements the paper's DCG-BE learner
// (advantage actor-critic, Adam lr 2e-4); SacAgent implements the GNN-SAC
// baseline of Figure 11(c) (discrete soft actor-critic with twin Q networks
// and Polyak-averaged targets).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "gnn/encoder.h"
#include "nn/adam.h"
#include "nn/packed.h"

namespace tango::rl {

/// A state observation: the global graph G' plus the validity mask c_t.
struct GraphState {
  gnn::GraphBatch graph;
  std::vector<bool> valid;  // c_t per node; empty = all valid
};

/// Common interface so the BE dispatcher can swap learners.
class Agent {
 public:
  virtual ~Agent() = default;
  /// Choose an action (node index). `greedy` disables exploration.
  virtual int Act(const GraphState& state, bool greedy = false) = 0;
  /// Report the transition outcome for the previous Act call.
  virtual void Observe(float reward, const GraphState& next_state,
                       bool done) = 0;
  virtual std::string name() const = 0;
  virtual std::int64_t train_steps() const = 0;
};

struct A2cConfig {
  int feature_dim = 9;
  int embed_dim = 64;
  gnn::EncoderKind encoder = gnn::EncoderKind::kGraphSage;
  float gamma = 0.95f;
  float entropy_coef = 0.01f;
  float value_coef = 0.5f;
  /// n̂ — actions between two training intervals (§5.3.1 reward definition).
  int train_interval = 16;
  nn::AdamConfig adam{};  // lr 2e-4 per the paper
  std::uint64_t seed = 7;
  /// TangoSolve packed inference: Act() runs the encoder and actor head
  /// through pre-packed weights without allocating autograd nodes. Actions
  /// are bit-identical either way (the packed kernels reproduce the taped
  /// arithmetic exactly); false forces the taped forward, used by the
  /// equivalence tests. Training always uses the tape.
  bool packed_inference = true;
};

class A2cAgent : public Agent {
 public:
  explicit A2cAgent(const A2cConfig& cfg);

  int Act(const GraphState& state, bool greedy = false) override;
  void Observe(float reward, const GraphState& next_state, bool done) override;
  std::string name() const override;
  std::int64_t train_steps() const override { return train_steps_; }

  /// Last training losses, for tests/telemetry.
  float last_policy_loss() const { return last_policy_loss_; }
  float last_value_loss() const { return last_value_loss_; }
  std::size_t param_count() const { return store_.ParamCount(); }

 private:
  struct Step {
    GraphState state;
    int action;
    float reward;
  };

  nn::Var PolicyLogits(const GraphState& s, nn::Var* value_out);
  void Train(const GraphState& bootstrap_state, bool done);
  /// Packed Act() forward; returns false (leaving the RNG untouched) when
  /// the encoder has no inference path and the caller must use the tape.
  bool PackedActionProbs(const GraphState& s, const nn::Matrix& mask,
                         nn::Matrix* probs);

  A2cConfig cfg_;
  Rng rng_;
  nn::ParamStore store_;
  std::unique_ptr<gnn::Encoder> encoder_;
  nn::Mlp actor_;
  nn::Mlp critic_;
  /// Packed actor head, lazily re-packed when train_steps_ moves.
  nn::PackedMlp actor_packed_;
  std::uint64_t actor_packed_version_ = ~std::uint64_t{0};
  nn::Matrix embed_buf_;
  std::unique_ptr<nn::Adam> opt_;
  std::vector<Step> rollout_;
  std::optional<GraphState> pending_state_;
  int pending_action_ = -1;
  std::int64_t train_steps_ = 0;
  float last_policy_loss_ = 0.0f;
  float last_value_loss_ = 0.0f;
};

struct SacConfig {
  int feature_dim = 9;
  int embed_dim = 64;
  gnn::EncoderKind encoder = gnn::EncoderKind::kGraphSage;
  float gamma = 0.95f;
  float alpha = 0.05f;  // entropy temperature (fixed)
  float tau = 0.02f;    // target Polyak rate
  int batch_size = 8;
  int replay_capacity = 512;
  int train_every = 16;
  nn::AdamConfig adam{};
  std::uint64_t seed = 11;
};

class SacAgent : public Agent {
 public:
  explicit SacAgent(const SacConfig& cfg);

  int Act(const GraphState& state, bool greedy = false) override;
  void Observe(float reward, const GraphState& next_state, bool done) override;
  std::string name() const override;
  std::int64_t train_steps() const override { return train_steps_; }

 private:
  struct Transition {
    GraphState state;
    int action;
    float reward;
    GraphState next;
    bool done;
  };

  /// Networks bundled so the online and target copies share structure.
  struct Nets {
    nn::ParamStore store;
    std::unique_ptr<gnn::Encoder> encoder;
    nn::Mlp q1, q2;
    nn::Var Q1(const GraphState& s, Rng& rng);
    nn::Var Q2(const GraphState& s, Rng& rng);
  };

  nn::Var PolicyLogits(const GraphState& s);
  void Train();
  static std::unique_ptr<Nets> MakeNets(const SacConfig& cfg,
                                        const std::string& prefix, Rng& rng);

  SacConfig cfg_;
  Rng rng_;
  nn::ParamStore policy_store_;
  std::unique_ptr<gnn::Encoder> policy_encoder_;
  nn::Mlp policy_head_;
  std::unique_ptr<nn::Adam> policy_opt_;
  std::unique_ptr<Nets> online_;
  std::unique_ptr<Nets> target_;
  std::unique_ptr<nn::Adam> q_opt_;
  std::deque<Transition> replay_;
  std::optional<GraphState> pending_state_;
  int pending_action_ = -1;
  std::int64_t act_count_ = 0;
  std::int64_t train_steps_ = 0;
};

/// Convert a validity vector into a 1×N mask matrix (all-ones when empty).
nn::Matrix MaskRow(const std::vector<bool>& valid, int n);

}  // namespace tango::rl
