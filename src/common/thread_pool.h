// A small fixed-size thread pool with deterministic join semantics.
//
// The scheduler and the evaluation harness only need structured fan-out:
// run N independent tasks, wait for all of them, surface the first
// exception. ParallelFor provides exactly that — it blocks until every
// task has finished (or been abandoned after an exception elsewhere), so
// callers never observe a partially-completed batch. Each task receives a
// stable worker index in [0, size()] which callers use to index per-worker
// scratch state (e.g. the DSS-LC solver pool); index size() is the calling
// thread, which always participates in the work.
//
// Determinism note: the pool never introduces nondeterminism by itself —
// which worker runs which task varies, but tasks must depend only on their
// item index (per-item RNG streams, per-worker interchangeable scratch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace tango {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers; 0 picks the hardware concurrency minus
  /// one (the calling thread is always the extra worker), at least 1.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool threads (the calling thread adds one more worker slot).
  int size() const { return static_cast<int>(threads_.size()); }

  /// Worker slots a ParallelFor can use, including the calling thread.
  int concurrency() const { return size() + 1; }

  /// Run fn(item, worker) for every item in [0, n). Blocks until all items
  /// are done. `worker` ∈ [0, size()] identifies the executing slot (size()
  /// = the calling thread). If any task throws, the first exception is
  /// rethrown here after every in-flight task has finished; remaining
  /// unstarted items are abandoned. After Shutdown() the loop degrades to
  /// serial in-caller execution (worker = size()).
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, int)>& fn);

  /// Join all pool threads. Idempotent; implied by the destructor. A pool
  /// that is shut down still accepts ParallelFor (runs serially).
  void Shutdown();

 private:
  struct Batch;
  void WorkerLoop(int worker_id);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  int attached_ = 0;         // workers holding the current batch pointer
  Batch* batch_ = nullptr;   // guarded by mu_
  std::uint64_t gen_ = 0;    // bumped per batch; guarded by mu_
  bool stop_ = false;        // guarded by mu_
};

}  // namespace tango
