#include "common/logging.h"

#include <cstdarg>
#include <cstdlib>
#include <vector>

namespace tango {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

namespace internal {
std::string FormatLog(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed <= 0) {
    va_end(args);
    return {};
  }
  std::vector<char> buf(static_cast<size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args);
  va_end(args);
  return std::string(buf.data(), static_cast<size_t>(needed));
}
}  // namespace internal

}  // namespace tango
