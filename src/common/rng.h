// Deterministic random number generation.
//
// Every stochastic component of the simulation draws from an Rng seeded from
// the experiment configuration, so runs are reproducible bit-for-bit. The
// engine is splitmix64-seeded xoshiro256**, small and fast.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace tango {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // splitmix64 to spread a possibly low-entropy seed over the full state.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next();
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextU64() % range);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
  }

  /// Exponential with the given rate (events per unit).
  double Exponential(double rate) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

  /// Bounded Pareto-ish heavy tail used for service demand sampling.
  double Pareto(double scale, double shape) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return scale / std::pow(u, 1.0 / shape);
  }

  /// Derive an independent child stream (for per-entity RNGs).
  Rng Fork() { return Rng(NextU64()); }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace tango
