// Strongly-typed units used throughout Tango.
//
// All simulation time is kept in integer microseconds (SimTime); CPU in
// millicores (1000 = one core); memory in MiB. Integer arithmetic keeps the
// discrete-event simulation deterministic across platforms.
#pragma once

#include <cstdint>

namespace tango {

/// Virtual simulation time in microseconds since experiment start.
using SimTime = std::int64_t;

/// Duration in microseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;

constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr SimDuration FromMilliseconds(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}
constexpr SimDuration FromSeconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

/// CPU capacity/demand in millicores (1000 == one physical core).
using Millicores = std::int64_t;

/// Memory capacity/demand in mebibytes.
using MiB = std::int64_t;

constexpr Millicores kCore = 1000;

/// Network bandwidth in kilobits per second.
using Kbps = std::int64_t;

/// Transfer sizes in bytes.
using Bytes = std::int64_t;

/// Time to push `size` bytes through a `bw` kbps link, in microseconds.
constexpr SimDuration TransferTime(Bytes size, Kbps bw) {
  if (bw <= 0) return 0;
  // bytes * 8 bits / (kbps * 1000 / 1e6) = bytes * 8000 / kbps microseconds.
  return size * 8000 / bw;
}

}  // namespace tango
