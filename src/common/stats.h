// Small statistics helpers: percentiles, running means, windowed latency
// collection. Used by the QoS detector (p95 tail latency, §4.3) and the
// evaluation harness.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <vector>

#include "common/units.h"

namespace tango {

/// Nearest-rank percentile computed in place (q in [0,1]): a single
/// nth_element partial select, O(n), reordering `values`. Returns 0 for an
/// empty sample. This is the allocation-free hot-path primitive — the QoS
/// detector calls it per node × per service × per 100 ms window.
template <class T>
T PercentileInPlace(std::vector<T>& values, double q) {
  if (values.empty()) return T{};
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(q * (values.size() - 1) + 0.5);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank),
                   values.end());
  return values[rank];
}

/// Percentile of a sample set (nearest-rank on a copy; q in [0,1]).
/// Returns 0 for an empty sample.
template <class T>
T Percentile(std::vector<T> values, double q) {
  return PercentileInPlace(values, q);
}

/// Mean of a sample set; 0 for empty input.
template <class T>
double Mean(const std::vector<T>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& v : values) sum += static_cast<double>(v);
  return sum / static_cast<double>(values.size());
}

/// Accumulates (value, time) observations and answers percentile queries over
/// a sliding window — the 100 ms QoS collection window of §4.3.
class WindowedSamples {
 public:
  explicit WindowedSamples(SimDuration window) : window_(window) {}

  void Add(SimTime now, double value) {
    samples_.push_back({now, value});
    Evict(now);
  }

  /// Drop samples older than `now - window`.
  void Evict(SimTime now) {
    while (!samples_.empty() && samples_.front().time < now - window_) {
      samples_.pop_front();
    }
  }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Percentile(double q) const {
    // The scratch buffer persists across queries, so the per-window
    // percentile (QoS detector hot path) stops allocating once it has
    // grown to the window's high-water mark.
    scratch_.clear();
    for (const auto& s : samples_) scratch_.push_back(s.value);
    return PercentileInPlace(scratch_, q);
  }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& s : samples_) sum += s.value;
    return sum / static_cast<double>(samples_.size());
  }

 private:
  struct Sample {
    SimTime time;
    double value;
  };
  SimDuration window_;
  std::deque<Sample> samples_;
  mutable std::vector<double> scratch_;  // reused by Percentile()
};

/// Running mean/min/max without storing samples.
class RunningStat {
 public:
  void Add(double v) {
    ++n_;
    sum_ += v;
    min_ = n_ == 1 ? v : std::min(min_, v);
    max_ = n_ == 1 ? v : std::max(max_, v);
  }
  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace tango
