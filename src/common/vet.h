// TangoVet function markers (DESIGN.md §15).
//
// TangoVet (tools/vet) is the static half of the repo's invariant story: it
// builds a translation-unit-merged call graph over src/ and proves, at CI
// time, that every TANGO_HOT entry point is allocation-free, that the
// deterministic subsystems never reach wall-clock or global randomness, that
// the audit manifest's mutators carry AUDIT_SCOPE/AUDIT_CHECK coverage, and
// that mutex acquisitions follow the declared order manifest.
//
//   TANGO_HOT   marks a steady-state entry point whose entire call closure
//               must be allocation-free: no operator new / malloc, no
//               container growth, no std::function construction, no string
//               building. The analyzer walks every call path from the marker.
//   TANGO_COLD  marks a function as deliberately outside the hot closure
//               (build-time, first-round growth, failure path). Traversal
//               stops at the marker; the annotation is the reviewable record
//               of why the cut is sound.
//
// Per-site escapes use trailing comments, mirroring clang-tidy's NOLINT:
//
//   buf_.push_back(x);  // TANGOVET_ALLOW(pooled: capacity retained by Reset)
//   // TANGOVET_ALLOW_NEXT(profiling: steady_clock feeds metrics only)
//   const auto t0 = std::chrono::steady_clock::now();
//
// Under Clang the markers lower to annotate attributes so the libclang
// frontend reads them straight off the AST; under GCC they expand to nothing
// and the degraded tokenizer frontend matches the marker tokens instead.
// Either way they cost zero codegen.
#pragma once

#if defined(__clang__)
#define TANGO_HOT __attribute__((annotate("tango_hot")))
#define TANGO_COLD __attribute__((annotate("tango_cold")))
#else
#define TANGO_HOT
#define TANGO_COLD
#endif
