#include "common/thread_pool.h"

#include <exception>

namespace tango {

/// One ParallelFor invocation. Workers claim item indices under `mu`; the
/// caller waits on `done_cv` until every claimed item has finished and no
/// claimable item remains.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t, int)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t next = 0;    // next unclaimed item
  int in_flight = 0;       // items currently executing
  bool abandon = false;    // a task threw: stop claiming new items
  std::exception_ptr error;

  void Run(int worker) {
    std::unique_lock<std::mutex> lk(mu);
    while (!abandon && next < n) {
      const std::size_t item = next++;
      ++in_flight;
      lk.unlock();
      try {
        (*fn)(item, worker);
      } catch (...) {
        lk.lock();
        if (!error) error = std::current_exception();
        abandon = true;
        --in_flight;
        continue;
      }
      lk.lock();
      --in_flight;
    }
    if (in_flight == 0) done_cv.notify_all();
  }

  void AwaitDone() {
    std::unique_lock<std::mutex> lk(mu);
    done_cv.wait(lk,
                 [this] { return in_flight == 0 && (abandon || next >= n); });
  }
};

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    const auto hw = static_cast<int>(std::thread::hardware_concurrency());
    num_threads = hw > 1 ? hw - 1 : 1;  // the caller is the extra worker
  }
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void ThreadPool::WorkerLoop(int worker_id) {
  // Generation counting (not pointer comparison) distinguishes successive
  // batches: a fresh stack Batch can reuse the previous one's address.
  std::uint64_t seen_gen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(
        lk, [&] { return stop_ || (batch_ != nullptr && gen_ != seen_gen); });
    if (batch_ == nullptr || gen_ == seen_gen) return;  // stopped, no new work
    Batch* b = batch_;
    seen_gen = gen_;
    ++attached_;  // keeps the caller from retiring b while we hold it
    lk.unlock();
    b->Run(worker_id);
    lk.lock();
    if (--attached_ == 0) idle_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t, int)>& fn) {
  if (n == 0) return;
  Batch b;
  b.n = n;
  b.fn = &fn;
  bool pooled;
  {
    std::lock_guard<std::mutex> lk(mu_);
    pooled = !stop_ && !threads_.empty() && n > 1;
    if (pooled) {
      batch_ = &b;
      ++gen_;
    }
  }
  if (!pooled) {
    // Degraded path (shut down, zero threads, or a single item): the
    // calling thread does everything as worker slot size().
    for (std::size_t i = 0; i < n; ++i) fn(i, size());
    return;
  }
  work_cv_.notify_all();
  b.Run(size());  // the caller is worker slot size()
  b.AwaitDone();
  {
    // A worker may have grabbed &b but not yet entered Run; b must outlive
    // it. AwaitDone already guarantees no items remain, so this is brief.
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return attached_ == 0; });
    batch_ = nullptr;
  }
  if (b.error) std::rethrow_exception(b.error);
}

}  // namespace tango
