// Minimal leveled logging. Off by default so benchmarks stay quiet; tests and
// examples can raise the level. Not thread-safe by design: the simulation is
// single-threaded and deterministic.
#pragma once

#include <cstdio>
#include <string>

namespace tango {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal {
std::string FormatLog(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace internal

#define TANGO_LOG(level, ...)                                     \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::tango::GetLogLevel())) {               \
      ::tango::LogMessage(level, __FILE__, __LINE__,              \
                          ::tango::internal::FormatLog(__VA_ARGS__)); \
    }                                                             \
  } while (0)

#define TLOG_DEBUG(...) TANGO_LOG(::tango::LogLevel::kDebug, __VA_ARGS__)
#define TLOG_INFO(...) TANGO_LOG(::tango::LogLevel::kInfo, __VA_ARGS__)
#define TLOG_WARN(...) TANGO_LOG(::tango::LogLevel::kWarn, __VA_ARGS__)
#define TLOG_ERROR(...) TANGO_LOG(::tango::LogLevel::kError, __VA_ARGS__)

/// Fatal check: always on, aborts with a message. Used for invariant
/// violations that indicate programmer error, never for recoverable input.
#define TANGO_CHECK(cond, ...)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::tango::LogMessage(::tango::LogLevel::kError, __FILE__, __LINE__,  \
                          std::string("CHECK failed: " #cond " — ") +     \
                              ::tango::internal::FormatLog(__VA_ARGS__)); \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

}  // namespace tango
