// Strongly-typed integer identifiers for the entities of the edge-cloud
// system. A thin wrapper prevents accidentally mixing, say, a NodeId with a
// ClusterId in an API call.
#pragma once

#include <cstdint>
#include <functional>

namespace tango {

template <class Tag>
struct Id {
  std::int32_t value = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int32_t v) : value(v) {}

  constexpr bool valid() const { return value >= 0; }
  constexpr auto operator<=>(const Id&) const = default;
};

struct ClusterTag {};
struct NodeTag {};
struct PodTag {};
struct ContainerTag {};
struct ServiceTag {};
struct RequestTag {};

/// Identifies an edge-cloud cluster (the paper's b ∈ B).
using ClusterId = Id<ClusterTag>;
/// Identifies a node globally (unique across all clusters).
using NodeId = Id<NodeTag>;
using PodId = Id<PodTag>;
using ContainerId = Id<ContainerTag>;
/// Identifies a service type (the paper's k ∈ K); 10 types in the eval.
using ServiceId = Id<ServiceTag>;
using RequestId = Id<RequestTag>;

}  // namespace tango

namespace std {
template <class Tag>
struct hash<tango::Id<Tag>> {
  size_t operator()(const tango::Id<Tag>& id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};
}  // namespace std
