// Adam optimizer (Kingma & Ba) — the paper trains DCG-BE with Adam at a
// fixed learning rate of 2e-4 (§5.3.2).
#pragma once

#include <vector>

#include "nn/module.h"

namespace tango::nn {

struct AdamConfig {
  float lr = 2e-4f;  // paper's fixed learning rate
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  /// Optional global-norm gradient clip (0 disables).
  float grad_clip = 5.0f;
};

class Adam {
 public:
  explicit Adam(const ParamStore& store, AdamConfig cfg = {});

  /// Apply one update from the gradients currently stored on the params,
  /// then zero them. Returns the pre-clip global gradient norm.
  float Step();

  std::int64_t steps() const { return t_; }
  const AdamConfig& config() const { return cfg_; }

 private:
  std::vector<Var> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  AdamConfig cfg_;
  std::int64_t t_ = 0;
};

}  // namespace tango::nn
