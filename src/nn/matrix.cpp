#include "nn/matrix.h"

#include <cmath>

#include "common/logging.h"

namespace tango::nn {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows(); ++r) {
    TANGO_CHECK(rows[static_cast<std::size_t>(r)].size() ==
                    static_cast<std::size_t>(m.cols()),
                "ragged row %d", r);
    for (int c = 0; c < m.cols(); ++c) {
      m.at(r, c) = rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
    }
  }
  return m;
}

void Matrix::XavierInit(Rng& rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
  for (auto& v : data_) {
    v = static_cast<float>(rng.Uniform(-bound, bound));
  }
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      t.at(c, r) = at(r, c);
    }
  }
  return t;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  TANGO_CHECK(cols_ == other.rows_, "matmul shape mismatch %dx%d * %dx%d",
              rows_, cols_, other.rows_, other.cols_);
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const float a = at(i, k);
      if (a == 0.0f) continue;
      const float* brow = other.data() + static_cast<std::size_t>(k) *
                                             static_cast<std::size_t>(other.cols_);
      float* orow = out.data() + static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(other.cols_);
      for (int j = 0; j < other.cols_; ++j) {
        orow[j] += a * brow[j];
      }
    }
  }
  return out;
}

void Matrix::Add(const Matrix& other) {
  TANGO_CHECK(SameShape(other), "add shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, float scale) {
  TANGO_CHECK(SameShape(other), "addscaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

}  // namespace tango::nn
