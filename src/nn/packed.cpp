#include "nn/packed.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/vet.h"

namespace tango::nn {

Matrix SoftmaxProbs(const Matrix& logits, const Matrix* mask) {
  Matrix p(logits.rows(), logits.cols());
  for (int r = 0; r < logits.rows(); ++r) {
    float maxv = -1e30f;
    for (int c = 0; c < logits.cols(); ++c) {
      if (mask != nullptr && mask->at(r, c) == 0.0f) continue;
      maxv = std::max(maxv, logits.at(r, c));
    }
    float denom = 0.0f;
    for (int c = 0; c < logits.cols(); ++c) {
      if (mask != nullptr && mask->at(r, c) == 0.0f) {
        p.at(r, c) = 0.0f;
        continue;
      }
      const float e = std::exp(logits.at(r, c) - maxv);
      p.at(r, c) = e;
      denom += e;
    }
    if (denom > 0.0f) {
      for (int c = 0; c < logits.cols(); ++c) p.at(r, c) /= denom;
    }
  }
  return p;
}

void PackedMatrix::Pack(const Matrix& w) {
  rows_ = w.rows();
  cols_ = w.cols();
  data_.resize(static_cast<std::size_t>(rows_) *
               static_cast<std::size_t>(cols_));
  // Panel-major: all rows of panel 0, then all rows of panel 1, …  Within a
  // panel, row k's slice is contiguous, so the kernel's k-step loads one
  // short run instead of striding across the full row.
  std::size_t cursor = 0;
  for (int p0 = 0; p0 < cols_; p0 += kPanel) {
    const int p1 = std::min(cols_, p0 + kPanel);
    for (int k = 0; k < rows_; ++k) {
      for (int j = p0; j < p1; ++j) {
        data_[cursor++] = w.at(k, j);
      }
    }
  }
}

void PackedMatrix::MatMulInto(const Matrix& x, Matrix* out) const {
  TANGO_CHECK(x.cols() == rows_, "packed matmul shape mismatch %dx%d * %dx%d",
              x.rows(), x.cols(), rows_, cols_);
  if (out->rows() != x.rows() || out->cols() != cols_) {
    *out = Matrix(x.rows(), cols_);
  } else {
    out->Fill(0.0f);
  }
  const float* pk = data_.data();
  for (int p0 = 0; p0 < cols_; p0 += kPanel) {
    const int width = std::min(cols_ - p0, kPanel);
    const float* panel = pk;
    for (int i = 0; i < x.rows(); ++i) {
      const float* xrow = x.data() + static_cast<std::size_t>(i) *
                                         static_cast<std::size_t>(rows_);
      float* orow = out->data() + static_cast<std::size_t>(i) *
                                      static_cast<std::size_t>(cols_) +
                    p0;
      const float* wk = panel;
      for (int k = 0; k < rows_; ++k, wk += width) {
        const float a = xrow[k];
        // Mirrors Matrix::MatMul's sparse-activation skip so the sequence
        // of adds per output element is identical.
        if (a == 0.0f) continue;
        for (int j = 0; j < width; ++j) {
          orow[j] += a * wk[j];
        }
      }
    }
    pk += static_cast<std::size_t>(width) * static_cast<std::size_t>(rows_);
  }
}

void PackedLinear::Forward(const Matrix& x, Matrix* out) const {
  w_.MatMulInto(x, out);
  for (int r = 0; r < out->rows(); ++r) {
    for (int c = 0; c < out->cols(); ++c) {
      out->at(r, c) += b_.at(0, c);
    }
  }
}

TANGO_HOT const Matrix& PackedMlp::Forward(const Matrix& x) {
  TANGO_CHECK(!layers_.empty(), "forward through an empty PackedMlp");
  const Matrix* in = &x;
  int slot = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix* out = &buf_[slot];
    layers_[l].Forward(*in, out);
    if (l + 1 < layers_.size()) ReluInPlace(out);
    in = out;
    slot ^= 1;
  }
  return *in;
}

void ReluInPlace(Matrix* m) {
  float* d = m->data();
  for (std::size_t i = 0; i < m->size(); ++i) d[i] = std::max(0.0f, d[i]);
}

}  // namespace tango::nn
