// TangoSolve packed inference path (DESIGN.md §14).
//
// Inference-only forward passes for the DCG-BE policy: layer weights are
// pre-packed once at policy load (and re-packed only when a training step
// changes them) into a panel-blocked layout, and batched node encodings run
// through a blocked GEMM kernel that never touches the autograd tape.
//
// Exactness contract: every routine here produces bit-identical floats to
// the naive taped pipeline it replaces. The GEMM accumulates each output
// element over k in ascending order with one rounding per fused
// multiply-add, exactly like Matrix::MatMul — panel blocking only reorders
// the j loop, which touches independent output elements. The `a == 0.0f`
// skip of the naive kernel is mirrored for the same reason.
//
// This header must stay free of the autograd engine: including autograd.h
// (or referencing Var/Node) here is a lint error (`inference-tape` in
// tools/lint.py) — the whole point of the path is that inference cannot
// accidentally allocate tape nodes.
#pragma once

#include <vector>

#include "nn/matrix.h"

namespace tango::nn {

/// Row-wise softmax probabilities with optional 0/1 mask; masked entries
/// get probability exactly 0 and a fully-masked row stays all-zero. This is
/// THE softmax kernel: the autograd Softmax op calls it for its forward
/// value, so packed inference and the taped path agree bit-for-bit.
Matrix SoftmaxProbs(const Matrix& logits, const Matrix* mask);

/// A weight matrix (in×out) re-laid-out into column panels: panel `p` holds
/// rows 0..in-1 of columns [p*kPanel, min(out, (p+1)*kPanel)) contiguously,
/// so the GEMM inner loop streams one cache-resident panel per k step.
class PackedMatrix {
 public:
  /// Panel width in floats (48 floats = 192 bytes ≈ 3 cache lines; the
  /// paper's layer widths 256/128/64/32 split into a handful of panels).
  static constexpr int kPanel = 48;

  PackedMatrix() = default;
  explicit PackedMatrix(const Matrix& w) { Pack(w); }

  void Pack(const Matrix& w);
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// out = x · W, bit-identical to x.MatMul(W) on the unpacked matrix.
  /// `out` is resized as needed and fully overwritten.
  void MatMulInto(const Matrix& x, Matrix* out) const;

 private:
  int rows_ = 0;  // in features
  int cols_ = 0;  // out features
  std::vector<float> data_;
};

/// Inference twin of nn::Linear: y = xW + b on pre-packed weights.
class PackedLinear {
 public:
  PackedLinear() = default;
  /// Pack from the layer's raw weight (in×out) and bias (1×out) values.
  PackedLinear(const Matrix& w, const Matrix& b) : w_(w), b_(b) {}

  int in_features() const { return w_.rows(); }
  int out_features() const { return w_.cols(); }

  /// `out` = x·W + b (bias broadcast over rows, one add per element — the
  /// same arithmetic the taped Add(MatMul(x, w), b) performs).
  void Forward(const Matrix& x, Matrix* out) const;

 private:
  PackedMatrix w_;
  Matrix b_;
};

/// Inference twin of nn::Mlp: hidden layers ReLU, output linear. Holds the
/// ping-pong scratch buffers so steady-state forwards reuse storage.
class PackedMlp {
 public:
  PackedMlp() = default;

  void Clear() { layers_.clear(); }
  bool empty() const { return layers_.empty(); }
  void AddLayer(const Matrix& w, const Matrix& b) {
    layers_.emplace_back(w, b);
  }

  /// Full forward pass; the result lives in an internal buffer that stays
  /// valid until the next Forward call.
  const Matrix& Forward(const Matrix& x);

 private:
  std::vector<PackedLinear> layers_;
  Matrix buf_[2];
};

/// In-place ReLU, bit-identical to the taped Relu forward (max(0, v)).
void ReluInPlace(Matrix* m);

/// Running count of autograd tape nodes ever created (relaxed atomic).
/// Inference-only code paths are validated by asserting this stays flat
/// across a forward pass. Defined in autograd.cpp; declared here so tape-
/// free code can observe it without pulling in the engine.
std::int64_t NodeCount();

}  // namespace tango::nn
