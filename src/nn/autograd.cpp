#include "nn/autograd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "nn/packed.h"

namespace tango::nn {

namespace {

/// Every tape node ever created; read through NodeCount() so inference-only
/// paths can prove they never touched the tape.
std::atomic<std::int64_t> node_count{0};

Var MakeNode(Matrix value, std::vector<Var> parents,
             std::function<void(Node&)> backward) {
  node_count.fetch_add(1, std::memory_order_relaxed);
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->parents = std::move(parents);
  bool needs = false;
  for (const auto& p : n->parents) needs = needs || p->requires_grad;
  n->requires_grad = needs;
  if (needs) n->backward = std::move(backward);
  return n;
}

void Topo(const Var& v, std::unordered_set<Node*>& seen,
          std::vector<Var>& order) {
  if (!v || seen.count(v.get()) != 0) return;
  seen.insert(v.get());
  for (const auto& p : v->parents) Topo(p, seen, order);
  order.push_back(v);
}

}  // namespace

// SoftmaxProbs lives in nn/packed.cpp: it is the shared forward kernel of
// both the taped Softmax/LogSoftmax ops below and the tape-free inference
// path, which is what keeps their probabilities bit-identical.

std::int64_t NodeCount() {
  return node_count.load(std::memory_order_relaxed);
}

Var Constant(Matrix m) {
  node_count.fetch_add(1, std::memory_order_relaxed);
  auto n = std::make_shared<Node>();
  n->value = std::move(m);
  n->requires_grad = false;
  return n;
}

Var Parameter(Matrix m) {
  node_count.fetch_add(1, std::memory_order_relaxed);
  auto n = std::make_shared<Node>();
  n->value = std::move(m);
  n->requires_grad = true;
  return n;
}

void Backward(const Var& root) {
  TANGO_CHECK(root != nullptr, "null root");
  std::unordered_set<Node*> seen;
  std::vector<Var> order;
  Topo(root, seen, order);
  root->EnsureGrad().Fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node& n = **it;
    if (n.requires_grad && n.backward) {
      n.EnsureGrad();  // in case nothing seeded it (dead branch)
      n.backward(n);
    }
  }
}

void ZeroGrad(const Var& root) {
  std::unordered_set<Node*> seen;
  std::vector<Var> order;
  Topo(root, seen, order);
  for (auto& v : order) {
    if (v->grad.SameShape(v->value)) v->grad.Fill(0.0f);
  }
}

Var MatMul(const Var& a, const Var& b) {
  Matrix out = a->value.MatMul(b->value);
  return MakeNode(std::move(out), {a, b}, [](Node& n) {
    const Var& pa = n.parents[0];
    const Var& pb = n.parents[1];
    if (pa->requires_grad) {
      pa->EnsureGrad().Add(n.grad.MatMul(pb->value.Transposed()));
    }
    if (pb->requires_grad) {
      pb->EnsureGrad().Add(pa->value.Transposed().MatMul(n.grad));
    }
  });
}

Var Add(const Var& a, const Var& b) {
  const bool broadcast =
      b->value.rows() == 1 && a->value.rows() != 1 &&
      b->value.cols() == a->value.cols();
  TANGO_CHECK(broadcast || a->value.SameShape(b->value),
              "add shape mismatch %dx%d + %dx%d", a->value.rows(),
              a->value.cols(), b->value.rows(), b->value.cols());
  Matrix out = a->value;
  if (broadcast) {
    for (int r = 0; r < out.rows(); ++r) {
      for (int c = 0; c < out.cols(); ++c) out.at(r, c) += b->value.at(0, c);
    }
  } else {
    out.Add(b->value);
  }
  return MakeNode(std::move(out), {a, b}, [broadcast](Node& n) {
    const Var& pa = n.parents[0];
    const Var& pb = n.parents[1];
    if (pa->requires_grad) pa->EnsureGrad().Add(n.grad);
    if (pb->requires_grad) {
      Matrix& bg = pb->EnsureGrad();
      if (broadcast) {
        for (int r = 0; r < n.grad.rows(); ++r) {
          for (int c = 0; c < n.grad.cols(); ++c) {
            bg.at(0, c) += n.grad.at(r, c);
          }
        }
      } else {
        bg.Add(n.grad);
      }
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  TANGO_CHECK(a->value.SameShape(b->value), "sub shape mismatch");
  Matrix out = a->value;
  out.AddScaled(b->value, -1.0f);
  return MakeNode(std::move(out), {a, b}, [](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->EnsureGrad().Add(n.grad);
    if (n.parents[1]->requires_grad) {
      n.parents[1]->EnsureGrad().AddScaled(n.grad, -1.0f);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  TANGO_CHECK(a->value.SameShape(b->value), "mul shape mismatch");
  Matrix out = a->value;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.at(r, c) *= b->value.at(r, c);
  }
  return MakeNode(std::move(out), {a, b}, [](Node& n) {
    const Var& pa = n.parents[0];
    const Var& pb = n.parents[1];
    if (pa->requires_grad) {
      Matrix& ag = pa->EnsureGrad();
      for (int r = 0; r < n.grad.rows(); ++r) {
        for (int c = 0; c < n.grad.cols(); ++c) {
          ag.at(r, c) += n.grad.at(r, c) * pb->value.at(r, c);
        }
      }
    }
    if (pb->requires_grad) {
      Matrix& bg = pb->EnsureGrad();
      for (int r = 0; r < n.grad.rows(); ++r) {
        for (int c = 0; c < n.grad.cols(); ++c) {
          bg.at(r, c) += n.grad.at(r, c) * pa->value.at(r, c);
        }
      }
    }
  });
}

Var Scale(const Var& a, float s) {
  Matrix out = a->value;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.at(r, c) *= s;
  }
  return MakeNode(std::move(out), {a}, [s](Node& n) {
    if (n.parents[0]->requires_grad) {
      n.parents[0]->EnsureGrad().AddScaled(n.grad, s);
    }
  });
}

Var Relu(const Var& a) {
  Matrix out = a->value;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      out.at(r, c) = std::max(0.0f, out.at(r, c));
    }
  }
  return MakeNode(std::move(out), {a}, [](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Matrix& ag = n.parents[0]->EnsureGrad();
    for (int r = 0; r < n.grad.rows(); ++r) {
      for (int c = 0; c < n.grad.cols(); ++c) {
        if (n.parents[0]->value.at(r, c) > 0.0f) {
          ag.at(r, c) += n.grad.at(r, c);
        }
      }
    }
  });
}

Var LeakyRelu(const Var& a, float slope) {
  Matrix out = a->value;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      const float v = out.at(r, c);
      out.at(r, c) = v > 0.0f ? v : slope * v;
    }
  }
  return MakeNode(std::move(out), {a}, [slope](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Matrix& ag = n.parents[0]->EnsureGrad();
    for (int r = 0; r < n.grad.rows(); ++r) {
      for (int c = 0; c < n.grad.cols(); ++c) {
        const float factor =
            n.parents[0]->value.at(r, c) > 0.0f ? 1.0f : slope;
        ag.at(r, c) += factor * n.grad.at(r, c);
      }
    }
  });
}

Var Tanh(const Var& a) {
  Matrix out = a->value;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.at(r, c) = std::tanh(out.at(r, c));
  }
  return MakeNode(std::move(out), {a}, [](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Matrix& ag = n.parents[0]->EnsureGrad();
    for (int r = 0; r < n.grad.rows(); ++r) {
      for (int c = 0; c < n.grad.cols(); ++c) {
        const float y = n.value.at(r, c);
        ag.at(r, c) += (1.0f - y * y) * n.grad.at(r, c);
      }
    }
  });
}

Var Exp(const Var& a) {
  Matrix out = a->value;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.at(r, c) = std::exp(out.at(r, c));
  }
  return MakeNode(std::move(out), {a}, [](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Matrix& ag = n.parents[0]->EnsureGrad();
    for (int r = 0; r < n.grad.rows(); ++r) {
      for (int c = 0; c < n.grad.cols(); ++c) {
        ag.at(r, c) += n.value.at(r, c) * n.grad.at(r, c);
      }
    }
  });
}

Var Softmax(const Var& logits, const Matrix* mask) {
  Matrix mask_copy = mask != nullptr ? *mask : Matrix();
  const bool has_mask = mask != nullptr;
  Matrix p = SoftmaxProbs(logits->value, mask);
  return MakeNode(std::move(p), {logits}, [has_mask, mask_copy](Node& n) {
    (void)has_mask;
    (void)mask_copy;  // mask entries already have p = 0, grad flows as 0
    if (!n.parents[0]->requires_grad) return;
    Matrix& ag = n.parents[0]->EnsureGrad();
    for (int r = 0; r < n.grad.rows(); ++r) {
      float dot = 0.0f;
      for (int c = 0; c < n.grad.cols(); ++c) {
        dot += n.grad.at(r, c) * n.value.at(r, c);
      }
      for (int c = 0; c < n.grad.cols(); ++c) {
        ag.at(r, c) += n.value.at(r, c) * (n.grad.at(r, c) - dot);
      }
    }
  });
}

Var LogSoftmax(const Var& logits, const Matrix* mask) {
  Matrix p = SoftmaxProbs(logits->value, mask);
  Matrix out(p.rows(), p.cols());
  for (int r = 0; r < p.rows(); ++r) {
    for (int c = 0; c < p.cols(); ++c) {
      out.at(r, c) = p.at(r, c) > 0.0f ? std::log(p.at(r, c)) : -1e30f;
    }
  }
  auto probs = std::make_shared<Matrix>(std::move(p));
  return MakeNode(std::move(out), {logits}, [probs](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Matrix& ag = n.parents[0]->EnsureGrad();
    for (int r = 0; r < n.grad.rows(); ++r) {
      float gsum = 0.0f;
      for (int c = 0; c < n.grad.cols(); ++c) {
        // Fully-masked entries carry no gradient.
        if (probs->at(r, c) == 0.0f && n.value.at(r, c) <= -1e29f) continue;
        gsum += n.grad.at(r, c);
      }
      for (int c = 0; c < n.grad.cols(); ++c) {
        if (probs->at(r, c) == 0.0f && n.value.at(r, c) <= -1e29f) continue;
        ag.at(r, c) += n.grad.at(r, c) - probs->at(r, c) * gsum;
      }
    }
  });
}

Var GatherCols(const Var& a, const std::vector<int>& idx) {
  TANGO_CHECK(static_cast<int>(idx.size()) == a->value.rows(),
              "gather idx size mismatch");
  Matrix out(a->value.rows(), 1);
  for (int r = 0; r < out.rows(); ++r) {
    out.at(r, 0) = a->value.at(r, idx[static_cast<std::size_t>(r)]);
  }
  return MakeNode(std::move(out), {a}, [idx](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Matrix& ag = n.parents[0]->EnsureGrad();
    for (int r = 0; r < n.grad.rows(); ++r) {
      ag.at(r, idx[static_cast<std::size_t>(r)]) += n.grad.at(r, 0);
    }
  });
}

Var GatherRows(const Var& a, const std::vector<int>& rows) {
  Matrix out(static_cast<int>(rows.size()), a->value.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (int c = 0; c < a->value.cols(); ++c) {
      out.at(static_cast<int>(i), c) = a->value.at(rows[i], c);
    }
  }
  return MakeNode(std::move(out), {a}, [rows](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Matrix& ag = n.parents[0]->EnsureGrad();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (int c = 0; c < n.grad.cols(); ++c) {
        ag.at(rows[i], c) += n.grad.at(static_cast<int>(i), c);
      }
    }
  });
}

Var ConcatCols(const Var& a, const Var& b) {
  TANGO_CHECK(a->value.rows() == b->value.rows(), "concat rows mismatch");
  Matrix out(a->value.rows(), a->value.cols() + b->value.cols());
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < a->value.cols(); ++c) out.at(r, c) = a->value.at(r, c);
    for (int c = 0; c < b->value.cols(); ++c) {
      out.at(r, a->value.cols() + c) = b->value.at(r, c);
    }
  }
  const int acols = a->value.cols();
  return MakeNode(std::move(out), {a, b}, [acols](Node& n) {
    const Var& pa = n.parents[0];
    const Var& pb = n.parents[1];
    if (pa->requires_grad) {
      Matrix& ag = pa->EnsureGrad();
      for (int r = 0; r < n.grad.rows(); ++r) {
        for (int c = 0; c < acols; ++c) ag.at(r, c) += n.grad.at(r, c);
      }
    }
    if (pb->requires_grad) {
      Matrix& bg = pb->EnsureGrad();
      for (int r = 0; r < n.grad.rows(); ++r) {
        for (int c = 0; c < bg.cols(); ++c) {
          bg.at(r, c) += n.grad.at(r, acols + c);
        }
      }
    }
  });
}

Var Transpose(const Var& a) {
  return MakeNode(a->value.Transposed(), {a}, [](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    n.parents[0]->EnsureGrad().Add(n.grad.Transposed());
  });
}

Var Sum(const Var& a) {
  Matrix out(1, 1);
  for (int r = 0; r < a->value.rows(); ++r) {
    for (int c = 0; c < a->value.cols(); ++c) out.at(0, 0) += a->value.at(r, c);
  }
  return MakeNode(std::move(out), {a}, [](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Matrix& ag = n.parents[0]->EnsureGrad();
    const float g = n.grad.at(0, 0);
    for (int r = 0; r < ag.rows(); ++r) {
      for (int c = 0; c < ag.cols(); ++c) ag.at(r, c) += g;
    }
  });
}

Var MeanAll(const Var& a) {
  const float inv =
      1.0f / static_cast<float>(a->value.rows() * a->value.cols());
  return Scale(Sum(a), inv);
}

float ScalarValue(const Var& a) {
  TANGO_CHECK(a->value.rows() == 1 && a->value.cols() == 1, "not a scalar");
  return a->value.at(0, 0);
}

Var EntropyOfSoftmax(const Var& logits, const Matrix* mask) {
  Matrix p = SoftmaxProbs(logits->value, mask);
  Matrix out(1, 1);
  float total = 0.0f;
  for (int r = 0; r < p.rows(); ++r) {
    for (int c = 0; c < p.cols(); ++c) {
      const float pv = p.at(r, c);
      if (pv > 0.0f) total -= pv * std::log(pv);
    }
  }
  out.at(0, 0) = total;
  auto probs = std::make_shared<Matrix>(std::move(p));
  return MakeNode(std::move(out), {logits}, [probs](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Matrix& ag = n.parents[0]->EnsureGrad();
    const float g = n.grad.at(0, 0);
    for (int r = 0; r < probs->rows(); ++r) {
      // Per-row entropy H_r; dH/dx_i = -p_i (log p_i + H_r).
      float hr = 0.0f;
      for (int c = 0; c < probs->cols(); ++c) {
        const float pv = probs->at(r, c);
        if (pv > 0.0f) hr -= pv * std::log(pv);
      }
      for (int c = 0; c < probs->cols(); ++c) {
        const float pv = probs->at(r, c);
        if (pv > 0.0f) {
          ag.at(r, c) += g * (-pv * (std::log(pv) + hr));
        }
      }
    }
  });
}

}  // namespace tango::nn
