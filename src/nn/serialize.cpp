#include "nn/serialize.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace tango::nn {

namespace {
constexpr const char* kMagic = "tango-params";
constexpr const char* kVersion = "v1";
}  // namespace

bool SaveParams(std::ostream& out, const ParamStore& store) {
  out << kMagic << ' ' << kVersion << "\n";
  out << store.params().size() << "\n";
  out.precision(9);
  for (std::size_t i = 0; i < store.params().size(); ++i) {
    const Var& p = store.params()[i];
    out << store.names()[i] << ' ' << p->value.rows() << ' '
        << p->value.cols() << "\n";
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        out << p->value.at(r, c);
        out << (c + 1 == p->value.cols() ? '\n' : ' ');
      }
    }
  }
  return static_cast<bool>(out);
}

bool SaveParamsFile(const std::string& path, const ParamStore& store) {
  std::ofstream out(path);
  return out && SaveParams(out, store);
}

bool LoadParams(std::istream& in, ParamStore& store) {
  std::string magic, version;
  std::size_t count = 0;
  if (!(in >> magic >> version >> count)) return false;
  if (magic != kMagic || version != kVersion) return false;
  if (count != store.params().size()) return false;

  // Parse everything into a staging buffer first so a malformed file never
  // leaves the store half-written.
  std::vector<Matrix> staged;
  staged.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    int rows = 0, cols = 0;
    if (!(in >> name >> rows >> cols)) return false;
    const Var& p = store.params()[i];
    if (name != store.names()[i] || rows != p->value.rows() ||
        cols != p->value.cols()) {
      return false;
    }
    Matrix m(rows, cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (!(in >> m.at(r, c))) return false;
      }
    }
    staged.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < count; ++i) {
    store.params()[i]->value = std::move(staged[i]);
  }
  return true;
}

bool LoadParamsFile(const std::string& path, ParamStore& store) {
  std::ifstream in(path);
  return in && LoadParams(in, store);
}

}  // namespace tango::nn
