// Dense row-major float matrix — the storage type of the autograd engine.
// Sized for the paper's networks (3-layer MLPs of 256/128/32 units, graphs
// of up to ~1000 nodes), so simple loops beat the complexity of a BLAS
// dependency.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace tango::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, float fill = 0.0f)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              fill) {}

  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int r, int c) {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  float at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Xavier/Glorot-uniform initialization, deterministic under `rng`.
  void XavierInit(Rng& rng);

  Matrix Transposed() const;

  /// this * other (asserts on shape mismatch).
  Matrix MatMul(const Matrix& other) const;

  /// In-place accumulate: this += other (same shape).
  void Add(const Matrix& other);
  /// this += scale * other.
  void AddScaled(const Matrix& other, float scale);

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

}  // namespace tango::nn
