#include "nn/module.h"

#include "common/logging.h"

namespace tango::nn {

Var ParamStore::Create(const std::string& name, int rows, int cols,
                       Rng& rng) {
  Matrix m(rows, cols);
  m.XavierInit(rng);
  Var v = Parameter(std::move(m));
  params_.push_back(v);
  names_.push_back(name);
  return v;
}

Var ParamStore::CreateZero(const std::string& name, int rows, int cols) {
  Var v = Parameter(Matrix(rows, cols));
  params_.push_back(v);
  names_.push_back(name);
  return v;
}

std::size_t ParamStore::ParamCount() const {
  std::size_t n = 0;
  for (const auto& p : params_) n += p->value.size();
  return n;
}

void ParamStore::ZeroGrads() {
  for (auto& p : params_) {
    if (p->grad.SameShape(p->value)) p->grad.Fill(0.0f);
  }
}

void CopyParams(const ParamStore& src, ParamStore& dst) {
  TANGO_CHECK(src.params().size() == dst.params().size(),
              "param store mismatch");
  for (std::size_t i = 0; i < src.params().size(); ++i) {
    dst.params()[i]->value = src.params()[i]->value;
  }
}

void SoftUpdateParams(const ParamStore& src, ParamStore& dst, float tau) {
  TANGO_CHECK(src.params().size() == dst.params().size(),
              "param store mismatch");
  for (std::size_t i = 0; i < src.params().size(); ++i) {
    Matrix& d = dst.params()[i]->value;
    const Matrix& s = src.params()[i]->value;
    for (int r = 0; r < d.rows(); ++r) {
      for (int c = 0; c < d.cols(); ++c) {
        d.at(r, c) = (1.0f - tau) * d.at(r, c) + tau * s.at(r, c);
      }
    }
  }
}

Linear::Linear(ParamStore& store, const std::string& name, int in, int out,
               Rng& rng)
    : in_(in), out_(out) {
  w_ = store.Create(name + ".w", in, out, rng);
  b_ = store.CreateZero(name + ".b", 1, out);
}

Var Linear::Forward(const Var& x) const {
  TANGO_CHECK(x->value.cols() == in_, "linear input dim %d != %d",
              x->value.cols(), in_);
  return Add(MatMul(x, w_), b_);
}

Mlp::Mlp(ParamStore& store, const std::string& name, std::vector<int> dims,
         Rng& rng, Activation hidden)
    : hidden_(hidden) {
  TANGO_CHECK(dims.size() >= 2, "mlp needs at least in/out dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(store, name + ".l" + std::to_string(i),
                         dims[i], dims[i + 1], rng);
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      switch (hidden_) {
        case Activation::kRelu:
          h = Relu(h);
          break;
        case Activation::kTanh:
          h = Tanh(h);
          break;
        case Activation::kNone:
          break;
      }
    }
  }
  return h;
}

Mlp Mlp::PaperHead(ParamStore& store, const std::string& name, int in,
                   int out, Rng& rng) {
  return Mlp(store, name, {in, 256, 128, 32, out}, rng);
}

}  // namespace tango::nn
