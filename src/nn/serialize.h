// Parameter (de)serialization: save a trained policy (e.g. DCG-BE's
// encoder + heads) and restore it into a freshly-constructed network of the
// same architecture. Plain-text format, versioned header:
//
//   tango-params v1
//   <num_tensors>
//   <name> <rows> <cols>
//   <row-major float values...>
#pragma once

#include <iosfwd>
#include <string>

#include "nn/module.h"

namespace tango::nn {

/// Write every parameter of `store` (names, shapes, values).
bool SaveParams(std::ostream& out, const ParamStore& store);
bool SaveParamsFile(const std::string& path, const ParamStore& store);

/// Load parameters into `store`. Names, order, and shapes must match the
/// saved file exactly (same architecture); returns false otherwise and
/// leaves `store` partially updated only on shape mismatch never (values
/// are validated before any write).
bool LoadParams(std::istream& in, ParamStore& store);
bool LoadParamsFile(const std::string& path, ParamStore& store);

}  // namespace tango::nn
