#include "nn/adam.h"

#include <cmath>

namespace tango::nn {

Adam::Adam(const ParamStore& store, AdamConfig cfg)
    : params_(store.params()), cfg_(cfg) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

float Adam::Step() {
  ++t_;
  // Global gradient norm for optional clipping.
  double norm_sq = 0.0;
  for (auto& p : params_) {
    if (!p->grad.SameShape(p->value)) p->grad = Matrix(p->value.rows(), p->value.cols());
    const float* g = p->grad.data();
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      norm_sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
    }
  }
  const float norm = static_cast<float>(std::sqrt(norm_sq));
  float scale = 1.0f;
  if (cfg_.grad_clip > 0.0f && norm > cfg_.grad_clip) {
    scale = cfg_.grad_clip / norm;
  }

  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Matrix& val = params_[k]->value;
    Matrix& grad = params_[k]->grad;
    Matrix& m = m_[k];
    Matrix& v = v_[k];
    float* x = val.data();
    float* g = grad.data();
    float* mm = m.data();
    float* vv = v.data();
    for (std::size_t i = 0; i < val.size(); ++i) {
      const float gi = g[i] * scale;
      mm[i] = cfg_.beta1 * mm[i] + (1.0f - cfg_.beta1) * gi;
      vv[i] = cfg_.beta2 * vv[i] + (1.0f - cfg_.beta2) * gi * gi;
      const float mhat = mm[i] / bc1;
      const float vhat = vv[i] / bc2;
      x[i] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
      g[i] = 0.0f;  // zero the gradient for the next step
    }
  }
  return norm;
}

}  // namespace tango::nn
