// Network building blocks: Linear layers, the 3-layer ReLU MLP the paper
// uses for both actor and critic (256/128/32 hidden units, §5.3.2), and a
// parameter registry that feeds the Adam optimizer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/autograd.h"

namespace tango::nn {

/// Collects trainable parameters so optimizers can iterate them.
class ParamStore {
 public:
  Var Create(const std::string& name, int rows, int cols, Rng& rng);
  Var CreateZero(const std::string& name, int rows, int cols);
  const std::vector<Var>& params() const { return params_; }
  const std::vector<std::string>& names() const { return names_; }
  std::size_t ParamCount() const;
  void ZeroGrads();

 private:
  std::vector<Var> params_;
  std::vector<std::string> names_;
};

/// Fully-connected layer y = xW + b.
class Linear {
 public:
  Linear() = default;
  Linear(ParamStore& store, const std::string& name, int in, int out,
         Rng& rng);
  Var Forward(const Var& x) const;
  int in_features() const { return in_; }
  int out_features() const { return out_; }

  /// Raw parameter values — what the packed inference path re-packs from.
  const Matrix& weight() const { return w_->value; }
  const Matrix& bias() const { return b_->value; }

 private:
  Var w_;
  Var b_;
  int in_ = 0;
  int out_ = 0;
};

/// Copy parameter values from `src` into `dst` (same structure required).
void CopyParams(const ParamStore& src, ParamStore& dst);

/// Polyak soft update: dst ← (1−tau)·dst + tau·src. Used for SAC targets.
void SoftUpdateParams(const ParamStore& src, ParamStore& dst, float tau);

enum class Activation { kRelu, kTanh, kNone };

/// Multi-layer perceptron with a configurable head activation.
class Mlp {
 public:
  Mlp() = default;
  /// `dims` = {in, h1, ..., out}; hidden activations ReLU, output linear.
  Mlp(ParamStore& store, const std::string& name, std::vector<int> dims,
      Rng& rng, Activation hidden = Activation::kRelu);
  Var Forward(const Var& x) const;

  /// The paper's actor/critic body: in → 256 → 128 → 32 → out, ReLU.
  static Mlp PaperHead(ParamStore& store, const std::string& name, int in,
                       int out, Rng& rng);

  /// Layer access for the packed inference path (re-packing weights).
  const std::vector<Linear>& layers() const { return layers_; }
  Activation hidden_activation() const { return hidden_; }

 private:
  std::vector<Linear> layers_;
  Activation hidden_ = Activation::kRelu;
};

}  // namespace tango::nn
