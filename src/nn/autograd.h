// Tape-based reverse-mode automatic differentiation over dense matrices.
//
// This is the stand-in for the paper's PyTorch dependency: enough ops to
// express the GraphSAGE/GCN/GAT encoders and the A2C/SAC heads of §5.3 —
// matmul, broadcast add, activations, row-wise softmax with masking (the
// policy context filter c_t), concat, gather, and scalar reductions.
//
// Usage: build a graph of Var nodes, call Backward(loss) — gradients
// accumulate into every reachable node with requires_grad.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace tango::nn {

struct Node;
using Var = std::shared_ptr<Node>;

struct Node {
  Matrix value;
  Matrix grad;  // same shape as value; lazily allocated
  bool requires_grad = false;
  std::vector<Var> parents;
  /// Propagates this->grad into parents' grads.
  std::function<void(Node&)> backward;

  Matrix& EnsureGrad() {
    if (!grad.SameShape(value)) grad = Matrix(value.rows(), value.cols());
    return grad;
  }
};

/// Wrap a constant (no gradient).
Var Constant(Matrix m);
/// Wrap a trainable parameter.
Var Parameter(Matrix m);

/// Reverse-mode sweep from `root` (root's grad seeded with ones).
void Backward(const Var& root);
/// Zero the gradient buffers of every node reachable from `root`.
void ZeroGrad(const Var& root);

// ---- Ops (all return fresh nodes) ----------------------------------------

Var MatMul(const Var& a, const Var& b);
/// Elementwise add; `b` may also be a 1×C row vector broadcast over rows.
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
/// Elementwise (Hadamard) product, same shapes.
Var Mul(const Var& a, const Var& b);
Var Scale(const Var& a, float s);
Var Relu(const Var& a);
Var LeakyRelu(const Var& a, float slope = 0.2f);
Var Tanh(const Var& a);
Var Exp(const Var& a);

/// Row-wise softmax. When `mask` is non-null (same shape, 0/1 constants),
/// masked entries get probability exactly 0 — the paper's context filter
/// p̂(s_t) = p(s_t) * c_t. A row that is entirely masked yields a uniform
/// distribution over nothing (all zeros).
Var Softmax(const Var& logits, const Matrix* mask = nullptr);

/// Row-wise log-softmax (numerically stable); mask handled as -inf logits.
Var LogSoftmax(const Var& logits, const Matrix* mask = nullptr);

/// Select entry (row, col) per row: out is R×1 with out[r] = a[r, idx[r]].
Var GatherCols(const Var& a, const std::vector<int>& idx);

/// Select a subset of rows: out[i] = a[rows[i]].
Var GatherRows(const Var& a, const std::vector<int>& rows);

/// Horizontal concat [a | b].
Var ConcatCols(const Var& a, const Var& b);

/// Matrix transpose.
Var Transpose(const Var& a);

/// Sum all entries to a 1×1 scalar.
Var Sum(const Var& a);
/// Mean of all entries to a 1×1 scalar.
Var MeanAll(const Var& a);

/// Scalar read of a 1×1 node.
float ScalarValue(const Var& a);

/// -Σ p log p per row, summed to 1×1 (entropy bonus for A2C).
Var EntropyOfSoftmax(const Var& logits, const Matrix* mask = nullptr);

}  // namespace tango::nn
