#include "fault/fault_plane.h"

#include <algorithm>

#include "common/logging.h"
#include "scope/scope.h"

namespace tango::fault {

namespace {

std::pair<std::int32_t, std::int32_t> LinkKey(ClusterId a, ClusterId b) {
  const auto mm = std::minmax(a.value, b.value);
  return {mm.first, mm.second};
}

std::string TargetName(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kNodeCrash:
    case FaultKind::kNodeRecover:
    case FaultKind::kNodeDrain:
    case FaultKind::kNodeUndrain:
      return "node " + std::to_string(e.node.value);
    case FaultKind::kLinkDegrade:
    case FaultKind::kLinkRestore:
    case FaultKind::kPartition:
    case FaultKind::kHeal: {
      const auto key = LinkKey(e.cluster_a, e.cluster_b);
      return "link " + std::to_string(key.first) + "-" +
             std::to_string(key.second);
    }
    case FaultKind::kMasterFail:
    case FaultKind::kMasterRecover:
      return "master " + std::to_string(e.cluster_a.value);
  }
  return "?";
}

}  // namespace

FaultPlane::FaultPlane(k8s::EdgeCloudSystem* system,
                       const FaultScript& script)
    : system_(system) {
  TANGO_CHECK(system_ != nullptr, "fault plane needs a system");
  for (const FaultEvent& event : script.events()) {
    ++events_armed_;
    system_->simulator().ScheduleAt(event.at,
                                    [this, event]() { Apply(event); });
  }
}

int FaultPlane::active_faults() const {
  return static_cast<int>(down_nodes_.size() + drained_nodes_.size() +
                          down_masters_.size() + faulted_links_.size());
}

void FaultPlane::Apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      system_->CrashWorker(event.node);
      down_nodes_.insert(event.node.value);
      drained_nodes_.erase(event.node.value);  // a crash supersedes a drain
      break;
    case FaultKind::kNodeRecover:
      system_->RecoverWorker(event.node);
      down_nodes_.erase(event.node.value);
      break;
    case FaultKind::kNodeDrain:
      system_->DrainWorker(event.node);
      if (system_->WorkerAlive(event.node)) {
        drained_nodes_.insert(event.node.value);
      }
      break;
    case FaultKind::kNodeUndrain:
      system_->UndrainWorker(event.node);
      drained_nodes_.erase(event.node.value);
      break;
    case FaultKind::kLinkDegrade: {
      k8s::LinkFault lf;
      lf.latency_mult = event.latency_mult;
      lf.loss = event.loss;
      system_->SetLinkFault(event.cluster_a, event.cluster_b, lf);
      faulted_links_.insert(LinkKey(event.cluster_a, event.cluster_b));
      break;
    }
    case FaultKind::kLinkRestore:
    case FaultKind::kHeal:
      system_->ClearLinkFault(event.cluster_a, event.cluster_b);
      faulted_links_.erase(LinkKey(event.cluster_a, event.cluster_b));
      break;
    case FaultKind::kPartition: {
      k8s::LinkFault lf;
      lf.cut = true;
      system_->SetLinkFault(event.cluster_a, event.cluster_b, lf);
      faulted_links_.insert(LinkKey(event.cluster_a, event.cluster_b));
      break;
    }
    case FaultKind::kMasterFail:
      system_->FailMaster(event.cluster_a);
      down_masters_.insert(event.cluster_a.value);
      break;
    case FaultKind::kMasterRecover:
      system_->RecoverMaster(event.cluster_a);
      down_masters_.erase(event.cluster_a.value);
      break;
  }
  TimelineEntry entry;
  entry.at = system_->simulator().Now();
  entry.kind = event.kind;
  entry.target = TargetName(event);
  entry.workers_alive = system_->workers_alive();
  entry.masters_alive = system_->masters_alive();
  entry.active_faults = active_faults();
  // FaultKindName returns a string literal, satisfying the tracer's
  // static-storage contract for names.
  TANGO_SCOPE_INSTANT(FaultKindName(entry.kind), "fault", entry.at,
                      .node = event.node.value,
                      .value = entry.active_faults);
  timeline_.push_back(std::move(entry));
}

std::vector<std::pair<SimTime, SimTime>> FaultPlane::Windows(
    SimTime horizon) const {
  std::vector<std::pair<SimTime, SimTime>> windows;
  SimTime open = -1;
  for (const TimelineEntry& e : timeline_) {
    if (e.active_faults > 0 && open < 0) {
      open = e.at;
    } else if (e.active_faults == 0 && open >= 0) {
      if (e.at > open) windows.emplace_back(open, std::min(e.at, horizon));
      open = -1;
    }
  }
  if (open >= 0 && open < horizon) windows.emplace_back(open, horizon);
  return windows;
}

SimTime FaultPlane::LastRecoveryTime() const {
  SimTime last = 0;
  for (const TimelineEntry& e : timeline_) {
    if (e.active_faults == 0) {
      last = e.at;
    } else {
      last = -1;
    }
  }
  return last >= 0 ? last : -1;
}

}  // namespace tango::fault
