#include "fault/fault_script.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace tango::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kNodeRecover:
      return "node-recover";
    case FaultKind::kNodeDrain:
      return "node-drain";
    case FaultKind::kNodeUndrain:
      return "node-undrain";
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kLinkRestore:
      return "link-restore";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kMasterFail:
      return "master-fail";
    case FaultKind::kMasterRecover:
      return "master-recover";
  }
  return "?";
}

FaultScript& FaultScript::Add(FaultEvent event) {
  events_.push_back(event);
  return *this;
}

namespace {
FaultEvent NodeEvent(SimTime at, FaultKind kind, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = kind;
  e.node = node;
  return e;
}

FaultEvent LinkEvent(SimTime at, FaultKind kind, ClusterId a, ClusterId b,
                     double mult = 1.0, double loss = 0.0) {
  FaultEvent e;
  e.at = at;
  e.kind = kind;
  e.cluster_a = a;
  e.cluster_b = b;
  e.latency_mult = mult;
  e.loss = loss;
  return e;
}
}  // namespace

FaultScript& FaultScript::CrashNode(SimTime at, NodeId node) {
  return Add(NodeEvent(at, FaultKind::kNodeCrash, node));
}
FaultScript& FaultScript::RecoverNode(SimTime at, NodeId node) {
  return Add(NodeEvent(at, FaultKind::kNodeRecover, node));
}
FaultScript& FaultScript::CrashNodeFor(SimTime at, SimDuration downtime,
                                       NodeId node) {
  CrashNode(at, node);
  return RecoverNode(at + downtime, node);
}
FaultScript& FaultScript::DrainNode(SimTime at, NodeId node) {
  return Add(NodeEvent(at, FaultKind::kNodeDrain, node));
}
FaultScript& FaultScript::UndrainNode(SimTime at, NodeId node) {
  return Add(NodeEvent(at, FaultKind::kNodeUndrain, node));
}
FaultScript& FaultScript::DegradeLink(SimTime at, ClusterId a, ClusterId b,
                                      double latency_mult, double loss) {
  TANGO_CHECK(latency_mult >= 1.0, "degrade must not speed a link up");
  TANGO_CHECK(loss >= 0.0 && loss < 1.0, "loss must be in [0,1)");
  return Add(LinkEvent(at, FaultKind::kLinkDegrade, a, b, latency_mult, loss));
}
FaultScript& FaultScript::RestoreLink(SimTime at, ClusterId a, ClusterId b) {
  return Add(LinkEvent(at, FaultKind::kLinkRestore, a, b));
}
FaultScript& FaultScript::Partition(SimTime at, ClusterId a, ClusterId b) {
  return Add(LinkEvent(at, FaultKind::kPartition, a, b));
}
FaultScript& FaultScript::Heal(SimTime at, ClusterId a, ClusterId b) {
  return Add(LinkEvent(at, FaultKind::kHeal, a, b));
}
FaultScript& FaultScript::PartitionFor(SimTime at, SimDuration downtime,
                                       ClusterId a, ClusterId b) {
  Partition(at, a, b);
  return Heal(at + downtime, a, b);
}
FaultScript& FaultScript::FailMaster(SimTime at, ClusterId cluster) {
  return Add(LinkEvent(at, FaultKind::kMasterFail, cluster, ClusterId{}));
}
FaultScript& FaultScript::RecoverMaster(SimTime at, ClusterId cluster) {
  return Add(LinkEvent(at, FaultKind::kMasterRecover, cluster, ClusterId{}));
}
FaultScript& FaultScript::FailMasterFor(SimTime at, SimDuration downtime,
                                        ClusterId cluster) {
  FailMaster(at, cluster);
  return RecoverMaster(at + downtime, cluster);
}

FaultScript& FaultScript::Append(const FaultScript& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  return *this;
}

std::vector<FaultEvent> FaultScript::events() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

FaultScript GenerateChaos(const ChaosProfile& profile,
                          const std::vector<NodeId>& workers,
                          int num_clusters) {
  TANGO_CHECK(profile.end > profile.start, "chaos window must be non-empty");
  FaultScript script;
  Rng rng(profile.seed);

  auto downtime = [&rng](SimDuration lo, SimDuration hi) {
    return static_cast<SimDuration>(rng.UniformInt(lo, std::max(lo, hi)));
  };
  // Each fault family is a Poisson process over [start, end): exponential
  // inter-fault gaps at the configured per-minute rate.
  auto next_gap = [&rng](double per_min) {
    return FromSeconds(rng.Exponential(per_min / 60.0));
  };

  if (profile.crashes_per_min > 0 && !workers.empty()) {
    for (SimTime t = profile.start + next_gap(profile.crashes_per_min);
         t < profile.end; t += next_gap(profile.crashes_per_min)) {
      const auto pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(workers.size()) - 1));
      script.CrashNodeFor(
          t, downtime(profile.min_downtime, profile.max_downtime),
          workers[pick]);
    }
  }

  if (profile.link_faults_per_min > 0 && num_clusters > 1) {
    for (SimTime t = profile.start + next_gap(profile.link_faults_per_min);
         t < profile.end; t += next_gap(profile.link_faults_per_min)) {
      const auto a = static_cast<std::int32_t>(
          rng.UniformInt(0, num_clusters - 1));
      auto b = static_cast<std::int32_t>(
          rng.UniformInt(0, num_clusters - 2));
      if (b >= a) ++b;
      const SimDuration down =
          downtime(profile.min_link_downtime, profile.max_link_downtime);
      if (rng.Bernoulli(profile.partition_fraction)) {
        script.PartitionFor(t, down, ClusterId{a}, ClusterId{b});
      } else {
        script.DegradeLink(t, ClusterId{a}, ClusterId{b},
                           profile.degraded_latency_mult,
                           profile.degraded_loss);
        script.RestoreLink(t + down, ClusterId{a}, ClusterId{b});
      }
    }
  }

  if (profile.master_fails_per_min > 0 && num_clusters > 0) {
    for (SimTime t = profile.start + next_gap(profile.master_fails_per_min);
         t < profile.end; t += next_gap(profile.master_fails_per_min)) {
      const auto c = static_cast<std::int32_t>(
          rng.UniformInt(0, num_clusters - 1));
      script.FailMasterFor(
          t, downtime(profile.min_master_downtime,
                      profile.max_master_downtime),
          ClusterId{c});
    }
  }
  return script;
}

std::vector<FaultScript> SplitByCluster(
    const FaultScript& script, int num_clusters,
    const std::function<ClusterId(NodeId)>& cluster_of) {
  std::vector<FaultScript> out(static_cast<std::size_t>(num_clusters));
  const auto in_range = [num_clusters](ClusterId c) {
    return c.valid() && c.value < num_clusters;
  };
  for (const FaultEvent& ev : script.events()) {
    switch (ev.kind) {
      case FaultKind::kNodeCrash:
      case FaultKind::kNodeRecover:
      case FaultKind::kNodeDrain:
      case FaultKind::kNodeUndrain: {
        const ClusterId c = cluster_of(ev.node);
        if (in_range(c)) out[static_cast<std::size_t>(c.value)].Add(ev);
        break;
      }
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkRestore:
      case FaultKind::kPartition:
      case FaultKind::kHeal: {
        if (in_range(ev.cluster_a)) {
          out[static_cast<std::size_t>(ev.cluster_a.value)].Add(ev);
        }
        if (in_range(ev.cluster_b) && ev.cluster_b != ev.cluster_a) {
          out[static_cast<std::size_t>(ev.cluster_b.value)].Add(ev);
        }
        break;
      }
      case FaultKind::kMasterFail:
      case FaultKind::kMasterRecover: {
        if (in_range(ev.cluster_a)) {
          out[static_cast<std::size_t>(ev.cluster_a.value)].Add(ev);
        }
        break;
      }
    }
  }
  return out;
}

FaultScript MakeRegionalFailover(
    SimTime at, SimDuration downtime, ClusterId cluster,
    const std::vector<k8s::ClusterSpec>& clusters) {
  FaultScript script;
  std::int32_t next = 0;
  std::int32_t index = 0;
  for (const auto& cl : clusters) {
    ++next;  // the cluster master takes the first id
    // Cluster ids are assigned positionally when the system is built, so
    // match by position — specs straight out of PhysicalClusters still
    // carry the invalid default id.
    if (index == cluster.value) {
      script.FailMasterFor(at, downtime, cluster);
      for (int w = 0; w < cl.num_workers; ++w) {
        script.CrashNodeFor(at, downtime, NodeId{next + w});
      }
    }
    next += cl.num_workers;
    ++index;
  }
  return script;
}

std::vector<NodeId> WorkerIds(const std::vector<k8s::ClusterSpec>& clusters) {
  std::vector<NodeId> out;
  std::int32_t next = 0;
  for (const auto& cl : clusters) {
    ++next;  // the cluster master takes the first id
    for (int w = 0; w < cl.num_workers; ++w) out.push_back(NodeId{next++});
  }
  return out;
}

}  // namespace tango::fault
