// FaultPlane: applies a FaultScript to a live EdgeCloudSystem and records
// the availability timeline.
//
// The plane schedules every scripted event on the system's own simulator, so
// fault injection interleaves deterministically with arrivals, dispatches and
// state syncs. Each applied event appends a TimelineEntry capturing the
// instant's availability (workers/masters alive, active fault count); the
// resulting timeline is the ground truth for the resilience metrics in
// eval::ResilienceReport and is bit-identical across runs of the same
// seed + script.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_script.h"
#include "k8s/system.h"

namespace tango::fault {

/// One applied fault event plus the availability snapshot just after it.
struct TimelineEntry {
  SimTime at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  std::string target;     // "node 7", "link 2-5", "master 0"
  int workers_alive = 0;
  int masters_alive = 0;
  int active_faults = 0;  // outstanding faults after this event
};

class FaultPlane {
 public:
  /// Arms every event of the script on the system's simulator. The system
  /// must outlive the plane; Run() the system afterwards as usual.
  FaultPlane(k8s::EdgeCloudSystem* system, const FaultScript& script);

  const std::vector<TimelineEntry>& timeline() const { return timeline_; }
  int events_injected() const { return static_cast<int>(timeline_.size()); }
  int events_armed() const { return events_armed_; }
  /// Outstanding faults right now (0 = system nominal).
  int active_faults() const;

  /// Merged [start, end) intervals during which at least one fault was
  /// active, clamped to [0, horizon). Back-to-back faults merge into one
  /// window; a fault never healed extends to the horizon.
  std::vector<std::pair<SimTime, SimTime>> Windows(SimTime horizon) const;

  /// The instant the system last returned to a fault-free state, or -1 if
  /// faults were still active at the last timeline entry (use the horizon).
  SimTime LastRecoveryTime() const;

 private:
  void Apply(const FaultEvent& event);

  k8s::EdgeCloudSystem* system_;
  int events_armed_ = 0;
  std::vector<TimelineEntry> timeline_;
  // Mirrors of the injected state, keyed by target, so overlapping scripts
  // (e.g. two chaos profiles crashing the same node) never double-count.
  std::set<std::int32_t> down_nodes_;
  std::set<std::int32_t> drained_nodes_;
  std::set<std::int32_t> down_masters_;
  std::set<std::pair<std::int32_t, std::int32_t>> faulted_links_;
};

}  // namespace tango::fault
