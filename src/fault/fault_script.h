// Fault scripts: declarative, deterministic descriptions of *what goes
// wrong and when* in an edge-cloud run.
//
// A FaultScript is an ordered list of FaultEvents — node crash/recovery,
// worker drain, link degradation (latency multiplier + loss), full link
// partition, and master failover. Scripts are either written by hand
// (regression tests, targeted ablations) or generated from a seeded
// ChaosProfile (random churn with exponential inter-fault gaps), so the same
// seed + profile always produces the same fault sequence and therefore —
// on the deterministic simulator — the same run.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "k8s/node.h"

namespace tango::fault {

enum class FaultKind {
  kNodeCrash,     // worker dies; running + queued requests are lost
  kNodeRecover,   // worker returns empty (BE containers restart, §4.1)
  kNodeDrain,     // worker stops admitting; queued work is re-routed
  kNodeUndrain,   // worker admits again
  kLinkDegrade,   // inter-cluster link: latency × mult, loss probability
  kLinkRestore,   // link back to nominal
  kPartition,     // inter-cluster link fully cut
  kHeal,          // partition healed
  kMasterFail,    // cluster master dies; its queues/role fail over
  kMasterRecover, // master returns (central role moves back if applicable)
};
const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  NodeId node;                // node faults
  ClusterId cluster_a;        // link faults (both), master faults (a only)
  ClusterId cluster_b;
  double latency_mult = 1.0;  // kLinkDegrade
  double loss = 0.0;          // kLinkDegrade, in [0,1)
};

/// Builder-style container for fault events. Events may be added in any
/// order; `events()` returns them sorted by (time, insertion order).
class FaultScript {
 public:
  FaultScript& CrashNode(SimTime at, NodeId node);
  FaultScript& RecoverNode(SimTime at, NodeId node);
  /// Crash + recover in one call.
  FaultScript& CrashNodeFor(SimTime at, SimDuration downtime, NodeId node);
  FaultScript& DrainNode(SimTime at, NodeId node);
  FaultScript& UndrainNode(SimTime at, NodeId node);
  FaultScript& DegradeLink(SimTime at, ClusterId a, ClusterId b,
                           double latency_mult, double loss = 0.0);
  FaultScript& RestoreLink(SimTime at, ClusterId a, ClusterId b);
  FaultScript& Partition(SimTime at, ClusterId a, ClusterId b);
  FaultScript& Heal(SimTime at, ClusterId a, ClusterId b);
  FaultScript& PartitionFor(SimTime at, SimDuration downtime, ClusterId a,
                            ClusterId b);
  FaultScript& FailMaster(SimTime at, ClusterId cluster);
  FaultScript& RecoverMaster(SimTime at, ClusterId cluster);
  FaultScript& FailMasterFor(SimTime at, SimDuration downtime,
                             ClusterId cluster);
  FaultScript& Add(FaultEvent event);

  /// Merge another script's events into this one.
  FaultScript& Append(const FaultScript& other);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Events sorted by (time, insertion order) — stable, deterministic.
  std::vector<FaultEvent> events() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Seeded random chaos: every parameter is an expectation, every draw comes
/// from one Rng, so a profile is as reproducible as a hand-written script.
struct ChaosProfile {
  std::uint64_t seed = 1;
  /// Faults are injected inside [start, end); recoveries may land later.
  SimTime start = 0;
  SimTime end = 60 * kSecond;
  /// Expected node crashes per minute across the whole system (0 = none).
  double crashes_per_min = 2.0;
  /// Downtime of a crashed node, uniform in [min, max].
  SimDuration min_downtime = 2 * kSecond;
  SimDuration max_downtime = 10 * kSecond;
  /// Expected link faults per minute (degradations and partitions).
  double link_faults_per_min = 1.0;
  /// Fraction of link faults that are full partitions (rest degrade).
  double partition_fraction = 0.3;
  double degraded_latency_mult = 5.0;
  double degraded_loss = 0.05;
  SimDuration min_link_downtime = 1 * kSecond;
  SimDuration max_link_downtime = 8 * kSecond;
  /// Expected master failures per minute.
  double master_fails_per_min = 0.0;
  SimDuration min_master_downtime = 3 * kSecond;
  SimDuration max_master_downtime = 10 * kSecond;
};

/// Generate a script over the given worker nodes and clusters. The caller
/// passes ids (rather than a system reference) so scripts can be generated
/// before the system exists and reused across framework variants.
FaultScript GenerateChaos(const ChaosProfile& profile,
                          const std::vector<NodeId>& workers,
                          int num_clusters);

/// Regional failover: `cluster`'s master and every one of its workers go
/// down at `at` and return after `downtime`. Pairs with storm's kFailover
/// scenario, whose rate envelopes re-home the failed region's arrivals
/// onto the surviving clusters over the same window.
FaultScript MakeRegionalFailover(SimTime at, SimDuration downtime,
                                 ClusterId cluster,
                                 const std::vector<k8s::ClusterSpec>& clusters);

/// Worker node ids for a cluster layout as EdgeCloudSystem numbers them
/// (per cluster: master first, then its workers, ids sequential) — lets a
/// chaos script target workers before the system is even built.
std::vector<NodeId> WorkerIds(const std::vector<k8s::ClusterSpec>& clusters);

/// Split a script into per-cluster scripts for the sharded engine: node and
/// master events land on the owning cluster; link events are duplicated to
/// *both* endpoints (each side of a degraded or cut link applies the fault
/// to its own egress view at the same virtual time, so senders in different
/// shards agree without exchanging messages). `cluster_of` maps a NodeId to
/// its owning cluster; events targeting unknown nodes or out-of-range
/// clusters are dropped. Per-cluster event order preserves the source
/// script's (time, insertion) order — determinism is a contract.
std::vector<FaultScript> SplitByCluster(
    const FaultScript& script, int num_clusters,
    const std::function<ClusterId(NodeId)>& cluster_of);

}  // namespace tango::fault
