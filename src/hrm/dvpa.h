// D-VPA: dynamic vertical pod autoscaling by ordered cgroup writes (§4.2).
//
// K8s' own VPA plugin deletes and rebuilds the pod to change its resources —
// an interruption of ~seconds. D-VPA instead writes the pod-level and
// container-level CGroup knobs in a strict order so the parent-bound
// invariant is never violated:
//     expansion:  pod first, then container;
//     shrinking:  container first, then pod.
// Either order mistake yields EINVAL from the hierarchy (kInvalidArgument),
// which the unit tests exercise.
#pragma once

#include <string>

#include "cgroup/cgroup.h"

namespace tango::hrm {

struct ScaleResult {
  bool ok = false;
  int writes = 0;
  /// Simulated latency of the operation (per the §7.1 measurement: a full
  /// D-VPA scaling op ≈ 23 ms; a native delete-and-rebuild ≈ 100×).
  SimDuration latency = 0;
  /// Whether the target container kept running through the operation.
  bool uninterrupted = true;
};

class DvpaScaler {
 public:
  explicit DvpaScaler(cgroup::OpLatencyModel latency = {})
      : latency_(latency) {}

  /// Scale `container_path` (child of `pod_path`) to the given CPU
  /// (millicores) and memory (MiB) limits, choosing the write order from the
  /// current values. Returns failure without touching anything further if a
  /// write is rejected.
  ScaleResult Scale(cgroup::Hierarchy& h, const std::string& pod_path,
                    const std::string& container_path, Millicores cpu,
                    MiB mem) const;

  /// The native K8s-VPA path for comparison: delete the pod subtree and
  /// recreate it with the new limits. Interrupts the workload and costs
  /// ~100× the D-VPA latency.
  ScaleResult NativeRebuild(cgroup::Hierarchy& h, const std::string& pod_path,
                            const std::string& container_name, Millicores cpu,
                            MiB mem) const;

  const cgroup::OpLatencyModel& latency_model() const { return latency_; }

 private:
  cgroup::OpLatencyModel latency_;
};

/// Millicores → cpu.cfs_quota_us at the standard 100 ms period.
std::int64_t QuotaFromMillicores(Millicores m);

}  // namespace tango::hrm
