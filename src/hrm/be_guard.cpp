#include "hrm/be_guard.h"

#include <algorithm>

namespace tango::hrm {

double LcPressure(Millicores used_lc, Millicores capacity) {
  if (capacity <= 0) return 1.0;
  const double p =
      static_cast<double>(used_lc) / static_cast<double>(capacity);
  return std::clamp(p, 0.0, 1.0);
}

Millicores BeAdmissionBound(const BeGuardConfig& cfg, Millicores capacity,
                            double lc_pressure) {
  const double frac =
      cfg.be_cap_idle + (cfg.be_cap_busy - cfg.be_cap_idle) * lc_pressure;
  const auto bound =
      static_cast<Millicores>(static_cast<double>(capacity) * frac);
  return std::max<Millicores>(bound, 0);
}

bool AdmitBe(const BeGuardConfig& cfg, Millicores capacity,
             Millicores used_lc, Millicores used_be, Millicores demand) {
  const Millicores bound =
      BeAdmissionBound(cfg, capacity, LcPressure(used_lc, capacity));
  return used_be + demand <= bound;
}

bool ShouldEvictForLc(Millicores max_worker_be, Millicores demand) {
  return max_worker_be >= demand;
}

}  // namespace tango::hrm
