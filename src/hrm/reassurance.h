// QoS re-assurance mechanism (§4.3, Algorithm 1).
//
// Every window (100 ms) and for every (worker node, LC service) pair, the
// re-assurer reads the slack score δ = 1 − ξ/γ from the QoS detector and
// nudges the service's minimum resource request on that node:
//     δ < α  →  increase the minimum requested amount,
//     δ > β  →  decrease it,
// in small steps at high frequency so adjustments stay smooth.
#pragma once

#include <functional>

#include "hrm/regulations.h"
#include "k8s/system.h"

namespace tango::hrm {

struct ReassuranceConfig {
  /// Slack thresholds: below α is "poor", above β is "excellent".
  double alpha = 0.1;
  double beta = 0.7;
  /// Multiplicative steps per adjustment. Growing reacts fast (a violation
  /// is urgent); shrinking is gentle so reclaiming headroom never pushes a
  /// service back over its target — "small proportion, high frequency".
  double step_up = 0.10;
  double step_down = 0.02;
  /// Evaluation period (the paper's 100 ms collection window).
  SimDuration period = 100 * kMillisecond;
  /// Ignore windows with fewer samples than this (no signal).
  int min_samples = 1;
};

class Reassurer {
 public:
  /// Attaches to the system's QoS detector and starts the periodic task on
  /// the system's simulator. `policy` must outlive the Reassurer.
  Reassurer(k8s::EdgeCloudSystem* system, HrmAllocationPolicy* policy,
            ReassuranceConfig cfg = {});
  ~Reassurer();

  Reassurer(const Reassurer&) = delete;
  Reassurer& operator=(const Reassurer&) = delete;

  std::int64_t adjustments_up() const { return ups_; }
  std::int64_t adjustments_down() const { return downs_; }

  /// One evaluation pass (also called by the periodic task).
  void Tick(SimTime now);

 private:
  void Nudge(NodeId node, ServiceId svc, double slack);

  k8s::EdgeCloudSystem* system_;
  HrmAllocationPolicy* policy_;
  ReassuranceConfig cfg_;
  sim::EventHandle tick_event_ = sim::kInvalidEvent;
  std::int64_t ups_ = 0;
  std::int64_t downs_ = 0;
};

}  // namespace tango::hrm
