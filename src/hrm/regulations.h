// HRM allocation policy — the resource usage regulations of §4.1 plus the
// per-(node, service) demand adjustment hook that the QoS re-assurance
// mechanism (§4.3) drives.
//
// Regulations implemented:
//   * LC services have strict priority: their minimum CPU needs are granted
//     first; if the node is overloaded LC shares are scaled pro rata and BE
//     receives nothing (compressible preemption).
//   * BE services expand into every idle millicore (up to the speedup cap)
//     via a water-filling pass — "BE maximizes idle resources".
//   * Memory is incompressible: an LC request that does not fit may evict
//     running BE requests (largest-memory victims first); BE admission never
//     evicts anything.
//   * Every admission pays the D-VPA scaling-op latency (the container's
//     limits are raised for the request and reclaimed at completion).
#pragma once

#include <map>

#include "cgroup/cgroup.h"
#include "k8s/allocation.h"

namespace tango::hrm {

struct HrmConfig {
  /// Per-request grant cap as a multiple of its minimum need.
  double speedup_cap = 2.0;
  /// Bounds on the re-assurance demand multiplier.
  double min_multiplier = 0.5;
  double max_multiplier = 3.0;
  /// D-VPA latency model (≈23 ms per full scaling op).
  cgroup::OpLatencyModel latency{};
  /// When false, admissions are free (used by ablations).
  bool charge_scaling_latency = true;
};

class HrmAllocationPolicy : public k8s::AllocationPolicy {
 public:
  explicit HrmAllocationPolicy(const workload::ServiceCatalog* catalog,
                               HrmConfig cfg = {});

  k8s::ResourceVec EffectiveDemand(
      NodeId node, const workload::ServiceSpec& service) const override;
  k8s::AdmitDecision Admit(
      const k8s::NodeSpec& node, const k8s::ExecSlot& incoming,
      const std::vector<k8s::ExecSlot>& running) const override;
  void ComputeGrants(const k8s::NodeSpec& node,
                     const std::vector<k8s::ExecSlot>& running,
                     std::vector<Millicores>& grants) const override;
  SimDuration AdmissionLatency() const override;
  bool PreemptsBeForLc() const override { return true; }
  std::string name() const override { return "HRM"; }

  // ---- Re-assurance hooks (§4.3) ---------------------------------------
  double Multiplier(NodeId node, ServiceId service) const;
  void SetMultiplier(NodeId node, ServiceId service, double m);
  /// Multiply the current value by `factor` and clamp to config bounds.
  void NudgeMultiplier(NodeId node, ServiceId service, double factor);

  const HrmConfig& config() const { return cfg_; }

 private:
  const workload::ServiceCatalog* catalog_;
  HrmConfig cfg_;
  std::map<std::pair<NodeId, ServiceId>, double> multiplier_;
};

}  // namespace tango::hrm
