#include "hrm/dvpa.h"

#include "audit/checkers.h"
#include "common/logging.h"

namespace tango::hrm {

using cgroup::Hierarchy;
using cgroup::WriteResult;

std::int64_t QuotaFromMillicores(Millicores m) {
  // quota_us / period_us == cores; period is 100'000 µs.
  return m * 100;
}

ScaleResult DvpaScaler::Scale(Hierarchy& h, const std::string& pod_path,
                              const std::string& container_path,
                              Millicores cpu, MiB mem) const {
  ScaleResult result;
  const cgroup::Group* pod = h.Find(pod_path);
  const cgroup::Group* container = h.Find(container_path);
  if (pod == nullptr || container == nullptr) return result;

  // The §4.2 protocol state machine audits every write's level, order, and
  // verdict under TANGO_AUDIT (no sim/node context at this layer).
  audit::checks::DvpaOrderChecker order(-1, -1, -1);
  using Level = audit::checks::DvpaOrderChecker::Level;

  const std::int64_t new_quota = QuotaFromMillicores(cpu);
  const std::int64_t old_pod_quota = pod->knobs().cpu_cfs_quota_us;
  // Expansion if the pod bound must grow (or is currently unlimited-to-
  // limited transition counts as shrink of an infinite bound — treat
  // unlimited as "larger than anything", so setting a finite value shrinks).
  const bool cpu_expand =
      old_pod_quota >= 0 && new_quota > old_pod_quota;
  order.BeginKind("cpu.cfs_quota_us", old_pod_quota, new_quota);
  auto write_cpu = [&](const std::string& path, Level level) {
    const WriteResult r = h.WriteCpuQuota(path, new_quota);
    order.OnWrite(level, r == WriteResult::kOk);
    if (r != WriteResult::kOk) return false;
    ++result.writes;
    return true;
  };
  // Ordered CPU writes: expand pod→container, shrink container→pod.
  const bool cpu_ok =
      cpu_expand ? (write_cpu(pod_path, Level::kPod) &&
                    write_cpu(container_path, Level::kContainer))
                 : (write_cpu(container_path, Level::kContainer) &&
                    write_cpu(pod_path, Level::kPod));
  if (!cpu_ok) {
    result.latency = result.writes * latency_.per_write;
    return result;
  }

  const MiB old_pod_mem = pod->knobs().memory_limit;
  const bool mem_expand = old_pod_mem >= 0 && mem > old_pod_mem;
  order.BeginKind("memory.limit_in_bytes", old_pod_mem, mem);
  auto write_mem = [&](const std::string& path, Level level) {
    const WriteResult r = h.WriteMemoryLimit(path, mem);
    order.OnWrite(level, r == WriteResult::kOk);
    if (r != WriteResult::kOk) return false;
    ++result.writes;
    return true;
  };
  const bool mem_ok =
      mem_expand ? (write_mem(pod_path, Level::kPod) &&
                    write_mem(container_path, Level::kContainer))
                 : (write_mem(container_path, Level::kContainer) &&
                    write_mem(pod_path, Level::kPod));
  result.ok = mem_ok;
  result.latency = result.writes * latency_.per_write;
  result.uninterrupted = true;  // cgroup writes never stop the container
  return result;
}

ScaleResult DvpaScaler::NativeRebuild(Hierarchy& h,
                                      const std::string& pod_path,
                                      const std::string& container_name,
                                      Millicores cpu, MiB mem) const {
  ScaleResult result;
  const cgroup::Group* pod = h.Find(pod_path);
  if (pod == nullptr) return result;
  const std::string parent =
      pod_path.substr(0, pod_path.rfind('/'));
  const std::string pod_name = pod_path.substr(pod_path.rfind('/') + 1);
  // Delete children, then the pod.
  const std::string container_path = pod_path + "/" + container_name;
  if (h.Find(container_path) != nullptr) {
    if (h.Remove(container_path) != WriteResult::kOk) return result;
  }
  if (h.Remove(pod_path) != WriteResult::kOk) return result;
  // Recreate with new limits (pod before container, as kubelet does).
  cgroup::Group* new_pod = h.Create(parent, pod_name);
  if (new_pod == nullptr) return result;
  if (h.WriteCpuQuota(pod_path, QuotaFromMillicores(cpu)) != WriteResult::kOk)
    return result;
  if (h.WriteMemoryLimit(pod_path, mem) != WriteResult::kOk) return result;
  result.writes += 2;
  if (h.Create(pod_path, container_name) == nullptr) return result;
  if (h.WriteCpuQuota(container_path, QuotaFromMillicores(cpu)) !=
      WriteResult::kOk)
    return result;
  if (h.WriteMemoryLimit(container_path, mem) != WriteResult::kOk)
    return result;
  result.writes += 2;
  result.ok = true;
  result.uninterrupted = false;  // the workload restarted
  result.latency = latency_.pod_rebuild;
  return result;
}

}  // namespace tango::hrm
