#include "hrm/reassurance.h"

#include "common/logging.h"
#include "scope/scope.h"

namespace tango::hrm {

Reassurer::Reassurer(k8s::EdgeCloudSystem* system,
                     HrmAllocationPolicy* policy, ReassuranceConfig cfg)
    : system_(system), policy_(policy), cfg_(cfg) {
  TANGO_CHECK(system_ && policy_, "reassurer wiring incomplete");
  TANGO_CHECK(cfg_.alpha < cfg_.beta, "alpha must be below beta");
  auto& sim = system_->simulator();
  tick_event_ = sim.StartPeriodic(sim.Now() + cfg_.period, cfg_.period,
                                  [this]() {
                                    Tick(system_->simulator().Now());
                                  });
}

Reassurer::~Reassurer() { system_->simulator().Cancel(tick_event_); }

void Reassurer::Nudge(NodeId node, ServiceId svc, double slack) {
  // Slack is reported in the instant's value as micro-units so the trace
  // stays integer-valued.
  const auto slack_micros = static_cast<std::int64_t>(slack * 1e6);
  if (slack < cfg_.alpha) {
    policy_->NudgeMultiplier(node, svc, 1.0 + cfg_.step_up);
    ++ups_;
    TANGO_SCOPE_INSTANT("reassure.grow", "hrm", system_->simulator().Now(),
                        .node = node.value, .service = svc.value,
                        .value = slack_micros);
  } else if (slack > cfg_.beta) {
    policy_->NudgeMultiplier(node, svc, 1.0 - cfg_.step_down);
    ++downs_;
    TANGO_SCOPE_INSTANT("reassure.shrink", "hrm", system_->simulator().Now(),
                        .node = node.value, .service = svc.value,
                        .value = slack_micros);
  }
  // α ≤ δ ≤ β: "stable" — leave the allocation untouched.
}

void Reassurer::Tick(SimTime now) {
  auto& detector = system_->qos_detector();
  const auto& catalog = system_->catalog();
  if (cfg_.min_samples >= 1) {
    // Fast path: only (node, LC service) pairs that ever completed a
    // request have a QoS window; every other pair fails the min_samples
    // gate anyway. Active windows iterate in ascending (node, service)
    // order — the same order the full node×service scan visits them — so
    // the nudge sequence is identical.
    detector.ForEachActiveWindow(
        now, [&](NodeId node, ServiceId svc, std::size_t samples) {
          if (static_cast<int>(samples) < cfg_.min_samples) return;
          const k8s::WorkerNode* w = system_->FindWorker(node);
          if (w == nullptr || !w->alive()) return;
          const auto& spec = catalog.Get(svc);
          Nudge(node, svc,
                detector.SlackScore(now, node, svc, spec.qos_target));
        });
    return;
  }
  // min_samples <= 0 admits empty windows (slack +1 when idle), so the full
  // cross-product must be scanned.
  for (k8s::WorkerNode* node : system_->AllWorkers()) {
    if (!node->alive()) continue;  // nothing to reassure on a crashed node
    for (ServiceId svc : catalog.LcServices()) {
      const auto samples = detector.SampleCount(now, node->id(), svc);
      if (static_cast<int>(samples) < cfg_.min_samples) continue;
      const auto& spec = catalog.Get(svc);
      Nudge(node->id(), svc,
            detector.SlackScore(now, node->id(), svc, spec.qos_target));
    }
  }
}

}  // namespace tango::hrm
