#include "hrm/reassurance.h"

#include "common/logging.h"

namespace tango::hrm {

Reassurer::Reassurer(k8s::EdgeCloudSystem* system,
                     HrmAllocationPolicy* policy, ReassuranceConfig cfg)
    : system_(system), policy_(policy), cfg_(cfg) {
  TANGO_CHECK(system_ && policy_, "reassurer wiring incomplete");
  TANGO_CHECK(cfg_.alpha < cfg_.beta, "alpha must be below beta");
  stop_ = sim::SchedulePeriodic(
      system_->simulator(), system_->simulator().Now() + cfg_.period,
      cfg_.period, [this](SimTime now) { Tick(now); });
}

Reassurer::~Reassurer() {
  if (stop_) stop_();
}

void Reassurer::Tick(SimTime now) {
  auto& detector = system_->qos_detector();
  const auto& catalog = system_->catalog();
  for (k8s::WorkerNode* node : system_->AllWorkers()) {
    if (!node->alive()) continue;  // nothing to reassure on a crashed node
    for (ServiceId svc : catalog.LcServices()) {
      const auto samples =
          detector.SampleCount(now, node->id(), svc);
      if (static_cast<int>(samples) < cfg_.min_samples) continue;
      const auto& spec = catalog.Get(svc);
      const double slack =
          detector.SlackScore(now, node->id(), svc, spec.qos_target);
      if (slack < cfg_.alpha) {
        policy_->NudgeMultiplier(node->id(), svc, 1.0 + cfg_.step_up);
        ++ups_;
      } else if (slack > cfg_.beta) {
        policy_->NudgeMultiplier(node->id(), svc, 1.0 - cfg_.step_down);
        ++downs_;
      }
      // α ≤ δ ≤ β: "stable" — leave the allocation untouched.
    }
  }
}

}  // namespace tango::hrm
