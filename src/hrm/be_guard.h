// Per-cluster BE admission & eviction guard — the HRM decision loop the
// sharded engine runs on every master.
//
// §4.1's harvesting contract, reduced to the aggregate level a 100k-node
// simulation can afford: BE may harvest idle capacity, but LC must always
// find room, so each cluster (i) caps total BE residency at a fraction of
// capacity that *shrinks* as LC pressure grows, and (ii) evicts-and-
// restarts BE (never migrates — restart semantics per §4.1) when an LC
// request cannot fit even though BE is resident. Pure functions over
// aggregates: shard-safe, unit-testable, no system dependency.
#pragma once

#include "common/units.h"

namespace tango::hrm {

struct BeGuardConfig {
  /// BE may fill the cluster up to this fraction of total capacity when LC
  /// is idle...
  double be_cap_idle = 0.90;
  /// ...linearly squeezed down to this fraction as LC pressure approaches 1
  /// (mirrors the D-VPA shrink direction: LC grows, BE yields).
  double be_cap_busy = 0.20;
};

/// LC pressure of a cluster: LC usage over total capacity, in [0, 1].
double LcPressure(Millicores used_lc, Millicores capacity);

/// Maximum total BE residency the cluster tolerates at the given LC
/// pressure (millicores).
Millicores BeAdmissionBound(const BeGuardConfig& cfg, Millicores capacity,
                            double lc_pressure);

/// Admission check the target cluster's loop runs for one BE request:
/// admitting `demand` must keep total BE at or under the bound.
bool AdmitBe(const BeGuardConfig& cfg, Millicores capacity,
             Millicores used_lc, Millicores used_be, Millicores demand);

/// True when an LC request that cannot fit should trigger a BE
/// evict-and-restart: some worker must hold at least `demand` of BE for an
/// eviction to be able to free enough room.
bool ShouldEvictForLc(Millicores max_worker_be, Millicores demand);

}  // namespace tango::hrm
