#include "hrm/regulations.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace tango::hrm {

using k8s::AdmitDecision;
using k8s::ExecSlot;
using k8s::NodeSpec;
using k8s::ResourceVec;

HrmAllocationPolicy::HrmAllocationPolicy(
    const workload::ServiceCatalog* catalog, HrmConfig cfg)
    : catalog_(catalog), cfg_(cfg) {
  TANGO_CHECK(catalog_ != nullptr, "catalog required");
}

double HrmAllocationPolicy::Multiplier(NodeId node, ServiceId service) const {
  auto it = multiplier_.find({node, service});
  return it == multiplier_.end() ? 1.0 : it->second;
}

void HrmAllocationPolicy::SetMultiplier(NodeId node, ServiceId service,
                                        double m) {
  multiplier_[{node, service}] =
      std::clamp(m, cfg_.min_multiplier, cfg_.max_multiplier);
}

void HrmAllocationPolicy::NudgeMultiplier(NodeId node, ServiceId service,
                                          double factor) {
  SetMultiplier(node, service, Multiplier(node, service) * factor);
}

ResourceVec HrmAllocationPolicy::EffectiveDemand(
    NodeId node, const workload::ServiceSpec& service) const {
  const double m = Multiplier(node, service.id);
  return {static_cast<Millicores>(
              std::ceil(static_cast<double>(service.cpu_demand) * m)),
          service.mem_demand};
}

SimDuration HrmAllocationPolicy::AdmissionLatency() const {
  return cfg_.charge_scaling_latency ? cfg_.latency.FullScaleOp() : 0;
}

AdmitDecision HrmAllocationPolicy::Admit(
    const NodeSpec& node, const ExecSlot& incoming,
    const std::vector<ExecSlot>& running) const {
  AdmitDecision d;
  MiB mem_used = 0;
  for (const auto& s : running) mem_used += s.need.mem;
  const MiB free_mem = node.capacity.mem - mem_used;
  if (incoming.need.mem <= free_mem) {
    d.admit = true;
    return d;
  }
  if (!incoming.is_lc) return d;  // BE never evicts anyone

  // Memory preemption for LC: evict BE requests, largest memory first, until
  // the request fits. Evicted BE work restarts later (§4.1).
  std::vector<std::size_t> be_idx;
  for (std::size_t i = 0; i < running.size(); ++i) {
    if (!running[i].is_lc) be_idx.push_back(i);
  }
  std::sort(be_idx.begin(), be_idx.end(), [&](std::size_t a, std::size_t b) {
    return running[a].need.mem > running[b].need.mem;
  });
  MiB reclaimed = 0;
  for (std::size_t idx : be_idx) {
    d.evict.push_back(idx);
    reclaimed += running[idx].need.mem;
    if (incoming.need.mem <= free_mem + reclaimed) {
      d.admit = true;
      return d;
    }
  }
  d.evict.clear();  // even evicting every BE would not make room
  return d;
}

void HrmAllocationPolicy::ComputeGrants(const NodeSpec& node,
                                        const std::vector<ExecSlot>& running,
                                        std::vector<Millicores>& grants) const {
  grants.assign(running.size(), 0);
  if (running.empty()) return;
  const auto capacity = static_cast<double>(node.capacity.cpu);

  double lc_ask = 0.0;
  for (const auto& s : running) {
    if (s.is_lc) lc_ask += static_cast<double>(s.need.cpu);
  }

  // LC first: full ask, or pro-rata under overload.
  const double lc_scale = lc_ask <= capacity ? 1.0 : capacity / lc_ask;
  double used = 0.0;
  for (std::size_t i = 0; i < running.size(); ++i) {
    if (!running[i].is_lc) continue;
    grants[i] = static_cast<Millicores>(
        std::floor(static_cast<double>(running[i].need.cpu) * lc_scale));
    used += static_cast<double>(grants[i]);
  }

  // BE water-fill into the leftover, each request capped at
  // speedup_cap × need ("BE maximizes idle resources", Figure 4(a)).
  double leftover = std::max(0.0, capacity - used);
  std::vector<std::size_t> be;
  for (std::size_t i = 0; i < running.size(); ++i) {
    if (!running[i].is_lc) be.push_back(i);
  }
  for (int pass = 0; pass < 4 && leftover > 1.0 && !be.empty(); ++pass) {
    double ask = 0.0;
    for (std::size_t i : be) {
      const auto cap = cfg_.speedup_cap *
                       static_cast<double>(running[i].need.cpu);
      ask += std::max(0.0, cap - static_cast<double>(grants[i]));
    }
    if (ask <= 0.0) break;
    const double fill = std::min(1.0, leftover / ask);
    double granted_this_pass = 0.0;
    for (std::size_t i : be) {
      const auto cap = cfg_.speedup_cap *
                       static_cast<double>(running[i].need.cpu);
      const double headroom =
          std::max(0.0, cap - static_cast<double>(grants[i]));
      const auto inc = static_cast<Millicores>(std::floor(headroom * fill));
      grants[i] += inc;
      granted_this_pass += static_cast<double>(inc);
    }
    leftover -= granted_this_pass;
    if (granted_this_pass < 1.0) break;
  }
}

}  // namespace tango::hrm
