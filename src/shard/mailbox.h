// Lock-free per-pair mailboxes for the sharded engine.
//
// The grid holds one (outbox, inbox) vector pair per ordered shard pair.
// Synchronization is structural, not atomic:
//
//   - during an epoch, pair (s, d)'s outbox has exactly one writer — the
//     task running shard s — so appends need no lock;
//   - at the epoch barrier the main thread (after ThreadPool::ParallelFor's
//     join, which provides the happens-before edge) swaps every pair's
//     outbox into its inbox;
//   - at the start of the next epoch, shard d's task drains every (·, d)
//     inbox — again a single reader per vector.
//
// No mutexes, no atomics, no allocation in the steady state (swap recycles
// vector capacity). The conservative-lookahead contract is enforced at the
// door: Send aborts if a message's delivery time does not clear the epoch
// bound, because such a message could be delivered into a shard's past.
//
// Drain returns each destination shard's messages sorted by
// (deliver, src cluster, seq) — a total order every partition agrees on —
// so delivery scheduling is canonical and the engine stays byte-identical
// across shard counts.
#pragma once

#include <cstdint>
#include <vector>

#include "shard/message.h"

namespace tango::shard {

class MailboxGrid {
 public:
  explicit MailboxGrid(int num_shards);

  int num_shards() const { return num_shards_; }

  /// Set the current epoch bound; messages sent during the epoch must
  /// deliver strictly after it. Called by the engine (main thread) before
  /// the shard tasks launch.
  void BeginEpoch(SimTime bound) { bound_ = bound; }

  /// Append a message to the (src, dst) outbox. Single-writer: only the
  /// task currently running shard `src` may call this. Aborts when the
  /// message violates the lookahead (deliver <= epoch bound).
  void Send(int src, int dst, const ShardMessage& msg);

  /// Barrier step (main thread): move every outbox into its inbox. Any
  /// message still sitting in an inbox (undelivered from a previous
  /// exchange) is kept in front of the newly arrived ones — in practice
  /// Drain empties inboxes every epoch, so this is belt and braces.
  void Exchange();

  /// Move every (·, dst) inbox into `sink`, sorted by (deliver, src
  /// cluster, seq). Single-reader: only the task currently running shard
  /// `dst` may call this. `sink` is cleared first.
  void Drain(int dst, std::vector<ShardMessage>& sink);

  /// True when every outbox and inbox is empty (used by the engine's
  /// skip-ahead: with all mailboxes drained, the next event time alone
  /// bounds the next epoch).
  bool Empty() const;

  /// Earliest delivery time across every pending (exchanged or outgoing)
  /// message, or INT64_MAX when all mailboxes are empty. The engine folds
  /// this into its next-event scan: an in-flight message is a future event
  /// that lives in no simulator heap, and a fast-forward that leapt past
  /// its delivery time would schedule it into the destination shard's
  /// past. Bursty open-loop sources (storm scenarios) leave clusters
  /// quiet for whole lookahead windows, which is exactly when that skip
  /// would otherwise happen.
  SimTime MinPendingDeliver() const;

  /// Messages moved out of outboxes by Exchange so far.
  std::int64_t exchanged() const { return exchanged_; }
  /// Messages handed to shard tasks by Drain so far. At quiescence
  /// exchanged() == drained(); the engine audits the difference.
  std::int64_t drained() const { return drained_; }

 private:
  struct Pair {
    std::vector<ShardMessage> out;
    std::vector<ShardMessage> in;
  };
  Pair& At(int src, int dst) {
    return pairs_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(num_shards_) +
                  static_cast<std::size_t>(dst)];
  }
  const Pair& At(int src, int dst) const {
    return pairs_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(num_shards_) +
                  static_cast<std::size_t>(dst)];
  }

  int num_shards_ = 1;
  SimTime bound_ = 0;
  std::int64_t exchanged_ = 0;
  std::int64_t drained_ = 0;
  std::vector<Pair> pairs_;
};

}  // namespace tango::shard
