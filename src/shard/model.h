// ClusterModel: one edge cluster (master + workers + queues + beliefs) as
// shard-local state for the TangoShard engine.
//
// The monolithic k8s::EdgeCloudSystem holds every cluster in one state
// storage under one global Rng — exactly the coupling that serializes the
// simulation. ClusterModel is the sharded re-derivation of the same
// mechanics with a hard locality contract:
//
//   - a model only ever mutates its own cluster's state, its own Rng
//     stream (seeded from (run seed, cluster id)), and its own shard's
//     simulator; every cross-cluster effect leaves through the mailbox
//     grid (shard/mailbox.h) — even when the peer shares the shard;
//   - remote clusters are *beliefs*: aggregate views fed by kStateDelta
//     messages (delta-synced, version-stamped) and master-liveness bits
//     fed by kMasterDown/Up broadcasts and nacks. Decisions read beliefs,
//     never remote truth, so a cluster's event stream is a pure function
//     of its inputs and the engine stays byte-identical across shard
//     counts.
//
// Scheduling follows the two-tier split of sched/cluster_policy.h: the
// per-cluster loop places LC requests locally (evicting BE under
// hrm::BeGuard pressure rules when needed) and spills to geo-nearby
// clusters when full; BE requests funnel through the believed central
// master, which ranks clusters by synced free capacity and lets the
// target's own admission guard accept or bounce.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "fault/fault_script.h"
#include "hrm/be_guard.h"
#include "k8s/partition.h"
#include "k8s/resources.h"
#include "net/topology.h"
#include "sched/cluster_policy.h"
#include "scope/scope.h"
#include "shard/mailbox.h"
#include "shard/message.h"
#include "sim/simulator.h"
#include "storm/interference.h"
#include "storm/scenario.h"
#include "workload/service.h"

namespace tango::shard {

/// Knobs shared by every cluster, immutable during a run. Defaults mirror
/// k8s::SystemConfig so the sharded engine models the same system.
struct ModelConfig {
  const net::Topology* topology = nullptr;
  const workload::ServiceCatalog* catalog = nullptr;

  double lc_nearby_radius_km = 500.0;  // §5.2 dispatch scope
  SimDuration sync_period = 100 * kMillisecond;
  SimDuration lc_dispatch_interval = 2 * kMillisecond;
  SimDuration be_dispatch_interval = 5 * kMillisecond;
  SimDuration metrics_period = 800 * kMillisecond;
  SimDuration fault_detect_delay = 100 * kMillisecond;
  int max_reroutes = 16;    // LC: fault requeues + spill rejections
  int max_be_bounces = 8;   // BE: placement bounces through the central
  /// An LC request still open this many QoS targets after arrival is
  /// abandoned (client gave up; the record closes, late replies go stale).
  int abandon_after_targets = 4;
  double lc_rps = 50.0;  // per-cluster arrival rates
  double be_rps = 10.0;
  /// TangoStorm streaming arrivals: when set, each cluster pulls its
  /// requests from storm::BuildClusterStream(scenario_kind, *scenario, id)
  /// instead of the flat Poisson generators above — one independent,
  /// seed-derived stream per cluster, so the arrival pattern is identical
  /// no matter how clusters are packed onto shards.
  const storm::ScenarioConfig* scenario = nullptr;
  storm::ScenarioKind scenario_kind = storm::ScenarioKind::kSteady;
  /// Co-location interference: inflate a request's execution time at
  /// admission by its sensitivity response to the target worker's
  /// co-runner pressure. Null (default) = off, byte-identical runs.
  const storm::InterferenceModel* interference = nullptr;
  SimTime end_time = 10 * kSecond;
  Bytes delta_bytes = 256;    // state-sync delta payload size
  Bytes control_bytes = 128;  // master up/down, nack, reject payload size
  hrm::BeGuardConfig be_guard;

  /// Clusters by descending centrality (engine precomputes from the
  /// topology): the believed central master is the first entry whose
  /// master this cluster believes alive.
  std::vector<ClusterId> central_rank;
  /// Catalog ids split by class (cached so arrival sampling is O(1)).
  std::vector<ServiceId> lc_services;
  std::vector<ServiceId> be_services;
};

/// Egress fault state toward one peer cluster, as this cluster sees it.
/// fault::SplitByCluster duplicates link events to both endpoints, so the
/// two sides apply the same fault at the same virtual time.
struct LinkFault {
  double latency_mult = 1.0;
  double loss = 0.0;
  bool cut = false;
};

// Per-cluster counters, merged by the engine in cluster-id order.
struct ClusterStats {  // tango-lint: allow(stats-struct)
  std::int64_t lc_arrived = 0;
  std::int64_t lc_completed = 0;
  std::int64_t lc_qos_met = 0;
  std::int64_t lc_abandoned = 0;
  std::int64_t lc_dropped = 0;
  std::int64_t lc_spilled = 0;   // sent to a nearby cluster
  std::int64_t lc_remote = 0;    // executed here for a remote origin
  std::int64_t be_arrived = 0;
  std::int64_t be_completed = 0;
  std::int64_t be_dropped = 0;
  std::int64_t be_bounced = 0;
  std::int64_t be_evicted = 0;
  std::int64_t fault_requeues = 0;
  std::int64_t failovers = 0;
  std::int64_t deltas_sent = 0;
  std::int64_t deltas_skipped = 0;
  std::int64_t full_resyncs = 0;
  std::int64_t nacks = 0;
  std::int64_t msgs_sent = 0;  // mailbox sends (excludes local delivery)
  std::int64_t msgs_lost = 0;  // lossy/cut links, silent kinds only
  std::int64_t latency_sum_us = 0;  // completed LC end-to-end latency
  static constexpr int kLatencyBuckets = 32;
  std::int64_t latency_us_log2[kLatencyBuckets] = {};  // completed LC

  void Merge(const ClusterStats& o);
};

class ClusterModel {
 public:
  /// Engine-owned plumbing. The simulator and tracer belong to the shard
  /// that owns this cluster; the grid and partition are global but only
  /// touched under the mailbox single-writer discipline.
  struct Hookup {
    sim::Simulator* sim = nullptr;
    MailboxGrid* grid = nullptr;
    const k8s::Partition* partition = nullptr;
    scope::Tracer* tracer = nullptr;  // nullptr = tracing off
    int shard = 0;
  };

  ClusterModel(const ModelConfig* cfg, const k8s::ClusterSpec& spec,
               NodeId first_node, std::uint64_t run_seed,
               const Hookup& hookup);
  ClusterModel(const ClusterModel&) = delete;
  ClusterModel& operator=(const ClusterModel&) = delete;

  /// Schedule arrival generators and periodic loops (sync, metrics).
  void Start();
  /// Schedule this cluster's slice of the fault script (engine splits the
  /// global script with fault::SplitByCluster).
  void ScheduleFaults(const fault::FaultScript& script);

  /// Delivery trampoline target: handle one message addressed to this
  /// cluster. Called from this shard's simulator only.
  void OnMessage(const ShardMessage& msg);

  ClusterId id() const { return id_; }
  const ClusterStats& stats() const { return stats_; }
  /// FNV-1a over every externally visible transition, in per-cluster event
  /// order — the determinism witness compared across shard counts.
  std::uint64_t digest() const { return digest_; }
  Millicores capacity_total() const;

  /// One row per metrics period: mean CPU utilization over alive workers.
  struct PeriodRow {
    SimTime at = 0;
    double util = 0.0;
  };
  const std::vector<PeriodRow>& periods() const { return periods_; }

 private:
  struct Exec {
    Payload req;
    sim::EventHandle done = sim::kInvalidEvent;
    std::int32_t worker = -1;
    bool live = false;
  };
  struct Record {
    std::uint64_t uid = 0;
    std::uint32_t gen = 0;
    bool open = false;
    bool is_lc = false;
    SimTime arrival = 0;
    SimDuration deadline_us = 0;
    sim::EventHandle abandon = sim::kInvalidEvent;
    scope::SpanId span = scope::kInvalidSpan;
  };
  enum class Outcome : std::uint8_t { kCompleted, kAbandoned, kDropped };

  // --- workload ----------------------------------------------------------
  void ScheduleNextLc();
  void ScheduleNextBe();
  void OnLcArrival();
  void OnBeArrival();
  void ScheduleNextStorm();
  void OnStormArrival(const workload::Request& req);
  Payload SampleRequest(bool is_lc);
  /// Shared arrival bookkeeping (record, abandon timer, span, digest) for
  /// both the legacy Poisson path and the storm stream path.
  Payload MakePayload(bool is_lc, ServiceId service, SimDuration exec_us);

  // --- LC path -----------------------------------------------------------
  void RouteLc(const Payload& p);
  void ArmLcTick();
  void LcDispatch();
  bool TryPlaceLc(const Payload& p);
  void OnSpillArrival(const Payload& p);
  void FaultRequeueLc(Payload p);
  void LoseLc(const Payload& p, SimDuration extra_delay);
  void CompleteLc(const Payload& p);
  void AbandonLc(std::int32_t slot, std::uint32_t gen);
  void DropRequest(const Payload& p);

  // --- BE path -----------------------------------------------------------
  void RouteBe(Payload p);
  void ArmBeTick();
  void BeDispatch();
  bool AdmitBeLocal(const Payload& p);
  void BounceBe(Payload p, SimDuration extra_delay);
  void CompleteBe(const Payload& p);
  ClusterId BelievedCentral() const;

  // --- execution ---------------------------------------------------------
  void StartExec(std::int32_t worker, const Payload& p);
  void FinishExec(std::int32_t slot);
  void ReleaseExec(std::int32_t slot);
  Millicores EvictBeFrom(std::int32_t worker, Millicores need);

  // --- state sync & control ---------------------------------------------
  void SyncTick();
  void MetricsTick();
  void ApplyFault(const fault::FaultEvent& ev);
  void BroadcastControl(MsgKind kind);
  ClusterId FirstAliveDelegate() const;

  // --- transport ---------------------------------------------------------
  /// Send `p` as `kind` to `dst`. Local destinations ride the shard's own
  /// simulator at LAN delay; remote ones go through the mailbox grid with
  /// the egress fault model applied. `extra_delay` models detection lag.
  void Route(MsgKind kind, ClusterId dst, const Payload& p, Bytes bytes,
             SimDuration extra_delay = 0);
  void OnSendFailed(MsgKind kind, const Payload& p);
  void EnqueueLocal(const ShardMessage& msg, SimDuration delay);

  // --- records -----------------------------------------------------------
  std::int32_t AllocRecord();
  bool RecordLive(std::int32_t slot, std::uint32_t gen) const;
  void CloseRecord(std::int32_t slot, std::uint32_t gen, Outcome outcome);

  // --- bookkeeping -------------------------------------------------------
  std::int32_t LocalWorkerIndex(NodeId node) const;
  void Fold(std::uint64_t v) {
    digest_ = (digest_ ^ v) * 1099511628211ULL;
  }
  void FoldEvent(std::uint8_t code, std::uint64_t a, std::uint64_t b = 0);
  void CountLatency(SimDuration latency);
  Millicores UsableFree() const;
  std::int32_t LiveWorkers() const;

  const ModelConfig* cfg_;
  k8s::ClusterSpec spec_;
  ClusterId id_;
  NodeId first_node_;
  sim::Simulator* sim_;
  MailboxGrid* grid_;
  const k8s::Partition* partition_;
  scope::Tracer* tracer_;
  int shard_;
  Rng rng_;

  bool master_alive_ = true;
  std::vector<sched::WorkerView> workers_;
  std::vector<Millicores> be_used_;
  std::vector<std::vector<std::int32_t>> worker_execs_;
  /// Per-worker co-runner pressure loads (intensity × granted cores),
  /// maintained only when cfg_->interference is set.
  std::vector<double> membw_load_;
  std::vector<double> llc_load_;
  std::unique_ptr<storm::ScenarioSource> storm_source_;

  std::vector<Exec> execs_;
  std::vector<std::int32_t> free_execs_;
  std::vector<Record> records_;
  std::vector<std::int32_t> free_records_;

  std::vector<Payload> lc_queue_;
  std::size_t lc_head_ = 0;
  std::vector<Payload> be_queue_;  // acting-central dispatch queue
  std::vector<Payload> be_keep_;   // BeDispatch retention scratch
  std::vector<ClusterId> be_rank_scratch_;  // BeDispatch ranking scratch
  std::vector<sched::ClusterView> spill_scratch_;  // LC spill candidates
  bool lc_tick_armed_ = false;
  bool be_tick_armed_ = false;

  std::vector<sched::ClusterView> views_;       // indexed by cluster id
  std::vector<std::uint8_t> master_alive_view_;  // believed liveness
  std::vector<LinkFault> links_;                // egress fault state
  std::vector<ClusterId> nearby_;               // LC spill scope
  std::vector<ClusterId> delegate_order_;       // failover preference

  std::uint64_t sync_version_ = 0;
  Millicores last_free_ = -1;
  std::int32_t last_live_ = -1;
  bool force_push_ = false;

  std::vector<ShardMessage> local_slab_;  // pooled local-delivery messages
  std::vector<std::uint32_t> local_free_;

  std::uint64_t seq_next_ = 0;
  std::uint64_t uid_next_ = 0;
  std::uint64_t digest_ = 14695981039346656037ULL;  // FNV-1a offset basis
  ClusterStats stats_;
  std::vector<PeriodRow> periods_;
};

}  // namespace tango::shard
