#include "shard/model.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace tango::shard {

namespace {

// Digest event codes. Every externally visible transition folds
// (code, now, a, b) into the per-cluster FNV-1a digest, so two runs match
// iff the same transitions happen at the same virtual times in the same
// per-cluster order — the byte-identity witness across shard counts.
constexpr std::uint8_t kDigArrive = 1;
constexpr std::uint8_t kDigExec = 2;
constexpr std::uint8_t kDigComplete = 3;
constexpr std::uint8_t kDigAbandon = 4;
constexpr std::uint8_t kDigDrop = 5;
constexpr std::uint8_t kDigEvict = 6;
constexpr std::uint8_t kDigDelta = 7;
constexpr std::uint8_t kDigMaster = 8;
constexpr std::uint8_t kDigRequeue = 9;
constexpr std::uint8_t kDigFault = 10;

}  // namespace

void ClusterStats::Merge(const ClusterStats& o) {
  lc_arrived += o.lc_arrived;
  lc_completed += o.lc_completed;
  lc_qos_met += o.lc_qos_met;
  lc_abandoned += o.lc_abandoned;
  lc_dropped += o.lc_dropped;
  lc_spilled += o.lc_spilled;
  lc_remote += o.lc_remote;
  be_arrived += o.be_arrived;
  be_completed += o.be_completed;
  be_dropped += o.be_dropped;
  be_bounced += o.be_bounced;
  be_evicted += o.be_evicted;
  fault_requeues += o.fault_requeues;
  failovers += o.failovers;
  deltas_sent += o.deltas_sent;
  deltas_skipped += o.deltas_skipped;
  full_resyncs += o.full_resyncs;
  nacks += o.nacks;
  msgs_sent += o.msgs_sent;
  msgs_lost += o.msgs_lost;
  latency_sum_us += o.latency_sum_us;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    latency_us_log2[b] += o.latency_us_log2[b];
  }
}

ClusterModel::ClusterModel(const ModelConfig* cfg,
                           const k8s::ClusterSpec& spec, NodeId first_node,
                           std::uint64_t run_seed, const Hookup& hookup)
    : cfg_(cfg),
      spec_(spec),
      id_(spec.id),
      first_node_(first_node),
      sim_(hookup.sim),
      grid_(hookup.grid),
      partition_(hookup.partition),
      tracer_(hookup.tracer),
      shard_(hookup.shard),
      rng_(run_seed ^
           (0x9E3779B97F4A7C15ULL *
            (static_cast<std::uint64_t>(spec.id.value) + 1))) {
  TANGO_CHECK(cfg_ != nullptr && cfg_->topology != nullptr &&
                  cfg_->catalog != nullptr,
              "model config incomplete");
  TANGO_CHECK(sim_ != nullptr && grid_ != nullptr && partition_ != nullptr,
              "model hookup incomplete");

  workers_.resize(static_cast<std::size_t>(spec_.num_workers));
  be_used_.assign(workers_.size(), 0);
  membw_load_.assign(workers_.size(), 0.0);
  llc_load_.assign(workers_.size(), 0.0);
  worker_execs_.resize(workers_.size());
  for (auto& w : workers_) {
    w.capacity = spec_.heterogeneous
                     ? rng_.UniformInt(spec_.min_cpu, spec_.max_cpu)
                     : spec_.worker_capacity.cpu;
  }

  const int n = cfg_->topology->num_clusters();
  views_.resize(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) views_[static_cast<std::size_t>(c)].cluster = ClusterId{c};
  master_alive_view_.assign(static_cast<std::size_t>(n), 1);
  links_.assign(static_cast<std::size_t>(n), LinkFault{});
  nearby_ = cfg_->topology->NearbyClusters(id_, cfg_->lc_nearby_radius_km);
  for (int c = 0; c < n; ++c) {
    if (c != id_.value) delegate_order_.push_back(ClusterId{c});
  }
  const net::Topology* topo = cfg_->topology;
  std::sort(delegate_order_.begin(), delegate_order_.end(),
            [topo, this](ClusterId a, ClusterId b) {
              const SimDuration da = topo->OneWayDelay(id_, a);
              const SimDuration db = topo->OneWayDelay(id_, b);
              if (da != db) return da < db;
              return a < b;
            });
}

Millicores ClusterModel::capacity_total() const {
  Millicores total = 0;
  for (const auto& w : workers_) total += w.capacity;
  return total;
}

void ClusterModel::Start() {
  sim_->StartPeriodic(cfg_->sync_period, cfg_->sync_period,
                      [this] { SyncTick(); });
  sim_->StartPeriodic(cfg_->metrics_period, cfg_->metrics_period,
                      [this] { MetricsTick(); });
  if (cfg_->scenario != nullptr) {
    TANGO_CHECK(cfg_->scenario->num_clusters ==
                    cfg_->topology->num_clusters(),
                "scenario config and topology disagree on cluster count");
    storm_source_ =
        storm::BuildClusterStream(cfg_->scenario_kind, *cfg_->scenario, id_);
    ScheduleNextStorm();
    return;
  }
  ScheduleNextLc();
  ScheduleNextBe();
}

void ClusterModel::ScheduleFaults(const fault::FaultScript& script) {
  for (const fault::FaultEvent& ev : script.events()) {
    if (ev.at > cfg_->end_time) continue;
    sim_->ScheduleAt(ev.at, [this, ev] { ApplyFault(ev); });
  }
}

// --- workload -------------------------------------------------------------

void ClusterModel::ScheduleNextLc() {
  if (cfg_->lc_rps <= 0.0 || cfg_->lc_services.empty()) return;
  SimDuration gap = FromSeconds(rng_.Exponential(cfg_->lc_rps));
  if (gap < 1) gap = 1;
  const SimTime t = sim_->Now() + gap;
  if (t > cfg_->end_time) return;
  sim_->ScheduleAt(t, [this] { OnLcArrival(); });
}

void ClusterModel::ScheduleNextBe() {
  if (cfg_->be_rps <= 0.0 || cfg_->be_services.empty()) return;
  SimDuration gap = FromSeconds(rng_.Exponential(cfg_->be_rps));
  if (gap < 1) gap = 1;
  const SimTime t = sim_->Now() + gap;
  if (t > cfg_->end_time) return;
  sim_->ScheduleAt(t, [this] { OnBeArrival(); });
}

Payload ClusterModel::SampleRequest(bool is_lc) {
  const auto& ids = is_lc ? cfg_->lc_services : cfg_->be_services;
  const ServiceId service = ids[static_cast<std::size_t>(
      rng_.UniformInt(0, static_cast<std::int64_t>(ids.size()) - 1))];
  const workload::ServiceSpec& spec = cfg_->catalog->Get(service);
  const auto exec_us = static_cast<SimDuration>(
      static_cast<double>(spec.base_proc) * rng_.Uniform(0.5, 1.5));
  return MakePayload(is_lc, service, exec_us);
}

Payload ClusterModel::MakePayload(bool is_lc, ServiceId service,
                                  SimDuration exec_us) {
  Payload p;
  p.is_lc = is_lc;
  p.service = service;
  const workload::ServiceSpec& spec = cfg_->catalog->Get(service);
  p.demand = spec.cpu_demand;
  p.exec_us = exec_us;
  if (p.exec_us < 1) p.exec_us = 1;
  p.deadline_us = spec.qos_target;
  p.request_bytes = spec.request_size;
  p.response_bytes = spec.response_size;
  p.arrival = sim_->Now();
  p.origin = id_;
  p.uid = (static_cast<std::uint64_t>(
               static_cast<std::uint32_t>(id_.value))
           << 40) |
          uid_next_++;

  const std::int32_t slot = AllocRecord();
  Record& r = records_[static_cast<std::size_t>(slot)];
  r.uid = p.uid;
  r.open = true;
  r.is_lc = is_lc;
  r.arrival = p.arrival;
  r.deadline_us = p.deadline_us;
  p.slot = slot;
  p.gen = r.gen;
  if (is_lc && p.deadline_us > 0) {
    const SimDuration grace =
        p.deadline_us * static_cast<SimDuration>(cfg_->abandon_after_targets);
    r.abandon = sim_->ScheduleAfter(
        grace, [this, slot, gen = r.gen] { AbandonLc(slot, gen); });
  }
  if (tracer_ != nullptr) {
    r.span = tracer_->Begin(
        is_lc ? "lc-request" : "be-request", "shard", p.arrival,
        scope::SpanIds{.node = -1, .service = p.service.value,
                       .request = static_cast<std::int64_t>(p.uid)});
  }
  FoldEvent(kDigArrive, p.uid);
  return p;
}

void ClusterModel::OnLcArrival() {
  ScheduleNextLc();
  const Payload p = SampleRequest(/*is_lc=*/true);
  ++stats_.lc_arrived;
  RouteLc(p);
}

void ClusterModel::OnBeArrival() {
  ScheduleNextBe();
  const Payload p = SampleRequest(/*is_lc=*/false);
  ++stats_.be_arrived;
  RouteBe(p);
}

void ClusterModel::ScheduleNextStorm() {
  // One pending arrival at a time: the stream is arrival-ordered, so the
  // next pull cannot land before the one in flight.
  workload::Request req;
  while (storm_source_->NextRequest(&req)) {
    if (req.arrival > cfg_->end_time) return;  // nondecreasing => done
    sim_->ScheduleAt(req.arrival, [this, req] { OnStormArrival(req); });
    return;
  }
}

void ClusterModel::OnStormArrival(const workload::Request& req) {
  ScheduleNextStorm();
  const workload::ServiceSpec& spec = cfg_->catalog->Get(req.service);
  const auto exec_us = static_cast<SimDuration>(
      static_cast<double>(spec.base_proc) * req.work_scale);
  const bool is_lc = spec.is_lc();
  const Payload p = MakePayload(is_lc, req.service, exec_us);
  if (is_lc) {
    ++stats_.lc_arrived;
    RouteLc(p);
  } else {
    ++stats_.be_arrived;
    RouteBe(p);
  }
}

// --- LC path --------------------------------------------------------------

void ClusterModel::RouteLc(const Payload& p) {
  if (master_alive_) {
    // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
    lc_queue_.push_back(p);
    ArmLcTick();
    return;
  }
  // Own master down: the client side dispatches straight to the failover
  // delegate (nearest believed-alive master).
  const ClusterId d = FirstAliveDelegate();
  if (d.valid()) {
    Route(MsgKind::kLcTransfer, d, p, p.request_bytes);
  } else {
    DropRequest(p);
  }
}

void ClusterModel::ArmLcTick() {
  if (lc_tick_armed_ || !master_alive_) return;
  lc_tick_armed_ = true;
  sim_->ScheduleAfter(cfg_->lc_dispatch_interval, [this] {
    lc_tick_armed_ = false;
    if (master_alive_) LcDispatch();
  });
}

bool ClusterModel::TryPlaceLc(const Payload& p) {
  int w = sched::PickLocalWorker(workers_, p.demand);
  if (w < 0) {
    // No worker fits: evict BE (restart elsewhere, §4.1) when that frees
    // enough on the heaviest-BE worker.
    const int victim = sched::PickEvictionWorker(workers_, be_used_, 1);
    if (victim >= 0 &&
        workers_[static_cast<std::size_t>(victim)].free() +
                be_used_[static_cast<std::size_t>(victim)] >=
            p.demand) {
      const Millicores need =
          p.demand - workers_[static_cast<std::size_t>(victim)].free();
      EvictBeFrom(victim, need);
      if (workers_[static_cast<std::size_t>(victim)].free() >= p.demand) {
        w = victim;
      }
    }
  }
  if (w < 0) return false;
  StartExec(w, p);
  return true;
}

void ClusterModel::LcDispatch() {
  while (lc_head_ < lc_queue_.size()) {
    const Payload p = lc_queue_[lc_head_];
    if (TryPlaceLc(p)) {
      ++lc_head_;
      continue;
    }
    // Spill to the best geo-nearby cluster by synced free capacity.
    spill_scratch_.clear();
    for (ClusterId c : nearby_) {
      const auto idx = static_cast<std::size_t>(c.value);
      if (master_alive_view_[idx] == 0) continue;
      if (views_[idx].version == 0) continue;
      // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
      spill_scratch_.push_back(views_[idx]);
    }
    const ClusterId target =
        sched::PickSpillCluster(spill_scratch_, p.demand);
    if (!target.valid()) break;  // neighborhood full too: wait for capacity
    ++lc_head_;
    ++stats_.lc_spilled;
    // Optimistic belief update so one tick does not dump the whole batch
    // on the same neighbor.
    views_[static_cast<std::size_t>(target.value)].free_total -= p.demand;
    Route(MsgKind::kLcTransfer, target, p, p.request_bytes);
  }
  if (lc_head_ > 0 &&
      (lc_head_ == lc_queue_.size() || lc_head_ >= 64)) {
    lc_queue_.erase(lc_queue_.begin(),
                    lc_queue_.begin() + static_cast<std::ptrdiff_t>(lc_head_));
    lc_head_ = 0;
  }
  if (lc_head_ < lc_queue_.size()) ArmLcTick();
}

void ClusterModel::OnSpillArrival(const Payload& p) {
  if (TryPlaceLc(p)) return;
  Route(MsgKind::kLcReject, p.origin, p, cfg_->control_bytes);
}

void ClusterModel::FaultRequeueLc(Payload p) {
  ++stats_.fault_requeues;
  FoldEvent(kDigRequeue, p.uid);
  ++p.reroutes;
  if (p.reroutes > cfg_->max_reroutes) {
    DropRequest(p);
  } else {
    RouteLc(p);
  }
}

void ClusterModel::LoseLc(const Payload& p, SimDuration extra_delay) {
  // Notify the origin after the failure detector fires; local origins take
  // the same path through local delivery.
  Route(MsgKind::kLcLost, p.origin, p, cfg_->control_bytes, extra_delay);
}

void ClusterModel::CompleteLc(const Payload& p) {
  if (p.origin != id_ || !RecordLive(p.slot, p.gen)) return;
  const Record& r = records_[static_cast<std::size_t>(p.slot)];
  const SimDuration latency = sim_->Now() - r.arrival;
  ++stats_.lc_completed;
  stats_.latency_sum_us += latency;
  CountLatency(latency);
  if (r.deadline_us > 0 && latency <= r.deadline_us) ++stats_.lc_qos_met;
  FoldEvent(kDigComplete, p.uid, static_cast<std::uint64_t>(latency));
  CloseRecord(p.slot, p.gen, Outcome::kCompleted);
}

void ClusterModel::AbandonLc(std::int32_t slot, std::uint32_t gen) {
  if (!RecordLive(slot, gen)) return;
  ++stats_.lc_abandoned;
  FoldEvent(kDigAbandon, records_[static_cast<std::size_t>(slot)].uid);
  CloseRecord(slot, gen, Outcome::kAbandoned);
}

void ClusterModel::DropRequest(const Payload& p) {
  TANGO_CHECK(p.origin == id_, "drop must happen at the origin cluster");
  if (!RecordLive(p.slot, p.gen)) return;
  if (p.is_lc) {
    ++stats_.lc_dropped;
  } else {
    ++stats_.be_dropped;
  }
  FoldEvent(kDigDrop, p.uid);
  CloseRecord(p.slot, p.gen, Outcome::kDropped);
}

// --- BE path --------------------------------------------------------------

ClusterId ClusterModel::BelievedCentral() const {
  for (ClusterId c : cfg_->central_rank) {
    if (master_alive_view_[static_cast<std::size_t>(c.value)] != 0) return c;
  }
  return ClusterId{};
}

void ClusterModel::RouteBe(Payload p) {
  const ClusterId central = BelievedCentral();
  if (!central.valid()) {
    if (p.origin == id_) {
      DropRequest(p);
    } else {
      Route(MsgKind::kBeDrop, p.origin, p, cfg_->control_bytes);
    }
    return;
  }
  if (central == id_) {
    // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
    be_queue_.push_back(p);
    ArmBeTick();
    return;
  }
  Route(MsgKind::kBeForward, central, p, p.request_bytes);
}

void ClusterModel::ArmBeTick() {
  if (be_tick_armed_ || !master_alive_) return;
  be_tick_armed_ = true;
  sim_->ScheduleAfter(cfg_->be_dispatch_interval, [this] {
    be_tick_armed_ = false;
    if (master_alive_) BeDispatch();
  });
}

void ClusterModel::BeDispatch() {
  sched::RankBeClusters(views_, &be_rank_scratch_);
  const std::vector<ClusterId>& rank = be_rank_scratch_;
  be_keep_.clear();
  for (const Payload& p : be_queue_) {
    bool placed = false;
    for (ClusterId c : rank) {
      const auto idx = static_cast<std::size_t>(c.value);
      if (master_alive_view_[idx] == 0) continue;
      if (c == id_) {
        if (AdmitBeLocal(p)) {
          placed = true;
          break;
        }
        continue;
      }
      if (views_[idx].version == 0 || views_[idx].free_total < p.demand) {
        continue;
      }
      views_[idx].free_total -= p.demand;
      Route(MsgKind::kBeTransfer, c, p, p.request_bytes);
      placed = true;
      break;
    }
    // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
    if (!placed) be_keep_.push_back(p);
  }
  std::swap(be_queue_, be_keep_);
  if (!be_queue_.empty()) ArmBeTick();
}

bool ClusterModel::AdmitBeLocal(const Payload& p) {
  Millicores cap = 0;
  Millicores used_be = 0;
  Millicores used_lc = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!workers_[w].usable()) continue;
    cap += workers_[w].capacity;
    used_be += be_used_[w];
    used_lc += workers_[w].used - be_used_[w];
  }
  if (!hrm::AdmitBe(cfg_->be_guard, cap, used_lc, used_be, p.demand)) {
    return false;
  }
  const int w = sched::PickLocalWorker(workers_, p.demand);
  if (w < 0) return false;
  StartExec(w, p);
  return true;
}

void ClusterModel::BounceBe(Payload p, SimDuration extra_delay) {
  ++p.bounces;
  const ClusterId central = BelievedCentral();
  if (central.valid()) {
    Route(MsgKind::kBeBounce, central, p, cfg_->control_bytes, extra_delay);
    return;
  }
  if (p.origin == id_) {
    DropRequest(p);
  } else {
    Route(MsgKind::kBeDrop, p.origin, p, cfg_->control_bytes, extra_delay);
  }
}

void ClusterModel::CompleteBe(const Payload& p) {
  if (p.origin != id_ || !RecordLive(p.slot, p.gen)) return;
  ++stats_.be_completed;
  FoldEvent(kDigComplete, p.uid);
  CloseRecord(p.slot, p.gen, Outcome::kCompleted);
}

// --- execution ------------------------------------------------------------

void ClusterModel::StartExec(std::int32_t worker, const Payload& p) {
  std::int32_t slot;
  if (!free_execs_.empty()) {
    slot = free_execs_.back();
    free_execs_.pop_back();
  } else {
    slot = static_cast<std::int32_t>(execs_.size());
    // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
    execs_.emplace_back();
  }
  Exec& e = execs_[static_cast<std::size_t>(slot)];
  e.req = p;
  e.worker = worker;
  e.live = true;
  auto& w = workers_[static_cast<std::size_t>(worker)];
  // Admission-time interference: the incoming request's exec time is
  // inflated by its response to the worker's co-runner pressure, read
  // before the request's own contribution lands. The enabled-only block
  // keeps disabled runs byte-identical.
  SimDuration exec_us = p.exec_us;
  if (cfg_->interference != nullptr) {
    const double cap_cores = static_cast<double>(w.capacity) / 1000.0;
    storm::PressureVec v;
    v.cpu = static_cast<double>(w.used) / static_cast<double>(w.capacity);
    v.membw = membw_load_[static_cast<std::size_t>(worker)] / cap_cores;
    v.llc = llc_load_[static_cast<std::size_t>(worker)] / cap_cores;
    const double f = cfg_->interference->Inflation(p.service, v);
    exec_us = static_cast<SimDuration>(
        std::ceil(static_cast<double>(exec_us) * f));
    if (exec_us < 1) exec_us = 1;
    const auto& prof = cfg_->interference->Profile(p.service);
    const double cores = static_cast<double>(p.demand) / 1000.0;
    membw_load_[static_cast<std::size_t>(worker)] +=
        prof.membw_intensity * cores;
    llc_load_[static_cast<std::size_t>(worker)] += prof.llc_intensity * cores;
  }
  w.used += p.demand;
  if (!p.is_lc) be_used_[static_cast<std::size_t>(worker)] += p.demand;
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  worker_execs_[static_cast<std::size_t>(worker)].push_back(slot);
  e.done = sim_->ScheduleAfter(exec_us, [this, slot] { FinishExec(slot); });
  if (p.is_lc && p.origin != id_) ++stats_.lc_remote;
  FoldEvent(kDigExec, p.uid, static_cast<std::uint64_t>(worker));
}

void ClusterModel::ReleaseExec(std::int32_t slot) {
  Exec& e = execs_[static_cast<std::size_t>(slot)];
  TANGO_CHECK(e.live, "releasing a dead exec slot");
  auto& w = workers_[static_cast<std::size_t>(e.worker)];
  w.used -= e.req.demand;
  if (!e.req.is_lc) {
    be_used_[static_cast<std::size_t>(e.worker)] -= e.req.demand;
  }
  if (cfg_->interference != nullptr) {
    const auto& prof = cfg_->interference->Profile(e.req.service);
    const double cores = static_cast<double>(e.req.demand) / 1000.0;
    membw_load_[static_cast<std::size_t>(e.worker)] -=
        prof.membw_intensity * cores;
    llc_load_[static_cast<std::size_t>(e.worker)] -=
        prof.llc_intensity * cores;
  }
  auto& list = worker_execs_[static_cast<std::size_t>(e.worker)];
  const auto it = std::find(list.begin(), list.end(), slot);
  TANGO_CHECK(it != list.end(), "exec slot missing from worker list");
  *it = list.back();
  list.pop_back();
  e.live = false;
  e.done = sim::kInvalidEvent;
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  free_execs_.push_back(slot);
}

void ClusterModel::FinishExec(std::int32_t slot) {
  const Payload p = execs_[static_cast<std::size_t>(slot)].req;
  ReleaseExec(slot);
  Route(p.is_lc ? MsgKind::kLcResult : MsgKind::kBeResult, p.origin, p,
        p.response_bytes);
}

Millicores ClusterModel::EvictBeFrom(std::int32_t worker, Millicores need) {
  Millicores freed = 0;
  auto& list = worker_execs_[static_cast<std::size_t>(worker)];
  // Walk from the back (youngest first). ReleaseExec swap-erases, moving
  // the already-visited tail element into the hole, so earlier indices
  // stay valid.
  for (auto i = static_cast<std::ptrdiff_t>(list.size()) - 1;
       i >= 0 && freed < need; --i) {
    const std::int32_t slot = list[static_cast<std::size_t>(i)];
    Exec& e = execs_[static_cast<std::size_t>(slot)];
    if (e.req.is_lc) continue;
    const Payload p = e.req;
    sim_->Cancel(e.done);
    ReleaseExec(slot);
    freed += p.demand;
    ++stats_.be_evicted;
    FoldEvent(kDigEvict, p.uid);
    if (tracer_ != nullptr) {
      tracer_->Instant("be-evict", "shard", sim_->Now(),
                       scope::SpanIds{
                           .request = static_cast<std::int64_t>(p.uid)});
    }
    // Evicted BE restarts elsewhere: bounce through the central.
    BounceBe(p, 0);
  }
  return freed;
}

// --- state sync & control --------------------------------------------------

Millicores ClusterModel::UsableFree() const {
  Millicores free = 0;
  for (const auto& w : workers_) {
    if (w.usable()) free += w.free();
  }
  return free;
}

std::int32_t ClusterModel::LiveWorkers() const {
  std::int32_t live = 0;
  for (const auto& w : workers_) {
    if (w.alive) ++live;
  }
  return live;
}

void ClusterModel::SyncTick() {
  if (!master_alive_) return;
  const Millicores free = UsableFree();
  const std::int32_t live = LiveWorkers();
  if (free == last_free_ && live == last_live_ && !force_push_) {
    ++stats_.deltas_skipped;
    return;
  }
  last_free_ = free;
  last_live_ = live;
  force_push_ = false;
  ++sync_version_;

  Payload p;
  p.is_lc = false;
  p.version = sync_version_;
  p.free_total = free;
  p.live_workers = live;

  auto push = [&](ClusterId r) {
    if (master_alive_view_[static_cast<std::size_t>(r.value)] == 0) return;
    Route(MsgKind::kStateDelta, r, p, cfg_->delta_bytes);
    ++stats_.deltas_sent;
  };
  for (ClusterId r : nearby_) push(r);
  const ClusterId central = BelievedCentral();
  if (central.valid() && central != id_ &&
      std::find(nearby_.begin(), nearby_.end(), central) == nearby_.end()) {
    push(central);
  }
}

void ClusterModel::MetricsTick() {
  Millicores cap = 0;
  Millicores used = 0;
  for (const auto& w : workers_) {
    if (!w.alive) continue;
    cap += w.capacity;
    used += w.used;
  }
  PeriodRow row;
  row.at = sim_->Now();
  row.util = cap > 0 ? static_cast<double>(used) / static_cast<double>(cap)
                     : 0.0;
  periods_.push_back(row);
}

void ClusterModel::BroadcastControl(MsgKind kind) {
  Payload p;
  p.is_lc = false;
  p.subject = id_;
  const int n = cfg_->topology->num_clusters();
  for (int c = 0; c < n; ++c) {
    if (c == id_.value) continue;
    Route(kind, ClusterId{c}, p, cfg_->control_bytes);
  }
}

ClusterId ClusterModel::FirstAliveDelegate() const {
  for (ClusterId c : delegate_order_) {
    if (master_alive_view_[static_cast<std::size_t>(c.value)] != 0) return c;
  }
  return ClusterId{};
}

void ClusterModel::ApplyFault(const fault::FaultEvent& ev) {
  switch (ev.kind) {
    case fault::FaultKind::kNodeCrash: {
      const std::int32_t w = LocalWorkerIndex(ev.node);
      if (w < 0 || !workers_[static_cast<std::size_t>(w)].alive) return;
      workers_[static_cast<std::size_t>(w)].alive = false;
      FoldEvent(kDigFault, static_cast<std::uint64_t>(ev.node.value), 0);
      // Lose everything running on the node; origins learn after the
      // failure detector fires.
      const std::vector<std::int32_t> running =
          worker_execs_[static_cast<std::size_t>(w)];
      for (const std::int32_t slot : running) {
        Exec& e = execs_[static_cast<std::size_t>(slot)];
        const Payload p = e.req;
        sim_->Cancel(e.done);
        ReleaseExec(slot);
        if (p.is_lc) {
          LoseLc(p, cfg_->fault_detect_delay);
        } else {
          BounceBe(p, cfg_->fault_detect_delay);
        }
      }
      break;
    }
    case fault::FaultKind::kNodeRecover: {
      const std::int32_t w = LocalWorkerIndex(ev.node);
      if (w < 0 || workers_[static_cast<std::size_t>(w)].alive) return;
      workers_[static_cast<std::size_t>(w)].alive = true;
      FoldEvent(kDigFault, static_cast<std::uint64_t>(ev.node.value), 1);
      if (lc_head_ < lc_queue_.size()) ArmLcTick();
      break;
    }
    case fault::FaultKind::kNodeDrain: {
      const std::int32_t w = LocalWorkerIndex(ev.node);
      if (w >= 0) workers_[static_cast<std::size_t>(w)].draining = true;
      break;
    }
    case fault::FaultKind::kNodeUndrain: {
      const std::int32_t w = LocalWorkerIndex(ev.node);
      if (w >= 0) workers_[static_cast<std::size_t>(w)].draining = false;
      break;
    }
    case fault::FaultKind::kLinkDegrade:
    case fault::FaultKind::kLinkRestore:
    case fault::FaultKind::kPartition:
    case fault::FaultKind::kHeal: {
      const ClusterId peer = ev.cluster_a == id_ ? ev.cluster_b : ev.cluster_a;
      if (!peer.valid() ||
          peer.value >= cfg_->topology->num_clusters()) {
        return;
      }
      LinkFault& lf = links_[static_cast<std::size_t>(peer.value)];
      if (ev.kind == fault::FaultKind::kLinkDegrade) {
        lf.latency_mult = ev.latency_mult;
        lf.loss = ev.loss;
      } else if (ev.kind == fault::FaultKind::kLinkRestore) {
        lf.latency_mult = 1.0;
        lf.loss = 0.0;
      } else if (ev.kind == fault::FaultKind::kPartition) {
        lf.cut = true;
      } else {
        lf.cut = false;
      }
      FoldEvent(kDigFault, static_cast<std::uint64_t>(peer.value),
                static_cast<std::uint64_t>(ev.kind));
      break;
    }
    case fault::FaultKind::kMasterFail: {
      if (!master_alive_) return;
      master_alive_ = false;
      master_alive_view_[static_cast<std::size_t>(id_.value)] = 0;
      ++stats_.failovers;
      FoldEvent(kDigMaster, static_cast<std::uint64_t>(id_.value), 0);
      if (tracer_ != nullptr) {
        tracer_->Instant("master-fail", "shard", sim_->Now(),
                         scope::SpanIds{.value = id_.value});
      }
      BroadcastControl(MsgKind::kMasterDown);
      // Queued LC fails over to the nearest believed-alive master once the
      // failure detector fires. The BE central queue (if this master was
      // acting central) stays durable and resumes on recovery.
      for (std::size_t i = lc_head_; i < lc_queue_.size(); ++i) {
        const Payload p = lc_queue_[i];
        const ClusterId d = FirstAliveDelegate();
        if (d.valid()) {
          Route(MsgKind::kLcTransfer, d, p, p.request_bytes,
                cfg_->fault_detect_delay);
        } else if (p.origin == id_) {
          DropRequest(p);
        } else {
          Route(MsgKind::kLcLost, p.origin, p, cfg_->control_bytes,
                cfg_->fault_detect_delay);
        }
      }
      lc_queue_.clear();
      lc_head_ = 0;
      break;
    }
    case fault::FaultKind::kMasterRecover: {
      if (master_alive_) return;
      master_alive_ = true;
      master_alive_view_[static_cast<std::size_t>(id_.value)] = 1;
      force_push_ = true;
      FoldEvent(kDigMaster, static_cast<std::uint64_t>(id_.value), 1);
      if (tracer_ != nullptr) {
        tracer_->Instant("master-recover", "shard", sim_->Now(),
                         scope::SpanIds{.value = id_.value});
      }
      BroadcastControl(MsgKind::kMasterUp);
      if (lc_head_ < lc_queue_.size()) ArmLcTick();
      if (!be_queue_.empty()) ArmBeTick();
      break;
    }
  }
}

// --- transport -------------------------------------------------------------

void ClusterModel::Route(MsgKind kind, ClusterId dst, const Payload& p,
                         Bytes bytes, SimDuration extra_delay) {
  ShardMessage m;
  m.kind = kind;
  m.src = id_;
  m.dst = dst;
  m.sent = sim_->Now();
  m.payload = p;
  if (dst == id_) {
    // Intra-cluster delivery rides this shard's own simulator at LAN
    // delay — below the lookahead, so it never needs the mailbox.
    const SimDuration lan =
        cfg_->topology->TransferDelay(id_, id_, bytes) + extra_delay;
    m.deliver = m.sent + lan;
    EnqueueLocal(m, lan);
    return;
  }
  const LinkFault& lf = links_[static_cast<std::size_t>(dst.value)];
  if (lf.cut || (lf.loss > 0.0 && rng_.Bernoulli(lf.loss))) {
    OnSendFailed(kind, p);
    return;
  }
  SimDuration prop = cfg_->topology->OneWayDelay(id_, dst);
  if (lf.latency_mult > 1.0) {
    prop = static_cast<SimDuration>(static_cast<double>(prop) *
                                    lf.latency_mult);
  }
  m.deliver = m.sent + prop +
              TransferTime(bytes, cfg_->topology->Bandwidth(id_, dst)) +
              extra_delay;
  m.seq = seq_next_++;
  grid_->Send(shard_, partition_->shard_of_cluster(dst), m);
  ++stats_.msgs_sent;
}

void ClusterModel::OnSendFailed(MsgKind kind, const Payload& p) {
  switch (kind) {
    case MsgKind::kLcTransfer:
      // The connection attempt fails; after detection the origin requeues
      // (locally delivered when we *are* the origin).
      LoseLc(p, cfg_->fault_detect_delay);
      break;
    case MsgKind::kBeForward: {
      // Could not reach the believed central: burn a bounce and retry —
      // bounded by max_be_bounces since the belief only changes on master
      // events, not link faults.
      Payload q = p;
      ++q.bounces;
      if (q.bounces > cfg_->max_be_bounces) {
        if (q.origin == id_) {
          DropRequest(q);
        } else {
          ++stats_.msgs_lost;
        }
      } else {
        RouteBe(q);
      }
      break;
    }
    case MsgKind::kBeTransfer: {
      // We are the central and the target is unreachable: requeue for the
      // next dispatch tick (its view was already debited, so the walk will
      // prefer someone else).
      Payload q = p;
      ++q.bounces;
      if (q.bounces > cfg_->max_be_bounces) {
        if (q.origin == id_) {
          DropRequest(q);
        } else {
          Route(MsgKind::kBeDrop, q.origin, q, cfg_->control_bytes);
        }
      } else {
        // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
        be_queue_.push_back(q);
        ArmBeTick();
      }
      break;
    }
    default:
      // Results, deltas, control notices: lost silently but *counted* —
      // LC origins recover via the abandonment timer, BE losses surface in
      // arrived-vs-completed accounting.
      ++stats_.msgs_lost;
      break;
  }
}

void ClusterModel::EnqueueLocal(const ShardMessage& msg, SimDuration delay) {
  std::uint32_t idx;
  if (!local_free_.empty()) {
    idx = local_free_.back();
    local_free_.pop_back();
    local_slab_[idx] = msg;
  } else {
    idx = static_cast<std::uint32_t>(local_slab_.size());
    // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
    local_slab_.push_back(msg);
  }
  sim_->ScheduleAfter(delay, [this, idx] {
    const ShardMessage m = local_slab_[idx];
    // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
    local_free_.push_back(idx);
    OnMessage(m);
  });
}

// --- message handling -------------------------------------------------------

void ClusterModel::OnMessage(const ShardMessage& m) {
  switch (m.kind) {
    case MsgKind::kLcTransfer:
    case MsgKind::kBeForward:
    case MsgKind::kBeTransfer:
    case MsgKind::kBeBounce:
      if (!master_alive_) {
        // The cluster's infrastructure bounces master-bound traffic back
        // so the sender learns the master is gone (connection refused).
        ++stats_.nacks;
        Payload p = m.payload;
        p.orig = m.kind;
        p.subject = id_;
        Route(MsgKind::kMasterNack, m.src, p, cfg_->control_bytes);
        return;
      }
      break;
    case MsgKind::kStateDelta:
      if (!master_alive_) return;  // nobody home to apply it
      break;
    default:
      break;  // client-side and control kinds process regardless
  }

  switch (m.kind) {
    case MsgKind::kLcTransfer:
      OnSpillArrival(m.payload);
      break;
    case MsgKind::kLcReject: {
      if (m.payload.origin != id_) break;
      Payload p = m.payload;
      ++p.reroutes;
      if (p.reroutes > cfg_->max_reroutes) {
        DropRequest(p);
      } else {
        RouteLc(p);
      }
      break;
    }
    case MsgKind::kLcResult:
      CompleteLc(m.payload);
      break;
    case MsgKind::kLcLost:
      if (m.payload.origin == id_) FaultRequeueLc(m.payload);
      break;
    case MsgKind::kBeForward:
      // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
      be_queue_.push_back(m.payload);
      ArmBeTick();
      break;
    case MsgKind::kBeTransfer:
      if (!AdmitBeLocal(m.payload)) {
        Payload p = m.payload;
        ++p.bounces;
        Route(MsgKind::kBeBounce, m.src, p, cfg_->control_bytes);
      }
      break;
    case MsgKind::kBeBounce: {
      ++stats_.be_bounced;
      const Payload& p = m.payload;
      if (p.bounces > cfg_->max_be_bounces) {
        if (p.origin == id_) {
          DropRequest(p);
        } else {
          Route(MsgKind::kBeDrop, p.origin, p, cfg_->control_bytes);
        }
      } else {
        // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
        be_queue_.push_back(p);
        ArmBeTick();
      }
      break;
    }
    case MsgKind::kBeResult:
      CompleteBe(m.payload);
      break;
    case MsgKind::kBeDrop:
      if (m.payload.origin == id_) DropRequest(m.payload);
      break;
    case MsgKind::kStateDelta: {
      const auto idx = static_cast<std::size_t>(m.src.value);
      if (m.payload.version > views_[idx].version) {
        views_[idx].free_total = m.payload.free_total;
        views_[idx].live_workers = m.payload.live_workers;
        views_[idx].version = m.payload.version;
        FoldEvent(kDigDelta,
                  (static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(m.src.value))
                   << 32) |
                      m.payload.version,
                  static_cast<std::uint64_t>(m.payload.free_total));
      }
      break;
    }
    case MsgKind::kMasterDown:
      master_alive_view_[static_cast<std::size_t>(m.payload.subject.value)] =
          0;
      FoldEvent(kDigMaster,
                static_cast<std::uint64_t>(m.payload.subject.value), 2);
      break;
    case MsgKind::kMasterUp:
      master_alive_view_[static_cast<std::size_t>(m.payload.subject.value)] =
          1;
      // Our aggregate view is stale on their side: force a full push at
      // the next sync tick (the sharded analogue of a full resync).
      force_push_ = true;
      ++stats_.full_resyncs;
      FoldEvent(kDigMaster,
                static_cast<std::uint64_t>(m.payload.subject.value), 3);
      break;
    case MsgKind::kMasterNack: {
      const Payload& p = m.payload;
      if (p.subject.valid()) {
        master_alive_view_[static_cast<std::size_t>(p.subject.value)] = 0;
      }
      switch (p.orig) {
        case MsgKind::kLcTransfer:
          if (p.origin == id_) {
            FaultRequeueLc(p);
          } else {
            Route(MsgKind::kLcLost, p.origin, p, cfg_->control_bytes);
          }
          break;
        case MsgKind::kBeForward: {
          Payload q = p;
          ++q.bounces;
          if (q.bounces > cfg_->max_be_bounces) {
            if (q.origin == id_) {
              DropRequest(q);
            } else {
              ++stats_.msgs_lost;
            }
          } else {
            RouteBe(q);
          }
          break;
        }
        case MsgKind::kBeTransfer:
        case MsgKind::kBeBounce: {
          Payload q = p;
          ++q.bounces;
          if (q.bounces > cfg_->max_be_bounces) {
            if (q.origin == id_) {
              DropRequest(q);
            } else {
              Route(MsgKind::kBeDrop, q.origin, q, cfg_->control_bytes);
            }
          } else {
            // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
            be_queue_.push_back(q);
            ArmBeTick();
          }
          break;
        }
        default:
          break;
      }
      break;
    }
  }
}

// --- records ----------------------------------------------------------------

std::int32_t ClusterModel::AllocRecord() {
  if (!free_records_.empty()) {
    const std::int32_t slot = free_records_.back();
    free_records_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::int32_t>(records_.size());
  records_.emplace_back();
  return slot;
}

bool ClusterModel::RecordLive(std::int32_t slot, std::uint32_t gen) const {
  if (slot < 0 || slot >= static_cast<std::int32_t>(records_.size())) {
    return false;
  }
  const Record& r = records_[static_cast<std::size_t>(slot)];
  return r.open && r.gen == gen;
}

void ClusterModel::CloseRecord(std::int32_t slot, std::uint32_t gen,
                               Outcome outcome) {
  if (!RecordLive(slot, gen)) return;
  Record& r = records_[static_cast<std::size_t>(slot)];
  sim_->Cancel(r.abandon);
  r.abandon = sim::kInvalidEvent;
  if (tracer_ != nullptr && r.span != scope::kInvalidSpan) {
    tracer_->End(r.span, sim_->Now());
    r.span = scope::kInvalidSpan;
  }
  (void)outcome;  // counted at the call sites, which know the story
  r.open = false;
  ++r.gen;
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  free_records_.push_back(slot);
}

// --- bookkeeping ------------------------------------------------------------

std::int32_t ClusterModel::LocalWorkerIndex(NodeId node) const {
  const std::int32_t idx = node.value - first_node_.value - 1;
  if (idx < 0 || idx >= spec_.num_workers) return -1;
  return idx;
}

void ClusterModel::FoldEvent(std::uint8_t code, std::uint64_t a,
                             std::uint64_t b) {
  Fold(code);
  Fold(static_cast<std::uint64_t>(sim_->Now()));
  Fold(a);
  Fold(b);
}

void ClusterModel::CountLatency(SimDuration latency) {
  const std::uint64_t us =
      latency < 1 ? 1ULL : static_cast<std::uint64_t>(latency);
  int bucket = std::bit_width(us) - 1;
  if (bucket >= ClusterStats::kLatencyBuckets) {
    bucket = ClusterStats::kLatencyBuckets - 1;
  }
  ++stats_.latency_us_log2[bucket];
}

}  // namespace tango::shard
