// TangoShard: conservative sharded parallel simulation of the edge-cloud
// system, scaling the dual space to ~100k nodes.
//
// The system is partitioned at cluster granularity (k8s/partition.h); each
// shard owns a disjoint cluster set with its own indexed-heap
// sim::Simulator, its own pooled message slab, and its own TangoScope span
// ring. Shards advance in lockstep epochs bounded by the conservative
// lookahead L = net::Topology::MinCrossClusterLatency(): no cross-cluster
// effect can propagate in less than L of virtual time, so every shard may
// run one L-window independently. Epoch k executes the window
// ((k-1)·L, k·L]; a message sent at time t carries deliver >= t + L > k·L,
// so it is always scheduled at a *later* epoch's start — the engine
// exchanges the per-pair mailboxes (shard/mailbox.h) at the barrier
// between epochs and each shard schedules its inbound messages, sorted by
// the partition-invariant key (deliver, src cluster, seq), before running
// the next window. When every shard's next event lies beyond the next
// bound, the engine fast-forwards the epoch counter (nothing can execute,
// so nothing can send — skipping is safe).
//
// Determinism is a hard contract, not a best effort: with any shard count
// (and with `deterministic_reference`, which runs the same epoch protocol
// on one thread in shard order) the engine produces byte-identical
// per-cluster digests, because cluster state is only ever touched by its
// own cluster's callbacks, per-cluster Rng streams are seeded from
// (run seed, cluster id), and every cross-cluster interaction rides the
// mailbox total order. tests/shard_test.cpp holds this across seeds,
// partition strategies, chaos scripts, and master failovers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "fault/fault_script.h"
#include "k8s/partition.h"
#include "k8s/resources.h"
#include "net/topology.h"
#include "scope/scope.h"
#include "shard/mailbox.h"
#include "shard/model.h"
#include "sim/simulator.h"
#include "workload/service.h"

namespace tango::shard {

struct EngineConfig {
  std::vector<k8s::ClusterSpec> clusters;
  net::LinkParams link;
  double region_km = 1200.0;

  /// Per-cluster knobs (rates, periods, budgets). The engine fills in the
  /// pointers and derived tables (topology, catalog, central rank, service
  /// id caches) and overrides end_time with `duration`.
  ModelConfig model;

  std::uint64_t seed = 1;
  SimTime duration = 10 * kSecond;

  int num_shards = 1;
  /// Run the identical epoch protocol single-threaded in shard order —
  /// the byte-identity reference for any parallel configuration.
  bool deterministic_reference = false;
  k8s::PartitionStrategy partition_strategy =
      k8s::PartitionStrategy::kWorkerBalanced;
  /// Pool threads for the epoch fan-out; 0 = one per shard (minus the
  /// calling thread, which always participates).
  int num_threads = 0;
  /// Override the epoch length (tests only). Must not exceed the
  /// topology's MinCrossClusterLatency — a longer epoch would violate the
  /// conservative lookahead and the engine refuses it.
  SimDuration epoch_override = 0;

  fault::FaultScript faults;

  bool trace = false;
  std::size_t trace_capacity = std::size_t{1} << 14;  // per shard
};

struct RunResult {
  ClusterStats totals;
  /// FNV-1a over the per-cluster digests in cluster-id order.
  std::uint64_t digest = 0;
  std::vector<std::uint64_t> cluster_digests;

  std::uint64_t executed_events = 0;
  std::int64_t epochs = 0;
  std::int64_t epochs_skipped = 0;  // fast-forwarded empty windows
  std::int64_t mailbox_exchanged = 0;
  std::int64_t mailbox_drained = 0;
  double mean_util = 0.0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;

  double qos_rate() const {
    return totals.lc_completed > 0
               ? static_cast<double>(totals.lc_qos_met) /
                     static_cast<double>(totals.lc_completed)
               : 0.0;
  }
  double mean_latency_ms() const {
    return totals.lc_completed > 0
               ? ToMilliseconds(totals.latency_sum_us) /
                     static_cast<double>(totals.lc_completed)
               : 0.0;
  }
  /// Upper bound of the log2 bucket holding the 95th percentile completed
  /// LC latency (bucketed approximation; exact enough for trend checks).
  double p95_latency_ms() const;
};

class ShardEngine {
 public:
  explicit ShardEngine(EngineConfig cfg);
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Run the whole configured duration. One shot: a second call aborts.
  RunResult Run();

  SimDuration lookahead() const { return lookahead_; }
  int num_shards() const { return partition_.num_shards; }
  const k8s::Partition& partition() const { return partition_; }
  const net::Topology& topology() const { return topology_; }
  int num_nodes() const { return num_nodes_; }

  /// Per-shard tracers (empty unless cfg.trace). Order = shard index; feed
  /// to scope::MergeSnapshots / WriteChromeTrace for one merged timeline.
  std::vector<const scope::Tracer*> tracers() const;
  /// Merge the per-shard span rings and write one Chrome trace.
  bool ExportTrace(const std::string& path) const;

 private:
  struct Shard {
    sim::Simulator sim;
    scope::Tracer tracer;
    std::vector<ShardMessage> inbox;     // drain scratch
    std::vector<ShardMessage> slab;      // pooled delivery messages
    std::vector<std::uint32_t> slab_free;
    std::uint64_t executed = 0;
  };

  void RunShardEpoch(std::size_t s, SimTime bound);

  EngineConfig cfg_;
  net::Topology topology_;
  workload::ServiceCatalog catalog_storage_;
  k8s::Partition partition_;
  ModelConfig model_cfg_;
  SimDuration lookahead_ = 0;
  int num_nodes_ = 0;
  MailboxGrid grid_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ClusterModel>> models_;  // by cluster id
  std::vector<fault::FaultScript> cluster_faults_;     // by cluster id
  std::unique_ptr<ThreadPool> pool_;
  bool ran_ = false;
};

}  // namespace tango::shard
