#include "shard/mailbox.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace tango::shard {

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kLcTransfer:
      return "lc-transfer";
    case MsgKind::kLcReject:
      return "lc-reject";
    case MsgKind::kLcResult:
      return "lc-result";
    case MsgKind::kLcLost:
      return "lc-lost";
    case MsgKind::kBeForward:
      return "be-forward";
    case MsgKind::kBeTransfer:
      return "be-transfer";
    case MsgKind::kBeBounce:
      return "be-bounce";
    case MsgKind::kBeResult:
      return "be-result";
    case MsgKind::kBeDrop:
      return "be-drop";
    case MsgKind::kStateDelta:
      return "state-delta";
    case MsgKind::kMasterDown:
      return "master-down";
    case MsgKind::kMasterUp:
      return "master-up";
    case MsgKind::kMasterNack:
      return "master-nack";
  }
  return "?";
}

MailboxGrid::MailboxGrid(int num_shards) : num_shards_(num_shards) {
  TANGO_CHECK(num_shards >= 1, "grid needs at least one shard");
  pairs_.resize(static_cast<std::size_t>(num_shards) *
                static_cast<std::size_t>(num_shards));
}

void MailboxGrid::Send(int src, int dst, const ShardMessage& msg) {
  TANGO_CHECK(msg.deliver > bound_,
              "lookahead violation: %s %d->%d deliver=%lld bound=%lld",
              MsgKindName(msg.kind), msg.src.value, msg.dst.value,
              static_cast<long long>(msg.deliver),
              static_cast<long long>(bound_));
  TANGO_CHECK(msg.deliver >= msg.sent, "delivery before send");
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  At(src, dst).out.push_back(msg);
}

void MailboxGrid::Exchange() {
  for (Pair& p : pairs_) {
    if (p.out.empty()) continue;
    exchanged_ += static_cast<std::int64_t>(p.out.size());
    if (p.in.empty()) {
      std::swap(p.in, p.out);
    } else {
      p.in.insert(p.in.end(), p.out.begin(), p.out.end());
      p.out.clear();
    }
  }
}

void MailboxGrid::Drain(int dst, std::vector<ShardMessage>& sink) {
  sink.clear();
  for (int src = 0; src < num_shards_; ++src) {
    Pair& p = At(src, dst);
    if (p.in.empty()) continue;
    drained_ += static_cast<std::int64_t>(p.in.size());
    // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
    sink.insert(sink.end(), p.in.begin(), p.in.end());
    p.in.clear();
  }
  // (deliver, src cluster, seq) is a total order: seq is unique per source
  // cluster, so no two messages compare equal and plain sort is stable in
  // effect. Every partition sorts the same message set with the same key,
  // so the per-destination-cluster delivery order is partition-invariant.
  std::sort(sink.begin(), sink.end(),
            [](const ShardMessage& a, const ShardMessage& b) {
              if (a.deliver != b.deliver) return a.deliver < b.deliver;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
}

bool MailboxGrid::Empty() const {
  for (const Pair& p : pairs_) {
    if (!p.out.empty() || !p.in.empty()) return false;
  }
  return true;
}

SimTime MailboxGrid::MinPendingDeliver() const {
  SimTime min_deliver = std::numeric_limits<SimTime>::max();
  for (const Pair& p : pairs_) {
    for (const ShardMessage& m : p.out) {
      min_deliver = std::min(min_deliver, m.deliver);
    }
    for (const ShardMessage& m : p.in) {
      min_deliver = std::min(min_deliver, m.deliver);
    }
  }
  return min_deliver;
}

}  // namespace tango::shard
