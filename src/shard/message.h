// TangoShard cross-cluster messages.
//
// Every interaction that crosses a cluster boundary in the sharded engine —
// LC spill-overs and their results, BE forwarding through the acting
// central master, state-sync deltas, master up/down control broadcasts,
// fault-triggered bounces — is a ShardMessage dropped into a mailbox
// (shard/mailbox.h) and delivered at an epoch barrier. There is no other
// channel: a cluster may schedule events on its own shard's simulator
// freely (intra-cluster effects ride the LAN, below the lookahead), but a
// cross-cluster effect must be a message even when source and destination
// happen to share a shard. That uniformity is what makes the engine
// byte-identical across shard counts: the set of messages, their delivery
// times, and their per-destination order depend only on the simulated
// system, never on the partition.
//
// Messages carry a per-source-cluster sequence number assigned at send
// time. (deliver, src, seq) is a total order that every partition agrees
// on, so barrier-time delivery can sort on it and schedule deliveries in
// one canonical order.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/units.h"

namespace tango::shard {

enum class MsgKind : std::uint8_t {
  kLcTransfer,   // origin/delegate master -> remote master: place this LC
  kLcReject,     // remote master -> origin: could not place, re-route
  kLcResult,     // executing cluster -> origin: LC request completed
  kLcLost,       // executing cluster -> origin: request lost to a fault
  kBeForward,    // origin master -> acting central: new BE request
  kBeTransfer,   // central -> target cluster: place this BE
  kBeBounce,     // target -> central: not admitted / evicted / lost
  kBeResult,     // executing cluster -> origin: BE request completed
  kBeDrop,       // central -> origin: bounce budget exhausted, give up
  kStateDelta,   // master -> scoped masters + central: aggregate view
  kMasterDown,   // control broadcast: payload.subject's master failed
  kMasterUp,     // control broadcast: payload.subject's master recovered
  kMasterNack,   // dead master's cluster bounces a request back to sender
};

const char* MsgKindName(MsgKind kind);

/// Body shared by every message kind. Request kinds use the request block;
/// kStateDelta uses the delta block; control kinds use `subject`. One flat
/// POD (rather than a variant) keeps the mailbox slabs trivially copyable
/// and the per-kind unused fields cost nothing but zeroed bytes.
struct Payload {
  // --- request block -----------------------------------------------------
  /// Globally unique request id: (origin cluster << 40) | per-origin
  /// counter. Folded into the determinism digest at every hop.
  std::uint64_t uid = 0;
  ClusterId origin;          // where the record (and the client) lives
  std::int32_t slot = -1;    // record slot at the origin cluster
  std::uint32_t gen = 0;     // record generation (stale replies are no-ops)
  ServiceId service;
  Millicores demand = 0;
  SimDuration exec_us = 0;   // sampled work at exactly `demand` millicores
  SimTime arrival = 0;
  SimDuration deadline_us = 0;  // LC QoS target; 0 for BE
  Bytes request_bytes = 0;
  Bytes response_bytes = 0;
  std::int16_t reroutes = 0;  // fault re-dispatches + spill rejections (LC)
  std::int16_t bounces = 0;   // BE placement bounces through the central
  bool is_lc = true;
  /// For kMasterNack: the kind of the message that hit the dead master, so
  /// the sender knows which recovery path to take.
  MsgKind orig = MsgKind::kLcTransfer;

  // --- delta block (kStateDelta) -----------------------------------------
  std::uint64_t version = 0;      // per-source monotonic; 0 = never synced
  Millicores free_total = 0;      // aggregate free CPU on usable workers
  std::int32_t live_workers = 0;

  // --- control block (kMasterDown/Up, kMasterNack) -----------------------
  ClusterId subject;  // whose master the notice is about
};

struct ShardMessage {
  MsgKind kind = MsgKind::kLcTransfer;
  ClusterId src;
  ClusterId dst;
  SimTime sent = 0;     // virtual send time
  SimTime deliver = 0;  // virtual delivery time; >= sent + lookahead
  /// Per-source-cluster send counter. Unique per src, so
  /// (deliver, src, seq) totally orders any message set.
  std::uint64_t seq = 0;
  Payload payload;
};

}  // namespace tango::shard
