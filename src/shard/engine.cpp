#include "shard/engine.h"

#include <algorithm>
#include <chrono>

#include "audit/audit.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/vet.h"
#include "scope/export.h"

namespace tango::shard {

double RunResult::p95_latency_ms() const {
  if (totals.lc_completed <= 0) return 0.0;
  const std::int64_t target =
      (totals.lc_completed * 95 + 99) / 100;  // ceil(0.95 * n)
  std::int64_t seen = 0;
  for (int b = 0; b < ClusterStats::kLatencyBuckets; ++b) {
    seen += totals.latency_us_log2[b];
    if (seen >= target) {
      return ToMilliseconds(SimDuration{1} << (b + 1));
    }
  }
  return ToMilliseconds(SimDuration{1} << ClusterStats::kLatencyBuckets);
}

ShardEngine::ShardEngine(EngineConfig cfg)
    : cfg_(std::move(cfg)), grid_(1) {
  TANGO_CHECK(!cfg_.clusters.empty(), "engine needs at least one cluster");
  const int n = static_cast<int>(cfg_.clusters.size());
  for (int c = 0; c < n; ++c) {
    cfg_.clusters[static_cast<std::size_t>(c)].id = ClusterId{c};
  }

  // Geography is part of the seeded experiment identity, like
  // EdgeCloudSystem's layout.
  Rng layout_rng(cfg_.seed ^ 0xC1D07A9E5ULL);
  topology_ = net::Topology(
      net::Topology::RandomLayout(n, cfg_.region_km, layout_rng), cfg_.link);

  lookahead_ = cfg_.epoch_override > 0 ? cfg_.epoch_override
                                       : topology_.MinCrossClusterLatency();
  TANGO_CHECK(lookahead_ > 0, "lookahead must be positive");
  TANGO_CHECK(lookahead_ <= topology_.MinCrossClusterLatency(),
              "epoch override exceeds the conservative lookahead");

  partition_ = k8s::PartitionClusters(cfg_.clusters, cfg_.num_shards,
                                      cfg_.partition_strategy);
  grid_ = MailboxGrid(partition_.num_shards);

  shards_.reserve(static_cast<std::size_t>(partition_.num_shards));
  for (int s = 0; s < partition_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    if (cfg_.trace) {
      shards_.back()->tracer.Enable(
          scope::Tracer::Config{.capacity = cfg_.trace_capacity});
    }
  }

  model_cfg_ = cfg_.model;
  model_cfg_.topology = &topology_;
  if (model_cfg_.catalog == nullptr) {
    catalog_storage_ = workload::ServiceCatalog::Standard();
    model_cfg_.catalog = &catalog_storage_;
  }
  model_cfg_.end_time = cfg_.duration;
  model_cfg_.lc_services = model_cfg_.catalog->LcServices();
  model_cfg_.be_services = model_cfg_.catalog->BeServices();

  // Centrality ranking: ascending total distance, lowest id ties — the
  // failover order for the acting central master.
  std::vector<double> dist_sum(static_cast<std::size_t>(n), 0.0);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const double d = topology_.GeoDistanceKm(ClusterId{a}, ClusterId{b});
      dist_sum[static_cast<std::size_t>(a)] += d;
      dist_sum[static_cast<std::size_t>(b)] += d;
    }
  }
  model_cfg_.central_rank.resize(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    model_cfg_.central_rank[static_cast<std::size_t>(c)] = ClusterId{c};
  }
  std::sort(model_cfg_.central_rank.begin(), model_cfg_.central_rank.end(),
            [&dist_sum](ClusterId a, ClusterId b) {
              const double da = dist_sum[static_cast<std::size_t>(a.value)];
              const double db = dist_sum[static_cast<std::size_t>(b.value)];
              if (da != db) return da < db;
              return a < b;
            });

  // Node numbering matches fault::WorkerIds: per cluster, master first,
  // then workers, ids sequential across clusters.
  std::vector<std::int32_t> first_node(static_cast<std::size_t>(n), 0);
  std::int32_t next = 0;
  for (int c = 0; c < n; ++c) {
    first_node[static_cast<std::size_t>(c)] = next;
    next += 1 + cfg_.clusters[static_cast<std::size_t>(c)].num_workers;
  }
  num_nodes_ = next;

  models_.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    const int s = partition_.shard_of[static_cast<std::size_t>(c)];
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    ClusterModel::Hookup hookup;
    hookup.sim = &sh.sim;
    hookup.grid = &grid_;
    hookup.partition = &partition_;
    hookup.tracer = cfg_.trace ? &sh.tracer : nullptr;
    hookup.shard = s;
    models_.push_back(std::make_unique<ClusterModel>(
        &model_cfg_, cfg_.clusters[static_cast<std::size_t>(c)],
        NodeId{first_node[static_cast<std::size_t>(c)]}, cfg_.seed, hookup));
  }

  cluster_faults_ = fault::SplitByCluster(
      cfg_.faults, n, [&first_node, n](NodeId node) {
        // Clusters are contiguous id ranges; find the owning range.
        for (int c = n - 1; c >= 0; --c) {
          if (node.value >= first_node[static_cast<std::size_t>(c)]) {
            return ClusterId{c};
          }
        }
        return ClusterId{};
      });
}

TANGO_HOT void ShardEngine::RunShardEpoch(std::size_t s, SimTime bound) {
  Shard& sh = *shards_[s];
  grid_.Drain(static_cast<int>(s), sh.inbox);
  for (const ShardMessage& m : sh.inbox) {
    ClusterModel* model = models_[static_cast<std::size_t>(m.dst.value)].get();
    std::uint32_t idx;
    if (!sh.slab_free.empty()) {
      idx = sh.slab_free.back();
      sh.slab_free.pop_back();
      sh.slab[idx] = m;
    } else {
      idx = static_cast<std::uint32_t>(sh.slab.size());
      // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
      sh.slab.push_back(m);
    }
    Shard* shp = &sh;
    sh.sim.ScheduleAt(m.deliver, [shp, model, idx] {
      const ShardMessage msg = shp->slab[idx];
      // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
      shp->slab_free.push_back(idx);
      model->OnMessage(msg);
    });
  }
  sh.inbox.clear();
  sh.executed += sh.sim.RunUntil(bound);
  AUDIT_CHECK(sh.sim.Now() == bound, .subsystem = "shard",
              .invariant = "shard.barrier_time", .sim_time = sh.sim.Now(),
              .detail = audit::Detail(
                  "shard stopped at %lld, epoch barrier %lld",
                  static_cast<long long>(sh.sim.Now()),
                  static_cast<long long>(bound)));
}

RunResult ShardEngine::Run() {
  TANGO_CHECK(!ran_, "ShardEngine::Run is one-shot");
  ran_ = true;

  // TANGOVET_ALLOW_NEXT(telemetry: wall throughput stats, not sim state)
  const auto wall_start = std::chrono::steady_clock::now();
  RunResult result;

  // Models start in cluster-id order; each only touches its own shard's
  // simulator, so per-shard schedules are partition-invariant projections.
  for (std::size_t c = 0; c < models_.size(); ++c) {
    models_[c]->Start();
    models_[c]->ScheduleFaults(cluster_faults_[c]);
  }

  const bool serial =
      cfg_.deterministic_reference || partition_.num_shards == 1;
  if (!serial && pool_ == nullptr) {
    const int threads = cfg_.num_threads > 0 ? cfg_.num_threads
                                             : partition_.num_shards - 1;
    pool_ = std::make_unique<ThreadPool>(threads);
  }

  const auto num_shards = static_cast<std::size_t>(partition_.num_shards);
  std::int64_t k_prev = -1;
  while (true) {
    SimTime next_event = sim::Simulator::kNoEvent;
    for (const auto& sh : shards_) {
      next_event = std::min(next_event, sh->sim.NextEventTime());
    }
    // Exchanged-but-undrained messages are future events that live in no
    // simulator heap; skipping past one would schedule it into its shard's
    // past and trip the lookahead check on anything it then sends.
    next_event = std::min(next_event, grid_.MinPendingDeliver());
    if (next_event == sim::Simulator::kNoEvent ||
        next_event > cfg_.duration) {
      break;
    }
    // Epoch k covers ((k-1)L, kL]; an event at t belongs to epoch
    // ceil(t / L). Monotonic advance: events scheduled exactly at the
    // previous bound run in the next window (RunUntil is inclusive).
    std::int64_t k = (next_event + lookahead_ - 1) / lookahead_;
    if (k <= k_prev) {
      k = k_prev + 1;
    } else if (k > k_prev + 1) {
      result.epochs_skipped += k - k_prev - 1;
    }
    k_prev = k;
    const SimTime bound = std::min(k * lookahead_, cfg_.duration);

    grid_.BeginEpoch(bound);
    if (serial) {
      for (std::size_t s = 0; s < num_shards; ++s) RunShardEpoch(s, bound);
    } else {
      pool_->ParallelFor(num_shards,
                         [this, bound](std::size_t s, int) {
                           RunShardEpoch(s, bound);
                         });
    }
    grid_.Exchange();
    ++result.epochs;
  }

  // Merge per-cluster outcomes in cluster-id order (partition-invariant).
  double util_acc = 0.0;
  std::int64_t util_rows = 0;
  result.digest = 14695981039346656037ULL;
  for (const auto& model : models_) {
    result.totals.Merge(model->stats());
    result.cluster_digests.push_back(model->digest());
    result.digest = (result.digest ^ model->digest()) * 1099511628211ULL;
    for (const auto& row : model->periods()) {
      util_acc += row.util;
      ++util_rows;
    }
  }
  result.mean_util = util_rows > 0 ? util_acc / static_cast<double>(util_rows)
                                   : 0.0;
  for (const auto& sh : shards_) result.executed_events += sh->executed;
  result.mailbox_exchanged = grid_.exchanged();
  result.mailbox_drained = grid_.drained();
  TANGO_CHECK(result.mailbox_drained <= result.mailbox_exchanged,
              "mailbox conservation violated");

  // TANGOVET_ALLOW_NEXT(telemetry: wall throughput stats, not sim state)
  const auto wall_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.events_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.executed_events) / result.wall_seconds
          : 0.0;
  return result;
}

std::vector<const scope::Tracer*> ShardEngine::tracers() const {
  std::vector<const scope::Tracer*> out;
  if (!cfg_.trace) return out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) out.push_back(&sh->tracer);
  return out;
}

bool ShardEngine::ExportTrace(const std::string& path) const {
  return scope::WriteChromeTraceFile(path, tracers());
}

}  // namespace tango::shard
