#include "workload/trace_io.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace tango::workload {

namespace {
constexpr const char* kHeader =
    "request_id,service_id,origin_cluster,arrival_us,work_scale";

void SetError(TraceParseError* error, int line, std::string message) {
  if (error != nullptr) {
    error->line = line;
    error->message = std::move(message);
  }
}
}  // namespace

std::size_t WriteTraceCsv(std::ostream& out, const Trace& trace) {
  out << kHeader << "\n";
  for (const auto& r : trace) {
    out << r.id.value << ',' << r.service.value << ',' << r.origin.value
        << ',' << r.arrival << ',' << r.work_scale << "\n";
  }
  return trace.size();
}

bool WriteTraceCsvFile(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  WriteTraceCsv(out, trace);
  return static_cast<bool>(out);
}

std::optional<Trace> ReadTraceCsv(std::istream& in, TraceParseError* error) {
  std::string line;
  if (!std::getline(in, line)) {
    SetError(error, 1, "empty input");
    return std::nullopt;
  }
  // Tolerate a UTF-8 BOM and trailing CR.
  if (line.size() >= 3 && line.compare(0, 3, "\xEF\xBB\xBF") == 0) {
    line.erase(0, 3);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kHeader) {
    SetError(error, 1, "unexpected header: " + line);
    return std::nullopt;
  }
  Trace trace;
  std::set<std::int32_t> seen;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream row(line);
    Request r;
    char c1, c2, c3, c4;
    long long id, svc, origin, arrival;
    double scale;
    if (!(row >> id >> c1 >> svc >> c2 >> origin >> c3 >> arrival >> c4 >>
          scale) ||
        c1 != ',' || c2 != ',' || c3 != ',' || c4 != ',') {
      SetError(error, lineno, "malformed row: " + line);
      return std::nullopt;
    }
    // The extraction above stops at the last numeric field; anything left
    // ("1.5xyz", a fifth comma, a sixth column) is junk, not a valid row.
    row >> std::ws;
    if (!row.eof()) {
      SetError(error, lineno, "malformed row: " + line);
      return std::nullopt;
    }
    if (id < 0 || svc < 0 || origin < 0 || arrival < 0 || scale <= 0.0) {
      SetError(error, lineno, "out-of-range field: " + line);
      return std::nullopt;
    }
    if (!seen.insert(static_cast<std::int32_t>(id)).second) {
      SetError(error, lineno, "duplicate request id " + std::to_string(id));
      return std::nullopt;
    }
    r.id = RequestId{static_cast<std::int32_t>(id)};
    r.service = ServiceId{static_cast<std::int32_t>(svc)};
    r.origin = ClusterId{static_cast<std::int32_t>(origin)};
    r.arrival = arrival;
    r.work_scale = scale;
    trace.push_back(r);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  return trace;
}

std::optional<Trace> ReadTraceCsvFile(const std::string& path,
                                      TraceParseError* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, 0, "cannot open " + path);
    return std::nullopt;
  }
  return ReadTraceCsv(in, error);
}

}  // namespace tango::workload
