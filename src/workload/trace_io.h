// Trace (de)serialization: a small CSV format so generated workloads can be
// archived, inspected, and replayed bit-for-bit — the role the 2019 Google
// cluster-data files play for the paper.
//
// Format (header line + one row per request):
//   request_id,service_id,origin_cluster,arrival_us,work_scale
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "workload/trace.h"

namespace tango::workload {

/// Serialize a trace. Returns the number of rows written.
std::size_t WriteTraceCsv(std::ostream& out, const Trace& trace);
bool WriteTraceCsvFile(const std::string& path, const Trace& trace);

struct TraceParseError {
  int line = 0;           // 1-based line of the offending row
  std::string message;
};

/// Parse a trace; requests are re-sorted by arrival and ids must be unique.
/// On failure returns nullopt and fills `error` (when non-null).
std::optional<Trace> ReadTraceCsv(std::istream& in,
                                  TraceParseError* error = nullptr);
std::optional<Trace> ReadTraceCsvFile(const std::string& path,
                                      TraceParseError* error = nullptr);

}  // namespace tango::workload
