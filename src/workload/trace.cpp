#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace tango::workload {

namespace {

/// Inhomogeneous Poisson arrivals by thinning: `rate(t)` in requests/µs.
template <class RateFn>
std::vector<SimTime> PoissonArrivals(SimDuration duration, double peak_rate,
                                     Rng& rng, RateFn rate) {
  std::vector<SimTime> out;
  if (peak_rate <= 0.0) return out;
  double t = 0.0;
  const double dmax = static_cast<double>(duration);
  while (true) {
    t += rng.Exponential(peak_rate);
    if (t >= dmax) break;
    const auto st = static_cast<SimTime>(t);
    if (rng.NextDouble() < rate(st) / peak_rate) out.push_back(st);
  }
  return out;
}

/// Sinusoidal rate: mean * (1 + amplitude * sin(2π t / period)).
struct PeriodicRate {
  double mean_per_us;
  double amplitude;
  SimDuration period;
  double operator()(SimTime t) const {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(t) /
                         static_cast<double>(period);
    return std::max(0.0, mean_per_us * (1.0 + amplitude * std::sin(phase)));
  }
};

/// Piecewise-constant random-walk rate resampled every `step`.
class RandomWalkRate {
 public:
  RandomWalkRate(double mean_per_us, double volatility, SimDuration duration,
                 SimDuration step, Rng& rng)
      : step_(step) {
    double level = 1.0;
    const int n = static_cast<int>(duration / step) + 2;
    levels_.reserve(static_cast<std::size_t>(n));
    // Mean-reverting (OU in log space) so the rate fluctuates rather than
    // drifting, then normalized so the realized average equals the
    // configured mean — the fluctuation *shape* is what the experiments
    // exercise; the load level must stay comparable across patterns.
    constexpr double kReversion = 0.8;
    double log_level = 0.0;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      level = std::clamp(std::exp(log_level), 0.15, 4.0);
      levels_.push_back(level);
      sum += level;
      log_level = kReversion * log_level + rng.Normal(0.0, volatility);
    }
    const double scale = mean_per_us * static_cast<double>(n) / sum;
    for (auto& l : levels_) l *= scale;
  }
  double operator()(SimTime t) const {
    const auto idx = static_cast<std::size_t>(t / step_);
    return levels_[std::min(idx, levels_.size() - 1)];
  }
  double peak() const {
    double p = 0.0;
    for (double l : levels_) p = std::max(p, l);
    return p;
  }

 private:
  SimDuration step_;
  std::vector<double> levels_;
};

/// Pick an origin cluster with hotspot skew.
ClusterId PickOrigin(const TraceConfig& cfg, Rng& rng) {
  if (cfg.num_clusters <= 1) return ClusterId{0};
  const int hotspots = std::clamp(cfg.num_hotspots, 1, cfg.num_clusters);
  if (rng.NextDouble() < cfg.hotspot_fraction) {
    return ClusterId{static_cast<std::int32_t>(rng.UniformInt(0, hotspots - 1))};
  }
  return ClusterId{
      static_cast<std::int32_t>(rng.UniformInt(0, cfg.num_clusters - 1))};
}

double SampleWorkScale(Rng& rng) {
  // Bounded Pareto-ish: most requests near 1x, occasional 2-3x.
  return std::clamp(rng.Pareto(0.7, 3.0), 0.6, 3.0);
}

ServiceId PickService(const std::vector<ServiceId>& pool, Rng& rng) {
  return pool[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
}

void AppendClass(Trace& trace, const TraceConfig& cfg,
                 const std::vector<ServiceId>& pool,
                 const std::vector<SimTime>& arrivals, Rng& rng) {
  for (SimTime t : arrivals) {
    Request r;
    r.service = PickService(pool, rng);
    r.origin = PickOrigin(cfg, rng);
    r.arrival = t;
    r.work_scale = SampleWorkScale(rng);
    trace.push_back(r);
  }
}

void FinalizeTrace(Trace& trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].id = RequestId{static_cast<std::int32_t>(i)};
  }
}

}  // namespace

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kP1:
      return "P1(periodic-LC,random-BE)";
    case Pattern::kP2:
      return "P2(periodic-BE,random-LC)";
    case Pattern::kP3:
      return "P3(random,random)";
  }
  return "?";
}

Trace GeneratePattern(Pattern pattern, const TraceConfig& cfg) {
  TANGO_CHECK(cfg.catalog != nullptr, "trace config needs a catalog");
  Rng rng(cfg.seed);
  const auto lc_pool = cfg.catalog->LcServices();
  const auto be_pool = cfg.catalog->BeServices();
  const double clusters = static_cast<double>(std::max(1, cfg.num_clusters));
  const double lc_mean = cfg.lc_rps * clusters / 1e6;  // requests per µs
  const double be_mean = cfg.be_rps * clusters / 1e6;

  Trace trace;
  const bool lc_periodic = pattern == Pattern::kP1;
  const bool be_periodic = pattern == Pattern::kP2;

  if (lc_periodic) {
    PeriodicRate rate{lc_mean, cfg.periodic_amplitude, cfg.period};
    const double peak = lc_mean * (1.0 + cfg.periodic_amplitude);
    AppendClass(trace, cfg, lc_pool,
                PoissonArrivals(cfg.duration, peak, rng, rate), rng);
  } else {
    RandomWalkRate rate(lc_mean, cfg.random_volatility, cfg.duration,
                        kSecond, rng);
    AppendClass(trace, cfg, lc_pool,
                PoissonArrivals(cfg.duration, rate.peak(), rng, rate), rng);
  }

  if (be_periodic) {
    PeriodicRate rate{be_mean, cfg.periodic_amplitude, cfg.period};
    const double peak = be_mean * (1.0 + cfg.periodic_amplitude);
    AppendClass(trace, cfg, be_pool,
                PoissonArrivals(cfg.duration, peak, rng, rate), rng);
  } else {
    RandomWalkRate rate(be_mean, cfg.random_volatility, cfg.duration,
                        kSecond, rng);
    AppendClass(trace, cfg, be_pool,
                PoissonArrivals(cfg.duration, rate.peak(), rng, rate), rng);
  }

  FinalizeTrace(trace);
  return trace;
}

Trace GenerateDiurnal(const TraceConfig& cfg, double hours) {
  TANGO_CHECK(cfg.catalog != nullptr, "trace config needs a catalog");
  Rng rng(cfg.seed);
  const auto lc_pool = cfg.catalog->LcServices();
  const auto be_pool = cfg.catalog->BeServices();
  const double clusters = static_cast<double>(std::max(1, cfg.num_clusters));
  const double lc_mean = cfg.lc_rps * clusters / 1e6;
  const double be_mean = cfg.be_rps * clusters / 1e6;

  // Two-peak diurnal curve (afternoon ~14h, evening ~20h) over `hours`
  // mapped onto cfg.duration.
  auto diurnal = [&](SimTime t) {
    const double h = static_cast<double>(t) /
                     static_cast<double>(cfg.duration) * hours;
    const double afternoon = std::exp(-0.5 * std::pow((h - 14.0) / 2.5, 2.0));
    const double evening = std::exp(-0.5 * std::pow((h - 20.0) / 2.0, 2.0));
    return 0.35 + 0.9 * afternoon + 1.1 * evening;
  };

  Trace trace;
  auto lc_rate = [&](SimTime t) { return lc_mean * diurnal(t); };
  auto be_rate = [&](SimTime t) { return be_mean * diurnal(t); };
  AppendClass(trace, cfg, lc_pool,
              PoissonArrivals(cfg.duration, lc_mean * 2.5, rng, lc_rate), rng);
  AppendClass(trace, cfg, be_pool,
              PoissonArrivals(cfg.duration, be_mean * 2.5, rng, be_rate), rng);
  FinalizeTrace(trace);
  return trace;
}

Trace GenerateGoogleStyle(const TraceConfig& cfg) {
  TANGO_CHECK(cfg.catalog != nullptr, "trace config needs a catalog");
  Rng rng(cfg.seed);
  const auto& specs = cfg.catalog->all();
  const double clusters = static_cast<double>(std::max(1, cfg.num_clusters));
  // Collections (jobs) arrive as a Poisson process; each spawns a burst of
  // requests of a single category — LC categories produce frequent small
  // bursts, BE categories rarer but larger ones.
  const double collection_rate =
      (cfg.lc_rps + cfg.be_rps) * clusters / 1e6 / 6.0;  // ~6 req per burst
  Trace trace;
  double t = 0.0;
  const double dmax = static_cast<double>(cfg.duration);
  while (true) {
    t += rng.Exponential(collection_rate);
    if (t >= dmax) break;
    // LatencySensitivity: tiers 2-3 (LC) are ~lc_rps/(lc+be) of requests.
    const double lc_share = cfg.lc_rps / std::max(1e-9, cfg.lc_rps + cfg.be_rps);
    const bool lc = rng.NextDouble() < lc_share;
    std::vector<ServiceId> pool;
    for (const auto& s : specs) {
      if (s.is_lc() == lc) pool.push_back(s.id);
    }
    const ServiceId service = PickService(pool, rng);
    const int burst =
        static_cast<int>(lc ? rng.UniformInt(3, 9) : rng.UniformInt(2, 6));
    const ClusterId origin = PickOrigin(cfg, rng);
    double offset = 0.0;
    for (int i = 0; i < burst; ++i) {
      offset += rng.Exponential(1.0 / (20.0 * 1000.0));  // ~20 ms spacing
      const double at = t + offset;
      if (at >= dmax) break;
      Request r;
      r.service = service;
      r.origin = origin;
      r.arrival = static_cast<SimTime>(at);
      r.work_scale = SampleWorkScale(rng);
      trace.push_back(r);
    }
  }
  FinalizeTrace(trace);
  return trace;
}

Trace MergeTraces(std::vector<Trace> traces) {
  Trace merged;
  for (auto& t : traces) {
    merged.insert(merged.end(), t.begin(), t.end());
  }
  FinalizeTrace(merged);
  return merged;
}

TraceStats CountByClass(const Trace& trace, const ServiceCatalog& catalog) {
  TraceStats st;
  for (const auto& r : trace) {
    if (catalog.Get(r.service).is_lc()) {
      ++st.lc;
    } else {
      ++st.be;
    }
  }
  return st;
}

}  // namespace tango::workload
