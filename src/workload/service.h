// Service catalog: the 10 LC/BE service categories the paper extracts from
// the 2019 Google cluster trace via the LatencySensitivity field (§6.2).
//
// Each service runs as one container per node; a request of service k needs
// a minimum resource grant (r^{c,k}, r^{m,k}) and a base amount of CPU work.
// LC services carry a tail-latency QoS target γ^k (the paper's production
// measurements put most targets around 300 ms, Figure 1(b)).
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace tango::workload {

enum class ServiceClass { kLC, kBE };
inline const char* ServiceClassName(ServiceClass c) {
  return c == ServiceClass::kLC ? "LC" : "BE";
}

struct ServiceSpec {
  ServiceId id;
  std::string name;
  ServiceClass cls = ServiceClass::kLC;

  /// Minimum resource request to process one request of this service
  /// (the paper's r^{c,k}_i / r^{m,k}_i before re-assurance adjustment).
  Millicores cpu_demand = 100;
  MiB mem_demand = 128;

  /// CPU work per request, expressed as the processing time when granted
  /// exactly `cpu_demand` millicores.
  SimDuration base_proc = 50 * kMillisecond;

  /// Tail-latency QoS target γ^k; 0 for BE services (no target).
  SimDuration qos_target = 0;

  /// Payload sizes for the network model.
  Bytes request_size = 16 * 1024;
  Bytes response_size = 64 * 1024;

  bool is_lc() const { return cls == ServiceClass::kLC; }

  /// Total CPU work in millicore-microseconds: granting more CPU than
  /// cpu_demand speeds the request up proportionally (up to a cap applied by
  /// the execution engine).
  double cpu_work() const {
    return static_cast<double>(cpu_demand) * static_cast<double>(base_proc);
  }
};

class ServiceCatalog {
 public:
  ServiceCatalog() = default;
  explicit ServiceCatalog(std::vector<ServiceSpec> specs);

  /// The 10-type catalog used throughout the evaluation: 5 LC categories
  /// (cloud rendering, AR/VR, video conferencing, smart-factory control,
  /// interactive web) and 5 BE categories (data analytics, model training,
  /// transcoding, log compaction, backup).
  static ServiceCatalog Standard();

  const ServiceSpec& Get(ServiceId id) const;
  const std::vector<ServiceSpec>& all() const { return specs_; }
  std::vector<ServiceId> LcServices() const;
  std::vector<ServiceId> BeServices() const;
  int size() const { return static_cast<int>(specs_.size()); }

 private:
  std::vector<ServiceSpec> specs_;
};

}  // namespace tango::workload
