// Request traces and their generators.
//
// The paper drives all experiments from the 2019 Google cluster trace
// (<EventType, SCHEDULE> × <CollectionType, JOB>, LatencySensitivity mapped
// onto 10 LC/BE categories) plus three synthetic patterns for the HRM study:
//   P1 — periodic LC arrivals, random BE arrivals  (Fig. 9(a) left)
//   P2 — periodic BE arrivals, random LC arrivals  (middle)
//   P3 — both random                               (right)
// We reproduce those marginals with deterministic generators; the diurnal
// generator regenerates the Figure 1 motivation shape.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "workload/service.h"

namespace tango::workload {

/// One service request as it enters an edge access point.
struct Request {
  RequestId id;
  ServiceId service;
  ClusterId origin;      // cluster whose master (eAP) received it
  SimTime arrival = 0;
  /// Demand multiplier drawn per request (heavy-tailed, ≥ ~0.6): scales the
  /// service's base CPU work, mirroring per-job variability in the trace.
  double work_scale = 1.0;
};

using Trace = std::vector<Request>;  // sorted by arrival time

enum class Pattern { kP1, kP2, kP3 };
const char* PatternName(Pattern p);

struct TraceConfig {
  const ServiceCatalog* catalog = nullptr;
  int num_clusters = 1;
  SimDuration duration = 60 * kSecond;
  /// Mean arrival rate per cluster, requests/second, for each class.
  double lc_rps = 40.0;
  double be_rps = 10.0;
  /// Period of the periodic component (P1/P2).
  SimDuration period = 8 * kSecond;
  /// Peak-to-mean ratio of the periodic component.
  double periodic_amplitude = 0.8;
  /// Random-walk volatility of the random component.
  double random_volatility = 0.35;
  /// Geographic skew: fraction of load concentrated on "hot" clusters.
  double hotspot_fraction = 0.5;
  int num_hotspots = 1;
  std::uint64_t seed = 42;
};

/// Generate a trace following one of the three §7.1 patterns.
Trace GeneratePattern(Pattern pattern, const TraceConfig& cfg);

/// Generate a 24-hour diurnal trace with afternoon and evening peaks,
/// matching the Figure 1 measurement shape. `hours` of virtual time are
/// compressed into `cfg.duration`.
Trace GenerateDiurnal(const TraceConfig& cfg, double hours = 24.0);

/// Google-cluster-style trace: jobs arrive in bursts ("collections"), each
/// burst drawing one of the 10 service categories with trace-like frequency
/// (LC categories are request-heavy, BE categories chunkier), with
/// heavy-tailed per-request work scales.
Trace GenerateGoogleStyle(const TraceConfig& cfg);

/// Merge traces and re-sort by arrival (stable; reassigns request ids).
Trace MergeTraces(std::vector<Trace> traces);

/// Count requests of each class in a trace.
struct TraceStats {
  int lc = 0;
  int be = 0;
  int total() const { return lc + be; }
};
TraceStats CountByClass(const Trace& trace, const ServiceCatalog& catalog);

}  // namespace tango::workload
