#include "workload/service.h"

#include "common/logging.h"

namespace tango::workload {

ServiceCatalog::ServiceCatalog(std::vector<ServiceSpec> specs)
    : specs_(std::move(specs)) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    TANGO_CHECK(specs_[i].id.value == static_cast<std::int32_t>(i),
                "catalog ids must be dense, got %d at %zu",
                specs_[i].id.value, i);
  }
}

ServiceCatalog ServiceCatalog::Standard() {
  std::vector<ServiceSpec> s;
  auto add = [&s](const char* name, ServiceClass cls, Millicores cpu, MiB mem,
                  double proc_ms, double qos_ms, Bytes req, Bytes resp) {
    ServiceSpec spec;
    spec.id = ServiceId{static_cast<std::int32_t>(s.size())};
    spec.name = name;
    spec.cls = cls;
    spec.cpu_demand = cpu;
    spec.mem_demand = mem;
    spec.base_proc = FromMilliseconds(proc_ms);
    spec.qos_target = FromMilliseconds(qos_ms);
    spec.request_size = req;
    spec.response_size = resp;
    s.push_back(spec);
  };
  // ---- Latency-critical (targets cluster around the ~300 ms the paper
  //      measures in production, Figure 1(b)).
  add("lc-cloud-render", ServiceClass::kLC, 500, 512, 90, 300, 32 << 10,
      512 << 10);
  add("lc-ar-vr", ServiceClass::kLC, 400, 384, 60, 250, 24 << 10, 256 << 10);
  add("lc-video-conf", ServiceClass::kLC, 300, 256, 70, 320, 48 << 10,
      128 << 10);
  add("lc-factory-ctl", ServiceClass::kLC, 200, 128, 40, 200, 8 << 10,
      8 << 10);
  add("lc-web-api", ServiceClass::kLC, 150, 128, 50, 350, 8 << 10, 32 << 10);
  // ---- Best-effort (no QoS target; longer, chunkier work).
  add("be-analytics", ServiceClass::kBE, 600, 1024, 900, 0, 256 << 10,
      64 << 10);
  add("be-training", ServiceClass::kBE, 800, 2048, 1500, 0, 512 << 10,
      32 << 10);
  add("be-transcode", ServiceClass::kBE, 500, 768, 1100, 0, 1024 << 10,
      1024 << 10);
  add("be-log-compact", ServiceClass::kBE, 300, 512, 700, 0, 128 << 10,
      16 << 10);
  add("be-backup", ServiceClass::kBE, 200, 256, 500, 0, 64 << 10, 8 << 10);
  return ServiceCatalog(std::move(s));
}

const ServiceSpec& ServiceCatalog::Get(ServiceId id) const {
  TANGO_CHECK(id.valid() && id.value < size(), "bad service id %d", id.value);
  return specs_[static_cast<std::size_t>(id.value)];
}

std::vector<ServiceId> ServiceCatalog::LcServices() const {
  std::vector<ServiceId> out;
  for (const auto& s : specs_) {
    if (s.is_lc()) out.push_back(s.id);
  }
  return out;
}

std::vector<ServiceId> ServiceCatalog::BeServices() const {
  std::vector<ServiceId> out;
  for (const auto& s : specs_) {
    if (!s.is_lc()) out.push_back(s.id);
  }
  return out;
}

}  // namespace tango::workload
