// Per-cluster decision loops for the sharded engine, plus the thin global
// placement layer above them.
//
// DSS-LC and DCG-BE make *per-request* decisions against a full state
// storage; at 100k nodes that global view is exactly what serializes the
// simulation. The sharded engine instead splits scheduling Oakestra-style
// into two tiers:
//
//   - a per-cluster loop (one per master, shard-local): place an LC request
//     on the best local worker, fall back to a geo-nearby cluster chosen
//     from delta-synced aggregate views when the cluster is full;
//   - a thin global layer (the acting central master): rank clusters by
//     synced free capacity to place BE batches, never touching per-worker
//     state of remote clusters.
//
// Everything here is pure functions over POD views, so the policies are
// trivially shard-safe (no hidden shared state) and unit-testable without
// a system. Ties break on the lowest index — determinism is a contract.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace tango::sched {

/// Local worker as the per-cluster loop sees it (exact, shard-local state).
struct WorkerView {
  Millicores capacity = 0;
  Millicores used = 0;  // LC + BE combined
  bool alive = true;
  bool draining = false;

  Millicores free() const { return capacity - used; }
  bool usable() const { return alive && !draining; }
};

/// Remote cluster as last synced (aggregate, possibly stale — the version
/// stamp tells how stale).
struct ClusterView {
  ClusterId cluster;
  Millicores free_total = 0;
  std::int32_t live_workers = 0;
  std::uint64_t version = 0;  // 0 = never synced
};

/// Best usable local worker with at least `demand` free, by most-free with
/// lowest-index tie-break; -1 when the cluster cannot host the request.
int PickLocalWorker(const std::vector<WorkerView>& workers,
                    Millicores demand);

/// Worker holding the most BE usage (eviction victim candidate); -1 when no
/// usable worker has `min_be` or more BE resident.
int PickEvictionWorker(const std::vector<WorkerView>& workers,
                       const std::vector<Millicores>& be_used,
                       Millicores min_be);

/// Best remote cluster for an LC spill-over: most synced free capacity
/// among `candidates` with at least `demand` free and at least one live
/// worker, lowest-cluster-id tie-break. Returns an invalid ClusterId when
/// nothing fits. `candidates` must already be the geo-nearby scope (§5.2's
/// 500 km rule) — the policy does not re-derive geography.
ClusterId PickSpillCluster(const std::vector<ClusterView>& candidates,
                           Millicores demand);

/// The thin global layer: rank every cluster for BE placement by synced
/// free capacity (descending, lowest-id ties). `views` must be indexed by
/// cluster id (views[c].cluster == ClusterId{c}). The central master walks
/// the ranking and sends each BE request to the first cluster that fits;
/// per-worker admission stays with the *target* cluster's loop (see
/// hrm::BeGuard), keeping the global layer aggregate-only.
///
/// The scratch overload fills a caller-retained buffer so steady-state
/// dispatch ticks stay allocation-free once the buffer reaches capacity.
void RankBeClusters(const std::vector<ClusterView>& views,
                    std::vector<ClusterId>* order);
std::vector<ClusterId> RankBeClusters(const std::vector<ClusterView>& views);

}  // namespace tango::sched
