#include "sched/learned_be.h"

#include <cmath>
#include <map>

#include "common/logging.h"

namespace tango::sched {

using metrics::NodeSnapshot;
using metrics::StateStorage;

LearnedBeScheduler::LearnedBeScheduler(const workload::ServiceCatalog* catalog,
                                       std::unique_ptr<rl::Agent> agent,
                                       LearnedBeConfig cfg)
    : catalog_(catalog), agent_(std::move(agent)), cfg_(cfg) {
  TANGO_CHECK(catalog_ != nullptr && agent_ != nullptr,
              "learned scheduler wiring incomplete");
}

rl::GraphState LearnedBeScheduler::BuildState(
    const k8s::PendingRequest& pending, const StateStorage& storage) {
  const auto& svc = catalog_->Get(pending.request.service);
  std::vector<NodeSnapshot> workers;
  for (const auto& s : storage.All()) {
    if (!s.is_master) workers.push_back(s);
  }
  if (cfg_.granularity == BeGranularity::kCluster) {
    // Collapse each cluster into one pseudo-node: resources are summed, the
    // representative NodeId is the least-loaded worker that fits the
    // request (what the dispatcher would pick after choosing the cluster).
    std::map<ClusterId, NodeSnapshot> agg;
    std::map<ClusterId, const NodeSnapshot*> representative;
    std::map<ClusterId, double> slack_sum;
    std::map<ClusterId, int> count;
    for (const auto& s : workers) {
      auto [it, fresh] = agg.try_emplace(s.cluster, s);
      if (!fresh) {
        it->second.cpu_total += s.cpu_total;
        it->second.cpu_available += s.cpu_available;
        it->second.mem_total += s.mem_total;
        it->second.mem_available += s.mem_available;
        it->second.queued += s.queued;
        it->second.running_be += s.running_be;
        it->second.running_lc += s.running_lc;
      }
      slack_sum[s.cluster] += s.slack_score;
      count[s.cluster] += 1;
      const bool fits = s.cpu_available >= svc.cpu_demand &&
                        s.mem_available >= svc.mem_demand;
      auto& rep = representative[s.cluster];
      if (fits && (rep == nullptr || s.cpu_available > rep->cpu_available)) {
        rep = &s;
      }
    }
    std::vector<NodeSnapshot> clusters;
    for (auto& [cid, snap] : agg) {
      snap.slack_score = slack_sum[cid] / std::max(1, count[cid]);
      // The pseudo-node's id routes to the representative worker; fall back
      // to the first worker when nothing fits (request will queue there).
      if (representative[cid] != nullptr) {
        snap.node = representative[cid]->node;
      }
      clusters.push_back(snap);
    }
    workers = std::move(clusters);
  }
  const int n = static_cast<int>(workers.size());
  rl::GraphState state;
  node_order_.clear();
  if (n == 0) return state;

  // ---- Node features (§5.3.1's state T, normalized to ~[0,1]).
  nn::Matrix f(n, 9);
  for (int i = 0; i < n; ++i) {
    const auto& s = workers[static_cast<std::size_t>(i)];
    const auto cpu_total = static_cast<float>(std::max<Millicores>(1, s.cpu_total));
    const auto mem_total = static_cast<float>(std::max<MiB>(1, s.mem_total));
    f.at(i, 0) = static_cast<float>(s.cpu_available) / cpu_total;
    f.at(i, 1) = static_cast<float>(s.mem_available) / mem_total;
    f.at(i, 2) = cpu_total / 16000.0f;  // r^{c,total} (16 cores ≈ 1.0)
    f.at(i, 3) = mem_total / 32768.0f;  // r^{m,total} (32 GiB ≈ 1.0)
    f.at(i, 4) = static_cast<float>(s.slack_score);
    f.at(i, 5) = static_cast<float>(svc.cpu_demand) / cpu_total;
    f.at(i, 6) = static_cast<float>(svc.mem_demand) / mem_total;
    f.at(i, 7) = static_cast<float>(s.queued) / 16.0f;
    f.at(i, 8) = static_cast<float>(s.running_be) / 16.0f;
    node_order_.push_back(s.node);
  }
  state.graph.features = std::move(f);

  // ---- Adjacency: full mesh inside a cluster (LAN) plus a bounded number
  // of inter-cluster links so the GNN can see remote load.
  std::map<ClusterId, std::vector<int>> by_cluster;
  for (int i = 0; i < n; ++i) {
    by_cluster[workers[static_cast<std::size_t>(i)].cluster].push_back(i);
  }
  state.graph.adj.assign(static_cast<std::size_t>(n), {});
  for (const auto& [cid, members] : by_cluster) {
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        state.graph.adj[static_cast<std::size_t>(members[a])].push_back(
            members[b]);
        state.graph.adj[static_cast<std::size_t>(members[b])].push_back(
            members[a]);
      }
    }
  }
  // Ring of clusters (by id) with `inter_cluster_links` bridges each.
  std::vector<const std::vector<int>*> cluster_list;
  for (const auto& [cid, members] : by_cluster) cluster_list.push_back(&members);
  const int c = static_cast<int>(cluster_list.size());
  for (int ci = 0; ci + 1 < c + (c > 2 ? 1 : 0); ++ci) {
    const auto& a = *cluster_list[static_cast<std::size_t>(ci % c)];
    const auto& b = *cluster_list[static_cast<std::size_t>((ci + 1) % c)];
    const int links = std::min<int>(
        cfg_.inter_cluster_links,
        static_cast<int>(std::min(a.size(), b.size())));
    for (int l = 0; l < links; ++l) {
      const int u = a[static_cast<std::size_t>(l) % a.size()];
      const int v = b[static_cast<std::size_t>(l) % b.size()];
      state.graph.adj[static_cast<std::size_t>(u)].push_back(v);
      state.graph.adj[static_cast<std::size_t>(v)].push_back(u);
    }
  }

  // ---- Policy context filter c_t: a node is valid iff its available
  // resources satisfy the request (§5.3.2).
  state.valid.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& s = workers[static_cast<std::size_t>(i)];
    state.valid[static_cast<std::size_t>(i)] =
        s.cpu_available >= svc.cpu_demand && s.mem_available >= svc.mem_demand;
  }
  return state;
}

float LearnedBeScheduler::ShortReward(const NodeSnapshot& target,
                                      const workload::ServiceSpec& svc) const {
  // Approximate Σ_{q∈Q_t,i} r_q / r_i with the committed fraction of the
  // target node after this placement (storage view).
  const auto cpu_total =
      static_cast<double>(std::max<Millicores>(1, target.cpu_total));
  const auto mem_total = static_cast<double>(std::max<MiB>(1, target.mem_total));
  const double cpu_frac =
      (static_cast<double>(target.cpu_total - target.cpu_available) +
       static_cast<double>(svc.cpu_demand)) /
      cpu_total;
  const double mem_frac =
      (static_cast<double>(target.mem_total - target.mem_available) +
       static_cast<double>(svc.mem_demand)) /
      mem_total;
  return static_cast<float>(std::exp(-std::max(cpu_frac, mem_frac)));
}

std::optional<NodeId> LearnedBeScheduler::ScheduleOne(
    const k8s::PendingRequest& pending, const StateStorage& storage,
    SimTime /*now*/) {
  rl::GraphState state = BuildState(pending, storage);
  if (state.graph.num_nodes() == 0) return std::nullopt;

  // Close out the previous action with its reward, now that the next state
  // is observable.
  if (has_pending_) {
    const NodeSnapshot* target = storage.Find(last_target_);
    float r_short = 0.0f;
    if (target != nullptr) {
      r_short = ShortReward(*target, catalog_->Get(last_service_));
    }
    const float r_long = 1.0f - std::exp(-long_reward_acc_);
    last_reward_ = r_short + cfg_.eta * r_long;
    long_reward_acc_ = 0.0f;
    agent_->Observe(last_reward_, state, /*done=*/false);
  }

  const int action = agent_->Act(state, /*greedy=*/!cfg_.explore);
  TANGO_CHECK(action >= 0 && action < state.graph.num_nodes(),
              "action out of range");
  has_pending_ = true;
  last_target_ = node_order_[static_cast<std::size_t>(action)];
  last_service_ = pending.request.service;
  ++actions_;
  return last_target_;
}

void LearnedBeScheduler::OnBeCompleted(NodeId node,
                                       const workload::Request& request,
                                       SimTime /*now*/) {
  (void)node;
  const auto& svc = catalog_->Get(request.service);
  // Each completion contributes r^c/r^{c,node} + r^m/r^{m,node}; node totals
  // vary little across workers, so normalize by a nominal 4-core/8-GiB node.
  long_reward_acc_ += static_cast<float>(svc.cpu_demand) / 4000.0f +
                      static_cast<float>(svc.mem_demand) / 8192.0f;
}

std::unique_ptr<LearnedBeScheduler> MakeDcgBe(
    const workload::ServiceCatalog* catalog, gnn::EncoderKind encoder,
    std::uint64_t seed, LearnedBeConfig be_cfg) {
  rl::A2cConfig cfg;
  cfg.encoder = encoder;
  cfg.seed = seed;
  cfg.adam.lr = be_cfg.learning_rate;
  cfg.packed_inference = be_cfg.packed_inference;
  return std::make_unique<LearnedBeScheduler>(
      catalog, std::make_unique<rl::A2cAgent>(cfg), be_cfg);
}

std::unique_ptr<LearnedBeScheduler> MakeGnnSac(
    const workload::ServiceCatalog* catalog, std::uint64_t seed,
    LearnedBeConfig be_cfg) {
  rl::SacConfig cfg;
  cfg.seed = seed;
  cfg.adam.lr = be_cfg.learning_rate;
  return std::make_unique<LearnedBeScheduler>(
      catalog, std::make_unique<rl::SacAgent>(cfg), be_cfg);
}

}  // namespace tango::sched
