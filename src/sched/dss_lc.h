// DSS-LC: Distributed Service request Scheduling for LC requests (§5.2,
// Algorithm 2).
//
// Per dispatch round and per request type k, the scheduler builds a
// min-cost-flow instance G_k over the master (supply = pending requests) and
// the reachable workers (capacity t_i^k from Eq. 2, edge cost = one-way
// delay) and routes every request at minimum total transmission delay.
// When demand exceeds capacity (Σ t_i^k > 0), requests are split by the
// sorting policy ρ into an immediate set R_k (scheduled on G_k as above) and
// a queued set R'_k scheduled on Ĝ'_k, whose capacities come from *total*
// node resources scaled by the augmentation factor λ (Eqs. 7–8) so the
// backlog spreads proportionally to heterogeneous node sizes.
#pragma once

#include <functional>
#include <map>

#include "common/rng.h"
#include "k8s/scheduling_api.h"

namespace tango::sched {

/// ρ(·): how the overload split orders requests. The paper uses random
/// (all LC services share one priority) and notes the policy is pluggable.
enum class SplitPolicy { kRandom, kFifo, kDeadline };
const char* SplitPolicyName(SplitPolicy p);

struct DssLcConfig {
  /// Per-(master,worker) transmission capacity c_ij, in requests per round
  /// (Eq. 4's bound).
  std::int64_t edge_capacity = 4096;
  SplitPolicy split_policy = SplitPolicy::kRandom;
  std::uint64_t seed = 97;
};

class DssLcScheduler : public k8s::LcScheduler {
 public:
  DssLcScheduler(const workload::ServiceCatalog* catalog,
                 DssLcConfig cfg = {});

  std::vector<k8s::Assignment> Schedule(
      ClusterId cluster, const std::vector<k8s::PendingRequest>& queue,
      const metrics::StateStorage& storage, SimTime now) override;

  std::string name() const override { return "DSS-LC"; }
  double decision_seconds() const override { return decision_seconds_; }
  std::int64_t decisions() const override { return decisions_; }
  k8s::LcRoundStats last_round_stats() const override { return last_round_; }
  k8s::LcRoundStats total_round_stats() const override {
    return total_round_;
  }

  /// λ of the most recent overload split (0 when no split happened) —
  /// exposed for tests of Eq. 8.
  double last_lambda() const { return last_lambda_; }
  /// Total requests routed through the overflow graph Ĝ'_k so far.
  std::int64_t overflow_routed() const { return overflow_routed_; }

 private:
  struct WorkerCap {
    NodeId node;
    std::int64_t capacity;        // |t_i^k| for available resources
    std::int64_t total_capacity;  // with total resources (for Ĝ'_k)
    std::int64_t cost;            // one-way delay µs
  };

  /// Route `amount` requests across workers via min-cost flow; returns
  /// per-worker counts aligned with `workers`.
  std::vector<std::int64_t> Route(const std::vector<WorkerCap>& workers,
                                  std::int64_t amount, bool use_total,
                                  double lambda);

  const workload::ServiceCatalog* catalog_;
  DssLcConfig cfg_;
  Rng rng_;
  double decision_seconds_ = 0.0;
  std::int64_t decisions_ = 0;
  double last_lambda_ = 0.0;
  std::int64_t overflow_routed_ = 0;
  k8s::LcRoundStats last_round_;
  k8s::LcRoundStats total_round_;
  /// CPU/memory the dispatcher has committed per node since the last
  /// state-storage refresh (decays with the sync period): without it, every
  /// dispatch round between refreshes re-routes onto the same stale
  /// capacity.
  std::map<NodeId, double> committed_cpu_;
  std::map<NodeId, double> committed_mem_;
  SimTime last_decay_ = 0;
};

}  // namespace tango::sched
