// DSS-LC: Distributed Service request Scheduling for LC requests (§5.2,
// Algorithm 2).
//
// Per dispatch round and per request type k, the scheduler builds a
// min-cost-flow instance G_k over the master (supply = pending requests) and
// the reachable workers (capacity t_i^k from Eq. 2, edge cost = one-way
// delay) and routes every request at minimum total transmission delay.
// When demand exceeds capacity (Σ t_i^k > 0), requests are split by the
// sorting policy ρ into an immediate set R_k (scheduled on G_k as above) and
// a queued set R'_k scheduled on Ĝ'_k, whose capacities come from *total*
// node resources scaled by the augmentation factor λ (Eqs. 7–8) so the
// backlog spreads proportionally to heterogeneous node sizes.
//
// Parallel scheduling core: Alg. 2 treats the per-type graphs G_k as
// independent, so Schedule() fans the types out over a fixed-size thread
// pool (DssLcConfig::num_threads). Determinism contract:
//   * every type draws from its own RNG stream derived from (seed, service
//     id, round index) — never from a shared stream;
//   * every type sees the identical round-start view (snapshots + the
//     dispatcher's commitments as of the top of the round);
//   * results are merged in ascending service-id order.
// Under a fixed seed the emitted assignments are therefore byte-identical
// whatever num_threads is — serial mode is just the pool-free special case.
//
// TangoSolve warm start (DESIGN.md §14): each (service type, graph kind ∈
// {immediate G_k, overflow Ĝ'_k}) pair owns a MinCostMaxFlow that stays
// warm across rounds. At round start the worker capacity/cost view is
// diffed against what the solver was last built with; unchanged rounds hit
// the solver's memo, changed rounds route UpdateArc deltas in and
// SolveIncremental re-solves warm — byte-identical to a cold rebuild
// (DssLcConfig::warm_start = false forces the cold path for comparison).
// A type is only ever solved by the thread that claimed it, so the warm
// state preserves the serial/parallel identity contract, and steady-state
// rounds perform zero flow-graph allocations (see solver_pool_stats()).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "flow/mcmf.h"
#include "k8s/scheduling_api.h"
#include "scope/metrics.h"

namespace tango::sched {

/// ρ(·): how the overload split orders requests. The paper uses random
/// (all LC services share one priority) and notes the policy is pluggable.
enum class SplitPolicy { kRandom, kFifo, kDeadline };
const char* SplitPolicyName(SplitPolicy p);

struct DssLcConfig {
  /// Per-(master,worker) transmission capacity c_ij, in requests per round
  /// (Eq. 4's bound).
  std::int64_t edge_capacity = 4096;
  SplitPolicy split_policy = SplitPolicy::kRandom;
  std::uint64_t seed = 97;
  /// Concurrency of the per-type G_k fan-out: 1 = serial (no pool),
  /// 0 = one slot per hardware thread, N > 1 = N slots (N-1 pool threads
  /// plus the scheduling thread). Assignments are identical for any value.
  int num_threads = 1;
  /// Record a wall-clock profile of each round's phases (snapshot filter,
  /// graph build / delta build, MCMF solve, merge, commit) into the
  /// scheduler's metric registry. Off by default: the extra steady_clock
  /// reads sit on the per-type hot path.
  bool profile_phases = false;
  /// Keep per-type solvers warm across rounds and route capacity/cost
  /// deltas into them (SolveIncremental) instead of rebuilding each G_k
  /// from scratch. Assignments are byte-identical either way; false forces
  /// the cold rebuild path (used by the warm_vs_cold bench comparison).
  bool warm_start = true;
};

class DssLcScheduler : public k8s::LcScheduler {
 public:
  DssLcScheduler(const workload::ServiceCatalog* catalog,
                 DssLcConfig cfg = {});

  std::vector<k8s::Assignment> Schedule(
      ClusterId cluster, const std::vector<k8s::PendingRequest>& queue,
      const metrics::StateStorage& storage, SimTime now) override;

  std::string name() const override { return "DSS-LC"; }
  double decision_seconds() const override { return decision_seconds_; }
  std::int64_t decisions() const override { return decisions_; }
  k8s::LcRoundStats last_round_stats() const override { return last_round_; }
  k8s::LcRoundStats total_round_stats() const override {
    return total_round_;
  }

  /// λ of the most recent overload split (0 when no split happened) —
  /// exposed for tests of Eq. 8.
  double last_lambda() const { return last_lambda_; }
  /// Total requests routed through the overflow graph Ĝ'_k so far.
  std::int64_t overflow_routed() const { return overflow_routed_; }

  /// Solver slots actually used for the G_k fan-out (1 = serial).
  int concurrency() const {
    return pool_ != nullptr ? pool_->concurrency() : 1;
  }

  /// Reuse statistics of the per-(type, graph) MinCostMaxFlow pool. A flat
  /// `alloc_events` across rounds proves steady-state rounds build their
  /// flow graphs without touching the heap; the warm-start counters expose
  /// how rounds were actually answered (memo / warm delta / cold rebuild).
  struct SolverPoolStats {
    int solvers = 0;                // solver instances instantiated
    std::int64_t solves = 0;        // flow instances solved so far
    std::int64_t alloc_events = 0;  // Σ solver alloc_events()
    std::int64_t memo_hits = 0;     // rounds answered from the memo
    std::int64_t warm_solves = 0;   // warm (delta) re-solves
    std::int64_t cold_solves = 0;   // cold generic solves
    std::int64_t star_solves = 0;   // dispatch-star kernel solves
    std::int64_t spfa_downgrades = 0;  // warm rounds that fell back cold
    std::int64_t delta_updates = 0;    // Σ UpdateArc deltas routed in
  };
  SolverPoolStats solver_pool_stats() const;

  /// Entries currently held in the per-node commitment maps (bounded by
  /// the epsilon decay eviction; exposed for tests).
  std::size_t committed_entries() const {
    return committed_cpu_.size() + committed_mem_.size();
  }

  /// Per-scheduler metric registry: "sched.rounds"/"sched.assigned"/
  /// "sched.overflow" counters plus, when DssLcConfig::profile_phases is
  /// set, the "sched.phase.*_us" wall-clock histograms of each round phase.
  scope::MetricRegistry& metrics() { return metrics_; }
  const scope::MetricRegistry& metrics() const { return metrics_; }

 private:
  struct WorkerCap {
    NodeId node;
    std::int64_t capacity;        // |t_i^k| for available resources
    std::int64_t total_capacity;  // with total resources (for Ĝ'_k)
    std::int64_t cost;            // one-way delay µs
  };

  /// Per-node resource commitments one scheduled type adds, merged into
  /// committed_cpu_/committed_mem_ after the fan-out joins.
  struct NodeCommit {
    NodeId node;
    double cpu;
    double mem;
  };

  /// Everything one type's G_k solve produced; merged in service-id order
  /// so the output is independent of worker interleaving.
  struct TypeOutcome {
    std::vector<k8s::Assignment> assignments;
    std::vector<NodeCommit> commits;
    double lambda = 0.0;
    bool overloaded = false;
    std::int64_t overflow = 0;
  };

  /// One warm flow graph: the solver retains the previous round's G_k and
  /// the prev_* arrays hold the values it was last built with, so the next
  /// round's view diffs into an UpdateArc delta list. Arc ids are fixed by
  /// construction order: 0 = source→master, 1+2i = master→worker i,
  /// 2+2i = worker i→sink.
  struct WarmGraph {
    flow::MinCostMaxFlow solver;
    bool built = false;
    std::vector<NodeId> nodes;  // worker identity the graph was built for
    std::vector<std::int64_t> prev_edge_cap;   // master→worker capacity
    std::vector<std::int64_t> prev_edge_cost;  // master→worker cost
    std::vector<std::int64_t> prev_sink_cap;   // worker→sink capacity
    std::int64_t prev_amount = -1;
  };
  /// Warm graphs for one service type: the immediate G_k and the λ-scaled
  /// overflow Ĝ'_k. Only the thread that claimed the type touches it.
  struct TypeSolvers {
    WarmGraph immediate;
    WarmGraph overflow;
  };

  /// Solve one type's graph(s) against the round-start state view using the
  /// type's warm solvers. Pure w.r.t. scheduler state except for `ts` and
  /// the atomic solve counter.
  TypeOutcome ScheduleType(ServiceId svc,
                           const std::vector<const k8s::PendingRequest*>& reqs,
                           const std::vector<metrics::NodeSnapshot>& snapshots,
                           const metrics::StateStorage& storage, SimTime now,
                           std::uint64_t round, TypeSolvers& ts);

  /// Route `amount` requests across workers via min-cost flow on the warm
  /// graph `g` (delta path when the worker set matches what `g` was built
  /// for, cold rebuild otherwise); returns per-worker counts aligned with
  /// `workers`.
  std::vector<std::int64_t> Route(WarmGraph& g,
                                  const std::vector<WorkerCap>& workers,
                                  std::int64_t amount, bool use_total,
                                  double lambda);

  const workload::ServiceCatalog* catalog_;
  DssLcConfig cfg_;
  /// Created when cfg_.num_threads != 1; absent in serial mode.
  std::unique_ptr<ThreadPool> pool_;
  /// Warm solver pair per service type ever scheduled. Entries are created
  /// serially at round start; pool threads only dereference their own
  /// type's pointer, so the map itself is never mutated concurrently.
  std::map<ServiceId, std::unique_ptr<TypeSolvers>> type_solvers_;
  std::atomic<std::int64_t> solves_{0};  // Route calls (pool threads write)
  double decision_seconds_ = 0.0;
  std::int64_t decisions_ = 0;
  double last_lambda_ = 0.0;
  std::int64_t overflow_routed_ = 0;
  k8s::LcRoundStats last_round_;
  k8s::LcRoundStats total_round_;
  /// CPU/memory the dispatcher has committed per node since the last
  /// state-storage refresh (decays with the sync period): without it, every
  /// dispatch round between refreshes re-routes onto the same stale
  /// capacity. Entries decayed below an epsilon are erased so the maps stay
  /// bounded by the recently-used node set instead of every node ever seen.
  std::map<NodeId, double> committed_cpu_;
  std::map<NodeId, double> committed_mem_;
  SimTime last_decay_ = 0;

  /// TangoScope metrics (registered once in the constructor; pointers are
  /// stable for the registry's lifetime). Histogram::Observe is a relaxed
  /// atomic add, so the pool threads write h_graph_build_/h_solve_ without
  /// extra synchronisation.
  scope::MetricRegistry metrics_;
  scope::Counter* m_rounds_ = nullptr;
  scope::Counter* m_assigned_ = nullptr;
  scope::Counter* m_overflow_ = nullptr;
  scope::Histogram* h_round_ = nullptr;
  scope::Histogram* h_snapshot_ = nullptr;
  scope::Histogram* h_graph_build_ = nullptr;
  scope::Histogram* h_delta_build_ = nullptr;
  scope::Histogram* h_solve_ = nullptr;
  scope::Histogram* h_merge_ = nullptr;
  scope::Histogram* h_commit_ = nullptr;
};

}  // namespace tango::sched
