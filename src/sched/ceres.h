// CERES-style baseline (Yu et al., ICPP'21): container-based *local* elastic
// resource management for mixed workloads.
//
// Compared with HRM: containers share the node elastically (no fixed
// per-service silos), but there is no LC/BE priority ordering, no memory
// preemption, and no QoS re-assurance — and, at the framework level, CERES
// ships no traffic scheduling, so experiments pair it with k8s-native
// round-robin dispatch (Fig. 13's configuration).
#pragma once

#include "k8s/allocation.h"

namespace tango::sched {

struct CeresConfig {
  double speedup_cap = 2.0;
  /// CERES also rescales containers at runtime, but with a slower control
  /// loop than D-VPA's cgroup writes.
  SimDuration scaling_latency = 60 * kMillisecond;
};

class CeresAllocationPolicy : public k8s::AllocationPolicy {
 public:
  explicit CeresAllocationPolicy(const workload::ServiceCatalog* catalog,
                                 CeresConfig cfg = {});

  k8s::ResourceVec EffectiveDemand(
      NodeId node, const workload::ServiceSpec& service) const override;
  k8s::AdmitDecision Admit(
      const k8s::NodeSpec& node, const k8s::ExecSlot& incoming,
      const std::vector<k8s::ExecSlot>& running) const override;
  void ComputeGrants(const k8s::NodeSpec& node,
                     const std::vector<k8s::ExecSlot>& running,
                     std::vector<Millicores>& grants) const override;
  SimDuration AdmissionLatency() const override {
    return cfg_.scaling_latency;
  }
  std::string name() const override { return "CERES"; }

 private:
  const workload::ServiceCatalog* catalog_;
  CeresConfig cfg_;
};

}  // namespace tango::sched
