#include "sched/dss_lc.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "flow/mcmf.h"

namespace tango::sched {

using k8s::Assignment;
using k8s::PendingRequest;

const char* SplitPolicyName(SplitPolicy p) {
  switch (p) {
    case SplitPolicy::kRandom:
      return "random";
    case SplitPolicy::kFifo:
      return "fifo";
    case SplitPolicy::kDeadline:
      return "deadline";
  }
  return "?";
}

DssLcScheduler::DssLcScheduler(const workload::ServiceCatalog* catalog,
                               DssLcConfig cfg)
    : catalog_(catalog), cfg_(cfg), rng_(cfg.seed) {
  TANGO_CHECK(catalog_ != nullptr, "catalog required");
}

std::vector<std::int64_t> DssLcScheduler::Route(
    const std::vector<WorkerCap>& workers, std::int64_t amount,
    bool use_total, double lambda) {
  // Node layout: 0 = source, 1 = master, 2..n+1 = workers, n+2 = sink.
  const int n = static_cast<int>(workers.size());
  flow::MinCostMaxFlow mcmf(n + 3);
  const int source = 0, master = 1, sink = n + 2;
  mcmf.AddArc(source, master, amount, 0);
  std::vector<int> worker_arcs(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const auto& w = workers[static_cast<std::size_t>(i)];
    std::int64_t cap = w.capacity;
    if (use_total) {
      cap = static_cast<std::int64_t>(
          std::ceil(static_cast<double>(w.total_capacity) * lambda));
    }
    if (cap <= 0) continue;
    // master → worker: transmission edge (cost = delay, cap = c_ij).
    const int arc =
        mcmf.AddArc(master, 2 + i, std::min(cap, cfg_.edge_capacity), w.cost);
    worker_arcs[static_cast<std::size_t>(i)] = arc;
    // worker → sink: processing capacity (Eq. 5).
    mcmf.AddArc(2 + i, sink, cap, 0);
  }
  mcmf.Solve(source, sink, amount);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    if (worker_arcs[static_cast<std::size_t>(i)] >= 0) {
      out[static_cast<std::size_t>(i)] =
          mcmf.Flow(worker_arcs[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

std::vector<Assignment> DssLcScheduler::Schedule(
    ClusterId /*cluster*/, const std::vector<PendingRequest>& queue,
    const metrics::StateStorage& storage, SimTime now) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Assignment> out;

  // Decay local commitments (half-life 125 ms ≈ typical service time), so
  // they only bridge the staleness window of the state storage.
  if (now > last_decay_) {
    const double factor =
        std::pow(0.5, static_cast<double>(now - last_decay_) /
                          static_cast<double>(125 * kMillisecond));
    for (auto& [node, cpu] : committed_cpu_) cpu *= factor;
    for (auto& [node, mem] : committed_mem_) mem *= factor;
    last_decay_ = now;
  }

  // Group queued requests by type k ∈ K (Alg. 2 handles each in parallel).
  std::map<ServiceId, std::vector<const PendingRequest*>> by_type;
  for (const auto& p : queue) by_type[p.request.service].push_back(&p);

  // Workers the fault plane took out (crashed, draining, or behind a cut
  // link) are excluded up front — dispatching to them would strand the
  // request until the failure detector re-queues it.
  k8s::LcRoundStats round;
  round.at = now;
  std::vector<metrics::NodeSnapshot> snapshots;
  for (const auto& s : storage.All()) {
    if (s.is_master) continue;
    round.considered += 1;
    if (!s.alive || s.draining) {
      round.excluded_dead += 1;
      continue;
    }
    if (!s.reachable) {
      round.excluded_unreachable += 1;
      continue;
    }
    snapshots.push_back(s);
  }
  for (auto& [svc_id, requests] : by_type) {
    const auto& svc = catalog_->Get(svc_id);
    // Build the worker capacity view (Eq. 2 / Eq. 7).
    std::vector<WorkerCap> workers;
    std::int64_t total_capacity = 0;
    for (const auto& s : snapshots) {
      if (s.is_master) continue;
      // Eq. 2 over the §4.1-regulated LC view (idle + BE-preemptible),
      // minus what this dispatcher already committed since the last sync.
      Millicores cpu_for_lc = s.CpuForLc();
      auto committed = committed_cpu_.find(s.node);
      if (committed != committed_cpu_.end()) {
        cpu_for_lc -= static_cast<Millicores>(committed->second);
      }
      MiB mem_for_lc = s.MemForLc();
      auto committed_mem = committed_mem_.find(s.node);
      if (committed_mem != committed_mem_.end()) {
        mem_for_lc -= static_cast<MiB>(committed_mem->second);
      }
      const std::int64_t cap = std::min(
          std::max<Millicores>(0, cpu_for_lc) /
              std::max<Millicores>(1, svc.cpu_demand),
          std::max<MiB>(0, mem_for_lc) / std::max<MiB>(1, svc.mem_demand));
      const std::int64_t total_cap = std::min(
          s.cpu_total / std::max<Millicores>(1, svc.cpu_demand),
          s.mem_total / std::max<MiB>(1, svc.mem_demand));
      const SimDuration rtt = storage.Rtt(s.cluster).value_or(kMillisecond);
      // Edge cost = transmission delay + estimated queueing delay (queued
      // work observed at the node, plus our own not-yet-visible
      // commitments) — the "routing and queuing delays" the paper's
      // objective integrates. Without the queue term the overflow graph
      // keeps feeding saturated nodes proportional to their total size.
      const double queued_estimate =
          static_cast<double>(s.queued) +
          (committed != committed_cpu_.end()
               ? committed->second / static_cast<double>(svc.cpu_demand)
               : 0.0);
      const auto queue_cost =
          static_cast<std::int64_t>(queued_estimate *
                                    static_cast<double>(svc.base_proc));
      workers.push_back({s.node, std::max<std::int64_t>(0, cap),
                         std::max<std::int64_t>(0, total_cap),
                         rtt / 2 + queue_cost});
      total_capacity += std::max<std::int64_t>(0, cap);
    }
    if (workers.empty()) continue;

    const auto pending = static_cast<std::int64_t>(requests.size());

    // Order requests by the split policy ρ(·).
    std::vector<const PendingRequest*> ordered = requests;
    switch (cfg_.split_policy) {
      case SplitPolicy::kRandom:
        for (std::size_t i = ordered.size(); i > 1; --i) {
          const auto j = static_cast<std::size_t>(
              rng_.UniformInt(0, static_cast<std::int64_t>(i) - 1));
          std::swap(ordered[i - 1], ordered[j]);
        }
        break;
      case SplitPolicy::kFifo:
        std::stable_sort(ordered.begin(), ordered.end(),
                         [](const PendingRequest* a, const PendingRequest* b) {
                           return a->request.arrival < b->request.arrival;
                         });
        break;
      case SplitPolicy::kDeadline: {
        const SimDuration target = svc.qos_target;
        std::stable_sort(ordered.begin(), ordered.end(),
                         [target, now](const PendingRequest* a,
                                       const PendingRequest* b) {
                           const SimTime da = a->request.arrival + target;
                           const SimTime db = b->request.arrival + target;
                           (void)now;
                           return da < db;
                         });
        break;
      }
    }

    auto assign_counts = [&](const std::vector<std::int64_t>& counts,
                             std::size_t first_request,
                             std::size_t n_requests) {
      std::size_t cursor = first_request;
      for (std::size_t i = 0; i < workers.size(); ++i) {
        for (std::int64_t c = 0; c < counts[i]; ++c) {
          if (cursor >= first_request + n_requests) return;
          out.push_back({ordered[cursor]->request.id, workers[i].node});
          committed_cpu_[workers[i].node] +=
              static_cast<double>(svc.cpu_demand);
          committed_mem_[workers[i].node] +=
              static_cast<double>(svc.mem_demand);
          ++cursor;
        }
      }
    };

    if (pending <= total_capacity) {
      // Case 1: capacity suffices — one graph G_k.
      const auto counts = Route(workers, pending, /*use_total=*/false, 0.0);
      assign_counts(counts, 0, static_cast<std::size_t>(pending));
    } else {
      // Case 2: overload — split into R_k (immediate) and R'_k (queued).
      const std::int64_t immediate = total_capacity;
      const std::int64_t overflow = pending - immediate;
      if (immediate > 0) {
        const auto counts =
            Route(workers, immediate, /*use_total=*/false, 0.0);
        assign_counts(counts, 0, static_cast<std::size_t>(immediate));
      }
      // λ scales total-resource capacities so Ĝ'_k fits exactly R'_k (Eq. 8).
      std::int64_t total_res_capacity = 0;
      for (const auto& w : workers) total_res_capacity += w.total_capacity;
      if (total_res_capacity > 0 && overflow > 0) {
        const double lambda = static_cast<double>(overflow) /
                              static_cast<double>(total_res_capacity);
        last_lambda_ = lambda;
        const auto counts =
            Route(workers, overflow, /*use_total=*/true, lambda);
        assign_counts(counts, static_cast<std::size_t>(immediate),
                      static_cast<std::size_t>(overflow));
        for (const auto c : counts) overflow_routed_ += c;
      }
    }
  }

  round.assigned = static_cast<int>(out.size());
  round.left_queued = static_cast<int>(queue.size()) - round.assigned;
  last_round_ = round;
  total_round_.at = now;
  total_round_.considered += round.considered;
  total_round_.excluded_dead += round.excluded_dead;
  total_round_.excluded_unreachable += round.excluded_unreachable;
  total_round_.assigned += round.assigned;
  total_round_.left_queued += round.left_queued;

  const auto t1 = std::chrono::steady_clock::now();
  decision_seconds_ +=
      std::chrono::duration<double>(t1 - t0).count();
  ++decisions_;
  return out;
}

}  // namespace tango::sched
