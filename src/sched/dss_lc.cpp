#include "sched/dss_lc.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/logging.h"
#include "common/vet.h"
#include "scope/scope.h"

namespace tango::sched {

using k8s::Assignment;
using k8s::PendingRequest;

namespace {

/// Commitments decayed below this are dropped from the per-node maps so
/// they stay bounded by the active node set, not every node ever seen.
constexpr double kCommitEpsilon = 1e-6;

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Independent per-(type, round) RNG stream: the Rng constructor splitmixes
/// the seed, so a distinct linear combination per stream is sufficient.
std::uint64_t TypeStreamSeed(std::uint64_t seed, ServiceId svc,
                             std::uint64_t round) {
  return seed + 0x9E3779B97F4A7C15ULL *
                    (static_cast<std::uint64_t>(svc.value) + 1) +
         0x94D049BB133111EBULL * (round + 1);
}

}  // namespace

const char* SplitPolicyName(SplitPolicy p) {
  switch (p) {
    case SplitPolicy::kRandom:
      return "random";
    case SplitPolicy::kFifo:
      return "fifo";
    case SplitPolicy::kDeadline:
      return "deadline";
  }
  return "?";
}

DssLcScheduler::DssLcScheduler(const workload::ServiceCatalog* catalog,
                               DssLcConfig cfg)
    : catalog_(catalog), cfg_(cfg) {
  TANGO_CHECK(catalog_ != nullptr, "catalog required");
  if (cfg_.num_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(
        cfg_.num_threads == 0 ? 0 : cfg_.num_threads - 1);
  }
  m_rounds_ = &metrics_.GetCounter("sched.rounds");
  m_assigned_ = &metrics_.GetCounter("sched.assigned");
  m_overflow_ = &metrics_.GetCounter("sched.overflow");
  h_round_ = &metrics_.GetHistogram("sched.round_us");
  h_snapshot_ = &metrics_.GetHistogram("sched.phase.snapshot_us");
  h_graph_build_ = &metrics_.GetHistogram("sched.phase.graph_build_us");
  h_delta_build_ = &metrics_.GetHistogram("sched.phase.delta_build_us");
  h_solve_ = &metrics_.GetHistogram("sched.phase.mcmf_solve_us");
  h_merge_ = &metrics_.GetHistogram("sched.phase.merge_us");
  h_commit_ = &metrics_.GetHistogram("sched.phase.commit_us");
}

TANGO_HOT std::vector<std::int64_t> DssLcScheduler::Route(
    WarmGraph& g, const std::vector<WorkerCap>& workers, std::int64_t amount,
    bool use_total, double lambda) {
  // Node layout: 0 = source, 1 = master, 2..n+1 = workers, n+2 = sink.
  // Every worker gets its arc pair even at zero capacity: a zero-cap arc
  // never carries flow, but the fixed structure is what lets the next
  // round diff into the same graph instead of rebuilding it.
  std::chrono::steady_clock::time_point t_build;
  // TANGOVET_ALLOW_NEXT(profiling: phase timing never feeds routing state)
  if (cfg_.profile_phases) t_build = std::chrono::steady_clock::now();
  const int n = static_cast<int>(workers.size());
  const auto nz = static_cast<std::size_t>(n);
  const int source = 0, master = 1, sink = n + 2;
  const auto eff_cap = [&](const WorkerCap& w) {
    std::int64_t cap = w.capacity;
    if (use_total) {
      cap = static_cast<std::int64_t>(
          std::ceil(static_cast<double>(w.total_capacity) * lambda));
    }
    return std::max<std::int64_t>(0, cap);
  };

  // Warm when the worker-node sequence matches what the graph was built
  // for; node churn (failover, scale events) forces a cold rebuild.
  bool warm = cfg_.warm_start && g.built && g.nodes.size() == nz;
  for (std::size_t i = 0; warm && i < nz; ++i) {
    warm = g.nodes[i] == workers[i].node;
  }

  flow::MinCostMaxFlow& mcmf = g.solver;
  if (warm) {
    // Delta path: diff the round view against the previous build and feed
    // only the changes to the solver (arc ids fixed by construction order).
    mcmf.BeginRound();
    if (amount != g.prev_amount) {
      mcmf.UpdateArc(0, amount, 0);
      g.prev_amount = amount;
    }
    for (int i = 0; i < n; ++i) {
      const auto zi = static_cast<std::size_t>(i);
      const WorkerCap& w = workers[zi];
      const std::int64_t cap = eff_cap(w);
      const std::int64_t edge = std::min(cap, cfg_.edge_capacity);
      if (edge != g.prev_edge_cap[zi] || w.cost != g.prev_edge_cost[zi]) {
        mcmf.UpdateArc(1 + 2 * i, edge, w.cost);
        g.prev_edge_cap[zi] = edge;
        g.prev_edge_cost[zi] = w.cost;
      }
      if (cap != g.prev_sink_cap[zi]) {
        mcmf.UpdateArc(2 + 2 * i, cap, 0);
        g.prev_sink_cap[zi] = cap;
      }
    }
    if (cfg_.profile_phases) {
      // TANGOVET_ALLOW_NEXT(profiling: phase timing never feeds routing)
      const auto t_solve = std::chrono::steady_clock::now();
      h_delta_build_->Observe(
          static_cast<std::int64_t>(ElapsedUs(t_build, t_solve)));
      mcmf.SolveIncremental(source, sink, amount);
      h_solve_->Observe(static_cast<std::int64_t>(
          // TANGOVET_ALLOW_NEXT(profiling: timing never feeds routing)
          ElapsedUs(t_solve, std::chrono::steady_clock::now())));
    } else {
      mcmf.SolveIncremental(source, sink, amount);
    }
  } else {
    mcmf.Reset(n + 3);
    // Exact arc bound: source→master plus two arcs per worker. The reserve
    // keeps AddArc from growing storage mid-build; once the solver has seen
    // its largest round, later rounds reuse that capacity.
    mcmf.ReserveArcs(static_cast<std::size_t>(2 * n + 1));
    mcmf.AddArc(source, master, amount, 0);
    // TANGOVET_ALLOW_NEXT(cold rebuild: node-churn path, warm rounds skip it)
    g.nodes.assign(nz, NodeId{});
    // TANGOVET_ALLOW_NEXT(cold rebuild: node-churn path, warm rounds skip it)
    g.prev_edge_cap.assign(nz, 0);
    // TANGOVET_ALLOW_NEXT(cold rebuild: node-churn path, warm rounds skip it)
    g.prev_edge_cost.assign(nz, 0);
    // TANGOVET_ALLOW_NEXT(cold rebuild: node-churn path, warm rounds skip it)
    g.prev_sink_cap.assign(nz, 0);
    for (int i = 0; i < n; ++i) {
      const auto zi = static_cast<std::size_t>(i);
      const WorkerCap& w = workers[zi];
      const std::int64_t cap = eff_cap(w);
      const std::int64_t edge = std::min(cap, cfg_.edge_capacity);
      // master → worker: transmission edge (cost = delay, cap = c_ij),
      // then worker → sink: processing capacity (Eq. 5).
      mcmf.AddArc(master, 2 + i, edge, w.cost);
      mcmf.AddArc(2 + i, sink, cap, 0);
      g.nodes[zi] = w.node;
      g.prev_edge_cap[zi] = edge;
      g.prev_edge_cost[zi] = w.cost;
      g.prev_sink_cap[zi] = cap;
    }
    g.prev_amount = amount;
    g.built = true;
    if (cfg_.profile_phases) {
      // TANGOVET_ALLOW_NEXT(profiling: phase timing never feeds routing)
      const auto t_solve = std::chrono::steady_clock::now();
      h_graph_build_->Observe(
          static_cast<std::int64_t>(ElapsedUs(t_build, t_solve)));
      mcmf.Solve(source, sink, amount);
      h_solve_->Observe(static_cast<std::int64_t>(
          // TANGOVET_ALLOW_NEXT(profiling: timing never feeds routing)
          ElapsedUs(t_solve, std::chrono::steady_clock::now())));
    } else {
      mcmf.Solve(source, sink, amount);
    }
  }
  solves_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::int64_t> out(nz, 0);
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = mcmf.Flow(1 + 2 * i);
  }
  return out;
}

DssLcScheduler::TypeOutcome DssLcScheduler::ScheduleType(
    ServiceId svc_id, const std::vector<const PendingRequest*>& requests,
    const std::vector<metrics::NodeSnapshot>& snapshots,
    const metrics::StateStorage& storage, SimTime now, std::uint64_t round,
    TypeSolvers& ts) {
  (void)now;
  TypeOutcome outcome;
  const auto& svc = catalog_->Get(svc_id);

  // Build the worker capacity view (Eq. 2 / Eq. 7) against the round-start
  // state: commitments made by sibling types this round are intentionally
  // invisible (the determinism contract — see the header).
  std::vector<WorkerCap> workers;
  workers.reserve(snapshots.size());
  std::int64_t total_capacity = 0;
  for (const auto& s : snapshots) {
    // Eq. 2 over the §4.1-regulated LC view (idle + BE-preemptible),
    // minus what this dispatcher already committed since the last sync.
    Millicores cpu_for_lc = s.CpuForLc();
    auto committed = committed_cpu_.find(s.node);
    if (committed != committed_cpu_.end()) {
      cpu_for_lc -= static_cast<Millicores>(committed->second);
    }
    MiB mem_for_lc = s.MemForLc();
    auto committed_mem = committed_mem_.find(s.node);
    if (committed_mem != committed_mem_.end()) {
      mem_for_lc -= static_cast<MiB>(committed_mem->second);
    }
    const std::int64_t cap = std::min(
        std::max<Millicores>(0, cpu_for_lc) /
            std::max<Millicores>(1, svc.cpu_demand),
        std::max<MiB>(0, mem_for_lc) / std::max<MiB>(1, svc.mem_demand));
    const std::int64_t total_cap = std::min(
        s.cpu_total / std::max<Millicores>(1, svc.cpu_demand),
        s.mem_total / std::max<MiB>(1, svc.mem_demand));
    const SimDuration rtt = storage.Rtt(s.cluster).value_or(kMillisecond);
    // Edge cost = transmission delay + estimated queueing delay (queued
    // work observed at the node, plus our own not-yet-visible
    // commitments) — the "routing and queuing delays" the paper's
    // objective integrates. Without the queue term the overflow graph
    // keeps feeding saturated nodes proportional to their total size.
    const double queued_estimate =
        static_cast<double>(s.queued) +
        (committed != committed_cpu_.end()
             ? committed->second / static_cast<double>(svc.cpu_demand)
             : 0.0);
    const auto queue_cost =
        static_cast<std::int64_t>(queued_estimate *
                                  static_cast<double>(svc.base_proc));
    workers.push_back({s.node, std::max<std::int64_t>(0, cap),
                       std::max<std::int64_t>(0, total_cap),
                       rtt / 2 + queue_cost});
    total_capacity += std::max<std::int64_t>(0, cap);
  }
  if (workers.empty()) return outcome;

  const auto pending = static_cast<std::int64_t>(requests.size());

  // Order requests by the split policy ρ(·) on this type's own RNG stream.
  std::vector<const PendingRequest*> ordered = requests;
  switch (cfg_.split_policy) {
    case SplitPolicy::kRandom: {
      Rng rng(TypeStreamSeed(cfg_.seed, svc_id, round));
      for (std::size_t i = ordered.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(i) - 1));
        std::swap(ordered[i - 1], ordered[j]);
      }
      break;
    }
    case SplitPolicy::kFifo:
      std::stable_sort(ordered.begin(), ordered.end(),
                       [](const PendingRequest* a, const PendingRequest* b) {
                         return a->request.arrival < b->request.arrival;
                       });
      break;
    case SplitPolicy::kDeadline: {
      const SimDuration target = svc.qos_target;
      std::stable_sort(ordered.begin(), ordered.end(),
                       [target](const PendingRequest* a,
                                const PendingRequest* b) {
                         return a->request.arrival + target <
                                b->request.arrival + target;
                       });
      break;
    }
  }

  // Per-worker commitment totals, turned into NodeCommits after assigning.
  std::vector<std::int64_t> assigned_per_worker(workers.size(), 0);
  auto assign_counts = [&](const std::vector<std::int64_t>& counts,
                           std::size_t first_request,
                           std::size_t n_requests) {
    std::size_t cursor = first_request;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      for (std::int64_t c = 0; c < counts[i]; ++c) {
        if (cursor >= first_request + n_requests) return;
        outcome.assignments.push_back(
            {ordered[cursor]->request.id, workers[i].node});
        assigned_per_worker[i] += 1;
        ++cursor;
      }
    }
  };

  if (pending <= total_capacity) {
    // Case 1: capacity suffices — one graph G_k.
    const auto counts =
        Route(ts.immediate, workers, pending, /*use_total=*/false, 0.0);
    assign_counts(counts, 0, static_cast<std::size_t>(pending));
  } else {
    // Case 2: overload — split into R_k (immediate) and R'_k (queued).
    const std::int64_t immediate = total_capacity;
    const std::int64_t overflow = pending - immediate;
    if (immediate > 0) {
      const auto counts =
          Route(ts.immediate, workers, immediate, /*use_total=*/false, 0.0);
      assign_counts(counts, 0, static_cast<std::size_t>(immediate));
    }
    // λ scales total-resource capacities so Ĝ'_k fits exactly R'_k (Eq. 8).
    std::int64_t total_res_capacity = 0;
    for (const auto& w : workers) total_res_capacity += w.total_capacity;
    if (total_res_capacity > 0 && overflow > 0) {
      outcome.lambda = static_cast<double>(overflow) /
                       static_cast<double>(total_res_capacity);
      outcome.overloaded = true;
      const auto counts = Route(ts.overflow, workers, overflow,
                                /*use_total=*/true, outcome.lambda);
      assign_counts(counts, static_cast<std::size_t>(immediate),
                    static_cast<std::size_t>(overflow));
      for (const auto c : counts) outcome.overflow += c;
    }
  }

  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (assigned_per_worker[i] == 0) continue;
    const double n = static_cast<double>(assigned_per_worker[i]);
    outcome.commits.push_back(
        {workers[i].node, n * static_cast<double>(svc.cpu_demand),
         n * static_cast<double>(svc.mem_demand)});
  }
  return outcome;
}

std::vector<Assignment> DssLcScheduler::Schedule(
    ClusterId /*cluster*/, const std::vector<PendingRequest>& queue,
    const metrics::StateStorage& storage, SimTime now) {
  // TANGOVET_ALLOW_NEXT(profiling: decision-latency telemetry only)
  const auto t0 = std::chrono::steady_clock::now();
  const scope::SpanId round_span = scope::BeginSpan(
      "dsslc.round", "sched", now,
      {.value = static_cast<std::int64_t>(queue.size())});
  std::vector<Assignment> out;

  // Decay local commitments (half-life 125 ms ≈ typical service time), so
  // they only bridge the staleness window of the state storage; entries
  // decayed to ~zero are erased to keep the maps bounded.
  if (now > last_decay_) {
    const double factor =
        std::pow(0.5, static_cast<double>(now - last_decay_) /
                          static_cast<double>(125 * kMillisecond));
    for (auto* m : {&committed_cpu_, &committed_mem_}) {
      for (auto it = m->begin(); it != m->end();) {
        it->second *= factor;
        it = it->second < kCommitEpsilon ? m->erase(it) : std::next(it);
      }
    }
    last_decay_ = now;
  }

  // Group queued requests by type k ∈ K (Alg. 2 handles each in parallel).
  // std::map iteration gives the ascending service-id order the merge
  // below relies on.
  std::map<ServiceId, std::vector<const PendingRequest*>> by_type;
  for (const auto& p : queue) by_type[p.request.service].push_back(&p);

  // Workers the fault plane took out (crashed, draining, or behind a cut
  // link) are excluded up front — dispatching to them would strand the
  // request until the failure detector re-queues it.
  k8s::LcRoundStats round;
  round.at = now;
  std::vector<metrics::NodeSnapshot> snapshots;
  for (const auto& s : storage.All()) {
    if (s.is_master) continue;
    round.considered += 1;
    if (!s.alive || s.draining) {
      round.excluded_dead += 1;
      continue;
    }
    if (!s.reachable) {
      round.excluded_unreachable += 1;
      continue;
    }
    snapshots.push_back(s);
  }
  if (cfg_.profile_phases) {
    h_snapshot_->Observe(static_cast<std::int64_t>(
        // TANGOVET_ALLOW_NEXT(profiling: timing never feeds scheduling)
        ElapsedUs(t0, std::chrono::steady_clock::now())));
  }

  // Fan the independent per-type graphs G_k out over the pool. Each type
  // owns a warm solver pair (TangoSolve): entries are created serially here
  // before the fan-out, so pool threads only ever dereference their own
  // type's pointer and the map is never mutated concurrently. A type is
  // always solved against its own warm state regardless of which pool slot
  // claims it, which is what keeps serial and parallel runs identical.
  const auto round_index = static_cast<std::uint64_t>(decisions_);
  std::vector<ServiceId> svc_order;
  std::vector<const std::vector<const PendingRequest*>*> svc_requests;
  std::vector<TypeSolvers*> states;
  svc_order.reserve(by_type.size());
  svc_requests.reserve(by_type.size());
  states.reserve(by_type.size());
  // Graphs that have not been built yet (e.g. a type's overflow Ĝ'_k
  // before its first overload) are pre-grown to this round's worst-case
  // size here, so their eventual first cold build mid-steady-state reuses
  // storage instead of allocating.
  const int max_nodes = static_cast<int>(snapshots.size()) + 3;
  const auto max_arcs = static_cast<std::size_t>(2 * snapshots.size() + 1);
  const auto prewarm = [&](WarmGraph& g) {
    if (g.built || g.solver.num_nodes() >= max_nodes) return;
    g.solver.Reset(max_nodes);
    g.solver.ReserveArcs(max_arcs);
    g.nodes.reserve(snapshots.size());
    g.prev_edge_cap.reserve(snapshots.size());
    g.prev_edge_cost.reserve(snapshots.size());
    g.prev_sink_cap.reserve(snapshots.size());
  };
  for (const auto& [svc_id, requests] : by_type) {
    svc_order.push_back(svc_id);
    svc_requests.push_back(&requests);
    auto& entry = type_solvers_[svc_id];
    if (entry == nullptr) entry = std::make_unique<TypeSolvers>();
    prewarm(entry->immediate);
    prewarm(entry->overflow);
    states.push_back(entry.get());
  }
  std::vector<TypeOutcome> outcomes(svc_order.size());
  const auto run_type = [&](std::size_t i, int /*worker_slot*/) {
    outcomes[i] = ScheduleType(svc_order[i], *svc_requests[i], snapshots,
                               storage, now, round_index, *states[i]);
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(svc_order.size(), run_type);
  } else {
    for (std::size_t i = 0; i < svc_order.size(); ++i) run_type(i, 0);
  }

  // Merge in ascending service-id order: assignment order, commitment
  // application, λ, and overflow accounting all match serial execution.
  // The two sweeps (assignment merge, then commitment application) are
  // separate so each can be profiled as its own phase; commitment adds are
  // commutative per node, so the split does not change the result.
  // TANGOVET_ALLOW_NEXT(profiling: phase timing never feeds scheduling)
  const auto t_merge = std::chrono::steady_clock::now();
  std::int64_t round_overflow = 0;
  for (const auto& outcome : outcomes) {
    out.insert(out.end(), outcome.assignments.begin(),
               outcome.assignments.end());
    if (outcome.overloaded) last_lambda_ = outcome.lambda;
    round_overflow += outcome.overflow;
  }
  overflow_routed_ += round_overflow;
  // TANGOVET_ALLOW_NEXT(profiling: phase timing never feeds scheduling)
  const auto t_commit = std::chrono::steady_clock::now();
  for (const auto& outcome : outcomes) {
    for (const auto& c : outcome.commits) {
      committed_cpu_[c.node] += c.cpu;
      committed_mem_[c.node] += c.mem;
    }
  }
  if (cfg_.profile_phases) {
    h_merge_->Observe(
        static_cast<std::int64_t>(ElapsedUs(t_merge, t_commit)));
    h_commit_->Observe(static_cast<std::int64_t>(
        // TANGOVET_ALLOW_NEXT(profiling: timing never feeds scheduling)
        ElapsedUs(t_commit, std::chrono::steady_clock::now())));
  }
  if (round_overflow > 0) {
    TANGO_SCOPE_INSTANT("dsslc.overflow", "sched", now,
                        .value = round_overflow);
  }

  if constexpr (audit::kEnabled) {
    // Post-merge sweep (§5.2 / §4.1): every assignment lands on a node that
    // survived the liveness filter, and no request is dispatched twice.
    std::unordered_set<std::int32_t> usable;
    usable.reserve(snapshots.size());
    for (const auto& s : snapshots) usable.insert(s.node.value);
    std::unordered_set<std::int32_t> assigned;
    assigned.reserve(out.size());
    for (const auto& a : out) {
      audit::checks::CheckLcTargetUsable(now, a.target.value,
                                         usable.count(a.target.value) != 0);
      audit::checks::CheckUniqueAssignment(
          now, a.request.value, !assigned.insert(a.request.value).second);
    }
    AUDIT_CHECK(out.size() <= queue.size(), .subsystem = "sched",
                .invariant = "sched.assignment_count", .sim_time = now,
                .detail = audit::Detail("%zu assignments from a queue of "
                                        "%zu",
                                        out.size(), queue.size()));
  }
  round.assigned = static_cast<int>(out.size());
  round.left_queued = static_cast<int>(queue.size()) - round.assigned;
  last_round_ = round;
  total_round_.at = now;
  total_round_.considered += round.considered;
  total_round_.excluded_dead += round.excluded_dead;
  total_round_.excluded_unreachable += round.excluded_unreachable;
  total_round_.assigned += round.assigned;
  total_round_.left_queued += round.left_queued;

  // TANGOVET_ALLOW_NEXT(profiling: decision-latency telemetry only)
  const auto t1 = std::chrono::steady_clock::now();
  decision_seconds_ +=
      std::chrono::duration<double>(t1 - t0).count();
  ++decisions_;
  m_rounds_->Add();
  m_assigned_->Add(static_cast<std::int64_t>(out.size()));
  m_overflow_->Add(round_overflow);
  h_round_->Observe(static_cast<std::int64_t>(ElapsedUs(t0, t1)));
  scope::EndSpan(round_span, now);
  return out;
}

DssLcScheduler::SolverPoolStats DssLcScheduler::solver_pool_stats() const {
  SolverPoolStats stats;
  stats.solves = solves_.load(std::memory_order_relaxed);
  for (const auto& [svc_id, ts] : type_solvers_) {
    (void)svc_id;
    for (const auto* g : {&ts->immediate, &ts->overflow}) {
      stats.solvers += 1;
      const auto& s = g->solver;
      stats.alloc_events += s.alloc_events();
      stats.memo_hits += s.memo_hits();
      stats.warm_solves += s.warm_solves();
      stats.cold_solves += s.cold_solves();
      stats.star_solves += s.star_solves();
      stats.spfa_downgrades += s.spfa_downgrades();
      stats.delta_updates += s.delta_updates();
    }
  }
  return stats;
}

}  // namespace tango::sched
