#include "sched/be_baselines.h"

#include <limits>

namespace tango::sched {

std::optional<NodeId> KubeNativeBeScheduler::ScheduleOne(
    const k8s::PendingRequest& pending, const metrics::StateStorage& storage,
    SimTime /*now*/) {
  (void)pending;
  std::vector<metrics::NodeSnapshot> workers;
  for (const auto& s : storage.All()) {
    if (!s.is_master) workers.push_back(s);
  }
  if (workers.empty()) return std::nullopt;
  const auto& pick = workers[cursor_ % workers.size()];
  ++cursor_;
  return pick.node;
}

std::optional<NodeId> LoadGreedyBeScheduler::ScheduleOne(
    const k8s::PendingRequest& pending, const metrics::StateStorage& storage,
    SimTime /*now*/) {
  const auto& svc = catalog_->Get(pending.request.service);
  const std::vector<metrics::NodeSnapshot> snapshots = storage.All();
  const metrics::NodeSnapshot* best = nullptr;
  double best_frac = -1.0;
  for (const auto& s : snapshots) {
    if (s.is_master) continue;
    if (s.cpu_available < svc.cpu_demand || s.mem_available < svc.mem_demand) {
      continue;
    }
    const double frac =
        static_cast<double>(s.cpu_available) /
        static_cast<double>(std::max<Millicores>(1, s.cpu_total));
    if (frac > best_frac) {
      best_frac = frac;
      best = &s;
    }
  }
  // Fall back to the emptiest queue when nothing strictly fits — a BE
  // request can always wait at a node.
  if (best == nullptr) {
    int best_queue = std::numeric_limits<int>::max();
    for (const auto& s : snapshots) {
      if (s.is_master) continue;
      if (s.queued < best_queue) {
        best_queue = s.queued;
        best = &s;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->node;
}

}  // namespace tango::sched
