// Baseline BE request schedulers of §7.2: round-robin (k8s-native) and
// load-greedy. Both run centrally over the global state view.
#pragma once

#include "k8s/scheduling_api.h"

namespace tango::sched {

class KubeNativeBeScheduler : public k8s::BeScheduler {
 public:
  explicit KubeNativeBeScheduler(const workload::ServiceCatalog* catalog)
      : catalog_(catalog) {}
  std::optional<NodeId> ScheduleOne(const k8s::PendingRequest& pending,
                                    const metrics::StateStorage& storage,
                                    SimTime now) override;
  std::string name() const override { return "k8s-native"; }

 private:
  const workload::ServiceCatalog* catalog_;
  std::size_t cursor_ = 0;
};

class LoadGreedyBeScheduler : public k8s::BeScheduler {
 public:
  explicit LoadGreedyBeScheduler(const workload::ServiceCatalog* catalog)
      : catalog_(catalog) {}
  std::optional<NodeId> ScheduleOne(const k8s::PendingRequest& pending,
                                    const metrics::StateStorage& storage,
                                    SimTime now) override;
  std::string name() const override { return "load-greedy"; }

 private:
  const workload::ServiceCatalog* catalog_;
};

}  // namespace tango::sched
