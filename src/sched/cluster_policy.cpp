#include "sched/cluster_policy.h"

#include <algorithm>

namespace tango::sched {

int PickLocalWorker(const std::vector<WorkerView>& workers,
                    Millicores demand) {
  int best = -1;
  Millicores best_free = 0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerView& w = workers[i];
    if (!w.usable()) continue;
    const Millicores free = w.free();
    if (free < demand) continue;
    if (best < 0 || free > best_free) {
      best = static_cast<int>(i);
      best_free = free;
    }
  }
  return best;
}

int PickEvictionWorker(const std::vector<WorkerView>& workers,
                       const std::vector<Millicores>& be_used,
                       Millicores min_be) {
  int best = -1;
  Millicores best_be = 0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (!workers[i].usable()) continue;
    const Millicores be = be_used[i];
    if (be < min_be) continue;
    if (best < 0 || be > best_be) {
      best = static_cast<int>(i);
      best_be = be;
    }
  }
  return best;
}

ClusterId PickSpillCluster(const std::vector<ClusterView>& candidates,
                           Millicores demand) {
  ClusterId best;
  Millicores best_free = 0;
  for (const ClusterView& v : candidates) {
    if (v.version == 0 || v.live_workers <= 0) continue;
    if (v.free_total < demand) continue;
    if (!best.valid() || v.free_total > best_free ||
        (v.free_total == best_free && v.cluster < best)) {
      best = v.cluster;
      best_free = v.free_total;
    }
  }
  return best;
}

void RankBeClusters(const std::vector<ClusterView>& views,
                    std::vector<ClusterId>* order) {
  order->clear();
  // Bounded by the cluster count, so the caller's retained buffer stops
  // growing after the first full-view tick.
  // TANGOVET_ALLOW_NEXT(amortized: scratch retains cluster-count capacity)
  order->reserve(views.size());
  for (const ClusterView& v : views) {
    if (v.version == 0 || v.live_workers <= 0) continue;
    // TANGOVET_ALLOW_NEXT(amortized: within capacity reserved above)
    order->push_back(v.cluster);
  }
  std::stable_sort(order->begin(), order->end(),
                   [&](ClusterId a, ClusterId b) {
                     const ClusterView& va =
                         views[static_cast<std::size_t>(a.value)];
                     const ClusterView& vb =
                         views[static_cast<std::size_t>(b.value)];
                     if (va.free_total != vb.free_total) {
                       return va.free_total > vb.free_total;
                     }
                     return a < b;
                   });
}

std::vector<ClusterId> RankBeClusters(const std::vector<ClusterView>& views) {
  std::vector<ClusterId> order;
  RankBeClusters(views, &order);
  return order;
}

}  // namespace tango::sched
