#include "sched/lc_baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tango::sched {

using k8s::Assignment;
using k8s::PendingRequest;
using metrics::NodeSnapshot;
using metrics::StateStorage;

namespace {

/// Local mutable view of node headroom so one Schedule call does not pile
/// every request onto the same snapshot.
struct Headroom {
  NodeSnapshot snap;
  Millicores cpu;
  MiB mem;
};

std::vector<Headroom> WorkersOf(const StateStorage& storage,
                                std::optional<ClusterId> only_cluster) {
  std::vector<Headroom> out;
  for (const auto& s : storage.All()) {
    if (s.is_master) continue;
    if (only_cluster.has_value() && s.cluster != *only_cluster) continue;
    // LC schedulers see the §4.1-regulated LC availability (idle plus
    // BE-preemptible when the node's allocation policy allows it).
    out.push_back({s, s.CpuForLc(), s.MemForLc()});
  }
  return out;
}

bool Fits(const Headroom& h, const workload::ServiceSpec& svc) {
  return h.cpu >= svc.cpu_demand && h.mem >= svc.mem_demand;
}

void Consume(Headroom& h, const workload::ServiceSpec& svc) {
  h.cpu -= svc.cpu_demand;
  h.mem -= svc.mem_demand;
}

}  // namespace

std::vector<Assignment> KubeNativeLcScheduler::Schedule(
    ClusterId cluster, const std::vector<PendingRequest>& queue,
    const StateStorage& storage, SimTime /*now*/) {
  // K8s default: blind round-robin over the local endpoints; no resource or
  // latency awareness. Requests are always dispatched (they may queue badly
  // at the node — that is the point of this baseline).
  std::vector<Headroom> workers = WorkersOf(storage, cluster);
  std::vector<Assignment> out;
  if (workers.empty()) return out;
  std::size_t& cursor = rr_cursor_[cluster];
  for (const auto& p : queue) {
    const auto& w = workers[cursor % workers.size()];
    ++cursor;
    out.push_back({p.request.id, w.snap.node});
  }
  return out;
}

std::vector<Assignment> LoadGreedyLcScheduler::Schedule(
    ClusterId /*cluster*/, const std::vector<PendingRequest>& queue,
    const StateStorage& storage, SimTime /*now*/) {
  // Lowest load = largest available-CPU fraction, local + nearby.
  std::vector<Headroom> workers = WorkersOf(storage, std::nullopt);
  std::vector<Assignment> out;
  if (workers.empty()) return out;
  for (const auto& p : queue) {
    const auto& svc = catalog_->Get(p.request.service);
    Headroom* best = nullptr;
    double best_frac = -1.0;
    for (auto& w : workers) {
      const double frac =
          static_cast<double>(w.cpu) /
          static_cast<double>(std::max<Millicores>(1, w.snap.cpu_total));
      if (frac > best_frac) {
        best_frac = frac;
        best = &w;
      }
    }
    if (best == nullptr) break;
    out.push_back({p.request.id, best->snap.node});
    Consume(*best, svc);
  }
  return out;
}

std::vector<Assignment> ScoringLcScheduler::Schedule(
    ClusterId /*cluster*/, const std::vector<PendingRequest>& queue,
    const StateStorage& storage, SimTime now) {
  std::vector<Headroom> workers = WorkersOf(storage, std::nullopt);
  std::vector<Assignment> out;
  if (workers.empty()) return out;
  // Decay the in-flight estimates (half-life ~200 ms) so they only bridge
  // the gap between state-storage refreshes.
  if (now > last_decay_) {
    const double factor =
        std::pow(0.5, static_cast<double>(now - last_decay_) /
                          static_cast<double>(200 * kMillisecond));
    for (auto& [node, count] : inflight_) count *= factor;
    last_decay_ = now;
  }
  // Normalize RTT by the worst observed so the latency term is in [0,1].
  SimDuration max_rtt = 1;
  for (const auto& w : workers) {
    max_rtt = std::max(max_rtt,
                       storage.Rtt(w.snap.cluster).value_or(kMillisecond));
  }
  for (const auto& p : queue) {
    const auto& svc = catalog_->Get(p.request.service);
    auto score_of = [&](const Headroom& w) {
      const double cpu_frac =
          static_cast<double>(w.cpu) /
          static_cast<double>(std::max<Millicores>(1, w.snap.cpu_total));
      const double mem_frac =
          static_cast<double>(w.mem) /
          static_cast<double>(std::max<MiB>(1, w.snap.mem_total));
      const double rtt_frac =
          static_cast<double>(
              storage.Rtt(w.snap.cluster).value_or(kMillisecond)) /
          static_cast<double>(max_rtt);
      double queue_pen = static_cast<double>(w.snap.queued) / 10.0;
      auto inflight_it = inflight_.find(w.snap.node);
      if (inflight_it != inflight_.end()) {
        queue_pen += inflight_it->second / 4.0;
      }
      return weights_.cpu * cpu_frac + weights_.mem * mem_frac -
             weights_.latency * rtt_frac - weights_.queue * queue_pen;
    };
    Headroom* best = nullptr;
    double best_score = -std::numeric_limits<double>::max();
    for (auto& w : workers) {
      if (!Fits(w, svc)) continue;
      const double score = score_of(w);
      if (score > best_score) {
        best_score = score;
        best = &w;
      }
    }
    if (best == nullptr) {
      // Nothing strictly fits: fall back to the best-scored node anyway —
      // LC requests queue there rather than aging out at the master.
      for (auto& w : workers) {
        const double score = score_of(w);
        if (score > best_score) {
          best_score = score;
          best = &w;
        }
      }
    }
    if (best == nullptr) continue;
    out.push_back({p.request.id, best->snap.node});
    Consume(*best, svc);
    inflight_[best->snap.node] += 1.0;
  }
  return out;
}

}  // namespace tango::sched
