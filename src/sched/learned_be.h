// Learned centralized BE schedulers (§5.3): DCG-BE (GraphSAGE + A2C, the
// paper's algorithm) and GNN-SAC (GraphSAGE + discrete SAC, the strongest
// baseline of Figure 11(c)). Both share the graph construction, the policy
// context filter c_t, and the reward of §5.3.1:
//
//   r_t = r_short + η·r_long,          η = 1
//   r_short = exp(−max(Σ r^c_q / r^c_i , Σ r^m_q / r^m_i))   (target-node load)
//   r_long  = 1 − exp(−Σ_i Σ_{q' done} (r^c_{q'}/r^c_i + r^m_{q'}/r^m_i))
//
// r_long accumulates completions between actions via OnBeCompleted.
#pragma once

#include <memory>

#include "k8s/scheduling_api.h"
#include "rl/agent.h"

namespace tango::sched {

/// Graph granularity of the learned schedulers. kNode is the paper's action
/// space (one action per worker). kCluster groups workers per cluster (action
/// = cluster, then least-loaded fitting worker inside) — used for the
/// 100+-cluster experiments where a per-node GNN forward per request would
/// dominate the run without changing the decision structure.
enum class BeGranularity { kNode, kCluster };

struct LearnedBeConfig {
  /// Edges per worker toward foreign clusters (topology sparsifier).
  int inter_cluster_links = 2;
  /// η — weight of the long-term reward component.
  float eta = 1.0f;
  /// Explore during the run; set false to act greedily (evaluation mode).
  bool explore = true;
  BeGranularity granularity = BeGranularity::kNode;
  /// Learning rate. The paper fixes 2e-4 over hours-long traces; compressed
  /// experiment horizons scale it up proportionally (see DESIGN.md).
  float learning_rate = 2e-4f;
  /// TangoSolve packed inference (A2C/DCG-BE only): per-request Act()
  /// forwards run through pre-packed weights off the autograd tape.
  /// Actions are bit-identical either way; false forces the taped forward
  /// (used for equivalence comparisons).
  bool packed_inference = true;
};

/// Builds graph states from the state storage and drives an rl::Agent.
class LearnedBeScheduler : public k8s::BeScheduler {
 public:
  LearnedBeScheduler(const workload::ServiceCatalog* catalog,
                     std::unique_ptr<rl::Agent> agent,
                     LearnedBeConfig cfg = {});

  std::optional<NodeId> ScheduleOne(const k8s::PendingRequest& pending,
                                    const metrics::StateStorage& storage,
                                    SimTime now) override;
  void OnBeCompleted(NodeId node, const workload::Request& request,
                     SimTime now) override;
  std::string name() const override { return agent_->name(); }

  rl::Agent& agent() { return *agent_; }
  std::int64_t actions() const { return actions_; }
  float last_reward() const { return last_reward_; }

  /// Exposed for tests: builds the state (features + adjacency + mask).
  rl::GraphState BuildState(const k8s::PendingRequest& pending,
                            const metrics::StateStorage& storage);

 private:
  float ShortReward(const metrics::NodeSnapshot& target,
                    const workload::ServiceSpec& svc) const;

  const workload::ServiceCatalog* catalog_;
  std::unique_ptr<rl::Agent> agent_;
  LearnedBeConfig cfg_;
  std::vector<NodeId> node_order_;  // action index → NodeId of last state
  bool has_pending_ = false;
  NodeId last_target_;
  ServiceId last_service_;
  float long_reward_acc_ = 0.0f;
  std::int64_t actions_ = 0;
  float last_reward_ = 0.0f;
};

/// Factory helpers with the paper's hyper-parameters.
std::unique_ptr<LearnedBeScheduler> MakeDcgBe(
    const workload::ServiceCatalog* catalog,
    gnn::EncoderKind encoder = gnn::EncoderKind::kGraphSage,
    std::uint64_t seed = 7, LearnedBeConfig cfg = {});
std::unique_ptr<LearnedBeScheduler> MakeGnnSac(
    const workload::ServiceCatalog* catalog, std::uint64_t seed = 11,
    LearnedBeConfig cfg = {});

}  // namespace tango::sched
