// Baseline LC request schedulers of §7.2:
//   * k8s-native — round-robin over the local cluster's workers (the K8s
//     default service proxy policy);
//   * load-greedy — lowest-load node among local + geo-nearby workers;
//   * scoring    — weighted score over resource usage and transmission
//     latency (Zhang et al., OSDI'16 style).
#pragma once

#include <map>

#include "k8s/scheduling_api.h"

namespace tango::sched {

class KubeNativeLcScheduler : public k8s::LcScheduler {
 public:
  explicit KubeNativeLcScheduler(const workload::ServiceCatalog* catalog)
      : catalog_(catalog) {}
  std::vector<k8s::Assignment> Schedule(
      ClusterId cluster, const std::vector<k8s::PendingRequest>& queue,
      const metrics::StateStorage& storage, SimTime now) override;
  std::string name() const override { return "k8s-native"; }

 private:
  const workload::ServiceCatalog* catalog_;
  std::map<ClusterId, std::size_t> rr_cursor_;
};

class LoadGreedyLcScheduler : public k8s::LcScheduler {
 public:
  explicit LoadGreedyLcScheduler(const workload::ServiceCatalog* catalog)
      : catalog_(catalog) {}
  std::vector<k8s::Assignment> Schedule(
      ClusterId cluster, const std::vector<k8s::PendingRequest>& queue,
      const metrics::StateStorage& storage, SimTime now) override;
  std::string name() const override { return "load-greedy"; }

 private:
  const workload::ServiceCatalog* catalog_;
};

struct ScoringWeights {
  double cpu = 0.35;
  double mem = 0.25;
  double latency = 0.30;
  double queue = 0.10;
};

class ScoringLcScheduler : public k8s::LcScheduler {
 public:
  ScoringLcScheduler(const workload::ServiceCatalog* catalog,
                     ScoringWeights weights = {})
      : catalog_(catalog), weights_(weights) {}
  std::vector<k8s::Assignment> Schedule(
      ClusterId cluster, const std::vector<k8s::PendingRequest>& queue,
      const metrics::StateStorage& storage, SimTime now) override;
  std::string name() const override { return "scoring"; }

 private:
  const workload::ServiceCatalog* catalog_;
  ScoringWeights weights_;
  /// Exponentially-decayed count of our own recent assignments per node —
  /// state-storage snapshots refresh slowly, so without this every dispatch
  /// round herds onto the same stale "best" node.
  std::map<NodeId, double> inflight_;
  SimTime last_decay_ = 0;
};

}  // namespace tango::sched
