#include "sched/ceres.h"

#include <cmath>

#include "common/logging.h"

namespace tango::sched {

using k8s::AdmitDecision;
using k8s::ExecSlot;
using k8s::NodeSpec;
using k8s::ResourceVec;

CeresAllocationPolicy::CeresAllocationPolicy(
    const workload::ServiceCatalog* catalog, CeresConfig cfg)
    : catalog_(catalog), cfg_(cfg) {
  TANGO_CHECK(catalog_ != nullptr, "catalog required");
}

ResourceVec CeresAllocationPolicy::EffectiveDemand(
    NodeId /*node*/, const workload::ServiceSpec& service) const {
  return {service.cpu_demand, service.mem_demand};
}

AdmitDecision CeresAllocationPolicy::Admit(
    const NodeSpec& node, const ExecSlot& incoming,
    const std::vector<ExecSlot>& running) const {
  // Elastic but non-preemptive: admit while physical memory fits; never
  // evict to make room (no class priority).
  MiB mem_used = 0;
  for (const auto& s : running) mem_used += s.need.mem;
  AdmitDecision d;
  d.admit = mem_used + incoming.need.mem <= node.capacity.mem;
  return d;
}

void CeresAllocationPolicy::ComputeGrants(const NodeSpec& node,
                                          const std::vector<ExecSlot>& running,
                                          std::vector<Millicores>& grants) const {
  // Pure proportional sharing over need, class-blind, with the same water
  // fill expansion as HRM — elasticity without prioritization. Under LC/BE
  // contention LC receives no protection, which is exactly the failure mode
  // Figure 13(e) shows for CERES.
  grants.assign(running.size(), 0);
  if (running.empty()) return;
  const auto capacity = static_cast<double>(node.capacity.cpu);
  double ask = 0.0;
  for (const auto& s : running) ask += static_cast<double>(s.need.cpu);
  const double base_scale = ask <= capacity ? 1.0 : capacity / ask;
  double used = 0.0;
  for (std::size_t i = 0; i < running.size(); ++i) {
    grants[i] = static_cast<Millicores>(
        std::floor(static_cast<double>(running[i].need.cpu) * base_scale));
    used += static_cast<double>(grants[i]);
  }
  double leftover = std::max(0.0, capacity - used);
  for (int pass = 0; pass < 4 && leftover > 1.0; ++pass) {
    double headroom_total = 0.0;
    for (std::size_t i = 0; i < running.size(); ++i) {
      const double cap =
          cfg_.speedup_cap * static_cast<double>(running[i].need.cpu);
      headroom_total += std::max(0.0, cap - static_cast<double>(grants[i]));
    }
    if (headroom_total <= 0.0) break;
    const double fill = std::min(1.0, leftover / headroom_total);
    double granted = 0.0;
    for (std::size_t i = 0; i < running.size(); ++i) {
      const double cap =
          cfg_.speedup_cap * static_cast<double>(running[i].need.cpu);
      const double headroom =
          std::max(0.0, cap - static_cast<double>(grants[i]));
      const auto inc = static_cast<Millicores>(std::floor(headroom * fill));
      grants[i] += inc;
      granted += static_cast<double>(inc);
    }
    leftover -= granted;
    if (granted < 1.0) break;
  }
}

}  // namespace tango::sched
