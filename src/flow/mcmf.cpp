#include "flow/mcmf.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace tango::flow {

MinCostMaxFlow::MinCostMaxFlow(int num_nodes)
    : first_out_(static_cast<std::size_t>(num_nodes), -1),
      potential_(static_cast<std::size_t>(num_nodes), 0),
      dist_(static_cast<std::size_t>(num_nodes), kInfCost),
      prev_arc_(static_cast<std::size_t>(num_nodes), -1),
      visited_(static_cast<std::size_t>(num_nodes), false) {
  TANGO_CHECK(num_nodes > 0, "graph needs at least one node");
}

int MinCostMaxFlow::AddArc(int from, int to, FlowUnit capacity,
                           CostUnit cost) {
  TANGO_CHECK(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes(),
              "arc endpoints out of range: %d -> %d", from, to);
  TANGO_CHECK(capacity >= 0, "negative capacity");
  const int id = static_cast<int>(arcs_.size());
  arcs_.push_back({to, first_out_[static_cast<std::size_t>(from)], capacity,
                   cost});
  first_out_[static_cast<std::size_t>(from)] = id;
  arcs_.push_back({from, first_out_[static_cast<std::size_t>(to)], 0, -cost});
  first_out_[static_cast<std::size_t>(to)] = id + 1;
  initial_cap_.push_back(capacity);
  return id / 2;
}

FlowUnit MinCostMaxFlow::Flow(int arc_id) const {
  // Flow on the forward arc equals the residual capacity of its reverse.
  return arcs_[static_cast<std::size_t>(2 * arc_id + 1)].cap;
}

FlowUnit MinCostMaxFlow::Residual(int arc_id) const {
  return arcs_[static_cast<std::size_t>(2 * arc_id)].cap;
}

void MinCostMaxFlow::ResetFlow() {
  for (std::size_t i = 0; i < initial_cap_.size(); ++i) {
    arcs_[2 * i].cap = initial_cap_[i];
    arcs_[2 * i + 1].cap = 0;
  }
  std::fill(potential_.begin(), potential_.end(), 0);
}

bool MinCostMaxFlow::BellmanFord(int source) {
  std::fill(dist_.begin(), dist_.end(), kInfCost);
  dist_[static_cast<std::size_t>(source)] = 0;
  // SPFA queue-based relaxation.
  std::deque<int> queue{source};
  std::vector<bool> in_queue(static_cast<std::size_t>(num_nodes()), false);
  in_queue[static_cast<std::size_t>(source)] = true;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    in_queue[static_cast<std::size_t>(u)] = false;
    for (int a = first_out_[static_cast<std::size_t>(u)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap <= 0) continue;
      const CostUnit nd = dist_[static_cast<std::size_t>(u)] + arc.cost;
      if (nd < dist_[static_cast<std::size_t>(arc.to)]) {
        dist_[static_cast<std::size_t>(arc.to)] = nd;
        if (!in_queue[static_cast<std::size_t>(arc.to)]) {
          queue.push_back(arc.to);
          in_queue[static_cast<std::size_t>(arc.to)] = true;
        }
      }
    }
  }
  for (int v = 0; v < num_nodes(); ++v) {
    if (dist_[static_cast<std::size_t>(v)] < kInfCost) {
      potential_[static_cast<std::size_t>(v)] =
          dist_[static_cast<std::size_t>(v)];
    }
  }
  return true;
}

bool MinCostMaxFlow::DijkstraReduced(int source, int sink) {
  std::fill(dist_.begin(), dist_.end(), kInfCost);
  std::fill(prev_arc_.begin(), prev_arc_.end(), -1);
  std::fill(visited_.begin(), visited_.end(), false);
  using Entry = std::pair<CostUnit, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist_[static_cast<std::size_t>(source)] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (visited_[static_cast<std::size_t>(u)]) continue;
    visited_[static_cast<std::size_t>(u)] = true;
    for (int a = first_out_[static_cast<std::size_t>(u)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap <= 0 || visited_[static_cast<std::size_t>(arc.to)]) continue;
      const CostUnit reduced = arc.cost +
                               potential_[static_cast<std::size_t>(u)] -
                               potential_[static_cast<std::size_t>(arc.to)];
      TANGO_CHECK(reduced >= 0, "negative reduced cost %lld",
                  static_cast<long long>(reduced));
      const CostUnit nd = d + reduced;
      if (nd < dist_[static_cast<std::size_t>(arc.to)]) {
        dist_[static_cast<std::size_t>(arc.to)] = nd;
        prev_arc_[static_cast<std::size_t>(arc.to)] = a;
        pq.push({nd, arc.to});
      }
    }
  }
  if (!visited_[static_cast<std::size_t>(sink)]) return false;
  for (int v = 0; v < num_nodes(); ++v) {
    if (dist_[static_cast<std::size_t>(v)] < kInfCost) {
      potential_[static_cast<std::size_t>(v)] +=
          dist_[static_cast<std::size_t>(v)];
    }
  }
  return true;
}

MinCostMaxFlow::Result MinCostMaxFlow::Solve(int source, int sink,
                                             FlowUnit amount) {
  TANGO_CHECK(source != sink, "source == sink");
  Result result;
  // Admit negative costs once, then switch to Dijkstra on reduced costs.
  BellmanFord(source);
  while (result.max_flow < amount) {
    if (!DijkstraReduced(source, sink)) break;
    // Find bottleneck along the shortest path.
    FlowUnit push = amount - result.max_flow;
    for (int v = sink; v != source;
         v = arcs_[static_cast<std::size_t>(
                       prev_arc_[static_cast<std::size_t>(v)] ^ 1)]
                 .to) {
      const int a = prev_arc_[static_cast<std::size_t>(v)];
      push = std::min(push, arcs_[static_cast<std::size_t>(a)].cap);
    }
    // Apply it.
    for (int v = sink; v != source;
         v = arcs_[static_cast<std::size_t>(
                       prev_arc_[static_cast<std::size_t>(v)] ^ 1)]
                 .to) {
      const int a = prev_arc_[static_cast<std::size_t>(v)];
      arcs_[static_cast<std::size_t>(a)].cap -= push;
      arcs_[static_cast<std::size_t>(a ^ 1)].cap += push;
      result.total_cost += push * arcs_[static_cast<std::size_t>(a)].cost;
    }
    result.max_flow += push;
  }
  result.saturated = (result.max_flow == amount);
  return result;
}

}  // namespace tango::flow
