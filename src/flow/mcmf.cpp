#include "flow/mcmf.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "audit/audit.h"
#include "common/logging.h"

namespace tango::flow {

MinCostMaxFlow::MinCostMaxFlow(int num_nodes) { Reset(num_nodes); }

void MinCostMaxFlow::Reset(int num_nodes) {
  TANGO_CHECK(num_nodes > 0, "graph needs at least one node");
  const auto n = static_cast<std::size_t>(num_nodes);
  arcs_.clear();
  initial_cap_.clear();
  AssignCounted(first_out_, n, -1);
  AssignCounted(potential_, n, CostUnit{0});
  AssignCounted(dist_, n, kInfCost);
  AssignCounted(prev_arc_, n, -1);
  AssignCounted(visited_, n, char{0});
  AssignCounted(in_queue_, n, char{0});
  // SPFA ring buffer: a node is enqueued at most once at a time, so
  // num_nodes + 1 slots always suffice.
  AssignCounted(spfa_queue_, n + 1, 0);
}

void MinCostMaxFlow::ReserveArcs(std::size_t num_arcs) {
  if (2 * num_arcs > arcs_.capacity()) {
    ++alloc_events_;
    arcs_.reserve(2 * num_arcs);
  }
  if (num_arcs > initial_cap_.capacity()) {
    ++alloc_events_;
    initial_cap_.reserve(num_arcs);
  }
  // Dijkstra pushes at most once per successful relaxation, so the heap
  // never outgrows the residual arc count (+1 for the source seed).
  // Reserving here makes the capacity deterministic: without it the heap
  // grows with solve history, which differs run-to-run in parallel mode.
  const std::size_t heap_bound = 2 * num_arcs + 1;
  if (heap_bound > heap_.capacity()) {
    ++alloc_events_;
    heap_.reserve(heap_bound);
  }
}

int MinCostMaxFlow::AddArc(int from, int to, FlowUnit capacity,
                           CostUnit cost) {
  TANGO_CHECK(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes(),
              "arc endpoints out of range: %d -> %d", from, to);
  TANGO_CHECK(capacity >= 0, "negative capacity");
  const int id = static_cast<int>(arcs_.size());
  if (arcs_.size() + 2 > arcs_.capacity()) ++alloc_events_;
  if (initial_cap_.size() + 1 > initial_cap_.capacity()) ++alloc_events_;
  arcs_.push_back({to, first_out_[static_cast<std::size_t>(from)], capacity,
                   cost});
  first_out_[static_cast<std::size_t>(from)] = id;
  arcs_.push_back({from, first_out_[static_cast<std::size_t>(to)], 0, -cost});
  first_out_[static_cast<std::size_t>(to)] = id + 1;
  initial_cap_.push_back(capacity);
  return id / 2;
}

FlowUnit MinCostMaxFlow::Flow(int arc_id) const {
  // Flow on the forward arc equals the residual capacity of its reverse.
  return arcs_[static_cast<std::size_t>(2 * arc_id + 1)].cap;
}

FlowUnit MinCostMaxFlow::Residual(int arc_id) const {
  return arcs_[static_cast<std::size_t>(2 * arc_id)].cap;
}

void MinCostMaxFlow::ResetFlow() {
  for (std::size_t i = 0; i < initial_cap_.size(); ++i) {
    arcs_[2 * i].cap = initial_cap_[i];
    arcs_[2 * i + 1].cap = 0;
  }
  std::fill(potential_.begin(), potential_.end(), 0);
}

bool MinCostMaxFlow::BellmanFord(int source) {
  std::fill(dist_.begin(), dist_.end(), kInfCost);
  std::fill(in_queue_.begin(), in_queue_.end(), char{0});
  dist_[static_cast<std::size_t>(source)] = 0;
  // SPFA queue-based relaxation over the preallocated ring buffer.
  const std::size_t ring = spfa_queue_.size();
  std::size_t head = 0, tail = 0;
  spfa_queue_[tail] = source;
  tail = (tail + 1) % ring;
  in_queue_[static_cast<std::size_t>(source)] = 1;
  while (head != tail) {
    const int u = spfa_queue_[head];
    head = (head + 1) % ring;
    in_queue_[static_cast<std::size_t>(u)] = 0;
    for (int a = first_out_[static_cast<std::size_t>(u)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap <= 0) continue;
      const CostUnit nd = dist_[static_cast<std::size_t>(u)] + arc.cost;
      if (nd < dist_[static_cast<std::size_t>(arc.to)]) {
        dist_[static_cast<std::size_t>(arc.to)] = nd;
        if (!in_queue_[static_cast<std::size_t>(arc.to)]) {
          spfa_queue_[tail] = arc.to;
          tail = (tail + 1) % ring;
          in_queue_[static_cast<std::size_t>(arc.to)] = 1;
        }
      }
    }
  }
  for (int v = 0; v < num_nodes(); ++v) {
    if (dist_[static_cast<std::size_t>(v)] < kInfCost) {
      potential_[static_cast<std::size_t>(v)] =
          dist_[static_cast<std::size_t>(v)];
    }
  }
  return true;
}

bool MinCostMaxFlow::DijkstraReduced(int source, int sink) {
  std::fill(dist_.begin(), dist_.end(), kInfCost);
  std::fill(prev_arc_.begin(), prev_arc_.end(), -1);
  std::fill(visited_.begin(), visited_.end(), char{0});
  // Min-heap over the persistent scratch vector (no per-call allocation
  // once it has grown to the solve's working-set size).
  heap_.clear();
  const auto heap_push = [this](CostUnit d, int v) {
    if (heap_.size() + 1 > heap_.capacity()) ++alloc_events_;
    heap_.emplace_back(d, v);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  };
  dist_[static_cast<std::size_t>(source)] = 0;
  heap_push(0, source);
  while (!heap_.empty()) {
    const auto [d, u] = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    if (visited_[static_cast<std::size_t>(u)]) continue;
    visited_[static_cast<std::size_t>(u)] = 1;
    for (int a = first_out_[static_cast<std::size_t>(u)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap <= 0 || visited_[static_cast<std::size_t>(arc.to)]) continue;
      const CostUnit reduced = arc.cost +
                               potential_[static_cast<std::size_t>(u)] -
                               potential_[static_cast<std::size_t>(arc.to)];
      TANGO_CHECK(reduced >= 0, "negative reduced cost %lld",
                  static_cast<long long>(reduced));
      const CostUnit nd = d + reduced;
      if (nd < dist_[static_cast<std::size_t>(arc.to)]) {
        dist_[static_cast<std::size_t>(arc.to)] = nd;
        prev_arc_[static_cast<std::size_t>(arc.to)] = a;
        heap_push(nd, arc.to);
      }
    }
  }
  if (!visited_[static_cast<std::size_t>(sink)]) return false;
  for (int v = 0; v < num_nodes(); ++v) {
    if (dist_[static_cast<std::size_t>(v)] < kInfCost) {
      potential_[static_cast<std::size_t>(v)] +=
          dist_[static_cast<std::size_t>(v)];
    }
  }
  return true;
}

MinCostMaxFlow::Result MinCostMaxFlow::Solve(int source, int sink,
                                             FlowUnit amount) {
  TANGO_CHECK(source != sink, "source == sink");
  TANGO_CHECK(num_nodes() > 0, "Reset(num_nodes) before Solve");
  Result result;
  // Admit negative costs once, then switch to Dijkstra on reduced costs.
  BellmanFord(source);
  while (result.max_flow < amount) {
    if (!DijkstraReduced(source, sink)) break;
    // Find bottleneck along the shortest path.
    FlowUnit push = amount - result.max_flow;
    for (int v = sink; v != source;
         v = arcs_[static_cast<std::size_t>(
                       prev_arc_[static_cast<std::size_t>(v)] ^ 1)]
                 .to) {
      const int a = prev_arc_[static_cast<std::size_t>(v)];
      push = std::min(push, arcs_[static_cast<std::size_t>(a)].cap);
    }
    // Apply it.
    for (int v = sink; v != source;
         v = arcs_[static_cast<std::size_t>(
                       prev_arc_[static_cast<std::size_t>(v)] ^ 1)]
                 .to) {
      const int a = prev_arc_[static_cast<std::size_t>(v)];
      arcs_[static_cast<std::size_t>(a)].cap -= push;
      arcs_[static_cast<std::size_t>(a ^ 1)].cap += push;
      result.total_cost += push * arcs_[static_cast<std::size_t>(a)].cost;
    }
    result.max_flow += push;
  }
  result.saturated = (result.max_flow == amount);
  if constexpr (audit::kEnabled) {
    AuditSolution(source, sink, result.max_flow, result.saturated);
  }
  return result;
}

void MinCostMaxFlow::AuditSolution(int source, int sink,
                                   FlowUnit expected_flow,
                                   bool saturated) const {
  // Scratch lives locally: this sweep only runs in audit builds, where the
  // zero-steady-state-allocation contract is deliberately suspended.
  const auto n = static_cast<std::size_t>(num_nodes());
  std::vector<FlowUnit> net(n, 0);
  for (int i = 0; i < num_arcs(); ++i) {
    const auto fwd = static_cast<std::size_t>(2 * i);
    const FlowUnit flow = arcs_[fwd ^ 1].cap;
    const FlowUnit residual = arcs_[fwd].cap;
    const FlowUnit cap = initial_cap_[static_cast<std::size_t>(i)];
    AUDIT_CHECK(flow >= 0 && flow <= cap && residual + flow == cap,
                .subsystem = "flow", .invariant = "flow.capacity_respect",
                .detail = audit::Detail(
                    "arc %d: flow %lld residual %lld capacity %lld", i,
                    static_cast<long long>(flow),
                    static_cast<long long>(residual),
                    static_cast<long long>(cap)));
    const int from = arcs_[fwd ^ 1].to;
    const int to = arcs_[fwd].to;
    net[static_cast<std::size_t>(from)] += flow;
    net[static_cast<std::size_t>(to)] -= flow;
  }
  for (int v = 0; v < num_nodes(); ++v) {
    if (v == source || v == sink) continue;
    AUDIT_CHECK(net[static_cast<std::size_t>(v)] == 0, .subsystem = "flow",
                .invariant = "flow.conservation",
                .detail = audit::Detail("node %d: net outflow %lld", v,
                                        static_cast<long long>(
                                            net[static_cast<std::size_t>(
                                                v)])));
  }
  AUDIT_CHECK(net[static_cast<std::size_t>(source)] == expected_flow,
              .subsystem = "flow", .invariant = "flow.source_outflow",
              .detail = audit::Detail("source pushes %lld, solver reported "
                                      "%lld",
                                      static_cast<long long>(
                                          net[static_cast<std::size_t>(
                                              source)]),
                                      static_cast<long long>(expected_flow)));
  // Residual reachability from the source (DFS over a local stack).
  std::vector<char> reach(n, 0);
  std::vector<int> stack = {source};
  reach[static_cast<std::size_t>(source)] = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int a = first_out_[static_cast<std::size_t>(u)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap <= 0 || reach[static_cast<std::size_t>(arc.to)]) continue;
      reach[static_cast<std::size_t>(arc.to)] = 1;
      stack.push_back(arc.to);
    }
  }
  // Max-flow certificate: an unsaturated solve means a saturated s-t cut.
  AUDIT_CHECK(saturated || !reach[static_cast<std::size_t>(sink)],
              .subsystem = "flow", .invariant = "flow.maxflow_certificate",
              .detail = audit::Detail("solve stopped below the requested "
                                      "amount but the sink is still "
                                      "reachable in the residual graph"));
  // Cost-optimality certificate: Johnson potentials stay feasible on the
  // source-reachable residual subgraph, which certifies no negative residual
  // cycle (the solution cost cannot be improved).
  for (std::size_t a = 0; a < arcs_.size(); ++a) {
    const Arc& arc = arcs_[a];
    const int from = arcs_[a ^ 1].to;
    if (arc.cap <= 0 || !reach[static_cast<std::size_t>(from)]) continue;
    const CostUnit reduced = arc.cost +
                             potential_[static_cast<std::size_t>(from)] -
                             potential_[static_cast<std::size_t>(arc.to)];
    AUDIT_CHECK(reduced >= 0, .subsystem = "flow",
                .invariant = "flow.reduced_cost_optimality",
                .detail = audit::Detail(
                    "residual arc %d -> %d has reduced cost %lld", from,
                    arc.to, static_cast<long long>(reduced)));
  }
}

}  // namespace tango::flow
