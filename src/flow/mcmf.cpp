#include "flow/mcmf.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "audit/audit.h"
#include "common/logging.h"
#include "common/vet.h"

namespace tango::flow {

namespace {
constexpr std::size_t Z(int v) { return static_cast<std::size_t>(v); }
}  // namespace

MinCostMaxFlow::MinCostMaxFlow(int num_nodes) { Reset(num_nodes); }

TANGO_COLD void MinCostMaxFlow::Reset(int num_nodes) {
  TANGO_CHECK(num_nodes > 0, "graph needs at least one node");
  num_nodes_ = num_nodes;
  const auto n = Z(num_nodes);
  arc_to_.clear();
  arc_cost_.clear();
  arc_cap_.clear();
  initial_cap_.clear();
  finalized_ = false;
  has_solution_ = false;
  has_base_ = false;
  dirty_arcs_.clear();
  stamp_ = 0;
  AssignCounted(head_, n + 1, 0);
  AssignCounted(csr_cursor_, n, 0);
  AssignCounted(potential_, n, CostUnit{0});
  AssignCounted(base_potential_, n, CostUnit{0});
  AssignCounted(dist_, n, kInfCost);
  AssignCounted(prev_slot_, n, -1);
  AssignCounted(dist_stamp_, n, std::uint64_t{0});
  AssignCounted(visited_stamp_, n, std::uint64_t{0});
  AssignCounted(in_queue_, n, char{0});
  // SPFA ring buffer: a node is enqueued at most once at a time, so
  // num_nodes + 1 slots always suffice.
  AssignCounted(spfa_queue_, n + 1, 0);
}

void MinCostMaxFlow::ReserveArcs(std::size_t num_arcs) {
  ReserveCounted(arc_to_, 2 * num_arcs);
  ReserveCounted(arc_cost_, 2 * num_arcs);
  ReserveCounted(arc_cap_, 2 * num_arcs);
  ReserveCounted(initial_cap_, num_arcs);
  ReserveCounted(csr_arc_, 2 * num_arcs);
  ReserveCounted(arc_slot_, 2 * num_arcs);
  ReserveCounted(csr_to_, 2 * num_arcs);
  ReserveCounted(csr_cap_, 2 * num_arcs);
  ReserveCounted(csr_cost_, 2 * num_arcs);
  ReserveCounted(arc_dirty_, num_arcs);
  ReserveCounted(dirty_arcs_, num_arcs);
  ReserveCounted(star_order_, num_arcs + 1);
  // Dijkstra pushes at most once per successful relaxation, so the heap
  // never outgrows the residual arc count (+1 for the source seed).
  // Reserving here makes the capacity deterministic: without it the heap
  // grows with solve history, which differs run-to-run in parallel mode.
  ReserveCounted(heap_, 2 * num_arcs + 1);
}

TANGO_COLD int MinCostMaxFlow::AddArc(int from, int to, FlowUnit capacity,
                           CostUnit cost) {
  TANGO_CHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_,
              "arc endpoints out of range: %d -> %d", from, to);
  TANGO_CHECK(capacity >= 0, "negative capacity");
  if (finalized_) Definalize();
  const int id = static_cast<int>(arc_to_.size());
  if (arc_to_.size() + 2 > arc_to_.capacity()) ++alloc_events_;
  if (arc_cost_.size() + 2 > arc_cost_.capacity()) ++alloc_events_;
  if (arc_cap_.size() + 2 > arc_cap_.capacity()) ++alloc_events_;
  if (initial_cap_.size() + 1 > initial_cap_.capacity()) ++alloc_events_;
  arc_to_.push_back(to);
  arc_to_.push_back(from);
  arc_cost_.push_back(cost);
  arc_cost_.push_back(-cost);
  arc_cap_.push_back(capacity);
  arc_cap_.push_back(0);
  initial_cap_.push_back(capacity);
  return id / 2;
}

TANGO_COLD void MinCostMaxFlow::Finalize() {
  const auto n = Z(num_nodes_);
  const std::size_t num_logical = arc_to_.size();
  AssignCounted(head_, n + 1, 0);
  AssignCounted(csr_cursor_, n, 0);
  for (std::size_t l = 0; l < num_logical; ++l) {
    ++head_[Z(arc_to_[l ^ 1]) + 1];
  }
  for (std::size_t u = 0; u < n; ++u) {
    head_[u + 1] += head_[u];
    csr_cursor_[u] = head_[u];
  }
  AssignCounted(csr_arc_, num_logical, 0);
  AssignCounted(arc_slot_, num_logical, 0);
  AssignCounted(csr_to_, num_logical, 0);
  AssignCounted(csr_cap_, num_logical, FlowUnit{0});
  AssignCounted(csr_cost_, num_logical, CostUnit{0});
  // Fill each tail's slots with its arcs in descending logical id: that is
  // exactly the order the old `first_out_`/`next` linked list (which
  // prepended on AddArc) walked them, so relaxation order — and therefore
  // every tie-break and every solution — is unchanged by the CSR rebuild.
  for (std::size_t li = num_logical; li > 0; --li) {
    const std::size_t l = li - 1;
    const int tail = arc_to_[l ^ 1];
    const int slot = csr_cursor_[Z(tail)]++;
    csr_arc_[Z(slot)] = static_cast<int>(l);
    arc_slot_[l] = slot;
    csr_to_[Z(slot)] = arc_to_[l];
    csr_cap_[Z(slot)] = arc_cap_[l];
    csr_cost_[Z(slot)] = arc_cost_[l];
  }
  AssignCounted(arc_dirty_, num_logical / 2, char{0});
  ReserveCounted(dirty_arcs_, num_logical / 2);
  ReserveCounted(star_order_, num_logical / 2 + 1);
  ReserveCounted(heap_, num_logical + 1);
  dirty_arcs_.clear();
  finalized_ = true;
}

void MinCostMaxFlow::Definalize() {
  for (std::size_t l = 0; l < arc_to_.size(); ++l) {
    arc_cap_[l] = csr_cap_[Z(arc_slot_[l])];
  }
  for (const int i : dirty_arcs_) arc_dirty_[Z(i)] = 0;
  dirty_arcs_.clear();
  finalized_ = false;
  has_solution_ = false;
  has_base_ = false;
}

void MinCostMaxFlow::RestoreCaps() {
  for (std::size_t s = 0; s < csr_arc_.size(); ++s) {
    const int l = csr_arc_[s];
    csr_cap_[s] = (l & 1) != 0 ? FlowUnit{0} : initial_cap_[Z(l / 2)];
  }
}

FlowUnit MinCostMaxFlow::Flow(int arc_id) const {
  // Flow on the forward arc equals the residual capacity of its reverse.
  const auto rev = Z(2 * arc_id + 1);
  return finalized_ ? csr_cap_[Z(arc_slot_[rev])] : arc_cap_[rev];
}

FlowUnit MinCostMaxFlow::Residual(int arc_id) const {
  const auto fwd = Z(2 * arc_id);
  return finalized_ ? csr_cap_[Z(arc_slot_[fwd])] : arc_cap_[fwd];
}

void MinCostMaxFlow::ResetFlow() {
  if (finalized_) {
    RestoreCaps();
  } else {
    for (std::size_t i = 0; i < initial_cap_.size(); ++i) {
      arc_cap_[2 * i] = initial_cap_[i];
      arc_cap_[2 * i + 1] = 0;
    }
  }
  std::fill(potential_.begin(), potential_.end(), CostUnit{0});
  has_solution_ = false;
  has_base_ = false;
}

void MinCostMaxFlow::BeginRound() {
  TANGO_CHECK(num_nodes_ > 0, "Reset(num_nodes) before BeginRound");
  if (!finalized_) Finalize();
}

void MinCostMaxFlow::UpdateArc(int arc_id, FlowUnit capacity, CostUnit cost) {
  TANGO_CHECK(finalized_, "UpdateArc requires a finalized graph "
                          "(call BeginRound first)");
  TANGO_CHECK(arc_id >= 0 && arc_id < num_arcs(), "arc id %d out of range",
              arc_id);
  TANGO_CHECK(capacity >= 0, "negative capacity");
  const auto fwd = Z(2 * arc_id);
  initial_cap_[Z(arc_id)] = capacity;
  arc_cost_[fwd] = cost;
  arc_cost_[fwd + 1] = -cost;
  csr_cost_[Z(arc_slot_[fwd])] = cost;
  csr_cost_[Z(arc_slot_[fwd + 1])] = -cost;
  ++delta_updates_;
  if (arc_dirty_[Z(arc_id)] == 0) {
    arc_dirty_[Z(arc_id)] = 1;
    // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
    dirty_arcs_.push_back(arc_id);
  }
}

void MinCostMaxFlow::Spfa(int source) {
  ++stamp_;
  std::fill(in_queue_.begin(), in_queue_.end(), char{0});
  dist_[Z(source)] = 0;
  dist_stamp_[Z(source)] = stamp_;
  // SPFA queue-based relaxation over the preallocated ring buffer.
  const std::size_t ring = spfa_queue_.size();
  std::size_t qhead = 0, qtail = 0;
  spfa_queue_[qtail] = source;
  qtail = (qtail + 1) % ring;
  in_queue_[Z(source)] = 1;
  while (qhead != qtail) {
    const int u = spfa_queue_[qhead];
    qhead = (qhead + 1) % ring;
    in_queue_[Z(u)] = 0;
    const CostUnit du = dist_[Z(u)];
    const int end = head_[Z(u) + 1];
    for (int s = head_[Z(u)]; s < end; ++s) {
      if (csr_cap_[Z(s)] <= 0) continue;
      const int v = csr_to_[Z(s)];
      const CostUnit nd = du + csr_cost_[Z(s)];
      if (dist_stamp_[Z(v)] != stamp_ || nd < dist_[Z(v)]) {
        dist_[Z(v)] = nd;
        dist_stamp_[Z(v)] = stamp_;
        if (in_queue_[Z(v)] == 0) {
          spfa_queue_[qtail] = v;
          qtail = (qtail + 1) % ring;
          in_queue_[Z(v)] = 1;
        }
      }
    }
  }
  // Exact shortest distances become both the working potentials and the
  // cached basis the next warm solve can refresh from.
  for (std::size_t v = 0; v < Z(num_nodes_); ++v) {
    if (dist_stamp_[v] == stamp_) {
      potential_[v] = dist_[v];
      base_potential_[v] = dist_[v];
    }
  }
  has_base_ = true;
}

bool MinCostMaxFlow::BaseFeasible() const {
  // The basis is feasible iff every full-capacity forward arc has
  // non-negative reduced cost under it; reverse arcs carry zero capacity
  // after RestoreCaps so they impose no constraint.
  for (std::size_t i = 0; i < initial_cap_.size(); ++i) {
    if (initial_cap_[i] <= 0) continue;
    const std::size_t fwd = 2 * i;
    const int from = arc_to_[fwd ^ 1];
    const int to = arc_to_[fwd];
    if (arc_cost_[fwd] + base_potential_[Z(from)] - base_potential_[Z(to)] <
        0) {
      return false;
    }
  }
  return true;
}

void MinCostMaxFlow::DijkstraRefresh(int source) {
  ++stamp_;
  heap_.clear();
  dist_[Z(source)] = 0;
  dist_stamp_[Z(source)] = stamp_;
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  heap_.emplace_back(0, source);
  while (!heap_.empty()) {
    const auto [d, u] = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    if (visited_stamp_[Z(u)] == stamp_) continue;
    visited_stamp_[Z(u)] = stamp_;
    const int end = head_[Z(u) + 1];
    for (int s = head_[Z(u)]; s < end; ++s) {
      if (csr_cap_[Z(s)] <= 0) continue;
      const int v = csr_to_[Z(s)];
      if (visited_stamp_[Z(v)] == stamp_) continue;
      const CostUnit reduced = csr_cost_[Z(s)] + base_potential_[Z(u)] -
                               base_potential_[Z(v)];
      if constexpr (audit::kEnabled) {
        TANGO_CHECK(reduced >= 0, "negative reduced cost %lld in refresh",
                    static_cast<long long>(reduced));
      }
      const CostUnit nd = d + reduced;
      if (dist_stamp_[Z(v)] != stamp_ || nd < dist_[Z(v)]) {
        dist_[Z(v)] = nd;
        dist_stamp_[Z(v)] = stamp_;
        if (heap_.size() + 1 > heap_.capacity()) ++alloc_events_;
        // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
        heap_.emplace_back(nd, v);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
      }
    }
  }
  // Un-reduce: true distance = reduced distance - pi(source) + pi(v). The
  // result is numerically identical to what Spfa would compute for every
  // reachable node, which is what makes warm solves byte-identical to cold
  // ones. Unreachable nodes keep stale potentials; they are never read
  // (every relaxation and every audit constraint is gated on a
  // positive-capacity arc whose tail is reachable).
  const CostUnit base_src = base_potential_[Z(source)];
  for (std::size_t v = 0; v < Z(num_nodes_); ++v) {
    if (dist_stamp_[v] == stamp_) {
      potential_[v] = dist_[v] + base_potential_[v] - base_src;
    }
  }
  for (std::size_t v = 0; v < Z(num_nodes_); ++v) {
    if (dist_stamp_[v] == stamp_) base_potential_[v] = potential_[v];
  }
}

bool MinCostMaxFlow::DijkstraToSink(int source, int sink) {
  ++stamp_;
  heap_.clear();
  dist_[Z(source)] = 0;
  dist_stamp_[Z(source)] = stamp_;
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  heap_.emplace_back(0, source);
  CostUnit dist_sink = kInfCost;
  while (!heap_.empty()) {
    const auto [d, u] = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    if (visited_stamp_[Z(u)] == stamp_) continue;
    visited_stamp_[Z(u)] = stamp_;
    if (u == sink) {
      // Early exit: the sink is finalized, so its label — and the shortest
      // augmenting path recorded in prev_slot_ — can no longer change.
      dist_sink = d;
      break;
    }
    const int end = head_[Z(u) + 1];
    for (int s = head_[Z(u)]; s < end; ++s) {
      if (csr_cap_[Z(s)] <= 0) continue;
      const int v = csr_to_[Z(s)];
      if (visited_stamp_[Z(v)] == stamp_) continue;
      const CostUnit reduced =
          csr_cost_[Z(s)] + potential_[Z(u)] - potential_[Z(v)];
      if constexpr (audit::kEnabled) {
        TANGO_CHECK(reduced >= 0, "negative reduced cost %lld",
                    static_cast<long long>(reduced));
      }
      const CostUnit nd = d + reduced;
      if (dist_stamp_[Z(v)] != stamp_ || nd < dist_[Z(v)]) {
        dist_[Z(v)] = nd;
        dist_stamp_[Z(v)] = stamp_;
        prev_slot_[Z(v)] = s;
        if (heap_.size() + 1 > heap_.capacity()) ++alloc_events_;
        // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
        heap_.emplace_back(nd, v);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
      }
    }
  }
  if (dist_sink >= kInfCost) return false;
  // Capped potential update pi(v) += min(dist(v), dist(sink)): keeps every
  // reduced cost non-negative (case analysis in DESIGN.md §14) without
  // needing labels beyond the sink, which the early exit never computed.
  for (std::size_t v = 0; v < Z(num_nodes_); ++v) {
    const bool labeled =
        dist_stamp_[v] == stamp_ && dist_[v] < dist_sink;
    potential_[v] += labeled ? dist_[v] : dist_sink;
  }
  return true;
}

MinCostMaxFlow::Result MinCostMaxFlow::RunSsp(int source, int sink,
                                              FlowUnit amount) {
  Result result;
  while (result.max_flow < amount) {
    if (!DijkstraToSink(source, sink)) break;
    // Find bottleneck along the shortest path.
    FlowUnit push = amount - result.max_flow;
    for (int v = sink; v != source;) {
      const int s = prev_slot_[Z(v)];
      push = std::min(push, csr_cap_[Z(s)]);
      v = TailOf(s);
    }
    // Apply it.
    for (int v = sink; v != source;) {
      const int s = prev_slot_[Z(v)];
      csr_cap_[Z(s)] -= push;
      csr_cap_[Z(RevSlot(s))] += push;
      result.total_cost += push * csr_cost_[Z(s)];
      v = TailOf(s);
    }
    result.max_flow += push;
  }
  result.saturated = (result.max_flow == amount);
  return result;
}

bool MinCostMaxFlow::IsDispatchStar(int source, int sink) const {
  if (head_[Z(source) + 1] - head_[Z(source)] != 1) return false;
  const int s_slot = head_[Z(source)];
  const int s_arc = csr_arc_[Z(s_slot)];
  if ((s_arc & 1) != 0) return false;
  const int hub = csr_to_[Z(s_slot)];
  if (hub == source || hub == sink) return false;
  const int hub_end = head_[Z(hub) + 1];
  for (int hs = head_[Z(hub)]; hs < hub_end; ++hs) {
    const int l = csr_arc_[Z(hs)];
    if ((l & 1) != 0) {
      // The only reverse arc out of the hub may be source->hub's (anything
      // else means some other node feeds the hub).
      if (l != (s_arc | 1)) return false;
      continue;
    }
    const int w = csr_to_[Z(hs)];
    if (w == source || w == sink || w == hub) return false;
    if (head_[Z(w) + 1] - head_[Z(w)] != 2) return false;
    bool saw_hub_rev = false;
    bool saw_sink_arc = false;
    for (int ws = head_[Z(w)]; ws < head_[Z(w) + 1]; ++ws) {
      const int lw = csr_arc_[Z(ws)];
      if (lw == (l | 1)) {
        saw_hub_rev = true;
      } else if ((lw & 1) == 0 && csr_to_[Z(ws)] == sink) {
        saw_sink_arc = true;
      } else {
        return false;
      }
    }
    if (!saw_hub_rev || !saw_sink_arc) return false;
  }
  // Forward arcs out of the sink would need consistent potentials beyond
  // the closed-form ones the kernel installs; leave those to SSP.
  const int sink_end = head_[Z(sink) + 1];
  for (int ts = head_[Z(sink)]; ts < sink_end; ++ts) {
    if ((csr_arc_[Z(ts)] & 1) == 0) return false;
  }
  return true;
}

MinCostMaxFlow::Result MinCostMaxFlow::SolveStar(int source, int sink,
                                                 FlowUnit amount) {
  Result result;
  const int s_slot = head_[Z(source)];
  const int hub = csr_to_[Z(s_slot)];
  const CostUnit hub_cost = csr_cost_[Z(s_slot)];
  // A worker's slot pair is {reverse-to-hub, forward-to-sink}; pick the
  // forward one.
  const auto sink_slot_of = [&](int w) {
    const int first = head_[Z(w)];
    return (csr_arc_[Z(first)] & 1) == 0 ? first : first + 1;
  };
  star_order_.clear();
  const int hub_end = head_[Z(hub) + 1];
  for (int hs = head_[Z(hub)]; hs < hub_end; ++hs) {
    const int l = csr_arc_[Z(hs)];
    if ((l & 1) != 0) continue;
    const int wt = sink_slot_of(csr_to_[Z(hs)]);
    if (star_order_.size() + 1 > star_order_.capacity()) ++alloc_events_;
    // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
    star_order_.emplace_back(hub_cost + csr_cost_[Z(hs)] + csr_cost_[Z(wt)],
                             l);
  }
  // Fill chains in ascending (path cost, arc id): arc ids ascend in
  // insertion order, which is exactly the order SSP's heap breaks
  // equal-cost ties in (smallest node id first), so the greedy fill is
  // byte-identical to running successive shortest paths.
  std::sort(star_order_.begin(), star_order_.end());
  FlowUnit remaining = std::min(amount, csr_cap_[Z(s_slot)]);
  for (const auto& [path_cost, l] : star_order_) {
    if (remaining <= 0) break;
    const int m_slot = arc_slot_[Z(l)];
    const int wt_slot = sink_slot_of(csr_to_[Z(m_slot)]);
    const FlowUnit take = std::min(
        {remaining, csr_cap_[Z(m_slot)], csr_cap_[Z(wt_slot)]});
    if (take <= 0) continue;
    csr_cap_[Z(m_slot)] -= take;
    csr_cap_[Z(RevSlot(m_slot))] += take;
    csr_cap_[Z(wt_slot)] -= take;
    csr_cap_[Z(RevSlot(wt_slot))] += take;
    csr_cap_[Z(s_slot)] -= take;
    csr_cap_[Z(RevSlot(s_slot))] += take;
    result.total_cost += take * path_cost;
    result.max_flow += take;
    remaining -= take;
  }
  result.saturated = (result.max_flow == amount);
  // Closed-form certificate potentials (DESIGN.md §14): pi(source) = 0,
  // pi(hub) = c(source->hub), pi(w) = pi(hub) + c(hub->w); the sink takes
  // the most expensive used path (greedy fills the cheapest prefix, so
  // every residual worker->sink arc costs at least that).
  potential_[Z(source)] = 0;
  potential_[Z(hub)] = hub_cost;
  bool any_flow = false;
  CostUnit max_used = 0;
  CostUnit min_chain = kInfCost;
  for (int hs = head_[Z(hub)]; hs < hub_end; ++hs) {
    const int l = csr_arc_[Z(hs)];
    if ((l & 1) != 0) continue;
    const int w = csr_to_[Z(hs)];
    const CostUnit pi_w = hub_cost + csr_cost_[Z(hs)];
    potential_[Z(w)] = pi_w;
    const int wt = sink_slot_of(w);
    const CostUnit chain = pi_w + csr_cost_[Z(wt)];
    min_chain = std::min(min_chain, chain);
    if (csr_cap_[Z(RevSlot(wt))] > 0) {
      max_used = any_flow ? std::max(max_used, chain) : chain;
      any_flow = true;
    }
  }
  potential_[Z(sink)] =
      any_flow ? max_used : (min_chain == kInfCost ? 0 : min_chain);
  return result;
}

void MinCostMaxFlow::FinishSolve(int source, int sink, FlowUnit amount,
                                 const Result& r) {
  has_solution_ = true;
  memo_source_ = source;
  memo_sink_ = sink;
  memo_amount_ = amount;
  memo_result_ = r;
  for (const int i : dirty_arcs_) arc_dirty_[Z(i)] = 0;
  dirty_arcs_.clear();
}

TANGO_HOT MinCostMaxFlow::Result MinCostMaxFlow::Solve(int source, int sink,
                                             FlowUnit amount) {
  TANGO_CHECK(source != sink, "source == sink");
  TANGO_CHECK(num_nodes_ > 0, "Reset(num_nodes) before Solve");
  TANGO_CHECK(dirty_arcs_.empty(),
              "pending UpdateArc deltas require SolveIncremental");
  if (!finalized_) Finalize();
  Result result;
  if (IsDispatchStar(source, sink)) {
    ++star_solves_;
    result = SolveStar(source, sink, amount);
    has_base_ = false;
  } else {
    ++cold_solves_;
    // Admit negative costs once, then switch to Dijkstra on reduced costs.
    Spfa(source);
    result = RunSsp(source, sink, amount);
  }
  FinishSolve(source, sink, amount, result);
  if constexpr (audit::kEnabled) {
    AuditSolution(source, sink, result.max_flow, result.saturated);
  }
  return result;
}

TANGO_HOT MinCostMaxFlow::Result MinCostMaxFlow::SolveIncremental(
    int source, int sink,
                                                        FlowUnit amount) {
  TANGO_CHECK(source != sink, "source == sink");
  TANGO_CHECK(num_nodes_ > 0, "Reset(num_nodes) before SolveIncremental");
  if (!finalized_) Finalize();
  if (has_solution_ && dirty_arcs_.empty() && source == memo_source_ &&
      sink == memo_sink_ && amount == memo_amount_) {
    // Nothing changed since the last solve: the retained flows and
    // potentials are the solution.
    ++memo_hits_;
    if constexpr (audit::kEnabled) {
      AuditSolution(source, sink, memo_result_.max_flow,
                    memo_result_.saturated);
    }
    return memo_result_;
  }
  ++warm_solves_;
  RestoreCaps();
  Result result;
  if (IsDispatchStar(source, sink)) {
    ++star_solves_;
    result = SolveStar(source, sink, amount);
    has_base_ = false;
  } else if (has_base_ && BaseFeasible()) {
    DijkstraRefresh(source);
    result = RunSsp(source, sink, amount);
  } else {
    // Self-downgrade: a delta broke the cached basis (or none exists), so
    // start cold — zero potentials then Bellman-Ford, exactly what a fresh
    // solver would do.
    if (has_base_) ++spfa_downgrades_;
    std::fill(potential_.begin(), potential_.end(), CostUnit{0});
    Spfa(source);
    result = RunSsp(source, sink, amount);
  }
  FinishSolve(source, sink, amount, result);
  if constexpr (audit::kEnabled) {
    AuditSolution(source, sink, result.max_flow, result.saturated);
  }
  return result;
}

TANGO_COLD void MinCostMaxFlow::AuditSolution(int source, int sink,
                                   FlowUnit expected_flow,
                                   bool saturated) const {
  if (!finalized_) return;
  // Scratch lives locally: this sweep only runs in audit builds, where the
  // zero-steady-state-allocation contract is deliberately suspended.
  const auto n = Z(num_nodes_);
  std::vector<FlowUnit> net(n, 0);
  for (int i = 0; i < num_arcs(); ++i) {
    const auto fwd = Z(2 * i);
    const FlowUnit flow = csr_cap_[Z(arc_slot_[fwd ^ 1])];
    const FlowUnit residual = csr_cap_[Z(arc_slot_[fwd])];
    const FlowUnit cap = initial_cap_[Z(i)];
    AUDIT_CHECK(flow >= 0 && flow <= cap && residual + flow == cap,
                .subsystem = "flow", .invariant = "flow.capacity_respect",
                .detail = audit::Detail(
                    "arc %d: flow %lld residual %lld capacity %lld", i,
                    static_cast<long long>(flow),
                    static_cast<long long>(residual),
                    static_cast<long long>(cap)));
    const int from = arc_to_[fwd ^ 1];
    const int to = arc_to_[fwd];
    net[Z(from)] += flow;
    net[Z(to)] -= flow;
  }
  for (int v = 0; v < num_nodes_; ++v) {
    if (v == source || v == sink) continue;
    AUDIT_CHECK(net[Z(v)] == 0, .subsystem = "flow",
                .invariant = "flow.conservation",
                .detail = audit::Detail("node %d: net outflow %lld", v,
                                        static_cast<long long>(net[Z(v)])));
  }
  AUDIT_CHECK(net[Z(source)] == expected_flow,
              .subsystem = "flow", .invariant = "flow.source_outflow",
              .detail = audit::Detail("source pushes %lld, solver reported "
                                      "%lld",
                                      static_cast<long long>(net[Z(source)]),
                                      static_cast<long long>(expected_flow)));
  // Residual reachability from the source (DFS over a local stack).
  std::vector<char> reach(n, 0);
  std::vector<int> stack = {source};
  reach[Z(source)] = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    const int end = head_[Z(u) + 1];
    for (int s = head_[Z(u)]; s < end; ++s) {
      if (csr_cap_[Z(s)] <= 0 || reach[Z(csr_to_[Z(s)])] != 0) continue;
      reach[Z(csr_to_[Z(s)])] = 1;
      stack.push_back(csr_to_[Z(s)]);
    }
  }
  // Max-flow certificate: an unsaturated solve means a saturated s-t cut.
  AUDIT_CHECK(saturated || reach[Z(sink)] == 0,
              .subsystem = "flow", .invariant = "flow.maxflow_certificate",
              .detail = audit::Detail("solve stopped below the requested "
                                      "amount but the sink is still "
                                      "reachable in the residual graph"));
  // Cost-optimality certificate: Johnson potentials stay feasible on the
  // source-reachable residual subgraph, which certifies no negative residual
  // cycle (the solution cost cannot be improved). Warm-started and
  // star-kernel solves must pass this unchanged — it is the correctness
  // oracle for the whole TangoSolve path.
  for (std::size_t l = 0; l < arc_to_.size(); ++l) {
    const FlowUnit cap = csr_cap_[Z(arc_slot_[l])];
    const int from = arc_to_[l ^ 1];
    if (cap <= 0 || reach[Z(from)] == 0) continue;
    const CostUnit reduced =
        arc_cost_[l] + potential_[Z(from)] - potential_[Z(arc_to_[l])];
    AUDIT_CHECK(reduced >= 0, .subsystem = "flow",
                .invariant = "flow.reduced_cost_optimality",
                .detail = audit::Detail(
                    "residual arc %d -> %d has reduced cost %lld", from,
                    arc_to_[l], static_cast<long long>(reduced)));
  }
}

}  // namespace tango::flow
