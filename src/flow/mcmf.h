// Min-cost max-flow solver used by DSS-LC in place of the paper's OR-Tools
// dependency (§5.2.2).
//
// Successive shortest augmenting paths with Johnson potentials: an initial
// Bellman-Ford pass admits negative edge costs, after which each augmentation
// runs Dijkstra on reduced costs. For the integer MCNF instances DSS-LC
// builds (unit "request" commodities, delay costs), this returns the same
// optimum OR-Tools' SimpleMinCostFlow would.
//
// TangoSolve (DESIGN.md §14) layers three things on top of the classic
// solver:
//
//  * SoA/CSR arc storage. Arcs are described through AddArc in build order
//    (logical id 2i forward, 2i+1 reverse) and lazily finalized into
//    CSR-sorted structure-of-arrays (`head_[]` per-tail slot ranges over
//    contiguous `csr_to_/csr_cap_/csr_cost_[]`), so every Dijkstra/SPFA
//    relaxation scans cache-linear memory. The counting sort fills each
//    tail's slots in descending logical-id order — exactly the traversal
//    order of the old linked-arc layout — so solutions are bit-identical to
//    the AoS solver's.
//
//  * A dispatch-star kernel. The G_k graphs DSS-LC builds are two-level
//    stars (source → master → workers → sink). Solve detects that shape
//    structurally and replaces SSP with a greedy fill in ascending
//    (path cost, arc id) order — provably the order SSP augments such
//    graphs in — plus closed-form potentials that satisfy the audit's
//    reduced-cost certificate. O(n log n) instead of n Dijkstra passes.
//
//  * A warm-start delta API: BeginRound() / UpdateArc() / SolveIncremental()
//    retains the previous round's graph and potentials. A round with no
//    deltas and an unchanged query returns the memoized solution outright.
//    Otherwise flow is reset and the cached potential basis (the previous
//    solve's initial shortest-path distances) is checked for reduced-cost
//    feasibility against the updated costs: if feasible, a single Dijkstra
//    pass over reduced costs rebuilds exact distances (numerically equal to
//    what Bellman-Ford would compute) and SSP proceeds; if not, the solver
//    self-downgrades to the cold Bellman-Ford start. Either way the values
//    entering SSP match a cold solve's, so warm solutions are byte-identical
//    to cold ones — the property the DSS-LC identity benches assert.
//
// Solvers are reusable: Reset(num_nodes) clears the graph while keeping every
// internal vector's heap storage, so a solver that is Reset and refilled with
// a same-shaped graph performs zero allocations. DSS-LC keeps one solver per
// (service type, graph kind) and reuses it every dispatch round;
// alloc_events() exposes how often any internal buffer actually had to grow,
// which the perf bench uses to prove steady-state rounds allocate nothing.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace tango::flow {

using FlowUnit = std::int64_t;
using CostUnit = std::int64_t;

constexpr CostUnit kInfCost = std::numeric_limits<CostUnit>::max() / 4;

class MinCostMaxFlow {
 public:
  /// An empty solver; call Reset(num_nodes) before adding arcs.
  MinCostMaxFlow() = default;

  /// Create a solver over `num_nodes` graph nodes (0-based indices).
  explicit MinCostMaxFlow(int num_nodes);

  /// Drop all arcs and resize to `num_nodes` nodes, retaining the heap
  /// storage of every internal vector so subsequent AddArc/Solve calls on a
  /// graph no larger than any previously-seen one allocate nothing.
  void Reset(int num_nodes);

  /// Pre-size arc storage for `num_arcs` forward arcs (e.g. the previous
  /// round's count) so AddArc never has to grow mid-build.
  void ReserveArcs(std::size_t num_arcs);

  /// Add a directed arc; returns an arc id usable with Flow(arc).
  /// Capacity must be >= 0. Cost may be negative.
  int AddArc(int from, int to, FlowUnit capacity, CostUnit cost);

  int num_nodes() const { return num_nodes_; }
  int num_arcs() const { return static_cast<int>(arc_to_.size()) / 2; }

  struct Result {
    FlowUnit max_flow = 0;
    CostUnit total_cost = 0;
    bool saturated = false;  ///< true iff max_flow == requested amount
  };

  /// Push up to `amount` flow from `source` to `sink` at minimum cost.
  /// Pass kMaxFlow to compute the true max flow.
  static constexpr FlowUnit kMaxFlow =
      std::numeric_limits<FlowUnit>::max() / 4;
  Result Solve(int source, int sink, FlowUnit amount = kMaxFlow);

  /// Open a warm round against the current graph. Call UpdateArc for every
  /// capacity/cost delta since the previous solve, then SolveIncremental.
  void BeginRound();

  /// Replace arc `arc_id`'s full capacity and cost in place (structure —
  /// endpoints — is fixed). Takes effect at the next SolveIncremental,
  /// which re-solves from zero flow under the updated caps/costs.
  void UpdateArc(int arc_id, FlowUnit capacity, CostUnit cost);

  /// Warm re-solve: byte-identical Result and per-arc flows to rebuilding
  /// the same graph in a fresh solver and calling Solve, but reuses the
  /// retained graph, memoized solution, and potential basis (see header
  /// comment). Unlike Solve, always restarts from zero flow.
  Result SolveIncremental(int source, int sink, FlowUnit amount = kMaxFlow);

  /// Flow pushed through arc `arc_id` by the last Solve call.
  FlowUnit Flow(int arc_id) const;

  /// Residual capacity of arc `arc_id`.
  FlowUnit Residual(int arc_id) const;

  /// Reset all flow (keeps the graph). Also clears the warm-start state:
  /// potentials, memo, and potential basis.
  void ResetFlow();

  /// Times any internal vector's capacity grew (construction included).
  /// Flat across Reset/AddArc/Solve cycles ⇔ the solver is allocation-free.
  std::int64_t alloc_events() const { return alloc_events_; }

  /// Warm-start observability: rounds answered straight from the memo,
  /// warm vs cold solve counts, warm rounds that fell back to Bellman-Ford
  /// because a delta broke potential feasibility, star-kernel solves, and
  /// total UpdateArc deltas applied.
  std::int64_t memo_hits() const { return memo_hits_; }
  std::int64_t warm_solves() const { return warm_solves_; }
  std::int64_t cold_solves() const { return cold_solves_; }
  std::int64_t spfa_downgrades() const { return spfa_downgrades_; }
  std::int64_t star_solves() const { return star_solves_; }
  std::int64_t delta_updates() const { return delta_updates_; }

  /// Audit the last Solve's solution (§5.2): per-arc capacity respect, flow
  /// conservation at every interior node, the max-flow certificate (an
  /// unsaturated solve leaves the sink unreachable in the residual graph),
  /// and the reduced-cost optimality certificate (no residual arc reachable
  /// from `source` has negative reduced cost under the Johnson potentials).
  /// Solve() re-runs this automatically in audit builds; every check inside
  /// compiles to nothing when TANGO_AUDIT is off.
  void AuditSolution(int source, int sink, FlowUnit expected_flow,
                     bool saturated) const;

#if defined(TANGO_AUDIT)
  /// Seeded-bug hook for the audit death tests: clobber a forward arc's
  /// residual capacity so AuditSolution provably fires.
  void CorruptArcForTest(int arc_id, FlowUnit residual) {
    const auto l = static_cast<std::size_t>(2 * arc_id);
    if (finalized_) {
      csr_cap_[static_cast<std::size_t>(arc_slot_[l])] = residual;
    } else {
      arc_cap_[l] = residual;
    }
  }
#endif

 private:
  /// Build the CSR slot layout from the logical arc arrays. Within each
  /// tail, slots hold arcs in descending logical id — the same order the
  /// old `first_out_`/`next` linked list walked them — so downstream
  /// tie-breaking (and therefore every solution) is unchanged.
  void Finalize();

  /// Re-open the graph for AddArc after a Finalize (copies residual caps
  /// back to the logical arrays).
  void Definalize();

  /// Set every forward slot back to its full capacity and every reverse
  /// slot to zero, leaving potentials alone (warm-path flow reset).
  void RestoreCaps();

  int TailOf(int slot) const {
    return arc_to_[static_cast<std::size_t>(csr_arc_[static_cast<std::size_t>(
                       slot)] ^
                   1)];
  }
  int RevSlot(int slot) const {
    return arc_slot_[static_cast<std::size_t>(
        csr_arc_[static_cast<std::size_t>(slot)] ^ 1)];
  }

  /// True iff the graph is a two-level dispatch star for (source, sink):
  /// source has a single forward arc to a hub, every hub arc fans out to a
  /// distinct worker whose only other arc is a forward arc to the sink.
  bool IsDispatchStar(int source, int sink) const;

  /// Greedy star solve: fills chains in ascending (path cost, arc id) and
  /// installs closed-form certificate potentials.
  Result SolveStar(int source, int sink, FlowUnit amount);

  /// SPFA over positive-cap slots; sets potential_[v] to the exact shortest
  /// distance for every source-reachable v (cold start).
  void Spfa(int source);

  /// True iff the cached potential basis is reduced-cost feasible for every
  /// full-capacity forward arc under the current costs.
  bool BaseFeasible() const;

  /// Rebuild exact shortest distances from `source` with one Dijkstra pass
  /// over costs reduced by the (feasible) cached basis; writes the same
  /// potential values Spfa would for every reachable node.
  void DijkstraRefresh(int source);

  /// One SSP augmentation step: early-exit Dijkstra to the sink on reduced
  /// costs. On success stores the path in prev_slot_ and applies the capped
  /// potential update pi[v] += min(dist[v], dist[sink]).
  bool DijkstraToSink(int source, int sink);

  /// The successive-shortest-paths loop shared by cold and warm solves
  /// (potentials must already be valid).
  Result RunSsp(int source, int sink, FlowUnit amount);

  /// Memoize the solve and clear the pending-delta set.
  void FinishSolve(int source, int sink, FlowUnit amount, const Result& r);

  /// assign() that counts a capacity growth as an allocation event.
  template <class V, class T>
  void AssignCounted(V& v, std::size_t n, const T& value) {
    if (n > v.capacity()) ++alloc_events_;
    v.assign(n, value);
  }
  template <class V>
  void ReserveCounted(V& v, std::size_t n) {
    if (n > v.capacity()) {
      ++alloc_events_;
      // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
      v.reserve(n);
    }
  }

  int num_nodes_ = 0;

  // Logical (build-order) arc arrays: arc 2i is forward, 2i+1 its reverse.
  // arc_cap_ holds residual capacity only until Finalize; afterwards
  // csr_cap_ is the single source of truth.
  std::vector<int> arc_to_;
  std::vector<CostUnit> arc_cost_;
  std::vector<FlowUnit> arc_cap_;
  std::vector<FlowUnit> initial_cap_;  // per forward arc id

  // CSR/SoA layout (valid while finalized_): slots grouped by tail node,
  // head_[u]..head_[u+1] spanning node u's arcs.
  bool finalized_ = false;
  std::vector<int> head_;      // num_nodes + 1 prefix offsets
  std::vector<int> csr_arc_;   // slot -> logical arc id
  std::vector<int> arc_slot_;  // logical arc id -> slot
  std::vector<int> csr_to_;
  std::vector<FlowUnit> csr_cap_;
  std::vector<CostUnit> csr_cost_;
  std::vector<int> csr_cursor_;  // counting-sort scratch

  // Per-solve scratch kept across calls so Solve allocates nothing once the
  // buffers have grown to the working-set size. dist_/visited validity is
  // stamp-checked instead of cleared (O(touched) per Dijkstra, not O(n)).
  std::vector<CostUnit> potential_;
  std::vector<CostUnit> base_potential_;
  std::vector<CostUnit> dist_;
  std::vector<int> prev_slot_;
  std::vector<std::uint64_t> dist_stamp_;
  std::vector<std::uint64_t> visited_stamp_;
  std::uint64_t stamp_ = 0;
  std::vector<int> spfa_queue_;
  std::vector<char> in_queue_;
  std::vector<std::pair<CostUnit, int>> heap_;
  std::vector<std::pair<CostUnit, int>> star_order_;  // (path cost, arc id)

  // Warm-start state.
  bool has_solution_ = false;
  bool has_base_ = false;
  std::vector<int> dirty_arcs_;  // forward arc ids with pending deltas
  std::vector<char> arc_dirty_;
  int memo_source_ = -1;
  int memo_sink_ = -1;
  FlowUnit memo_amount_ = 0;
  Result memo_result_;

  std::int64_t alloc_events_ = 0;
  std::int64_t memo_hits_ = 0;
  std::int64_t warm_solves_ = 0;
  std::int64_t cold_solves_ = 0;
  std::int64_t spfa_downgrades_ = 0;
  std::int64_t star_solves_ = 0;
  std::int64_t delta_updates_ = 0;
};

}  // namespace tango::flow
