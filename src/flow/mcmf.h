// Min-cost max-flow solver used by DSS-LC in place of the paper's OR-Tools
// dependency (§5.2.2).
//
// Successive shortest augmenting paths with Johnson potentials: an initial
// Bellman-Ford pass admits negative edge costs, after which each augmentation
// runs Dijkstra on reduced costs. For the integer MCNF instances DSS-LC
// builds (unit "request" commodities, delay costs), this returns the same
// optimum OR-Tools' SimpleMinCostFlow would.
//
// Solvers are reusable: Reset(num_nodes) clears the graph while keeping every
// internal vector's heap storage, so a solver that is Reset and refilled with
// a same-shaped graph performs zero allocations. DSS-LC keeps one solver per
// worker thread and reuses it every dispatch round; alloc_events() exposes
// how often any internal buffer actually had to grow, which the perf bench
// uses to prove steady-state rounds allocate nothing.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace tango::flow {

using FlowUnit = std::int64_t;
using CostUnit = std::int64_t;

constexpr CostUnit kInfCost = std::numeric_limits<CostUnit>::max() / 4;

class MinCostMaxFlow {
 public:
  /// An empty solver; call Reset(num_nodes) before adding arcs.
  MinCostMaxFlow() = default;

  /// Create a solver over `num_nodes` graph nodes (0-based indices).
  explicit MinCostMaxFlow(int num_nodes);

  /// Drop all arcs and resize to `num_nodes` nodes, retaining the heap
  /// storage of every internal vector so subsequent AddArc/Solve calls on a
  /// graph no larger than any previously-seen one allocate nothing.
  void Reset(int num_nodes);

  /// Pre-size arc storage for `num_arcs` forward arcs (e.g. the previous
  /// round's count) so AddArc never has to grow mid-build.
  void ReserveArcs(std::size_t num_arcs);

  /// Add a directed arc; returns an arc id usable with Flow(arc).
  /// Capacity must be >= 0. Cost may be negative.
  int AddArc(int from, int to, FlowUnit capacity, CostUnit cost);

  int num_nodes() const { return static_cast<int>(first_out_.size()); }
  int num_arcs() const { return static_cast<int>(arcs_.size()) / 2; }

  struct Result {
    FlowUnit max_flow = 0;
    CostUnit total_cost = 0;
    bool saturated = false;  ///< true iff max_flow == requested amount
  };

  /// Push up to `amount` flow from `source` to `sink` at minimum cost.
  /// Pass kMaxFlow to compute the true max flow.
  static constexpr FlowUnit kMaxFlow =
      std::numeric_limits<FlowUnit>::max() / 4;
  Result Solve(int source, int sink, FlowUnit amount = kMaxFlow);

  /// Flow pushed through arc `arc_id` by the last Solve call.
  FlowUnit Flow(int arc_id) const;

  /// Residual capacity of arc `arc_id`.
  FlowUnit Residual(int arc_id) const;

  /// Reset all flow (keeps the graph).
  void ResetFlow();

  /// Times any internal vector's capacity grew (construction included).
  /// Flat across Reset/AddArc/Solve cycles ⇔ the solver is allocation-free.
  std::int64_t alloc_events() const { return alloc_events_; }

  /// Audit the last Solve's solution (§5.2): per-arc capacity respect, flow
  /// conservation at every interior node, the max-flow certificate (an
  /// unsaturated solve leaves the sink unreachable in the residual graph),
  /// and the reduced-cost optimality certificate (no residual arc reachable
  /// from `source` has negative reduced cost under the Johnson potentials).
  /// Solve() re-runs this automatically in audit builds; every check inside
  /// compiles to nothing when TANGO_AUDIT is off.
  void AuditSolution(int source, int sink, FlowUnit expected_flow,
                     bool saturated) const;

#if defined(TANGO_AUDIT)
  /// Seeded-bug hook for the audit death tests: clobber a forward arc's
  /// residual capacity so AuditSolution provably fires.
  void CorruptArcForTest(int arc_id, FlowUnit residual) {
    arcs_[static_cast<std::size_t>(2 * arc_id)].cap = residual;
  }
#endif

 private:
  struct Arc {
    int to;
    int next;          // next arc out of the same tail
    FlowUnit cap;      // residual capacity
    CostUnit cost;
  };

  bool BellmanFord(int source);
  bool DijkstraReduced(int source, int sink);

  /// assign() that counts a capacity growth as an allocation event.
  template <class V, class T>
  void AssignCounted(V& v, std::size_t n, const T& value) {
    if (n > v.capacity()) ++alloc_events_;
    v.assign(n, value);
  }

  std::vector<Arc> arcs_;         // arc 2i is forward, 2i+1 its reverse
  std::vector<FlowUnit> initial_cap_;  // per forward arc id
  std::vector<int> first_out_;
  std::vector<CostUnit> potential_;
  std::vector<CostUnit> dist_;
  std::vector<int> prev_arc_;
  std::vector<char> visited_;
  // Per-solve scratch kept across calls so Solve allocates nothing once the
  // buffers have grown to the working-set size.
  std::vector<int> spfa_queue_;
  std::vector<char> in_queue_;
  std::vector<std::pair<CostUnit, int>> heap_;
  std::int64_t alloc_events_ = 0;
};

}  // namespace tango::flow
