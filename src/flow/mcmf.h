// Min-cost max-flow solver used by DSS-LC in place of the paper's OR-Tools
// dependency (§5.2.2).
//
// Successive shortest augmenting paths with Johnson potentials: an initial
// Bellman-Ford pass admits negative edge costs, after which each augmentation
// runs Dijkstra on reduced costs. For the integer MCNF instances DSS-LC
// builds (unit "request" commodities, delay costs), this returns the same
// optimum OR-Tools' SimpleMinCostFlow would.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace tango::flow {

using FlowUnit = std::int64_t;
using CostUnit = std::int64_t;

constexpr CostUnit kInfCost = std::numeric_limits<CostUnit>::max() / 4;

class MinCostMaxFlow {
 public:
  /// Create a solver over `num_nodes` graph nodes (0-based indices).
  explicit MinCostMaxFlow(int num_nodes);

  /// Add a directed arc; returns an arc id usable with Flow(arc).
  /// Capacity must be >= 0. Cost may be negative.
  int AddArc(int from, int to, FlowUnit capacity, CostUnit cost);

  int num_nodes() const { return static_cast<int>(first_out_.size()); }
  int num_arcs() const { return static_cast<int>(arcs_.size()) / 2; }

  struct Result {
    FlowUnit max_flow = 0;
    CostUnit total_cost = 0;
    bool saturated = false;  ///< true iff max_flow == requested amount
  };

  /// Push up to `amount` flow from `source` to `sink` at minimum cost.
  /// Pass kMaxFlow to compute the true max flow.
  static constexpr FlowUnit kMaxFlow =
      std::numeric_limits<FlowUnit>::max() / 4;
  Result Solve(int source, int sink, FlowUnit amount = kMaxFlow);

  /// Flow pushed through arc `arc_id` by the last Solve call.
  FlowUnit Flow(int arc_id) const;

  /// Residual capacity of arc `arc_id`.
  FlowUnit Residual(int arc_id) const;

  /// Reset all flow (keeps the graph).
  void ResetFlow();

 private:
  struct Arc {
    int to;
    int next;          // next arc out of the same tail
    FlowUnit cap;      // residual capacity
    CostUnit cost;
  };

  bool BellmanFord(int source);
  bool DijkstraReduced(int source, int sink);

  std::vector<Arc> arcs_;         // arc 2i is forward, 2i+1 its reverse
  std::vector<FlowUnit> initial_cap_;  // per forward arc id
  std::vector<int> first_out_;
  std::vector<CostUnit> potential_;
  std::vector<CostUnit> dist_;
  std::vector<int> prev_arc_;
  std::vector<bool> visited_;
};

}  // namespace tango::flow
