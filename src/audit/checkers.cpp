#include "audit/checkers.h"

namespace tango::audit::checks {

void CheckCgroupBound(std::int64_t parent_value, std::int64_t child_value,
                      const char* knob, const std::string& child_path) {
  // An unlimited child (-1) under a finite parent is legal steady state:
  // containers are created unlimited and are effectively clamped by the pod
  // bound until their own write lands (Hierarchy::AnyChild*Exceeds ignores
  // them for the same reason). Only a *finite* child may not exceed a
  // finite parent.
  const bool within =
      parent_value < 0 || child_value < 0 || child_value <= parent_value;
  AUDIT_CHECK(within, .subsystem = "cgroup",
              .invariant = "cgroup.child_within_parent",
              .detail = Detail("%s of %s is %lld, parent bound %lld", knob,
                               child_path.c_str(),
                               static_cast<long long>(child_value),
                               static_cast<long long>(parent_value)));
}

void CheckCgroupPodCoversChildren(std::int64_t pod_value,
                                  std::int64_t children_sum, const char* knob,
                                  const std::string& pod_path) {
  AUDIT_CHECK(pod_value < 0 || children_sum <= pod_value,
              .subsystem = "cgroup",
              .invariant = "cgroup.pod_covers_children",
              .detail = Detail("%s of %s is %lld, children sum to %lld", knob,
                               pod_path.c_str(),
                               static_cast<long long>(pod_value),
                               static_cast<long long>(children_sum)));
}

void CheckNodeConservation(SimTime now, std::int32_t node,
                           Millicores cpu_capacity, Millicores cpu_granted,
                           MiB mem_capacity, MiB mem_used) {
  AUDIT_CHECK(cpu_granted <= cpu_capacity, .subsystem = "node",
              .invariant = "node.cpu_conservation", .sim_time = now,
              .node = node,
              .detail = Detail("granted %lld millicores of %lld allocatable",
                               static_cast<long long>(cpu_granted),
                               static_cast<long long>(cpu_capacity)));
  AUDIT_CHECK(mem_used <= mem_capacity, .subsystem = "node",
              .invariant = "node.mem_conservation", .sim_time = now,
              .node = node,
              .detail = Detail("resident %lld MiB of %lld allocatable",
                               static_cast<long long>(mem_used),
                               static_cast<long long>(mem_capacity)));
}

void CheckUsageCache(SimTime now, std::int32_t node, const char* counter,
                     std::int64_t cached, std::int64_t rescanned) {
  AUDIT_CHECK(cached == rescanned, .subsystem = "node",
              .invariant = "node.usage_cache", .sim_time = now, .node = node,
              .detail = Detail("%s cached %lld != rescanned %lld", counter,
                               static_cast<long long>(cached),
                               static_cast<long long>(rescanned)));
}

void CheckLcTargetUsable(SimTime now, std::int32_t node, bool usable) {
  AUDIT_CHECK(usable, .subsystem = "sched",
              .invariant = "sched.lc_target_usable", .sim_time = now,
              .node = node,
              .detail = Detail("LC request routed to a dead/draining/"
                               "unreachable node"));
}

void CheckUniqueAssignment(SimTime now, std::int32_t request,
                           bool already_assigned) {
  AUDIT_CHECK(!already_assigned, .subsystem = "sched",
              .invariant = "sched.unique_assignment", .sim_time = now,
              .detail = Detail("request %d assigned twice in one round",
                               request));
}

void CheckVersionMonotonic(SimTime now, std::int32_t node,
                           std::uint64_t seen_version,
                           std::uint64_t current_version) {
  AUDIT_CHECK(seen_version <= current_version, .subsystem = "sync",
              .invariant = "sync.version_monotonic", .sim_time = now,
              .node = node,
              .detail = Detail("seen version %llu ahead of worker version "
                               "%llu",
                               static_cast<unsigned long long>(seen_version),
                               static_cast<unsigned long long>(
                                   current_version)));
}

void CheckDeltaIdentity(SimTime now, std::int32_t node, bool contents_match) {
  AUDIT_CHECK(contents_match, .subsystem = "sync",
              .invariant = "sync.delta_identity", .sim_time = now,
              .node = node,
              .detail = Detail("delta skip kept a stale snapshot: version "
                               "unchanged but content differs"));
}

void DvpaOrderChecker::BeginKind(const char* knob, std::int64_t old_pod_bound,
                                 std::int64_t new_bound) {
  if constexpr (!kEnabled) return;
  knob_ = knob;
  // Unlimited old bound (-1) accepts either order: the parent constrains
  // nothing, so neither write can fail. Same for an unchanged target.
  expand_ = old_pod_bound >= 0 && new_bound >= 0 && new_bound > old_pod_bound;
  shrink_ = old_pod_bound >= 0 &&
            (new_bound >= 0 ? new_bound < old_pod_bound : false);
  writes_ = 0;
  pod_written_ = false;
  container_written_ = false;
}

void DvpaOrderChecker::OnWrite(Level level, bool ok) {
  if constexpr (!kEnabled) return;
  ++writes_;
  AUDIT_CHECK(writes_ <= 2, .subsystem = "dvpa",
              .invariant = "dvpa.write_count", .sim_time = now_, .node = node_,
              .service = service_,
              .detail = Detail("%s scaled with %d writes (max 2: pod + "
                               "container)",
                               knob_, writes_));
  const bool is_pod = level == Level::kPod;
  AUDIT_CHECK(is_pod ? !pod_written_ : !container_written_,
              .subsystem = "dvpa", .invariant = "dvpa.duplicate_write",
              .sim_time = now_, .node = node_, .service = service_,
              .detail = Detail("%s level written twice for %s",
                               is_pod ? "pod" : "container", knob_));
  if (is_pod) {
    // Shrinking must narrow the container before the pod bound drops under it.
    AUDIT_CHECK(!shrink_ || container_written_, .subsystem = "dvpa",
                .invariant = "dvpa.shrink_order", .sim_time = now_,
                .node = node_, .service = service_,
                .detail = Detail("shrink of %s wrote pod before container "
                                 "(§4.2 order: container → pod)",
                                 knob_));
    pod_written_ = true;
  } else {
    AUDIT_CHECK(!expand_ || pod_written_, .subsystem = "dvpa",
                .invariant = "dvpa.expand_order", .sim_time = now_,
                .node = node_, .service = service_,
                .detail = Detail("expansion of %s wrote container before pod "
                                 "(§4.2 order: pod → container)",
                                 knob_));
    container_written_ = true;
  }
  AUDIT_CHECK(ok, .subsystem = "dvpa", .invariant = "dvpa.write_rejected",
              .sim_time = now_, .node = node_, .service = service_,
              .detail = Detail("ordered %s write to the %s level was rejected "
                               "by the hierarchy",
                               knob_, is_pod ? "pod" : "container"));
}

}  // namespace tango::audit::checks
