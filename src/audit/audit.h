// TangoAudit: a zero-cost-when-off runtime invariant auditor.
//
// The paper's correctness claims are ordering and conservation properties —
// D-VPA's strict CGroup write order (§4.2), LC>BE preemption never
// oversubscribing a node (§4.1), MCMF solutions that conserve flow and are
// provably optimal (§5.2), and the delta state-sync protocol whose skips must
// be observationally identical to full pushes. Under `-DTANGO_AUDIT=ON` every
// mutation boundary re-checks its invariant and aborts with a structured
// report on the first violation; with the option off (the default) every
// macro below compiles to nothing — the discarded `if constexpr` branch still
// type-checks, so audit code cannot bit-rot, but no instruction is emitted.
//
// Usage at a mutation site:
//
//   AUDIT_CHECK(sum_grants <= spec_.capacity.cpu,
//               .subsystem = "node", .invariant = "node.cpu_conservation",
//               .sim_time = sim_->Now(), .node = spec_.id.value,
//               .detail = audit::Detail("granted %lld of %lld", ...));
//
// The variadic tail designated-initializes an audit::Report; `detail` is only
// evaluated when the check fails (string construction happens inside the
// failure branch). AUDIT_SCOPE(fn) runs `fn` at scope entry and exit,
// bracketing a mutation with a before/after consistency sweep.
//
// Subsystems with non-trivial state expose member auditors built from these
// macros (Hierarchy::Audit, MinCostMaxFlow::AuditSolution,
// Simulator::AuditHeap); pure-data invariants live in audit/checkers.h so the
// seeded-bug death tests can feed them corrupt values directly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"

namespace tango::audit {

#if defined(TANGO_AUDIT)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Structured description of one invariant violation. Every field is
/// optional except the subsystem and invariant id; -1 means "not known at
/// this check site".
struct Report {
  const char* subsystem = "?";  ///< "cgroup", "node", "flow", "sim", "sync"…
  const char* invariant = "?";  ///< catalog id, e.g. "flow.conservation"
  SimTime sim_time = -1;        ///< virtual time of the mutation, if any
  std::int32_t node = -1;       ///< NodeId::value involved, if any
  std::int32_t service = -1;    ///< ServiceId::value involved, if any
  std::string detail;           ///< free-form specifics (values, paths)
};

/// printf-style helper for Report::detail. Only called on the failure path,
/// so the allocation it performs never taxes a passing check.
std::string Detail(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Print the structured report to stderr and abort. Never returns; the
/// death tests match on the "AUDIT VIOLATION" banner it prints.
[[noreturn]] void Fail(const char* file, int line, const Report& report);

/// Number of AUDIT_CHECKs evaluated so far (always 0 when audit is off).
/// Tests use this to prove a code path's checkers are actually live.
std::int64_t checks_run();

namespace internal {
void CountCheck();
}  // namespace internal

/// Pluggable checker registry: a subsystem owner (e.g. EdgeCloudSystem)
/// registers named whole-state sweeps and runs them at its mutation
/// boundaries. Registration is a no-op when audit is off, so owners can
/// register unconditionally.
class Registry {
 public:
  void Register(std::string name, std::function<void()> checker) {
    if constexpr (kEnabled) {
      checkers_.push_back({std::move(name), std::move(checker)});
    } else {
      (void)name;
      (void)checker;
    }
  }

  /// Run every registered checker (each aborts via Fail on violation).
  void RunAll() const {
    for (const auto& c : checkers_) c.fn();
  }

  std::size_t size() const { return checkers_.size(); }

 private:
  struct Named {
    std::string name;
    std::function<void()> fn;
  };
  std::vector<Named> checkers_;
};

/// RAII guard behind AUDIT_SCOPE: runs the checker on entry and again on
/// exit, so any invariant broken inside the scope is caught even when the
/// individual mutation sites lack their own checks.
template <typename Fn>
class ScopeGuard {
 public:
  explicit ScopeGuard(Fn fn) : fn_(std::move(fn)) { fn_(); }
  ~ScopeGuard() { fn_(); }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  Fn fn_;
};

}  // namespace tango::audit

// AUDIT_CHECK(cond, <designated Report initializers>): verify `cond` at a
// mutation boundary. The whole statement is discarded at compile time when
// TANGO_AUDIT is off (it must still type-check, which keeps audit-only code
// from rotting). The Report — including any Detail(...) string — is built
// only on the failure path.
#define AUDIT_CHECK(cond, ...)                                       \
  do {                                                               \
    if constexpr (::tango::audit::kEnabled) {                        \
      ::tango::audit::internal::CountCheck();                        \
      if (!(cond)) {                                                 \
        ::tango::audit::Fail(__FILE__, __LINE__,                     \
                             ::tango::audit::Report{__VA_ARGS__});   \
      }                                                              \
    }                                                                \
  } while (0)

// Unconditional structured failure (the "else" arm of a hand-rolled check).
#define AUDIT_FAIL(...)                                              \
  ::tango::audit::Fail(__FILE__, __LINE__,                           \
                       ::tango::audit::Report{__VA_ARGS__})

#define TANGO_AUDIT_CONCAT_INNER(a, b) a##b
#define TANGO_AUDIT_CONCAT(a, b) TANGO_AUDIT_CONCAT_INNER(a, b)

// AUDIT_SCOPE(fn): run the callable now and again at scope exit. Compiles to
// nothing when audit is off.
#if defined(TANGO_AUDIT)
#define AUDIT_SCOPE(fn)                                              \
  ::tango::audit::ScopeGuard TANGO_AUDIT_CONCAT(audit_scope_,        \
                                                __LINE__) {          \
    (fn)                                                             \
  }
#else
#define AUDIT_SCOPE(fn)   \
  do {                    \
    if constexpr (false) { \
      (fn)();             \
    }                     \
  } while (0)
#endif
