// Pure-data invariant checkers.
//
// Each function re-states one catalog invariant over plain values, so the
// wired-in call sites (cgroup.cpp, node.cpp, dss_lc.cpp, system.cpp) and the
// seeded-bug death tests in tests/audit_test.cpp exercise the exact same
// code: the call site passes live state, the test passes deliberately
// corrupt values and expects the abort. Checkers that need subsystem
// internals are member functions instead (Hierarchy::Audit,
// MinCostMaxFlow::AuditSolution, Simulator::AuditHeap).
//
// All of these compile to empty functions when TANGO_AUDIT is off.
#pragma once

#include <cstdint>
#include <string>

#include "audit/audit.h"
#include "common/units.h"

namespace tango::audit::checks {

/// cgroup.child_within_parent (§4.2): a child group's finite limit may
/// never exceed its parent's finite limit (-1 = unlimited; an unlimited
/// child under a finite parent is clamped, not violating). This is the
/// EINVAL rule D-VPA's ordered writes exist to respect.
void CheckCgroupBound(std::int64_t parent_value, std::int64_t child_value,
                      const char* knob, const std::string& child_path);

/// cgroup.pod_covers_children (§4.2): a pod group's finite limit must be at
/// least the sum of its children's finite limits, so containers can never
/// collectively overdraw the pod bound.
void CheckCgroupPodCoversChildren(std::int64_t pod_value,
                                  std::int64_t children_sum, const char* knob,
                                  const std::string& pod_path);

/// node.cpu_conservation / node.mem_conservation (§4.1): granted CPU and
/// resident memory never exceed the node's allocatable capacity — LC>BE
/// preemption must free resources before the LC grant lands.
void CheckNodeConservation(SimTime now, std::int32_t node,
                           Millicores cpu_capacity, Millicores cpu_granted,
                           MiB mem_capacity, MiB mem_used);

/// node.usage_cache (PR 3's incremental telemetry): the O(1) cached usage
/// totals must equal a fresh rescan of the running set.
void CheckUsageCache(SimTime now, std::int32_t node, const char* counter,
                     std::int64_t cached, std::int64_t rescanned);

/// sched.lc_target_usable (§5.2): DSS-LC must never place an LC request on
/// a node that is dead, draining, or unreachable from the dispatching
/// master.
void CheckLcTargetUsable(SimTime now, std::int32_t node, bool usable);

/// sched.unique_assignment: one scheduling round must not assign the same
/// request twice.
void CheckUniqueAssignment(SimTime now, std::int32_t request,
                           bool already_assigned);

/// sync.version_monotonic: a worker's state_version only advances, so a
/// master's seen-version may never be ahead of the worker it tracks.
void CheckVersionMonotonic(SimTime now, std::int32_t node,
                           std::uint64_t seen_version,
                           std::uint64_t current_version);

/// sync.delta_identity: when the delta protocol skips a clean node, the
/// stored snapshot must still match a fresh rebuild (version equality must
/// imply content equality).
void CheckDeltaIdentity(SimTime now, std::int32_t node, bool contents_match);

/// D-VPA ordered-write protocol (§4.2) as a state machine. One checker
/// instance brackets one scaling operation; each knob kind (CPU quota,
/// memory limit) is announced with the old pod-level bound and the target,
/// then every write is reported in order:
///
///   expansion (finite old bound, target above it): pod before container;
///   shrinking (finite old bound, target below it): container before pod;
///   unlimited old bound or unchanged target: either order is safe.
///
/// A write that the hierarchy rejected (ok = false) on the D-VPA path is
/// itself a violation — the protocol exists so no ordered write ever fails.
class DvpaOrderChecker {
 public:
  enum class Level { kPod, kContainer };

  DvpaOrderChecker(SimTime now, std::int32_t node, std::int32_t service)
      : now_(now), node_(node), service_(service) {}

  /// Start auditing one knob kind. `old_pod_bound` / `new_bound` use the
  /// cgroup convention (-1 = unlimited).
  void BeginKind(const char* knob, std::int64_t old_pod_bound,
                 std::int64_t new_bound);

  /// Record one write of the current kind. `ok` is the hierarchy's verdict.
  void OnWrite(Level level, bool ok);

 private:
  SimTime now_;
  std::int32_t node_;
  std::int32_t service_;
  const char* knob_ = "?";
  bool expand_ = false;
  bool shrink_ = false;
  int writes_ = 0;
  bool pod_written_ = false;
  bool container_written_ = false;
};

}  // namespace tango::audit::checks
