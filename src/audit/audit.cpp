#include "audit/audit.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/vet.h"

namespace tango::audit {

namespace {
// Parallel DSS-LC workers run checks concurrently, so the counter is
// relaxed-atomic rather than plain.
std::atomic<std::int64_t>& CheckCounter() {
  static std::atomic<std::int64_t> counter{0};
  return counter;
}
}  // namespace

std::int64_t checks_run() {
  return CheckCounter().load(std::memory_order_relaxed);
}

namespace internal {
void CountCheck() {
  CheckCounter().fetch_add(1, std::memory_order_relaxed);
}
}  // namespace internal

TANGO_COLD std::string Detail(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

void Fail(const char* file, int line, const Report& report) {
  // One flat block on stderr: greppable banner first (the death tests match
  // it), then every structured field on its own line.
  std::fprintf(stderr,
               "AUDIT VIOLATION [%s] %s\n"
               "  at       %s:%d\n"
               "  sim_time %lld\n"
               "  node     %d\n"
               "  service  %d\n"
               "  detail   %s\n",
               report.subsystem, report.invariant, file, line,
               static_cast<long long>(report.sim_time), report.node,
               report.service,
               report.detail.empty() ? "-" : report.detail.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace tango::audit
