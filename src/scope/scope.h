// TangoScope: low-overhead span tracing for the edge-cloud simulation.
//
// The dynamic half of the observability plane — TangoAudit (src/audit)
// proves invariants hold, TangoScope shows where time and resources
// actually go. Spans cover the LC request lifecycle (arrival → DSS-LC
// round → dispatch → transfer → execution → completion) and control-plane
// actions (D-VPA ordered writes, QoS re-assurance nudges, BE eviction,
// fault events). Each span carries sim-time, optional wall-clock,
// node/service/request ids, and a parent handle so a request's causal
// chain reconstructs from an exported trace (scope/export.h writes Chrome
// trace_event JSON loadable in Perfetto / chrome://tracing).
//
// Cost model, in the style of src/audit:
//   - compiled with TANGO_SCOPE=OFF (the default), kCompiled is false and
//     the BeginSpan/EndSpan front-end below constant-folds to nothing —
//     bench/perf_sim and bench/perf_sched assert zero steady-state
//     allocations and unchanged throughput in this mode;
//   - compiled ON, emission is runtime-gated on Tracer::enabled() and
//     costs one mutex-protected ring-slot write. Span storage is a
//     fixed-capacity ring allocated once at Enable() — the pooled-slot +
//     generation-checked-handle pattern of sim::Simulator's event slab —
//     so the steady state never allocates; when the ring wraps, the
//     oldest records are overwritten (open ones are counted as dropped)
//     and a handle to a recycled slot goes stale, making End() on it a
//     safe no-op.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/units.h"

namespace tango::scope {

#if defined(TANGO_SCOPE)
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

/// Handle to an emitted span. Encodes (slot generation, slot index); a
/// handle whose slot has since been recycled by the ring never matches, so
/// ending it is a safe no-op. 0 is never a valid handle.
using SpanId = std::uint64_t;
constexpr SpanId kInvalidSpan = 0;

/// Optional identity attached to a span; designated-initializer tail like
/// audit::Report. -1 means "not applicable". `value` is a free slot for a
/// span-specific magnitude (queue length, new quota, bytes, ...).
struct SpanIds {
  std::int64_t node = -1;
  std::int64_t service = -1;
  std::int64_t request = -1;
  std::int64_t value = 0;
};

/// One record in the span ring. `name` and `category` must point at
/// strings with static storage duration (string literals at every call
/// site) — records outlive the emitting scope.
struct SpanRecord {
  const char* name = nullptr;  // nullptr = slot never used
  const char* category = "";
  SimTime sim_begin = 0;
  SimTime sim_end = -1;            // -1 = still open
  std::int64_t wall_begin_ns = 0;  // 0 unless Config::wall_clock
  std::int64_t wall_end_ns = 0;
  SpanId self = kInvalidSpan;
  SpanId parent = kInvalidSpan;
  SpanIds ids;
  bool instant = false;

  bool used() const { return name != nullptr; }
  bool open() const { return used() && !instant && sim_end < 0; }
};

/// Fixed-capacity, thread-safe span recorder. All emission goes through
/// one mutex — contention is acceptable because only the parallel DSS-LC
/// phase emits from worker threads, and there only a handful of spans per
/// round. Construction allocates nothing; Enable() allocates the ring
/// once (the prewarm, like Simulator::ReserveEvents).
class Tracer {
 public:
  struct Config {
    std::size_t capacity = std::size_t{1} << 15;  // ring slots
    bool wall_clock = false;  // also stamp steady_clock ns on begin/end
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Allocate (or re-allocate) the ring and start recording. Resets the
  /// cursor and counters; prior records are discarded.
  void Enable(const Config& cfg);
  void Enable() { Enable(Config{}); }
  /// Stop recording. The ring is kept so an exporter can still read it.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Emit an open span beginning at sim time `at`. Returns kInvalidSpan
  /// when disabled. The returned handle stays valid until the ring wraps
  /// back over its slot.
  SpanId Begin(const char* name, const char* category, SimTime at,
               const SpanIds& ids = {}, SpanId parent = kInvalidSpan);
  /// Close a span. Safe no-op on kInvalidSpan, on recycled (stale)
  /// handles, and on already-closed spans.
  void End(SpanId span, SimTime at);
  /// Emit a zero-duration event.
  SpanId Instant(const char* name, const char* category, SimTime at,
                 const SpanIds& ids = {}, SpanId parent = kInvalidSpan);

  std::size_t capacity() const;
  /// Total spans + instants emitted since Enable (including overwritten).
  std::int64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Still-open spans lost to ring wrap-around.
  std::int64_t dropped_open() const {
    return dropped_open_.load(std::memory_order_relaxed);
  }
  /// End() calls that arrived after their slot was recycled.
  std::int64_t stale_ends() const {
    return stale_ends_.load(std::memory_order_relaxed);
  }

  /// Copy of the live ring contents in emission order (oldest first).
  /// Allocates — for exporters and tests, not the hot path.
  std::vector<SpanRecord> Snapshot() const;

 private:
  struct Slot {
    SpanRecord rec;
    std::uint32_t gen = 0;
  };

  static SpanId MakeHandle(std::uint64_t slot, std::uint32_t gen) {
    return (static_cast<SpanId>(gen) << 32) | (slot + 1);
  }

  SpanId Emit(const char* name, const char* category, SimTime at,
              const SpanIds& ids, SpanId parent, bool instant);

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  bool wall_clock_ = false;
  std::uint64_t cursor_ = 0;  // total emissions; ring slot = cursor_ % size
  std::vector<Slot> ring_;
  std::atomic<std::int64_t> emitted_{0};
  std::atomic<std::int64_t> dropped_open_{0};
  std::atomic<std::int64_t> stale_ends_{0};
};

/// The process-global tracer every instrumentation site emits to. Enable
/// it (eval::RunExperiment does when ExperimentConfig::trace_path is set;
/// examples/chaos_demo always does) and export with scope/export.h.
Tracer& DefaultTracer();

/// True only when the subsystem is compiled in (TANGO_SCOPE=ON) and the
/// default tracer is enabled. Constant false when compiled out, so the
/// front-end below folds away entirely.
inline bool TracingActive() {
  if constexpr (!kCompiled) {
    return false;
  } else {
    return DefaultTracer().enabled();
  }
}

/// Front-end used at instrumentation sites: compiles to nothing when
/// TANGO_SCOPE=OFF, one enabled() load when ON but disabled.
inline SpanId BeginSpan(const char* name, const char* category, SimTime at,
                        const SpanIds& ids = {},
                        SpanId parent = kInvalidSpan) {
  if (!TracingActive()) return kInvalidSpan;
  return DefaultTracer().Begin(name, category, at, ids, parent);
}

inline void EndSpan(SpanId span, SimTime at) {
  if (!TracingActive()) return;
  DefaultTracer().End(span, at);
}

inline void InstantEvent(const char* name, const char* category, SimTime at,
                         const SpanIds& ids = {},
                         SpanId parent = kInvalidSpan) {
  if (!TracingActive()) return;
  DefaultTracer().Instant(name, category, at, ids, parent);
}

}  // namespace tango::scope

/// Statement form of InstantEvent taking a SpanIds designated-initializer
/// tail, mirroring AUDIT_CHECK's discarded-if-constexpr idiom:
///   TANGO_SCOPE_INSTANT("be.evict", "be", now,
///                       .node = id.value, .service = svc.value);
/// With TANGO_SCOPE=OFF the branch is discarded (still type-checked) and
/// the statement compiles to nothing.
#define TANGO_SCOPE_INSTANT(name, category, at, ...)                  \
  do {                                                                \
    if constexpr (::tango::scope::kCompiled) {                        \
      ::tango::scope::Tracer& t_scope_ = ::tango::scope::DefaultTracer(); \
      if (t_scope_.enabled()) {                                       \
        t_scope_.Instant((name), (category), (at),                    \
                         ::tango::scope::SpanIds{__VA_ARGS__});       \
      }                                                               \
    }                                                                 \
  } while (0)
