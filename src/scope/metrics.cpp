#include "scope/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace tango::scope {

int Histogram::BucketOf(std::int64_t v) {
  if (v < kSubBuckets) return v < 0 ? 0 : static_cast<int>(v);
  const auto u = static_cast<std::uint64_t>(v);
  const int exp = std::bit_width(u);  // in [kSubBits + 1, 63]
  const int sub =
      static_cast<int>((u >> (exp - 1 - kSubBits)) & (kSubBuckets - 1));
  return ((exp - kSubBits) << kSubBits) + sub;
}

double Histogram::BucketValue(int b) {
  if (b < kSubBuckets) return b;
  const int exp = (b >> kSubBits) + kSubBits;
  const int sub = b & (kSubBuckets - 1);
  const double lo = std::ldexp(1.0, exp - 1);
  const double width = std::ldexp(1.0, exp - 1 - kSubBits);
  return lo + sub * width + width / 2.0;
}

void Histogram::Observe(std::int64_t v) {
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const std::int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::Percentile(double q) const {
  // Copy the buckets first so a concurrent Observe can't make the
  // cumulative walk disagree with the total.
  std::array<std::int64_t, kBuckets> counts;
  std::int64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  // Nearest rank, matching common/stats.h Percentile on the sorted data.
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::int64_t>(
      clamped * static_cast<double>(total - 1) + 0.5);
  std::int64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += counts[b];
    if (cum > rank) return BucketValue(b);
  }
  return BucketValue(kBuckets - 1);
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<MetricRow> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricRow> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    rows.push_back(MetricRow{.name = name,
                             .kind = "counter",
                             .count = c->value()});
  }
  for (const auto& [name, g] : gauges_) {
    rows.push_back(
        MetricRow{.name = name, .kind = "gauge", .value = g->value()});
  }
  for (const auto& [name, h] : histograms_) {
    rows.push_back(MetricRow{.name = name,
                             .kind = "histogram",
                             .count = h->count(),
                             .value = h->Mean(),
                             .p50 = h->Percentile(0.50),
                             .p95 = h->Percentile(0.95),
                             .p99 = h->Percentile(0.99)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  return rows;
}

std::size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace tango::scope
