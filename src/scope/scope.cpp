#include "scope/scope.h"

#include <chrono>

namespace tango::scope {

namespace {
std::int64_t WallNowNs() {
  // Span wall timestamps are trace output only, never simulation state.
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             // TANGOVET_ALLOW_NEXT(telemetry: trace timestamps only)
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void Tracer::Enable(const Config& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.assign(cfg.capacity == 0 ? 1 : cfg.capacity, Slot{});
  wall_clock_ = cfg.wall_clock;
  cursor_ = 0;
  emitted_.store(0, std::memory_order_relaxed);
  dropped_open_.store(0, std::memory_order_relaxed);
  stale_ends_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

SpanId Tracer::Emit(const char* name, const char* category, SimTime at,
                    const SpanIds& ids, SpanId parent, bool instant) {
  if (!enabled()) return kInvalidSpan;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return kInvalidSpan;
  Slot& slot = ring_[cursor_ % ring_.size()];
  if (slot.rec.open()) {
    dropped_open_.fetch_add(1, std::memory_order_relaxed);
  }
  // Bump the generation on every reuse so handles to the old occupant go
  // stale (same scheme as the event pool in sim::Simulator).
  ++slot.gen;
  const SpanId self = MakeHandle(cursor_ % ring_.size(), slot.gen);
  slot.rec = SpanRecord{
      .name = name,
      .category = category,
      .sim_begin = at,
      .sim_end = instant ? at : -1,
      .wall_begin_ns = wall_clock_ ? WallNowNs() : 0,
      .wall_end_ns = 0,
      .self = self,
      .parent = parent,
      .ids = ids,
      .instant = instant,
  };
  ++cursor_;
  emitted_.fetch_add(1, std::memory_order_relaxed);
  return self;
}

SpanId Tracer::Begin(const char* name, const char* category, SimTime at,
                     const SpanIds& ids, SpanId parent) {
  return Emit(name, category, at, ids, parent, /*instant=*/false);
}

SpanId Tracer::Instant(const char* name, const char* category, SimTime at,
                       const SpanIds& ids, SpanId parent) {
  return Emit(name, category, at, ids, parent, /*instant=*/true);
}

void Tracer::End(SpanId span, SimTime at) {
  if (span == kInvalidSpan) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t slot_index = (span & 0xffffffffULL) - 1;
  if (slot_index >= ring_.size()) return;
  Slot& slot = ring_[slot_index];
  if (slot.rec.self != span || slot.gen != (span >> 32)) {
    // The ring wrapped over this span since it began: stale handle.
    stale_ends_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!slot.rec.open()) return;  // instant or already ended
  slot.rec.sim_end = at;
  if (wall_clock_) slot.rec.wall_end_ns = WallNowNs();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  if (ring_.empty()) return out;
  const std::uint64_t live =
      cursor_ < ring_.size() ? cursor_ : static_cast<std::uint64_t>(ring_.size());
  out.reserve(live);
  for (std::uint64_t i = cursor_ - live; i < cursor_; ++i) {
    const SpanRecord& rec = ring_[i % ring_.size()].rec;
    if (rec.used()) out.push_back(rec);
  }
  return out;
}

Tracer& DefaultTracer() {
  static Tracer tracer;
  return tracer;
}

}  // namespace tango::scope
