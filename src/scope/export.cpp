#include "scope/export.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <set>
#include <utility>

namespace tango::scope {

namespace {

// pid/tid layout: 1 = control plane / no id; nodes and services shift by
// 2 so id 0 stays distinguishable from the control-plane lane.
std::int64_t PidOf(const SpanRecord& s) {
  return s.ids.node >= 0 ? s.ids.node + 2 : 1;
}
std::int64_t TidOf(const SpanRecord& s) {
  return s.ids.service >= 0 ? s.ids.service + 2 : 1;
}

void WriteEscaped(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out << '\\';
    out << *s;
  }
}

void WriteEventCommon(std::ostream& out, const SpanRecord& s) {
  out << "\"ts\": " << s.sim_begin << ", \"pid\": " << PidOf(s)
      << ", \"tid\": " << TidOf(s) << ", \"name\": \"";
  WriteEscaped(out, s.name);
  out << "\", \"cat\": \"";
  WriteEscaped(out, s.category[0] == '\0' ? "tango" : s.category);
  out << "\", \"args\": {\"node\": " << s.ids.node
      << ", \"service\": " << s.ids.service
      << ", \"request\": " << s.ids.request << ", \"value\": " << s.ids.value
      << ", \"span\": " << s.self << ", \"parent\": " << s.parent;
  if (s.wall_begin_ns != 0) {
    out << ", \"wall_begin_ns\": " << s.wall_begin_ns;
    if (s.wall_end_ns != 0) out << ", \"wall_end_ns\": " << s.wall_end_ns;
  }
  out << "}";
}

}  // namespace

std::size_t WriteChromeTrace(std::ostream& out,
                             const std::vector<SpanRecord>& spans) {
  out << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n  ";
  };
  // Name the process lanes so Perfetto shows "node N" instead of bare
  // pids. Control plane is pid 1.
  std::set<std::int64_t> pids;
  for (const SpanRecord& s : spans) {
    if (s.used()) pids.insert(PidOf(s));
  }
  pids.insert(1);
  for (std::int64_t pid : pids) {
    sep();
    out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
        << ", \"tid\": 1, \"args\": {\"name\": \"";
    if (pid == 1) {
      out << "control-plane";
    } else {
      out << "node " << pid - 2;
    }
    out << "\"}}";
  }
  std::size_t events = 0;
  for (const SpanRecord& s : spans) {
    if (!s.used() || s.open()) continue;
    sep();
    if (s.instant) {
      out << "{\"ph\": \"i\", \"s\": \"g\", ";
    } else {
      out << "{\"ph\": \"X\", \"dur\": " << s.sim_end - s.sim_begin << ", ";
    }
    WriteEventCommon(out, s);
    out << "}";
    ++events;
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return events;
}

std::size_t WriteChromeTrace(std::ostream& out, const Tracer& tracer) {
  return WriteChromeTrace(out, tracer.Snapshot());
}

std::vector<SpanRecord> MergeSnapshots(
    const std::vector<const Tracer*>& tracers) {
  std::vector<SpanRecord> merged;
  for (std::size_t ring = 0; ring < tracers.size(); ++ring) {
    if (tracers[ring] == nullptr) continue;
    const std::uint64_t tag = (static_cast<std::uint64_t>(ring) + 1) << 48;
    for (SpanRecord rec : tracers[ring]->Snapshot()) {
      if (rec.self != kInvalidSpan) rec.self |= tag;
      if (rec.parent != kInvalidSpan) rec.parent |= tag;
      merged.push_back(rec);
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.sim_begin < b.sim_begin;
                   });
  return merged;
}

std::size_t WriteChromeTrace(std::ostream& out,
                             const std::vector<const Tracer*>& tracers) {
  return WriteChromeTrace(out, MergeSnapshots(tracers));
}

bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<const Tracer*>& tracers) {
  std::ofstream out(path);
  if (!out) return false;
  WriteChromeTrace(out, tracers);
  return static_cast<bool>(out);
}

bool WriteChromeTraceFile(const std::string& path, const Tracer& tracer) {
  std::ofstream out(path);
  if (!out) return false;
  WriteChromeTrace(out, tracer);
  return static_cast<bool>(out);
}

std::size_t WriteMetricsCsv(std::ostream& out,
                            const std::vector<MetricRow>& rows) {
  out << "name,kind,count,value,p50,p95,p99\n";
  for (const MetricRow& r : rows) {
    out << r.name << "," << r.kind << "," << r.count << "," << r.value << ","
        << r.p50 << "," << r.p95 << "," << r.p99 << "\n";
  }
  return rows.size();
}

bool WriteMetricsCsvFile(const std::string& path,
                         const std::vector<MetricRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  WriteMetricsCsv(out, rows);
  return static_cast<bool>(out);
}

std::size_t WriteMetricsJson(std::ostream& out,
                             const std::vector<MetricRow>& rows) {
  out << "[";
  bool first = true;
  for (const MetricRow& r : rows) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"";
    WriteEscaped(out, r.name.c_str());
    out << "\", \"kind\": \"" << r.kind << "\", \"count\": " << r.count
        << ", \"value\": " << r.value << ", \"p50\": " << r.p50
        << ", \"p95\": " << r.p95 << ", \"p99\": " << r.p99 << "}";
  }
  out << "\n]\n";
  return rows.size();
}

}  // namespace tango::scope
