// TangoScope exporters.
//
// Chrome trace_event JSON (the "JSON Array Format" object flavor): load
// the file in https://ui.perfetto.dev or chrome://tracing. Mapping:
//   - ts/dur are sim-time microseconds verbatim (SimTime is already µs);
//   - pid groups by node (pid = node + 2; control-plane spans with no
//     node land on pid 1, named via process_name metadata);
//   - tid groups by service within a node (tid = service + 2, else 1);
//   - complete spans use ph:"X", instants ph:"i" (global scope);
//   - node/service/request/value/parent ride in "args", so a request's
//     causal chain reconstructs by its request id plus parent handles.
// Spans still open at export time are skipped (their end is unknown).
//
// Metric summaries export as CSV (`name,kind,count,value,p50,p95,p99`)
// and as a JSON array of the same rows; eval/export.h wraps the CSV with
// an experiment-label column for multi-run tables.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "scope/metrics.h"
#include "scope/scope.h"

namespace tango::scope {

/// Write `spans` as a Chrome trace_event JSON object. Returns the number
/// of trace events written (metadata records not counted).
std::size_t WriteChromeTrace(std::ostream& out,
                             const std::vector<SpanRecord>& spans);
/// Snapshot `tracer` and write it; usable whether or not the tracer is
/// still enabled (an untouched tracer exports an empty-but-valid trace).
std::size_t WriteChromeTrace(std::ostream& out, const Tracer& tracer);
bool WriteChromeTraceFile(const std::string& path, const Tracer& tracer);

/// Merge the span rings of several tracers (one per shard in the sharded
/// engine — each shard records into its own ring so emission never
/// contends across shards) into one stream ordered by sim_begin, stable
/// within a ring so per-shard causal order survives. Span/parent handles
/// are ring-local; the merge re-tags each record's self/parent with the
/// ring index (bits 48+, untouched by MakeHandle) so handles from
/// different rings can never collide in the merged trace, while parent
/// chains — always intra-shard — keep matching their re-tagged spans.
std::vector<SpanRecord> MergeSnapshots(
    const std::vector<const Tracer*>& tracers);
std::size_t WriteChromeTrace(std::ostream& out,
                             const std::vector<const Tracer*>& tracers);
bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<const Tracer*>& tracers);

/// `name,kind,count,value,p50,p95,p99` with a header row. Returns rows
/// written (excluding the header).
std::size_t WriteMetricsCsv(std::ostream& out,
                            const std::vector<MetricRow>& rows);
bool WriteMetricsCsvFile(const std::string& path,
                         const std::vector<MetricRow>& rows);

/// The same rows as a JSON array of objects.
std::size_t WriteMetricsJson(std::ostream& out,
                             const std::vector<MetricRow>& rows);

}  // namespace tango::scope
