// TangoScope metrics registry: named counters, gauges, and log-bucketed
// histograms behind one queryable surface.
//
// Replaces the ad-hoc counter structs that used to accumulate around the
// codebase (SyncStats-style members bumped inline): a component registers
// each metric once at construction (mutex-protected name lookup), keeps
// the returned pointer, and samples it O(1) on the hot path — a relaxed
// atomic add, no allocation, no lock. tools/lint.py bans new `*Stats`
// structs outside src/scope so future metrics come through here.
//
// Naming convention (see DESIGN.md §12): dot-separated lowercase
// `<subsystem>.<noun>[_<unit>]`, e.g. "sync.pushes", "lc.latency_us",
// "sched.phase.mcmf_solve_us". Names must point at static storage
// (string literals); a name identifies one metric of one kind.
//
// Unlike span tracing, the registry is NOT compile-time gated: it also
// backs always-on bookkeeping (EdgeCloudSystem::sync_stats() is rebuilt
// from registry counters), and a relaxed fetch_add costs the same as the
// plain `++member` it replaced.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tango::scope {

/// Monotonic event count. Add/value are wait-free relaxed atomics.
class Counter {
 public:
  void Add(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-written level (queue depth, utilization, ...).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed histogram of non-negative integer samples (latencies in
/// µs, sizes, counts). Each power-of-two octave is split into
/// 2^kSubBits sub-buckets, so the relative width of a bucket is 2^-kSubBits
/// and a mid-bucket percentile estimate is within ~2^-(kSubBits+1) ≈ 6%
/// of the true value; samples below 2^kSubBits are stored exactly.
/// Observe is a single relaxed atomic add — O(1), allocation-free,
/// thread-safe. ~4 KiB per histogram; register once, not per event.
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;
  // Buckets 0..kSubBuckets-1 hold exact small values; octave e (the
  // values with bit_width e, e in [kSubBits+1, 63]) maps to buckets
  // [(e - kSubBits) << kSubBits, ...+kSubBuckets).
  static constexpr int kBuckets = ((63 - kSubBits) << kSubBits) + kSubBuckets;

  void Observe(std::int64_t v);
  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Nearest-rank percentile (q in [0,1]) over a relaxed snapshot of the
  /// buckets; returns the bucket's representative value (exact below
  /// kSubBuckets, mid-bucket above). 0 when empty.
  double Percentile(double q) const;

  static int BucketOf(std::int64_t v);
  /// Representative value reported for bucket `b`.
  static double BucketValue(int b);

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// One row of MetricRegistry::Snapshot(), ready for CSV/JSON export.
struct MetricRow {
  std::string name;
  const char* kind = "";  // "counter" | "gauge" | "histogram"
  std::int64_t count = 0;  // counter value, or histogram sample count
  double value = 0.0;      // gauge level, or histogram mean
  double p50 = 0.0;        // histograms only
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Register-once, sample-forever metric store. Registration (GetX) takes a
/// mutex and may allocate — do it at construction and keep the pointer;
/// the returned objects live as long as the registry and are themselves
/// lock-free to update. Re-registering a name returns the same object.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// All metrics, sorted by name, with histogram percentiles extracted.
  std::vector<MetricRow> Snapshot() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  // std::map keeps Snapshot() ordered; lookups happen only at
  // registration time, never on the hot path.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tango::scope
