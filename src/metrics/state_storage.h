// The state storage of Figure 3 (component ➋): each master node keeps a
// possibly-stale snapshot of nearby clusters' node states, refreshed by
// periodic Prometheus pushes and QoS-detector reports. Schedulers read the
// snapshot — they never peek at live node objects — so decision staleness is
// modeled faithfully.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace tango::metrics {

/// Snapshot of one node, as pushed by its cluster's monitoring stack.
/// Field names follow §5.2.1: r^{c}_{i,ava}, r^{c}_{i,total}, etc.
struct NodeSnapshot {
  NodeId node;
  ClusterId cluster;
  bool is_master = false;
  Millicores cpu_total = 0;
  Millicores cpu_available = 0;
  MiB mem_total = 0;
  MiB mem_available = 0;
  /// Resources available *to LC requests* under the §4.1 regulations:
  /// idle plus whatever BE currently holds of compressible CPU (and
  /// evictable memory) when the node's allocation policy preempts BE for
  /// LC. −1 means "same as the raw availability" (no preemption).
  Millicores cpu_available_lc = -1;
  MiB mem_available_lc = -1;

  Millicores CpuForLc() const {
    return cpu_available_lc >= 0 ? cpu_available_lc : cpu_available;
  }
  MiB MemForLc() const {
    return mem_available_lc >= 0 ? mem_available_lc : mem_available;
  }
  /// Requests currently queued/executing on the node, by rough class.
  int running_lc = 0;
  int running_be = 0;
  int queued = 0;
  /// Liveness as seen by the monitoring stack: a crashed node's last
  /// snapshot is kept but flagged dead; a node behind a cut link is flagged
  /// unreachable by the viewing master's failure detector. Schedulers must
  /// not route to nodes that fail `Usable()`.
  bool alive = true;
  bool reachable = true;
  bool draining = false;
  bool Usable() const { return alive && reachable && !draining; }
  /// Most recent slack score reported by the QoS detector (min over
  /// services; +1 when idle).
  double slack_score = 1.0;
  SimTime recorded_at = 0;
};

/// Content equality modulo `recorded_at` — the equivalence the delta sync
/// protocol's skip decision must preserve (version equality ⇒ content
/// equality). Used by the TANGO_AUDIT delta-identity checker.
bool SameContent(const NodeSnapshot& a, const NodeSnapshot& b);

/// Per-master view of the (geo-nearby or global) system state.
class StateStorage {
 public:
  /// Upsert a node snapshot (newer timestamps replace older ones).
  void Update(const NodeSnapshot& snap);

  const NodeSnapshot* Find(NodeId node) const;

  /// All snapshots, in NodeId order (deterministic iteration for solvers).
  std::vector<NodeSnapshot> All() const;

  /// Snapshots restricted to one cluster.
  std::vector<NodeSnapshot> ForCluster(ClusterId cluster) const;

  /// Flip the reachability flag on every stored snapshot of one cluster —
  /// the viewing master's failure detector marking a partition (snapshots
  /// are preserved so the view heals instantly when the link does). The
  /// per-snapshot sweep only runs when the flag actually flips, so calling
  /// this every sync period costs O(1) in steady state.
  void MarkClusterReachability(ClusterId cluster, bool reachable);

  /// Record the measured RTT from this master's cluster to another cluster.
  void UpdateRtt(ClusterId to, SimDuration rtt) { rtt_[to] = rtt; }
  std::optional<SimDuration> Rtt(ClusterId to) const;

  std::size_t size() const { return nodes_.size(); }
  void Clear() {
    nodes_.clear();
    rtt_.clear();
    cluster_reachable_.clear();
  }

  /// Number of Update() calls that created a new entry (an allocation) —
  /// flat in steady state, when every push hits an existing node.
  std::int64_t inserts() const { return inserts_; }

 private:
  std::map<NodeId, NodeSnapshot> nodes_;
  std::map<ClusterId, SimDuration> rtt_;
  std::map<ClusterId, bool> cluster_reachable_;  // last marked flag
  std::int64_t inserts_ = 0;
};

}  // namespace tango::metrics
