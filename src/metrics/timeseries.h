// A tiny in-process stand-in for Prometheus: named gauges and counters whose
// observations are stored as (time, value) pairs and can be queried by range.
// The k8s substrate pushes node metrics here every scrape period; the state
// storage and the evaluation harness read them back.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"

namespace tango::metrics {

struct Sample {
  SimTime time;
  double value;
};

class Series {
 public:
  /// Append a sample. Times must be non-decreasing (simulation time is
  /// monotone); At() and MeanOver() binary-search on that order.
  void Append(SimTime t, double v) {
    samples_.push_back({t, v});
    prefix_.push_back((prefix_.empty() ? 0.0 : prefix_.back()) + v);
  }
  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// Most recent value at or before `t` (0 if none).
  double At(SimTime t) const;
  double Latest() const { return samples_.empty() ? 0.0 : samples_.back().value; }

  /// Mean of samples in (from, to]. O(log n): window bounds by binary
  /// search, window sum from the running prefix sums.
  double MeanOver(SimTime from, SimTime to) const;

 private:
  std::vector<Sample> samples_;
  std::vector<double> prefix_;  // prefix_[i] = Σ samples_[0..i].value
};

class TimeSeriesStore {
 public:
  /// Record an instantaneous measurement.
  void Gauge(const std::string& name, SimTime t, double value) {
    series_[name].Append(t, value);
  }

  /// Increment a monotonically growing counter; the stored sample is the
  /// running total.
  void CounterAdd(const std::string& name, SimTime t, double delta) {
    auto& c = counters_[name];
    c += delta;
    series_[name].Append(t, c);
  }

  double CounterValue(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
  }

  const Series* Find(const std::string& name) const {
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
  }

  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Series> series_;
  std::map<std::string, double> counters_;
};

}  // namespace tango::metrics
