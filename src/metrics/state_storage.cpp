#include "metrics/state_storage.h"

#include "audit/audit.h"

namespace tango::metrics {

bool SameContent(const NodeSnapshot& a, const NodeSnapshot& b) {
  return a.node == b.node && a.cluster == b.cluster &&
         a.is_master == b.is_master && a.cpu_total == b.cpu_total &&
         a.cpu_available == b.cpu_available && a.mem_total == b.mem_total &&
         a.mem_available == b.mem_available &&
         a.cpu_available_lc == b.cpu_available_lc &&
         a.mem_available_lc == b.mem_available_lc &&
         a.running_lc == b.running_lc && a.running_be == b.running_be &&
         a.queued == b.queued && a.alive == b.alive &&
         a.draining == b.draining && a.slack_score == b.slack_score;
}

void StateStorage::Update(const NodeSnapshot& snap) {
  auto it = nodes_.find(snap.node);
  if (it == nodes_.end()) {
    ++inserts_;
    it = nodes_.emplace(snap.node, snap).first;
  } else if (it->second.recorded_at <= snap.recorded_at) {
    it->second = snap;
  } else {
    return;
  }
  // Keep freshly pushed snapshots consistent with the last reachability mark
  // (the sweep in MarkClusterReachability only runs on flips).
  auto r = cluster_reachable_.find(it->second.cluster);
  if (r != cluster_reachable_.end()) it->second.reachable = r->second;
}

void StateStorage::MarkClusterReachability(ClusterId cluster,
                                           bool reachable) {
  auto it = cluster_reachable_.find(cluster);
  if (it != cluster_reachable_.end() && it->second == reachable) return;
  cluster_reachable_[cluster] = reachable;
  for (auto& [id, snap] : nodes_) {
    if (snap.cluster == cluster) snap.reachable = reachable;
  }
}

const NodeSnapshot* StateStorage::Find(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<NodeSnapshot> StateStorage::All() const {
  std::vector<NodeSnapshot> out;
  out.reserve(nodes_.size());
  for (const auto& [id, snap] : nodes_) out.push_back(snap);
  return out;
}

std::vector<NodeSnapshot> StateStorage::ForCluster(ClusterId cluster) const {
  std::vector<NodeSnapshot> out;
  for (const auto& [id, snap] : nodes_) {
    if (snap.cluster == cluster) out.push_back(snap);
  }
  return out;
}

std::optional<SimDuration> StateStorage::Rtt(ClusterId to) const {
  auto it = rtt_.find(to);
  if (it == rtt_.end()) return std::nullopt;
  return it->second;
}

}  // namespace tango::metrics
