#include "metrics/timeseries.h"

#include <algorithm>

namespace tango::metrics {

double Series::At(SimTime t) const {
  if (samples_.empty()) return 0.0;
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](SimTime lhs, const Sample& s) { return lhs < s.time; });
  if (it == samples_.begin()) return 0.0;
  return std::prev(it)->value;
}

double Series::MeanOver(SimTime from, SimTime to) const {
  // (from, to] ⇒ [first time > from, first time > to).
  const auto after = [](SimTime lhs, const Sample& s) { return lhs < s.time; };
  const auto lo =
      std::upper_bound(samples_.begin(), samples_.end(), from, after);
  const auto hi = std::upper_bound(lo, samples_.end(), to, after);
  if (lo == hi) return 0.0;
  const auto lo_i = static_cast<std::size_t>(lo - samples_.begin());
  const auto hi_i = static_cast<std::size_t>(hi - samples_.begin());
  const double sum =
      prefix_[hi_i - 1] - (lo_i == 0 ? 0.0 : prefix_[lo_i - 1]);
  return sum / static_cast<double>(hi_i - lo_i);
}

std::vector<std::string> TimeSeriesStore::Names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [k, v] : series_) out.push_back(k);
  return out;
}

}  // namespace tango::metrics
