#include "metrics/timeseries.h"

#include <algorithm>

namespace tango::metrics {

double Series::At(SimTime t) const {
  if (samples_.empty()) return 0.0;
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](SimTime lhs, const Sample& s) { return lhs < s.time; });
  if (it == samples_.begin()) return 0.0;
  return std::prev(it)->value;
}

double Series::MeanOver(SimTime from, SimTime to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.time > from && s.time <= to) {
      sum += s.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<std::string> TimeSeriesStore::Names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [k, v] : series_) out.push_back(k);
  return out;
}

}  // namespace tango::metrics
