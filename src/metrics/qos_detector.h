// The QoS detector of Figure 3 (component ➍): collects per-(node, service)
// completion latencies of LC requests over a sliding 100 ms window and
// reports tail latency and the slack score of §4.3,
//
//     δ_k(n_i^b) = 1 − ξ_i^k / γ^k,
//
// where ξ is the p95 latency in the window and γ the service's QoS target.
#pragma once

#include <map>
#include <utility>

#include "common/ids.h"
#include "common/stats.h"
#include "common/units.h"

namespace tango::metrics {

class QosDetector {
 public:
  explicit QosDetector(SimDuration window = 100 * kMillisecond)
      : window_(window) {}

  /// Record one completed LC request.
  void Observe(SimTime now, NodeId node, ServiceId service,
               SimDuration latency);

  /// p95 latency (µs) of `service` at `node` in the current window; 0 when
  /// no sample exists.
  double TailLatency(SimTime now, NodeId node, ServiceId service,
                     double quantile = 0.95);

  /// Slack score δ = 1 − ξ/γ. Returns +1 (perfectly slack) when no sample
  /// exists — an idle service is never penalized.
  double SlackScore(SimTime now, NodeId node, ServiceId service,
                    SimDuration qos_target);

  /// Number of samples currently in the window.
  std::size_t SampleCount(SimTime now, NodeId node, ServiceId service);

  /// Visit every (node, service) window holding at least one sample after
  /// eviction: `visit(node, service, sample_count)`, in ascending
  /// (node, service) order. Windows exist only for pairs that ever observed
  /// a completion, so callers iterating "everything with signal" skip the
  /// idle node×service cross-product entirely.
  template <typename Visitor>
  void ForEachActiveWindow(SimTime now, Visitor&& visit) {
    for (auto& [key, win] : windows_) {
      win.Evict(now);
      if (win.empty()) continue;
      visit(key.first, key.second, win.size());
    }
  }

 private:
  using Key = std::pair<NodeId, ServiceId>;
  SimDuration window_;
  std::map<Key, WindowedSamples> windows_;
};

}  // namespace tango::metrics
