#include "metrics/qos_detector.h"

namespace tango::metrics {

void QosDetector::Observe(SimTime now, NodeId node, ServiceId service,
                          SimDuration latency) {
  auto [it, inserted] =
      windows_.try_emplace({node, service}, WindowedSamples(window_));
  it->second.Add(now, static_cast<double>(latency));
}

double QosDetector::TailLatency(SimTime now, NodeId node, ServiceId service,
                                double quantile) {
  auto it = windows_.find({node, service});
  if (it == windows_.end()) return 0.0;
  it->second.Evict(now);
  if (it->second.empty()) return 0.0;
  return it->second.Percentile(quantile);
}

double QosDetector::SlackScore(SimTime now, NodeId node, ServiceId service,
                               SimDuration qos_target) {
  const double xi = TailLatency(now, node, service);
  if (xi <= 0.0) return 1.0;
  if (qos_target <= 0) return 1.0;
  return 1.0 - xi / static_cast<double>(qos_target);
}

std::size_t QosDetector::SampleCount(SimTime now, NodeId node,
                                     ServiceId service) {
  auto it = windows_.find({node, service});
  if (it == windows_.end()) return 0;
  it->second.Evict(now);
  return it->second.size();
}

}  // namespace tango::metrics
