#include "gnn/encoder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tango::gnn {

using nn::Matrix;
using nn::Var;

namespace {

/// Row-normalized mean over sampled neighborhoods (self excluded; rows of
/// isolated nodes are zero). The layer concatenates this neighbor mean with
/// the node's own vector, per GraphSAGE's Algorithm 1 (Hamilton et al.) —
/// including self in the mean instead would make embeddings collapse on
/// dense subgraphs (e.g. a cluster's full LAN mesh), leaving the policy
/// unable to tell same-cluster workers apart.
Matrix SampledMeanMatrix(const GraphBatch& g, int sample_p, Rng& rng) {
  const int n = g.num_nodes();
  Matrix agg(n, n);
  for (int i = 0; i < n; ++i) {
    const auto& nbrs = g.adj[static_cast<std::size_t>(i)];
    std::vector<int> chosen;
    if (static_cast<int>(nbrs.size()) <= sample_p) {
      chosen.assign(nbrs.begin(), nbrs.end());
    } else {
      // Sample p without replacement (partial Fisher-Yates on a copy).
      std::vector<int> pool(nbrs);
      for (int k = 0; k < sample_p; ++k) {
        const auto j = static_cast<std::size_t>(
            rng.UniformInt(k, static_cast<std::int64_t>(pool.size()) - 1));
        std::swap(pool[static_cast<std::size_t>(k)], pool[j]);
        chosen.push_back(pool[static_cast<std::size_t>(k)]);
      }
    }
    if (chosen.empty()) continue;
    const float w = 1.0f / static_cast<float>(chosen.size());
    for (int j : chosen) agg.at(i, j) = w;
  }
  return agg;
}

/// Symmetric GCN normalization D^{-1/2}(A+I)D^{-1/2}.
Matrix GcnNormMatrix(const GraphBatch& g) {
  const int n = g.num_nodes();
  Matrix a(n, n);
  std::vector<float> deg(static_cast<std::size_t>(n), 1.0f);  // self loop
  for (int i = 0; i < n; ++i) {
    a.at(i, i) = 1.0f;
    for (int j : g.adj[static_cast<std::size_t>(i)]) {
      a.at(i, j) = 1.0f;
      deg[static_cast<std::size_t>(i)] += 1.0f;
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (a.at(i, j) != 0.0f) {
        a.at(i, j) /= std::sqrt(deg[static_cast<std::size_t>(i)] *
                                deg[static_cast<std::size_t>(j)]);
      }
    }
  }
  return a;
}

/// Adjacency+self 0/1 mask for GAT attention.
Matrix AdjacencyMask(const GraphBatch& g) {
  const int n = g.num_nodes();
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) {
    m.at(i, i) = 1.0f;
    for (int j : g.adj[static_cast<std::size_t>(i)]) m.at(i, j) = 1.0f;
  }
  return m;
}

/// Horizontal concat [a | b] on raw matrices — the value half of the taped
/// nn::ConcatCols.
Matrix ConcatColsMatrix(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out.at(r, c) = a.at(r, c);
    for (int c = 0; c < b.cols(); ++c) out.at(r, a.cols() + c) = b.at(r, c);
  }
  return out;
}

/// Re-pack `layers` when `version` moved past what `packed` was built at.
void RepackLayers(const std::vector<nn::Linear>& layers,
                  std::vector<nn::PackedLinear>* packed,
                  std::uint64_t* packed_version, std::uint64_t version) {
  if (*packed_version == version && !packed->empty()) return;
  packed->clear();
  packed->reserve(layers.size());
  for (const auto& l : layers) packed->emplace_back(l.weight(), l.bias());
  *packed_version = version;
}

}  // namespace

bool Encoder::EncodeInference(const GraphBatch& /*g*/, Rng& /*rng*/,
                              std::uint64_t /*param_version*/,
                              nn::Matrix* /*out*/) {
  return false;
}

GraphSage::GraphSage(nn::ParamStore& store, const std::string& name,
                     int in_dim, int hidden_dim, int layers, int sample_p,
                     Rng& rng)
    : hidden_(hidden_dim), sample_p_(sample_p) {
  TANGO_CHECK(layers >= 1, "need >= 1 layer");
  int d = in_dim;
  for (int l = 0; l < layers; ++l) {
    // CONCAT(self, neighbor-mean) doubles the input width.
    layers_.emplace_back(store, name + ".sage" + std::to_string(l), 2 * d,
                         hidden_dim, rng);
    d = hidden_dim;
  }
}

Var GraphSage::Encode(const GraphBatch& g, Rng& rng) {
  Var h = nn::Constant(g.features);
  for (const auto& layer : layers_) {
    const Var agg = nn::Constant(SampledMeanMatrix(g, sample_p_, rng));
    const Var neigh = nn::MatMul(agg, h);
    h = nn::Relu(layer.Forward(nn::ConcatCols(h, neigh)));
  }
  return h;
}

bool GraphSage::EncodeInference(const GraphBatch& g, Rng& rng,
                                std::uint64_t param_version,
                                nn::Matrix* out) {
  RepackLayers(layers_, &packed_, &packed_version_, param_version);
  Matrix h = g.features;
  Matrix next;
  for (std::size_t l = 0; l < packed_.size(); ++l) {
    // Same sampling call as Encode(): the RNG stream stays in lock-step.
    const Matrix agg = SampledMeanMatrix(g, sample_p_, rng);
    const Matrix neigh = agg.MatMul(h);
    packed_[l].Forward(ConcatColsMatrix(h, neigh), &next);
    nn::ReluInPlace(&next);
    h = std::move(next);
    next = Matrix();
  }
  *out = std::move(h);
  return true;
}

Gcn::Gcn(nn::ParamStore& store, const std::string& name, int in_dim,
         int hidden_dim, int layers, Rng& rng)
    : hidden_(hidden_dim) {
  TANGO_CHECK(layers >= 1, "need >= 1 layer");
  int d = in_dim;
  for (int l = 0; l < layers; ++l) {
    layers_.emplace_back(store, name + ".gcn" + std::to_string(l), d,
                         hidden_dim, rng);
    d = hidden_dim;
  }
}

Var Gcn::Encode(const GraphBatch& g, Rng& /*rng*/) {
  const Var norm = nn::Constant(GcnNormMatrix(g));
  Var h = nn::Constant(g.features);
  for (const auto& layer : layers_) {
    h = nn::Relu(layer.Forward(nn::MatMul(norm, h)));
  }
  return h;
}

bool Gcn::EncodeInference(const GraphBatch& g, Rng& /*rng*/,
                          std::uint64_t param_version, nn::Matrix* out) {
  RepackLayers(layers_, &packed_, &packed_version_, param_version);
  const Matrix norm = GcnNormMatrix(g);
  Matrix h = g.features;
  Matrix next;
  for (std::size_t l = 0; l < packed_.size(); ++l) {
    packed_[l].Forward(norm.MatMul(h), &next);
    nn::ReluInPlace(&next);
    h = std::move(next);
    next = Matrix();
  }
  *out = std::move(h);
  return true;
}

Gat::Gat(nn::ParamStore& store, const std::string& name, int in_dim,
         int hidden_dim, int layers, Rng& rng)
    : hidden_(hidden_dim) {
  TANGO_CHECK(layers >= 1, "need >= 1 layer");
  int d = in_dim;
  for (int l = 0; l < layers; ++l) {
    const std::string base = name + ".gat" + std::to_string(l);
    layers_.push_back(Layer{
        nn::Linear(store, base + ".proj", d, hidden_dim, rng),
        store.Create(base + ".a_self", hidden_dim, 1, rng),
        store.Create(base + ".a_neigh", hidden_dim, 1, rng)});
    d = hidden_dim;
  }
}

Var Gat::Encode(const GraphBatch& g, Rng& /*rng*/) {
  const int n = g.num_nodes();
  const Matrix mask = AdjacencyMask(g);

  Var h = nn::Constant(g.features);
  for (const auto& layer : layers_) {
    const Var hw = layer.proj.Forward(h);               // N×D
    const Var f = nn::MatMul(hw, layer.attn_self);      // N×1: a_selfᵀ·Wh_i
    const Var gvec = nn::MatMul(hw, layer.attn_neigh);  // N×1: a_neighᵀ·Wh_j
    // Attention coefficients α_ij = softmax_j(leakyrelu(f_i + g_j)) over
    // the neighborhood (plus self). The coefficients are treated as
    // constants w.r.t. the parameters (detached attention): gradients flow
    // through the value path α·(HW), which is sufficient at the sizes the
    // ablation uses and keeps the op set small.
    Matrix alpha(n, n);
    for (int i = 0; i < n; ++i) {
      float mx = -1e30f;
      for (int j = 0; j < n; ++j) {
        if (mask.at(i, j) == 0.0f) continue;
        const float s = f->value.at(i, 0) + gvec->value.at(j, 0);
        const float e = s > 0.0f ? s : 0.2f * s;
        alpha.at(i, j) = e;
        mx = std::max(mx, e);
      }
      float denom = 0.0f;
      for (int j = 0; j < n; ++j) {
        if (mask.at(i, j) == 0.0f) continue;
        alpha.at(i, j) = std::exp(alpha.at(i, j) - mx);
        denom += alpha.at(i, j);
      }
      if (denom > 0.0f) {
        for (int j = 0; j < n; ++j) {
          if (mask.at(i, j) != 0.0f) alpha.at(i, j) /= denom;
        }
      }
    }
    h = nn::Relu(nn::MatMul(nn::Constant(std::move(alpha)), hw));
  }
  return h;
}

NativeEncoder::NativeEncoder(nn::ParamStore& store, const std::string& name,
                             int in_dim, int hidden_dim, Rng& rng)
    : proj_(store, name + ".native", in_dim, hidden_dim, rng),
      hidden_(hidden_dim) {}

Var NativeEncoder::Encode(const GraphBatch& g, Rng& /*rng*/) {
  return nn::Relu(proj_.Forward(nn::Constant(g.features)));
}

bool NativeEncoder::EncodeInference(const GraphBatch& g, Rng& /*rng*/,
                                    std::uint64_t param_version,
                                    nn::Matrix* out) {
  if (packed_version_ != param_version) {
    packed_ = nn::PackedLinear(proj_.weight(), proj_.bias());
    packed_version_ = param_version;
  }
  packed_.Forward(g.features, out);
  nn::ReluInPlace(out);
  return true;
}

const char* EncoderKindName(EncoderKind k) {
  switch (k) {
    case EncoderKind::kGraphSage:
      return "GraphSAGE";
    case EncoderKind::kGcn:
      return "GCN";
    case EncoderKind::kGat:
      return "GAT";
    case EncoderKind::kNative:
      return "Native";
  }
  return "?";
}

std::unique_ptr<Encoder> MakeEncoder(EncoderKind kind, nn::ParamStore& store,
                                     const std::string& name, int in_dim,
                                     int hidden_dim, Rng& rng) {
  switch (kind) {
    case EncoderKind::kGraphSage:
      return std::make_unique<GraphSage>(store, name, in_dim, hidden_dim,
                                         /*layers=*/2, /*sample_p=*/3, rng);
    case EncoderKind::kGcn:
      return std::make_unique<Gcn>(store, name, in_dim, hidden_dim,
                                   /*layers=*/2, rng);
    case EncoderKind::kGat:
      return std::make_unique<Gat>(store, name, in_dim, hidden_dim,
                                   /*layers=*/2, rng);
    case EncoderKind::kNative:
      return std::make_unique<NativeEncoder>(store, name, in_dim, hidden_dim,
                                             rng);
  }
  return nullptr;
}

}  // namespace tango::gnn
