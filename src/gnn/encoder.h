// Graph encoders for the centralized BE scheduler (§5.3.2).
//
// The paper's DCG-BE uses GraphSAGE (2-layer mean aggregation with neighbor
// sampling p); Figure 11(d) ablates it against GCN, GAT, and a native (no
// GNN) A2C. All four are implemented here on top of the autograd engine.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/module.h"
#include "nn/packed.h"

namespace tango::gnn {

/// One encoding input: node features plus adjacency.
struct GraphBatch {
  nn::Matrix features;               // N×F
  std::vector<std::vector<int>> adj; // adjacency lists (no self loops)
  int num_nodes() const { return features.rows(); }
};

class Encoder {
 public:
  virtual ~Encoder() = default;
  /// Encode a graph into per-node embeddings (N×out_dim). `rng` drives
  /// neighbor sampling where the encoder uses it.
  virtual nn::Var Encode(const GraphBatch& g, Rng& rng) = 0;
  /// Tape-free inference encode (TangoSolve packed path): bit-identical
  /// embeddings to Encode()->value, produced through pre-packed layer
  /// weights without allocating autograd nodes. `param_version` invalidates
  /// the packed cache — pass a counter that advances on every training
  /// step. Consumes exactly the RNG draws Encode() would (neighbor
  /// sampling), so callers can swap paths without desynchronizing streams.
  /// Returns false when the encoder has no packed path (GAT's data-
  /// dependent attention) — the caller falls back to Encode().
  virtual bool EncodeInference(const GraphBatch& g, Rng& rng,
                               std::uint64_t param_version, nn::Matrix* out);
  virtual int out_dim() const = 0;
  virtual std::string name() const = 0;
};

/// GraphSAGE with mean aggregation (Hamilton et al. 2017), Eq. 9 of the
/// paper: v^{l+1}_i = σ(W · MEAN(v^l_i ∪ {v^l_j : j ∈ N(i)})), with at most
/// `sample_p` neighbors sampled without replacement per node and L layers.
class GraphSage : public Encoder {
 public:
  GraphSage(nn::ParamStore& store, const std::string& name, int in_dim,
            int hidden_dim, int layers, int sample_p, Rng& rng);
  nn::Var Encode(const GraphBatch& g, Rng& rng) override;
  bool EncodeInference(const GraphBatch& g, Rng& rng,
                       std::uint64_t param_version, nn::Matrix* out) override;
  int out_dim() const override { return hidden_; }
  std::string name() const override { return "GraphSAGE"; }
  int sample_p() const { return sample_p_; }

 private:
  std::vector<nn::Linear> layers_;
  std::vector<nn::PackedLinear> packed_;
  std::uint64_t packed_version_ = ~std::uint64_t{0};
  int hidden_;
  int sample_p_;
};

/// Two-layer GCN with symmetric normalization D^{-1/2}(A+I)D^{-1/2}.
class Gcn : public Encoder {
 public:
  Gcn(nn::ParamStore& store, const std::string& name, int in_dim,
      int hidden_dim, int layers, Rng& rng);
  nn::Var Encode(const GraphBatch& g, Rng& rng) override;
  bool EncodeInference(const GraphBatch& g, Rng& rng,
                       std::uint64_t param_version, nn::Matrix* out) override;
  int out_dim() const override { return hidden_; }
  std::string name() const override { return "GCN"; }

 private:
  std::vector<nn::Linear> layers_;
  std::vector<nn::PackedLinear> packed_;
  std::uint64_t packed_version_ = ~std::uint64_t{0};
  int hidden_;
};

/// Single-head GAT layers with LeakyReLU attention over adjacency (+self).
class Gat : public Encoder {
 public:
  Gat(nn::ParamStore& store, const std::string& name, int in_dim,
      int hidden_dim, int layers, Rng& rng);
  nn::Var Encode(const GraphBatch& g, Rng& rng) override;
  int out_dim() const override { return hidden_; }
  std::string name() const override { return "GAT"; }

 private:
  struct Layer {
    nn::Linear proj;
    nn::Var attn_self;   // D×1
    nn::Var attn_neigh;  // D×1
  };
  std::vector<Layer> layers_;
  int hidden_;
};

/// No topology encoding: a per-node linear projection of raw features
/// (Figure 11(d)'s "Native-A2C").
class NativeEncoder : public Encoder {
 public:
  NativeEncoder(nn::ParamStore& store, const std::string& name, int in_dim,
                int hidden_dim, Rng& rng);
  nn::Var Encode(const GraphBatch& g, Rng& rng) override;
  bool EncodeInference(const GraphBatch& g, Rng& rng,
                       std::uint64_t param_version, nn::Matrix* out) override;
  int out_dim() const override { return hidden_; }
  std::string name() const override { return "Native"; }

 private:
  nn::Linear proj_;
  nn::PackedLinear packed_;
  std::uint64_t packed_version_ = ~std::uint64_t{0};
  int hidden_;
};

enum class EncoderKind { kGraphSage, kGcn, kGat, kNative };
const char* EncoderKindName(EncoderKind k);

/// Factory with the paper's defaults (L = 2, p = 3 as in Figure 7).
std::unique_ptr<Encoder> MakeEncoder(EncoderKind kind, nn::ParamStore& store,
                                     const std::string& name, int in_dim,
                                     int hidden_dim, Rng& rng);

}  // namespace tango::gnn
