#include "k8s/node.h"

#include <algorithm>
#include <cmath>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/logging.h"
#include "storm/interference.h"

namespace tango::k8s {

namespace {

using OrderLevel = audit::checks::DvpaOrderChecker::Level;

/// D-VPA ordered CPU write against the node's own hierarchy: the direction
/// is chosen from the current pod-level bound (§4.2 — expand pod→container,
/// shrink container→pod), so neither write can bounce off the parent-bound
/// EINVAL. The order checker audits level order and verdicts under
/// TANGO_AUDIT.
void OrderedQuotaWrite(cgroup::Hierarchy& h, const std::string& pod_path,
                       const std::string& container_path, std::int64_t quota,
                       SimTime now, std::int32_t node, std::int32_t service) {
  audit::checks::DvpaOrderChecker order(now, node, service);
  const cgroup::Group* pod = h.Find(pod_path);
  const std::int64_t old_pod =
      pod != nullptr ? pod->knobs().cpu_cfs_quota_us : -1;
  order.BeginKind("cpu.cfs_quota_us", old_pod, quota);
  const bool shrink = old_pod >= 0 && quota < old_pod;
  const auto write = [&](const std::string& path, OrderLevel level) {
    order.OnWrite(level,
                  h.WriteCpuQuota(path, quota) == cgroup::WriteResult::kOk);
  };
  if (shrink) {
    write(container_path, OrderLevel::kContainer);
    write(pod_path, OrderLevel::kPod);
  } else {
    write(pod_path, OrderLevel::kPod);
    write(container_path, OrderLevel::kContainer);
  }
  TANGO_SCOPE_INSTANT(shrink ? "dvpa.cpu.shrink" : "dvpa.cpu.expand", "hrm",
                      now, .node = node, .service = service, .value = quota);
}

/// Memory twin of OrderedQuotaWrite.
void OrderedMemoryWrite(cgroup::Hierarchy& h, const std::string& pod_path,
                        const std::string& container_path, MiB limit,
                        SimTime now, std::int32_t node, std::int32_t service) {
  audit::checks::DvpaOrderChecker order(now, node, service);
  const cgroup::Group* pod = h.Find(pod_path);
  const MiB old_pod = pod != nullptr ? pod->knobs().memory_limit : -1;
  order.BeginKind("memory.limit_in_bytes", old_pod, limit);
  const bool shrink = old_pod >= 0 && limit < old_pod;
  const auto write = [&](const std::string& path, OrderLevel level) {
    order.OnWrite(level,
                  h.WriteMemoryLimit(path, limit) ==
                      cgroup::WriteResult::kOk);
  };
  if (shrink) {
    write(container_path, OrderLevel::kContainer);
    write(pod_path, OrderLevel::kPod);
  } else {
    write(pod_path, OrderLevel::kPod);
    write(container_path, OrderLevel::kContainer);
  }
  TANGO_SCOPE_INSTANT(shrink ? "dvpa.mem.shrink" : "dvpa.mem.expand", "hrm",
                      now, .node = node, .service = service, .value = limit);
}

}  // namespace

WorkerNode::WorkerNode(sim::Simulator* sim, NodeSpec spec,
                       const workload::ServiceCatalog* catalog,
                       const AllocationPolicy* policy, Callbacks callbacks,
                       Tunables tunables)
    : sim_(sim),
      spec_(spec),
      catalog_(catalog),
      policy_(policy),
      callbacks_(std::move(callbacks)),
      tunables_(tunables) {
  TANGO_CHECK(sim_ && catalog_ && policy_, "node wiring incomplete");
  // Periodic queue hygiene: abandon stale LC, bounce timed-out BE. A
  // first-class periodic event — one pool entry re-armed in place.
  sim_->StartPeriodic(sim_->Now() + kSecond, kSecond,
                      [this]() { SweepQueues(); });
}

void WorkerNode::SetPolicy(const AllocationPolicy* policy) {
  TANGO_CHECK(policy != nullptr, "null policy");
  policy_ = policy;
  MarkDirty();  // PreemptsBeForLc may differ, changing the LC-available view
  Recompute();
}

ExecSlot WorkerNode::MakeSlot(const workload::Request& r,
                              SimTime enqueued) const {
  const auto& svc = catalog_->Get(r.service);
  ExecSlot slot;
  slot.request = r.id;
  slot.service = r.service;
  slot.is_lc = svc.is_lc();
  slot.need = policy_->EffectiveDemand(spec_.id, svc);
  slot.remaining_work = svc.cpu_work() * r.work_scale;
  slot.enqueued = enqueued;
  return slot;
}

void WorkerNode::Enqueue(const workload::Request& request) {
  TANGO_CHECK(alive_, "enqueue on crashed node %d", spec_.id.value);
  const auto& svc = catalog_->Get(request.service);
  Queued q{request, sim_->Now()};
  if (svc.is_lc()) {
    queue_lc_.push_back(q);
  } else {
    queue_be_.push_back(q);
  }
  MarkDirty();
  TryAdmit();
}

MiB WorkerNode::MemInUseInternal() const {
  MiB used = 0;
  for (const auto& r : running_) used += r.slot.need.mem;
  return used;
}

std::vector<workload::Request> WorkerNode::Crash() {
  std::vector<workload::Request> lost;
  if (!alive_) return lost;
  alive_ = false;
  draining_ = false;
  for (auto& r : running_) {
    if (r.completion != sim::kInvalidEvent) sim_->Cancel(r.completion);
    if (r.activation != sim::kInvalidEvent) sim_->Cancel(r.activation);
    scope::EndSpan(r.span, sim_->Now());
    workload::Request req;
    req.id = r.slot.request;
    req.service = r.slot.service;
    lost.push_back(req);
  }
  running_.clear();
  for (const auto& q : queue_lc_) lost.push_back(q.request);
  for (const auto& q : queue_be_) lost.push_back(q.request);
  queue_lc_.clear();
  queue_be_.clear();
  MarkDirty();
  RefreshUsage();
  return lost;
}

void WorkerNode::Recover() {
  alive_ = true;
  MarkDirty();
}

std::vector<workload::Request> WorkerNode::Drain() {
  std::vector<workload::Request> displaced;
  if (!alive_) return displaced;
  draining_ = true;
  for (const auto& q : queue_lc_) displaced.push_back(q.request);
  for (const auto& q : queue_be_) displaced.push_back(q.request);
  queue_lc_.clear();
  queue_be_.clear();
  MarkDirty();
  return displaced;
}

void WorkerNode::Undrain() {
  if (!alive_) return;
  draining_ = false;
  MarkDirty();
  TryAdmit();
}

void WorkerNode::TryAdmit() {
  if (!alive_ || draining_) return;
  bool admitted_any = false;
  // LC first — the regulations give LC strict priority (§4.1). Within a
  // class the scan is FIFO but a blocked request does not block the ones
  // behind it (each service runs in its own container, so a small request
  // can start while a memory-hungry one waits).
  for (std::deque<Queued>* queue : {&queue_lc_, &queue_be_}) {
    const bool lc_queue = queue == &queue_lc_;
    for (auto it = queue->begin(); it != queue->end();) {
      const Queued& entry = *it;
      const auto& svc = catalog_->Get(entry.request.service);
      // Age-out checks before spending an admission slot.
      if (lc_queue && svc.qos_target > 0) {
        const SimTime deadline =
            entry.request.arrival +
            static_cast<SimDuration>(tunables_.lc_abandon_factor *
                                     static_cast<double>(svc.qos_target));
        if (sim_->Now() > deadline) {
          if (callbacks_.on_abandon) {
            callbacks_.on_abandon(entry.request, sim_->Now());
          }
          it = queue->erase(it);
          MarkDirty();
          continue;
        }
      }
      if (!lc_queue &&
          sim_->Now() - entry.enqueued > tunables_.be_requeue_timeout) {
        if (callbacks_.on_be_return) callbacks_.on_be_return(entry.request);
        it = queue->erase(it);
        MarkDirty();
        continue;
      }

      ExecSlot incoming = MakeSlot(entry.request, entry.enqueued);
      // Physical memory bound (policy limits come on top of this).
      std::vector<ExecSlot> slots;
      slots.reserve(running_.size());
      for (const auto& r : running_) slots.push_back(r.slot);
      AdmitDecision decision = policy_->Admit(spec_, incoming, slots);
      if (decision.admit) {
        MiB mem_after = MemInUseInternal() + incoming.need.mem;
        for (std::size_t idx : decision.evict) {
          mem_after -= running_[idx].slot.need.mem;
        }
        if (mem_after > spec_.capacity.mem) decision.admit = false;
      }
      if (!decision.admit) {
        ++it;  // this one waits; later entries may still fit
        continue;
      }

      // Perform evictions (descending index order keeps indices valid).
      std::vector<std::size_t> evict = decision.evict;
      std::sort(evict.rbegin(), evict.rend());
      for (std::size_t idx : evict) {
        TANGO_CHECK(idx < running_.size(), "evict index out of range");
        TANGO_CHECK(!running_[idx].slot.is_lc, "policy evicted an LC slot");
        EvictRunning(idx);
      }

      Running run;
      run.slot = incoming;
      run.node_arrival = entry.enqueued;
      run.last_update = sim_->Now();
      run.span = scope::BeginSpan("exec", incoming.is_lc ? "lc" : "be",
                                  sim_->Now(),
                                  {.node = spec_.id.value,
                                   .service = incoming.service.value,
                                   .request = incoming.request.value});
      const SimDuration scale_latency = policy_->AdmissionLatency();
      const RequestId rid = incoming.request;
      if (scale_latency > 0) {
        run.active = false;
        run.activation =
            sim_->ScheduleAfter(scale_latency, [this, rid]() {
              for (auto& r : running_) {
                if (r.slot.request == rid) {
                  r.active = true;
                  r.exec_start = sim_->Now();
                  r.activation = sim::kInvalidEvent;
                  ++scaling_ops_;
                  // D-VPA ordered writes, direction chosen per knob from
                  // the current pod bound (a re-admission after the
                  // completion-time floor expands; a reassurance shrink of
                  // the service demand contracts).
                  const std::string cpath =
                      ContainerCgroupPath(r.slot.service);
                  const std::string ppath =
                      cpath.substr(0, cpath.rfind('/'));
                  OrderedQuotaWrite(cgroups_, ppath, cpath,
                                    r.slot.need.cpu * 100, sim_->Now(),
                                    spec_.id.value, r.slot.service.value);
                  OrderedMemoryWrite(cgroups_, ppath, cpath, r.slot.need.mem,
                                     sim_->Now(), spec_.id.value,
                                     r.slot.service.value);
                  Recompute();
                  return;
                }
              }
            });
      } else {
        run.active = true;
        run.exec_start = sim_->Now();
      }
      running_.push_back(std::move(run));
      it = queue->erase(it);
      admitted_any = true;
    }
  }
  if (admitted_any) Recompute();
}

void WorkerNode::AccountProgress() {
  const SimTime now = sim_->Now();
  for (auto& r : running_) {
    if (!r.active || r.grant <= 0) {
      r.last_update = now;
      continue;
    }
    const double elapsed = static_cast<double>(now - r.last_update);
    double progress = static_cast<double>(r.grant) * elapsed;
    // Interference stretches wall-clock per unit of work; only divide when
    // a model actually set a slowdown, so disabled runs keep the original
    // float expression bit-for-bit.
    if (r.slow != 1.0) progress /= r.slow;
    r.slot.remaining_work = std::max(0.0, r.slot.remaining_work - progress);
    r.last_update = now;
  }
}

void WorkerNode::Recompute() {
  if (in_recompute_) return;
  in_recompute_ = true;
  AccountProgress();
  std::vector<ExecSlot> slots;
  slots.reserve(running_.size());
  for (const auto& r : running_) slots.push_back(r.slot);
  std::vector<Millicores> grants;
  policy_->ComputeGrants(spec_, slots, grants);
  TANGO_CHECK(grants.size() == running_.size(), "grant vector size mismatch");
  // Co-location interference: resolve the grants the loop below will assign
  // (activity + speedup cap), then charge each victim with its co-runners'
  // CPU/membw/LLC pressure. Kept in a separate enabled-only pass so the
  // disabled path runs the exact original loop, byte for byte.
  std::vector<double> slows;
  if (tunables_.interference != nullptr && !running_.empty()) {
    std::vector<Millicores> capped(running_.size());
    double cpu_sum = 0.0;
    double membw_sum = 0.0;
    double llc_sum = 0.0;
    for (std::size_t i = 0; i < running_.size(); ++i) {
      const Running& r = running_[i];
      const Millicores g = r.active ? grants[i] : 0;
      const auto cap = static_cast<Millicores>(
          tunables_.speedup_cap * static_cast<double>(r.slot.need.cpu));
      capped[i] = std::min(g, cap);
      const double cores = static_cast<double>(capped[i]) / 1000.0;
      const auto& prof = tunables_.interference->Profile(r.slot.service);
      cpu_sum += static_cast<double>(capped[i]);
      membw_sum += prof.membw_intensity * cores;
      llc_sum += prof.llc_intensity * cores;
    }
    const double node_cores = static_cast<double>(spec_.capacity.cpu) / 1000.0;
    slows.resize(running_.size(), 1.0);
    for (std::size_t i = 0; i < running_.size(); ++i) {
      const Running& r = running_[i];
      const double cores = static_cast<double>(capped[i]) / 1000.0;
      const auto& prof = tunables_.interference->Profile(r.slot.service);
      storm::PressureVec p;  // own contribution excluded per axis
      p.cpu = (cpu_sum - static_cast<double>(capped[i])) /
              static_cast<double>(spec_.capacity.cpu);
      p.membw = (membw_sum - prof.membw_intensity * cores) / node_cores;
      p.llc = (llc_sum - prof.llc_intensity * cores) / node_cores;
      slows[i] = tunables_.interference->Inflation(r.slot.service, p);
    }
  }
  for (std::size_t i = 0; i < running_.size(); ++i) {
    Running& r = running_[i];
    Millicores g = r.active ? grants[i] : 0;
    const auto cap = static_cast<Millicores>(
        tunables_.speedup_cap * static_cast<double>(r.slot.need.cpu));
    g = std::min(g, cap);
    r.grant = g;
    r.slow = slows.empty() ? 1.0 : slows[i];
    if (r.completion != sim::kInvalidEvent) {
      sim_->Cancel(r.completion);
      r.completion = sim::kInvalidEvent;
    }
    if (r.active && g > 0 && r.slot.remaining_work >= 0.0) {
      double work = r.slot.remaining_work;
      if (r.slow != 1.0) work *= r.slow;
      const auto delay = static_cast<SimDuration>(
          std::ceil(work / static_cast<double>(g)));
      const RequestId rid = r.slot.request;
      r.completion =
          sim_->ScheduleAfter(delay, [this, rid]() { CompleteAt(rid); });
    }
  }
  MarkDirty();
  RefreshUsage();
  // §4.1 conservation at the grant boundary: preemption may reshuffle CPU
  // between LC and BE, but the node can never hand out more than it has.
  audit::checks::CheckNodeConservation(sim_->Now(), spec_.id.value,
                                       spec_.capacity.cpu, use_total_,
                                       spec_.capacity.mem, mem_use_);
  in_recompute_ = false;
}

void WorkerNode::RefreshUsage() {
  Millicores total = 0;
  Millicores lc = 0;
  Millicores be = 0;
  MiB mem = 0;
  MiB mem_lc = 0;
  int nlc = 0;
  for (const auto& r : running_) {
    total += r.grant;
    mem += r.slot.need.mem;
    if (r.slot.is_lc) {
      lc += r.grant;
      mem_lc += r.slot.need.mem;
      ++nlc;
    } else {
      be += r.grant;
    }
  }
  if (callbacks_.on_usage_delta &&
      (total != use_total_ || lc != use_lc_ || be != use_be_)) {
    callbacks_.on_usage_delta(total - use_total_, lc - use_lc_,
                              be - use_be_);
  }
  use_total_ = total;
  use_lc_ = lc;
  use_be_ = be;
  mem_use_ = mem;
  mem_use_lc_ = mem_lc;
  running_lc_count_ = nlc;
}

void WorkerNode::CompleteAt(RequestId id) {
  AccountProgress();
  auto it = std::find_if(running_.begin(), running_.end(),
                         [id](const Running& r) {
                           return r.slot.request == id;
                         });
  if (it == running_.end()) return;  // raced with eviction
  if (it->slot.remaining_work > 1.0) {
    // Grant changed since this event was scheduled; Recompute rescheduled a
    // fresh completion, so this firing is stale.
    return;
  }
  Running done = std::move(*it);
  running_.erase(it);
  scope::EndSpan(done.span, sim_->Now());
  // D-VPA reclaims resources on completion: floor the quota (10 millicores)
  // in the direction-correct order — a shrink for any real demand, but an
  // expansion when the demand sat below the floor.
  if (policy_->AdmissionLatency() > 0) {
    const std::string cpath = ContainerCgroupPath(done.slot.service);
    const std::string ppath = cpath.substr(0, cpath.rfind('/'));
    OrderedQuotaWrite(cgroups_, ppath, cpath, 1000, sim_->Now(),
                      spec_.id.value, done.slot.service.value);
  }
  if (callbacks_.on_complete) {
    CompletionInfo info;
    // The request payload is not stored in the slot; reconstruct the parts
    // consumers need. Request metadata travels via RequestLog in the system.
    info.request.id = done.slot.request;
    info.request.service = done.slot.service;
    info.node = spec_.id;
    info.node_arrival = done.node_arrival;
    info.exec_start = done.exec_start;
    info.completed = sim_->Now();
    callbacks_.on_complete(info);
  }
  TryAdmit();
  Recompute();
}

void WorkerNode::EvictRunning(std::size_t index) {
  Running victim = std::move(running_[index]);
  running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(index));
  MarkDirty();
  if (victim.completion != sim::kInvalidEvent) sim_->Cancel(victim.completion);
  if (victim.activation != sim::kInvalidEvent) sim_->Cancel(victim.activation);
  scope::EndSpan(victim.span, sim_->Now());
  TANGO_SCOPE_INSTANT("be.evict", "be", sim_->Now(), .node = spec_.id.value,
                      .service = victim.slot.service.value,
                      .request = victim.slot.request.value);
  if (callbacks_.on_be_return) {
    workload::Request r;
    r.id = victim.slot.request;
    r.service = victim.slot.service;
    callbacks_.on_be_return(r);
  }
}

void WorkerNode::SweepQueues() {
  if (!alive_) return;
  // Re-run the admission loop; its head checks drop stale entries. Also
  // scan non-head entries for expiry so one stuck head cannot hide them.
  for (auto it = queue_lc_.begin(); it != queue_lc_.end();) {
    const auto& svc = catalog_->Get(it->request.service);
    const SimTime deadline =
        it->request.arrival +
        static_cast<SimDuration>(tunables_.lc_abandon_factor *
                                 static_cast<double>(svc.qos_target));
    if (svc.qos_target > 0 && sim_->Now() > deadline) {
      if (callbacks_.on_abandon) callbacks_.on_abandon(it->request, sim_->Now());
      it = queue_lc_.erase(it);
      MarkDirty();
    } else {
      ++it;
    }
  }
  for (auto it = queue_be_.begin(); it != queue_be_.end();) {
    if (sim_->Now() - it->enqueued > tunables_.be_requeue_timeout) {
      if (callbacks_.on_be_return) callbacks_.on_be_return(it->request);
      it = queue_be_.erase(it);
      MarkDirty();
    } else {
      ++it;
    }
  }
  TryAdmit();
}

metrics::NodeSnapshot WorkerNode::Snapshot(SimTime now) const {
  if constexpr (audit::kEnabled) {
    // The O(1) incremental telemetry must agree with a fresh rescan of the
    // running set at every read boundary.
    Millicores total = 0;
    Millicores lc = 0;
    MiB mem = 0;
    for (const auto& r : running_) {
      total += r.grant;
      mem += r.slot.need.mem;
      if (r.slot.is_lc) lc += r.grant;
    }
    audit::checks::CheckUsageCache(now, spec_.id.value, "cpu_in_use",
                                   use_total_, total);
    audit::checks::CheckUsageCache(now, spec_.id.value, "cpu_in_use_lc",
                                   use_lc_, lc);
    audit::checks::CheckUsageCache(now, spec_.id.value, "mem_in_use",
                                   mem_use_, mem);
  }
  if (tunables_.cache_snapshots && snap_cache_version_ == state_version_) {
    snap_cache_.recorded_at = now;
    return snap_cache_;
  }
  snap_cache_ = SnapshotFresh(now);
  snap_cache_version_ = state_version_;
  return snap_cache_;
}

metrics::NodeSnapshot WorkerNode::SnapshotFresh(SimTime now) const {
  metrics::NodeSnapshot s;
  s.node = spec_.id;
  s.cluster = spec_.cluster;
  s.is_master = false;
  s.alive = alive_;
  s.draining = draining_;
  s.cpu_total = spec_.capacity.cpu;
  s.mem_total = spec_.capacity.mem;
  s.recorded_at = now;
  if (!alive_ || draining_) {
    // Dead: nothing to report. Draining: running work still shows, but no
    // capacity is advertised so load-based schedulers steer away too.
    s.cpu_available = 0;
    s.mem_available = 0;
    s.cpu_available_lc = 0;
    s.mem_available_lc = 0;
    s.running_lc = alive_ ? running_lc() : 0;
    s.running_be = alive_ ? running_count() - running_lc() : 0;
    s.queued = alive_ ? queued_count() : 0;
    return s;
  }
  s.cpu_available = std::max<Millicores>(0, spec_.capacity.cpu - cpu_in_use());
  s.mem_available = std::max<MiB>(0, spec_.capacity.mem - mem_in_use());
  if (policy_->PreemptsBeForLc()) {
    // §4.1: LC may take idle resources *and* whatever BE holds — CPU by
    // share compression, memory by eviction.
    s.cpu_available_lc =
        std::max<Millicores>(0, spec_.capacity.cpu - cpu_in_use_lc());
    s.mem_available_lc =
        std::max<MiB>(0, spec_.capacity.mem - mem_in_use_lc());
  }
  s.running_lc = running_lc();
  s.running_be = running_count() - running_lc();
  s.queued = queued_count();
  return s;
}

std::string WorkerNode::ContainerCgroupPath(ServiceId service) {
  const std::string pod = "pod-n" + std::to_string(spec_.id.value) + "-s" +
                          std::to_string(service.value);
  const std::string pod_path = "kubepods/burstable/" + pod;
  if (cgroups_.Find(pod_path) == nullptr) {
    cgroups_.Create("kubepods/burstable", pod);
    cgroups_.Create(pod_path, "c0");
  }
  return pod_path + "/c0";
}

}  // namespace tango::k8s
