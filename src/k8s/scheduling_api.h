// Scheduler plug-in interfaces.
//
// The system calls an LcScheduler per cluster (distributed dispatch, §5.2)
// and one BeScheduler on the central cluster (centralized dispatch, §5.3).
// Schedulers only see the master's StateStorage snapshot — never live node
// state — so information staleness is modeled faithfully.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "metrics/state_storage.h"
#include "workload/trace.h"

namespace tango::k8s {

/// A request sitting in a master's scheduling queue.
struct PendingRequest {
  workload::Request request;
  SimTime enqueued = 0;     // when it entered this queue
  int reschedules = 0;      // times it bounced back (BE re-queue)
};

/// A dispatch decision: send `request` to worker `target`.
struct Assignment {
  RequestId request;
  NodeId target;
};

/// What the last Schedule() round saw and decided — surfaced so the fault
/// ablations can attribute QoS loss to routing (workers excluded for
/// liveness/reachability) vs. capacity (requests left queued).
struct LcRoundStats {
  SimTime at = -1;               // when the round ran (-1 = no round yet)
  int considered = 0;            // snapshots inspected
  int excluded_dead = 0;         // skipped: crashed or draining
  int excluded_unreachable = 0;  // skipped: cluster cut off from this master
  int assigned = 0;              // requests given a target this round
  int left_queued = 0;           // requests deferred to the next round
};

class LcScheduler {
 public:
  virtual ~LcScheduler() = default;

  /// Decide targets for (a subset of) the queued LC requests of `cluster`.
  /// Requests not covered by the returned assignments remain queued for the
  /// next dispatch round. `storage` is the cluster master's state view
  /// (local + geo-nearby clusters).
  virtual std::vector<Assignment> Schedule(
      ClusterId cluster, const std::vector<PendingRequest>& queue,
      const metrics::StateStorage& storage, SimTime now) = 0;

  virtual std::string name() const = 0;

  /// Wall-clock seconds spent inside Schedule() so far (response-time
  /// accounting for the §7.2 timing claims).
  virtual double decision_seconds() const { return 0.0; }
  virtual std::int64_t decisions() const { return 0; }

  /// Routing stats of the most recent Schedule() round. Schedulers that do
  /// not track them return the default (at = -1).
  virtual LcRoundStats last_round_stats() const { return LcRoundStats{}; }
  /// Cumulative counterpart across all rounds.
  virtual LcRoundStats total_round_stats() const { return LcRoundStats{}; }
};

class BeScheduler {
 public:
  virtual ~BeScheduler() = default;

  /// Decide the target node for one BE request using the global state view,
  /// or nullopt to leave it queued.
  virtual std::optional<NodeId> ScheduleOne(
      const PendingRequest& pending, const metrics::StateStorage& storage,
      SimTime now) = 0;

  /// Completion feedback (drives the long-term reward r^long of §5.3.1).
  virtual void OnBeCompleted(NodeId /*node*/,
                             const workload::Request& /*request*/,
                             SimTime /*now*/) {}

  virtual std::string name() const = 0;
};

}  // namespace tango::k8s
