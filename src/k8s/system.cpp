#include "k8s/system.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"

namespace tango::k8s {

EdgeCloudSystem::EdgeCloudSystem(SystemConfig cfg,
                                 const workload::ServiceCatalog* catalog)
    : cfg_(std::move(cfg)), catalog_(catalog), rng_(cfg_.seed) {
  TANGO_CHECK(catalog_ != nullptr, "catalog required");
  TANGO_CHECK(!cfg_.clusters.empty(), "need at least one cluster");
  topology_ = net::Topology(
      net::Topology::RandomLayout(static_cast<int>(cfg_.clusters.size()),
                                  cfg_.region_km, rng_),
      cfg_.link);
  native_policy_ = std::make_unique<NativeAllocationPolicy>(
      catalog_, NativeAllocationPolicy::ProportionalFractions(*catalog_));
  default_policy_ = native_policy_.get();
  egress_ = net::EgressRegulator(cfg_.egress);
  central_ = cfg_.central_cluster >= 0 ? ClusterId{cfg_.central_cluster}
                                       : topology_.CentralCluster();
  BuildClusters();
  // Periodic state sync and metrics sampling.
  sim::SchedulePeriodic(sim_, cfg_.state_sync_period, cfg_.state_sync_period,
                        [this](SimTime now) { SyncState(now); });
  sim::SchedulePeriodic(sim_, cfg_.metrics_period, cfg_.metrics_period,
                        [this](SimTime now) { SampleMetrics(now); });
  period_stats_.push_back(PeriodStats{0});
  SyncState(0);
}

void EdgeCloudSystem::BuildClusters() {
  std::int32_t next_node = 0;
  clusters_.reserve(cfg_.clusters.size());
  for (std::size_t b = 0; b < cfg_.clusters.size(); ++b) {
    Cluster cl;
    cl.spec = cfg_.clusters[b];
    cl.spec.id = ClusterId{static_cast<std::int32_t>(b)};
    cl.master = NodeId{next_node++};
    node_cluster_[cl.master] = cl.spec.id;
    for (int w = 0; w < cl.spec.num_workers; ++w) {
      NodeSpec ns;
      ns.id = NodeId{next_node++};
      ns.cluster = cl.spec.id;
      if (cl.spec.heterogeneous) {
        ns.capacity.cpu = rng_.UniformInt(cl.spec.min_cpu, cl.spec.max_cpu);
        ns.capacity.mem = rng_.UniformInt(cl.spec.min_mem, cl.spec.max_mem);
      } else {
        ns.capacity = cl.spec.worker_capacity;
      }
      const NodeId nid = ns.id;
      WorkerNode::Callbacks cbs;
      cbs.on_complete = [this](const CompletionInfo& info) {
        OnComplete(info);
      };
      cbs.on_abandon = [this](const workload::Request& r, SimTime now) {
        OnAbandon(r, now);
      };
      cbs.on_be_return = [this, nid](const workload::Request& r) {
        OnBeReturn(nid, r);
      };
      cl.workers.push_back(std::make_unique<WorkerNode>(
          &sim_, ns, catalog_, default_policy_, std::move(cbs),
          cfg_.node_tunables));
      workers_[nid] = cl.workers.back().get();
      node_cluster_[nid] = cl.spec.id;
    }
    clusters_.push_back(std::move(cl));
  }
}

void EdgeCloudSystem::SetAllocationPolicy(const AllocationPolicy* policy) {
  TANGO_CHECK(policy != nullptr, "null policy");
  default_policy_ = policy;
  for (auto& [id, node] : workers_) node->SetPolicy(policy);
  // Bandwidth follows the policy's regulation stance (§4.1): LC priority at
  // the egress when BE is preemptible, fair sharing otherwise.
  egress_.set_mode(policy->PreemptsBeForLc() ? net::EgressMode::kLcPriority
                                             : net::EgressMode::kFairShare);
}

WorkerNode* EdgeCloudSystem::FindWorker(NodeId id) {
  auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second;
}

std::vector<WorkerNode*> EdgeCloudSystem::AllWorkers() {
  std::vector<WorkerNode*> out;
  out.reserve(workers_.size());
  for (auto& [id, node] : workers_) out.push_back(node);
  return out;
}

NodeId EdgeCloudSystem::MasterOf(ClusterId cluster) const {
  return clusters_[static_cast<std::size_t>(cluster.value)].master;
}

ClusterId EdgeCloudSystem::ClusterOfNode(NodeId node) const {
  auto it = node_cluster_.find(node);
  TANGO_CHECK(it != node_cluster_.end(), "unknown node %d", node.value);
  return it->second;
}

const metrics::StateStorage& EdgeCloudSystem::LcStorage(
    ClusterId cluster) const {
  return clusters_[static_cast<std::size_t>(cluster.value)].lc_storage;
}

int EdgeCloudSystem::lc_queue_length(ClusterId cluster) const {
  return static_cast<int>(
      clusters_[static_cast<std::size_t>(cluster.value)].lc_queue.size());
}

std::int64_t EdgeCloudSystem::total_scaling_ops() const {
  std::int64_t total = 0;
  for (const auto& [id, node] : workers_) total += node->scaling_ops();
  return total;
}

SimDuration EdgeCloudSystem::Transfer(ClusterId from, ClusterId to,
                                      Bytes size, bool is_lc) {
  const SimDuration propagation = topology_.OneWayDelay(from, to);
  if (!cfg_.regulate_bandwidth) {
    return propagation + TransferTime(size, topology_.Bandwidth(from, to));
  }
  // LAN transfers are effectively free of uplink contention.
  if (from == to) {
    return propagation + TransferTime(size, topology_.Bandwidth(from, to));
  }
  return propagation + egress_.Serialize(from, size, is_lc, sim_.Now());
}

RequestRecord& EdgeCloudSystem::Record(RequestId id) {
  const auto idx = static_cast<std::size_t>(id.value);
  TANGO_CHECK(idx < records_.size(), "unknown request %d", id.value);
  return records_[idx];
}

PeriodStats& EdgeCloudSystem::CurrentPeriod() { return period_stats_.back(); }

void EdgeCloudSystem::SubmitTrace(const workload::Trace& trace) {
  for (const auto& request : trace) {
    const auto idx = static_cast<std::size_t>(request.id.value);
    if (records_.size() <= idx) records_.resize(idx + 1);
    records_[idx].request = request;
    sim_.ScheduleAt(request.arrival,
                    [this, request]() { OnArrival(request); });
  }
}

void EdgeCloudSystem::OnArrival(const workload::Request& request) {
  const auto& svc = catalog_->Get(request.service);
  Cluster& cl = clusters_[static_cast<std::size_t>(request.origin.value)];
  if (svc.is_lc()) {
    CurrentPeriod().lc_arrived += 1;
    cl.lc_queue.push_back({request, sim_.Now(), 0});
    ScheduleLcDispatch(cl.spec.id);
  } else {
    // BE requests are uniformly forwarded to the central cluster (§3).
    const SimDuration fwd =
        Transfer(request.origin, central_, svc.request_size, /*is_lc=*/false);
    sim_.ScheduleAfter(fwd, [this, request]() {
      be_queue_.push_back({request, sim_.Now(), 0});
      ScheduleBeDispatch();
    });
  }
}

void EdgeCloudSystem::ScheduleLcDispatch(ClusterId cluster) {
  Cluster& cl = clusters_[static_cast<std::size_t>(cluster.value)];
  if (cl.lc_dispatch_pending) return;
  cl.lc_dispatch_pending = true;
  sim_.ScheduleAfter(cfg_.lc_dispatch_interval,
                     [this, cluster]() { DispatchLc(cluster); });
}

void EdgeCloudSystem::DispatchLc(ClusterId cluster) {
  Cluster& cl = clusters_[static_cast<std::size_t>(cluster.value)];
  cl.lc_dispatch_pending = false;
  TANGO_CHECK(lc_sched_ != nullptr, "no LC scheduler installed");
  // Age out requests that can no longer meet any deadline.
  for (auto it = cl.lc_queue.begin(); it != cl.lc_queue.end();) {
    const auto& svc = catalog_->Get(it->request.service);
    const SimTime deadline =
        it->request.arrival +
        static_cast<SimDuration>(cfg_.node_tunables.lc_abandon_factor *
                                 static_cast<double>(svc.qos_target));
    if (svc.qos_target > 0 && sim_.Now() > deadline) {
      OnAbandon(it->request, sim_.Now());
      it = cl.lc_queue.erase(it);
    } else {
      ++it;
    }
  }
  if (cl.lc_queue.empty()) return;

  std::vector<PendingRequest> queue(cl.lc_queue.begin(), cl.lc_queue.end());
  const std::vector<Assignment> assignments =
      lc_sched_->Schedule(cluster, queue, cl.lc_storage, sim_.Now());

  for (const Assignment& a : assignments) {
    auto it = std::find_if(cl.lc_queue.begin(), cl.lc_queue.end(),
                           [&a](const PendingRequest& p) {
                             return p.request.id == a.request;
                           });
    if (it == cl.lc_queue.end()) continue;  // scheduler returned a stale id
    WorkerNode* target = FindWorker(a.target);
    if (target == nullptr) continue;
    const workload::Request request = it->request;
    cl.lc_queue.erase(it);
    RequestRecord& rec = Record(request.id);
    rec.dispatched = sim_.Now();
    rec.target = a.target;
    const auto& svc = catalog_->Get(request.service);
    const SimDuration delay = Transfer(cluster, target->spec().cluster,
                                       svc.request_size, /*is_lc=*/true);
    sim_.ScheduleAfter(delay, [target, request]() {
      target->Enqueue(request);
    });
  }
  if (!cl.lc_queue.empty()) ScheduleLcDispatch(cluster);
}

void EdgeCloudSystem::ScheduleBeDispatch() {
  if (be_dispatch_pending_) return;
  be_dispatch_pending_ = true;
  sim_.ScheduleAfter(cfg_.be_dispatch_interval, [this]() { DispatchBe(); });
}

void EdgeCloudSystem::DispatchBe() {
  be_dispatch_pending_ = false;
  TANGO_CHECK(be_sched_ != nullptr, "no BE scheduler installed");
  while (!be_queue_.empty()) {
    PendingRequest pending = be_queue_.front();
    const auto target = be_sched_->ScheduleOne(pending, be_storage_, sim_.Now());
    if (!target.has_value()) break;  // nothing placeable right now
    WorkerNode* node = FindWorker(*target);
    if (node == nullptr) break;
    be_queue_.pop_front();
    const workload::Request request = pending.request;
    RequestRecord& rec = Record(request.id);
    rec.dispatched = sim_.Now();
    rec.target = *target;
    const auto& svc = catalog_->Get(request.service);
    const SimDuration delay = Transfer(central_, node->spec().cluster,
                                       svc.request_size, /*is_lc=*/false);
    sim_.ScheduleAfter(delay, [node, request]() { node->Enqueue(request); });
  }
  if (!be_queue_.empty()) ScheduleBeDispatch();
}

void EdgeCloudSystem::OnComplete(const CompletionInfo& info) {
  RequestRecord& rec = Record(info.request.id);
  const workload::Request original = rec.request;
  const auto& svc = catalog_->Get(original.service);
  const ClusterId from = ClusterOfNode(info.node);
  if (svc.is_lc()) {
    // The result must travel back to the origin before the user sees it.
    const SimDuration back =
        Transfer(from, original.origin, svc.response_size, /*is_lc=*/true);
    const SimTime completed = sim_.Now() + back;
    const NodeId node = info.node;
    sim_.ScheduleAfter(back, [this, original, completed, node]() {
      RequestRecord& r = Record(original.id);
      if (r.outcome != Outcome::kPending) return;
      r.outcome = Outcome::kCompleted;
      r.completed = completed;
      r.latency = completed - original.arrival;
      const auto& s = catalog_->Get(original.service);
      r.qos_met = r.latency <= s.qos_target;
      PeriodStats& p = CurrentPeriod();
      p.lc_completed += 1;
      if (r.qos_met) p.lc_qos_met += 1;
      qos_detector_.Observe(sim_.Now(), node, original.service, r.latency);
    });
  } else {
    if (rec.outcome != Outcome::kPending) return;
    rec.outcome = Outcome::kCompleted;
    rec.completed = sim_.Now();
    rec.latency = sim_.Now() - original.arrival;
    CurrentPeriod().be_completed += 1;
    if (be_sched_ != nullptr) {
      be_sched_->OnBeCompleted(info.node, original, sim_.Now());
    }
  }
}

void EdgeCloudSystem::OnAbandon(const workload::Request& request,
                                SimTime /*now*/) {
  RequestRecord& rec = Record(request.id);
  if (rec.outcome != Outcome::kPending) return;
  rec.outcome = Outcome::kAbandoned;
  CurrentPeriod().lc_abandoned += 1;
}

void EdgeCloudSystem::OnBeReturn(NodeId from, const workload::Request& req) {
  RequestRecord& rec = Record(req.id);
  if (rec.outcome != Outcome::kPending) return;
  rec.reschedules += 1;
  const workload::Request original = rec.request;
  const auto& svc = catalog_->Get(original.service);
  const SimDuration back = Transfer(ClusterOfNode(from), central_,
                                    svc.request_size, /*is_lc=*/false);
  const int bounces = rec.reschedules;
  sim_.ScheduleAfter(back, [this, original, bounces]() {
    be_queue_.push_back({original, sim_.Now(), bounces});
    ScheduleBeDispatch();
  });
}

void EdgeCloudSystem::SyncState(SimTime now) {
  // Per-cluster LC storage: own + geo-nearby workers, plus RTT estimates.
  for (auto& cl : clusters_) {
    std::vector<ClusterId> scope = topology_.NearbyClusters(
        cl.spec.id, cfg_.lc_nearby_radius_km);
    scope.push_back(cl.spec.id);
    for (ClusterId c : scope) {
      const Cluster& other = clusters_[static_cast<std::size_t>(c.value)];
      for (const auto& w : other.workers) {
        cl.lc_storage.Update(w->Snapshot(now));
      }
      cl.lc_storage.UpdateRtt(c, topology_.Rtt(cl.spec.id, c));
    }
  }
  // Central BE storage sees everything.
  for (auto& cl : clusters_) {
    for (const auto& w : cl.workers) be_storage_.Update(w->Snapshot(now));
    be_storage_.UpdateRtt(cl.spec.id, topology_.Rtt(central_, cl.spec.id));
  }
}

void EdgeCloudSystem::SampleMetrics(SimTime now) {
  double used = 0.0, used_lc = 0.0, used_be = 0.0, cap = 0.0;
  for (const auto& [id, node] : workers_) {
    used += static_cast<double>(node->cpu_in_use());
    used_lc += static_cast<double>(node->cpu_in_use_lc());
    used_be += static_cast<double>(node->cpu_in_use_be());
    cap += static_cast<double>(node->spec().capacity.cpu);
  }
  PeriodStats& p = CurrentPeriod();
  p.util_total = cap > 0.0 ? used / cap : 0.0;
  p.util_lc = cap > 0.0 ? used_lc / cap : 0.0;
  p.util_be = cap > 0.0 ? used_be / cap : 0.0;
  tss_.Gauge("util.total", now, p.util_total);
  tss_.Gauge("util.lc", now, p.util_lc);
  tss_.Gauge("util.be", now, p.util_be);
  period_stats_.push_back(PeriodStats{now});
}

void EdgeCloudSystem::Run(SimTime until) { sim_.RunUntil(until); }

RunSummary EdgeCloudSystem::Summary() const {
  RunSummary s;
  std::vector<double> lc_latencies;
  for (const auto& rec : records_) {
    if (!rec.request.id.valid()) continue;
    const auto& svc = catalog_->Get(rec.request.service);
    if (svc.is_lc()) {
      s.lc_total += 1;
      if (rec.outcome == Outcome::kCompleted) {
        s.lc_completed += 1;
        if (rec.qos_met) s.lc_qos_met += 1;
        lc_latencies.push_back(ToMilliseconds(rec.latency));
      } else if (rec.outcome == Outcome::kAbandoned) {
        s.lc_abandoned += 1;
      }
    } else {
      s.be_total += 1;
      if (rec.outcome == Outcome::kCompleted) s.be_completed += 1;
    }
  }
  s.qos_satisfaction =
      s.lc_total > 0
          ? static_cast<double>(s.lc_qos_met) / static_cast<double>(s.lc_total)
          : 0.0;
  s.be_throughput = static_cast<double>(s.be_completed);
  s.mean_latency_ms = Mean(lc_latencies);
  s.p95_latency_ms = Percentile(lc_latencies, 0.95);
  RunningStat util;
  for (const auto& p : period_stats_) util.Add(p.util_total);
  s.mean_util = util.mean();
  return s;
}

}  // namespace tango::k8s
