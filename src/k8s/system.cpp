#include "k8s/system.h"

#include <algorithm>
#include <cmath>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/logging.h"
#include "common/stats.h"

namespace tango::k8s {

EdgeCloudSystem::EdgeCloudSystem(SystemConfig cfg,
                                 const workload::ServiceCatalog* catalog)
    : cfg_(std::move(cfg)), catalog_(catalog), rng_(cfg_.seed) {
  TANGO_CHECK(catalog_ != nullptr, "catalog required");
  TANGO_CHECK(!cfg_.clusters.empty(), "need at least one cluster");
  // Register every metric once, up front; hot paths only touch the cached
  // pointers (O(1), allocation-free — see scope/metrics.h).
  m_syncs_ = &metrics_.GetCounter("sync.syncs");
  m_pushes_ = &metrics_.GetCounter("sync.pushes");
  m_pushes_skipped_ = &metrics_.GetCounter("sync.pushes_skipped");
  m_full_resyncs_ = &metrics_.GetCounter("sync.full_resyncs");
  m_fault_requeues_ = &metrics_.GetCounter("fault.requeues");
  m_fault_drops_ = &metrics_.GetCounter("fault.drops");
  m_lc_arrived_ = &metrics_.GetCounter("lc.arrived");
  m_lc_completed_ = &metrics_.GetCounter("lc.completed");
  m_lc_qos_met_ = &metrics_.GetCounter("lc.qos_met");
  m_lc_abandoned_ = &metrics_.GetCounter("lc.abandoned");
  m_be_completed_ = &metrics_.GetCounter("be.completed");
  h_lc_latency_ = &metrics_.GetHistogram("lc.latency_us");
  h_be_latency_ = &metrics_.GetHistogram("be.latency_us");
  g_util_total_ = &metrics_.GetGauge("util.total");
  g_util_lc_ = &metrics_.GetGauge("util.lc");
  g_util_be_ = &metrics_.GetGauge("util.be");
  topology_ = net::Topology(
      net::Topology::RandomLayout(static_cast<int>(cfg_.clusters.size()),
                                  cfg_.region_km, rng_),
      cfg_.link);
  native_policy_ = std::make_unique<NativeAllocationPolicy>(
      catalog_, NativeAllocationPolicy::ProportionalFractions(*catalog_));
  default_policy_ = native_policy_.get();
  egress_ = net::EgressRegulator(cfg_.egress);
  central_ = cfg_.central_cluster >= 0 ? ClusterId{cfg_.central_cluster}
                                       : topology_.CentralCluster();
  acting_central_ = central_;
  master_alive_.assign(cfg_.clusters.size(), true);
  BuildClusters();
  // Periodic state sync and metrics sampling: first-class periodic events,
  // each a single pool entry re-armed in place every tick.
  sim_.StartPeriodic(cfg_.state_sync_period, cfg_.state_sync_period,
                     [this]() { SyncState(sim_.Now()); });
  sim_.StartPeriodic(cfg_.metrics_period, cfg_.metrics_period,
                     [this]() { SampleMetrics(sim_.Now()); });
  period_stats_.push_back(PeriodStats{0});
  SyncState(0);
}

void EdgeCloudSystem::BuildClusters() {
  std::int32_t total_nodes = 0;
  for (const auto& spec : cfg_.clusters) total_nodes += 1 + spec.num_workers;
  node_index_.assign(static_cast<std::size_t>(total_nodes), nullptr);
  node_cluster_.assign(static_cast<std::size_t>(total_nodes), ClusterId{});
  worker_slot_.assign(static_cast<std::size_t>(total_nodes), -1);
  worker_list_.reserve(static_cast<std::size_t>(total_nodes));

  std::int32_t next_node = 0;
  clusters_.reserve(cfg_.clusters.size());
  for (std::size_t b = 0; b < cfg_.clusters.size(); ++b) {
    Cluster cl;
    cl.spec = cfg_.clusters[b];
    cl.spec.id = ClusterId{static_cast<std::int32_t>(b)};
    cl.master = NodeId{next_node++};
    node_cluster_[static_cast<std::size_t>(cl.master.value)] = cl.spec.id;
    for (int w = 0; w < cl.spec.num_workers; ++w) {
      NodeSpec ns;
      ns.id = NodeId{next_node++};
      ns.cluster = cl.spec.id;
      if (cl.spec.heterogeneous) {
        ns.capacity.cpu = rng_.UniformInt(cl.spec.min_cpu, cl.spec.max_cpu);
        ns.capacity.mem = rng_.UniformInt(cl.spec.min_mem, cl.spec.max_mem);
      } else {
        ns.capacity = cl.spec.worker_capacity;
      }
      const NodeId nid = ns.id;
      WorkerNode::Callbacks cbs;
      cbs.on_complete = [this](const CompletionInfo& info) {
        OnComplete(info);
      };
      cbs.on_abandon = [this](const workload::Request& r, SimTime now) {
        OnAbandon(r, now);
      };
      cbs.on_be_return = [this, nid](const workload::Request& r) {
        OnBeReturn(nid, r);
      };
      cbs.on_usage_delta = [this](Millicores d_total, Millicores d_lc,
                                  Millicores d_be) {
        use_total_ += d_total;
        use_lc_ += d_lc;
        use_be_ += d_be;
      };
      NodeTunables tunables = cfg_.node_tunables;
      if (!cfg_.fast_path) tunables.cache_snapshots = false;
      cl.workers.push_back(std::make_unique<WorkerNode>(
          &sim_, ns, catalog_, default_policy_, std::move(cbs), tunables));
      const auto idx = static_cast<std::size_t>(nid.value);
      node_index_[idx] = cl.workers.back().get();
      node_cluster_[idx] = cl.spec.id;
      worker_slot_[idx] = static_cast<std::int32_t>(worker_list_.size());
      worker_list_.push_back(cl.workers.back().get());
      cap_total_ += ns.capacity.cpu;
    }
    clusters_.push_back(std::move(cl));
  }
  // Sync scopes are a pure function of the (static) topology — compute them
  // once instead of re-deriving NearbyClusters every sync period.
  be_seen_.assign(worker_list_.size(), 0);
  for (auto& cl : clusters_) {
    cl.sync_scope =
        topology_.NearbyClusters(cl.spec.id, cfg_.lc_nearby_radius_km);
    cl.sync_scope.push_back(cl.spec.id);
    cl.lc_seen.assign(worker_list_.size(), 0);
  }
}

void EdgeCloudSystem::SetAllocationPolicy(const AllocationPolicy* policy) {
  TANGO_CHECK(policy != nullptr, "null policy");
  default_policy_ = policy;
  for (WorkerNode* node : worker_list_) node->SetPolicy(policy);
  // Bandwidth follows the policy's regulation stance (§4.1): LC priority at
  // the egress when BE is preemptible, fair sharing otherwise.
  egress_.set_mode(policy->PreemptsBeForLc() ? net::EgressMode::kLcPriority
                                             : net::EgressMode::kFairShare);
}

WorkerNode* EdgeCloudSystem::FindWorker(NodeId id) {
  const auto idx = static_cast<std::size_t>(id.value);
  if (!id.valid() || idx >= node_index_.size()) return nullptr;
  return node_index_[idx];  // nullptr for masters
}

std::vector<WorkerNode*> EdgeCloudSystem::AllWorkers() { return worker_list_; }

NodeId EdgeCloudSystem::MasterOf(ClusterId cluster) const {
  return clusters_[static_cast<std::size_t>(cluster.value)].master;
}

ClusterId EdgeCloudSystem::ClusterOfNode(NodeId node) const {
  const auto idx = static_cast<std::size_t>(node.value);
  TANGO_CHECK(node.valid() && idx < node_cluster_.size(), "unknown node %d",
              node.value);
  return node_cluster_[idx];
}

const metrics::StateStorage& EdgeCloudSystem::LcStorage(
    ClusterId cluster) const {
  return clusters_[static_cast<std::size_t>(cluster.value)].lc_storage;
}

int EdgeCloudSystem::lc_queue_length(ClusterId cluster) const {
  return static_cast<int>(
      clusters_[static_cast<std::size_t>(cluster.value)].lc_queue.size());
}

std::int64_t EdgeCloudSystem::total_scaling_ops() const {
  std::int64_t total = 0;
  for (const WorkerNode* node : worker_list_) total += node->scaling_ops();
  return total;
}

LinkFault EdgeCloudSystem::LinkStateOf(ClusterId a, ClusterId b) const {
  if (a == b) return LinkFault{};  // intra-cluster LANs are not faultable
  const auto key = std::minmax(a.value, b.value);
  const auto it = link_faults_.find({key.first, key.second});
  return it == link_faults_.end() ? LinkFault{} : it->second;
}

SimDuration EdgeCloudSystem::Transfer(ClusterId from, ClusterId to,
                                      Bytes size, bool is_lc) {
  SimDuration propagation = topology_.OneWayDelay(from, to);
  const LinkFault lf = LinkStateOf(from, to);
  if (lf.latency_mult > 1.0) {
    propagation = static_cast<SimDuration>(
        static_cast<double>(propagation) * lf.latency_mult);
  }
  if (!cfg_.regulate_bandwidth) {
    return propagation + TransferTime(size, topology_.Bandwidth(from, to));
  }
  // LAN transfers are effectively free of uplink contention.
  if (from == to) {
    return propagation + TransferTime(size, topology_.Bandwidth(from, to));
  }
  return propagation + egress_.Serialize(from, size, is_lc, sim_.Now());
}

RequestRecord& EdgeCloudSystem::Record(RequestId id) {
  const auto idx = static_cast<std::size_t>(id.value);
  TANGO_CHECK(idx < records_.size(), "unknown request %d", id.value);
  return records_[idx];
}

SyncStats EdgeCloudSystem::sync_stats() const {
  return SyncStats{.syncs = m_syncs_->value(),
                   .pushes = m_pushes_->value(),
                   .pushes_skipped = m_pushes_skipped_->value(),
                   .full_resyncs = m_full_resyncs_->value()};
}

void EdgeCloudSystem::BeginRequestSpan(const workload::Request& request,
                                       bool is_lc) {
  if (!scope::TracingActive()) return;  // keeps request_spans_ empty when off
  const auto idx = static_cast<std::size_t>(request.id.value);
  if (request_spans_.size() <= idx) {
    request_spans_.resize(records_.size() > idx ? records_.size() : idx + 1,
                          scope::kInvalidSpan);
  }
  request_spans_[idx] =
      scope::BeginSpan("request", is_lc ? "lc" : "be", sim_.Now(),
                       {.service = request.service.value,
                        .request = request.id.value});
}

scope::SpanId EdgeCloudSystem::RequestSpan(RequestId id) const {
  const auto idx = static_cast<std::size_t>(id.value);
  return idx < request_spans_.size() ? request_spans_[idx]
                                     : scope::kInvalidSpan;
}

void EdgeCloudSystem::EndRequestSpan(RequestId id, SimTime at) {
  scope::EndSpan(RequestSpan(id), at);
}

PeriodStats& EdgeCloudSystem::CurrentPeriod() { return period_stats_.back(); }

void EdgeCloudSystem::SubmitTrace(const workload::Trace& trace) {
  for (const auto& request : trace) {
    const auto idx = static_cast<std::size_t>(request.id.value);
    if (records_.size() <= idx) records_.resize(idx + 1);
    records_[idx].request = request;
    sim_.ScheduleAt(request.arrival,
                    [this, request]() { OnArrival(request); });
  }
}

void EdgeCloudSystem::OnArrival(const workload::Request& request) {
  const auto& svc = catalog_->Get(request.service);
  BeginRequestSpan(request, svc.is_lc());
  if (svc.is_lc()) {
    CurrentPeriod().lc_arrived += 1;
    m_lc_arrived_->Add();
    const ClusterId home = DelegateMaster(request.origin);
    if (!home.valid()) {
      // No reachable live master anywhere: counted as dropped, not lost.
      DropRequest(Record(request.id));
      return;
    }
    if (home == request.origin) {
      Cluster& cl = clusters_[static_cast<std::size_t>(home.value)];
      cl.lc_queue.push_back({request, sim_.Now(), 0});
      ScheduleLcDispatch(home);
      return;
    }
    // Origin master is down: the eAP delegates dispatch to the nearest live
    // master (cf. delegated orchestration in hierarchical edge systems).
    RequestRecord& rec = Record(request.id);
    rec.fault_reroutes += 1;
    m_fault_requeues_->Add();
    CurrentPeriod().lost_requeued += 1;
    TANGO_SCOPE_INSTANT("lc.delegate", "fault", sim_.Now(),
                        .service = request.service.value,
                        .request = request.id.value, .value = home.value);
    const SimDuration fwd =
        Transfer(request.origin, home, svc.request_size, /*is_lc=*/true);
    sim_.ScheduleAfter(fwd, [this, request, home]() {
      clusters_[static_cast<std::size_t>(home.value)].lc_queue.push_back(
          {request, sim_.Now(), 0});
      ScheduleLcDispatch(home);
    });
  } else {
    // BE requests are uniformly forwarded to the central cluster (§3).
    ForwardBeToCentral(request);
  }
}

void EdgeCloudSystem::ForwardBeToCentral(const workload::Request& request) {
  if (Record(request.id).outcome != Outcome::kPending) return;
  const auto& svc = catalog_->Get(request.service);
  const ClusterId dst = acting_central_;
  const LinkFault lf = LinkStateOf(request.origin, dst);
  if (!MasterAlive(dst) || lf.cut) {
    // Store-and-forward at the eAP until the path or a failover heals it.
    sim_.ScheduleAfter(cfg_.fault_detect_delay,
                       [this, request]() { ForwardBeToCentral(request); });
    return;
  }
  const SimDuration fwd =
      Transfer(request.origin, dst, svc.request_size, /*is_lc=*/false);
  if (request.origin != dst && lf.loss > 0.0 && rng_.Bernoulli(lf.loss)) {
    // Lost in flight; the eAP re-sends after a timeout.
    sim_.ScheduleAfter(fwd + cfg_.fault_detect_delay,
                       [this, request]() { ForwardBeToCentral(request); });
    return;
  }
  sim_.ScheduleAfter(fwd, [this, request]() {
    be_queue_.push_back({request, sim_.Now(), 0});
    ScheduleBeDispatch();
  });
}

void EdgeCloudSystem::ScheduleLcDispatch(ClusterId cluster) {
  Cluster& cl = clusters_[static_cast<std::size_t>(cluster.value)];
  if (cl.lc_dispatch_pending || !MasterAlive(cluster)) return;
  cl.lc_dispatch_pending = true;
  sim_.ScheduleAfter(cfg_.lc_dispatch_interval,
                     [this, cluster]() { DispatchLc(cluster); });
}

void EdgeCloudSystem::DispatchLc(ClusterId cluster) {
  Cluster& cl = clusters_[static_cast<std::size_t>(cluster.value)];
  cl.lc_dispatch_pending = false;
  if (!MasterAlive(cluster)) return;  // queue already failed over
  TANGO_CHECK(lc_sched_ != nullptr, "no LC scheduler installed");
  // Age out requests that can no longer meet any deadline.
  for (auto it = cl.lc_queue.begin(); it != cl.lc_queue.end();) {
    const auto& svc = catalog_->Get(it->request.service);
    const SimTime deadline =
        it->request.arrival +
        static_cast<SimDuration>(cfg_.node_tunables.lc_abandon_factor *
                                 static_cast<double>(svc.qos_target));
    if (svc.qos_target > 0 && sim_.Now() > deadline) {
      OnAbandon(it->request, sim_.Now());
      it = cl.lc_queue.erase(it);
    } else {
      ++it;
    }
  }
  if (cl.lc_queue.empty()) return;

  std::vector<PendingRequest> queue(cl.lc_queue.begin(), cl.lc_queue.end());
  const std::vector<Assignment> assignments =
      lc_sched_->Schedule(cluster, queue, cl.lc_storage, sim_.Now());

  for (const Assignment& a : assignments) {
    auto it = std::find_if(cl.lc_queue.begin(), cl.lc_queue.end(),
                           [&a](const PendingRequest& p) {
                             return p.request.id == a.request;
                           });
    if (it == cl.lc_queue.end()) continue;  // scheduler returned a stale id
    WorkerNode* target = FindWorker(a.target);
    if (target == nullptr) continue;
    // Stale state view: target died/drained or its cluster got cut off
    // after the snapshot — keep the request queued for the next round.
    if (!target->alive() || target->draining()) continue;
    const workload::Request request = it->request;
    if (!SendToWorker(cluster, a.target, request, /*is_lc=*/true)) continue;
    cl.lc_queue.erase(it);
    RequestRecord& rec = Record(request.id);
    rec.dispatched = sim_.Now();
    rec.target = a.target;
    scope::InstantEvent("dispatch", "sched", sim_.Now(),
                        {.node = a.target.value,
                         .service = request.service.value,
                         .request = request.id.value},
                        RequestSpan(request.id));
  }
  if (!cl.lc_queue.empty()) ScheduleLcDispatch(cluster);
}

void EdgeCloudSystem::ScheduleBeDispatch() {
  if (be_dispatch_pending_) return;
  be_dispatch_pending_ = true;
  sim_.ScheduleAfter(cfg_.be_dispatch_interval, [this]() { DispatchBe(); });
}

void EdgeCloudSystem::DispatchBe() {
  be_dispatch_pending_ = false;
  if (!MasterAlive(acting_central_)) return;  // resumes on failover/recovery
  TANGO_CHECK(be_sched_ != nullptr, "no BE scheduler installed");
  while (!be_queue_.empty()) {
    PendingRequest pending = be_queue_.front();
    if (Record(pending.request.id).outcome != Outcome::kPending) {
      be_queue_.pop_front();  // dropped while queued
      continue;
    }
    const auto target = be_sched_->ScheduleOne(pending, be_storage_, sim_.Now());
    if (!target.has_value()) break;  // nothing placeable right now
    WorkerNode* node = FindWorker(*target);
    if (node == nullptr) break;
    if (!node->alive() || node->draining() ||
        !SendToWorker(acting_central_, *target, pending.request,
                      /*is_lc=*/false)) {
      // Stale pick (dead/drained target or cut path): rotate it to the back
      // and retry next interval, when the state view may have caught up.
      be_queue_.pop_front();
      be_queue_.push_back(pending);
      break;
    }
    be_queue_.pop_front();
    RequestRecord& rec = Record(pending.request.id);
    rec.dispatched = sim_.Now();
    rec.target = *target;
    scope::InstantEvent("dispatch", "sched", sim_.Now(),
                        {.node = target->value,
                         .service = pending.request.service.value,
                         .request = pending.request.id.value},
                        RequestSpan(pending.request.id));
  }
  if (!be_queue_.empty()) ScheduleBeDispatch();
}

void EdgeCloudSystem::OnComplete(const CompletionInfo& info) {
  RequestRecord& rec = Record(info.request.id);
  const workload::Request original = rec.request;
  const auto& svc = catalog_->Get(original.service);
  if (svc.is_lc()) {
    // The result must travel back to the origin before the user sees it.
    ReturnLcResult(info.node, original);
  } else {
    if (rec.outcome != Outcome::kPending) return;
    rec.outcome = Outcome::kCompleted;
    rec.completed = sim_.Now();
    rec.latency = sim_.Now() - original.arrival;
    CurrentPeriod().be_completed += 1;
    m_be_completed_->Add();
    h_be_latency_->Observe(rec.latency);
    EndRequestSpan(original.id, sim_.Now());
    if (be_sched_ != nullptr) {
      be_sched_->OnBeCompleted(info.node, original, sim_.Now());
    }
  }
}

void EdgeCloudSystem::ReturnLcResult(NodeId node,
                                     const workload::Request& original) {
  if (Record(original.id).outcome != Outcome::kPending) return;
  const auto& svc = catalog_->Get(original.service);
  const ClusterId from = ClusterOfNode(node);
  if (LinkStateOf(from, original.origin).cut) {
    // Result computed but the way home is cut: retransmit until it heals.
    sim_.ScheduleAfter(cfg_.fault_detect_delay, [this, node, original]() {
      ReturnLcResult(node, original);
    });
    return;
  }
  const SimDuration back =
      Transfer(from, original.origin, svc.response_size, /*is_lc=*/true);
  const SimTime completed = sim_.Now() + back;
  if (scope::TracingActive()) {
    // The transfer duration is known up front, so the span closes at its
    // (future) delivery time immediately — no lambda capture grows.
    scope::Tracer& tracer = scope::DefaultTracer();
    tracer.End(tracer.Begin("lc.return", "net", sim_.Now(),
                            {.node = node.value,
                             .service = original.service.value,
                             .request = original.id.value,
                             .value = svc.response_size},
                            RequestSpan(original.id)),
               completed);
  }
  sim_.ScheduleAfter(back, [this, original, completed, node]() {
    RequestRecord& r = Record(original.id);
    if (r.outcome != Outcome::kPending) return;
    r.outcome = Outcome::kCompleted;
    r.completed = completed;
    r.latency = completed - original.arrival;
    const auto& s = catalog_->Get(original.service);
    r.qos_met = r.latency <= s.qos_target;
    PeriodStats& p = CurrentPeriod();
    p.lc_completed += 1;
    if (r.qos_met) p.lc_qos_met += 1;
    m_lc_completed_->Add();
    if (r.qos_met) m_lc_qos_met_->Add();
    h_lc_latency_->Observe(r.latency);
    EndRequestSpan(original.id, completed);
    qos_detector_.Observe(sim_.Now(), node, original.service, r.latency);
  });
}

void EdgeCloudSystem::OnAbandon(const workload::Request& request,
                                SimTime /*now*/) {
  RequestRecord& rec = Record(request.id);
  if (rec.outcome != Outcome::kPending) return;
  rec.outcome = Outcome::kAbandoned;
  CurrentPeriod().lc_abandoned += 1;
  m_lc_abandoned_->Add();
  TANGO_SCOPE_INSTANT("abandon", "lc", sim_.Now(),
                      .service = request.service.value,
                      .request = request.id.value);
  EndRequestSpan(request.id, sim_.Now());
}

void EdgeCloudSystem::OnBeReturn(NodeId from, const workload::Request& req) {
  RequestRecord& rec = Record(req.id);
  if (rec.outcome != Outcome::kPending) return;
  rec.reschedules += 1;
  ReturnBeToCentral(ClusterOfNode(from), rec.request, rec.reschedules);
}

void EdgeCloudSystem::ReturnBeToCentral(ClusterId from,
                                        const workload::Request& original,
                                        int bounces) {
  if (Record(original.id).outcome != Outcome::kPending) return;
  const ClusterId dst = acting_central_;
  if (!MasterAlive(dst) || LinkStateOf(from, dst).cut) {
    sim_.ScheduleAfter(cfg_.fault_detect_delay,
                       [this, from, original, bounces]() {
                         ReturnBeToCentral(from, original, bounces);
                       });
    return;
  }
  const auto& svc = catalog_->Get(original.service);
  const SimDuration back =
      Transfer(from, dst, svc.request_size, /*is_lc=*/false);
  sim_.ScheduleAfter(back, [this, original, bounces]() {
    be_queue_.push_back({original, sim_.Now(), bounces});
    ScheduleBeDispatch();
  });
}

bool EdgeCloudSystem::SendToWorker(ClusterId from, NodeId target,
                                   const workload::Request& request,
                                   bool is_lc) {
  const ClusterId to = ClusterOfNode(target);
  const LinkFault lf = LinkStateOf(from, to);
  if (lf.cut) return false;  // path down: caller keeps the request queued
  const auto& svc = catalog_->Get(request.service);
  const SimDuration delay = Transfer(from, to, svc.request_size, is_lc);
  if (scope::TracingActive()) {
    // Closed at its known (future) delivery time up front, so the
    // delivery lambda below stays inside the SBO callback buffer.
    scope::Tracer& tracer = scope::DefaultTracer();
    tracer.End(tracer.Begin("transfer", is_lc ? "lc" : "be", sim_.Now(),
                            {.node = target.value,
                             .service = request.service.value,
                             .request = request.id.value,
                             .value = svc.request_size},
                            RequestSpan(request.id)),
               sim_.Now() + delay);
  }
  if (from != to && lf.loss > 0.0 && rng_.Bernoulli(lf.loss)) {
    // Lost in flight; the master detects the missed delivery ack after a
    // timeout and puts the request back on a scheduling queue.
    TANGO_SCOPE_INSTANT("net.loss", "fault", sim_.Now(),
                        .node = target.value, .request = request.id.value);
    const RequestId id = request.id;
    sim_.ScheduleAfter(delay + cfg_.fault_detect_delay,
                       [this, id]() { RequeueLost(id); });
    return true;  // from the dispatcher's view the send happened
  }
  sim_.ScheduleAfter(delay, [this, target, request]() {
    DeliverToWorker(target, request);
  });
  return true;
}

void EdgeCloudSystem::DeliverToWorker(NodeId target,
                                      const workload::Request& request) {
  if (Record(request.id).outcome != Outcome::kPending) return;
  WorkerNode* node = FindWorker(target);
  TANGO_CHECK(node != nullptr, "unknown worker %d", target.value);
  const RequestId id = request.id;
  if (!node->alive()) {
    // Target died while the request was in flight; detected by timeout.
    sim_.ScheduleAfter(cfg_.fault_detect_delay,
                       [this, id]() { RequeueLost(id); });
    return;
  }
  if (node->draining()) {
    // A draining node refuses admission immediately (graceful NACK).
    RequeueLost(id);
    return;
  }
  node->Enqueue(request);
}

void EdgeCloudSystem::RequeueLost(RequestId id) {
  RequestRecord& rec = Record(id);
  if (rec.outcome != Outcome::kPending) return;
  rec.fault_reroutes += 1;
  if (rec.fault_reroutes > cfg_.max_fault_reroutes) {
    DropRequest(rec);
    return;
  }
  m_fault_requeues_->Add();
  CurrentPeriod().lost_requeued += 1;
  TANGO_SCOPE_INSTANT("requeue", "fault", sim_.Now(),
                      .service = rec.request.service.value,
                      .request = id.value, .value = rec.fault_reroutes);
  const workload::Request request = rec.request;
  const auto& svc = catalog_->Get(request.service);
  if (svc.is_lc()) {
    const ClusterId home = DelegateMaster(request.origin);
    if (!home.valid()) {
      DropRequest(rec);
      return;
    }
    Cluster& cl = clusters_[static_cast<std::size_t>(home.value)];
    cl.lc_queue.push_back({request, sim_.Now(), 0});
    ScheduleLcDispatch(home);
  } else {
    // BE work restarts from the central queue (§4.1 restart semantics).
    be_queue_.push_back({request, sim_.Now(), rec.reschedules});
    ScheduleBeDispatch();
  }
}

void EdgeCloudSystem::HandleLost(std::vector<workload::Request> lost,
                                 SimDuration delay) {
  for (const workload::Request& r : lost) {
    const RequestId id = r.id;
    if (delay <= 0) {
      RequeueLost(id);
    } else {
      sim_.ScheduleAfter(delay, [this, id]() { RequeueLost(id); });
    }
  }
}

void EdgeCloudSystem::DropRequest(RequestRecord& rec) {
  if (rec.outcome != Outcome::kPending) return;
  rec.outcome = Outcome::kDropped;
  rec.completed = sim_.Now();
  m_fault_drops_->Add();
  CurrentPeriod().dropped += 1;
  TANGO_SCOPE_INSTANT("drop", "fault", sim_.Now(),
                      .service = rec.request.service.value,
                      .request = rec.request.id.value);
  EndRequestSpan(rec.request.id, sim_.Now());
}

ClusterId EdgeCloudSystem::DelegateMaster(ClusterId cluster) const {
  if (MasterAlive(cluster)) return cluster;
  ClusterId best{};
  SimDuration best_rtt = 0;
  for (const auto& cl : clusters_) {
    const ClusterId c = cl.spec.id;
    if (!MasterAlive(c)) continue;
    if (LinkStateOf(cluster, c).cut) continue;  // unreachable from the eAP
    const SimDuration rtt = topology_.Rtt(cluster, c);
    if (!best.valid() || rtt < best_rtt) {
      best = c;
      best_rtt = rtt;
    }
  }
  return best;
}

ClusterId EdgeCloudSystem::ElectCentral() const {
  if (MasterAlive(central_)) return central_;
  // Nearest live master to the geographic centre takes over BE dispatch.
  ClusterId best{};
  SimDuration best_rtt = 0;
  for (const auto& cl : clusters_) {
    const ClusterId c = cl.spec.id;
    if (!MasterAlive(c)) continue;
    const SimDuration rtt = topology_.Rtt(central_, c);
    if (!best.valid() || rtt < best_rtt) {
      best = c;
      best_rtt = rtt;
    }
  }
  return best;
}

void EdgeCloudSystem::CrashWorker(NodeId id) {
  WorkerNode* w = FindWorker(id);
  TANGO_CHECK(w != nullptr, "unknown worker %d", id.value);
  if (!w->alive()) return;
  HandleLost(w->Crash(), cfg_.fault_detect_delay);
}

void EdgeCloudSystem::RecoverWorker(NodeId id) {
  WorkerNode* w = FindWorker(id);
  TANGO_CHECK(w != nullptr, "unknown worker %d", id.value);
  if (w->alive()) return;
  w->Recover();
  // A node-ready event pushes fresh state at once (like a kubelet
  // re-registering), so schedulers can use the node without waiting for
  // the next sync period; BE dispatch restarts evicted work immediately.
  SyncState(sim_.Now());
  ScheduleBeDispatch();
  for (auto& cl : clusters_) {
    if (!cl.lc_queue.empty()) ScheduleLcDispatch(cl.spec.id);
  }
}

void EdgeCloudSystem::DrainWorker(NodeId id) {
  WorkerNode* w = FindWorker(id);
  TANGO_CHECK(w != nullptr, "unknown worker %d", id.value);
  if (!w->alive() || w->draining()) return;
  // Graceful: queued work is re-routed now, running work finishes in place.
  HandleLost(w->Drain(), 0);
  SyncState(sim_.Now());
}

void EdgeCloudSystem::UndrainWorker(NodeId id) {
  WorkerNode* w = FindWorker(id);
  TANGO_CHECK(w != nullptr, "unknown worker %d", id.value);
  if (!w->draining()) return;
  w->Undrain();
  SyncState(sim_.Now());
  ScheduleBeDispatch();
}

void EdgeCloudSystem::SetLinkFault(ClusterId a, ClusterId b, LinkFault fault) {
  TANGO_CHECK(a != b, "cannot fault an intra-cluster LAN");
  const auto key = std::minmax(a.value, b.value);
  if (fault.faulty()) {
    link_faults_[{key.first, key.second}] = fault;
  } else {
    link_faults_.erase({key.first, key.second});
  }
  SyncState(sim_.Now());
}

void EdgeCloudSystem::ClearLinkFault(ClusterId a, ClusterId b) {
  SetLinkFault(a, b, LinkFault{});
  // A healed path may unblock queued work on both sides.
  ScheduleBeDispatch();
  for (auto& cl : clusters_) {
    if (!cl.lc_queue.empty()) ScheduleLcDispatch(cl.spec.id);
  }
}

void EdgeCloudSystem::FailMaster(ClusterId cluster) {
  const auto idx = static_cast<std::size_t>(cluster.value);
  if (!master_alive_[idx]) return;
  master_alive_[idx] = false;
  Cluster& cl = clusters_[idx];
  // LC requests queued at the dead master fail over to the nearest live
  // master once the failure detector notices.
  std::vector<workload::Request> lost;
  lost.reserve(cl.lc_queue.size());
  for (const auto& p : cl.lc_queue) lost.push_back(p.request);
  cl.lc_queue.clear();
  HandleLost(std::move(lost), cfg_.fault_detect_delay);
  if (cluster == acting_central_) {
    // The BE central died with its queue; elect a new central and restart
    // the queued BE work there after detection.
    std::vector<workload::Request> be_lost;
    be_lost.reserve(be_queue_.size());
    for (const auto& p : be_queue_) be_lost.push_back(p.request);
    be_queue_.clear();
    acting_central_ = ElectCentral();
    // The new central cannot trust the deltas the old one had applied —
    // force a full re-push of the BE view on its next sync.
    std::fill(be_seen_.begin(), be_seen_.end(), 0);
    m_full_resyncs_->Add();
    HandleLost(std::move(be_lost), cfg_.fault_detect_delay);
  }
}

void EdgeCloudSystem::RecoverMaster(ClusterId cluster) {
  const auto idx = static_cast<std::size_t>(cluster.value);
  if (master_alive_[idx]) return;
  master_alive_[idx] = true;
  // The original central reclaims the BE dispatcher role on recovery; a
  // graceful handover migrates the queue without loss.
  const ClusterId previous_central = acting_central_;
  acting_central_ = ElectCentral();
  // The recovered master's own view went stale while it was down; zero its
  // seen-versions (and the BE ones on a central handover) so the next sync
  // is a full re-push, like a kubelet re-list after an apiserver restart.
  std::fill(clusters_[idx].lc_seen.begin(), clusters_[idx].lc_seen.end(), 0);
  m_full_resyncs_->Add();
  if (acting_central_ != previous_central) {
    std::fill(be_seen_.begin(), be_seen_.end(), 0);
    m_full_resyncs_->Add();
  }
  SyncState(sim_.Now());
  ScheduleLcDispatch(cluster);
  ScheduleBeDispatch();
}

bool EdgeCloudSystem::WorkerAlive(NodeId id) const {
  const auto idx = static_cast<std::size_t>(id.value);
  if (!id.valid() || idx >= node_index_.size()) return false;
  const WorkerNode* node = node_index_[idx];
  return node != nullptr && node->alive();
}

int EdgeCloudSystem::workers_alive() const {
  int n = 0;
  for (const WorkerNode* node : worker_list_) n += node->alive() ? 1 : 0;
  return n;
}

int EdgeCloudSystem::masters_alive() const {
  int n = 0;
  for (const bool b : master_alive_) n += b ? 1 : 0;
  return n;
}

void EdgeCloudSystem::SyncState(SimTime now) {
  // Per-cluster LC storage: own + geo-nearby workers, plus RTT estimates.
  // A cut link freezes the snapshots of the far side and marks its nodes
  // unreachable in the viewing master's storage.
  //
  // Delta protocol (fast path): each storage remembers the last node
  // state_version it pushed; a node whose version is unchanged is skipped —
  // version equality implies snapshot-content equality, and no consumer
  // reads `recorded_at`, so the skip is observationally identical to the
  // full rebuild. Seen-versions are zeroed on master failover to force a
  // full re-push; a cut link freezes the far side automatically because the
  // versions keep advancing while no push happens.
  m_syncs_->Add();
  const bool delta = cfg_.fast_path;
  for (auto& cl : clusters_) {
    if (!MasterAlive(cl.spec.id)) continue;  // a dead master syncs nothing
    for (ClusterId c : cl.sync_scope) {
      const LinkFault lf = LinkStateOf(cl.spec.id, c);
      if (lf.cut) {
        cl.lc_storage.MarkClusterReachability(c, false);
        continue;
      }
      const Cluster& other = clusters_[static_cast<std::size_t>(c.value)];
      for (const auto& w : other.workers) {
        const auto slot = static_cast<std::size_t>(
            worker_slot_[static_cast<std::size_t>(w->id().value)]);
        if constexpr (audit::kEnabled) {
          audit::checks::CheckVersionMonotonic(now, w->id().value,
                                               cl.lc_seen[slot],
                                               w->state_version());
        }
        if (delta && cl.lc_seen[slot] == w->state_version()) {
          if constexpr (audit::kEnabled) {
            // The skip claims the stored snapshot is still exact: prove it
            // by rebuilding from live state, bypassing the node's cache.
            const metrics::NodeSnapshot* stored = cl.lc_storage.Find(w->id());
            audit::checks::CheckDeltaIdentity(
                now, w->id().value,
                stored != nullptr &&
                    metrics::SameContent(*stored, w->SnapshotFresh(now)));
          }
          m_pushes_skipped_->Add();
          continue;
        }
        cl.lc_storage.Update(w->Snapshot(now));
        cl.lc_seen[slot] = w->state_version();
        m_pushes_->Add();
      }
      cl.lc_storage.MarkClusterReachability(c, true);
      SimDuration rtt = topology_.Rtt(cl.spec.id, c);
      if (lf.latency_mult > 1.0) {
        rtt = static_cast<SimDuration>(static_cast<double>(rtt) *
                                       lf.latency_mult);
      }
      cl.lc_storage.UpdateRtt(c, rtt);
    }
  }
  // The acting central's BE storage sees every reachable cluster.
  if (MasterAlive(acting_central_)) {
    for (auto& cl : clusters_) {
      const LinkFault lf = LinkStateOf(acting_central_, cl.spec.id);
      if (lf.cut) {
        be_storage_.MarkClusterReachability(cl.spec.id, false);
        continue;
      }
      for (const auto& w : cl.workers) {
        const auto slot = static_cast<std::size_t>(
            worker_slot_[static_cast<std::size_t>(w->id().value)]);
        if constexpr (audit::kEnabled) {
          audit::checks::CheckVersionMonotonic(now, w->id().value,
                                               be_seen_[slot],
                                               w->state_version());
        }
        if (delta && be_seen_[slot] == w->state_version()) {
          if constexpr (audit::kEnabled) {
            const metrics::NodeSnapshot* stored = be_storage_.Find(w->id());
            audit::checks::CheckDeltaIdentity(
                now, w->id().value,
                stored != nullptr &&
                    metrics::SameContent(*stored, w->SnapshotFresh(now)));
          }
          m_pushes_skipped_->Add();
          continue;
        }
        be_storage_.Update(w->Snapshot(now));
        be_seen_[slot] = w->state_version();
        m_pushes_->Add();
      }
      be_storage_.MarkClusterReachability(cl.spec.id, true);
      SimDuration rtt = topology_.Rtt(acting_central_, cl.spec.id);
      if (lf.latency_mult > 1.0) {
        rtt = static_cast<SimDuration>(static_cast<double>(rtt) *
                                       lf.latency_mult);
      }
      be_storage_.UpdateRtt(cl.spec.id, rtt);
    }
  }
}

void EdgeCloudSystem::SampleMetrics(SimTime now) {
  double used = 0.0, used_lc = 0.0, used_be = 0.0, cap = 0.0;
  if (cfg_.fast_path) {
    // Aggregates are maintained at admission/completion via usage-delta
    // callbacks; integer sums make this bit-identical to the full scan.
    used = static_cast<double>(use_total_);
    used_lc = static_cast<double>(use_lc_);
    used_be = static_cast<double>(use_be_);
    cap = static_cast<double>(cap_total_);
  } else {
    for (const WorkerNode* node : worker_list_) {
      used += static_cast<double>(node->cpu_in_use());
      used_lc += static_cast<double>(node->cpu_in_use_lc());
      used_be += static_cast<double>(node->cpu_in_use_be());
      cap += static_cast<double>(node->spec().capacity.cpu);
    }
  }
  PeriodStats& p = CurrentPeriod();
  p.util_total = cap > 0.0 ? used / cap : 0.0;
  p.util_lc = cap > 0.0 ? used_lc / cap : 0.0;
  p.util_be = cap > 0.0 ? used_be / cap : 0.0;
  tss_.Gauge("util.total", now, p.util_total);
  tss_.Gauge("util.lc", now, p.util_lc);
  tss_.Gauge("util.be", now, p.util_be);
  g_util_total_->Set(p.util_total);
  g_util_lc_->Set(p.util_lc);
  g_util_be_->Set(p.util_be);
  period_stats_.push_back(PeriodStats{now});
}

void EdgeCloudSystem::Run(SimTime until) { sim_.RunUntil(until); }

RunSummary EdgeCloudSystem::Summary() const {
  RunSummary s;
  std::vector<double> lc_latencies;
  for (const auto& rec : records_) {
    if (!rec.request.id.valid()) continue;
    const auto& svc = catalog_->Get(rec.request.service);
    if (svc.is_lc()) {
      s.lc_total += 1;
      if (rec.outcome == Outcome::kCompleted) {
        s.lc_completed += 1;
        if (rec.qos_met) s.lc_qos_met += 1;
        lc_latencies.push_back(ToMilliseconds(rec.latency));
      } else if (rec.outcome == Outcome::kAbandoned) {
        s.lc_abandoned += 1;
      } else if (rec.outcome == Outcome::kDropped) {
        s.lc_dropped += 1;
      }
    } else {
      s.be_total += 1;
      if (rec.outcome == Outcome::kCompleted) s.be_completed += 1;
      if (rec.outcome == Outcome::kDropped) s.be_dropped += 1;
    }
  }
  s.fault_requeues = m_fault_requeues_->value();
  s.qos_satisfaction =
      s.lc_total > 0
          ? static_cast<double>(s.lc_qos_met) / static_cast<double>(s.lc_total)
          : 0.0;
  s.be_throughput = static_cast<double>(s.be_completed);
  s.mean_latency_ms = Mean(lc_latencies);
  s.p95_latency_ms = Percentile(lc_latencies, 0.95);
  RunningStat util;
  for (const auto& p : period_stats_) util.Add(p.util_total);
  s.mean_util = util.mean();
  return s;
}

}  // namespace tango::k8s
