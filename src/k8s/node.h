// Worker node: executes service requests under processor-sharing CPU
// semantics, with admission, queuing, eviction, and vertical-scaling latency
// delegated to the installed AllocationPolicy.
//
// Execution model: each admitted request carries remaining CPU work in
// millicore-microseconds. Whenever the running set or the grants change, the
// node re-accounts progress and reschedules completion events — the standard
// processor-sharing discrete-event pattern. Memory is held for a request's
// whole residency; CPU grants are recomputed instantaneously (compressible
// vs incompressible resources, §4.1).
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "cgroup/cgroup.h"
#include "k8s/allocation.h"
#include "metrics/state_storage.h"
#include "scope/scope.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace tango::storm {
class InterferenceModel;
}  // namespace tango::storm

namespace tango::k8s {

/// Emitted when a request finishes on a node.
struct CompletionInfo {
  workload::Request request;
  NodeId node;
  SimTime node_arrival = 0;   // when the request reached this node
  SimTime exec_start = 0;     // when it was admitted
  SimTime completed = 0;
};

struct NodeTunables {
  /// LC requests not started by arrival + factor×γ are abandoned.
  double lc_abandon_factor = 2.0;
  /// BE requests still queued after this long bounce back for
  /// rescheduling (§5.3.2's "returned to the scheduling queue").
  SimDuration be_requeue_timeout = 10 * kSecond;
  /// Per-request CPU grant cap as a multiple of its minimum need
  /// (diminishing returns of extra cores).
  double speedup_cap = 2.0;
  /// Serve Snapshot() from the version-keyed cache when the node is clean.
  /// The system clears this on the full-rebuild reference path
  /// (SystemConfig::fast_path = false) so the baseline really pays a
  /// rebuild per push, like the monitoring stack it models.
  bool cache_snapshots = true;
  /// Co-location interference model (storm): co-runner CPU/membw/LLC
  /// pressure inflates execution time per the victim's sensitivity
  /// profile. Null (the default) disables the coupling entirely — the
  /// node then executes the exact original float expressions and its
  /// event stream stays byte-identical to an interference-free build.
  const storm::InterferenceModel* interference = nullptr;
};

class WorkerNode {
 public:
  struct Callbacks {
    std::function<void(const CompletionInfo&)> on_complete;
    /// LC request dropped because it aged out before starting execution.
    std::function<void(const workload::Request&, SimTime)> on_abandon;
    /// BE request evicted (memory preemption) or timed out waiting —
    /// the owner should re-queue it for rescheduling.
    std::function<void(const workload::Request&)> on_be_return;
    /// Fired whenever the node's CPU-usage totals change, with the signed
    /// deltas — lets the owner keep system-wide aggregates incrementally
    /// instead of rescanning every node per metrics period.
    std::function<void(Millicores d_total, Millicores d_lc, Millicores d_be)>
        on_usage_delta;
  };

  using Tunables = NodeTunables;

  WorkerNode(sim::Simulator* sim, NodeSpec spec,
             const workload::ServiceCatalog* catalog,
             const AllocationPolicy* policy, Callbacks callbacks,
             NodeTunables tunables = NodeTunables{});

  /// A request arrives at the node (already dispatched + transferred).
  /// Must not be called on a crashed node — the owner checks liveness at
  /// delivery time and re-queues instead.
  void Enqueue(const workload::Request& request);

  /// Swap the allocation policy (used by experiments that toggle HRM).
  void SetPolicy(const AllocationPolicy* policy);

  // ---- Liveness (driven by fault::FaultPlane via the system) -----------
  bool alive() const { return alive_; }
  bool draining() const { return draining_; }

  /// Kill the node: every running and queued request is lost and returned
  /// (id + service only — the owner resolves the full request from its
  /// records and re-queues or drops it). All pending completion/activation
  /// events are cancelled so no callback fires into the dead node.
  std::vector<workload::Request> Crash();

  /// Bring a crashed node back, empty. BE containers restart from scratch
  /// on their next placement (§4.1 semantics: BE is evictable/restartable).
  void Recover();

  /// Stop admitting new work; running requests finish, queued requests are
  /// handed back for rescheduling elsewhere.
  std::vector<workload::Request> Drain();
  void Undrain();

  const NodeSpec& spec() const { return spec_; }
  NodeId id() const { return spec_.id; }

  // ---- Telemetry -------------------------------------------------------
  // Usage totals are maintained incrementally (refreshed whenever the
  // running set or the grants change), so every getter is O(1).
  Millicores cpu_in_use() const { return use_total_; }
  Millicores cpu_in_use_lc() const { return use_lc_; }
  Millicores cpu_in_use_be() const { return use_be_; }
  MiB mem_in_use() const { return mem_use_; }
  MiB mem_in_use_lc() const { return mem_use_lc_; }
  int running_count() const { return static_cast<int>(running_.size()); }
  int running_lc() const { return running_lc_count_; }
  int queued_count() const {
    return static_cast<int>(queue_lc_.size() + queue_be_.size());
  }

  /// Monotonic version, bumped on every transition that can change the
  /// node's snapshot (admission, completion, scaling, queue churn, fault
  /// state, policy swap). Version equality implies snapshot-content
  /// equality (modulo `recorded_at`), which is what lets the state-sync
  /// fast path skip clean nodes.
  std::uint64_t state_version() const { return state_version_; }

  /// The snapshot is rebuilt only when `state_version()` changed since the
  /// last call; `recorded_at` is stamped with `now` either way.
  metrics::NodeSnapshot Snapshot(SimTime now) const;

  /// Cache-bypassing rebuild — always recomputes from live state. The
  /// TANGO_AUDIT delta-identity checker uses it to prove that a skipped
  /// push would have been content-identical to the stored snapshot.
  metrics::NodeSnapshot SnapshotFresh(SimTime now) const;

  /// Scaling operations performed (D-VPA ops under HRM; 0 under native).
  std::int64_t scaling_ops() const { return scaling_ops_; }

  /// The node's cgroup view (pods/containers created lazily per service).
  cgroup::Hierarchy& cgroups() { return cgroups_; }
  /// Container cgroup path for a service (created on first use).
  std::string ContainerCgroupPath(ServiceId service);

 private:
  struct Running {
    ExecSlot slot;
    bool active = false;  // false while the admission scaling op runs
    Millicores grant = 0;
    /// Interference slowdown (>= 1) in effect since the last Recompute;
    /// exactly 1.0 whenever NodeTunables::interference is null.
    double slow = 1.0;
    SimTime last_update = 0;
    SimTime node_arrival = 0;
    SimTime exec_start = 0;
    sim::EventHandle completion = sim::kInvalidEvent;
    sim::EventHandle activation = sim::kInvalidEvent;
    /// TangoScope execution span (admission → completion/eviction/crash);
    /// kInvalidSpan unless tracing is active.
    scope::SpanId span = scope::kInvalidSpan;
  };
  struct Queued {
    workload::Request request;
    SimTime enqueued = 0;
  };

  void TryAdmit();
  void Recompute();
  void AccountProgress();
  void CompleteAt(RequestId id);
  void EvictRunning(std::size_t index);
  void SweepQueues();
  ExecSlot MakeSlot(const workload::Request& r, SimTime enqueued) const;
  MiB MemInUseInternal() const;
  void MarkDirty() { ++state_version_; }
  /// Recompute the cached usage totals from `running_` and report the CPU
  /// deltas via `on_usage_delta`.
  void RefreshUsage();

  sim::Simulator* sim_;
  NodeSpec spec_;
  const workload::ServiceCatalog* catalog_;
  const AllocationPolicy* policy_;
  Callbacks callbacks_;
  Tunables tunables_;
  cgroup::Hierarchy cgroups_;

  std::vector<Running> running_;
  std::deque<Queued> queue_lc_;
  std::deque<Queued> queue_be_;
  std::int64_t scaling_ops_ = 0;
  bool in_recompute_ = false;
  bool alive_ = true;
  bool draining_ = false;

  // Incrementally maintained telemetry (see RefreshUsage).
  Millicores use_total_ = 0;
  Millicores use_lc_ = 0;
  Millicores use_be_ = 0;
  MiB mem_use_ = 0;
  MiB mem_use_lc_ = 0;
  int running_lc_count_ = 0;

  std::uint64_t state_version_ = 1;
  mutable std::uint64_t snap_cache_version_ = 0;  // 0 = cache empty
  mutable metrics::NodeSnapshot snap_cache_;
};

}  // namespace tango::k8s
