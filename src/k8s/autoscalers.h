// Kubernetes Horizontal Pod Autoscaler, behaviour-level.
//
// §2.1 argues HPA is a poor fit for millisecond-level LC services: scaling
// out takes a control-loop period (15 s by default) plus container start-up
// time, far longer than an LC deadline. This module reproduces that
// behaviour so the ablation bench can contrast it with D-VPA's 23 ms
// in-place scaling:
//
//   * HpaAllocationPolicy — like the native fixed-fraction policy, but the
//     per-(node, service) capacity is `replicas × one replica's resources`;
//   * HpaController — the control loop: every `period`, scale each deployment
//     toward `ceil(replicas · utilization / target)`; new replicas only
//     become ready after `startup_latency`.
#pragma once

#include <functional>
#include <map>

#include "k8s/allocation.h"
#include "k8s/system.h"

namespace tango::k8s {

struct HpaConfig {
  /// Control loop period (K8s default: 15 s).
  SimDuration period = 15 * kSecond;
  /// Container cold-start time at the edge (image pull + init).
  SimDuration startup_latency = 2300 * kMillisecond;
  /// Target utilization (K8s default: 80 %).
  double target_utilization = 0.8;
  int min_replicas = 1;
  int max_replicas = 16;
};

class HpaAllocationPolicy : public AllocationPolicy {
 public:
  HpaAllocationPolicy(const workload::ServiceCatalog* catalog,
                      HpaConfig cfg = {});

  ResourceVec EffectiveDemand(NodeId node,
                              const workload::ServiceSpec& service)
      const override;
  AdmitDecision Admit(const NodeSpec& node, const ExecSlot& incoming,
                      const std::vector<ExecSlot>& running) const override;
  void ComputeGrants(const NodeSpec& node,
                     const std::vector<ExecSlot>& running,
                     std::vector<Millicores>& grants) const override;
  std::string name() const override { return "k8s-hpa"; }

  /// Ready replica count for a deployment (node × service).
  int ReadyReplicas(NodeId node, ServiceId service, SimTime now) const;
  /// Total replicas including ones still starting.
  int TotalReplicas(NodeId node, ServiceId service) const;

  /// One control-loop pass: observe demand recorded by Admit/ComputeGrants
  /// and scale each deployment toward the target utilization.
  void ControlLoop(SimTime now);

  std::int64_t scale_ups() const { return scale_ups_; }
  std::int64_t scale_downs() const { return scale_downs_; }
  const HpaConfig& config() const { return cfg_; }

 private:
  struct Deployment {
    int replicas = 1;
    /// Replicas still cold-starting: count ready at `ready_at`.
    std::vector<SimTime> starting;
    /// Peak concurrent requests observed since the last control pass.
    int observed_demand = 0;
  };
  using Key = std::pair<NodeId, ServiceId>;

  Deployment& Dep(NodeId node, ServiceId service) const;

  const workload::ServiceCatalog* catalog_;
  HpaConfig cfg_;
  mutable std::map<Key, Deployment> deployments_;
  mutable SimTime now_hint_ = 0;  // advanced by Admit/ControlLoop callers
  std::int64_t scale_ups_ = 0;
  std::int64_t scale_downs_ = 0;

 public:
  /// The policy interface carries no clock; the controller advances it.
  void SetNow(SimTime now) const { now_hint_ = now; }
};

/// Wires the HPA control loop onto a system's simulator.
class HpaController {
 public:
  HpaController(EdgeCloudSystem* system, HpaAllocationPolicy* policy);
  ~HpaController();
  HpaController(const HpaController&) = delete;
  HpaController& operator=(const HpaController&) = delete;

 private:
  std::function<void()> stop_;
};

}  // namespace tango::k8s
