#include "k8s/autoscalers.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tango::k8s {

HpaAllocationPolicy::HpaAllocationPolicy(
    const workload::ServiceCatalog* catalog, HpaConfig cfg)
    : catalog_(catalog), cfg_(cfg) {
  TANGO_CHECK(catalog_ != nullptr, "catalog required");
}

HpaAllocationPolicy::Deployment& HpaAllocationPolicy::Dep(
    NodeId node, ServiceId service) const {
  return deployments_[{node, service}];
}

int HpaAllocationPolicy::ReadyReplicas(NodeId node, ServiceId service,
                                       SimTime now) const {
  const Deployment& d = Dep(node, service);
  int ready = d.replicas - static_cast<int>(d.starting.size());
  for (const SimTime t : d.starting) {
    if (t <= now) ++ready;
  }
  return std::max(cfg_.min_replicas, ready);
}

int HpaAllocationPolicy::TotalReplicas(NodeId node, ServiceId service) const {
  return Dep(node, service).replicas;
}

ResourceVec HpaAllocationPolicy::EffectiveDemand(
    NodeId /*node*/, const workload::ServiceSpec& service) const {
  return {service.cpu_demand, service.mem_demand};
}

AdmitDecision HpaAllocationPolicy::Admit(
    const NodeSpec& node, const ExecSlot& incoming,
    const std::vector<ExecSlot>& running) const {
  // One request per ready replica — the pod is the unit of concurrency.
  int concurrent = 0;
  for (const auto& s : running) {
    if (s.service == incoming.service) ++concurrent;
  }
  Deployment& d = Dep(node.id, incoming.service);
  d.observed_demand = std::max(d.observed_demand, concurrent + 1);
  AdmitDecision out;
  out.admit = concurrent < ReadyReplicas(node.id, incoming.service, now_hint_);
  return out;  // HPA never evicts
}

void HpaAllocationPolicy::ComputeGrants(const NodeSpec& node,
                                        const std::vector<ExecSlot>& running,
                                        std::vector<Millicores>& grants) const {
  // Each admitted request gets its replica's resources; the node cap scales
  // everything down pro rata when replicas oversubscribe the hardware.
  grants.assign(running.size(), 0);
  if (running.empty()) return;
  double ask = 0.0;
  for (const auto& s : running) ask += static_cast<double>(s.need.cpu);
  const double capacity = static_cast<double>(node.capacity.cpu);
  const double scale = ask <= capacity ? 1.0 : capacity / ask;
  for (std::size_t i = 0; i < running.size(); ++i) {
    grants[i] = static_cast<Millicores>(
        std::floor(static_cast<double>(running[i].need.cpu) * scale));
  }
}

void HpaAllocationPolicy::ControlLoop(SimTime now) {
  now_hint_ = now;
  for (auto& [key, d] : deployments_) {
    // Promote replicas that finished starting.
    d.starting.erase(
        std::remove_if(d.starting.begin(), d.starting.end(),
                       [now](SimTime t) { return t <= now; }),
        d.starting.end());
    const int ready = d.replicas - static_cast<int>(d.starting.size());
    const double utilization =
        ready > 0 ? static_cast<double>(d.observed_demand) /
                        static_cast<double>(ready)
                  : 1.0;
    // K8s formula: desired = ceil(current × utilization / target).
    const int desired = std::clamp(
        static_cast<int>(std::ceil(static_cast<double>(std::max(1, ready)) *
                                   utilization / cfg_.target_utilization)),
        cfg_.min_replicas, cfg_.max_replicas);
    if (desired > d.replicas) {
      for (int i = d.replicas; i < desired; ++i) {
        d.starting.push_back(now + cfg_.startup_latency);
      }
      d.replicas = desired;
      ++scale_ups_;
    } else if (desired < d.replicas) {
      d.replicas = desired;  // scale-down is immediate (pods terminate fast)
      while (static_cast<int>(d.starting.size()) > d.replicas) {
        d.starting.pop_back();
      }
      ++scale_downs_;
    }
    d.observed_demand = 0;
  }
}

HpaController::HpaController(EdgeCloudSystem* system,
                             HpaAllocationPolicy* policy) {
  TANGO_CHECK(system != nullptr && policy != nullptr, "hpa wiring");
  // Keep the policy's clock fresh at a fine grain so ReadyReplicas sees
  // replica start-ups between control passes.
  auto stop_clock = sim::SchedulePeriodic(
      system->simulator(), 100 * kMillisecond, 100 * kMillisecond,
      [policy](SimTime now) { policy->SetNow(now); });
  auto stop_loop = sim::SchedulePeriodic(
      system->simulator(), policy->config().period, policy->config().period,
      [policy](SimTime now) { policy->ControlLoop(now); });
  stop_ = [stop_clock, stop_loop]() {
    stop_clock();
    stop_loop();
  };
}

HpaController::~HpaController() {
  if (stop_) stop_();
}

}  // namespace tango::k8s
