#include "k8s/allocation.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tango::k8s {

NativeAllocationPolicy::NativeAllocationPolicy(
    const workload::ServiceCatalog* catalog,
    std::map<ServiceId, double> limit_fraction)
    : catalog_(catalog), fraction_(std::move(limit_fraction)) {
  TANGO_CHECK(catalog_ != nullptr, "catalog required");
}

std::map<ServiceId, double> NativeAllocationPolicy::ProportionalFractions(
    const workload::ServiceCatalog& catalog) {
  double total = 0.0;
  for (const auto& s : catalog.all()) total += static_cast<double>(s.cpu_demand);
  std::map<ServiceId, double> out;
  for (const auto& s : catalog.all()) {
    out[s.id] = static_cast<double>(s.cpu_demand) / total;
  }
  return out;
}

ResourceVec NativeAllocationPolicy::ContainerLimit(const NodeSpec& node,
                                                   ServiceId service) const {
  auto it = fraction_.find(service);
  const double f = it == fraction_.end() ? 0.0 : it->second;
  return {static_cast<Millicores>(f * static_cast<double>(node.capacity.cpu)),
          static_cast<MiB>(f * static_cast<double>(node.capacity.mem))};
}

ResourceVec NativeAllocationPolicy::EffectiveDemand(
    NodeId /*node*/, const workload::ServiceSpec& service) const {
  // Native K8s never adjusts the request; the deployment values stand.
  return {service.cpu_demand, service.mem_demand};
}

AdmitDecision NativeAllocationPolicy::Admit(
    const NodeSpec& node, const ExecSlot& incoming,
    const std::vector<ExecSlot>& running) const {
  // The container of `incoming.service` must have headroom for both CPU
  // (reserved share) and memory within its fixed limit.
  const ResourceVec limit = ContainerLimit(node, incoming.service);
  ResourceVec used;
  for (const auto& slot : running) {
    if (slot.service == incoming.service) used += slot.need;
  }
  AdmitDecision d;
  d.admit = (used + incoming.need).FitsWithin(limit);
  return d;  // native K8s never evicts to admit
}

void NativeAllocationPolicy::ComputeGrants(
    const NodeSpec& node, const std::vector<ExecSlot>& running,
    std::vector<Millicores>& grants) const {
  grants.assign(running.size(), 0);
  if (running.empty()) return;
  // Stage 1: inside each service container, requests ask for their need;
  // the container's fixed CPU limit caps the sum (scale down pro rata).
  std::map<ServiceId, Millicores> ask_by_service;
  for (const auto& slot : running) {
    ask_by_service[slot.service] += slot.need.cpu;
  }
  std::map<ServiceId, double> scale;
  for (const auto& [svc, ask] : ask_by_service) {
    const Millicores limit = ContainerLimit(node, svc).cpu;
    scale[svc] = ask <= limit
                     ? 1.0
                     : static_cast<double>(limit) / static_cast<double>(ask);
  }
  // Stage 2: node capacity caps the total (pro rata across everything) —
  // the "unordered competition" of Figure 9(c): LC gets no priority.
  double total = 0.0;
  for (const auto& slot : running) {
    total += static_cast<double>(slot.need.cpu) * scale[slot.service];
  }
  const double node_scale =
      total <= static_cast<double>(node.capacity.cpu)
          ? 1.0
          : static_cast<double>(node.capacity.cpu) / total;
  for (std::size_t i = 0; i < running.size(); ++i) {
    const auto& slot = running[i];
    grants[i] = static_cast<Millicores>(std::floor(
        static_cast<double>(slot.need.cpu) * scale[slot.service] *
        node_scale));
  }
}

}  // namespace tango::k8s
