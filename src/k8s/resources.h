// Resource vectors and node/cluster specs for the edge-cloud substrate.
#pragma once

#include <algorithm>

#include "common/ids.h"
#include "common/units.h"

namespace tango::k8s {

/// CPU + memory bundle (the two resources the paper's formulation tracks).
struct ResourceVec {
  Millicores cpu = 0;
  MiB mem = 0;

  ResourceVec operator+(const ResourceVec& o) const {
    return {cpu + o.cpu, mem + o.mem};
  }
  ResourceVec operator-(const ResourceVec& o) const {
    return {cpu - o.cpu, mem - o.mem};
  }
  ResourceVec& operator+=(const ResourceVec& o) {
    cpu += o.cpu;
    mem += o.mem;
    return *this;
  }
  ResourceVec& operator-=(const ResourceVec& o) {
    cpu -= o.cpu;
    mem -= o.mem;
    return *this;
  }
  bool FitsWithin(const ResourceVec& capacity) const {
    return cpu <= capacity.cpu && mem <= capacity.mem;
  }
  bool NonNegative() const { return cpu >= 0 && mem >= 0; }
};

/// Static description of one worker node.
struct NodeSpec {
  NodeId id;
  ClusterId cluster;
  ResourceVec capacity{4 * kCore, 8 * 1024};  // paper: 4 CPUs / 8 GB workers
};

/// Static description of one cluster (1 master + N workers).
struct ClusterSpec {
  ClusterId id;
  int num_workers = 4;
  ResourceVec worker_capacity{4 * kCore, 8 * 1024};
  /// When true, worker capacities are jittered per node to model edge
  /// heterogeneity (3-20 virtual workers of varied size, §6.1).
  bool heterogeneous = false;
  Millicores min_cpu = 2 * kCore;
  Millicores max_cpu = 8 * kCore;
  MiB min_mem = 4 * 1024;
  MiB max_mem = 16 * 1024;
};

}  // namespace tango::k8s
