#include "k8s/partition.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace tango::k8s {

const char* PartitionStrategyName(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kContiguous:
      return "contiguous";
    case PartitionStrategy::kRoundRobin:
      return "round-robin";
    case PartitionStrategy::kWorkerBalanced:
      return "worker-balanced";
  }
  return "?";
}

Partition PartitionClusters(const std::vector<ClusterSpec>& specs,
                            int num_shards, PartitionStrategy strategy) {
  const int n = static_cast<int>(specs.size());
  TANGO_CHECK(n > 0, "cannot partition an empty cluster layout");
  num_shards = std::clamp(num_shards, 1, n);

  Partition p;
  p.num_shards = num_shards;
  p.shard_of.assign(static_cast<std::size_t>(n), 0);

  switch (strategy) {
    case PartitionStrategy::kContiguous: {
      // First (n % num_shards) shards take one extra cluster.
      const int base = n / num_shards;
      const int extra = n % num_shards;
      int next = 0;
      for (int s = 0; s < num_shards; ++s) {
        const int take = base + (s < extra ? 1 : 0);
        for (int k = 0; k < take; ++k) {
          p.shard_of[static_cast<std::size_t>(next++)] = s;
        }
      }
      break;
    }
    case PartitionStrategy::kRoundRobin: {
      for (int c = 0; c < n; ++c) {
        p.shard_of[static_cast<std::size_t>(c)] = c % num_shards;
      }
      break;
    }
    case PartitionStrategy::kWorkerBalanced: {
      std::vector<int> order(static_cast<std::size_t>(n));
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return specs[static_cast<std::size_t>(a)].num_workers >
               specs[static_cast<std::size_t>(b)].num_workers;
      });
      std::vector<std::int64_t> load(static_cast<std::size_t>(num_shards), 0);
      for (const int c : order) {
        // Lightest shard; ties break on the lowest shard index so the
        // assignment is independent of container internals.
        int best = 0;
        for (int s = 1; s < num_shards; ++s) {
          if (load[static_cast<std::size_t>(s)] <
              load[static_cast<std::size_t>(best)]) {
            best = s;
          }
        }
        p.shard_of[static_cast<std::size_t>(c)] = best;
        load[static_cast<std::size_t>(best)] +=
            specs[static_cast<std::size_t>(c)].num_workers;
      }
      break;
    }
  }

  p.clusters.assign(static_cast<std::size_t>(num_shards), {});
  for (int c = 0; c < n; ++c) {  // ascending id order within each shard
    p.clusters[static_cast<std::size_t>(p.shard_of[static_cast<std::size_t>(
                   c)])]
        .push_back(ClusterId{c});
  }
  return p;
}

std::vector<int> ShardWorkerCounts(const std::vector<ClusterSpec>& specs,
                                   const Partition& partition) {
  std::vector<int> counts(static_cast<std::size_t>(partition.num_shards), 0);
  for (std::size_t c = 0; c < specs.size(); ++c) {
    counts[static_cast<std::size_t>(partition.shard_of[c])] +=
        specs[c].num_workers;
  }
  return counts;
}

}  // namespace tango::k8s
