// Node-level resource allocation policies.
//
// A WorkerNode delegates three decisions to its AllocationPolicy:
//   1. admission — may this request start executing now (and must BE work be
//      evicted to make room)?
//   2. CPU grants — how are the node's millicores split across the running
//      requests (recomputed on every change; processor-sharing execution)?
//   3. admission latency — the vertical-scaling cost paid before execution
//      starts (a D-VPA cgroup op under HRM, zero under native fixed limits).
//
// k8s ships NativeAllocationPolicy (fixed per-service container limits and
// unordered competition — the paper's "K8s-native"); the hrm module provides
// the HRM policy implementing §4.1's regulations.
#pragma once

#include <map>
#include <vector>

#include "k8s/resources.h"
#include "workload/service.h"

namespace tango::k8s {

/// One executing (or admission-candidate) request on a node.
struct ExecSlot {
  RequestId request;
  ServiceId service;
  bool is_lc = false;
  /// Minimum CPU/memory this request needs (after any HRM re-assurance
  /// adjustment — r^{c,k}_i, r^{m,k}_i of §5.2.1).
  ResourceVec need;
  /// Remaining CPU work in millicore-microseconds.
  double remaining_work = 0.0;
  SimTime enqueued = 0;
};

struct AdmitDecision {
  bool admit = false;
  /// Indices into the running set of BE requests that must be evicted first
  /// (incompressible-resource preemption, §4.1).
  std::vector<std::size_t> evict;
};

class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  /// Effective minimum demand of `service` on `node` — the hook the QoS
  /// re-assurance mechanism (§4.3) uses to grow/shrink requests.
  virtual ResourceVec EffectiveDemand(NodeId node,
                                      const workload::ServiceSpec& service)
      const = 0;

  /// May `incoming` start now, given the running set?
  virtual AdmitDecision Admit(const NodeSpec& node, const ExecSlot& incoming,
                              const std::vector<ExecSlot>& running) const = 0;

  /// Split the node's CPU across running requests. `grants[i]` corresponds
  /// to `running[i]`; a grant of 0 stalls the request (it keeps memory).
  virtual void ComputeGrants(const NodeSpec& node,
                             const std::vector<ExecSlot>& running,
                             std::vector<Millicores>& grants) const = 0;

  /// Vertical-scaling latency charged when a request is admitted.
  virtual SimDuration AdmissionLatency() const { return 0; }

  /// Whether LC requests may reclaim resources held by BE work (§4.1's
  /// regulations). Drives the "available for LC" view in node snapshots.
  virtual bool PreemptsBeForLc() const { return false; }

  virtual std::string name() const = 0;
};

/// Native Kubernetes behaviour: each service gets a fixed container limit on
/// every node (chosen at deployment from the trace's aggregate usage ratio);
/// requests compete inside those silos. No preemption, no dynamic scaling.
class NativeAllocationPolicy : public AllocationPolicy {
 public:
  /// `limit_fraction[s]` — share of node capacity reserved for service s.
  /// Fractions should sum to <= 1; anything unlisted gets 0 (rejected).
  NativeAllocationPolicy(const workload::ServiceCatalog* catalog,
                         std::map<ServiceId, double> limit_fraction);

  /// Convenience: split capacity across all services proportionally to
  /// their catalog demand (cpu), the "initialize from trace ratio" setup of
  /// §7.1.
  static std::map<ServiceId, double> ProportionalFractions(
      const workload::ServiceCatalog& catalog);

  ResourceVec EffectiveDemand(
      NodeId node, const workload::ServiceSpec& service) const override;
  AdmitDecision Admit(const NodeSpec& node, const ExecSlot& incoming,
                      const std::vector<ExecSlot>& running) const override;
  void ComputeGrants(const NodeSpec& node,
                     const std::vector<ExecSlot>& running,
                     std::vector<Millicores>& grants) const override;
  std::string name() const override { return "k8s-native"; }

  ResourceVec ContainerLimit(const NodeSpec& node, ServiceId service) const;

 private:
  const workload::ServiceCatalog* catalog_;
  std::map<ServiceId, double> fraction_;
};

}  // namespace tango::k8s
