// EdgeCloudSystem: the dual-space experimental system of §6.1 as one
// deterministic discrete-event simulation.
//
// It owns the simulator, the WAN/LAN topology, every cluster (1 master + N
// workers), the per-master state storages, the QoS detector, and the request
// lifecycle:
//
//   arrival at origin master ──► LC queue (dispatched by the cluster's
//   LcScheduler, geo-nearby targets only) or BE queue (forwarded to the
//   central cluster and dispatched by the BeScheduler) ──► WAN/LAN transfer
//   ──► worker admission/execution ──► result returned to the origin ──►
//   QoS bookkeeping.
//
// Schedulers and allocation policies are plug-ins; swapping them produces
// every row of the paper's evaluation matrix.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "k8s/node.h"
#include "k8s/scheduling_api.h"
#include "metrics/qos_detector.h"
#include "metrics/timeseries.h"
#include "net/egress.h"
#include "net/topology.h"
#include "scope/metrics.h"
#include "scope/scope.h"

namespace tango::k8s {

struct SystemConfig {
  std::vector<ClusterSpec> clusters;
  net::LinkParams link{};
  /// Square side of the deployment region (km) for the random layout.
  double region_km = 1200.0;
  /// LC requests may be dispatched within this radius of home (§5.2, 500 km).
  double lc_nearby_radius_km = 500.0;
  /// Metrics/state push period — matches the 100 ms QoS collection window
  /// (§4.3) that drives the paper's metric pushes.
  SimDuration state_sync_period = 100 * kMillisecond;
  /// Batching windows of the two dispatchers.
  SimDuration lc_dispatch_interval = 2 * kMillisecond;
  SimDuration be_dispatch_interval = 5 * kMillisecond;
  /// Data-collection period — 800 ms per §6.2.
  SimDuration metrics_period = 800 * kMillisecond;
  WorkerNode::Tunables node_tunables{};
  /// Central cluster override (-1 = geographically central one).
  int central_cluster = -1;
  /// Model per-cluster egress bandwidth contention (§4.1 lists bandwidth
  /// among the compressible resources; the regulator gives LC priority
  /// whenever the allocation policy preempts BE for LC).
  bool regulate_bandwidth = true;
  net::EgressConfig egress{};
  std::uint64_t seed = 1234;
  /// How long until a master's failure detector notices lost in-flight
  /// work (missed heartbeat / delivery timeout) and re-queues it.
  SimDuration fault_detect_delay = 100 * kMillisecond;
  /// A request lost this many times is dropped (counted, never silent).
  int max_fault_reroutes = 16;
  /// Fast monitoring path: delta state sync (only nodes whose
  /// `state_version` changed since the last push) and O(1) metrics from
  /// incrementally maintained aggregates. `false` selects the full-rebuild
  /// reference path — same observable behavior, kept for identity checks
  /// and as the benchmark baseline.
  bool fast_path = true;
};

/// View over the delta state-sync counters (see SyncState). Since
/// TangoScope the authoritative values live in the system's metric
/// registry ("sync.*"); sync_stats() rebuilds this struct from them.
struct SyncStats {  // tango-lint: allow(stats-struct)
  std::int64_t syncs = 0;           // SyncState invocations
  std::int64_t pushes = 0;          // snapshots pushed into a storage
  std::int64_t pushes_skipped = 0;  // clean nodes skipped by the delta path
  std::int64_t full_resyncs = 0;    // seen-version resets (master failover)
};

/// Dynamic state of one inter-cluster link under fault injection.
struct LinkFault {
  double latency_mult = 1.0;  // scales propagation delay
  double loss = 0.0;          // per-transfer loss probability, [0,1)
  bool cut = false;           // full partition: nothing gets through
  bool faulty() const { return cut || latency_mult > 1.0 || loss > 0.0; }
};

/// Final outcome of one request. kDropped is fault-induced: the request was
/// lost more often than `max_fault_reroutes` allows, or arrived while no
/// master was reachable — it is counted, never silently discarded.
enum class Outcome { kPending, kCompleted, kAbandoned, kDropped };

struct RequestRecord {
  workload::Request request;
  Outcome outcome = Outcome::kPending;
  NodeId target;                 // last node it was dispatched to
  SimTime dispatched = -1;
  SimTime completed = -1;
  SimDuration latency = 0;       // end-to-end, incl. result return
  bool qos_met = false;          // LC only
  int reschedules = 0;           // BE bounce count
  int fault_reroutes = 0;        // times lost to a fault and re-queued
};

/// Per-800ms-period aggregate row (the unit of every time-series figure).
struct PeriodStats {
  SimTime period_start = 0;
  double util_total = 0.0;  // mean cpu utilization across workers [0,1]
  double util_lc = 0.0;
  double util_be = 0.0;
  int lc_arrived = 0;
  int lc_completed = 0;
  int lc_qos_met = 0;
  int lc_abandoned = 0;
  int be_completed = 0;
  int lost_requeued = 0;  // requests lost to a fault and re-queued
  int dropped = 0;        // requests dropped (re-route budget exhausted)
};

/// End-of-run summary (the paper's three headline metrics).
struct RunSummary {
  int lc_total = 0;
  int lc_completed = 0;
  int lc_qos_met = 0;
  int lc_abandoned = 0;
  int be_total = 0;
  int be_completed = 0;
  int lc_dropped = 0;
  int be_dropped = 0;
  std::int64_t fault_requeues = 0;  // lost-and-requeued transitions
  double qos_satisfaction = 0.0;  // φ  = met / arrived LC
  double be_throughput = 0.0;     // φ' = completed BE
  double mean_util = 0.0;
  double mean_latency_ms = 0.0;   // completed LC
  double p95_latency_ms = 0.0;
};

class EdgeCloudSystem {
 public:
  EdgeCloudSystem(SystemConfig cfg, const workload::ServiceCatalog* catalog);

  // ---- Wiring (call before Run) ----------------------------------------
  void SetLcScheduler(LcScheduler* sched) { lc_sched_ = sched; }
  void SetBeScheduler(BeScheduler* sched) { be_sched_ = sched; }
  /// Install an allocation policy on every worker node.
  void SetAllocationPolicy(const AllocationPolicy* policy);

  /// Queue every request of the trace for arrival at its origin cluster.
  void SubmitTrace(const workload::Trace& trace);

  /// Advance virtual time.
  void Run(SimTime until);

  // ---- Fault injection (driven by fault::FaultPlane) ---------------------
  // All calls are idempotent; each takes effect at the current virtual time.

  /// Kill a worker. Running and queued requests are lost; the owning master
  /// re-queues them after `fault_detect_delay`.
  void CrashWorker(NodeId id);
  /// Bring a crashed worker back, empty; schedulers see it at once and the
  /// BE dispatcher restarts evicted BE work on it (§4.1 restart semantics).
  void RecoverWorker(NodeId id);
  /// Gracefully drain a worker: stop admitting, re-route its queue now.
  void DrainWorker(NodeId id);
  void UndrainWorker(NodeId id);
  /// Install / clear a link fault between two clusters (order-insensitive).
  void SetLinkFault(ClusterId a, ClusterId b, LinkFault fault);
  void ClearLinkFault(ClusterId a, ClusterId b);
  /// Kill / recover a cluster master. A dead master's LC queue fails over
  /// to the nearest live master; if the acting BE central dies, a new
  /// central is elected (original central reclaims the role on recovery).
  void FailMaster(ClusterId cluster);
  void RecoverMaster(ClusterId cluster);

  bool WorkerAlive(NodeId id) const;
  bool MasterAlive(ClusterId cluster) const {
    return cluster.valid() &&
           master_alive_[static_cast<std::size_t>(cluster.value)];
  }
  int workers_alive() const;
  int masters_alive() const;
  ClusterId acting_central() const { return acting_central_; }
  LinkFault LinkStateOf(ClusterId a, ClusterId b) const;
  std::int64_t fault_requeues() const { return m_fault_requeues_->value(); }
  std::int64_t fault_drops() const { return m_fault_drops_->value(); }

  // ---- Introspection -----------------------------------------------------
  sim::Simulator& simulator() { return sim_; }
  const net::Topology& topology() const { return topology_; }
  metrics::QosDetector& qos_detector() { return qos_detector_; }
  metrics::TimeSeriesStore& timeseries() { return tss_; }
  const std::vector<RequestRecord>& records() const { return records_; }
  const std::vector<PeriodStats>& periods() const { return period_stats_; }
  RunSummary Summary() const;

  ClusterId central_cluster() const { return central_; }
  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  int num_workers() const { return static_cast<int>(worker_list_.size()); }
  /// Rebuilt from the "sync.*" registry counters (kept as a struct for
  /// existing consumers; see metrics_registry() for the full surface).
  SyncStats sync_stats() const;
  /// The system's TangoScope metric registry: request/QoS counters and
  /// latency histograms, sync and fault counters, utilization gauges.
  scope::MetricRegistry& metrics_registry() { return metrics_; }
  const scope::MetricRegistry& metrics_registry() const { return metrics_; }
  WorkerNode* FindWorker(NodeId id);
  std::vector<WorkerNode*> AllWorkers();
  NodeId MasterOf(ClusterId cluster) const;
  ClusterId ClusterOfNode(NodeId node) const;
  const metrics::StateStorage& LcStorage(ClusterId cluster) const;
  const metrics::StateStorage& BeStorage() const { return be_storage_; }
  const net::EgressRegulator& egress() const { return egress_; }
  const workload::ServiceCatalog& catalog() const { return *catalog_; }
  int lc_queue_length(ClusterId cluster) const;
  int be_queue_length() const {
    return static_cast<int>(be_queue_.size());
  }
  std::int64_t total_scaling_ops() const;

 private:
  struct Cluster {
    Cluster() = default;
    Cluster(Cluster&&) noexcept = default;
    Cluster& operator=(Cluster&&) noexcept = default;
    ClusterSpec spec;
    NodeId master;
    std::vector<std::unique_ptr<WorkerNode>> workers;
    std::deque<PendingRequest> lc_queue;
    bool lc_dispatch_pending = false;
    metrics::StateStorage lc_storage;
    /// Geo-nearby clusters (plus self) this master syncs from — the
    /// topology is static, so the scope is computed once at build time.
    std::vector<ClusterId> sync_scope;
    /// Last node state_version pushed into lc_storage, by worker slot.
    /// 0 never matches a live version, so zeroing forces a full re-push.
    std::vector<std::uint64_t> lc_seen;
  };

  void BuildClusters();
  void OnArrival(const workload::Request& request);
  void ScheduleLcDispatch(ClusterId cluster);
  void DispatchLc(ClusterId cluster);
  void ScheduleBeDispatch();
  void DispatchBe();
  void OnComplete(const CompletionInfo& info);
  void OnAbandon(const workload::Request& request, SimTime now);
  void OnBeReturn(NodeId from, const workload::Request& request);
  void SyncState(SimTime now);
  void SampleMetrics(SimTime now);
  /// Transfer delay via the topology plus the egress regulator (link-fault
  /// latency multipliers included).
  SimDuration Transfer(ClusterId from, ClusterId to, Bytes size, bool is_lc);
  /// Ship a request towards a worker, honoring link cuts (returns false:
  /// caller keeps it queued) and lossy links (lost in flight, detected and
  /// re-queued after a timeout).
  bool SendToWorker(ClusterId from, NodeId target,
                    const workload::Request& request, bool is_lc);
  /// Delivery-time hand-off: re-queues instead if the target died en route.
  void DeliverToWorker(NodeId target, const workload::Request& request);
  /// Forward a BE request from its origin eAP to the acting central master,
  /// retrying while the path or the master is down.
  void ForwardBeToCentral(const workload::Request& request);
  void ReturnBeToCentral(ClusterId from, const workload::Request& original,
                         int bounces);
  void ReturnLcResult(NodeId node, const workload::Request& original);
  /// Put a fault-lost request back into the right scheduling queue (or drop
  /// it once its re-route budget is spent).
  void RequeueLost(RequestId id);
  void HandleLost(std::vector<workload::Request> lost, SimDuration delay);
  void DropRequest(RequestRecord& rec);
  /// The master that serves `cluster`'s LC arrivals: itself when alive,
  /// else the nearest reachable live master (invalid id if none).
  ClusterId DelegateMaster(ClusterId cluster) const;
  /// The cluster that should host the central BE dispatcher right now.
  ClusterId ElectCentral() const;
  RequestRecord& Record(RequestId id);
  PeriodStats& CurrentPeriod();
  /// Open the root arrival→terminal span for a request (no-op unless
  /// tracing is active) and remember its handle so lifecycle sub-spans
  /// can parent onto it.
  void BeginRequestSpan(const workload::Request& request, bool is_lc);
  scope::SpanId RequestSpan(RequestId id) const;
  void EndRequestSpan(RequestId id, SimTime at);

  SystemConfig cfg_;
  const workload::ServiceCatalog* catalog_;
  sim::Simulator sim_;
  net::Topology topology_;
  Rng rng_;
  std::vector<Cluster> clusters_;
  // Dense node index: node ids are assigned 0..N-1 at build time, so flat
  // vectors replace the former std::map lookups on the hot paths. Masters
  // hold nullptr in node_index_ and -1 in worker_slot_. worker_list_ is in
  // ascending NodeId order (the former map iteration order).
  std::vector<WorkerNode*> node_index_;
  std::vector<ClusterId> node_cluster_;
  std::vector<WorkerNode*> worker_list_;
  std::vector<std::int32_t> worker_slot_;
  ClusterId central_;
  LcScheduler* lc_sched_ = nullptr;
  BeScheduler* be_sched_ = nullptr;
  const AllocationPolicy* default_policy_;
  std::unique_ptr<NativeAllocationPolicy> native_policy_;

  std::deque<PendingRequest> be_queue_;  // at the acting central master
  bool be_dispatch_pending_ = false;
  metrics::StateStorage be_storage_;
  /// Last node state_version pushed into be_storage_, by worker slot
  /// (zeroed on central failover to force a full re-push).
  std::vector<std::uint64_t> be_seen_;

  // TangoScope surface. The registry itself is always live (it backs
  // sync_stats() and the fault counters); metrics are registered once in
  // the constructor and bumped through these cached pointers — a relaxed
  // atomic add, same cost as the plain ++member it replaced. Span handles
  // in request_spans_ parallel records_ and stay empty unless tracing is
  // active.
  scope::MetricRegistry metrics_;
  scope::Counter* m_syncs_ = nullptr;
  scope::Counter* m_pushes_ = nullptr;
  scope::Counter* m_pushes_skipped_ = nullptr;
  scope::Counter* m_full_resyncs_ = nullptr;
  scope::Counter* m_fault_requeues_ = nullptr;
  scope::Counter* m_fault_drops_ = nullptr;
  scope::Counter* m_lc_arrived_ = nullptr;
  scope::Counter* m_lc_completed_ = nullptr;
  scope::Counter* m_lc_qos_met_ = nullptr;
  scope::Counter* m_lc_abandoned_ = nullptr;
  scope::Counter* m_be_completed_ = nullptr;
  scope::Histogram* h_lc_latency_ = nullptr;
  scope::Histogram* h_be_latency_ = nullptr;
  scope::Gauge* g_util_total_ = nullptr;
  scope::Gauge* g_util_lc_ = nullptr;
  scope::Gauge* g_util_be_ = nullptr;
  std::vector<scope::SpanId> request_spans_;

  // Incremental metrics aggregates, fed by WorkerNode::on_usage_delta.
  Millicores use_total_ = 0;
  Millicores use_lc_ = 0;
  Millicores use_be_ = 0;
  Millicores cap_total_ = 0;

  // Fault-plane state.
  std::vector<bool> master_alive_;
  ClusterId acting_central_;
  std::map<std::pair<std::int32_t, std::int32_t>, LinkFault> link_faults_;

  net::EgressRegulator egress_;
  metrics::QosDetector qos_detector_;
  metrics::TimeSeriesStore tss_;
  std::vector<RequestRecord> records_;
  std::vector<PeriodStats> period_stats_;
};

}  // namespace tango::k8s
