// EdgeCloudSystem: the dual-space experimental system of §6.1 as one
// deterministic discrete-event simulation.
//
// It owns the simulator, the WAN/LAN topology, every cluster (1 master + N
// workers), the per-master state storages, the QoS detector, and the request
// lifecycle:
//
//   arrival at origin master ──► LC queue (dispatched by the cluster's
//   LcScheduler, geo-nearby targets only) or BE queue (forwarded to the
//   central cluster and dispatched by the BeScheduler) ──► WAN/LAN transfer
//   ──► worker admission/execution ──► result returned to the origin ──►
//   QoS bookkeeping.
//
// Schedulers and allocation policies are plug-ins; swapping them produces
// every row of the paper's evaluation matrix.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "k8s/node.h"
#include "k8s/scheduling_api.h"
#include "metrics/qos_detector.h"
#include "metrics/timeseries.h"
#include "net/egress.h"
#include "net/topology.h"

namespace tango::k8s {

struct SystemConfig {
  std::vector<ClusterSpec> clusters;
  net::LinkParams link{};
  /// Square side of the deployment region (km) for the random layout.
  double region_km = 1200.0;
  /// LC requests may be dispatched within this radius of home (§5.2, 500 km).
  double lc_nearby_radius_km = 500.0;
  /// Metrics/state push period — matches the 100 ms QoS collection window
  /// (§4.3) that drives the paper's metric pushes.
  SimDuration state_sync_period = 100 * kMillisecond;
  /// Batching windows of the two dispatchers.
  SimDuration lc_dispatch_interval = 2 * kMillisecond;
  SimDuration be_dispatch_interval = 5 * kMillisecond;
  /// Data-collection period — 800 ms per §6.2.
  SimDuration metrics_period = 800 * kMillisecond;
  WorkerNode::Tunables node_tunables{};
  /// Central cluster override (-1 = geographically central one).
  int central_cluster = -1;
  /// Model per-cluster egress bandwidth contention (§4.1 lists bandwidth
  /// among the compressible resources; the regulator gives LC priority
  /// whenever the allocation policy preempts BE for LC).
  bool regulate_bandwidth = true;
  net::EgressConfig egress{};
  std::uint64_t seed = 1234;
};

/// Final outcome of one request.
enum class Outcome { kPending, kCompleted, kAbandoned };

struct RequestRecord {
  workload::Request request;
  Outcome outcome = Outcome::kPending;
  NodeId target;                 // last node it was dispatched to
  SimTime dispatched = -1;
  SimTime completed = -1;
  SimDuration latency = 0;       // end-to-end, incl. result return
  bool qos_met = false;          // LC only
  int reschedules = 0;           // BE bounce count
};

/// Per-800ms-period aggregate row (the unit of every time-series figure).
struct PeriodStats {
  SimTime period_start = 0;
  double util_total = 0.0;  // mean cpu utilization across workers [0,1]
  double util_lc = 0.0;
  double util_be = 0.0;
  int lc_arrived = 0;
  int lc_completed = 0;
  int lc_qos_met = 0;
  int lc_abandoned = 0;
  int be_completed = 0;
};

/// End-of-run summary (the paper's three headline metrics).
struct RunSummary {
  int lc_total = 0;
  int lc_completed = 0;
  int lc_qos_met = 0;
  int lc_abandoned = 0;
  int be_total = 0;
  int be_completed = 0;
  double qos_satisfaction = 0.0;  // φ  = met / arrived LC
  double be_throughput = 0.0;     // φ' = completed BE
  double mean_util = 0.0;
  double mean_latency_ms = 0.0;   // completed LC
  double p95_latency_ms = 0.0;
};

class EdgeCloudSystem {
 public:
  EdgeCloudSystem(SystemConfig cfg, const workload::ServiceCatalog* catalog);

  // ---- Wiring (call before Run) ----------------------------------------
  void SetLcScheduler(LcScheduler* sched) { lc_sched_ = sched; }
  void SetBeScheduler(BeScheduler* sched) { be_sched_ = sched; }
  /// Install an allocation policy on every worker node.
  void SetAllocationPolicy(const AllocationPolicy* policy);

  /// Queue every request of the trace for arrival at its origin cluster.
  void SubmitTrace(const workload::Trace& trace);

  /// Advance virtual time.
  void Run(SimTime until);

  // ---- Introspection -----------------------------------------------------
  sim::Simulator& simulator() { return sim_; }
  const net::Topology& topology() const { return topology_; }
  metrics::QosDetector& qos_detector() { return qos_detector_; }
  metrics::TimeSeriesStore& timeseries() { return tss_; }
  const std::vector<RequestRecord>& records() const { return records_; }
  const std::vector<PeriodStats>& periods() const { return period_stats_; }
  RunSummary Summary() const;

  ClusterId central_cluster() const { return central_; }
  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  WorkerNode* FindWorker(NodeId id);
  std::vector<WorkerNode*> AllWorkers();
  NodeId MasterOf(ClusterId cluster) const;
  ClusterId ClusterOfNode(NodeId node) const;
  const metrics::StateStorage& LcStorage(ClusterId cluster) const;
  const metrics::StateStorage& BeStorage() const { return be_storage_; }
  const net::EgressRegulator& egress() const { return egress_; }
  const workload::ServiceCatalog& catalog() const { return *catalog_; }
  int lc_queue_length(ClusterId cluster) const;
  int be_queue_length() const {
    return static_cast<int>(be_queue_.size());
  }
  std::int64_t total_scaling_ops() const;

 private:
  struct Cluster {
    Cluster() = default;
    Cluster(Cluster&&) noexcept = default;
    Cluster& operator=(Cluster&&) noexcept = default;
    ClusterSpec spec;
    NodeId master;
    std::vector<std::unique_ptr<WorkerNode>> workers;
    std::deque<PendingRequest> lc_queue;
    bool lc_dispatch_pending = false;
    metrics::StateStorage lc_storage;
  };

  void BuildClusters();
  void OnArrival(const workload::Request& request);
  void ScheduleLcDispatch(ClusterId cluster);
  void DispatchLc(ClusterId cluster);
  void ScheduleBeDispatch();
  void DispatchBe();
  void OnComplete(const CompletionInfo& info);
  void OnAbandon(const workload::Request& request, SimTime now);
  void OnBeReturn(NodeId from, const workload::Request& request);
  void SyncState(SimTime now);
  void SampleMetrics(SimTime now);
  /// Transfer delay via the topology plus the egress regulator.
  SimDuration Transfer(ClusterId from, ClusterId to, Bytes size, bool is_lc);
  RequestRecord& Record(RequestId id);
  PeriodStats& CurrentPeriod();

  SystemConfig cfg_;
  const workload::ServiceCatalog* catalog_;
  sim::Simulator sim_;
  net::Topology topology_;
  Rng rng_;
  std::vector<Cluster> clusters_;
  std::map<NodeId, WorkerNode*> workers_;
  std::map<NodeId, ClusterId> node_cluster_;
  ClusterId central_;
  LcScheduler* lc_sched_ = nullptr;
  BeScheduler* be_sched_ = nullptr;
  const AllocationPolicy* default_policy_;
  std::unique_ptr<NativeAllocationPolicy> native_policy_;

  std::deque<PendingRequest> be_queue_;  // at the central master
  bool be_dispatch_pending_ = false;
  metrics::StateStorage be_storage_;

  net::EgressRegulator egress_;
  metrics::QosDetector qos_detector_;
  metrics::TimeSeriesStore tss_;
  std::vector<RequestRecord> records_;
  std::vector<PeriodStats> period_stats_;
};

}  // namespace tango::k8s
