// Cluster → shard partitioning for the sharded simulation engine.
//
// The dual space is partitioned at cluster granularity: a cluster's master,
// workers, queues, and state storages always live together on one shard,
// because everything inside a cluster interacts at LAN latency (below the
// conservative lookahead), while clusters only interact over WAN links.
// The partitioner therefore only has to answer one question well: which
// clusters share a shard so that per-shard work is balanced.
//
// This lives in src/k8s (not src/shard) because it partitions the k8s
// substrate's own layout type (ClusterSpec) and is useful to any layer
// that wants per-cluster parallelism — the shard engine is just the first
// consumer.
#pragma once

#include <vector>

#include "common/ids.h"
#include "k8s/resources.h"

namespace tango::k8s {

enum class PartitionStrategy {
  /// Contiguous runs of cluster ids, sizes as equal as possible. Keeps
  /// geographically adjacent ids (RandomLayout assigns ids arbitrarily, but
  /// hand-built layouts often number neighbors consecutively) together.
  kContiguous,
  /// Round-robin by cluster id — spreads hotspot-adjacent ids apart.
  kRoundRobin,
  /// Greedy balance by worker count: clusters sorted by descending
  /// num_workers, each assigned to the currently lightest shard. Best when
  /// cluster sizes are heterogeneous (the §6.1 hybrid layout's 3–20-worker
  /// virtual clusters).
  kWorkerBalanced,
};

const char* PartitionStrategyName(PartitionStrategy s);

struct Partition {
  int num_shards = 1;
  /// shard_of[c] = shard owning cluster id c.
  std::vector<int> shard_of;
  /// clusters[s] = cluster ids owned by shard s, ascending. Ascending order
  /// is load-bearing for determinism: shard-build code iterates it, so it
  /// must not depend on the strategy's internal visit order.
  std::vector<std::vector<ClusterId>> clusters;

  int shard_of_cluster(ClusterId c) const {
    return shard_of[static_cast<std::size_t>(c.value)];
  }
};

/// Partition `specs` into `num_shards` shards (clamped to [1, #clusters]).
/// Deterministic: same specs + strategy + shard count → same partition.
Partition PartitionClusters(const std::vector<ClusterSpec>& specs,
                            int num_shards, PartitionStrategy strategy);

/// Total workers assigned to each shard (balance diagnostics / tests).
std::vector<int> ShardWorkerCounts(const std::vector<ClusterSpec>& specs,
                                   const Partition& partition);

}  // namespace tango::k8s
