// Scenario selection for the experiment harness: turn a TangoStorm
// scenario family into the inputs RunExperiment wants — a materialized
// Trace (Drain is the one point the stream becomes a vector) plus, for
// the failover family, the FaultScript that fails the same region whose
// arrivals the envelopes re-home.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/harness.h"
#include "fault/fault_script.h"
#include "storm/scenario.h"

namespace tango::eval {

struct ScenarioBundle {
  workload::Trace trace;
  /// Only meaningful when `has_faults` (today: the kFailover family).
  /// Point ExperimentConfig::faults at this member — the bundle must
  /// outlive the run.
  fault::FaultScript faults;
  bool has_faults = false;
};

/// A ScenarioConfig sized to a cluster layout (rates and windows scale with
/// the horizon so short smoke runs still exercise every envelope).
storm::ScenarioConfig DefaultScenarioConfig(
    const workload::ServiceCatalog& catalog, int num_clusters,
    SimTime horizon, std::uint64_t seed);

/// Drain BuildScenario(kind, cfg) into a trace; for kFailover also build
/// the matching regional-outage script over `clusters`.
ScenarioBundle BuildScenarioBundle(
    storm::ScenarioKind kind, const storm::ScenarioConfig& cfg,
    const std::vector<k8s::ClusterSpec>& clusters,
    scope::MetricRegistry* metrics = nullptr);

}  // namespace tango::eval
