// Result export: per-request records and per-period aggregates as CSV so
// runs can be analyzed/plotted outside the binary (the role the paper's
// collected Prometheus data plays).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "eval/harness.h"
#include "fault/fault_plane.h"
#include "k8s/system.h"
#include "scope/metrics.h"

namespace tango::eval {

/// One row per request:
///   request_id,service,class,origin,target_node,outcome,arrival_us,
///   dispatched_us,completed_us,latency_us,qos_met,reschedules
std::size_t WriteRecordsCsv(std::ostream& out,
                            const k8s::EdgeCloudSystem& system);
bool WriteRecordsCsvFile(const std::string& path,
                         const k8s::EdgeCloudSystem& system);

/// One row per 800 ms period:
///   period_start_us,util_total,util_lc,util_be,lc_arrived,lc_completed,
///   lc_qos_met,lc_abandoned,be_completed,lost_requeued,dropped
std::size_t WritePeriodsCsv(std::ostream& out,
                            const k8s::EdgeCloudSystem& system);
bool WritePeriodsCsvFile(const std::string& path,
                         const k8s::EdgeCloudSystem& system);

/// One row per applied fault event (the availability timeline):
///   at_us,kind,target,workers_alive,masters_alive,active_faults
std::size_t WriteTimelineCsv(std::ostream& out,
                             const std::vector<fault::TimelineEntry>& tl);
bool WriteTimelineCsvFile(const std::string& path,
                          const std::vector<fault::TimelineEntry>& tl);

/// Labeled resilience rows (one per framework variant under the same fault
/// script):
///   label,fault_events,faulted_ms,qos_sat_in_fault,qos_sat_outside,
///   time_to_recover_ms,post_recovery_p95_ms,requeued,dropped,pending_at_end
std::size_t WriteResilienceCsv(
    std::ostream& out,
    const std::vector<std::pair<std::string, ResilienceReport>>& rows);
bool WriteResilienceCsvFile(
    const std::string& path,
    const std::vector<std::pair<std::string, ResilienceReport>>& rows);

/// Labeled TangoScope metric snapshots (one block per experiment, e.g.
/// ExperimentResult::metrics under ExperimentResult::label):
///   label,name,kind,count,value,p50,p95,p99
std::size_t WriteLabeledMetricsCsv(
    std::ostream& out,
    const std::vector<std::pair<std::string, std::vector<scope::MetricRow>>>&
        blocks);
bool WriteLabeledMetricsCsvFile(
    const std::string& path,
    const std::vector<std::pair<std::string, std::vector<scope::MetricRow>>>&
        blocks);

}  // namespace tango::eval
