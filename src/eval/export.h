// Result export: per-request records and per-period aggregates as CSV so
// runs can be analyzed/plotted outside the binary (the role the paper's
// collected Prometheus data plays).
#pragma once

#include <iosfwd>
#include <string>

#include "k8s/system.h"

namespace tango::eval {

/// One row per request:
///   request_id,service,class,origin,target_node,outcome,arrival_us,
///   dispatched_us,completed_us,latency_us,qos_met,reschedules
std::size_t WriteRecordsCsv(std::ostream& out,
                            const k8s::EdgeCloudSystem& system);
bool WriteRecordsCsvFile(const std::string& path,
                         const k8s::EdgeCloudSystem& system);

/// One row per 800 ms period:
///   period_start_us,util_total,util_lc,util_be,lc_arrived,lc_completed,
///   lc_qos_met,lc_abandoned,be_completed
std::size_t WritePeriodsCsv(std::ostream& out,
                            const k8s::EdgeCloudSystem& system);
bool WritePeriodsCsvFile(const std::string& path,
                         const k8s::EdgeCloudSystem& system);

}  // namespace tango::eval
