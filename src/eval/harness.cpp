#include "eval/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace tango::eval {

std::vector<k8s::ClusterSpec> PhysicalClusters(int n) {
  std::vector<k8s::ClusterSpec> out;
  for (int i = 0; i < n; ++i) {
    k8s::ClusterSpec spec;
    spec.num_workers = 4;
    spec.worker_capacity = {4 * kCore, 8 * 1024};
    out.push_back(spec);
  }
  return out;
}

std::vector<k8s::ClusterSpec> HybridClusters(int physical, int virtual_n,
                                             std::uint64_t seed) {
  std::vector<k8s::ClusterSpec> out = PhysicalClusters(physical);
  Rng rng(seed);
  for (int i = 0; i < virtual_n; ++i) {
    k8s::ClusterSpec spec;
    spec.num_workers = static_cast<int>(rng.UniformInt(3, 20));
    spec.heterogeneous = true;
    out.push_back(spec);
  }
  return out;
}

ExperimentResult RunExperiment(const ExperimentConfig& cfg,
                               const InstallFn& install,
                               const workload::ServiceCatalog& catalog) {
  k8s::EdgeCloudSystem system(cfg.system, &catalog);
  framework::Assembly assembly = install(system);
  system.SubmitTrace(cfg.trace);
  system.Run(cfg.duration);
  ExperimentResult r;
  r.label = cfg.label.empty() ? assembly.description() : cfg.label;
  r.summary = system.Summary();
  r.periods = system.periods();
  r.scaling_ops = system.total_scaling_ops();
  if (assembly.lc_scheduler() != nullptr &&
      assembly.lc_scheduler()->decisions() > 0) {
    r.lc_decision_ms_avg =
        assembly.lc_scheduler()->decision_seconds() * 1000.0 /
        static_cast<double>(assembly.lc_scheduler()->decisions());
  }
  return r;
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(headers.size());
  for (std::size_t j = 0; j < headers.size(); ++j) width[j] = headers[j].size();
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < row.size() && j < width.size(); ++j) {
      width[j] = std::max(width[j], row[j].size());
    }
  }
  std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (std::size_t j = 0; j < width.size(); ++j) {
      const std::string& cell = j < row.size() ? row[j] : std::string();
      std::printf("%-*s  ", static_cast<int>(width[j]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers);
  std::vector<std::string> rule;
  for (std::size_t j = 0; j < width.size(); ++j) {
    rule.push_back(std::string(width[j], '-'));
  }
  print_row(rule);
  for (const auto& row : rows) print_row(row);
}

std::string Sparkline(const std::vector<double>& values, int width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return {};
  const std::vector<double> v =
      Downsample(values, static_cast<std::size_t>(width));
  double lo = v[0], hi = v[0];
  for (double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  const double span = hi - lo < 1e-12 ? 1.0 : hi - lo;
  std::string out;
  for (double x : v) {
    const int idx = std::clamp(
        static_cast<int>((x - lo) / span * 7.999), 0, 7);
    out += kLevels[idx];
  }
  return out;
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * v);
  return buf;
}

std::vector<double> Downsample(const std::vector<double>& v, std::size_t n) {
  if (v.size() <= n || n == 0) return v;
  std::vector<double> out;
  out.reserve(n);
  const double stride = static_cast<double>(v.size()) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto lo = static_cast<std::size_t>(static_cast<double>(i) * stride);
    const auto hi = std::min(
        v.size(), static_cast<std::size_t>(static_cast<double>(i + 1) * stride) + 1);
    double sum = 0.0;
    std::size_t cnt = 0;
    for (std::size_t k = lo; k < hi; ++k) {
      sum += v[k];
      ++cnt;
    }
    out.push_back(cnt == 0 ? 0.0 : sum / static_cast<double>(cnt));
  }
  return out;
}

std::vector<double> Field(const std::vector<k8s::PeriodStats>& periods,
                          double (*get)(const k8s::PeriodStats&)) {
  std::vector<double> out;
  out.reserve(periods.size());
  for (const auto& p : periods) out.push_back(get(p));
  return out;
}

}  // namespace tango::eval
