#include "eval/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/logging.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "scope/export.h"
#include "scope/scope.h"

namespace tango::eval {

std::vector<k8s::ClusterSpec> PhysicalClusters(int n) {
  std::vector<k8s::ClusterSpec> out;
  for (int i = 0; i < n; ++i) {
    k8s::ClusterSpec spec;
    spec.num_workers = 4;
    spec.worker_capacity = {4 * kCore, 8 * 1024};
    out.push_back(spec);
  }
  return out;
}

std::vector<k8s::ClusterSpec> HybridClusters(int physical, int virtual_n,
                                             std::uint64_t seed) {
  std::vector<k8s::ClusterSpec> out = PhysicalClusters(physical);
  Rng rng(seed);
  for (int i = 0; i < virtual_n; ++i) {
    k8s::ClusterSpec spec;
    spec.num_workers = static_cast<int>(rng.UniformInt(3, 20));
    spec.heterogeneous = true;
    out.push_back(spec);
  }
  return out;
}

ExperimentResult RunExperiment(const ExperimentConfig& cfg,
                               const InstallFn& install,
                               const workload::ServiceCatalog& catalog) {
  // The span tracer is process-global, so a traced run owns it for the
  // whole experiment (RunExperiments forces traced batches serial).
  const bool traced = scope::kCompiled && !cfg.trace_path.empty();
  if (traced) {
    scope::DefaultTracer().Enable({.capacity = std::size_t{1} << 16});
  }
  k8s::EdgeCloudSystem system(cfg.system, &catalog);
  framework::Assembly assembly = install(system);
  std::unique_ptr<fault::FaultPlane> plane;
  if (cfg.faults != nullptr && !cfg.faults->empty()) {
    plane = std::make_unique<fault::FaultPlane>(&system, *cfg.faults);
  }
  system.SubmitTrace(cfg.trace);
  system.Run(cfg.duration);
  ExperimentResult r;
  r.label = cfg.label.empty() ? assembly.description() : cfg.label;
  r.summary = system.Summary();
  r.periods = system.periods();
  r.scaling_ops = system.total_scaling_ops();
  if (assembly.lc_scheduler() != nullptr &&
      assembly.lc_scheduler()->decisions() > 0) {
    r.lc_decision_ms_avg =
        assembly.lc_scheduler()->decision_seconds() * 1000.0 /
        static_cast<double>(assembly.lc_scheduler()->decisions());
  }
  if (assembly.lc_scheduler() != nullptr) {
    r.lc_routing = assembly.lc_scheduler()->total_round_stats();
  }
  if (plane != nullptr) {
    r.has_resilience = true;
    r.resilience = ComputeResilience(system, *plane, cfg.duration,
                                     cfg.qos_recovery_threshold);
    r.timeline = plane->timeline();
  }
  r.metrics = system.metrics_registry().Snapshot();
  if (!cfg.metrics_csv_path.empty()) {
    scope::WriteMetricsCsvFile(cfg.metrics_csv_path, r.metrics);
  }
  if (traced) {
    scope::WriteChromeTraceFile(cfg.trace_path, scope::DefaultTracer());
    scope::DefaultTracer().Disable();
  }
  return r;
}

std::vector<ExperimentResult> RunExperiments(
    const std::vector<ExperimentJob>& jobs,
    const workload::ServiceCatalog& catalog, int num_threads) {
  std::vector<ExperimentResult> results(jobs.size());
  const auto run_one = [&](std::size_t i, int /*worker*/) {
    results[i] = RunExperiment(jobs[i].cfg, jobs[i].install, catalog);
  };
  // Tracing writes to the process-global tracer, so a batch containing any
  // traced job must not interleave experiments.
  const bool any_traced = std::any_of(
      jobs.begin(), jobs.end(),
      [](const ExperimentJob& j) { return !j.cfg.trace_path.empty(); });
  if (num_threads == 1 || jobs.size() <= 1 || any_traced) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i, 0);
    return results;
  }
  ThreadPool pool(num_threads == 0 ? 0 : num_threads - 1);
  pool.ParallelFor(jobs.size(), run_one);
  return results;
}

ResilienceReport ComputeResilience(const k8s::EdgeCloudSystem& system,
                                   const fault::FaultPlane& plane,
                                   SimTime horizon, double qos_threshold) {
  ResilienceReport rep;
  rep.fault_events = plane.events_injected();
  rep.requeued = system.fault_requeues();
  rep.dropped = system.fault_drops();

  const auto windows = plane.Windows(horizon);
  for (const auto& [start, end] : windows) rep.faulted_time += end - start;
  const auto in_fault = [&windows](SimTime t) {
    for (const auto& [start, end] : windows) {
      if (t >= start && t < end) return true;
    }
    return false;
  };

  SimTime recovery = plane.LastRecoveryTime();
  if (recovery < 0) recovery = horizon;  // faults active until the end

  int arrived_in = 0, met_in = 0, arrived_out = 0, met_out = 0;
  std::vector<double> post_latencies;
  const auto& catalog = system.catalog();
  for (const auto& rec : system.records()) {
    if (!rec.request.id.valid()) continue;
    if (!catalog.Get(rec.request.service).is_lc()) continue;
    if (rec.outcome == k8s::Outcome::kPending) rep.pending_at_end += 1;
    const bool met =
        rec.outcome == k8s::Outcome::kCompleted && rec.qos_met;
    if (in_fault(rec.request.arrival)) {
      arrived_in += 1;
      met_in += met ? 1 : 0;
    } else {
      arrived_out += 1;
      met_out += met ? 1 : 0;
    }
    if (rec.outcome == k8s::Outcome::kCompleted &&
        rec.request.arrival >= recovery) {
      post_latencies.push_back(ToMilliseconds(rec.latency));
    }
  }
  // BE requests can legitimately still be queued at the horizon, but they
  // must be *somewhere* accounted: queued, dropped, or completed. Pending
  // LC requests at the end are counted above and tested against zero well
  // after the last fault window.
  rep.qos_sat_in_fault =
      arrived_in > 0 ? static_cast<double>(met_in) / arrived_in : 0.0;
  rep.qos_sat_outside =
      arrived_out > 0 ? static_cast<double>(met_out) / arrived_out : 0.0;
  rep.post_recovery_p95_ms = Percentile(post_latencies, 0.95);

  rep.time_to_recover = -1;
  if (plane.LastRecoveryTime() >= 0) {
    // First period overlapping [recovery, ∞) whose LC QoS satisfaction is
    // back above the threshold; the period containing the recovery instant
    // counts as an immediate recovery (distance 0).
    const auto& periods = system.periods();
    for (std::size_t i = 0; i < periods.size(); ++i) {
      const SimTime period_end = i + 1 < periods.size()
                                     ? periods[i + 1].period_start
                                     : horizon;
      if (period_end <= recovery || periods[i].lc_arrived == 0) continue;
      const double sat = static_cast<double>(periods[i].lc_qos_met) /
                         periods[i].lc_arrived;
      if (sat >= qos_threshold) {
        rep.time_to_recover =
            std::max<SimDuration>(0, periods[i].period_start - recovery);
        break;
      }
    }
  }
  return rep;
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(headers.size());
  for (std::size_t j = 0; j < headers.size(); ++j) width[j] = headers[j].size();
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < row.size() && j < width.size(); ++j) {
      width[j] = std::max(width[j], row[j].size());
    }
  }
  std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (std::size_t j = 0; j < width.size(); ++j) {
      const std::string& cell = j < row.size() ? row[j] : std::string();
      std::printf("%-*s  ", static_cast<int>(width[j]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers);
  std::vector<std::string> rule;
  for (std::size_t j = 0; j < width.size(); ++j) {
    rule.push_back(std::string(width[j], '-'));
  }
  print_row(rule);
  for (const auto& row : rows) print_row(row);
}

std::string Sparkline(const std::vector<double>& values, int width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return {};
  const std::vector<double> v =
      Downsample(values, static_cast<std::size_t>(width));
  double lo = v[0], hi = v[0];
  for (double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  const double span = hi - lo < 1e-12 ? 1.0 : hi - lo;
  std::string out;
  for (double x : v) {
    const int idx = std::clamp(
        static_cast<int>((x - lo) / span * 7.999), 0, 7);
    out += kLevels[idx];
  }
  return out;
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * v);
  return buf;
}

std::vector<double> Downsample(const std::vector<double>& v, std::size_t n) {
  if (v.size() <= n || n == 0) return v;
  std::vector<double> out;
  out.reserve(n);
  const double stride = static_cast<double>(v.size()) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto lo = static_cast<std::size_t>(static_cast<double>(i) * stride);
    const auto hi = std::min(
        v.size(), static_cast<std::size_t>(static_cast<double>(i + 1) * stride) + 1);
    double sum = 0.0;
    std::size_t cnt = 0;
    for (std::size_t k = lo; k < hi; ++k) {
      sum += v[k];
      ++cnt;
    }
    out.push_back(cnt == 0 ? 0.0 : sum / static_cast<double>(cnt));
  }
  return out;
}

std::vector<double> Field(const std::vector<k8s::PeriodStats>& periods,
                          double (*get)(const k8s::PeriodStats&)) {
  std::vector<double> out;
  out.reserve(periods.size());
  for (const auto& p : periods) out.push_back(get(p));
  return out;
}

}  // namespace tango::eval
