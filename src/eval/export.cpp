#include "eval/export.h"

#include <fstream>
#include <ostream>

namespace tango::eval {

namespace {
const char* OutcomeName(k8s::Outcome o) {
  switch (o) {
    case k8s::Outcome::kPending:
      return "pending";
    case k8s::Outcome::kCompleted:
      return "completed";
    case k8s::Outcome::kAbandoned:
      return "abandoned";
    case k8s::Outcome::kDropped:
      return "dropped";
  }
  return "?";
}
}  // namespace

std::size_t WriteRecordsCsv(std::ostream& out,
                            const k8s::EdgeCloudSystem& system) {
  out << "request_id,service,class,origin,target_node,outcome,arrival_us,"
         "dispatched_us,completed_us,latency_us,qos_met,reschedules\n";
  std::size_t rows = 0;
  const auto& catalog = system.catalog();
  for (const auto& rec : system.records()) {
    if (!rec.request.id.valid()) continue;
    const auto& svc = catalog.Get(rec.request.service);
    out << rec.request.id.value << ',' << svc.name << ','
        << workload::ServiceClassName(svc.cls) << ','
        << rec.request.origin.value << ',' << rec.target.value << ','
        << OutcomeName(rec.outcome) << ',' << rec.request.arrival << ','
        << rec.dispatched << ',' << rec.completed << ',' << rec.latency
        << ',' << (rec.qos_met ? 1 : 0) << ',' << rec.reschedules << "\n";
    ++rows;
  }
  return rows;
}

bool WriteRecordsCsvFile(const std::string& path,
                         const k8s::EdgeCloudSystem& system) {
  std::ofstream out(path);
  if (!out) return false;
  WriteRecordsCsv(out, system);
  return static_cast<bool>(out);
}

std::size_t WritePeriodsCsv(std::ostream& out,
                            const k8s::EdgeCloudSystem& system) {
  out << "period_start_us,util_total,util_lc,util_be,lc_arrived,"
         "lc_completed,lc_qos_met,lc_abandoned,be_completed,lost_requeued,"
         "dropped\n";
  std::size_t rows = 0;
  for (const auto& p : system.periods()) {
    out << p.period_start << ',' << p.util_total << ',' << p.util_lc << ','
        << p.util_be << ',' << p.lc_arrived << ',' << p.lc_completed << ','
        << p.lc_qos_met << ',' << p.lc_abandoned << ',' << p.be_completed
        << ',' << p.lost_requeued << ',' << p.dropped << "\n";
    ++rows;
  }
  return rows;
}

bool WritePeriodsCsvFile(const std::string& path,
                         const k8s::EdgeCloudSystem& system) {
  std::ofstream out(path);
  if (!out) return false;
  WritePeriodsCsv(out, system);
  return static_cast<bool>(out);
}

std::size_t WriteTimelineCsv(std::ostream& out,
                             const std::vector<fault::TimelineEntry>& tl) {
  out << "at_us,kind,target,workers_alive,masters_alive,active_faults\n";
  for (const auto& e : tl) {
    out << e.at << ',' << fault::FaultKindName(e.kind) << ',' << e.target
        << ',' << e.workers_alive << ',' << e.masters_alive << ','
        << e.active_faults << "\n";
  }
  return tl.size();
}

bool WriteTimelineCsvFile(const std::string& path,
                          const std::vector<fault::TimelineEntry>& tl) {
  std::ofstream out(path);
  if (!out) return false;
  WriteTimelineCsv(out, tl);
  return static_cast<bool>(out);
}

std::size_t WriteResilienceCsv(
    std::ostream& out,
    const std::vector<std::pair<std::string, ResilienceReport>>& rows) {
  out << "label,fault_events,faulted_ms,qos_sat_in_fault,qos_sat_outside,"
         "time_to_recover_ms,post_recovery_p95_ms,requeued,dropped,"
         "pending_at_end\n";
  for (const auto& [label, r] : rows) {
    out << label << ',' << r.fault_events << ','
        << ToMilliseconds(r.faulted_time) << ',' << r.qos_sat_in_fault << ','
        << r.qos_sat_outside << ','
        << (r.time_to_recover < 0 ? -1.0 : ToMilliseconds(r.time_to_recover))
        << ',' << r.post_recovery_p95_ms << ',' << r.requeued << ','
        << r.dropped << ',' << r.pending_at_end << "\n";
  }
  return rows.size();
}

bool WriteResilienceCsvFile(
    const std::string& path,
    const std::vector<std::pair<std::string, ResilienceReport>>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  WriteResilienceCsv(out, rows);
  return static_cast<bool>(out);
}

std::size_t WriteLabeledMetricsCsv(
    std::ostream& out,
    const std::vector<std::pair<std::string, std::vector<scope::MetricRow>>>&
        blocks) {
  out << "label,name,kind,count,value,p50,p95,p99\n";
  std::size_t rows = 0;
  for (const auto& [label, metrics] : blocks) {
    for (const auto& m : metrics) {
      out << label << ',' << m.name << ',' << m.kind << ',' << m.count << ','
          << m.value << ',' << m.p50 << ',' << m.p95 << ',' << m.p99 << "\n";
      ++rows;
    }
  }
  return rows;
}

bool WriteLabeledMetricsCsvFile(
    const std::string& path,
    const std::vector<std::pair<std::string, std::vector<scope::MetricRow>>>&
        blocks) {
  std::ofstream out(path);
  if (!out) return false;
  WriteLabeledMetricsCsv(out, blocks);
  return static_cast<bool>(out);
}

}  // namespace tango::eval
