#include "eval/export.h"

#include <fstream>
#include <ostream>

namespace tango::eval {

namespace {
const char* OutcomeName(k8s::Outcome o) {
  switch (o) {
    case k8s::Outcome::kPending:
      return "pending";
    case k8s::Outcome::kCompleted:
      return "completed";
    case k8s::Outcome::kAbandoned:
      return "abandoned";
  }
  return "?";
}
}  // namespace

std::size_t WriteRecordsCsv(std::ostream& out,
                            const k8s::EdgeCloudSystem& system) {
  out << "request_id,service,class,origin,target_node,outcome,arrival_us,"
         "dispatched_us,completed_us,latency_us,qos_met,reschedules\n";
  std::size_t rows = 0;
  const auto& catalog = system.catalog();
  for (const auto& rec : system.records()) {
    if (!rec.request.id.valid()) continue;
    const auto& svc = catalog.Get(rec.request.service);
    out << rec.request.id.value << ',' << svc.name << ','
        << workload::ServiceClassName(svc.cls) << ','
        << rec.request.origin.value << ',' << rec.target.value << ','
        << OutcomeName(rec.outcome) << ',' << rec.request.arrival << ','
        << rec.dispatched << ',' << rec.completed << ',' << rec.latency
        << ',' << (rec.qos_met ? 1 : 0) << ',' << rec.reschedules << "\n";
    ++rows;
  }
  return rows;
}

bool WriteRecordsCsvFile(const std::string& path,
                         const k8s::EdgeCloudSystem& system) {
  std::ofstream out(path);
  if (!out) return false;
  WriteRecordsCsv(out, system);
  return static_cast<bool>(out);
}

std::size_t WritePeriodsCsv(std::ostream& out,
                            const k8s::EdgeCloudSystem& system) {
  out << "period_start_us,util_total,util_lc,util_be,lc_arrived,"
         "lc_completed,lc_qos_met,lc_abandoned,be_completed\n";
  std::size_t rows = 0;
  for (const auto& p : system.periods()) {
    out << p.period_start << ',' << p.util_total << ',' << p.util_lc << ','
        << p.util_be << ',' << p.lc_arrived << ',' << p.lc_completed << ','
        << p.lc_qos_met << ',' << p.lc_abandoned << ',' << p.be_completed
        << "\n";
    ++rows;
  }
  return rows;
}

bool WritePeriodsCsvFile(const std::string& path,
                         const k8s::EdgeCloudSystem& system) {
  std::ofstream out(path);
  if (!out) return false;
  WritePeriodsCsv(out, system);
  return static_cast<bool>(out);
}

}  // namespace tango::eval
