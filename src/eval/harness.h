// Experiment harness: canonical cluster layouts, a one-call experiment
// runner, and plain-text table/series printers used by every bench binary.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fault/fault_plane.h"
#include "scope/metrics.h"
#include "tango/framework.h"

namespace tango::eval {

/// The four "physical" clusters of §6.1 (1 master + 4 workers, 4 CPU/8 GB).
std::vector<k8s::ClusterSpec> PhysicalClusters(int n = 4);

/// The full dual-space layout: `physical` homogeneous clusters plus
/// `virtual_n` heterogeneous clusters of 3–20 workers (§6.1).
std::vector<k8s::ClusterSpec> HybridClusters(int physical, int virtual_n,
                                             std::uint64_t seed);

struct ExperimentConfig {
  k8s::SystemConfig system;
  workload::Trace trace;
  SimDuration duration = 60 * kSecond;
  std::string label;
  /// Optional fault script, armed on a FaultPlane before the run. The
  /// script must outlive the call.
  const fault::FaultScript* faults = nullptr;
  /// Per-period LC QoS satisfaction counted as "recovered" (for
  /// ResilienceReport::time_to_recover).
  double qos_recovery_threshold = 0.9;
  /// When non-empty (and the build has TANGO_SCOPE), the run executes with
  /// the process-global tracer enabled and exports a Chrome trace_event
  /// JSON (Perfetto-loadable) here. The tracer is shared process state, so
  /// RunExperiments() forces traced batches serial.
  std::string trace_path;
  /// When non-empty, the system's metric registry snapshot is written here
  /// as CSV (name,kind,count,value,p50,p95,p99).
  std::string metrics_csv_path;
};

/// Resilience metrics of one faulted run (all computed from the request
/// records and the fault plane's availability timeline).
struct ResilienceReport {
  int fault_events = 0;           // events actually injected
  SimDuration faulted_time = 0;   // union of the fault windows
  double qos_sat_in_fault = 0.0;  // LC QoS over arrivals inside windows
  double qos_sat_outside = 0.0;   // ... and outside them
  /// From the last fault healing to the first 800 ms period whose LC QoS
  /// satisfaction is back above the threshold (-1 = never recovered).
  SimDuration time_to_recover = -1;
  double post_recovery_p95_ms = 0.0;  // completed LC arrived after recovery
  std::int64_t requeued = 0;          // lost-to-a-fault-and-requeued count
  std::int64_t dropped = 0;           // re-route budget exhausted
  int pending_at_end = 0;             // silently lost (must be zero)
};

ResilienceReport ComputeResilience(const k8s::EdgeCloudSystem& system,
                                   const fault::FaultPlane& plane,
                                   SimTime horizon,
                                   double qos_threshold = 0.9);

struct ExperimentResult {
  std::string label;
  k8s::RunSummary summary;
  std::vector<k8s::PeriodStats> periods;
  std::int64_t scaling_ops = 0;
  double lc_decision_ms_avg = 0.0;  // mean DSS-LC wall time per decision
  k8s::LcRoundStats lc_routing;     // cumulative routing stats (satellite)
  /// Filled when ExperimentConfig::faults was set.
  bool has_resilience = false;
  ResilienceReport resilience;
  std::vector<fault::TimelineEntry> timeline;
  /// TangoScope metric snapshot of the run's system registry (sorted by
  /// name) — always filled; the registry is not compile-gated.
  std::vector<scope::MetricRow> metrics;
};

/// Build a system for `cfg`, let `install` wire schedulers/policies (the
/// returned Assembly is kept alive), run the trace, return the result.
using InstallFn =
    std::function<framework::Assembly(k8s::EdgeCloudSystem&)>;
ExperimentResult RunExperiment(const ExperimentConfig& cfg,
                               const InstallFn& install,
                               const workload::ServiceCatalog& catalog);

/// One experiment of a concurrent batch: a config plus its installer.
struct ExperimentJob {
  ExperimentConfig cfg;
  InstallFn install;
};

/// Run independent experiments (each builds its own EdgeCloudSystem) on a
/// fixed-size thread pool and return the results in job order, regardless
/// of completion order. `num_threads`: 1 = serial, 0 = hardware
/// concurrency, N = N worker slots. Give each job its own seed — the jobs
/// share nothing but the (immutable) catalog.
std::vector<ExperimentResult> RunExperiments(
    const std::vector<ExperimentJob>& jobs,
    const workload::ServiceCatalog& catalog, int num_threads = 0);

// ---- Plain-text reporting -------------------------------------------------

/// Print an aligned table: `rows[i][j]` under `headers[j]`.
void PrintTable(const std::string& title,
                const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows);

/// Render a numeric series as a compact sparkline row (for figure shapes).
std::string Sparkline(const std::vector<double>& values, int width = 60);

/// Format helpers.
std::string Fmt(double v, int precision = 3);
std::string Pct(double v, int precision = 1);

/// Downsample a per-period series to `n` points (mean pooling).
std::vector<double> Downsample(const std::vector<double>& v, std::size_t n);

/// Extract one field across periods.
std::vector<double> Field(const std::vector<k8s::PeriodStats>& periods,
                          double (*get)(const k8s::PeriodStats&));

}  // namespace tango::eval
