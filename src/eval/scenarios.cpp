#include "eval/scenarios.h"

#include "common/logging.h"
#include "storm/source.h"

namespace tango::eval {

storm::ScenarioConfig DefaultScenarioConfig(
    const workload::ServiceCatalog& catalog, int num_clusters,
    SimTime horizon, std::uint64_t seed) {
  TANGO_CHECK(num_clusters > 0, "scenario needs clusters");
  TANGO_CHECK(horizon > 0, "scenario needs a horizon");
  storm::ScenarioConfig cfg;
  cfg.catalog = &catalog;
  cfg.num_clusters = num_clusters;
  cfg.horizon = horizon;
  cfg.seed = seed;
  // Windows as fractions of the horizon, so a 2 s smoke run and a 60 s
  // bench run both see the whole ramp/hold/decay (resp. outage) shape.
  cfg.spike_at = horizon / 4;
  cfg.spike_ramp = horizon / 20;
  cfg.spike_hold = horizon / 5;
  cfg.spike_decay = horizon / 10;
  cfg.diurnal_period = (horizon * 4) / 5;
  cfg.failover_at = horizon / 4;
  cfg.failover_for = (horizon * 3) / 10;
  cfg.drift_period = (horizon * 3) / 5;
  return cfg;
}

ScenarioBundle BuildScenarioBundle(
    storm::ScenarioKind kind, const storm::ScenarioConfig& cfg,
    const std::vector<k8s::ClusterSpec>& clusters,
    scope::MetricRegistry* metrics) {
  TANGO_CHECK(static_cast<int>(clusters.size()) == cfg.num_clusters,
              "cluster layout and scenario config disagree");
  ScenarioBundle bundle;
  auto source = storm::BuildScenario(kind, cfg);
  storm::Drain(*source, &bundle.trace, metrics);
  if (kind == storm::ScenarioKind::kFailover) {
    bundle.faults = fault::MakeRegionalFailover(
        cfg.failover_at, cfg.failover_for, cfg.failover_cluster, clusters);
    bundle.has_faults = !bundle.faults.empty();
  }
  return bundle;
}

}  // namespace tango::eval
