#include "net/topology.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace tango::net {

double DistanceKm(const GeoPoint& a, const GeoPoint& b) {
  const double dx = a.x_km - b.x_km;
  const double dy = a.y_km - b.y_km;
  return std::sqrt(dx * dx + dy * dy);
}

double Topology::GeoDistanceKm(ClusterId a, ClusterId b) const {
  return DistanceKm(position(a), position(b));
}

SimDuration Topology::OneWayDelay(ClusterId a, ClusterId b) const {
  if (a == b) return params_.lan_latency;
  const double km = GeoDistanceKm(a, b);
  return params_.wan_base_latency +
         static_cast<SimDuration>(km * params_.wan_us_per_km);
}

SimDuration Topology::TransferDelay(ClusterId a, ClusterId b, Bytes size,
                                    Rng* rng) const {
  SimDuration d = OneWayDelay(a, b) + TransferTime(size, Bandwidth(a, b));
  if (rng != nullptr && params_.jitter > 0.0) {
    const double factor =
        1.0 + rng->Uniform(-params_.jitter, params_.jitter);
    d = static_cast<SimDuration>(static_cast<double>(d) * factor);
  }
  return d < 0 ? 0 : d;
}

SimDuration Topology::MinCrossClusterLatency() const {
  SimDuration best = params_.wan_base_latency;
  bool any_pair = false;
  for (int i = 0; i < num_clusters(); ++i) {
    for (int j = i + 1; j < num_clusters(); ++j) {
      const SimDuration d = OneWayDelay(ClusterId{i}, ClusterId{j});
      if (!any_pair || d < best) best = d;
      any_pair = true;
    }
  }
  return best;
}

std::vector<ClusterId> Topology::NearbyClusters(ClusterId from,
                                                double radius_km) const {
  std::vector<ClusterId> out;
  for (int i = 0; i < num_clusters(); ++i) {
    const ClusterId c{i};
    if (c == from) continue;
    if (GeoDistanceKm(from, c) <= radius_km) out.push_back(c);
  }
  return out;
}

ClusterId Topology::CentralCluster() const {
  TANGO_CHECK(num_clusters() > 0, "empty topology");
  ClusterId best{0};
  double best_sum = std::numeric_limits<double>::max();
  for (int i = 0; i < num_clusters(); ++i) {
    double sum = 0.0;
    for (int j = 0; j < num_clusters(); ++j) {
      sum += GeoDistanceKm(ClusterId{i}, ClusterId{j});
    }
    if (sum < best_sum) {
      best_sum = sum;
      best = ClusterId{i};
    }
  }
  return best;
}

std::vector<GeoPoint> Topology::RandomLayout(int n, double region_km,
                                             Rng& rng) {
  std::vector<GeoPoint> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0.0, region_km), rng.Uniform(0.0, region_km)});
  }
  return pts;
}

}  // namespace tango::net
