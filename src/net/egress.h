// Per-cluster egress bandwidth regulation.
//
// §4.1 lists bandwidth among the *compressible* resources LC traffic may
// take from BE: when LC and BE transfers share a cluster's WAN uplink, BE
// transfers are squeezed to whatever LC leaves over, while LC transfers see
// the full link. Without HRM both classes share the uplink fairly and LC
// pays queueing delay behind bulk BE payloads.
//
// The model is a deterministic fluid approximation: per cluster, a sliding
// window tracks bytes offered by each class; a transfer's serialization
// time uses the bandwidth share its class is entitled to under the current
// mix.
#pragma once

#include <map>

#include "common/ids.h"
#include "common/units.h"

namespace tango::net {

enum class EgressMode {
  kFairShare,    // native: both classes split the uplink in proportion
  kLcPriority,   // HRM regulation: LC first, BE compressed to the remainder
};

struct EgressConfig {
  Kbps uplink = 1'000'000;  // 1 Gbps per cluster WAN uplink
  /// Averaging window for the offered-load estimate.
  SimDuration window = 500 * kMillisecond;
  /// BE is never squeezed below this fraction of the uplink (starvation
  /// guard, mirrors cpu.shares floors).
  double be_floor = 0.05;
};

class EgressRegulator {
 public:
  explicit EgressRegulator(EgressConfig cfg = {}) : cfg_(cfg) {}

  void set_mode(EgressMode mode) { mode_ = mode; }
  EgressMode mode() const { return mode_; }

  /// Record a transfer leaving `cluster` and return its serialization time
  /// under the current load mix (propagation delay is the topology's job).
  SimDuration Serialize(ClusterId cluster, Bytes size, bool is_lc,
                        SimTime now);

  /// Current LC offered-load fraction of the uplink at `cluster` (0..1+).
  double LcLoadFraction(ClusterId cluster, SimTime now) const;

  /// Effective bandwidth a class sees right now.
  Kbps EffectiveBandwidth(ClusterId cluster, bool is_lc, SimTime now) const;

  const EgressConfig& config() const { return cfg_; }

 private:
  struct Window {
    // Exponentially-decayed byte counters (fluid window approximation).
    double lc_bytes = 0.0;
    double be_bytes = 0.0;
    SimTime last_update = 0;
  };

  void Decay(Window& w, SimTime now) const;
  const Window* Find(ClusterId cluster) const;

  EgressConfig cfg_;
  EgressMode mode_ = EgressMode::kFairShare;
  std::map<ClusterId, Window> windows_;
};

}  // namespace tango::net
