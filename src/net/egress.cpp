#include "net/egress.h"

#include <algorithm>
#include <cmath>

namespace tango::net {

void EgressRegulator::Decay(Window& w, SimTime now) const {
  if (now <= w.last_update) return;
  const double factor =
      std::exp(-static_cast<double>(now - w.last_update) /
               static_cast<double>(cfg_.window));
  w.lc_bytes *= factor;
  w.be_bytes *= factor;
  w.last_update = now;
}

const EgressRegulator::Window* EgressRegulator::Find(
    ClusterId cluster) const {
  auto it = windows_.find(cluster);
  return it == windows_.end() ? nullptr : &it->second;
}

double EgressRegulator::LcLoadFraction(ClusterId cluster, SimTime now) const {
  const Window* w = Find(cluster);
  if (w == nullptr) return 0.0;
  Window copy = *w;
  Decay(copy, now);
  // Bytes in the window vs what the uplink could carry in that window.
  const double capacity_bytes =
      static_cast<double>(cfg_.uplink) * 1000.0 / 8.0 *
      ToSeconds(cfg_.window);
  return capacity_bytes > 0.0 ? copy.lc_bytes / capacity_bytes : 0.0;
}

Kbps EgressRegulator::EffectiveBandwidth(ClusterId cluster, bool is_lc,
                                         SimTime now) const {
  if (is_lc && mode_ == EgressMode::kLcPriority) {
    // Regulation: LC sees the full uplink — BE is compressible.
    return cfg_.uplink;
  }
  const Window* w = Find(cluster);
  Window copy = w != nullptr ? *w : Window{};
  Decay(copy, now);
  const double capacity_bytes =
      static_cast<double>(cfg_.uplink) * 1000.0 / 8.0 *
      ToSeconds(cfg_.window);
  // Raw offered-load fractions (may exceed 1 when oversubscribed).
  const double lc_frac =
      capacity_bytes > 0.0 ? copy.lc_bytes / capacity_bytes : 0.0;
  const double be_frac =
      capacity_bytes > 0.0 ? copy.be_bytes / capacity_bytes : 0.0;
  double share = 1.0;
  if (mode_ == EgressMode::kLcPriority) {
    // BE gets what LC leaves over.
    share = std::max(cfg_.be_floor, 1.0 - std::min(1.0, lc_frac));
  } else {
    // Fair sharing: both classes degrade with total congestion.
    const double total = lc_frac + be_frac;
    share = total > 1.0 ? std::max(cfg_.be_floor, 1.0 / total) : 1.0;
  }
  return static_cast<Kbps>(static_cast<double>(cfg_.uplink) * share);
}

SimDuration EgressRegulator::Serialize(ClusterId cluster, Bytes size,
                                       bool is_lc, SimTime now) {
  Window& w = windows_[cluster];
  Decay(w, now);
  const Kbps bw = EffectiveBandwidth(cluster, is_lc, now);
  if (is_lc) {
    w.lc_bytes += static_cast<double>(size);
  } else {
    w.be_bytes += static_cast<double>(size);
  }
  return TransferTime(size, bw);
}

}  // namespace tango::net
