// Network model of the distributed edge-cloud system.
//
// Clusters sit at geographic coordinates; nodes within a cluster talk over a
// LAN (sub-millisecond), clusters talk over a WAN whose RTT grows with
// geographic distance (the paper measures up to ~97 ms RTT from an edge
// cluster to the central cluster). This module replaces the paper's use of
// Linux Traffic Control: it provides the same observable — per-transfer delay
// as a function of link latency, bandwidth, and payload size.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"

namespace tango::net {

struct GeoPoint {
  double x_km = 0.0;
  double y_km = 0.0;
};

double DistanceKm(const GeoPoint& a, const GeoPoint& b);

struct LinkParams {
  /// One-way base propagation latency.
  SimDuration lan_latency = 300;              // 0.3 ms within a cluster
  SimDuration wan_base_latency = 2 * kMillisecond;  // WAN floor (one-way)
  /// Additional one-way latency per km of geographic distance.
  double wan_us_per_km = 30.0;  // ~48 ms one-way at 1600 km
  Kbps lan_bandwidth = 10'000'000;  // 10 Gbps LAN
  Kbps wan_bandwidth = 1'000'000;   // 1 Gbps WAN
  /// Multiplicative jitter half-width applied to sampled delays (0 = none).
  double jitter = 0.0;
};

/// Static description of the cluster layout. Node→cluster assignment lives in
/// the k8s substrate; the topology only needs cluster geography.
class Topology {
 public:
  Topology() = default;
  Topology(std::vector<GeoPoint> cluster_positions, LinkParams params)
      : positions_(std::move(cluster_positions)), params_(params) {}

  int num_clusters() const { return static_cast<int>(positions_.size()); }
  const LinkParams& params() const { return params_; }
  const GeoPoint& position(ClusterId c) const {
    return positions_[static_cast<std::size_t>(c.value)];
  }

  double GeoDistanceKm(ClusterId a, ClusterId b) const;

  /// Deterministic one-way propagation delay between two clusters
  /// (LAN latency when a == b).
  SimDuration OneWayDelay(ClusterId a, ClusterId b) const;

  /// Round-trip time between clusters, as the state storage records it.
  SimDuration Rtt(ClusterId a, ClusterId b) const {
    return 2 * OneWayDelay(a, b);
  }

  /// Minimum one-way propagation delay between any two *distinct* clusters
  /// — the conservative lookahead of the sharded simulation engine
  /// (src/shard): no cross-cluster effect can propagate faster than this,
  /// so shards may advance independently for one such window. Fault
  /// injection only ever *multiplies* link latency (LinkFault::latency_mult
  /// >= 1), so the bound stays safe under chaos. Single-cluster topologies
  /// return the WAN floor (`wan_base_latency`). Derived from OneWayDelay
  /// itself rather than re-derived from LinkParams at call sites, so the
  /// shard lookahead and the egress/transfer model can never drift apart.
  SimDuration MinCrossClusterLatency() const;

  /// Total delivery time for a payload of `size` bytes from cluster `a` to
  /// cluster `b`, optionally jittered through `rng`.
  SimDuration TransferDelay(ClusterId a, ClusterId b, Bytes size,
                            Rng* rng = nullptr) const;

  /// Link bandwidth between two clusters (LAN when equal).
  Kbps Bandwidth(ClusterId a, ClusterId b) const {
    return a == b ? params_.lan_bandwidth : params_.wan_bandwidth;
  }

  /// Clusters within `radius_km` of `from`, excluding `from` itself.
  /// The paper dispatches LC requests only to clusters within 500 km (§5.2).
  std::vector<ClusterId> NearbyClusters(ClusterId from,
                                        double radius_km) const;

  /// The geographically most central cluster (minimum sum of distances) —
  /// where Tango deploys the BE traffic dispatcher (§3, footnote 2).
  ClusterId CentralCluster() const;

  /// Generate `n` cluster positions uniformly in a square of side
  /// `region_km`, deterministic under `rng`.
  static std::vector<GeoPoint> RandomLayout(int n, double region_km, Rng& rng);

 private:
  std::vector<GeoPoint> positions_;
  LinkParams params_;
};

}  // namespace tango::net
