// Discrete-event simulation engine.
//
// The whole edge-cloud system (§6.1's "dual space") runs on one virtual
// clock. Components schedule callbacks at absolute virtual times; the engine
// pops events in (time, sequence) order so simultaneous events retain
// insertion order and the simulation stays deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace tango::sim {

/// Handle used to cancel a scheduled event. Cancellation is lazy: the event
/// stays in the queue but is skipped when popped.
using EventHandle = std::uint64_t;
constexpr EventHandle kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Schedule `cb` to run at absolute virtual time `when` (>= Now()).
  EventHandle ScheduleAt(SimTime when, Callback cb);

  /// Schedule `cb` to run `delay` after the current time.
  EventHandle ScheduleAfter(SimDuration delay, Callback cb) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Cancel a previously scheduled event. Safe to call on already-fired or
  /// already-cancelled handles (no-op).
  void Cancel(EventHandle handle);

  /// Run until the event queue is empty or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void RunUntil(SimTime until);

  /// Run until the event queue drains completely.
  void RunAll();

  /// Execute a single event; returns false if the queue is empty.
  bool Step();

  std::size_t pending_events() const { return live_events_; }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break so equal-time events run FIFO
    EventHandle handle;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool PopAndRun();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  EventHandle next_handle_ = 1;
  std::size_t live_events_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventHandle> cancelled_;  // sorted-on-demand tombstones
  bool cancelled_dirty_ = false;
};

/// Convenience: schedule a callback every `period` starting at `start`.
/// Returns a function that stops the ticking when invoked.
std::function<void()> SchedulePeriodic(Simulator& sim, SimTime start,
                                       SimDuration period,
                                       std::function<void(SimTime)> tick);

}  // namespace tango::sim
