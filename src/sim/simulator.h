// Discrete-event simulation engine.
//
// The whole edge-cloud system (§6.1's "dual space") runs on one virtual
// clock. Components schedule callbacks at absolute virtual times; the engine
// pops events in (time, sequence) order so simultaneous events retain
// insertion order and the simulation stays deterministic.
//
// The engine is built for zero steady-state heap allocations (counted, like
// flow::MinCostMaxFlow's alloc_events()):
//   - events live in a pooled slot array that is recycled through a
//     freelist, so ScheduleAt reuses storage once the pool has grown to the
//     high-water mark of simultaneously pending events;
//   - callbacks are stored in a small-buffer-optimized `Callback` (inline up
//     to kInlineBytes; larger callables fall back to the heap and are
//     counted);
//   - cancellation is O(log n) via an indexed binary heap — the event is
//     removed immediately, so no tombstones accumulate and pending_events()
//     is exact;
//   - periodic events are first class: one live pool entry is re-armed in
//     place every tick instead of re-scheduling a fresh event per firing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.h"

namespace tango::sim {

/// Handle used to cancel a scheduled (one-shot or periodic) event. Handles
/// carry a slot generation, so a stale handle — already fired, already
/// cancelled, or whose pool slot was since reused — never matches a live
/// event and Cancel on it is a safe no-op. Handles are simulator-local
/// (shard-local in the sharded engine): they index this simulator's pool
/// and must never be passed to, or cancelled through, another shard — a
/// cross-shard cancel is a cross-shard effect and has to travel through
/// the shard mailbox API like any other message.
using EventHandle = std::uint64_t;
constexpr EventHandle kInvalidEvent = 0;

/// Move-only `void()` callable with small-buffer optimization. Callables up
/// to kInlineBytes are stored inline in the event pool (no allocation);
/// larger ones are heap-allocated and reported via on_heap() so the
/// simulator can count them as allocation events.
class Callback {
 public:
  static constexpr std::size_t kInlineBytes = 88;

  Callback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    } else {
      heap_ = new Fn(std::forward<F>(f));  // tango-lint: allow(raw-new)
    }
    vt_ = VtableFor<Fn>();
  }

  Callback(Callback&& other) noexcept { MoveFrom(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { Reset(); }

  void operator()() { vt_->invoke(obj()); }
  explicit operator bool() const { return vt_ != nullptr; }
  /// True when the callable did not fit the inline buffer.
  bool on_heap() const { return heap_ != nullptr; }

  void Reset() noexcept {
    if (vt_ == nullptr) return;
    vt_->destroy(obj(), heap_ != nullptr);
    heap_ = nullptr;
    vt_ = nullptr;
  }

 private:
  struct VTable {
    void (*invoke)(void* obj);
    /// Move-construct the inline callable from `src` into `dst`, then
    /// destroy `src` (heap callables move by pointer swap instead).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void* obj, bool heap);
  };

  template <typename Fn>
  static const VTable* VtableFor() {
    static const VTable vt = {
        [](void* o) { (*static_cast<Fn*>(o))(); },
        [](void* src, void* dst) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* o, bool heap) {
          if (heap) {
            delete static_cast<Fn*>(o);  // tango-lint: allow(raw-new)
          } else {
            static_cast<Fn*>(o)->~Fn();
          }
        },
    };
    return &vt;
  }

  void* obj() { return heap_ != nullptr ? heap_ : static_cast<void*>(buf_); }

  void MoveFrom(Callback& other) noexcept {
    vt_ = other.vt_;
    heap_ = other.heap_;
    if (vt_ != nullptr && heap_ == nullptr) {
      vt_->relocate(other.buf_, buf_);
    }
    other.heap_ = nullptr;
    other.vt_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  const VTable* vt_ = nullptr;
};

class Simulator {
 public:
  using Callback = sim::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Schedule `cb` to run at absolute virtual time `when` (>= Now()).
  EventHandle ScheduleAt(SimTime when, Callback cb);

  /// Schedule `cb` to run `delay` after the current time.
  EventHandle ScheduleAfter(SimDuration delay, Callback cb) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// First-class periodic event: `cb` runs at `first`, then every `period`,
  /// re-arming the same pool entry in place (zero allocations per tick).
  /// Stop it with Cancel on the returned handle — safe from inside the
  /// callback itself.
  EventHandle StartPeriodic(SimTime first, SimDuration period, Callback cb);

  /// Cancel a previously scheduled event (one-shot or periodic). The event
  /// is removed from the queue immediately (O(log n), no tombstones). Safe
  /// to call on already-fired, already-cancelled, or reused handles (no-op).
  void Cancel(EventHandle handle);

  /// No pending event (NextEventTime sentinel).
  static constexpr SimTime kNoEvent = INT64_MAX;

  /// Run until the event queue is empty or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed, and the clock is
  /// left at `until` even when the queue drains early — so an epoch-bounded
  /// caller (the sharded engine drives one RunUntil per epoch) observes
  /// every shard clock at the same barrier time. Returns the number of
  /// events executed by this call, letting the caller aggregate events/sec
  /// across shards without re-reading executed_events().
  std::uint64_t RunUntil(SimTime until);

  /// Run until the event queue drains completely.
  void RunAll();

  /// Execute a single event; returns false if the queue is empty.
  bool Step();

  /// Pre-grow the event pool (not counted as allocation events), mirroring
  /// MinCostMaxFlow::ReserveArcs for warm-up-free benchmarks.
  void ReserveEvents(std::size_t n);

  /// Exact number of events currently scheduled (cancelled events are
  /// removed immediately and never counted).
  std::size_t pending_events() const { return heap_.size(); }
  /// Virtual time of the earliest pending event, or kNoEvent when the
  /// queue is empty. The sharded engine uses this to fast-forward over
  /// epochs in which no shard has anything to run.
  SimTime NextEventTime() const {
    return heap_.empty() ? kNoEvent : pool_[heap_.front()].when;
  }
  std::uint64_t executed_events() const { return executed_; }

  /// Heap-allocation events since construction: event-pool growth plus
  /// callbacks that overflowed the inline buffer. Flat across steady-state
  /// scheduling once the pool reached its high-water mark.
  std::int64_t alloc_events() const { return alloc_events_; }

  /// Audit the event engine: heap-index/slot coherence (pool_[heap_[i]]
  /// points back at i), the (when, seq) heap order, no queued event in the
  /// past, freelist slots detached from the heap, and every pool slot
  /// accounted for as exactly one of queued / free / firing. Mutation sites
  /// run it through a deterministic 1-in-64 throttle in audit builds (the
  /// sweep is O(pool), so auditing every event would make large
  /// simulations quadratic; corruption is still caught within 64
  /// mutations); compiles to nothing otherwise. Calling it directly is
  /// always a full, unthrottled sweep.
  void AuditHeap() const;

#if defined(TANGO_AUDIT)
  /// Seeded-bug hook for the audit death tests: swap two heap entries
  /// without fixing their back-indices so AuditHeap provably fires.
  void CorruptHeapForTest() {
    if (heap_.size() >= 2) std::swap(heap_[0], heap_[1]);
  }
#endif

 private:
  struct Node {
    SimTime when = 0;
    std::uint64_t seq = 0;       // tie-break so equal-time events run FIFO
    SimDuration period = 0;      // 0 = one-shot
    std::uint32_t generation = 0;
    std::int32_t heap_index = -1;  // -1 = not queued (free or firing)
    bool firing = false;           // periodic currently executing its tick
    bool cancelled = false;        // cancelled while firing: do not re-arm
    Callback cb;
  };

  static EventHandle MakeHandle(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventHandle>(gen) << 32) |
           (static_cast<EventHandle>(slot) + 1);
  }

  std::uint32_t AllocSlot();
  void FreeSlot(std::uint32_t slot);
  bool Before(std::uint32_t a, std::uint32_t b) const;
  void HeapPush(std::uint32_t slot);
  void HeapRemoveAt(std::size_t index);
  void SiftUp(std::size_t index);
  void SiftDown(std::size_t index);
  bool PopAndRun();
  /// The throttled sweep mutation sites call (see AuditHeap).
  void AuditHeapThrottled() const;

  SimTime now_ = 0;
  mutable std::uint64_t audit_tick_ = 0;  // mutations since the last sweep
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::int64_t alloc_events_ = 0;
  std::vector<Node> pool_;
  std::vector<std::uint32_t> free_;  // recycled pool slots
  std::vector<std::uint32_t> heap_;  // slot indices, min-(when, seq) heap
};

/// Convenience: schedule a callback every `period` starting at `start`.
/// Returns a function that stops the ticking when invoked (idempotent).
/// Thin wrapper over Simulator::StartPeriodic, kept for call sites that
/// want a type-erased stopper instead of a handle.
std::function<void()> SchedulePeriodic(Simulator& sim, SimTime start,
                                       SimDuration period,
                                       std::function<void(SimTime)> tick);

}  // namespace tango::sim
