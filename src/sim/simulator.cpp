#include "sim/simulator.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace tango::sim {

EventHandle Simulator::ScheduleAt(SimTime when, Callback cb) {
  TANGO_CHECK(when >= now_, "scheduling into the past: %lld < %lld",
              static_cast<long long>(when), static_cast<long long>(now_));
  const EventHandle handle = next_handle_++;
  queue_.push(Event{when, next_seq_++, handle, std::move(cb)});
  ++live_events_;
  return handle;
}

void Simulator::Cancel(EventHandle handle) {
  if (handle == kInvalidEvent) return;
  cancelled_.push_back(handle);
  cancelled_dirty_ = true;
}

bool Simulator::PopAndRun() {
  while (!queue_.empty()) {
    // Binary-search the tombstone list; keep it sorted lazily.
    if (cancelled_dirty_) {
      std::sort(cancelled_.begin(), cancelled_.end());
      cancelled_.erase(std::unique(cancelled_.begin(), cancelled_.end()),
                       cancelled_.end());
      cancelled_dirty_ = false;
    }
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    --live_events_;
    const bool is_cancelled = std::binary_search(
        cancelled_.begin(), cancelled_.end(), ev.handle);
    if (is_cancelled) {
      // Drop the tombstone so the list does not grow unboundedly.
      auto it =
          std::lower_bound(cancelled_.begin(), cancelled_.end(), ev.handle);
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

bool Simulator::Step() { return PopAndRun(); }

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    if (!PopAndRun()) break;
  }
  if (now_ < until) now_ = until;
}

void Simulator::RunAll() {
  while (PopAndRun()) {
  }
}

std::function<void()> SchedulePeriodic(Simulator& sim, SimTime start,
                                       SimDuration period,
                                       std::function<void(SimTime)> tick) {
  TANGO_CHECK(period > 0, "periodic tick needs a positive period");
  struct State {
    bool stopped = false;
  };
  auto state = std::make_shared<State>();
  auto fire = std::make_shared<std::function<void()>>();
  auto tick_fn = std::make_shared<std::function<void(SimTime)>>(std::move(tick));
  *fire = [&sim, period, state, fire, tick_fn]() {
    if (state->stopped) return;
    (*tick_fn)(sim.Now());
    if (!state->stopped) sim.ScheduleAfter(period, *fire);
  };
  sim.ScheduleAt(start, *fire);
  return [state]() { state->stopped = true; };
}

}  // namespace tango::sim
