#include "sim/simulator.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace tango::sim {

EventHandle Simulator::ScheduleAt(SimTime when, Callback cb) {
  TANGO_CHECK(when >= now_, "scheduling into the past: %lld < %lld",
              static_cast<long long>(when), static_cast<long long>(now_));
  const EventHandle handle = next_handle_++;
  queue_.push(Event{when, next_seq_++, handle, std::move(cb)});
  ++live_events_;
  return handle;
}

void Simulator::Cancel(EventHandle handle) {
  if (handle == kInvalidEvent) return;
  cancelled_.push_back(handle);
  cancelled_dirty_ = true;
}

bool Simulator::PopAndRun() {
  while (!queue_.empty()) {
    // Binary-search the tombstone list; keep it sorted lazily.
    if (cancelled_dirty_) {
      std::sort(cancelled_.begin(), cancelled_.end());
      cancelled_.erase(std::unique(cancelled_.begin(), cancelled_.end()),
                       cancelled_.end());
      cancelled_dirty_ = false;
    }
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    --live_events_;
    const bool is_cancelled = std::binary_search(
        cancelled_.begin(), cancelled_.end(), ev.handle);
    if (is_cancelled) {
      // Drop the tombstone so the list does not grow unboundedly.
      auto it =
          std::lower_bound(cancelled_.begin(), cancelled_.end(), ev.handle);
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

bool Simulator::Step() { return PopAndRun(); }

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    if (!PopAndRun()) break;
  }
  if (now_ < until) now_ = until;
}

void Simulator::RunAll() {
  while (PopAndRun()) {
  }
}

std::function<void()> SchedulePeriodic(Simulator& sim, SimTime start,
                                       SimDuration period,
                                       std::function<void(SimTime)> tick) {
  TANGO_CHECK(period > 0, "periodic tick needs a positive period");
  // The queued callback owns the state; the state never refers back to the
  // callback, so there is no shared_ptr cycle and everything is reclaimed
  // once the last queued firing runs (or the queue is destroyed).
  struct State {
    Simulator* sim;
    SimDuration period;
    bool stopped = false;
    std::function<void(SimTime)> tick;
  };
  struct Fire {
    std::shared_ptr<State> s;
    void operator()() const {
      if (s->stopped) return;
      s->tick(s->sim->Now());
      if (!s->stopped) s->sim->ScheduleAfter(s->period, Fire{s});
    }
  };
  auto state = std::make_shared<State>();
  state->sim = &sim;
  state->period = period;
  state->tick = std::move(tick);
  sim.ScheduleAt(start, Fire{state});
  return [state]() { state->stopped = true; };
}

}  // namespace tango::sim
