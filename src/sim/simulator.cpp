#include "sim/simulator.h"

#include <utility>

#include "audit/audit.h"
#include "common/logging.h"
#include "common/vet.h"

namespace tango::sim {

std::uint32_t Simulator::AllocSlot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  if (pool_.size() == pool_.capacity()) ++alloc_events_;
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  pool_.emplace_back();
  // heap_/free_ can never hold more entries than the pool has slots, so
  // growing their capacity in lockstep keeps their push_backs allocation-free.
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  if (heap_.capacity() < pool_.capacity()) heap_.reserve(pool_.capacity());
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  if (free_.capacity() < pool_.capacity()) free_.reserve(pool_.capacity());
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Simulator::FreeSlot(std::uint32_t slot) {
  Node& n = pool_[slot];
  ++n.generation;  // invalidate every outstanding handle to this slot
  n.heap_index = -1;
  n.firing = false;
  n.cancelled = false;
  n.period = 0;
  n.cb.Reset();
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  free_.push_back(slot);
}

bool Simulator::Before(std::uint32_t a, std::uint32_t b) const {
  const Node& x = pool_[a];
  const Node& y = pool_[b];
  if (x.when != y.when) return x.when < y.when;
  return x.seq < y.seq;
}

void Simulator::SiftUp(std::size_t index) {
  const std::uint32_t slot = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!Before(slot, heap_[parent])) break;
    heap_[index] = heap_[parent];
    pool_[heap_[index]].heap_index = static_cast<std::int32_t>(index);
    index = parent;
  }
  heap_[index] = slot;
  pool_[slot].heap_index = static_cast<std::int32_t>(index);
}

void Simulator::SiftDown(std::size_t index) {
  const std::uint32_t slot = heap_[index];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t best = index;
    const std::size_t l = 2 * index + 1;
    const std::size_t r = 2 * index + 2;
    std::uint32_t best_slot = slot;
    if (l < n && Before(heap_[l], best_slot)) {
      best = l;
      best_slot = heap_[l];
    }
    if (r < n && Before(heap_[r], best_slot)) {
      best = r;
      best_slot = heap_[r];
    }
    if (best == index) break;
    heap_[index] = heap_[best];
    pool_[heap_[index]].heap_index = static_cast<std::int32_t>(index);
    index = best;
  }
  heap_[index] = slot;
  pool_[slot].heap_index = static_cast<std::int32_t>(index);
}

void Simulator::HeapPush(std::uint32_t slot) {
  // TANGOVET_ALLOW_NEXT(amortized: pooled capacity)
  heap_.push_back(slot);
  pool_[slot].heap_index = static_cast<std::int32_t>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
}

void Simulator::HeapRemoveAt(std::size_t index) {
  pool_[heap_[index]].heap_index = -1;
  const std::uint32_t moved = heap_.back();
  heap_.pop_back();
  if (index == heap_.size()) return;
  heap_[index] = moved;
  pool_[moved].heap_index = static_cast<std::int32_t>(index);
  SiftDown(index);
  SiftUp(index);
}

EventHandle Simulator::ScheduleAt(SimTime when, Callback cb) {
  TANGO_CHECK(when >= now_, "scheduling into the past: %lld < %lld",
              static_cast<long long>(when), static_cast<long long>(now_));
  if (cb.on_heap()) ++alloc_events_;
  const std::uint32_t slot = AllocSlot();
  Node& n = pool_[slot];
  n.when = when;
  n.seq = next_seq_++;
  n.period = 0;
  n.cb = std::move(cb);
  HeapPush(slot);
  if constexpr (audit::kEnabled) AuditHeapThrottled();
  return MakeHandle(slot, n.generation);
}

EventHandle Simulator::StartPeriodic(SimTime first, SimDuration period,
                                     Callback cb) {
  TANGO_CHECK(period > 0, "periodic event needs a positive period");
  TANGO_CHECK(first >= now_, "periodic start in the past: %lld < %lld",
              static_cast<long long>(first), static_cast<long long>(now_));
  if (cb.on_heap()) ++alloc_events_;
  const std::uint32_t slot = AllocSlot();
  Node& n = pool_[slot];
  n.when = first;
  n.seq = next_seq_++;
  n.period = period;
  n.cb = std::move(cb);
  HeapPush(slot);
  if constexpr (audit::kEnabled) AuditHeapThrottled();
  return MakeHandle(slot, n.generation);
}

void Simulator::Cancel(EventHandle handle) {
  if (handle == kInvalidEvent) return;
  const std::uint64_t low = handle & 0xffffffffULL;
  if (low == 0) return;
  const std::size_t slot = static_cast<std::size_t>(low - 1);
  if (slot >= pool_.size()) return;
  Node& n = pool_[slot];
  if (n.generation != static_cast<std::uint32_t>(handle >> 32)) return;
  if (n.firing) {
    // A periodic cancelling itself (or being cancelled) mid-tick: the fire
    // loop frees the slot instead of re-arming.
    n.cancelled = true;
    return;
  }
  if (n.heap_index < 0) return;
  HeapRemoveAt(static_cast<std::size_t>(n.heap_index));
  FreeSlot(static_cast<std::uint32_t>(slot));
  if constexpr (audit::kEnabled) AuditHeapThrottled();
}

bool Simulator::PopAndRun() {
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_.front();
  HeapRemoveAt(0);
  Node& n = pool_[slot];
  now_ = n.when;
  ++executed_;
  if (n.period > 0) {
    // Periodic: run the tick from a local (the pool may grow while the
    // callback schedules other events), then re-arm the same slot in place.
    n.firing = true;
    Callback cb = std::move(n.cb);
    cb();
    Node& after = pool_[slot];  // re-fetch: pool_ may have reallocated
    after.firing = false;
    if (after.cancelled) {
      FreeSlot(slot);
    } else {
      after.cb = std::move(cb);
      after.when = now_ + after.period;
      after.seq = next_seq_++;
      HeapPush(slot);
    }
  } else {
    // One-shot: release the slot before invoking so a callback scheduling
    // new work can reuse it, and so Cancel on the fired handle is stale.
    Callback cb = std::move(n.cb);
    FreeSlot(slot);
    cb();
  }
  if constexpr (audit::kEnabled) AuditHeapThrottled();
  return true;
}

bool Simulator::Step() { return PopAndRun(); }

void Simulator::AuditHeapThrottled() const {
  // Full sweep every 64th mutation: O(pool) per sweep, so per-event
  // auditing would turn large simulations quadratic. Deterministic, so
  // audit runs stay reproducible.
  if ((++audit_tick_ & 63) == 0) AuditHeap();
}

void Simulator::AuditHeap() const {
  std::size_t firing = 0;
  for (std::size_t slot = 0; slot < pool_.size(); ++slot) {
    const Node& n = pool_[slot];
    if (n.firing) ++firing;
    if (n.heap_index < 0) continue;
    const auto index = static_cast<std::size_t>(n.heap_index);
    AUDIT_CHECK(index < heap_.size() && heap_[index] == slot,
                .subsystem = "sim", .invariant = "sim.heap_index_coherence",
                .sim_time = now_,
                .detail = audit::Detail(
                    "slot %zu claims heap index %zu (heap size %zu, entry "
                    "%u)",
                    slot, index, heap_.size(),
                    index < heap_.size() ? heap_[index] : 0));
  }
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const std::uint32_t slot = heap_[i];
    AUDIT_CHECK(slot < pool_.size() &&
                    pool_[slot].heap_index == static_cast<std::int32_t>(i),
                .subsystem = "sim", .invariant = "sim.heap_back_index",
                .sim_time = now_,
                .detail = audit::Detail("heap[%zu] = slot %u whose back "
                                        "index is %d",
                                        i, slot,
                                        slot < pool_.size()
                                            ? pool_[slot].heap_index
                                            : -2));
    AUDIT_CHECK(pool_[slot].when >= now_, .subsystem = "sim",
                .invariant = "sim.no_past_event", .sim_time = now_,
                .detail = audit::Detail("heap[%zu] scheduled at %lld, now "
                                        "%lld",
                                        i,
                                        static_cast<long long>(
                                            pool_[slot].when),
                                        static_cast<long long>(now_)));
    if (i > 0) {
      const std::uint32_t parent = heap_[(i - 1) / 2];
      AUDIT_CHECK(!Before(slot, parent), .subsystem = "sim",
                  .invariant = "sim.heap_order", .sim_time = now_,
                  .detail = audit::Detail(
                      "heap[%zu] (when %lld seq %llu) precedes its parent "
                      "(when %lld seq %llu)",
                      i, static_cast<long long>(pool_[slot].when),
                      static_cast<unsigned long long>(pool_[slot].seq),
                      static_cast<long long>(pool_[parent].when),
                      static_cast<unsigned long long>(pool_[parent].seq)));
    }
  }
  for (const std::uint32_t slot : free_) {
    AUDIT_CHECK(slot < pool_.size() && pool_[slot].heap_index == -1 &&
                    !pool_[slot].firing,
                .subsystem = "sim", .invariant = "sim.freelist_detached",
                .sim_time = now_,
                .detail = audit::Detail("free slot %u still queued or "
                                        "firing",
                                        slot));
  }
  // Every slot is exactly one of queued, free, or firing; pending_events()
  // stays exact because cancelled events leave the heap immediately.
  AUDIT_CHECK(heap_.size() + free_.size() + firing == pool_.size(),
              .subsystem = "sim", .invariant = "sim.slot_accounting",
              .sim_time = now_,
              .detail = audit::Detail("%zu queued + %zu free + %zu firing "
                                      "!= %zu pool slots",
                                      heap_.size(), free_.size(), firing,
                                      pool_.size()));
}

TANGO_HOT std::uint64_t Simulator::RunUntil(SimTime until) {
  const std::uint64_t before = executed_;
  while (!heap_.empty() && pool_[heap_.front()].when <= until) {
    if (!PopAndRun()) break;
  }
  if (now_ < until) now_ = until;
  return executed_ - before;
}

void Simulator::RunAll() {
  while (PopAndRun()) {
  }
}

void Simulator::ReserveEvents(std::size_t n) {
  pool_.reserve(n);
  heap_.reserve(n);
  free_.reserve(n);
}

std::function<void()> SchedulePeriodic(Simulator& sim, SimTime start,
                                       SimDuration period,
                                       std::function<void(SimTime)> tick) {
  TANGO_CHECK(period > 0, "periodic tick needs a positive period");
  Simulator* s = &sim;
  const EventHandle handle = sim.StartPeriodic(
      start, period, [s, t = std::move(tick)]() mutable { t(s->Now()); });
  // Cancel is generation-checked, so calling the stopper twice (or after the
  // slot was recycled) is a safe no-op.
  return [s, handle]() { s->Cancel(handle); };
}

}  // namespace tango::sim
