// In-memory emulation of the Linux control-group hierarchy that Kubernetes
// builds under /sys/fs/cgroup (Figure 5 of the paper):
//
//   kubepods (root)
//     └─ QoS level   (guaranteed / burstable / besteffort)
//         └─ pod level   (pod<uid>)
//             └─ container level (<container-id>)
//
// The knobs mirror cgroup-v1 cpu and memory controllers: cpu.shares,
// cpu.cfs_quota_us, cpu.cfs_period_us, memory.limit_in_bytes (held in MiB).
// The hierarchy enforces the invariant that D-VPA's ordered-write protocol
// exists to protect: a child's effective limit must never exceed its
// parent's. Writing a violating value fails, exactly like the EINVAL a real
// kernel returns — this is what forces "expand parent first, shrink child
// first" (§4.2).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace tango::cgroup {

/// cgroup-v1 style CPU+memory knobs. Negative quota means "unlimited"
/// (cpu.cfs_quota_us = -1 in the kernel).
struct Knobs {
  std::int64_t cpu_shares = 1024;
  std::int64_t cpu_cfs_quota_us = -1;
  std::int64_t cpu_cfs_period_us = 100'000;
  MiB memory_limit = -1;  // -1 = unlimited

  /// Effective CPU limit in millicores implied by quota/period
  /// (unlimited -> nullopt).
  std::optional<Millicores> CpuLimitMillicores() const {
    if (cpu_cfs_quota_us < 0 || cpu_cfs_period_us <= 0) return std::nullopt;
    return cpu_cfs_quota_us * 1000 / cpu_cfs_period_us;
  }
};

enum class QosClass { kGuaranteed, kBurstable, kBestEffort };
const char* QosClassName(QosClass c);

/// Result of a knob write. Mirrors errno-style failure of the kernel
/// interface; the simulation asserts on kOk in paths that must succeed.
enum class WriteResult {
  kOk,
  kNoSuchGroup,
  kInvalidArgument,   // e.g. child limit > parent limit
  kBusy,              // group has live children and the op requires none
};
const char* WriteResultName(WriteResult r);

class Hierarchy;

/// One node in the hierarchy. Owned by the Hierarchy; exposed by path.
class Group {
 public:
  const std::string& path() const { return path_; }
  const Knobs& knobs() const { return knobs_; }
  Group* parent() const { return parent_; }
  const std::vector<Group*>& children() const { return children_; }

 private:
  friend class Hierarchy;
  std::string path_;
  Knobs knobs_;
  Group* parent_ = nullptr;
  std::vector<Group*> children_;
};

/// The cgroup filesystem. Paths are '/'-separated, rooted at "kubepods".
class Hierarchy {
 public:
  Hierarchy();

  /// Create a group under `parent_path`; inherits unlimited knobs.
  /// Fails (nullptr) if the parent does not exist or the name is taken.
  Group* Create(const std::string& parent_path, const std::string& name);

  /// Remove a leaf group. Fails with kBusy when children remain.
  WriteResult Remove(const std::string& path);

  Group* Find(const std::string& path);
  const Group* Find(const std::string& path) const;

  /// Write the CPU quota (µs per period). Enforces the parent-bound
  /// invariant: a finite child quota may not exceed the parent's finite
  /// quota; raising a child above its parent fails with kInvalidArgument.
  WriteResult WriteCpuQuota(const std::string& path, std::int64_t quota_us);
  WriteResult WriteCpuShares(const std::string& path, std::int64_t shares);
  /// Write the memory limit (MiB, -1 unlimited). Same parent-bound rule.
  WriteResult WriteMemoryLimit(const std::string& path, MiB limit);

  /// Number of successful knob writes so far (drives the op-latency model).
  std::int64_t write_count() const { return writes_; }

  /// Audit sweep over the whole hierarchy (§4.2 invariants): every child's
  /// finite limit within its parent's, pod-level limits covering the sum of
  /// their containers', and parent/child structure coherent. Aborts with a
  /// structured report on violation; every check in it compiles to nothing
  /// when TANGO_AUDIT is off. Re-run after each successful mutation.
  void Audit() const;

#if defined(TANGO_AUDIT)
  /// Seeded-bug hook for the audit death tests: bypass the EINVAL
  /// validation and plant a raw quota value, so Audit() provably fires.
  void SetCpuQuotaUncheckedForTest(const std::string& path,
                                   std::int64_t quota_us);
#endif

  /// Standard kubepods QoS-level path, e.g. "kubepods/burstable".
  static std::string QosPath(QosClass qos);

  std::vector<std::string> ListPaths() const;

 private:
  Group* root_ = nullptr;
  std::map<std::string, std::unique_ptr<Group>> groups_;
  std::int64_t writes_ = 0;

  bool CpuQuotaWithinParent(const Group& g, std::int64_t quota) const;
  bool MemoryWithinParent(const Group& g, MiB limit) const;
  bool AnyChildCpuExceeds(const Group& g, std::int64_t quota) const;
  bool AnyChildMemoryExceeds(const Group& g, MiB limit) const;
};

/// Latency model for cgroup knob writes. The paper measures a full D-VPA
/// scaling operation (pod + container, CPU + memory, ordered) at ~23 ms and
/// the K8s-VPA delete-and-rebuild alternative at ~100x that.
struct OpLatencyModel {
  SimDuration per_write = FromMilliseconds(5.75);  // 4 writes ≈ 23 ms
  SimDuration pod_rebuild = FromMilliseconds(2300.0);
  SimDuration FullScaleOp() const { return 4 * per_write; }
};

}  // namespace tango::cgroup
