#include "cgroup/cgroup.h"

#include <algorithm>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "common/logging.h"

namespace tango::cgroup {

const char* QosClassName(QosClass c) {
  switch (c) {
    case QosClass::kGuaranteed:
      return "guaranteed";
    case QosClass::kBurstable:
      return "burstable";
    case QosClass::kBestEffort:
      return "besteffort";
  }
  return "?";
}

const char* WriteResultName(WriteResult r) {
  switch (r) {
    case WriteResult::kOk:
      return "ok";
    case WriteResult::kNoSuchGroup:
      return "no-such-group";
    case WriteResult::kInvalidArgument:
      return "invalid-argument";
    case WriteResult::kBusy:
      return "busy";
  }
  return "?";
}

Hierarchy::Hierarchy() {
  auto root = std::make_unique<Group>();
  root->path_ = "kubepods";
  root_ = root.get();
  groups_["kubepods"] = std::move(root);
  // Kubernetes pre-creates the three QoS-level groups.
  Create("kubepods", "guaranteed");
  Create("kubepods", "burstable");
  Create("kubepods", "besteffort");
}

Group* Hierarchy::Create(const std::string& parent_path,
                         const std::string& name) {
  AUDIT_SCOPE([this] { Audit(); });
  Group* parent = Find(parent_path);
  if (parent == nullptr) return nullptr;
  const std::string path = parent_path + "/" + name;
  if (groups_.count(path) != 0) return nullptr;
  auto g = std::make_unique<Group>();
  g->path_ = path;
  g->parent_ = parent;
  Group* raw = g.get();
  parent->children_.push_back(raw);
  groups_[path] = std::move(g);
  return raw;
}

WriteResult Hierarchy::Remove(const std::string& path) {
  AUDIT_SCOPE([this] { Audit(); });
  auto it = groups_.find(path);
  if (it == groups_.end()) return WriteResult::kNoSuchGroup;
  Group* g = it->second.get();
  if (!g->children_.empty()) return WriteResult::kBusy;
  if (g == root_) return WriteResult::kBusy;
  auto& sibs = g->parent_->children_;
  sibs.erase(std::remove(sibs.begin(), sibs.end(), g), sibs.end());
  groups_.erase(it);
  return WriteResult::kOk;
}

Group* Hierarchy::Find(const std::string& path) {
  auto it = groups_.find(path);
  return it == groups_.end() ? nullptr : it->second.get();
}
const Group* Hierarchy::Find(const std::string& path) const {
  auto it = groups_.find(path);
  return it == groups_.end() ? nullptr : it->second.get();
}

bool Hierarchy::CpuQuotaWithinParent(const Group& g,
                                     std::int64_t quota) const {
  const Group* p = g.parent_;
  if (p == nullptr) return true;
  const std::int64_t parent_quota = p->knobs_.cpu_cfs_quota_us;
  if (parent_quota < 0) return true;  // parent unlimited
  if (quota < 0) return false;        // unlimited child under limited parent
  return quota <= parent_quota;
}

bool Hierarchy::MemoryWithinParent(const Group& g, MiB limit) const {
  const Group* p = g.parent_;
  if (p == nullptr) return true;
  const MiB parent_limit = p->knobs_.memory_limit;
  if (parent_limit < 0) return true;
  if (limit < 0) return false;
  return limit <= parent_limit;
}

bool Hierarchy::AnyChildCpuExceeds(const Group& g, std::int64_t quota) const {
  if (quota < 0) return false;
  for (const Group* c : g.children_) {
    const std::int64_t cq = c->knobs_.cpu_cfs_quota_us;
    // An unlimited child is effectively clamped by the parent; only a child
    // with a *larger finite* quota blocks the shrink.
    if (cq >= 0 && cq > quota) return true;
  }
  return false;
}

bool Hierarchy::AnyChildMemoryExceeds(const Group& g, MiB limit) const {
  if (limit < 0) return false;
  for (const Group* c : g.children_) {
    const MiB cl = c->knobs_.memory_limit;
    if (cl >= 0 && cl > limit) return true;
  }
  return false;
}

WriteResult Hierarchy::WriteCpuQuota(const std::string& path,
                                     std::int64_t quota_us) {
  // Bracket the mutation: the hierarchy must be consistent both before the
  // write and after it, whether it succeeds or returns EINVAL.
  AUDIT_SCOPE([this] { Audit(); });
  Group* g = Find(path);
  if (g == nullptr) return WriteResult::kNoSuchGroup;
  if (quota_us == 0 || quota_us < -1) return WriteResult::kInvalidArgument;
  // Shrinking below a child's quota, or exceeding the parent's, is the
  // EINVAL that forces D-VPA's write ordering.
  if (!CpuQuotaWithinParent(*g, quota_us)) return WriteResult::kInvalidArgument;
  if (AnyChildCpuExceeds(*g, quota_us)) return WriteResult::kInvalidArgument;
  g->knobs_.cpu_cfs_quota_us = quota_us;
  ++writes_;
  return WriteResult::kOk;
}

WriteResult Hierarchy::WriteCpuShares(const std::string& path,
                                      std::int64_t shares) {
  AUDIT_SCOPE([this] { Audit(); });
  Group* g = Find(path);
  if (g == nullptr) return WriteResult::kNoSuchGroup;
  if (shares < 2) return WriteResult::kInvalidArgument;  // kernel floor
  g->knobs_.cpu_shares = shares;
  ++writes_;
  return WriteResult::kOk;
}

WriteResult Hierarchy::WriteMemoryLimit(const std::string& path, MiB limit) {
  AUDIT_SCOPE([this] { Audit(); });
  Group* g = Find(path);
  if (g == nullptr) return WriteResult::kNoSuchGroup;
  if (limit == 0 || limit < -1) return WriteResult::kInvalidArgument;
  if (!MemoryWithinParent(*g, limit)) return WriteResult::kInvalidArgument;
  if (AnyChildMemoryExceeds(*g, limit)) return WriteResult::kInvalidArgument;
  g->knobs_.memory_limit = limit;
  ++writes_;
  return WriteResult::kOk;
}

void Hierarchy::Audit() const {
  for (const auto& [path, g] : groups_) {
    const Group* parent = g->parent_;
    if (parent != nullptr) {
      // Structural coherence: the path nests under the parent's and the
      // parent lists this group among its children.
      AUDIT_CHECK(path.compare(0, parent->path_.size() + 1,
                               parent->path_ + "/") == 0,
                  .subsystem = "cgroup", .invariant = "cgroup.path_nesting",
                  .detail = audit::Detail("%s not nested under %s",
                                          path.c_str(),
                                          parent->path_.c_str()));
      AUDIT_CHECK(std::find(parent->children_.begin(),
                            parent->children_.end(),
                            g.get()) != parent->children_.end(),
                  .subsystem = "cgroup", .invariant = "cgroup.orphan_child",
                  .detail = audit::Detail("%s missing from parent %s",
                                          path.c_str(),
                                          parent->path_.c_str()));
      audit::checks::CheckCgroupBound(parent->knobs_.cpu_cfs_quota_us,
                                      g->knobs_.cpu_cfs_quota_us,
                                      "cpu.cfs_quota_us", path);
      audit::checks::CheckCgroupBound(parent->knobs_.memory_limit,
                                      g->knobs_.memory_limit,
                                      "memory.limit_in_bytes", path);
    }
    // Pod-level groups (kubepods/<qos>/<pod>) must cover the sum of their
    // containers' finite limits — D-VPA scales pod and container together
    // precisely so containers can never overdraw the pod bound.
    const auto depth = std::count(path.begin(), path.end(), '/');
    if (depth == 2 && !g->children_.empty()) {
      std::int64_t quota_sum = 0;
      std::int64_t mem_sum = 0;
      for (const Group* c : g->children_) {
        if (c->knobs_.cpu_cfs_quota_us >= 0) {
          quota_sum += c->knobs_.cpu_cfs_quota_us;
        }
        if (c->knobs_.memory_limit >= 0) mem_sum += c->knobs_.memory_limit;
      }
      audit::checks::CheckCgroupPodCoversChildren(
          g->knobs_.cpu_cfs_quota_us, quota_sum, "cpu.cfs_quota_us", path);
      audit::checks::CheckCgroupPodCoversChildren(
          g->knobs_.memory_limit, mem_sum, "memory.limit_in_bytes", path);
    }
  }
}

#if defined(TANGO_AUDIT)
void Hierarchy::SetCpuQuotaUncheckedForTest(const std::string& path,
                                            std::int64_t quota_us) {
  Group* g = Find(path);
  TANGO_CHECK(g != nullptr, "no such group: %s", path.c_str());
  g->knobs_.cpu_cfs_quota_us = quota_us;
}
#endif

std::string Hierarchy::QosPath(QosClass qos) {
  return std::string("kubepods/") + QosClassName(qos);
}

std::vector<std::string> Hierarchy::ListPaths() const {
  std::vector<std::string> out;
  out.reserve(groups_.size());
  for (const auto& [p, g] : groups_) out.push_back(p);
  return out;
}

}  // namespace tango::cgroup
