# Empty compiler generated dependencies file for example_smart_factory.
# This may be replaced when dependencies are built.
