# Empty dependencies file for example_cloud_rendering.
# This may be replaced when dependencies are built.
