file(REMOVE_RECURSE
  "CMakeFiles/example_cloud_rendering.dir/cloud_rendering.cpp.o"
  "CMakeFiles/example_cloud_rendering.dir/cloud_rendering.cpp.o.d"
  "cloud_rendering"
  "cloud_rendering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cloud_rendering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
