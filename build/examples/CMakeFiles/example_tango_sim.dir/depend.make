# Empty dependencies file for example_tango_sim.
# This may be replaced when dependencies are built.
