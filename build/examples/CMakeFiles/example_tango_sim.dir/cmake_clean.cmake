file(REMOVE_RECURSE
  "CMakeFiles/example_tango_sim.dir/tango_sim.cpp.o"
  "CMakeFiles/example_tango_sim.dir/tango_sim.cpp.o.d"
  "tango_sim"
  "tango_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tango_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
