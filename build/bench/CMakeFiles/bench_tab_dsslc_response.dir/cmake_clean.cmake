file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_dsslc_response.dir/tab_dsslc_response.cpp.o"
  "CMakeFiles/bench_tab_dsslc_response.dir/tab_dsslc_response.cpp.o.d"
  "tab_dsslc_response"
  "tab_dsslc_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_dsslc_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
