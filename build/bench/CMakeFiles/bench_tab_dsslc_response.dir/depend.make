# Empty dependencies file for bench_tab_dsslc_response.
# This may be replaced when dependencies are built.
