file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_pairing.dir/fig12_pairing.cpp.o"
  "CMakeFiles/bench_fig12_pairing.dir/fig12_pairing.cpp.o.d"
  "fig12_pairing"
  "fig12_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
