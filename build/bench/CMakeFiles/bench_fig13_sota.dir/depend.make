# Empty dependencies file for bench_fig13_sota.
# This may be replaced when dependencies are built.
