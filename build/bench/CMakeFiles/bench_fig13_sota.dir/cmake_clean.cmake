file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_sota.dir/fig13_sota.cpp.o"
  "CMakeFiles/bench_fig13_sota.dir/fig13_sota.cpp.o.d"
  "fig13_sota"
  "fig13_sota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_sota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
