file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11c_dcgbe.dir/fig11c_dcgbe.cpp.o"
  "CMakeFiles/bench_fig11c_dcgbe.dir/fig11c_dcgbe.cpp.o.d"
  "fig11c_dcgbe"
  "fig11c_dcgbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11c_dcgbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
