# Empty compiler generated dependencies file for bench_abl_autoscalers.
# This may be replaced when dependencies are built.
