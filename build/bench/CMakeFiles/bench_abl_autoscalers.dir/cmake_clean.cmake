file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_autoscalers.dir/abl_autoscalers.cpp.o"
  "CMakeFiles/bench_abl_autoscalers.dir/abl_autoscalers.cpp.o.d"
  "abl_autoscalers"
  "abl_autoscalers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_autoscalers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
