file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11ab_dsslc.dir/fig11ab_dsslc.cpp.o"
  "CMakeFiles/bench_fig11ab_dsslc.dir/fig11ab_dsslc.cpp.o.d"
  "fig11ab_dsslc"
  "fig11ab_dsslc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11ab_dsslc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
