# Empty compiler generated dependencies file for bench_fig11ab_dsslc.
# This may be replaced when dependencies are built.
