# Empty dependencies file for bench_fig09_hrm.
# This may be replaced when dependencies are built.
