file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_hrm.dir/fig09_hrm.cpp.o"
  "CMakeFiles/bench_fig09_hrm.dir/fig09_hrm.cpp.o.d"
  "fig09_hrm"
  "fig09_hrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_hrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
