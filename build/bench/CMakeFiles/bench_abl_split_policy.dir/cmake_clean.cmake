file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_split_policy.dir/abl_split_policy.cpp.o"
  "CMakeFiles/bench_abl_split_policy.dir/abl_split_policy.cpp.o.d"
  "abl_split_policy"
  "abl_split_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_split_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
