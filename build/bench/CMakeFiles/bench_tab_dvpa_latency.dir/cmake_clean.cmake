file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_dvpa_latency.dir/tab_dvpa_latency.cpp.o"
  "CMakeFiles/bench_tab_dvpa_latency.dir/tab_dvpa_latency.cpp.o.d"
  "tab_dvpa_latency"
  "tab_dvpa_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_dvpa_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
