# Empty compiler generated dependencies file for bench_tab_dvpa_latency.
# This may be replaced when dependencies are built.
