file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_reassurance.dir/fig10_reassurance.cpp.o"
  "CMakeFiles/bench_fig10_reassurance.dir/fig10_reassurance.cpp.o.d"
  "fig10_reassurance"
  "fig10_reassurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_reassurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
