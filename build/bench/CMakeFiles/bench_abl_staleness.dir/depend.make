# Empty dependencies file for bench_abl_staleness.
# This may be replaced when dependencies are built.
