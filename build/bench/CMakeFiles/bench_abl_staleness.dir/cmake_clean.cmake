file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_staleness.dir/abl_staleness.cpp.o"
  "CMakeFiles/bench_abl_staleness.dir/abl_staleness.cpp.o.d"
  "abl_staleness"
  "abl_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
