# Empty compiler generated dependencies file for bench_fig11d_gnn.
# This may be replaced when dependencies are built.
