file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11d_gnn.dir/fig11d_gnn.cpp.o"
  "CMakeFiles/bench_fig11d_gnn.dir/fig11d_gnn.cpp.o.d"
  "fig11d_gnn"
  "fig11d_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11d_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
