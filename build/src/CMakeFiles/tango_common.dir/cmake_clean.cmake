file(REMOVE_RECURSE
  "CMakeFiles/tango_common.dir/common/logging.cpp.o"
  "CMakeFiles/tango_common.dir/common/logging.cpp.o.d"
  "libtango_common.a"
  "libtango_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
