# Empty compiler generated dependencies file for tango_common.
# This may be replaced when dependencies are built.
