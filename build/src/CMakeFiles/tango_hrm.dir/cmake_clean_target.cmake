file(REMOVE_RECURSE
  "libtango_hrm.a"
)
