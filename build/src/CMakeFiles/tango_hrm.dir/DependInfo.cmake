
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hrm/dvpa.cpp" "src/CMakeFiles/tango_hrm.dir/hrm/dvpa.cpp.o" "gcc" "src/CMakeFiles/tango_hrm.dir/hrm/dvpa.cpp.o.d"
  "/root/repo/src/hrm/reassurance.cpp" "src/CMakeFiles/tango_hrm.dir/hrm/reassurance.cpp.o" "gcc" "src/CMakeFiles/tango_hrm.dir/hrm/reassurance.cpp.o.d"
  "/root/repo/src/hrm/regulations.cpp" "src/CMakeFiles/tango_hrm.dir/hrm/regulations.cpp.o" "gcc" "src/CMakeFiles/tango_hrm.dir/hrm/regulations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
