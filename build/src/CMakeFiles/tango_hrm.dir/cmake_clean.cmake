file(REMOVE_RECURSE
  "CMakeFiles/tango_hrm.dir/hrm/dvpa.cpp.o"
  "CMakeFiles/tango_hrm.dir/hrm/dvpa.cpp.o.d"
  "CMakeFiles/tango_hrm.dir/hrm/reassurance.cpp.o"
  "CMakeFiles/tango_hrm.dir/hrm/reassurance.cpp.o.d"
  "CMakeFiles/tango_hrm.dir/hrm/regulations.cpp.o"
  "CMakeFiles/tango_hrm.dir/hrm/regulations.cpp.o.d"
  "libtango_hrm.a"
  "libtango_hrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_hrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
