# Empty compiler generated dependencies file for tango_hrm.
# This may be replaced when dependencies are built.
