# Empty dependencies file for tango_gnn.
# This may be replaced when dependencies are built.
