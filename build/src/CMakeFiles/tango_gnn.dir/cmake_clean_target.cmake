file(REMOVE_RECURSE
  "libtango_gnn.a"
)
