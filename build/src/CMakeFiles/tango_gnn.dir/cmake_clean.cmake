file(REMOVE_RECURSE
  "CMakeFiles/tango_gnn.dir/gnn/encoder.cpp.o"
  "CMakeFiles/tango_gnn.dir/gnn/encoder.cpp.o.d"
  "libtango_gnn.a"
  "libtango_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
