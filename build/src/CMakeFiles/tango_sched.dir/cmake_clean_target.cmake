file(REMOVE_RECURSE
  "libtango_sched.a"
)
