file(REMOVE_RECURSE
  "CMakeFiles/tango_sched.dir/sched/be_baselines.cpp.o"
  "CMakeFiles/tango_sched.dir/sched/be_baselines.cpp.o.d"
  "CMakeFiles/tango_sched.dir/sched/ceres.cpp.o"
  "CMakeFiles/tango_sched.dir/sched/ceres.cpp.o.d"
  "CMakeFiles/tango_sched.dir/sched/dss_lc.cpp.o"
  "CMakeFiles/tango_sched.dir/sched/dss_lc.cpp.o.d"
  "CMakeFiles/tango_sched.dir/sched/lc_baselines.cpp.o"
  "CMakeFiles/tango_sched.dir/sched/lc_baselines.cpp.o.d"
  "CMakeFiles/tango_sched.dir/sched/learned_be.cpp.o"
  "CMakeFiles/tango_sched.dir/sched/learned_be.cpp.o.d"
  "libtango_sched.a"
  "libtango_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
