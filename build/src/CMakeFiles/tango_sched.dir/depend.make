# Empty dependencies file for tango_sched.
# This may be replaced when dependencies are built.
