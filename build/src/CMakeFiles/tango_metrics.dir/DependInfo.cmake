
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/qos_detector.cpp" "src/CMakeFiles/tango_metrics.dir/metrics/qos_detector.cpp.o" "gcc" "src/CMakeFiles/tango_metrics.dir/metrics/qos_detector.cpp.o.d"
  "/root/repo/src/metrics/state_storage.cpp" "src/CMakeFiles/tango_metrics.dir/metrics/state_storage.cpp.o" "gcc" "src/CMakeFiles/tango_metrics.dir/metrics/state_storage.cpp.o.d"
  "/root/repo/src/metrics/timeseries.cpp" "src/CMakeFiles/tango_metrics.dir/metrics/timeseries.cpp.o" "gcc" "src/CMakeFiles/tango_metrics.dir/metrics/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
