# Empty compiler generated dependencies file for tango_metrics.
# This may be replaced when dependencies are built.
