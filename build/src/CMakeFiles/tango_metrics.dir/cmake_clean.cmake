file(REMOVE_RECURSE
  "CMakeFiles/tango_metrics.dir/metrics/qos_detector.cpp.o"
  "CMakeFiles/tango_metrics.dir/metrics/qos_detector.cpp.o.d"
  "CMakeFiles/tango_metrics.dir/metrics/state_storage.cpp.o"
  "CMakeFiles/tango_metrics.dir/metrics/state_storage.cpp.o.d"
  "CMakeFiles/tango_metrics.dir/metrics/timeseries.cpp.o"
  "CMakeFiles/tango_metrics.dir/metrics/timeseries.cpp.o.d"
  "libtango_metrics.a"
  "libtango_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
