file(REMOVE_RECURSE
  "libtango_metrics.a"
)
