# Empty compiler generated dependencies file for tango_net.
# This may be replaced when dependencies are built.
