file(REMOVE_RECURSE
  "CMakeFiles/tango_net.dir/net/egress.cpp.o"
  "CMakeFiles/tango_net.dir/net/egress.cpp.o.d"
  "CMakeFiles/tango_net.dir/net/topology.cpp.o"
  "CMakeFiles/tango_net.dir/net/topology.cpp.o.d"
  "libtango_net.a"
  "libtango_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
