# Empty dependencies file for tango_rl.
# This may be replaced when dependencies are built.
