file(REMOVE_RECURSE
  "libtango_rl.a"
)
