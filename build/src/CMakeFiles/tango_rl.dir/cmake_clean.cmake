file(REMOVE_RECURSE
  "CMakeFiles/tango_rl.dir/rl/agent.cpp.o"
  "CMakeFiles/tango_rl.dir/rl/agent.cpp.o.d"
  "libtango_rl.a"
  "libtango_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
