file(REMOVE_RECURSE
  "CMakeFiles/tango_workload.dir/workload/service.cpp.o"
  "CMakeFiles/tango_workload.dir/workload/service.cpp.o.d"
  "CMakeFiles/tango_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/tango_workload.dir/workload/trace.cpp.o.d"
  "CMakeFiles/tango_workload.dir/workload/trace_io.cpp.o"
  "CMakeFiles/tango_workload.dir/workload/trace_io.cpp.o.d"
  "libtango_workload.a"
  "libtango_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
