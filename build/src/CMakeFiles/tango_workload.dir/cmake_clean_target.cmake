file(REMOVE_RECURSE
  "libtango_workload.a"
)
