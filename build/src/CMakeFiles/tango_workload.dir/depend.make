# Empty dependencies file for tango_workload.
# This may be replaced when dependencies are built.
