
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/export.cpp" "src/CMakeFiles/tango_eval.dir/eval/export.cpp.o" "gcc" "src/CMakeFiles/tango_eval.dir/eval/export.cpp.o.d"
  "/root/repo/src/eval/harness.cpp" "src/CMakeFiles/tango_eval.dir/eval/harness.cpp.o" "gcc" "src/CMakeFiles/tango_eval.dir/eval/harness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_tango.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_hrm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
