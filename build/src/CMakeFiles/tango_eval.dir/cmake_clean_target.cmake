file(REMOVE_RECURSE
  "libtango_eval.a"
)
