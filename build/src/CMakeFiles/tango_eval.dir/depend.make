# Empty dependencies file for tango_eval.
# This may be replaced when dependencies are built.
