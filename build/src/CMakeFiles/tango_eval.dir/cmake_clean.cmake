file(REMOVE_RECURSE
  "CMakeFiles/tango_eval.dir/eval/export.cpp.o"
  "CMakeFiles/tango_eval.dir/eval/export.cpp.o.d"
  "CMakeFiles/tango_eval.dir/eval/harness.cpp.o"
  "CMakeFiles/tango_eval.dir/eval/harness.cpp.o.d"
  "libtango_eval.a"
  "libtango_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
