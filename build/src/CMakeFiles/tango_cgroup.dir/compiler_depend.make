# Empty compiler generated dependencies file for tango_cgroup.
# This may be replaced when dependencies are built.
