file(REMOVE_RECURSE
  "CMakeFiles/tango_cgroup.dir/cgroup/cgroup.cpp.o"
  "CMakeFiles/tango_cgroup.dir/cgroup/cgroup.cpp.o.d"
  "libtango_cgroup.a"
  "libtango_cgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_cgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
