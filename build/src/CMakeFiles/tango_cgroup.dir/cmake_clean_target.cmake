file(REMOVE_RECURSE
  "libtango_cgroup.a"
)
