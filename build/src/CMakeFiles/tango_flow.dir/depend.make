# Empty dependencies file for tango_flow.
# This may be replaced when dependencies are built.
