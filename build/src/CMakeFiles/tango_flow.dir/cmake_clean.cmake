file(REMOVE_RECURSE
  "CMakeFiles/tango_flow.dir/flow/mcmf.cpp.o"
  "CMakeFiles/tango_flow.dir/flow/mcmf.cpp.o.d"
  "libtango_flow.a"
  "libtango_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
