file(REMOVE_RECURSE
  "libtango_flow.a"
)
