file(REMOVE_RECURSE
  "CMakeFiles/tango_nn.dir/nn/adam.cpp.o"
  "CMakeFiles/tango_nn.dir/nn/adam.cpp.o.d"
  "CMakeFiles/tango_nn.dir/nn/autograd.cpp.o"
  "CMakeFiles/tango_nn.dir/nn/autograd.cpp.o.d"
  "CMakeFiles/tango_nn.dir/nn/matrix.cpp.o"
  "CMakeFiles/tango_nn.dir/nn/matrix.cpp.o.d"
  "CMakeFiles/tango_nn.dir/nn/module.cpp.o"
  "CMakeFiles/tango_nn.dir/nn/module.cpp.o.d"
  "CMakeFiles/tango_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/tango_nn.dir/nn/serialize.cpp.o.d"
  "libtango_nn.a"
  "libtango_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
