file(REMOVE_RECURSE
  "libtango_nn.a"
)
