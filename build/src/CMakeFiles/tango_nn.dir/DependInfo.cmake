
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cpp" "src/CMakeFiles/tango_nn.dir/nn/adam.cpp.o" "gcc" "src/CMakeFiles/tango_nn.dir/nn/adam.cpp.o.d"
  "/root/repo/src/nn/autograd.cpp" "src/CMakeFiles/tango_nn.dir/nn/autograd.cpp.o" "gcc" "src/CMakeFiles/tango_nn.dir/nn/autograd.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/CMakeFiles/tango_nn.dir/nn/matrix.cpp.o" "gcc" "src/CMakeFiles/tango_nn.dir/nn/matrix.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/tango_nn.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/tango_nn.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/tango_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/tango_nn.dir/nn/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
