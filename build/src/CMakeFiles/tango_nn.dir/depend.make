# Empty dependencies file for tango_nn.
# This may be replaced when dependencies are built.
