# Empty compiler generated dependencies file for tango_tango.
# This may be replaced when dependencies are built.
