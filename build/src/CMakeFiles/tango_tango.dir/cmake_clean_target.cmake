file(REMOVE_RECURSE
  "libtango_tango.a"
)
