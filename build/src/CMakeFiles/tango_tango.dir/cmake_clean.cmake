file(REMOVE_RECURSE
  "CMakeFiles/tango_tango.dir/tango/framework.cpp.o"
  "CMakeFiles/tango_tango.dir/tango/framework.cpp.o.d"
  "libtango_tango.a"
  "libtango_tango.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_tango.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
