# Empty dependencies file for tango_k8s.
# This may be replaced when dependencies are built.
