file(REMOVE_RECURSE
  "libtango_k8s.a"
)
