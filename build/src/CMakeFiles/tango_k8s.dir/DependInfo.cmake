
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/k8s/allocation.cpp" "src/CMakeFiles/tango_k8s.dir/k8s/allocation.cpp.o" "gcc" "src/CMakeFiles/tango_k8s.dir/k8s/allocation.cpp.o.d"
  "/root/repo/src/k8s/autoscalers.cpp" "src/CMakeFiles/tango_k8s.dir/k8s/autoscalers.cpp.o" "gcc" "src/CMakeFiles/tango_k8s.dir/k8s/autoscalers.cpp.o.d"
  "/root/repo/src/k8s/node.cpp" "src/CMakeFiles/tango_k8s.dir/k8s/node.cpp.o" "gcc" "src/CMakeFiles/tango_k8s.dir/k8s/node.cpp.o.d"
  "/root/repo/src/k8s/system.cpp" "src/CMakeFiles/tango_k8s.dir/k8s/system.cpp.o" "gcc" "src/CMakeFiles/tango_k8s.dir/k8s/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
