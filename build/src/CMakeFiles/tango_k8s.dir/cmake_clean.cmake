file(REMOVE_RECURSE
  "CMakeFiles/tango_k8s.dir/k8s/allocation.cpp.o"
  "CMakeFiles/tango_k8s.dir/k8s/allocation.cpp.o.d"
  "CMakeFiles/tango_k8s.dir/k8s/autoscalers.cpp.o"
  "CMakeFiles/tango_k8s.dir/k8s/autoscalers.cpp.o.d"
  "CMakeFiles/tango_k8s.dir/k8s/node.cpp.o"
  "CMakeFiles/tango_k8s.dir/k8s/node.cpp.o.d"
  "CMakeFiles/tango_k8s.dir/k8s/system.cpp.o"
  "CMakeFiles/tango_k8s.dir/k8s/system.cpp.o.d"
  "libtango_k8s.a"
  "libtango_k8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
