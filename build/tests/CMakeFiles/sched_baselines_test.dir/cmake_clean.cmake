file(REMOVE_RECURSE
  "CMakeFiles/sched_baselines_test.dir/sched_baselines_test.cpp.o"
  "CMakeFiles/sched_baselines_test.dir/sched_baselines_test.cpp.o.d"
  "sched_baselines_test"
  "sched_baselines_test.pdb"
  "sched_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
