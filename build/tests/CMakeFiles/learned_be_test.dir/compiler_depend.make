# Empty compiler generated dependencies file for learned_be_test.
# This may be replaced when dependencies are built.
