file(REMOVE_RECURSE
  "CMakeFiles/learned_be_test.dir/learned_be_test.cpp.o"
  "CMakeFiles/learned_be_test.dir/learned_be_test.cpp.o.d"
  "learned_be_test"
  "learned_be_test.pdb"
  "learned_be_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_be_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
