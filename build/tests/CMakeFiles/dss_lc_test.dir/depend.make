# Empty dependencies file for dss_lc_test.
# This may be replaced when dependencies are built.
