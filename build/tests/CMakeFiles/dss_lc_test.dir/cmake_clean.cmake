file(REMOVE_RECURSE
  "CMakeFiles/dss_lc_test.dir/dss_lc_test.cpp.o"
  "CMakeFiles/dss_lc_test.dir/dss_lc_test.cpp.o.d"
  "dss_lc_test"
  "dss_lc_test.pdb"
  "dss_lc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dss_lc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
