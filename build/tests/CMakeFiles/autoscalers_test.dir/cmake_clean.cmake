file(REMOVE_RECURSE
  "CMakeFiles/autoscalers_test.dir/autoscalers_test.cpp.o"
  "CMakeFiles/autoscalers_test.dir/autoscalers_test.cpp.o.d"
  "autoscalers_test"
  "autoscalers_test.pdb"
  "autoscalers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscalers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
