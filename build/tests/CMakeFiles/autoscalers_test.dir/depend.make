# Empty dependencies file for autoscalers_test.
# This may be replaced when dependencies are built.
