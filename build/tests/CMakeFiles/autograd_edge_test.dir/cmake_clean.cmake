file(REMOVE_RECURSE
  "CMakeFiles/autograd_edge_test.dir/autograd_edge_test.cpp.o"
  "CMakeFiles/autograd_edge_test.dir/autograd_edge_test.cpp.o.d"
  "autograd_edge_test"
  "autograd_edge_test.pdb"
  "autograd_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
