# Empty dependencies file for autograd_edge_test.
# This may be replaced when dependencies are built.
