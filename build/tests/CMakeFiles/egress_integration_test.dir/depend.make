# Empty dependencies file for egress_integration_test.
# This may be replaced when dependencies are built.
