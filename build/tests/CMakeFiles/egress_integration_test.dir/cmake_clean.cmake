file(REMOVE_RECURSE
  "CMakeFiles/egress_integration_test.dir/egress_integration_test.cpp.o"
  "CMakeFiles/egress_integration_test.dir/egress_integration_test.cpp.o.d"
  "egress_integration_test"
  "egress_integration_test.pdb"
  "egress_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/egress_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
