# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/allocation_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_edge_test[1]_include.cmake")
include("/root/repo/build/tests/autoscalers_test[1]_include.cmake")
include("/root/repo/build/tests/cgroup_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dss_lc_test[1]_include.cmake")
include("/root/repo/build/tests/egress_integration_test[1]_include.cmake")
include("/root/repo/build/tests/egress_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/framework_test[1]_include.cmake")
include("/root/repo/build/tests/gnn_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/hrm_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/learned_be_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/sched_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
