// Tests for parameter save/load.
#include <gtest/gtest.h>

#include <sstream>

#include "nn/serialize.h"

namespace tango::nn {
namespace {

struct TwoNets {
  ParamStore store;
  Mlp mlp;
  TwoNets(std::uint64_t seed) {
    Rng rng(seed);
    mlp = Mlp(store, "net", {4, 8, 2}, rng);
  }
};

TEST(Serialize, RoundTripRestoresExactValues) {
  TwoNets a(1), b(2);  // different init
  std::stringstream buf;
  ASSERT_TRUE(SaveParams(buf, a.store));
  ASSERT_TRUE(LoadParams(buf, b.store));
  for (std::size_t i = 0; i < a.store.params().size(); ++i) {
    const Matrix& ma = a.store.params()[i]->value;
    const Matrix& mb = b.store.params()[i]->value;
    for (int r = 0; r < ma.rows(); ++r) {
      for (int c = 0; c < ma.cols(); ++c) {
        EXPECT_NEAR(ma.at(r, c), mb.at(r, c), 1e-6f);
      }
    }
  }
  // The restored net computes the same outputs.
  const Var x = Constant(Matrix(1, 4, 0.7f));
  const Var ya = a.mlp.Forward(x);
  const Var yb = b.mlp.Forward(x);
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(ya->value.at(0, c), yb->value.at(0, c), 1e-5f);
  }
}

TEST(Serialize, RejectsArchitectureMismatch) {
  TwoNets a(1);
  ParamStore other;
  Rng rng(3);
  Mlp different(other, "net", {4, 16, 2}, rng);  // different hidden width
  std::stringstream buf;
  SaveParams(buf, a.store);
  EXPECT_FALSE(LoadParams(buf, other));
}

TEST(Serialize, RejectsNameMismatch) {
  TwoNets a(1);
  ParamStore other;
  Rng rng(3);
  Mlp renamed(other, "другой", {4, 8, 2}, rng);
  std::stringstream buf;
  SaveParams(buf, a.store);
  EXPECT_FALSE(LoadParams(buf, other));
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  TwoNets a(1);
  std::stringstream garbage("not a params file");
  EXPECT_FALSE(LoadParams(garbage, a.store));
  // Truncated file: drop the last line.
  std::stringstream buf;
  SaveParams(buf, a.store);
  std::string s = buf.str();
  s.resize(s.size() / 2);
  std::stringstream truncated(s);
  EXPECT_FALSE(LoadParams(truncated, a.store));
}

TEST(Serialize, TruncatedLoadLeavesStoreUsable) {
  TwoNets a(1), b(2);
  const float before = b.store.params()[0]->value.at(0, 0);
  std::stringstream buf;
  SaveParams(buf, a.store);
  std::string s = buf.str();
  s.resize(s.size() / 2);
  std::stringstream truncated(s);
  EXPECT_FALSE(LoadParams(truncated, b.store));
  // Staging means the failed load changed nothing.
  EXPECT_FLOAT_EQ(b.store.params()[0]->value.at(0, 0), before);
}

TEST(Serialize, FileRoundTrip) {
  TwoNets a(1), b(2);
  const std::string path = "/tmp/tango_params_test.txt";
  ASSERT_TRUE(SaveParamsFile(path, a.store));
  EXPECT_TRUE(LoadParamsFile(path, b.store));
  EXPECT_FALSE(LoadParamsFile("/tmp/missing_tango_params.txt", b.store));
}

}  // namespace
}  // namespace tango::nn
