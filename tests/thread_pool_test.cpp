// ThreadPool: fan-out coverage, worker-slot ranges, exception propagation,
// and shutdown edge cases (the parallel scheduling core rides on these).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace tango {
namespace {

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool pool(3);
  ASSERT_EQ(pool.size(), 3);
  ASSERT_EQ(pool.concurrency(), 4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](std::size_t i, int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LE(worker, pool.size());
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, AutoSizeSpawnsAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t, int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleItemRunsOnTheCaller) {
  ThreadPool pool(2);
  int worker_seen = -1;
  pool.ParallelFor(1, [&](std::size_t, int worker) { worker_seen = worker; });
  EXPECT_EQ(worker_seen, pool.size());  // caller slot
}

TEST(ThreadPool, ManySmallBatchesInSequence) {
  // Exercises batch retirement/generation logic: a stale worker must never
  // re-run a finished batch or miss a fresh one at the same stack address.
  ThreadPool pool(2);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(16, [&](std::size_t i, int) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 120);
  }
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](std::size_t i, int) {
                         if (i == 5) throw std::runtime_error("boom");
                         ran.fetch_add(1);
                       }),
      std::runtime_error);
  // Items claimed before the abandon flag flipped still completed; the
  // batch joined deterministically either way.
  EXPECT_LE(ran.load(), 63);
  // The pool is intact and usable for the next batch.
  std::atomic<int> again{0};
  pool.ParallelFor(8, [&](std::size_t, int) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 8);
}

TEST(ThreadPool, ShutdownDegradesToSerialExecution) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_EQ(pool.size(), 0);
  std::set<int> workers;
  int count = 0;
  pool.ParallelFor(10, [&](std::size_t, int worker) {
    workers.insert(worker);
    ++count;  // single-threaded now: no atomics needed
  });
  EXPECT_EQ(count, 10);
  // All on the caller slot (size() == 0 after shutdown).
  EXPECT_EQ(workers, std::set<int>{0});
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // must not deadlock or double-join
  SUCCEED();
}

TEST(ThreadPool, DestructorJoinsWithoutDeadlock) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4);
    pool.ParallelFor(100, [&](std::size_t, int) { sum.fetch_add(1); });
  }  // ~ThreadPool joins here
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, ExceptionOnDegradedPathPropagates) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_THROW(pool.ParallelFor(3,
                                [](std::size_t i, int) {
                                  if (i == 1) throw std::logic_error("x");
                                }),
               std::logic_error);
}

}  // namespace
}  // namespace tango
