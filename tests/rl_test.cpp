// Tests for the RL agents: action-masking guarantees, the Act/Observe
// protocol, and learning on a trivial "good node" bandit.
#include <gtest/gtest.h>

#include "rl/agent.h"

namespace tango::rl {
namespace {

/// Fully-connected 4-node graph whose features mark one "good" node.
GraphState BanditState(int good_node) {
  GraphState s;
  s.graph.features = nn::Matrix(4, 3);
  for (int i = 0; i < 4; ++i) {
    s.graph.features.at(i, 0) = i == good_node ? 1.0f : 0.0f;
    s.graph.features.at(i, 1) = 0.5f;
    s.graph.features.at(i, 2) = static_cast<float>(i) / 4.0f;
  }
  s.graph.adj = {{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}};
  return s;
}

TEST(MaskRow, AllValidWhenEmpty) {
  const nn::Matrix m = MaskRow({}, 3);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(m.at(0, i), 1.0f);
}

TEST(MaskRow, ReflectsValidity) {
  const nn::Matrix m = MaskRow({true, false, true}, 3);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 1.0f);
}

TEST(MaskRow, FullyMaskedFallsBackToAllValid) {
  const nn::Matrix m = MaskRow({false, false}, 2);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 1.0f);
}

template <class AgentT, class ConfigT>
std::unique_ptr<AgentT> MakeSmallAgent() {
  ConfigT cfg;
  cfg.feature_dim = 3;
  cfg.embed_dim = 16;
  cfg.seed = 5;
  return std::make_unique<AgentT>(cfg);
}

TEST(A2cAgent, NeverPicksMaskedAction) {
  auto agent = MakeSmallAgent<A2cAgent, A2cConfig>();
  GraphState s = BanditState(0);
  s.valid = {false, true, false, false};  // only node 1 allowed
  for (int i = 0; i < 50; ++i) {
    const int a = agent->Act(s);
    EXPECT_EQ(a, 1);
    agent->Observe(0.0f, s, false);
  }
}

TEST(SacAgent, NeverPicksMaskedAction) {
  auto agent = MakeSmallAgent<SacAgent, SacConfig>();
  GraphState s = BanditState(0);
  s.valid = {false, false, true, false};
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(agent->Act(s), 2);
    agent->Observe(0.0f, s, false);
  }
}

TEST(A2cAgent, ActionsWithinRange) {
  auto agent = MakeSmallAgent<A2cAgent, A2cConfig>();
  const GraphState s = BanditState(2);
  for (int i = 0; i < 20; ++i) {
    const int a = agent->Act(s);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
    agent->Observe(0.1f, s, false);
  }
}

TEST(A2cAgent, LearnsBanditPreference) {
  // Reward 1 for picking the flagged node, 0 otherwise; after training the
  // greedy policy should pick it.
  A2cConfig cfg;
  cfg.feature_dim = 3;
  cfg.embed_dim = 16;
  cfg.train_interval = 8;
  cfg.gamma = 0.0f;     // bandit: credit is single-step
  cfg.adam.lr = 5e-3f;  // faster than the paper's 2e-4 for a tiny test
  cfg.entropy_coef = 0.003f;
  cfg.seed = 21;
  A2cAgent agent(cfg);
  const GraphState s = BanditState(1);
  int hits_late = 0;
  for (int t = 0; t < 800; ++t) {
    const int a = agent.Act(s);
    const float r = a == 1 ? 1.0f : 0.0f;
    agent.Observe(r, s, false);
    if (t >= 700 && a == 1) ++hits_late;
  }
  EXPECT_GT(agent.train_steps(), 10);
  EXPECT_GT(hits_late, 60);  // >60% of the last 100 actions
  EXPECT_EQ(agent.Act(s, /*greedy=*/true), 1);
}

TEST(A2cAgent, TrainStepsAdvanceAtInterval) {
  A2cConfig cfg;
  cfg.feature_dim = 3;
  cfg.embed_dim = 8;
  cfg.train_interval = 4;
  cfg.seed = 3;
  A2cAgent agent(cfg);
  const GraphState s = BanditState(0);
  for (int t = 0; t < 12; ++t) {
    agent.Act(s);
    agent.Observe(0.0f, s, false);
  }
  EXPECT_EQ(agent.train_steps(), 3);
}

TEST(A2cAgent, DoneFlushesPartialRollout) {
  A2cConfig cfg;
  cfg.feature_dim = 3;
  cfg.embed_dim = 8;
  cfg.train_interval = 100;
  cfg.seed = 4;
  A2cAgent agent(cfg);
  const GraphState s = BanditState(0);
  agent.Act(s);
  agent.Observe(1.0f, s, /*done=*/true);
  EXPECT_EQ(agent.train_steps(), 1);
}

TEST(A2cAgent, NameReflectsEncoder) {
  A2cConfig cfg;
  cfg.feature_dim = 3;
  cfg.embed_dim = 8;
  cfg.encoder = gnn::EncoderKind::kGcn;
  A2cAgent agent(cfg);
  EXPECT_EQ(agent.name(), "GCN-A2C");
}

TEST(SacAgent, TrainsAfterEnoughReplay) {
  SacConfig cfg;
  cfg.feature_dim = 3;
  cfg.embed_dim = 8;
  cfg.batch_size = 8;
  cfg.train_every = 4;
  cfg.seed = 6;
  SacAgent agent(cfg);
  const GraphState s = BanditState(0);
  for (int t = 0; t < 24; ++t) {
    agent.Act(s);
    agent.Observe(0.5f, s, false);
  }
  EXPECT_GT(agent.train_steps(), 0);
}

TEST(SacAgent, LearnsBanditPreference) {
  SacConfig cfg;
  cfg.feature_dim = 3;
  cfg.embed_dim = 16;
  cfg.batch_size = 16;
  cfg.train_every = 4;
  cfg.alpha = 0.01f;
  cfg.adam.lr = 5e-3f;
  cfg.seed = 23;
  SacAgent agent(cfg);
  const GraphState s = BanditState(2);
  int hits_late = 0;
  for (int t = 0; t < 500; ++t) {
    const int a = agent.Act(s);
    agent.Observe(a == 2 ? 1.0f : 0.0f, s, false);
    if (t >= 400 && a == 2) ++hits_late;
  }
  EXPECT_GT(hits_late, 55);
}

TEST(Agents, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    A2cConfig cfg;
    cfg.feature_dim = 3;
    cfg.embed_dim = 8;
    cfg.seed = seed;
    A2cAgent agent(cfg);
    const GraphState s = BanditState(1);
    std::vector<int> actions;
    for (int t = 0; t < 20; ++t) {
      actions.push_back(agent.Act(s));
      agent.Observe(0.3f, s, false);
    }
    return actions;
  };
  EXPECT_EQ(run(11), run(11));
}

TEST(A2cAgent, PackedInferenceMatchesTapedActionsAcrossTraining) {
  // TangoSolve equivalence bar: with identical seeds, the packed (tape-
  // free) Act path and the taped path pick identical actions through
  // multiple interleaved training steps (which change the weights and
  // force re-packs).
  auto run = [](bool packed) {
    A2cConfig cfg;
    cfg.feature_dim = 3;
    cfg.embed_dim = 8;
    cfg.seed = 23;
    cfg.train_interval = 8;
    cfg.packed_inference = packed;
    A2cAgent agent(cfg);
    std::vector<int> actions;
    for (int t = 0; t < 48; ++t) {
      const GraphState s = BanditState(t % 4);
      actions.push_back(agent.Act(s));
      agent.Observe(actions.back() == t % 4 ? 1.0f : -0.1f, s, false);
    }
    return actions;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(A2cAgent, PackedActDoesNotTouchTheTape) {
  A2cConfig cfg;
  cfg.feature_dim = 3;
  cfg.embed_dim = 8;
  cfg.seed = 9;
  cfg.packed_inference = true;
  A2cAgent agent(cfg);
  const GraphState s = BanditState(2);
  agent.Act(s);  // first call packs the weights
  agent.Observe(0.1f, s, false);
  const auto before = nn::NodeCount();
  for (int t = 0; t < 5; ++t) agent.Act(s);
  EXPECT_EQ(nn::NodeCount(), before)
      << "steady-state packed Act must allocate zero autograd nodes";
}

TEST(A2cAgent, GatEncoderFallsBackToTapedActPath) {
  A2cConfig cfg;
  cfg.feature_dim = 3;
  cfg.embed_dim = 8;
  cfg.seed = 13;
  cfg.encoder = gnn::EncoderKind::kGat;
  cfg.packed_inference = true;
  A2cAgent packed_agent(cfg);
  cfg.packed_inference = false;
  A2cAgent taped_agent(cfg);
  const GraphState s = BanditState(1);
  for (int t = 0; t < 10; ++t) {
    EXPECT_EQ(packed_agent.Act(s), taped_agent.Act(s));
    packed_agent.Observe(0.2f, s, false);
    taped_agent.Observe(0.2f, s, false);
  }
}

}  // namespace
}  // namespace tango::rl
