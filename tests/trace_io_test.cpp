// Tests for trace CSV (de)serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace_io.h"

namespace tango::workload {
namespace {

Trace SmallTrace() {
  Trace t;
  for (int i = 0; i < 5; ++i) {
    Request r;
    r.id = RequestId{i};
    r.service = ServiceId{i % 3};
    r.origin = ClusterId{i % 2};
    r.arrival = i * 1000;
    r.work_scale = 1.0 + 0.25 * i;
    t.push_back(r);
  }
  return t;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = SmallTrace();
  std::stringstream buf;
  EXPECT_EQ(WriteTraceCsv(buf, original), 5u);
  const auto parsed = ReadTraceCsv(buf);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed)[i].id, original[i].id);
    EXPECT_EQ((*parsed)[i].service, original[i].service);
    EXPECT_EQ((*parsed)[i].origin, original[i].origin);
    EXPECT_EQ((*parsed)[i].arrival, original[i].arrival);
    EXPECT_DOUBLE_EQ((*parsed)[i].work_scale, original[i].work_scale);
  }
}

TEST(TraceIo, GeneratedTraceRoundTrip) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  TraceConfig tc;
  tc.catalog = &cat;
  tc.num_clusters = 3;
  tc.duration = 5 * kSecond;
  tc.seed = 9;
  const Trace t = GeneratePattern(Pattern::kP3, tc);
  std::stringstream buf;
  WriteTraceCsv(buf, t);
  const auto parsed = ReadTraceCsv(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), t.size());
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream buf("not,a,header\n1,2,3,4,5\n");
  TraceParseError err;
  EXPECT_FALSE(ReadTraceCsv(buf, &err).has_value());
  EXPECT_EQ(err.line, 1);
}

TEST(TraceIo, RejectsMalformedRow) {
  std::stringstream buf(
      "request_id,service_id,origin_cluster,arrival_us,work_scale\n"
      "0,1,0,100,1.0\n"
      "oops\n");
  TraceParseError err;
  EXPECT_FALSE(ReadTraceCsv(buf, &err).has_value());
  EXPECT_EQ(err.line, 3);
}

TEST(TraceIo, RejectsDuplicateIds) {
  std::stringstream buf(
      "request_id,service_id,origin_cluster,arrival_us,work_scale\n"
      "7,1,0,100,1.0\n"
      "7,2,1,200,1.0\n");
  TraceParseError err;
  EXPECT_FALSE(ReadTraceCsv(buf, &err).has_value());
  EXPECT_NE(err.message.find("duplicate"), std::string::npos);
}

TEST(TraceIo, RejectsNegativeFields) {
  std::stringstream buf(
      "request_id,service_id,origin_cluster,arrival_us,work_scale\n"
      "0,1,0,-5,1.0\n");
  EXPECT_FALSE(ReadTraceCsv(buf).has_value());
}

TEST(TraceIo, RejectsNegativeArrivalWithLine) {
  std::stringstream buf(
      "request_id,service_id,origin_cluster,arrival_us,work_scale\n"
      "0,1,0,100,1.0\n"
      "1,1,0,-1,1.0\n");
  TraceParseError err;
  EXPECT_FALSE(ReadTraceCsv(buf, &err).has_value());
  EXPECT_EQ(err.line, 3);
  EXPECT_NE(err.message.find("out-of-range"), std::string::npos);
}

TEST(TraceIo, RejectsNonPositiveWorkScale) {
  for (const char* scale : {"0", "-0.5"}) {
    std::stringstream buf(
        std::string(
            "request_id,service_id,origin_cluster,arrival_us,work_scale\n"
            "0,1,0,100,") +
        scale + "\n");
    TraceParseError err;
    EXPECT_FALSE(ReadTraceCsv(buf, &err).has_value()) << scale;
    EXPECT_EQ(err.line, 2) << scale;
    EXPECT_NE(err.message.find("out-of-range"), std::string::npos) << scale;
  }
}

TEST(TraceIo, RejectsTrailingJunkAfterLastField) {
  std::stringstream buf(
      "request_id,service_id,origin_cluster,arrival_us,work_scale\n"
      "0,1,0,100,1.0\n"
      "1,1,0,200,1.5xyz\n");
  TraceParseError err;
  EXPECT_FALSE(ReadTraceCsv(buf, &err).has_value());
  EXPECT_EQ(err.line, 3);
  EXPECT_NE(err.message.find("malformed"), std::string::npos);
}

TEST(TraceIo, RejectsExtraColumn) {
  std::stringstream buf(
      "request_id,service_id,origin_cluster,arrival_us,work_scale\n"
      "0,1,0,100,1.0,42\n");
  TraceParseError err;
  EXPECT_FALSE(ReadTraceCsv(buf, &err).has_value());
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("malformed"), std::string::npos);
}

TEST(TraceIo, RejectsShortRowWithLine) {
  std::stringstream buf(
      "request_id,service_id,origin_cluster,arrival_us,work_scale\n"
      "0,1,0,100\n");
  TraceParseError err;
  EXPECT_FALSE(ReadTraceCsv(buf, &err).has_value());
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("malformed"), std::string::npos);
}

TEST(TraceIo, DuplicateIdReportsLine) {
  std::stringstream buf(
      "request_id,service_id,origin_cluster,arrival_us,work_scale\n"
      "7,1,0,100,1.0\n"
      "8,1,0,150,1.0\n"
      "7,2,1,200,1.0\n");
  TraceParseError err;
  EXPECT_FALSE(ReadTraceCsv(buf, &err).has_value());
  EXPECT_EQ(err.line, 4);
}

TEST(TraceIo, SortsByArrival) {
  std::stringstream buf(
      "request_id,service_id,origin_cluster,arrival_us,work_scale\n"
      "0,1,0,5000,1.0\n"
      "1,1,0,1000,1.0\n");
  const auto parsed = ReadTraceCsv(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)[0].id, RequestId{1});
  EXPECT_EQ((*parsed)[1].id, RequestId{0});
}

TEST(TraceIo, ToleratesCrlfAndBlankLines) {
  std::stringstream buf(
      "request_id,service_id,origin_cluster,arrival_us,work_scale\r\n"
      "0,1,0,100,1.5\r\n"
      "\n"
      "1,2,1,200,2.0\r\n");
  const auto parsed = ReadTraceCsv(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ((*parsed)[0].work_scale, 1.5);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace t = SmallTrace();
  const std::string path = "/tmp/tango_trace_io_test.csv";
  ASSERT_TRUE(WriteTraceCsvFile(path, t));
  const auto parsed = ReadTraceCsvFile(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), t.size());
  TraceParseError err;
  EXPECT_FALSE(ReadTraceCsvFile("/tmp/definitely_missing_tango.csv", &err)
                   .has_value());
  EXPECT_EQ(err.line, 0);
}

TEST(TraceIo, EmptyTraceRoundTrip) {
  std::stringstream buf;
  WriteTraceCsv(buf, {});
  const auto parsed = ReadTraceCsv(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

}  // namespace
}  // namespace tango::workload
