// Tests for the egress bandwidth regulator (bandwidth as a compressible
// resource, §4.1).
#include <gtest/gtest.h>

#include "net/egress.h"

namespace tango::net {
namespace {

constexpr ClusterId kC{0};

TEST(Egress, IdleLinkGivesFullBandwidth) {
  EgressRegulator reg;
  EXPECT_EQ(reg.EffectiveBandwidth(kC, true, 0), reg.config().uplink);
  EXPECT_EQ(reg.EffectiveBandwidth(kC, false, 0), reg.config().uplink);
  EXPECT_DOUBLE_EQ(reg.LcLoadFraction(kC, 0), 0.0);
}

TEST(Egress, SerializationMatchesTransferTimeWhenIdle) {
  EgressRegulator reg;
  const Bytes size = 1 << 20;
  EXPECT_EQ(reg.Serialize(kC, size, true, 0),
            TransferTime(size, reg.config().uplink));
}

TEST(Egress, LcLoadFractionTracksOfferedBytes) {
  EgressConfig cfg;
  cfg.uplink = 8000;  // 8 Mbps → 500 KB per 500 ms window
  EgressRegulator reg(cfg);
  reg.Serialize(kC, 250 * 1000, true, 0);
  EXPECT_NEAR(reg.LcLoadFraction(kC, 0), 0.5, 0.05);
  // The window decays: a few windows later the link looks idle again.
  EXPECT_LT(reg.LcLoadFraction(kC, 3 * cfg.window), 0.05);
}

TEST(Egress, PriorityModeShieldsLcFromBeBulk) {
  EgressConfig cfg;
  cfg.uplink = 8000;
  EgressRegulator reg(cfg);
  reg.set_mode(EgressMode::kLcPriority);
  // Saturate the uplink with BE bulk.
  reg.Serialize(kC, 1000 * 1000, false, 0);
  // LC still sees the full uplink…
  EXPECT_EQ(reg.EffectiveBandwidth(kC, true, 0), cfg.uplink);
  // …while in fair mode it would be squeezed.
  reg.set_mode(EgressMode::kFairShare);
  EXPECT_LT(reg.EffectiveBandwidth(kC, true, 0), cfg.uplink);
}

TEST(Egress, PriorityModeCompressesBeUnderLcLoad) {
  EgressConfig cfg;
  cfg.uplink = 8000;
  EgressRegulator reg(cfg);
  reg.set_mode(EgressMode::kLcPriority);
  // LC claims ~60% of the window.
  reg.Serialize(kC, 300 * 1000, true, 0);
  const Kbps be_bw = reg.EffectiveBandwidth(kC, false, 0);
  EXPECT_LT(be_bw, cfg.uplink / 2);
  EXPECT_GE(be_bw, static_cast<Kbps>(cfg.uplink * cfg.be_floor));
}

TEST(Egress, BeFloorPreventsStarvation) {
  EgressConfig cfg;
  cfg.uplink = 8000;
  cfg.be_floor = 0.1;
  EgressRegulator reg(cfg);
  reg.set_mode(EgressMode::kLcPriority);
  // LC wildly oversubscribes.
  for (int i = 0; i < 20; ++i) reg.Serialize(kC, 500 * 1000, true, 0);
  EXPECT_GE(reg.EffectiveBandwidth(kC, false, 0),
            static_cast<Kbps>(cfg.uplink * 0.1));
}

TEST(Egress, FairModeDegradesBothClasses) {
  EgressConfig cfg;
  cfg.uplink = 8000;
  EgressRegulator reg(cfg);
  reg.set_mode(EgressMode::kFairShare);
  reg.Serialize(kC, 500 * 1000, true, 0);
  reg.Serialize(kC, 500 * 1000, false, 0);
  const Kbps lc = reg.EffectiveBandwidth(kC, true, 0);
  const Kbps be = reg.EffectiveBandwidth(kC, false, 0);
  EXPECT_LT(lc, cfg.uplink);
  EXPECT_EQ(lc, be);  // fair: same degradation
}

TEST(Egress, ClustersAreIndependent) {
  EgressConfig cfg;
  cfg.uplink = 8000;
  EgressRegulator reg(cfg);
  reg.Serialize(ClusterId{0}, 1000 * 1000, false, 0);
  EXPECT_EQ(reg.EffectiveBandwidth(ClusterId{1}, false, 0), cfg.uplink);
}

TEST(Egress, SerializeSlowsUnderCongestion) {
  EgressConfig cfg;
  cfg.uplink = 8000;
  EgressRegulator reg(cfg);
  reg.set_mode(EgressMode::kLcPriority);
  const SimDuration idle = reg.Serialize(kC, 100 * 1000, false, 0);
  // Pile on LC, then the same BE transfer takes longer.
  reg.Serialize(kC, 400 * 1000, true, 0);
  const SimDuration congested = reg.Serialize(kC, 100 * 1000, false, 0);
  EXPECT_GT(congested, idle);
}

}  // namespace
}  // namespace tango::net
