// Tests for the autograd engine: every op is verified against numerical
// (finite-difference) gradients, plus Adam convergence and module plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/adam.h"
#include "nn/autograd.h"
#include "nn/module.h"
#include "nn/packed.h"

namespace tango::nn {
namespace {

Matrix RandomMatrix(int r, int c, Rng& rng, float scale = 1.0f) {
  Matrix m(r, c);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) {
      m.at(i, j) = static_cast<float>(rng.Uniform(-scale, scale));
    }
  }
  return m;
}

/// Numerically check d(scalar_fn)/d(input) against autograd for every entry
/// of `input`'s value.
void CheckGradients(const Var& input,
                    const std::function<Var()>& scalar_fn,
                    float eps = 1e-2f, float tol = 2e-2f) {
  Var out = scalar_fn();
  ZeroGrad(out);
  Backward(out);
  const Matrix analytic = input->grad;
  for (int r = 0; r < input->value.rows(); ++r) {
    for (int c = 0; c < input->value.cols(); ++c) {
      const float saved = input->value.at(r, c);
      input->value.at(r, c) = saved + eps;
      const float up = ScalarValue(scalar_fn());
      input->value.at(r, c) = saved - eps;
      const float down = ScalarValue(scalar_fn());
      input->value.at(r, c) = saved;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(analytic.at(r, c), numeric, tol)
          << "entry (" << r << "," << c << ")";
    }
  }
}

TEST(Autograd, MatMulForward) {
  Var a = Constant(Matrix::FromRows({{1, 2}, {3, 4}}));
  Var b = Constant(Matrix::FromRows({{5, 6}, {7, 8}}));
  const Var c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c->value.at(0, 0), 19);
  EXPECT_FLOAT_EQ(c->value.at(0, 1), 22);
  EXPECT_FLOAT_EQ(c->value.at(1, 0), 43);
  EXPECT_FLOAT_EQ(c->value.at(1, 1), 50);
}

TEST(Autograd, MatMulGradients) {
  Rng rng(1);
  Var a = Parameter(RandomMatrix(3, 4, rng));
  Var b = Parameter(RandomMatrix(4, 2, rng));
  CheckGradients(a, [&] { return Sum(MatMul(a, b)); });
  CheckGradients(b, [&] { return Sum(MatMul(a, b)); });
}

TEST(Autograd, AddBroadcastGradients) {
  Rng rng(2);
  Var x = Parameter(RandomMatrix(3, 4, rng));
  Var bias = Parameter(RandomMatrix(1, 4, rng));
  CheckGradients(bias, [&] { return Sum(Add(x, bias)); });
  CheckGradients(x, [&] { return Sum(Add(x, bias)); });
  // Broadcast bias gradient = column sums of upstream (all ones here ×3 rows).
  Var out = Sum(Add(x, bias));
  ZeroGrad(out);
  Backward(out);
  for (int c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(bias->grad.at(0, c), 3.0f);
}

TEST(Autograd, SubMulScaleGradients) {
  Rng rng(3);
  Var a = Parameter(RandomMatrix(2, 3, rng));
  Var b = Parameter(RandomMatrix(2, 3, rng));
  CheckGradients(a, [&] { return Sum(Sub(a, b)); });
  CheckGradients(b, [&] { return Sum(Mul(a, b)); });
  CheckGradients(a, [&] { return Sum(Scale(a, -2.5f)); });
}

TEST(Autograd, ActivationGradients) {
  Rng rng(4);
  // Keep away from the ReLU kink for finite differences.
  Var a = Parameter(RandomMatrix(3, 3, rng));
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (std::abs(a->value.at(r, c)) < 0.15f) a->value.at(r, c) = 0.5f;
    }
  }
  CheckGradients(a, [&] { return Sum(Relu(a)); });
  CheckGradients(a, [&] { return Sum(LeakyRelu(a)); });
  CheckGradients(a, [&] { return Sum(Tanh(a)); });
  CheckGradients(a, [&] { return Sum(Exp(a)); }, 1e-2f, 5e-2f);
}

TEST(Autograd, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Var logits = Constant(RandomMatrix(4, 6, rng, 3.0f));
  const Var p = Softmax(logits);
  for (int r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 6; ++c) {
      sum += p->value.at(r, c);
      EXPECT_GE(p->value.at(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Autograd, SoftmaxMaskZeroesEntries) {
  Var logits = Constant(Matrix::FromRows({{10.0f, 1.0f, 5.0f}}));
  Matrix mask(1, 3, 1.0f);
  mask.at(0, 0) = 0.0f;  // best logit masked out
  const Var p = Softmax(logits, &mask);
  EXPECT_FLOAT_EQ(p->value.at(0, 0), 0.0f);
  EXPECT_NEAR(p->value.at(0, 1) + p->value.at(0, 2), 1.0f, 1e-5f);
  EXPECT_GT(p->value.at(0, 2), p->value.at(0, 1));
}

TEST(Autograd, SoftmaxGradients) {
  Rng rng(6);
  Var logits = Parameter(RandomMatrix(2, 4, rng));
  Var weights = Constant(RandomMatrix(2, 4, rng));
  CheckGradients(logits, [&] { return Sum(Mul(Softmax(logits), weights)); });
}

TEST(Autograd, LogSoftmaxGradients) {
  Rng rng(7);
  Var logits = Parameter(RandomMatrix(2, 5, rng));
  CheckGradients(logits,
                 [&] { return Sum(GatherCols(LogSoftmax(logits), {1, 3})); });
}

TEST(Autograd, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(8);
  Var logits = Constant(RandomMatrix(3, 4, rng, 2.0f));
  const Var ls = LogSoftmax(logits);
  const Var p = Softmax(logits);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(ls->value.at(r, c), std::log(p->value.at(r, c)), 1e-4f);
    }
  }
}

TEST(Autograd, GatherColsAndRows) {
  Var a = Constant(Matrix::FromRows({{1, 2, 3}, {4, 5, 6}}));
  const Var picked = GatherCols(a, {2, 0});
  EXPECT_FLOAT_EQ(picked->value.at(0, 0), 3);
  EXPECT_FLOAT_EQ(picked->value.at(1, 0), 4);
  const Var rows = GatherRows(a, {1, 1, 0});
  EXPECT_EQ(rows->value.rows(), 3);
  EXPECT_FLOAT_EQ(rows->value.at(0, 1), 5);
  EXPECT_FLOAT_EQ(rows->value.at(2, 0), 1);
}

TEST(Autograd, GatherGradientsAccumulate) {
  Rng rng(9);
  Var a = Parameter(RandomMatrix(3, 3, rng));
  CheckGradients(a, [&] { return Sum(GatherRows(a, {0, 0, 2})); });
}

TEST(Autograd, ConcatColsGradients) {
  Rng rng(10);
  Var a = Parameter(RandomMatrix(2, 2, rng));
  Var b = Parameter(RandomMatrix(2, 3, rng));
  const Var cat = ConcatCols(a, b);
  EXPECT_EQ(cat->value.cols(), 5);
  CheckGradients(a, [&] { return Sum(ConcatCols(a, b)); });
  CheckGradients(b, [&] { return Sum(ConcatCols(a, b)); });
}

TEST(Autograd, TransposeGradients) {
  Rng rng(11);
  Var a = Parameter(RandomMatrix(2, 4, rng));
  const Var t = Transpose(a);
  EXPECT_EQ(t->value.rows(), 4);
  EXPECT_EQ(t->value.cols(), 2);
  Var w = Constant(RandomMatrix(4, 2, rng));
  CheckGradients(a, [&] { return Sum(Mul(Transpose(a), w)); });
}

TEST(Autograd, MeanAllAndScalar) {
  Var a = Constant(Matrix::FromRows({{2, 4}, {6, 8}}));
  EXPECT_FLOAT_EQ(ScalarValue(MeanAll(a)), 5.0f);
  EXPECT_FLOAT_EQ(ScalarValue(Sum(a)), 20.0f);
}

TEST(Autograd, EntropyValueAndGradients) {
  // Uniform logits → entropy log(n).
  Var logits = Parameter(Matrix(1, 4, 0.0f));
  EXPECT_NEAR(ScalarValue(EntropyOfSoftmax(logits)), std::log(4.0f), 1e-5f);
  Rng rng(12);
  Var l2 = Parameter(RandomMatrix(2, 3, rng));
  CheckGradients(l2, [&] { return EntropyOfSoftmax(l2); });
}

TEST(Autograd, DiamondGraphAccumulatesGradients) {
  // y = sum(a∘a): d/da = 2a, via two paths through the same node.
  Var a = Parameter(Matrix::FromRows({{3.0f, -2.0f}}));
  Var y = Sum(Mul(a, a));
  ZeroGrad(y);
  Backward(y);
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(a->grad.at(0, 1), -4.0f);
}

TEST(Autograd, ConstantsReceiveNoGradient) {
  Var a = Constant(Matrix(2, 2, 1.0f));
  Var b = Parameter(Matrix(2, 2, 2.0f));
  Var y = Sum(Mul(a, b));
  ZeroGrad(y);
  Backward(y);
  EXPECT_FALSE(a->grad.SameShape(a->value));  // never allocated
  EXPECT_TRUE(b->grad.SameShape(b->value));
}

// ----------------------------------------------------------------- Adam --

TEST(Adam, ConvergesOnLeastSquares) {
  // Fit w to minimize ||Xw − y||², X random, y = X·w*.
  Rng rng(13);
  const Matrix x = RandomMatrix(16, 3, rng);
  Matrix wstar(3, 1);
  wstar.at(0, 0) = 1.5f;
  wstar.at(1, 0) = -2.0f;
  wstar.at(2, 0) = 0.5f;
  const Matrix y = x.MatMul(wstar);

  ParamStore store;
  Var w = store.CreateZero("w", 3, 1);
  AdamConfig cfg;
  cfg.lr = 0.05f;
  Adam opt(store, cfg);
  float loss = 0.0f;
  for (int it = 0; it < 400; ++it) {
    Var diff = Sub(MatMul(Constant(x), w), Constant(y));
    Var l = MeanAll(Mul(diff, diff));
    loss = ScalarValue(l);
    Backward(l);
    opt.Step();
  }
  EXPECT_LT(loss, 1e-3f);
  EXPECT_NEAR(w->value.at(0, 0), 1.5f, 0.05f);
  EXPECT_NEAR(w->value.at(1, 0), -2.0f, 0.05f);
  EXPECT_NEAR(w->value.at(2, 0), 0.5f, 0.05f);
}

TEST(Adam, GradClipBoundsUpdateAndZeroesGrads) {
  ParamStore store;
  Var w = store.CreateZero("w", 1, 1);
  AdamConfig cfg;
  cfg.grad_clip = 1.0f;
  Adam opt(store, cfg);
  w->EnsureGrad().at(0, 0) = 100.0f;
  const float norm = opt.Step();
  EXPECT_FLOAT_EQ(norm, 100.0f);       // reported pre-clip
  EXPECT_FLOAT_EQ(w->grad.at(0, 0), 0.0f);  // zeroed after step
  EXPECT_EQ(opt.steps(), 1);
}

// -------------------------------------------------------------- modules --

TEST(Module, LinearShapesAndBias) {
  Rng rng(14);
  ParamStore store;
  Linear lin(store, "l", 3, 5, rng);
  const Var y = lin.Forward(Constant(Matrix(2, 3, 1.0f)));
  EXPECT_EQ(y->value.rows(), 2);
  EXPECT_EQ(y->value.cols(), 5);
  EXPECT_EQ(store.params().size(), 2u);  // w and b
}

TEST(Module, PaperHeadArchitecture) {
  // in → 256 → 128 → 32 → out, so 4 Linear layers = 8 parameter tensors.
  Rng rng(15);
  ParamStore store;
  Mlp mlp = Mlp::PaperHead(store, "actor", 9, 1, rng);
  EXPECT_EQ(store.params().size(), 8u);
  const Var y = mlp.Forward(Constant(Matrix(7, 9, 0.1f)));
  EXPECT_EQ(y->value.rows(), 7);
  EXPECT_EQ(y->value.cols(), 1);
  const std::size_t expected =
      9 * 256 + 256 + 256 * 128 + 128 + 128 * 32 + 32 + 32 * 1 + 1;
  EXPECT_EQ(store.ParamCount(), expected);
}

TEST(Module, CopyAndSoftUpdate) {
  Rng rng(16);
  ParamStore a, b;
  a.Create("w", 2, 2, rng);
  b.Create("w", 2, 2, rng);
  CopyParams(a, b);
  EXPECT_FLOAT_EQ(a.params()[0]->value.at(0, 0), b.params()[0]->value.at(0, 0));
  // Soft update moves b toward a by tau.
  a.params()[0]->value.at(0, 0) = 10.0f;
  b.params()[0]->value.at(0, 0) = 0.0f;
  SoftUpdateParams(a, b, 0.1f);
  EXPECT_NEAR(b.params()[0]->value.at(0, 0), 1.0f, 1e-5f);
}

TEST(Module, MlpGradientFlowsToAllLayers) {
  Rng rng(17);
  ParamStore store;
  Mlp mlp(store, "m", {4, 8, 3}, rng);
  Var y = Sum(mlp.Forward(Constant(Matrix(2, 4, 0.5f))));
  Backward(y);
  for (const auto& p : store.params()) {
    ASSERT_TRUE(p->grad.SameShape(p->value));
  }
  // At least the first layer weight should have a nonzero gradient.
  float norm = 0.0f;
  const auto& g = store.params()[0]->grad;
  for (int r = 0; r < g.rows(); ++r) {
    for (int c = 0; c < g.cols(); ++c) norm += std::abs(g.at(r, c));
  }
  EXPECT_GT(norm, 0.0f);
}

// ---- TangoSolve packed inference (nn/packed.h) ----------------------------

/// Exact float equality, element by element — the packed kernels promise
/// bit-identical results, not approximate ones.
void ExpectExactlyEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a.at(r, c), b.at(r, c)) << "entry (" << r << "," << c << ")";
    }
  }
}

TEST(Packed, GemmMatchesNaiveExactlyAcrossShapes) {
  // Shapes straddle the panel width (48) and include the paper's layer
  // sizes; sprinkled exact zeros exercise the mirrored sparse-row skip.
  Rng rng(31);
  const int shapes[][3] = {{1, 9, 64},   {6, 64, 256}, {3, 256, 128},
                           {2, 128, 32}, {5, 32, 1},   {4, 47, 49},
                           {2, 96, 95},  {1, 1, 1}};
  for (const auto& s : shapes) {
    Matrix a = RandomMatrix(s[0], s[1], rng);
    Matrix b = RandomMatrix(s[1], s[2], rng);
    for (int r = 0; r < a.rows(); ++r) {
      for (int c = 0; c < a.cols(); ++c) {
        if (rng.UniformInt(0, 3) == 0) a.at(r, c) = 0.0f;
      }
    }
    const Matrix naive = a.MatMul(b);
    PackedMatrix pb(b);
    Matrix packed;
    pb.MatMulInto(a, &packed);
    ExpectExactlyEqual(naive, packed);
    // Reusing the output buffer (the steady-state path) must also be exact.
    pb.MatMulInto(a, &packed);
    ExpectExactlyEqual(naive, packed);
  }
}

TEST(Packed, LinearAndMlpMatchTapedForwardExactly) {
  Rng rng(32);
  ParamStore store;
  Mlp mlp = Mlp::PaperHead(store, "m", 9, 1, rng);
  const Matrix x = RandomMatrix(7, 9, rng);
  const Var taped = mlp.Forward(Constant(x));

  PackedMlp packed;
  for (const auto& l : mlp.layers()) packed.AddLayer(l.weight(), l.bias());
  ExpectExactlyEqual(taped->value, packed.Forward(x));

  // Single layer, same contract.
  Linear lin(store, "l", 9, 13, rng);
  const Var ty = lin.Forward(Constant(x));
  PackedLinear pl(lin.weight(), lin.bias());
  Matrix py;
  pl.Forward(x, &py);
  ExpectExactlyEqual(ty->value, py);
}

TEST(Packed, SoftmaxProbsIsTheTapedSoftmaxForward) {
  Rng rng(33);
  const Matrix logits = RandomMatrix(3, 8, rng, 4.0f);
  Matrix mask(3, 8, 1.0f);
  mask.at(0, 2) = 0.0f;
  mask.at(2, 7) = 0.0f;
  const Var taped = Softmax(Constant(logits), &mask);
  ExpectExactlyEqual(taped->value, SoftmaxProbs(logits, &mask));
  const Var unmasked = Softmax(Constant(logits), nullptr);
  ExpectExactlyEqual(unmasked->value, SoftmaxProbs(logits, nullptr));
}

TEST(Packed, ForwardAllocatesNoTapeNodes) {
  Rng rng(34);
  ParamStore store;
  Mlp mlp = Mlp::PaperHead(store, "m", 9, 1, rng);
  PackedMlp packed;
  for (const auto& l : mlp.layers()) packed.AddLayer(l.weight(), l.bias());
  const Matrix x = RandomMatrix(16, 9, rng);
  Matrix mask(1, 16, 1.0f);
  const auto before = NodeCount();
  for (int i = 0; i < 10; ++i) {
    const Matrix& y = packed.Forward(x);
    Matrix logits(1, y.rows());
    for (int r = 0; r < y.rows(); ++r) logits.at(0, r) = y.at(r, 0);
    SoftmaxProbs(logits, &mask);
  }
  EXPECT_EQ(NodeCount(), before)
      << "packed inference must never touch the autograd tape";
  // Sanity: the taped path does move the counter.
  mlp.Forward(Constant(x));
  EXPECT_GT(NodeCount(), before);
}

}  // namespace
}  // namespace tango::nn
