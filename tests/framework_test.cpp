// Framework assembly tests plus the headline integration property: on the
// same trace, Tango must beat plain Kubernetes on utilization, QoS
// satisfaction, and BE throughput (the paper's core claim).
#include <gtest/gtest.h>

#include "eval/harness.h"

namespace tango::framework {
namespace {

using workload::ServiceCatalog;

struct FrameworkFixture : public ::testing::Test {
  void SetUp() override {
    catalog = ServiceCatalog::Standard();
    workload::TraceConfig tc;
    tc.catalog = &catalog;
    tc.num_clusters = 3;
    tc.duration = 40 * kSecond;
    // High enough to contend (the paper's co-location setting): BE work
    // alone oversubscribes the clusters, so allocation policy matters.
    tc.lc_rps = 60.0;
    tc.be_rps = 25.0;
    tc.seed = 31;
    trace = workload::GeneratePattern(workload::Pattern::kP3, tc);
  }

  eval::ExperimentResult Run(FrameworkKind kind) {
    eval::ExperimentConfig cfg;
    cfg.system.clusters = eval::PhysicalClusters(3);
    cfg.system.seed = 9;
    cfg.trace = trace;
    cfg.duration = 50 * kSecond;
    cfg.label = FrameworkKindName(kind);
    return eval::RunExperiment(
        cfg,
        [kind](k8s::EdgeCloudSystem& s) {
          return InstallFramework(s, kind);
        },
        catalog);
  }

  ServiceCatalog catalog;
  workload::Trace trace;
};

TEST_F(FrameworkFixture, NamesStable) {
  EXPECT_STREQ(FrameworkKindName(FrameworkKind::kTango), "Tango");
  EXPECT_STREQ(FrameworkKindName(FrameworkKind::kCeres), "CERES");
  EXPECT_STREQ(FrameworkKindName(FrameworkKind::kDsaco), "DSACO");
  EXPECT_STREQ(LcAlgoName(LcAlgo::kDssLc), "DSS-LC");
  EXPECT_STREQ(BeAlgoName(BeAlgo::kDcgBe), "DCG-BE");
}

TEST_F(FrameworkFixture, InstallPairWiresSchedulers) {
  k8s::SystemConfig cfg;
  cfg.clusters = eval::PhysicalClusters(2);
  k8s::EdgeCloudSystem sys(cfg, &catalog);
  Assembly a = InstallPair(sys, LcAlgo::kScoring, BeAlgo::kLoadGreedy,
                           /*with_hrm=*/true);
  ASSERT_NE(a.lc_scheduler(), nullptr);
  ASSERT_NE(a.be_scheduler(), nullptr);
  EXPECT_EQ(a.lc_scheduler()->name(), "scoring");
  EXPECT_EQ(a.be_scheduler()->name(), "load-greedy");
  EXPECT_NE(a.hrm_policy(), nullptr);
  EXPECT_NE(a.reassurer(), nullptr);
}

TEST_F(FrameworkFixture, InstallPairWithoutHrmSkipsPolicy) {
  k8s::SystemConfig cfg;
  cfg.clusters = eval::PhysicalClusters(2);
  k8s::EdgeCloudSystem sys(cfg, &catalog);
  Assembly a = InstallPair(sys, LcAlgo::kK8sNative, BeAlgo::kK8sNative,
                           /*with_hrm=*/false);
  EXPECT_EQ(a.hrm_policy(), nullptr);
  EXPECT_EQ(a.reassurer(), nullptr);
}

TEST_F(FrameworkFixture, ReassuranceCanBeDisabled) {
  k8s::SystemConfig cfg;
  cfg.clusters = eval::PhysicalClusters(2);
  k8s::EdgeCloudSystem sys(cfg, &catalog);
  FrameworkOptions opts;
  opts.enable_reassurance = false;
  Assembly a = InstallPair(sys, LcAlgo::kDssLc, BeAlgo::kDcgBe, true, opts);
  EXPECT_NE(a.hrm_policy(), nullptr);
  EXPECT_EQ(a.reassurer(), nullptr);
}

TEST_F(FrameworkFixture, HeadlineOrderingTangoBeatsNativeK8s) {
  const auto tango = Run(FrameworkKind::kTango);
  const auto native = Run(FrameworkKind::kK8sNative);
  // The paper's three headline metrics, as orderings (not magnitudes).
  EXPECT_GT(tango.summary.mean_util, native.summary.mean_util);
  EXPECT_GT(tango.summary.qos_satisfaction, native.summary.qos_satisfaction);
  EXPECT_GT(tango.summary.be_throughput, native.summary.be_throughput);
  // Tango abandons (at most) as many LC requests as native K8s.
  EXPECT_LE(tango.summary.lc_abandoned, native.summary.lc_abandoned);
}

TEST_F(FrameworkFixture, TangoBeatsCeresOnThroughputAndUtil) {
  const auto tango = Run(FrameworkKind::kTango);
  const auto ceres = Run(FrameworkKind::kCeres);
  // At this (small) scale BE completions saturate for both, so throughput is
  // asserted as "no worse"; the large-scale bench (fig13) shows the gap.
  EXPECT_GE(tango.summary.be_throughput, ceres.summary.be_throughput);
  EXPECT_GE(tango.summary.mean_util, ceres.summary.mean_util * 0.95);
  EXPECT_GT(tango.summary.qos_satisfaction, ceres.summary.qos_satisfaction);
}

TEST_F(FrameworkFixture, TangoBeatsDsacoOnQos) {
  const auto tango = Run(FrameworkKind::kTango);
  const auto dsaco = Run(FrameworkKind::kDsaco);
  EXPECT_GT(tango.summary.qos_satisfaction, dsaco.summary.qos_satisfaction - 0.005);
  EXPECT_GT(tango.summary.be_throughput, dsaco.summary.be_throughput * 0.9);
}

TEST_F(FrameworkFixture, ExperimentResultCarriesDiagnostics) {
  const auto tango = Run(FrameworkKind::kTango);
  EXPECT_GT(tango.scaling_ops, 0);          // D-VPA active
  EXPECT_GT(tango.lc_decision_ms_avg, 0.0); // DSS-LC timing recorded
  EXPECT_FALSE(tango.periods.empty());
  EXPECT_EQ(tango.label, "Tango");
}

}  // namespace
}  // namespace tango::framework
