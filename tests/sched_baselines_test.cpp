// Tests for the baseline LC and BE schedulers.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sched/be_baselines.h"
#include "sched/lc_baselines.h"

namespace tango::sched {
namespace {

using k8s::PendingRequest;
using metrics::NodeSnapshot;
using metrics::StateStorage;
using workload::ServiceCatalog;

NodeSnapshot Worker(int node, int cluster, Millicores cpu_av, MiB mem_av,
                    int queued = 0) {
  NodeSnapshot s;
  s.node = NodeId{node};
  s.cluster = ClusterId{cluster};
  s.cpu_total = 4000;
  s.cpu_available = cpu_av;
  s.mem_total = 8192;
  s.mem_available = mem_av;
  s.queued = queued;
  return s;
}

std::vector<PendingRequest> LcQueue(int n, int svc = 3) {
  std::vector<PendingRequest> q;
  for (int i = 0; i < n; ++i) {
    PendingRequest p;
    p.request.id = RequestId{i};
    p.request.service = ServiceId{svc};
    p.request.origin = ClusterId{0};
    q.push_back(p);
  }
  return q;
}

TEST(KubeNativeLc, RoundRobinCyclesLocalWorkers) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  KubeNativeLcScheduler rr(&cat);
  StateStorage st;
  st.Update(Worker(1, 0, 4000, 8192));
  st.Update(Worker(2, 0, 4000, 8192));
  st.Update(Worker(3, 1, 4000, 8192));  // other cluster: ignored
  const auto as = rr.Schedule(ClusterId{0}, LcQueue(6), st, 0);
  ASSERT_EQ(as.size(), 6u);
  std::map<std::int32_t, int> counts;
  for (const auto& a : as) counts[a.target.value] += 1;
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 3);
  EXPECT_EQ(counts.count(3), 0u);  // never leaves the cluster
}

TEST(KubeNativeLc, RoundRobinIgnoresLoad) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  KubeNativeLcScheduler rr(&cat);
  StateStorage st;
  st.Update(Worker(1, 0, 0, 0));       // completely full
  st.Update(Worker(2, 0, 4000, 8192));
  const auto as = rr.Schedule(ClusterId{0}, LcQueue(4), st, 0);
  std::map<std::int32_t, int> counts;
  for (const auto& a : as) counts[a.target.value] += 1;
  // Blind round-robin still sends half to the full node — the baseline's
  // known pathology.
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
}

TEST(KubeNativeLc, PerClusterCursorsAreIndependent) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  KubeNativeLcScheduler rr(&cat);
  StateStorage st0, st1;
  st0.Update(Worker(1, 0, 4000, 8192));
  st0.Update(Worker(2, 0, 4000, 8192));
  st1.Update(Worker(5, 1, 4000, 8192));
  const auto a0 = rr.Schedule(ClusterId{0}, LcQueue(1), st0, 0);
  const auto a1 = rr.Schedule(ClusterId{1}, LcQueue(1), st1, 0);
  ASSERT_EQ(a0.size(), 1u);
  ASSERT_EQ(a1.size(), 1u);
  EXPECT_EQ(a1[0].target, NodeId{5});
}

TEST(LoadGreedyLc, PicksLeastLoadedAcrossClusters) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  LoadGreedyLcScheduler lg(&cat);
  StateStorage st;
  st.Update(Worker(1, 0, 1000, 8192));
  st.Update(Worker(2, 1, 3900, 8192));  // most idle — remote is fine
  const auto as = lg.Schedule(ClusterId{0}, LcQueue(1), st, 0);
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].target, NodeId{2});
}

TEST(LoadGreedyLc, SpreadsAsHeadroomShrinks) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  LoadGreedyLcScheduler lg(&cat);
  StateStorage st;
  st.Update(Worker(1, 0, 800, 8192));
  st.Update(Worker(2, 0, 700, 8192));
  // svc 3 takes 200 mc a piece; greedy decrements its local view, so the 4
  // requests alternate instead of all hitting node 1.
  const auto as = lg.Schedule(ClusterId{0}, LcQueue(4), st, 0);
  std::map<std::int32_t, int> counts;
  for (const auto& a : as) counts[a.target.value] += 1;
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
}

TEST(ScoringLc, LatencyWeightKeepsRequestsNearby) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  ScoringWeights w;
  w.latency = 0.9;  // latency-dominated scoring
  w.cpu = 0.05;
  w.mem = 0.05;
  ScoringLcScheduler sc(&cat, w);
  StateStorage st;
  st.Update(Worker(1, 0, 2000, 8192));
  st.Update(Worker(2, 1, 4000, 8192));  // idler but far
  st.UpdateRtt(ClusterId{0}, kMillisecond);
  st.UpdateRtt(ClusterId{1}, 90 * kMillisecond);
  const auto as = sc.Schedule(ClusterId{0}, LcQueue(1), st, 0);
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].target, NodeId{1});
}

TEST(ScoringLc, ResourceWeightsPreferIdleWhenRttEqual) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  ScoringLcScheduler sc(&cat);
  StateStorage st;
  st.Update(Worker(1, 0, 1000, 4096));
  st.Update(Worker(2, 0, 3500, 8192));
  st.UpdateRtt(ClusterId{0}, kMillisecond);
  const auto as = sc.Schedule(ClusterId{0}, LcQueue(1), st, 0);
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].target, NodeId{2});
}

TEST(ScoringLc, PrefersFittingNodeButFallsBackWhenNoneFit) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  ScoringLcScheduler sc(&cat);
  StateStorage st;
  st.Update(Worker(1, 0, 100, 64));  // cannot host svc 3 (200 mc/128 MiB)
  st.Update(Worker(2, 0, 4000, 8192));
  st.UpdateRtt(ClusterId{0}, kMillisecond);
  const auto fit = sc.Schedule(ClusterId{0}, LcQueue(1), st, 0);
  ASSERT_EQ(fit.size(), 1u);
  EXPECT_EQ(fit[0].target, NodeId{2});  // the fitting node wins
  // With only the too-small node left, requests still go somewhere (they
  // queue at the node) instead of aging out at the master.
  StateStorage only_small;
  only_small.Update(Worker(1, 0, 100, 64));
  only_small.UpdateRtt(ClusterId{0}, kMillisecond);
  const auto fallback = sc.Schedule(ClusterId{0}, LcQueue(2), only_small, 0);
  ASSERT_EQ(fallback.size(), 2u);
  EXPECT_EQ(fallback[0].target, NodeId{1});
}

TEST(ScoringLc, QueuePenaltyBreaksTies) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  ScoringLcScheduler sc(&cat);
  StateStorage st;
  st.Update(Worker(1, 0, 2000, 8192, /*queued=*/9));
  st.Update(Worker(2, 0, 2000, 8192, /*queued=*/0));
  st.UpdateRtt(ClusterId{0}, kMillisecond);
  const auto as = sc.Schedule(ClusterId{0}, LcQueue(1), st, 0);
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].target, NodeId{2});
}

TEST(KubeNativeBe, RoundRobinOverAllWorkers) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  KubeNativeBeScheduler rr(&cat);
  StateStorage st;
  st.Update(Worker(1, 0, 4000, 8192));
  st.Update(Worker(2, 1, 4000, 8192));
  PendingRequest p;
  p.request.service = ServiceId{9};
  std::set<std::int32_t> seen;
  for (int i = 0; i < 4; ++i) {
    const auto t = rr.ScheduleOne(p, st, 0);
    ASSERT_TRUE(t.has_value());
    seen.insert(t->value);
  }
  EXPECT_EQ(seen.size(), 2u);  // cycles through both
}

TEST(KubeNativeBe, EmptyStorageReturnsNullopt) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  KubeNativeBeScheduler rr(&cat);
  StateStorage st;
  PendingRequest p;
  p.request.service = ServiceId{9};
  EXPECT_FALSE(rr.ScheduleOne(p, st, 0).has_value());
}

TEST(LoadGreedyBe, PicksMostIdleFittingNode) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  LoadGreedyBeScheduler lg(&cat);
  StateStorage st;
  st.Update(Worker(1, 0, 1000, 8192));
  st.Update(Worker(2, 1, 3000, 8192));
  PendingRequest p;
  p.request.service = ServiceId{9};
  const auto t = lg.ScheduleOne(p, st, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, NodeId{2});
}

TEST(LoadGreedyBe, FallsBackToShortestQueueWhenNothingFits) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  LoadGreedyBeScheduler lg(&cat);
  StateStorage st;
  st.Update(Worker(1, 0, 0, 0, /*queued=*/4));
  st.Update(Worker(2, 0, 0, 0, /*queued=*/1));
  PendingRequest p;
  p.request.service = ServiceId{6};
  const auto t = lg.ScheduleOne(p, st, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, NodeId{2});
}

}  // namespace
}  // namespace tango::sched
