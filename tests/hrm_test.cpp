// Tests for the D-VPA scaler (ordered cgroup writes, §4.2) and the QoS
// re-assurance mechanism (Algorithm 1, §4.3).
#include <gtest/gtest.h>

#include "eval/harness.h"
#include "hrm/dvpa.h"
#include "hrm/reassurance.h"
#include "sched/be_baselines.h"
#include "sched/lc_baselines.h"

namespace tango::hrm {
namespace {

struct DvpaFixture : public ::testing::Test {
  void SetUp() override {
    h.Create("kubepods/burstable", "pod1");
    h.Create("kubepods/burstable/pod1", "c0");
    // Start from a known finite allocation.
    ASSERT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1",
                              QuotaFromMillicores(500)),
              cgroup::WriteResult::kOk);
    ASSERT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1/c0",
                              QuotaFromMillicores(500)),
              cgroup::WriteResult::kOk);
    ASSERT_EQ(h.WriteMemoryLimit("kubepods/burstable/pod1", 512),
              cgroup::WriteResult::kOk);
    ASSERT_EQ(h.WriteMemoryLimit("kubepods/burstable/pod1/c0", 512),
              cgroup::WriteResult::kOk);
  }
  cgroup::Hierarchy h;
  DvpaScaler scaler;
  const std::string pod = "kubepods/burstable/pod1";
  const std::string container = "kubepods/burstable/pod1/c0";
};

TEST_F(DvpaFixture, QuotaConversion) {
  EXPECT_EQ(QuotaFromMillicores(1000), 100'000);  // 1 core
  EXPECT_EQ(QuotaFromMillicores(250), 25'000);
}

TEST_F(DvpaFixture, ExpandSucceedsWithoutInterruption) {
  const ScaleResult r = scaler.Scale(h, pod, container, 1500, 2048);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.uninterrupted);
  EXPECT_EQ(r.writes, 4);
  EXPECT_NEAR(ToMilliseconds(r.latency), 23.0, 0.1);
  EXPECT_EQ(h.Find(container)->knobs().CpuLimitMillicores().value(), 1500);
  EXPECT_EQ(h.Find(container)->knobs().memory_limit, 2048);
  EXPECT_EQ(h.Find(pod)->knobs().memory_limit, 2048);
}

TEST_F(DvpaFixture, ShrinkSucceedsInReverseOrder) {
  const ScaleResult r = scaler.Scale(h, pod, container, 100, 128);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(h.Find(pod)->knobs().CpuLimitMillicores().value(), 100);
  EXPECT_EQ(h.Find(container)->knobs().memory_limit, 128);
}

TEST_F(DvpaFixture, MixedDirectionScale) {
  // Grow CPU while shrinking memory — each dimension orders independently.
  const ScaleResult r = scaler.Scale(h, pod, container, 2000, 128);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(h.Find(container)->knobs().CpuLimitMillicores().value(), 2000);
  EXPECT_EQ(h.Find(container)->knobs().memory_limit, 128);
}

TEST_F(DvpaFixture, WrongOrderWouldFailDirectWrites) {
  // Sanity: the invariant D-VPA works around. Raising the container first
  // is rejected by the hierarchy itself.
  EXPECT_EQ(h.WriteCpuQuota(container, QuotaFromMillicores(4000)),
            cgroup::WriteResult::kInvalidArgument);
}

TEST_F(DvpaFixture, MissingGroupsFailCleanly) {
  const ScaleResult r =
      scaler.Scale(h, "kubepods/burstable/ghost", container, 100, 100);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.writes, 0);
}

TEST_F(DvpaFixture, NativeRebuildInterruptsAndIsSlow) {
  const ScaleResult r = scaler.NativeRebuild(h, pod, "c0", 1500, 2048);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.uninterrupted);
  // ~100× a D-VPA op (2300 ms vs 23 ms).
  const ScaleResult d = scaler.Scale(h, pod, container, 1600, 2048);
  ASSERT_TRUE(d.ok);
  EXPECT_NEAR(static_cast<double>(r.latency) / static_cast<double>(d.latency),
              100.0, 5.0);
  // Pod was recreated with the requested limits.
  EXPECT_EQ(h.Find(pod)->knobs().memory_limit, 2048);
}

TEST_F(DvpaFixture, RebuildOfMissingPodFails) {
  const ScaleResult r =
      scaler.NativeRebuild(h, "kubepods/burstable/ghost", "c0", 100, 100);
  EXPECT_FALSE(r.ok);
}

// ------------------------------------------------------------ reassurer --

struct ReassuranceFixture : public ::testing::Test {
  void SetUp() override {
    catalog = workload::ServiceCatalog::Standard();
    k8s::SystemConfig cfg;
    cfg.clusters = eval::PhysicalClusters(1);
    cfg.seed = 5;
    system = std::make_unique<k8s::EdgeCloudSystem>(cfg, &catalog);
    lc = std::make_unique<sched::LoadGreedyLcScheduler>(&catalog);
    be = std::make_unique<sched::LoadGreedyBeScheduler>(&catalog);
    system->SetLcScheduler(lc.get());
    system->SetBeScheduler(be.get());
    policy = std::make_unique<HrmAllocationPolicy>(&catalog);
    system->SetAllocationPolicy(policy.get());
  }
  workload::ServiceCatalog catalog;
  std::unique_ptr<k8s::EdgeCloudSystem> system;
  std::unique_ptr<k8s::LcScheduler> lc;
  std::unique_ptr<k8s::BeScheduler> be;
  std::unique_ptr<HrmAllocationPolicy> policy;
};

TEST_F(ReassuranceFixture, PoorSlackRaisesMinimumRequest) {
  Reassurer re(system.get(), policy.get());
  const NodeId node{1};
  const ServiceId svc{0};
  const auto target = catalog.Get(svc).qos_target;
  // Report latencies at 2× the target → δ = −1 < α.
  system->qos_detector().Observe(50 * kMillisecond, node, svc, 2 * target);
  re.Tick(60 * kMillisecond);
  EXPECT_GT(policy->Multiplier(node, svc), 1.0);
  EXPECT_EQ(re.adjustments_up(), 1);
}

TEST_F(ReassuranceFixture, ExcellentSlackShrinksMinimumRequest) {
  Reassurer re(system.get(), policy.get());
  const NodeId node{2};
  const ServiceId svc{1};
  const auto target = catalog.Get(svc).qos_target;
  system->qos_detector().Observe(50 * kMillisecond, node, svc, target / 10);
  re.Tick(60 * kMillisecond);
  EXPECT_LT(policy->Multiplier(node, svc), 1.0);
  EXPECT_EQ(re.adjustments_down(), 1);
}

TEST_F(ReassuranceFixture, StableBandLeavesAllocationAlone) {
  ReassuranceConfig cfg;
  cfg.alpha = 0.1;
  cfg.beta = 0.5;
  Reassurer re(system.get(), policy.get(), cfg);
  const NodeId node{3};
  const ServiceId svc{2};
  const auto target = catalog.Get(svc).qos_target;
  // δ = 1 − 0.7 = 0.3 ∈ [α, β].
  system->qos_detector().Observe(
      50 * kMillisecond, node, svc,
      static_cast<SimDuration>(0.7 * static_cast<double>(target)));
  re.Tick(60 * kMillisecond);
  EXPECT_DOUBLE_EQ(policy->Multiplier(node, svc), 1.0);
  EXPECT_EQ(re.adjustments_up() + re.adjustments_down(), 0);
}

TEST_F(ReassuranceFixture, NoSamplesNoAdjustment) {
  Reassurer re(system.get(), policy.get());
  re.Tick(kSecond);
  EXPECT_EQ(re.adjustments_up() + re.adjustments_down(), 0);
}

TEST_F(ReassuranceFixture, PeriodicTickRunsWithSimulation) {
  Reassurer re(system.get(), policy.get());
  const NodeId node{1};
  const ServiceId svc{0};
  // Keep feeding violations; the periodic 100 ms task should keep nudging.
  for (int i = 1; i <= 9; ++i) {
    system->qos_detector().Observe(i * 100 * kMillisecond, node, svc,
                                   2 * catalog.Get(svc).qos_target);
  }
  system->Run(kSecond);
  EXPECT_GE(re.adjustments_up(), 5);
  EXPECT_GT(policy->Multiplier(node, svc), 1.2);
}

TEST_F(ReassuranceFixture, EndToEndImprovesQosUnderContention) {
  // A contended single cluster: with re-assurance ON the LC QoS-sat rate
  // should not fall below the OFF configuration (Figure 10's claim).
  workload::TraceConfig tc;
  tc.catalog = &catalog;
  tc.num_clusters = 1;
  tc.duration = 30 * kSecond;
  tc.lc_rps = 60.0;
  tc.be_rps = 12.0;
  tc.seed = 17;
  const workload::Trace trace =
      workload::GeneratePattern(workload::Pattern::kP3, tc);

  auto run = [&](bool with_reassurance) {
    k8s::SystemConfig cfg;
    cfg.clusters = eval::PhysicalClusters(1);
    cfg.seed = 5;
    k8s::EdgeCloudSystem sys(cfg, &catalog);
    sched::LoadGreedyLcScheduler lc2(&catalog);
    sched::LoadGreedyBeScheduler be2(&catalog);
    sys.SetLcScheduler(&lc2);
    sys.SetBeScheduler(&be2);
    HrmAllocationPolicy pol(&catalog);
    sys.SetAllocationPolicy(&pol);
    std::unique_ptr<Reassurer> re;
    if (with_reassurance) re = std::make_unique<Reassurer>(&sys, &pol);
    sys.SubmitTrace(trace);
    sys.Run(40 * kSecond);
    return sys.Summary();
  };
  const auto on = run(true);
  const auto off = run(false);
  EXPECT_GE(on.qos_satisfaction, off.qos_satisfaction - 0.02);
}

}  // namespace
}  // namespace tango::hrm
