// Tests for the learned BE schedulers (DCG-BE, GNN-SAC): state/graph
// construction, the policy context filter, and reward plumbing (§5.3).
#include <gtest/gtest.h>

#include "sched/learned_be.h"

namespace tango::sched {
namespace {

using k8s::PendingRequest;
using metrics::NodeSnapshot;
using metrics::StateStorage;
using workload::ServiceCatalog;

NodeSnapshot Worker(int node, int cluster, Millicores cpu_av, MiB mem_av) {
  NodeSnapshot s;
  s.node = NodeId{node};
  s.cluster = ClusterId{cluster};
  s.cpu_total = 4000;
  s.cpu_available = cpu_av;
  s.mem_total = 8192;
  s.mem_available = mem_av;
  s.slack_score = 0.8;
  return s;
}

PendingRequest BeReq(int svc = 9) {
  PendingRequest p;
  p.request.id = RequestId{0};
  p.request.service = ServiceId{svc};
  p.request.origin = ClusterId{0};
  return p;
}

struct LearnedBeFixture : public ::testing::Test {
  void SetUp() override {
    catalog = ServiceCatalog::Standard();
    sched = MakeDcgBe(&catalog, gnn::EncoderKind::kGraphSage, /*seed=*/3);
  }
  ServiceCatalog catalog;
  std::unique_ptr<LearnedBeScheduler> sched;
};

TEST_F(LearnedBeFixture, StateFeaturesNormalized) {
  StateStorage st;
  st.Update(Worker(1, 0, 2000, 4096));
  st.Update(Worker(2, 0, 4000, 8192));
  const auto state = sched->BuildState(BeReq(), st);
  ASSERT_EQ(state.graph.num_nodes(), 2);
  ASSERT_EQ(state.graph.features.cols(), 9);
  // cpu_available fraction of node 1 is 0.5.
  EXPECT_FLOAT_EQ(state.graph.features.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(state.graph.features.at(1, 0), 1.0f);
  // Request demand features present (be-backup: 200/4000, 256/8192).
  EXPECT_FLOAT_EQ(state.graph.features.at(0, 5), 0.05f);
  EXPECT_FLOAT_EQ(state.graph.features.at(0, 6), 256.0f / 8192.0f);
  // Slack score carried through.
  EXPECT_FLOAT_EQ(state.graph.features.at(0, 4), 0.8f);
}

TEST_F(LearnedBeFixture, IntraClusterMeshInAdjacency) {
  StateStorage st;
  st.Update(Worker(1, 0, 2000, 4096));
  st.Update(Worker(2, 0, 2000, 4096));
  st.Update(Worker(3, 0, 2000, 4096));
  const auto state = sched->BuildState(BeReq(), st);
  // Full mesh over 3 same-cluster workers: each node has 2 neighbors.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(state.graph.adj[static_cast<std::size_t>(i)].size(), 2u);
  }
}

TEST_F(LearnedBeFixture, InterClusterBridgesExist) {
  StateStorage st;
  st.Update(Worker(1, 0, 2000, 4096));
  st.Update(Worker(2, 0, 2000, 4096));
  st.Update(Worker(10, 1, 2000, 4096));
  st.Update(Worker(11, 1, 2000, 4096));
  const auto state = sched->BuildState(BeReq(), st);
  // Some edge crosses the cluster boundary (indices 0,1 vs 2,3).
  bool cross = false;
  for (int i = 0; i < 2; ++i) {
    for (int j : state.graph.adj[static_cast<std::size_t>(i)]) {
      cross = cross || j >= 2;
    }
  }
  EXPECT_TRUE(cross);
}

TEST_F(LearnedBeFixture, ContextFilterMasksOverloadedNodes) {
  StateStorage st;
  st.Update(Worker(1, 0, 100, 100));    // cannot fit 200 mc / 256 MiB
  st.Update(Worker(2, 0, 4000, 8192));  // fits
  const auto state = sched->BuildState(BeReq(), st);
  ASSERT_EQ(state.valid.size(), 2u);
  EXPECT_FALSE(state.valid[0]);
  EXPECT_TRUE(state.valid[1]);
}

TEST_F(LearnedBeFixture, ScheduleOnePicksOnlyValidNodes) {
  StateStorage st;
  st.Update(Worker(1, 0, 100, 100));
  st.Update(Worker(2, 0, 4000, 8192));
  for (int i = 0; i < 20; ++i) {
    const auto t = sched->ScheduleOne(BeReq(), st, i);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, NodeId{2});
  }
  EXPECT_EQ(sched->actions(), 20);
}

TEST_F(LearnedBeFixture, EmptyStorageYieldsNullopt) {
  StateStorage st;
  EXPECT_FALSE(sched->ScheduleOne(BeReq(), st, 0).has_value());
}

TEST_F(LearnedBeFixture, PackedInferenceSchedulesIdenticallyToTaped) {
  // TangoSolve: DCG-BE with the packed (tape-free) Act path must place
  // every request on the same node the taped forward would, through
  // training steps and completions.
  LearnedBeConfig packed_cfg;
  packed_cfg.packed_inference = true;
  LearnedBeConfig taped_cfg;
  taped_cfg.packed_inference = false;
  auto packed =
      MakeDcgBe(&catalog, gnn::EncoderKind::kGraphSage, 17, packed_cfg);
  auto taped =
      MakeDcgBe(&catalog, gnn::EncoderKind::kGraphSage, 17, taped_cfg);
  StateStorage st;
  st.Update(Worker(1, 0, 3000, 6000));
  st.Update(Worker(2, 0, 2000, 8192));
  st.Update(Worker(3, 1, 4000, 8192));
  for (int i = 0; i < 40; ++i) {
    const auto a = packed->ScheduleOne(BeReq(), st, i);
    const auto b = taped->ScheduleOne(BeReq(), st, i);
    ASSERT_EQ(a.has_value(), b.has_value()) << "step " << i;
    if (a.has_value()) {
      EXPECT_EQ(*a, *b) << "step " << i;
      packed->OnBeCompleted(*a, BeReq().request, i);
      taped->OnBeCompleted(*b, BeReq().request, i);
    }
  }
}

TEST_F(LearnedBeFixture, RewardAccumulatesCompletions) {
  StateStorage st;
  st.Update(Worker(1, 0, 4000, 8192));
  // First action (no reward yet).
  ASSERT_TRUE(sched->ScheduleOne(BeReq(), st, 0).has_value());
  // Completions between actions feed r_long.
  workload::Request done;
  done.service = ServiceId{9};
  sched->OnBeCompleted(NodeId{1}, done, 1);
  sched->OnBeCompleted(NodeId{1}, done, 2);
  // Second action closes out the first with reward = r_short + r_long > 0.
  ASSERT_TRUE(sched->ScheduleOne(BeReq(), st, 3).has_value());
  EXPECT_GT(sched->last_reward(), 0.0f);
  // r_short ∈ (0,1], r_long ∈ [0,1) ⇒ reward < 2.
  EXPECT_LT(sched->last_reward(), 2.0f);
}

TEST_F(LearnedBeFixture, RewardHigherWhenCompletionsHappened) {
  StateStorage st;
  st.Update(Worker(1, 0, 4000, 8192));
  sched->ScheduleOne(BeReq(), st, 0);
  sched->ScheduleOne(BeReq(), st, 1);  // closes action 1, no completions
  const float without = sched->last_reward();
  workload::Request done;
  done.service = ServiceId{6};  // big job → large r_long contribution
  sched->OnBeCompleted(NodeId{1}, done, 2);
  sched->OnBeCompleted(NodeId{1}, done, 2);
  sched->ScheduleOne(BeReq(), st, 3);  // closes action 2 with completions
  EXPECT_GT(sched->last_reward(), without);
}

TEST_F(LearnedBeFixture, ClusterGranularityCollapsesPerCluster) {
  LearnedBeConfig cfg;
  cfg.granularity = BeGranularity::kCluster;
  auto coarse = std::make_unique<LearnedBeScheduler>(
      &catalog, std::make_unique<rl::A2cAgent>(rl::A2cConfig{}), cfg);
  StateStorage st;
  st.Update(Worker(1, 0, 2000, 4096));
  st.Update(Worker(2, 0, 4000, 8192));
  st.Update(Worker(10, 1, 1000, 2048));
  const auto state = coarse->BuildState(BeReq(), st);
  // Three workers in two clusters → two pseudo-nodes.
  ASSERT_EQ(state.graph.num_nodes(), 2);
  // Aggregated capacity of cluster 0: 6000 total? features hold fractions;
  // check the availability fraction is the cluster-wide one: (2000+4000)/8000.
  EXPECT_NEAR(state.graph.features.at(0, 0), 6000.0f / 8000.0f, 1e-5f);
  // The action routes to the most-available fitting worker of the cluster.
  for (int i = 0; i < 40; ++i) {
    const auto t = coarse->ScheduleOne(BeReq(), st, i);
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(*t == NodeId{2} || *t == NodeId{10});
  }
}

TEST_F(LearnedBeFixture, ClusterGranularityMasksUnfitClusters) {
  LearnedBeConfig cfg;
  cfg.granularity = BeGranularity::kCluster;
  auto coarse = std::make_unique<LearnedBeScheduler>(
      &catalog, std::make_unique<rl::A2cAgent>(rl::A2cConfig{}), cfg);
  StateStorage st;
  st.Update(Worker(1, 0, 50, 50));      // cluster 0 aggregate cannot fit
  st.Update(Worker(10, 1, 4000, 8192)); // cluster 1 fits
  const auto state = coarse->BuildState(BeReq(), st);
  ASSERT_EQ(state.valid.size(), 2u);
  EXPECT_FALSE(state.valid[0]);
  EXPECT_TRUE(state.valid[1]);
}

TEST_F(LearnedBeFixture, FactoryNamesMatchPaper) {
  EXPECT_EQ(sched->name(), "GraphSAGE-A2C");
  auto sac = MakeGnnSac(&catalog, 5);
  EXPECT_EQ(sac->name(), "GraphSAGE-SAC");
  auto gcn = MakeDcgBe(&catalog, gnn::EncoderKind::kGcn, 5);
  EXPECT_EQ(gcn->name(), "GCN-A2C");
}

TEST_F(LearnedBeFixture, GnnSacSchedulesValidNodesToo) {
  auto sac = MakeGnnSac(&catalog, 7);
  StateStorage st;
  st.Update(Worker(1, 0, 100, 100));
  st.Update(Worker(2, 0, 4000, 8192));
  for (int i = 0; i < 10; ++i) {
    const auto t = sac->ScheduleOne(BeReq(), st, i);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, NodeId{2});
  }
}

}  // namespace
}  // namespace tango::sched
