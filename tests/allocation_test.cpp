// Tests for the allocation policies: native K8s (fixed container limits),
// HRM (§4.1 regulations), and the CERES baseline — plus the memory-
// allocation discipline of the storm generators (zero steady-state
// allocations, the repo's alloc_events pattern at process scope).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "hrm/regulations.h"
#include "k8s/allocation.h"
#include "sched/ceres.h"
#include "storm/scenario.h"
#include "storm/source.h"

// TU-global counting operator new: this binary's strongest-scope version of
// the alloc_events counter pattern (flow::McmfSolver, sim::Simulator).
// Every heap allocation in the process bumps the counter, so a snapshot
// taken around a hot loop proves the loop allocation-free.
static std::int64_t g_alloc_events = 0;

void* operator new(std::size_t size) {
  ++g_alloc_events;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_alloc_events;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace tango {
namespace {

using k8s::ExecSlot;
using k8s::NativeAllocationPolicy;
using k8s::NodeSpec;
using k8s::ResourceVec;
using workload::ServiceCatalog;

NodeSpec StdNode() {
  NodeSpec n;
  n.id = NodeId{1};
  n.cluster = ClusterId{0};
  n.capacity = {4000, 8192};
  return n;
}

ExecSlot Slot(const ServiceCatalog& cat, ServiceId svc, RequestId id,
              double need_scale = 1.0) {
  const auto& s = cat.Get(svc);
  ExecSlot slot;
  slot.request = id;
  slot.service = svc;
  slot.is_lc = s.is_lc();
  slot.need = {static_cast<Millicores>(s.cpu_demand * need_scale),
               s.mem_demand};
  slot.remaining_work = s.cpu_work();
  return slot;
}

// ------------------------------------------------------------- resources --

TEST(ResourceVec, Arithmetic) {
  ResourceVec a{1000, 2048};
  ResourceVec b{500, 1024};
  EXPECT_EQ((a + b).cpu, 1500);
  EXPECT_EQ((a - b).mem, 1024);
  a -= b;
  EXPECT_EQ(a.cpu, 500);
  EXPECT_TRUE(a.NonNegative());
  EXPECT_TRUE(b.FitsWithin(ResourceVec{500, 1024}));
  EXPECT_FALSE(b.FitsWithin(ResourceVec{499, 1024}));
}

// ---------------------------------------------------------------- native --

TEST(NativePolicy, ProportionalFractionsSumToOne) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  const auto f = NativeAllocationPolicy::ProportionalFractions(cat);
  double sum = 0.0;
  for (const auto& [svc, frac] : f) sum += frac;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(f.size(), 10u);
}

TEST(NativePolicy, ContainerLimitFollowsFraction) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  NativeAllocationPolicy p(&cat, {{ServiceId{0}, 0.5}, {ServiceId{5}, 0.25}});
  const NodeSpec node = StdNode();
  EXPECT_EQ(p.ContainerLimit(node, ServiceId{0}).cpu, 2000);
  EXPECT_EQ(p.ContainerLimit(node, ServiceId{5}).mem, 2048);
  // Unlisted service: zero limit.
  EXPECT_EQ(p.ContainerLimit(node, ServiceId{3}).cpu, 0);
}

TEST(NativePolicy, AdmissionRespectsContainerSilo) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  // Service 0 (500 mc, 512 MiB demand) gets 25% of a 4-core node = 1000 mc.
  NativeAllocationPolicy p(&cat, {{ServiceId{0}, 0.25}});
  const NodeSpec node = StdNode();
  std::vector<ExecSlot> running{Slot(cat, ServiceId{0}, RequestId{1})};
  // Second request fits (2×500 = 1000 = limit).
  EXPECT_TRUE(p.Admit(node, Slot(cat, ServiceId{0}, RequestId{2}), running)
                  .admit);
  running.push_back(Slot(cat, ServiceId{0}, RequestId{2}));
  // Third does not (1500 > 1000) even though the node is mostly idle.
  EXPECT_FALSE(p.Admit(node, Slot(cat, ServiceId{0}, RequestId{3}), running)
                   .admit);
}

TEST(NativePolicy, NeverEvicts) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  NativeAllocationPolicy p(&cat,
                           NativeAllocationPolicy::ProportionalFractions(cat));
  std::vector<ExecSlot> running;
  for (int i = 0; i < 6; ++i) {
    running.push_back(Slot(cat, ServiceId{6}, RequestId{i}));
  }
  const auto d = p.Admit(StdNode(), Slot(cat, ServiceId{0}, RequestId{99}),
                         running);
  EXPECT_TRUE(d.evict.empty());
}

TEST(NativePolicy, GrantsCappedByContainerThenNode) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  NativeAllocationPolicy p(&cat, {{ServiceId{0}, 0.25}, {ServiceId{5}, 0.75}});
  const NodeSpec node = StdNode();
  // Three requests of service 0 ask 1500 total against a 1000 limit.
  std::vector<ExecSlot> running{Slot(cat, ServiceId{0}, RequestId{1}),
                                Slot(cat, ServiceId{0}, RequestId{2}),
                                Slot(cat, ServiceId{0}, RequestId{3})};
  std::vector<Millicores> grants;
  p.ComputeGrants(node, running, grants);
  Millicores total = 0;
  for (const auto g : grants) total += g;
  EXPECT_LE(total, 1000);
  EXPECT_NEAR(static_cast<double>(grants[0]), 333, 2);
}

TEST(NativePolicy, NoAdjustmentOfDemand) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  NativeAllocationPolicy p(&cat,
                           NativeAllocationPolicy::ProportionalFractions(cat));
  const auto& svc = cat.Get(ServiceId{0});
  const auto d = p.EffectiveDemand(NodeId{1}, svc);
  EXPECT_EQ(d.cpu, svc.cpu_demand);
  EXPECT_EQ(d.mem, svc.mem_demand);
  EXPECT_EQ(p.AdmissionLatency(), 0);
}

// ------------------------------------------------------------------- HRM --

TEST(HrmPolicy, LcGetsPriorityUnderContention) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  hrm::HrmAllocationPolicy p(&cat);
  const NodeSpec node = StdNode();
  // LC asks 3×500=1500; BE asks 2×800=1600. Node has 4000.
  std::vector<ExecSlot> running;
  for (int i = 0; i < 3; ++i) running.push_back(Slot(cat, ServiceId{0}, RequestId{i}));
  for (int i = 3; i < 5; ++i) running.push_back(Slot(cat, ServiceId{6}, RequestId{i}));
  std::vector<Millicores> grants;
  p.ComputeGrants(node, running, grants);
  // Every LC slot receives its full need.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(grants[static_cast<std::size_t>(i)], 500);
  // BE absorbs the leftover (water-fill beyond need, capped at 2×).
  Millicores be_total = grants[3] + grants[4];
  EXPECT_GT(be_total, 1600);           // expanded into idle CPU
  EXPECT_LE(grants[3], 1600);          // per-request speedup cap 2×800
  Millicores total = 0;
  for (const auto g : grants) total += g;
  EXPECT_LE(total, node.capacity.cpu);
}

TEST(HrmPolicy, LcOverloadScalesProRataAndStarvesBe) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  hrm::HrmAllocationPolicy p(&cat);
  const NodeSpec node = StdNode();
  std::vector<ExecSlot> running;
  for (int i = 0; i < 10; ++i) {
    running.push_back(Slot(cat, ServiceId{0}, RequestId{i}));  // 10×500=5000
  }
  running.push_back(Slot(cat, ServiceId{6}, RequestId{100}));
  std::vector<Millicores> grants;
  p.ComputeGrants(node, running, grants);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(static_cast<double>(grants[static_cast<std::size_t>(i)]), 400,
                1);  // 4000/5000 × 500
  }
  EXPECT_EQ(grants[10], 0);  // BE fully compressed
}

TEST(HrmPolicy, BeMaximizesIdleWhenAlone) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  hrm::HrmAllocationPolicy p(&cat);
  std::vector<ExecSlot> running{Slot(cat, ServiceId{9}, RequestId{1})};
  std::vector<Millicores> grants;
  p.ComputeGrants(StdNode(), running, grants);
  // be-backup needs 200; cap 2× → 400 granted despite 4000 idle.
  EXPECT_EQ(grants[0], 400);
}

TEST(HrmPolicy, LcAdmissionEvictsBeForMemory) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  hrm::HrmAllocationPolicy p(&cat);
  NodeSpec node = StdNode();
  node.capacity.mem = 4096;
  // Two BE training jobs of 2048 MiB fill memory.
  std::vector<ExecSlot> running{Slot(cat, ServiceId{6}, RequestId{1}),
                                Slot(cat, ServiceId{6}, RequestId{2})};
  const auto d =
      p.Admit(node, Slot(cat, ServiceId{0}, RequestId{3}), running);
  EXPECT_TRUE(d.admit);
  ASSERT_EQ(d.evict.size(), 1u);  // evicting one 2048 MiB BE job suffices
  EXPECT_FALSE(running[d.evict[0]].is_lc);
}

TEST(HrmPolicy, BeAdmissionNeverEvicts) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  hrm::HrmAllocationPolicy p(&cat);
  NodeSpec node = StdNode();
  node.capacity.mem = 2048;
  std::vector<ExecSlot> running{Slot(cat, ServiceId{6}, RequestId{1})};
  const auto d =
      p.Admit(node, Slot(cat, ServiceId{7}, RequestId{2}), running);
  EXPECT_FALSE(d.admit);
  EXPECT_TRUE(d.evict.empty());
}

TEST(HrmPolicy, AdmitRejectsWhenEvenEvictionCannotHelp) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  hrm::HrmAllocationPolicy p(&cat);
  NodeSpec node = StdNode();
  node.capacity.mem = 256;  // tiny node
  std::vector<ExecSlot> running{Slot(cat, ServiceId{9}, RequestId{1})};
  // lc-cloud-render needs 512 MiB > 256 even after evicting everything.
  const auto d =
      p.Admit(node, Slot(cat, ServiceId{0}, RequestId{2}), running);
  EXPECT_FALSE(d.admit);
  EXPECT_TRUE(d.evict.empty());
}

TEST(HrmPolicy, ReassuranceMultiplierAdjustsDemand) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  hrm::HrmAllocationPolicy p(&cat);
  const auto& svc = cat.Get(ServiceId{0});
  EXPECT_EQ(p.EffectiveDemand(NodeId{1}, svc).cpu, 500);
  p.NudgeMultiplier(NodeId{1}, ServiceId{0}, 1.2);
  EXPECT_EQ(p.EffectiveDemand(NodeId{1}, svc).cpu, 600);
  // Other nodes unaffected.
  EXPECT_EQ(p.EffectiveDemand(NodeId{2}, svc).cpu, 500);
}

TEST(HrmPolicy, MultiplierClampsToBounds) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  hrm::HrmConfig cfg;
  cfg.min_multiplier = 0.5;
  cfg.max_multiplier = 3.0;
  hrm::HrmAllocationPolicy p(&cat, cfg);
  for (int i = 0; i < 50; ++i) p.NudgeMultiplier(NodeId{1}, ServiceId{0}, 1.5);
  EXPECT_DOUBLE_EQ(p.Multiplier(NodeId{1}, ServiceId{0}), 3.0);
  for (int i = 0; i < 50; ++i) p.NudgeMultiplier(NodeId{1}, ServiceId{0}, 0.5);
  EXPECT_DOUBLE_EQ(p.Multiplier(NodeId{1}, ServiceId{0}), 0.5);
}

TEST(HrmPolicy, AdmissionLatencyIsDvpaOp) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  hrm::HrmAllocationPolicy p(&cat);
  EXPECT_NEAR(ToMilliseconds(p.AdmissionLatency()), 23.0, 0.1);
  hrm::HrmConfig free_cfg;
  free_cfg.charge_scaling_latency = false;
  hrm::HrmAllocationPolicy p2(&cat, free_cfg);
  EXPECT_EQ(p2.AdmissionLatency(), 0);
}

// ----------------------------------------------------------------- CERES --

TEST(CeresPolicy, ClassBlindProportionalSharing) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  sched::CeresAllocationPolicy p(&cat);
  const NodeSpec node = StdNode();
  // LC 500 + BE 800×5 = 4500 > 4000: everyone scales by 8/9 — the LC slot
  // gets no protection (contrast with HrmPolicy tests above).
  std::vector<ExecSlot> running{Slot(cat, ServiceId{0}, RequestId{0})};
  for (int i = 1; i <= 5; ++i) {
    running.push_back(Slot(cat, ServiceId{6}, RequestId{i}));
  }
  std::vector<Millicores> grants;
  p.ComputeGrants(node, running, grants);
  EXPECT_LT(grants[0], 500);  // LC squeezed below its need
  EXPECT_NEAR(static_cast<double>(grants[0]), 500.0 * 4000 / 4500, 2);
}

TEST(CeresPolicy, ElasticExpansionWhenIdle) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  sched::CeresAllocationPolicy p(&cat);
  std::vector<ExecSlot> running{Slot(cat, ServiceId{6}, RequestId{1})};
  std::vector<Millicores> grants;
  p.ComputeGrants(StdNode(), running, grants);
  EXPECT_EQ(grants[0], 1600);  // 2× the 800 need
}

TEST(CeresPolicy, SlowerScalingThanDvpa) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  sched::CeresAllocationPolicy ceres(&cat);
  hrm::HrmAllocationPolicy hrm_policy(&cat);
  EXPECT_GT(ceres.AdmissionLatency(), hrm_policy.AdmissionLatency());
}

// ------------------------------------------------- storm generator allocs --

TEST(StormAllocation, NextRequestIsAllocationFreeAcrossFamilies) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  for (int k = 0; k < storm::kNumScenarioKinds; ++k) {
    const auto kind = static_cast<storm::ScenarioKind>(k);
    storm::ScenarioConfig cfg;
    cfg.catalog = &cat;
    cfg.num_clusters = 4;
    cfg.horizon = 20 * kSecond;
    cfg.rps_per_cluster = 80.0;
    cfg.seed = 11;
    auto source = storm::BuildScenario(kind, cfg);
    // Warm up: construction and any first-pull lazy state may allocate.
    workload::Request req;
    int warmed = 0;
    for (; warmed < 128 && source->NextRequest(&req); ++warmed) {
    }
    ASSERT_EQ(warmed, 128) << storm::ScenarioKindName(kind);
    // Steady state: thousands of pulls, zero allocation events.
    const std::int64_t before = g_alloc_events;
    std::int64_t pulled = 0;
    SimTime last_arrival = 0;
    bool ordered = true;
    for (int i = 0; i < 2000 && source->NextRequest(&req); ++i) {
      ++pulled;
      ordered = ordered && req.arrival >= last_arrival;
      last_arrival = req.arrival;
    }
    const std::int64_t during = g_alloc_events - before;
    EXPECT_EQ(during, 0) << storm::ScenarioKindName(kind);
    EXPECT_EQ(pulled, 2000) << storm::ScenarioKindName(kind);
    EXPECT_TRUE(ordered) << storm::ScenarioKindName(kind);
  }
}

}  // namespace
}  // namespace tango
