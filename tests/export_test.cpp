// Tests for the results CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "eval/export.h"
#include "eval/harness.h"

namespace tango::eval {
namespace {

struct ExportFixture : public ::testing::Test {
  void SetUp() override {
    catalog = workload::ServiceCatalog::Standard();
    workload::TraceConfig tc;
    tc.catalog = &catalog;
    tc.num_clusters = 2;
    tc.duration = 8 * kSecond;
    tc.lc_rps = 15.0;
    tc.be_rps = 5.0;
    tc.seed = 7;
    trace = workload::GeneratePattern(workload::Pattern::kP3, tc);

    k8s::SystemConfig sys;
    sys.clusters = PhysicalClusters(2);
    sys.seed = 3;
    system = std::make_unique<k8s::EdgeCloudSystem>(sys, &catalog);
    assembly = std::make_unique<framework::Assembly>(
        framework::InstallFramework(*system,
                                    framework::FrameworkKind::kTango));
    system->SubmitTrace(trace);
    system->Run(20 * kSecond);
  }

  workload::ServiceCatalog catalog;
  workload::Trace trace;
  std::unique_ptr<k8s::EdgeCloudSystem> system;
  std::unique_ptr<framework::Assembly> assembly;
};

int CountLines(const std::string& s) {
  int n = 0;
  for (char c : s) n += c == '\n' ? 1 : 0;
  return n;
}

TEST_F(ExportFixture, RecordsCsvHasOneRowPerRequest) {
  std::stringstream buf;
  const std::size_t rows = WriteRecordsCsv(buf, *system);
  EXPECT_EQ(rows, trace.size());
  EXPECT_EQ(CountLines(buf.str()), static_cast<int>(trace.size()) + 1);
  // Header present and the first data row parses.
  const std::string s = buf.str();
  EXPECT_EQ(s.rfind("request_id,service,class,", 0), 0u);
  EXPECT_NE(s.find(",LC,"), std::string::npos);
  EXPECT_NE(s.find(",BE,"), std::string::npos);
  EXPECT_NE(s.find(",completed,"), std::string::npos);
}

TEST_F(ExportFixture, PeriodsCsvMatchesPeriodCount) {
  std::stringstream buf;
  const std::size_t rows = WritePeriodsCsv(buf, *system);
  EXPECT_EQ(rows, system->periods().size());
  EXPECT_GT(rows, 5u);  // 20 s of 800 ms periods
}

TEST_F(ExportFixture, FileVariantsWriteAndFailGracefully) {
  EXPECT_TRUE(WriteRecordsCsvFile("/tmp/tango_export_records.csv", *system));
  EXPECT_TRUE(WritePeriodsCsvFile("/tmp/tango_export_periods.csv", *system));
  EXPECT_FALSE(
      WriteRecordsCsvFile("/nonexistent-dir/records.csv", *system));
}

}  // namespace
}  // namespace tango::eval
