// Tests for the K8s HPA behaviour model (§2.1's "too slow for LC" argument).
#include <gtest/gtest.h>

#include "eval/harness.h"
#include "k8s/autoscalers.h"
#include "sched/be_baselines.h"
#include "sched/lc_baselines.h"

namespace tango::k8s {
namespace {

using workload::ServiceCatalog;

NodeSpec StdNode() {
  NodeSpec n;
  n.id = NodeId{1};
  n.cluster = ClusterId{0};
  n.capacity = {8000, 16384};
  return n;
}

ExecSlot Slot(const ServiceCatalog& cat, int svc, int id) {
  const auto& s = cat.Get(ServiceId{svc});
  ExecSlot slot;
  slot.request = RequestId{id};
  slot.service = s.id;
  slot.is_lc = s.is_lc();
  slot.need = {s.cpu_demand, s.mem_demand};
  slot.remaining_work = s.cpu_work();
  return slot;
}

TEST(Hpa, StartsWithOneReplicaPerDeployment) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  HpaAllocationPolicy hpa(&cat);
  EXPECT_EQ(hpa.ReadyReplicas(NodeId{1}, ServiceId{0}, 0), 1);
  // Admission: first request fits, second exceeds the single replica.
  std::vector<ExecSlot> running;
  EXPECT_TRUE(hpa.Admit(StdNode(), Slot(cat, 0, 1), running).admit);
  running.push_back(Slot(cat, 0, 1));
  EXPECT_FALSE(hpa.Admit(StdNode(), Slot(cat, 0, 2), running).admit);
}

TEST(Hpa, ControlLoopScalesUpTowardTarget) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  HpaConfig cfg;
  cfg.startup_latency = 2300 * kMillisecond;
  HpaAllocationPolicy hpa(&cat, cfg);
  // Record demand of 3 concurrent against 1 replica.
  std::vector<ExecSlot> running{Slot(cat, 0, 1), Slot(cat, 0, 2)};
  hpa.SetNow(0);
  hpa.Admit(StdNode(), Slot(cat, 0, 3), running);  // observed_demand = 3
  hpa.ControlLoop(kSecond);
  // desired = ceil(1 × 3 / 0.8) = 4 replicas total…
  EXPECT_EQ(hpa.TotalReplicas(NodeId{1}, ServiceId{0}), 4);
  // …but the new ones are not ready until the cold start passes.
  EXPECT_EQ(hpa.ReadyReplicas(NodeId{1}, ServiceId{0}, kSecond + kMillisecond),
            1);
  EXPECT_EQ(hpa.ReadyReplicas(NodeId{1}, ServiceId{0},
                              kSecond + cfg.startup_latency),
            4);
  EXPECT_EQ(hpa.scale_ups(), 1);
}

TEST(Hpa, ScaleDownIsImmediateAndBounded) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  HpaAllocationPolicy hpa(&cat);
  std::vector<ExecSlot> running;
  hpa.SetNow(0);
  for (int i = 0; i < 7; ++i) running.push_back(Slot(cat, 0, i));
  hpa.Admit(StdNode(), Slot(cat, 0, 99), running);
  hpa.ControlLoop(kSecond);
  const int scaled = hpa.TotalReplicas(NodeId{1}, ServiceId{0});
  EXPECT_GT(scaled, 1);
  // A quiet period scales back toward min_replicas.
  for (int pass = 0; pass < 10; ++pass) {
    hpa.ControlLoop(kSecond * (2 + pass) * 20);
  }
  EXPECT_EQ(hpa.TotalReplicas(NodeId{1}, ServiceId{0}), 1);
  EXPECT_GT(hpa.scale_downs(), 0);
}

TEST(Hpa, MaxReplicasClamped) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  HpaConfig cfg;
  cfg.max_replicas = 3;
  HpaAllocationPolicy hpa(&cat, cfg);
  std::vector<ExecSlot> running;
  for (int i = 0; i < 20; ++i) running.push_back(Slot(cat, 0, i));
  hpa.SetNow(0);
  hpa.Admit(StdNode(), Slot(cat, 0, 99), running);
  hpa.ControlLoop(kSecond);
  EXPECT_LE(hpa.TotalReplicas(NodeId{1}, ServiceId{0}), 3);
}

TEST(Hpa, EndToEndLagsBehindBursts) {
  // The §2.1 argument, end to end: the same bursty LC workload under HRM
  // (D-VPA, 23 ms scale ops) vs HPA (15 s loop + 2.3 s cold start). HPA must
  // lose a visible amount of QoS.
  const ServiceCatalog cat = ServiceCatalog::Standard();
  workload::TraceConfig tc;
  tc.catalog = &cat;
  tc.num_clusters = 1;
  tc.duration = 30 * kSecond;
  tc.lc_rps = 130.0;
  tc.be_rps = 4.0;
  tc.period = 6 * kSecond;
  tc.periodic_amplitude = 0.9;
  tc.seed = 13;
  const workload::Trace trace =
      workload::GeneratePattern(workload::Pattern::kP1, tc);

  auto run = [&](bool use_hpa) {
    k8s::SystemConfig sys;
    sys.clusters = eval::PhysicalClusters(1);
    sys.seed = 3;
    EdgeCloudSystem system(sys, &cat);
    sched::LoadGreedyLcScheduler lc(&cat);
    sched::LoadGreedyBeScheduler be(&cat);
    system.SetLcScheduler(&lc);
    system.SetBeScheduler(&be);
    hrm::HrmAllocationPolicy hrm_policy(&cat);
    HpaAllocationPolicy hpa_policy(&cat);
    std::unique_ptr<HpaController> controller;
    if (use_hpa) {
      system.SetAllocationPolicy(&hpa_policy);
      controller = std::make_unique<HpaController>(&system, &hpa_policy);
    } else {
      system.SetAllocationPolicy(&hrm_policy);
    }
    system.SubmitTrace(trace);
    system.Run(tc.duration + 10 * kSecond);
    return system.Summary();
  };
  const auto hrm_summary = run(false);
  const auto hpa_summary = run(true);
  EXPECT_GT(hrm_summary.qos_satisfaction,
            hpa_summary.qos_satisfaction + 0.03);
}

}  // namespace
}  // namespace tango::k8s
