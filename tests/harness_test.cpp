// Tests for the evaluation harness utilities.
#include <gtest/gtest.h>

#include "eval/harness.h"

namespace tango::eval {
namespace {

TEST(Harness, PhysicalClustersMatchPaperSpec) {
  const auto clusters = PhysicalClusters(4);
  ASSERT_EQ(clusters.size(), 4u);
  for (const auto& c : clusters) {
    EXPECT_EQ(c.num_workers, 4);
    EXPECT_EQ(c.worker_capacity.cpu, 4 * kCore);
    EXPECT_EQ(c.worker_capacity.mem, 8 * 1024);
    EXPECT_FALSE(c.heterogeneous);
  }
}

TEST(Harness, HybridClustersMatchDualSpaceSpec) {
  const auto clusters = HybridClusters(4, 100, 88);
  ASSERT_EQ(clusters.size(), 104u);
  int total_virtual_workers = 0;
  for (std::size_t i = 4; i < clusters.size(); ++i) {
    EXPECT_TRUE(clusters[i].heterogeneous);
    EXPECT_GE(clusters[i].num_workers, 3);
    EXPECT_LE(clusters[i].num_workers, 20);
    total_virtual_workers += clusters[i].num_workers;
  }
  // §6.1: ~1000 virtual nodes in total (3-20 × 100 clusters).
  EXPECT_GT(total_virtual_workers, 600);
  EXPECT_LT(total_virtual_workers, 1700);
}

TEST(Harness, HybridClustersDeterministicUnderSeed) {
  const auto a = HybridClusters(2, 10, 5);
  const auto b = HybridClusters(2, 10, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].num_workers, b[i].num_workers);
  }
}

TEST(Harness, DownsampleMeanPools) {
  const std::vector<double> v{1, 1, 3, 3, 5, 5, 7, 7};
  const auto d = Downsample(v, 4);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], (1 + 1 + 3) / 3.0);  // window [0,3)
  // Short inputs pass through untouched.
  EXPECT_EQ(Downsample(v, 20).size(), v.size());
  EXPECT_EQ(Downsample(v, 0).size(), v.size());
}

TEST(Harness, SparklineShapes) {
  EXPECT_EQ(Sparkline({}, 10), "");
  const std::string s = Sparkline({0.0, 1.0}, 2);
  EXPECT_FALSE(s.empty());
  // Rising series: last glyph is the full block, first the lowest.
  EXPECT_NE(s.find("█"), std::string::npos);
  EXPECT_EQ(s.find("▁"), 0u);
  // Constant series must not crash (zero span).
  EXPECT_FALSE(Sparkline({2.0, 2.0, 2.0}, 3).empty());
}

TEST(Harness, FormatHelpers) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
  EXPECT_EQ(Pct(0.369), "36.9%");
  EXPECT_EQ(Pct(1.0, 0), "100%");
}

TEST(Harness, FieldExtractsPeriodColumns) {
  std::vector<k8s::PeriodStats> periods(3);
  periods[0].util_total = 0.1;
  periods[1].util_total = 0.2;
  periods[2].util_total = 0.3;
  const auto v = Field(periods, +[](const k8s::PeriodStats& p) {
    return p.util_total;
  });
  EXPECT_EQ(v, (std::vector<double>{0.1, 0.2, 0.3}));
}

TEST(Harness, RunExperimentProducesConsistentResult) {
  const auto catalog = workload::ServiceCatalog::Standard();
  workload::TraceConfig tc;
  tc.catalog = &catalog;
  tc.num_clusters = 2;
  tc.duration = 10 * kSecond;
  tc.lc_rps = 20.0;
  tc.be_rps = 5.0;
  tc.seed = 3;
  ExperimentConfig cfg;
  cfg.system.clusters = PhysicalClusters(2);
  cfg.system.seed = 4;
  cfg.trace = workload::GeneratePattern(workload::Pattern::kP3, tc);
  cfg.duration = 20 * kSecond;
  cfg.label = "smoke";
  const ExperimentResult r = RunExperiment(
      cfg,
      [](k8s::EdgeCloudSystem& s) {
        return framework::InstallFramework(s,
                                           framework::FrameworkKind::kTango);
      },
      catalog);
  EXPECT_EQ(r.label, "smoke");
  EXPECT_GT(r.summary.lc_total, 0);
  EXPECT_FALSE(r.periods.empty());
  EXPECT_GT(r.scaling_ops, 0);
  EXPECT_GE(r.summary.qos_satisfaction, 0.0);
  EXPECT_LE(r.summary.qos_satisfaction, 1.0);
}

}  // namespace
}  // namespace tango::eval
