// Edge-case tests for the autograd engine beyond the per-op gradient checks.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.h"
#include "nn/autograd.h"
#include "nn/module.h"

namespace tango::nn {
namespace {

TEST(AutogradEdge, FullyMaskedSoftmaxRowIsAllZero) {
  Var logits = Constant(Matrix::FromRows({{1.0f, 2.0f}, {3.0f, 4.0f}}));
  Matrix mask(2, 2, 1.0f);
  mask.at(1, 0) = 0.0f;
  mask.at(1, 1) = 0.0f;  // row 1 fully masked
  const Var p = Softmax(logits, &mask);
  EXPECT_GT(p->value.at(0, 0) + p->value.at(0, 1), 0.99f);
  EXPECT_FLOAT_EQ(p->value.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(p->value.at(1, 1), 0.0f);
}

TEST(AutogradEdge, SoftmaxNumericallyStableWithHugeLogits) {
  Var logits = Constant(Matrix::FromRows({{1000.0f, 999.0f, -1000.0f}}));
  const Var p = Softmax(logits);
  EXPECT_FALSE(std::isnan(p->value.at(0, 0)));
  EXPECT_NEAR(p->value.at(0, 0), 1.0f / (1.0f + std::exp(-1.0f)), 1e-3f);
  EXPECT_NEAR(p->value.at(0, 2), 0.0f, 1e-6f);
}

TEST(AutogradEdge, BackwardTwiceAccumulates) {
  // Calling Backward twice without ZeroGrad doubles the gradient — the
  // documented accumulate contract.
  Var w = Parameter(Matrix(1, 1, 2.0f));
  Var loss = Mul(w, w);
  Backward(loss);
  const float once = w->grad.at(0, 0);
  Backward(loss);
  EXPECT_FLOAT_EQ(w->grad.at(0, 0), 2.0f * once);
  ZeroGrad(loss);
  EXPECT_FLOAT_EQ(w->grad.at(0, 0), 0.0f);
}

TEST(AutogradEdge, DeadBranchGetsZeroGradNotGarbage) {
  Var used = Parameter(Matrix(1, 1, 1.0f));
  Var unused = Parameter(Matrix(1, 1, 1.0f));
  Var loss = Scale(used, 3.0f);
  Backward(loss);
  EXPECT_FLOAT_EQ(used->grad.at(0, 0), 3.0f);
  // `unused` was never part of the graph: its grad is never allocated.
  EXPECT_FALSE(unused->grad.SameShape(unused->value));
}

TEST(AutogradEdge, SharedSubgraphGradientFansIn) {
  // h = relu(w); loss = sum(h) + sum(h∘h) — gradient flows through both
  // consumers of h.
  Var w = Parameter(Matrix(1, 2, 2.0f));
  Var h = Relu(w);
  Var loss = Add(Sum(h), Sum(Mul(h, h)));
  Backward(loss);
  // d/dw = 1 + 2h = 1 + 4 = 5 at each entry.
  EXPECT_FLOAT_EQ(w->grad.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(w->grad.at(0, 1), 5.0f);
}

TEST(AutogradEdge, MlpMatchesManualMatrixMath) {
  Rng rng(5);
  ParamStore store;
  Mlp mlp(store, "m", {3, 4, 2}, rng);
  Matrix x(1, 3);
  x.at(0, 0) = 0.3f;
  x.at(0, 1) = -0.7f;
  x.at(0, 2) = 1.1f;
  const Var y = mlp.Forward(Constant(x));

  // Manual: y = relu(x·W0 + b0)·W1 + b1.
  const Matrix& w0 = store.params()[0]->value;
  const Matrix& b0 = store.params()[1]->value;
  const Matrix& w1 = store.params()[2]->value;
  const Matrix& b1 = store.params()[3]->value;
  Matrix h = x.MatMul(w0);
  for (int c = 0; c < h.cols(); ++c) {
    h.at(0, c) = std::max(0.0f, h.at(0, c) + b0.at(0, c));
  }
  Matrix out = h.MatMul(w1);
  for (int c = 0; c < out.cols(); ++c) out.at(0, c) += b1.at(0, c);
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(y->value.at(0, c), out.at(0, c), 1e-5f);
  }
}

TEST(AutogradEdge, AdamWithoutGradsIsANoopUpdate) {
  ParamStore store;
  Var w = store.CreateZero("w", 2, 2);
  w->value.Fill(1.5f);
  Adam opt(store);
  opt.Step();  // no Backward happened: grads are zero
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(w->value.at(r, c), 1.5f);
    }
  }
}

TEST(AutogradEdge, EntropyZeroForDeterministicDistribution) {
  Var logits = Constant(Matrix::FromRows({{100.0f, -100.0f, -100.0f}}));
  EXPECT_NEAR(ScalarValue(EntropyOfSoftmax(logits)), 0.0f, 1e-4f);
}

TEST(AutogradEdge, TransposeOfTransposeIsIdentity) {
  Rng rng(9);
  Matrix m(3, 5);
  m.XavierInit(rng);
  Var a = Constant(m);
  const Var tt = Transpose(Transpose(a));
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_FLOAT_EQ(tt->value.at(r, c), m.at(r, c));
    }
  }
}

TEST(AutogradEdge, MatrixFromRowsAndTransposed) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
  EXPECT_TRUE(Matrix::FromRows({}).empty());
}

}  // namespace
}  // namespace tango::nn
