// Unit + property tests for the service catalog and trace generators.
#include <gtest/gtest.h>

#include <cmath>

#include "workload/trace.h"

namespace tango::workload {
namespace {

TEST(ServiceCatalog, StandardHasTenCategories) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  EXPECT_EQ(cat.size(), 10);
  EXPECT_EQ(cat.LcServices().size(), 5u);
  EXPECT_EQ(cat.BeServices().size(), 5u);
}

TEST(ServiceCatalog, IdsAreDenseAndStable) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  for (int i = 0; i < cat.size(); ++i) {
    EXPECT_EQ(cat.Get(ServiceId{i}).id.value, i);
  }
}

TEST(ServiceCatalog, LcTargetsNearPaperMeasurement) {
  // Figure 1(b): most LC targets around ~300 ms.
  const ServiceCatalog cat = ServiceCatalog::Standard();
  for (const ServiceId id : cat.LcServices()) {
    const auto& s = cat.Get(id);
    EXPECT_GT(s.qos_target, 150 * kMillisecond) << s.name;
    EXPECT_LT(s.qos_target, 400 * kMillisecond) << s.name;
  }
}

TEST(ServiceCatalog, BeServicesHaveNoQosTargetAndChunkierWork) {
  const ServiceCatalog cat = ServiceCatalog::Standard();
  double lc_work = 0.0, be_work = 0.0;
  for (const auto& s : cat.all()) {
    if (s.is_lc()) {
      EXPECT_GT(s.qos_target, 0);
      lc_work += s.cpu_work();
    } else {
      EXPECT_EQ(s.qos_target, 0);
      be_work += s.cpu_work();
    }
  }
  EXPECT_GT(be_work, 3.0 * lc_work);  // BE jobs are long-running
}

TEST(ServiceCatalog, CpuWorkDefinition) {
  ServiceSpec s;
  s.cpu_demand = 500;
  s.base_proc = 100 * kMillisecond;
  // 500 mc for 100 ms = 5e7 millicore-µs.
  EXPECT_DOUBLE_EQ(s.cpu_work(), 5.0e7);
}

class PatternTest : public ::testing::TestWithParam<Pattern> {
 protected:
  ServiceCatalog catalog_ = ServiceCatalog::Standard();
  TraceConfig Config() {
    TraceConfig tc;
    tc.catalog = &catalog_;
    tc.num_clusters = 4;
    tc.duration = 30 * kSecond;
    tc.lc_rps = 20.0;
    tc.be_rps = 5.0;
    tc.seed = 99;
    return tc;
  }
};

TEST_P(PatternTest, SortedDenseAndInRange) {
  const Trace t = GeneratePattern(GetParam(), Config());
  ASSERT_FALSE(t.empty());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i].id.value, static_cast<std::int32_t>(i));
    if (i > 0) {
      EXPECT_GE(t[i].arrival, t[i - 1].arrival);
    }
    EXPECT_GE(t[i].arrival, 0);
    EXPECT_LT(t[i].arrival, 30 * kSecond);
    EXPECT_GE(t[i].origin.value, 0);
    EXPECT_LT(t[i].origin.value, 4);
    EXPECT_GE(t[i].work_scale, 0.6);
    EXPECT_LE(t[i].work_scale, 3.0);
  }
}

TEST_P(PatternTest, ArrivalCountsMatchConfiguredRates) {
  const TraceConfig tc = Config();
  const Trace t = GeneratePattern(GetParam(), tc);
  const TraceStats st = CountByClass(t, catalog_);
  const double expect_lc = tc.lc_rps * 4 * ToSeconds(tc.duration);
  const double expect_be = tc.be_rps * 4 * ToSeconds(tc.duration);
  EXPECT_NEAR(st.lc, expect_lc, 0.35 * expect_lc);
  EXPECT_NEAR(st.be, expect_be, 0.45 * expect_be);
}

TEST_P(PatternTest, DeterministicUnderSeed) {
  const Trace a = GeneratePattern(GetParam(), Config());
  const Trace b = GeneratePattern(GetParam(), Config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].service, b[i].service);
    EXPECT_EQ(a[i].origin, b[i].origin);
  }
}

TEST_P(PatternTest, DifferentSeedsDiffer) {
  TraceConfig tc = Config();
  const Trace a = GeneratePattern(GetParam(), tc);
  tc.seed = 100;
  const Trace b = GeneratePattern(GetParam(), tc);
  // Sizes will almost surely differ; if not, arrivals will.
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].arrival != b[i].arrival;
  }
  EXPECT_TRUE(differs);
}

TEST_P(PatternTest, HotspotSkewConcentratesLoad) {
  TraceConfig tc = Config();
  tc.hotspot_fraction = 0.8;
  tc.num_hotspots = 1;
  const Trace t = GeneratePattern(GetParam(), tc);
  int hot = 0;
  for (const auto& r : t) {
    if (r.origin == ClusterId{0}) ++hot;
  }
  // Cluster 0 should carry far more than 1/4 of the load.
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(t.size()), 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternTest,
                         ::testing::Values(Pattern::kP1, Pattern::kP2,
                                           Pattern::kP3),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Pattern::kP1:
                               return "P1";
                             case Pattern::kP2:
                               return "P2";
                             default:
                               return "P3";
                           }
                         });

TEST(PatternShapes, P1LcIsPeriodic) {
  // The periodic LC stream of P1 should show much higher autocorrelation at
  // the configured period than the random LC stream of P3.
  ServiceCatalog cat = ServiceCatalog::Standard();
  TraceConfig tc;
  tc.catalog = &cat;
  tc.duration = 64 * kSecond;
  tc.period = 8 * kSecond;
  tc.lc_rps = 60.0;
  tc.be_rps = 0.001;
  tc.seed = 3;

  auto lc_rate_curve = [&](const Trace& t) {
    std::vector<double> bins(64, 0.0);
    for (const auto& r : t) {
      if (cat.Get(r.service).is_lc()) {
        bins[static_cast<std::size_t>(r.arrival / kSecond)] += 1.0;
      }
    }
    return bins;
  };
  auto periodicity = [](const std::vector<double>& bins, int lag) {
    double mean = 0.0;
    for (double b : bins) mean += b;
    mean /= static_cast<double>(bins.size());
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i + static_cast<std::size_t>(lag) < bins.size();
         ++i) {
      num += (bins[i] - mean) * (bins[i + static_cast<std::size_t>(lag)] - mean);
    }
    for (double b : bins) den += (b - mean) * (b - mean);
    return den > 0 ? num / den : 0.0;
  };
  const double p1 =
      periodicity(lc_rate_curve(GeneratePattern(Pattern::kP1, tc)), 8);
  const double p3 =
      periodicity(lc_rate_curve(GeneratePattern(Pattern::kP3, tc)), 8);
  EXPECT_GT(p1, p3 + 0.15);
  EXPECT_GT(p1, 0.3);
}

TEST(Diurnal, HasEveningPeakAndQuietNight) {
  ServiceCatalog cat = ServiceCatalog::Standard();
  TraceConfig tc;
  tc.catalog = &cat;
  tc.duration = 120 * kSecond;  // 24 h compressed into 120 s
  tc.lc_rps = 50.0;
  tc.seed = 12;
  const Trace t = GenerateDiurnal(tc, 24.0);
  ASSERT_FALSE(t.empty());
  // Bin by virtual hour.
  std::vector<int> by_hour(24, 0);
  for (const auto& r : t) {
    const int h = static_cast<int>(static_cast<double>(r.arrival) /
                                   static_cast<double>(tc.duration) * 24.0);
    by_hour[static_cast<std::size_t>(std::min(h, 23))] += 1;
  }
  // Evening (19-21h) busier than pre-dawn (3-5h) by a wide margin.
  const int evening = by_hour[19] + by_hour[20] + by_hour[21];
  const int night = by_hour[3] + by_hour[4] + by_hour[5];
  EXPECT_GT(evening, 2 * night);
}

TEST(GoogleStyle, ProducesBurstsOfSameService) {
  ServiceCatalog cat = ServiceCatalog::Standard();
  TraceConfig tc;
  tc.catalog = &cat;
  tc.duration = 60 * kSecond;
  tc.lc_rps = 30.0;
  tc.be_rps = 10.0;
  tc.seed = 5;
  const Trace t = GenerateGoogleStyle(tc);
  ASSERT_GT(t.size(), 100u);
  // Consecutive requests should frequently share a service id (burstiness),
  // far above the 1/10 chance of a uniform shuffle.
  int same = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i].service == t[i - 1].service) ++same;
  }
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(t.size()), 0.25);
}

TEST(MergeTraces, SortsAndReassignsIds) {
  ServiceCatalog cat = ServiceCatalog::Standard();
  TraceConfig tc;
  tc.catalog = &cat;
  tc.duration = 5 * kSecond;
  tc.seed = 1;
  Trace a = GeneratePattern(Pattern::kP3, tc);
  tc.seed = 2;
  Trace b = GeneratePattern(Pattern::kP3, tc);
  const std::size_t total = a.size() + b.size();
  const Trace m = MergeTraces({std::move(a), std::move(b)});
  ASSERT_EQ(m.size(), total);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m[i].id.value, static_cast<std::int32_t>(i));
    if (i > 0) {
      EXPECT_GE(m[i].arrival, m[i - 1].arrival);
    }
  }
}

TEST(PatternName, AllNamed) {
  EXPECT_STRNE(PatternName(Pattern::kP1), "?");
  EXPECT_STRNE(PatternName(Pattern::kP2), "?");
  EXPECT_STRNE(PatternName(Pattern::kP3), "?");
}

}  // namespace
}  // namespace tango::workload
