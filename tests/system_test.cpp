// Integration tests for EdgeCloudSystem: request lifecycle, BE forwarding,
// state sync, metrics periods, and summary bookkeeping.
#include <gtest/gtest.h>

#include "eval/harness.h"
#include "k8s/system.h"
#include "sched/be_baselines.h"
#include "sched/lc_baselines.h"

namespace tango::k8s {
namespace {

using workload::Request;
using workload::ServiceCatalog;

struct SystemFixture : public ::testing::Test {
  void SetUp() override {
    catalog = ServiceCatalog::Standard();
    cfg.clusters = eval::PhysicalClusters(3);
    cfg.seed = 11;
    system = std::make_unique<EdgeCloudSystem>(cfg, &catalog);
    lc = std::make_unique<sched::LoadGreedyLcScheduler>(&catalog);
    be = std::make_unique<sched::LoadGreedyBeScheduler>(&catalog);
    system->SetLcScheduler(lc.get());
    system->SetBeScheduler(be.get());
  }

  workload::Trace SmallTrace(int lc_count, int be_count) {
    workload::Trace t;
    for (int i = 0; i < lc_count + be_count; ++i) {
      Request r;
      r.id = RequestId{i};
      r.service = i < lc_count ? ServiceId{3} : ServiceId{9};
      r.origin = ClusterId{i % 3};
      r.arrival = i * 10 * kMillisecond;
      r.work_scale = 1.0;
      t.push_back(r);
    }
    return t;
  }

  SystemConfig cfg;
  ServiceCatalog catalog;
  std::unique_ptr<EdgeCloudSystem> system;
  std::unique_ptr<LcScheduler> lc;
  std::unique_ptr<BeScheduler> be;
};

TEST_F(SystemFixture, TopologyAndClustersBuilt) {
  EXPECT_EQ(system->num_clusters(), 3);
  EXPECT_EQ(system->num_workers(), 12);
  // Node ids: per cluster, master then workers.
  EXPECT_EQ(system->MasterOf(ClusterId{0}), NodeId{0});
  EXPECT_EQ(system->MasterOf(ClusterId{1}), NodeId{5});
  EXPECT_EQ(system->ClusterOfNode(NodeId{6}), ClusterId{1});
  EXPECT_NE(system->FindWorker(NodeId{1}), nullptr);
  EXPECT_EQ(system->FindWorker(NodeId{0}), nullptr);  // master ≠ worker
}

TEST_F(SystemFixture, AllRequestsReachCompletion) {
  system->SubmitTrace(SmallTrace(20, 10));
  system->Run(30 * kSecond);
  const RunSummary s = system->Summary();
  EXPECT_EQ(s.lc_total, 20);
  EXPECT_EQ(s.be_total, 10);
  EXPECT_EQ(s.lc_completed + s.lc_abandoned, 20);
  EXPECT_EQ(s.be_completed, 10);
  // Load-greedy on stale state loses a few LC requests to node queues; the
  // large majority must still complete.
  EXPECT_GE(s.lc_completed, 12);
}

TEST_F(SystemFixture, LcLatencyIncludesRoundTrip) {
  // A single LC request must take at least the LAN/WAN round trip plus its
  // processing time.
  system->SubmitTrace(SmallTrace(1, 0));
  system->Run(10 * kSecond);
  const auto& rec = system->records()[0];
  ASSERT_EQ(rec.outcome, Outcome::kCompleted);
  EXPECT_GE(rec.latency, catalog.Get(ServiceId{3}).base_proc);
  EXPECT_GT(rec.dispatched, rec.request.arrival);
  EXPECT_GT(rec.completed, rec.dispatched);
  EXPECT_TRUE(rec.qos_met);
}

TEST_F(SystemFixture, BeRequestsRouteThroughCentralCluster) {
  // The BE queue lives at the central cluster; before the first dispatch
  // tick its length must reflect forwarded requests.
  workload::Trace t = SmallTrace(0, 5);
  for (auto& r : t) r.arrival = 0;
  system->SubmitTrace(t);
  // Run just past the forwarding delay but before dispatch completes.
  system->Run(200 * kSecond);
  EXPECT_EQ(system->Summary().be_completed, 5);
  // All BE records were dispatched strictly later than arrival (forwarding
  // to the central cluster takes ≥ one WAN hop for non-central origins).
  const ClusterId central = system->central_cluster();
  for (const auto& rec : system->records()) {
    if (rec.request.origin != central) {
      EXPECT_GE(rec.dispatched - rec.request.arrival,
                system->topology().OneWayDelay(rec.request.origin, central));
    }
  }
}

TEST_F(SystemFixture, StateStorageSyncsAllWorkersGlobally) {
  system->Run(cfg.state_sync_period + kMillisecond);
  EXPECT_EQ(system->BeStorage().size(), 12u);
  // LC storage of each cluster sees at least its own workers.
  for (int c = 0; c < 3; ++c) {
    EXPECT_GE(system->LcStorage(ClusterId{c}).size(), 4u);
  }
}

TEST_F(SystemFixture, LcStorageScopeLimitedByRadius) {
  // With a tiny radius, each master only sees its own cluster's workers.
  SystemConfig tight = cfg;
  tight.lc_nearby_radius_km = 0.001;
  EdgeCloudSystem sys2(tight, &catalog);
  sys2.SetLcScheduler(lc.get());
  sys2.SetBeScheduler(be.get());
  sys2.Run(tight.state_sync_period + kMillisecond);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(sys2.LcStorage(ClusterId{c}).size(), 4u);
  }
}

TEST_F(SystemFixture, PeriodStatsAdvanceEvery800ms) {
  system->Run(4 * kSecond);
  // 800 ms periods → 5 boundaries in 4 s (plus the open period).
  EXPECT_GE(system->periods().size(), 5u);
  EXPECT_EQ(system->periods()[1].period_start, 800 * kMillisecond);
}

TEST_F(SystemFixture, UtilizationRecordedInTimeseries) {
  system->SubmitTrace(SmallTrace(30, 10));
  system->Run(5 * kSecond);
  const auto* util = system->timeseries().Find("util.total");
  ASSERT_NE(util, nullptr);
  EXPECT_FALSE(util->empty());
}

TEST_F(SystemFixture, SummaryRatesConsistent) {
  system->SubmitTrace(SmallTrace(40, 15));
  system->Run(60 * kSecond);
  const RunSummary s = system->Summary();
  EXPECT_NEAR(s.qos_satisfaction,
              static_cast<double>(s.lc_qos_met) / 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.be_throughput, static_cast<double>(s.be_completed));
  EXPECT_GE(s.p95_latency_ms, s.mean_latency_ms * 0.5);
}

TEST_F(SystemFixture, DeterministicAcrossRuns) {
  auto run_once = [this]() {
    EdgeCloudSystem sys(cfg, &catalog);
    sched::LoadGreedyLcScheduler lc2(&catalog);
    sched::LoadGreedyBeScheduler be2(&catalog);
    sys.SetLcScheduler(&lc2);
    sys.SetBeScheduler(&be2);
    sys.SubmitTrace(SmallTrace(25, 10));
    sys.Run(30 * kSecond);
    return sys.Summary();
  };
  const RunSummary a = run_once();
  const RunSummary b = run_once();
  EXPECT_EQ(a.lc_qos_met, b.lc_qos_met);
  EXPECT_EQ(a.be_completed, b.be_completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
}

TEST_F(SystemFixture, HeterogeneousClustersVaryCapacity) {
  SystemConfig hc;
  hc.clusters = eval::HybridClusters(1, 6, /*seed=*/3);
  hc.seed = 3;
  EdgeCloudSystem sys(hc, &catalog);
  Millicores mn = std::numeric_limits<Millicores>::max(), mx = 0;
  for (auto* w : sys.AllWorkers()) {
    mn = std::min(mn, w->spec().capacity.cpu);
    mx = std::max(mx, w->spec().capacity.cpu);
  }
  EXPECT_LT(mn, mx);  // heterogeneity realized
  EXPECT_GE(mn, 2000);
  EXPECT_LE(mx, 8000);
  EXPECT_GE(sys.num_workers(), 4 + 6 * 3);
}

TEST_F(SystemFixture, ScalingOpsAggregatedAcrossNodes) {
  hrm::HrmAllocationPolicy policy(&catalog);
  system->SetAllocationPolicy(&policy);
  system->SubmitTrace(SmallTrace(10, 0));
  system->Run(20 * kSecond);
  EXPECT_GT(system->total_scaling_ops(), 0);
}

}  // namespace
}  // namespace tango::k8s
