// Unit tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace tango::sim {
namespace {

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(Simulator, SimultaneousEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(100, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime fired = -1;
  sim.ScheduleAt(50, [&] {
    sim.ScheduleAfter(25, [&] { fired = sim.Now(); });
  });
  sim.RunAll();
  EXPECT_EQ(fired, 75);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  SimTime fired = -1;
  sim.ScheduleAt(10, [&] {
    sim.ScheduleAfter(-5, [&] { fired = sim.Now(); });
  });
  sim.RunAll();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.ScheduleAt(10, [&] { ran = true; });
  sim.Cancel(h);
  sim.RunAll();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int count = 0;
  const EventHandle h = sim.ScheduleAt(10, [&] { ++count; });
  sim.RunAll();
  sim.Cancel(h);  // already fired — must be a no-op
  sim.Cancel(h);
  sim.Cancel(kInvalidEvent);
  EXPECT_EQ(count, 1);
}

TEST(Simulator, CancelOneOfManyAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(10, [&] { order.push_back(0); });
  const EventHandle h = sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(10, [&] { order.push_back(2); });
  sim.Cancel(h);
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.ScheduleAt(10, [&] { fired.push_back(10); });
  sim.ScheduleAt(20, [&] { fired.push_back(20); });
  sim.ScheduleAt(21, [&] { fired.push_back(21); });
  sim.RunUntil(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.Now(), 20);
  sim.RunUntil(30);
  EXPECT_EQ(fired.back(), 21);
}

TEST(Simulator, RunUntilReturnsExecutedCount) {
  Simulator sim;
  for (SimTime t : {5, 10, 10, 25}) {
    sim.ScheduleAt(t, [] {});
  }
  EXPECT_EQ(sim.RunUntil(10), 3u);  // 5, 10, 10
  EXPECT_EQ(sim.RunUntil(20), 0u);  // empty window still advances the clock
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.RunUntil(30), 1u);
}

TEST(Simulator, NextEventTimeTracksHeapHead) {
  Simulator sim;
  EXPECT_EQ(sim.NextEventTime(), Simulator::kNoEvent);
  const EventHandle h = sim.ScheduleAt(40, [] {});
  sim.ScheduleAt(70, [] {});
  EXPECT_EQ(sim.NextEventTime(), 40);
  sim.Cancel(h);
  EXPECT_EQ(sim.NextEventTime(), 70);
  sim.RunAll();
  EXPECT_EQ(sim.NextEventTime(), Simulator::kNoEvent);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(Simulator, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(1, [&] { ++count; });
  sim.ScheduleAt(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 10) sim.ScheduleAfter(1, recurse);
  };
  sim.ScheduleAt(0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), 9);
  EXPECT_EQ(sim.executed_events(), 10u);
}

TEST(Simulator, PeriodicTickFiresUntilStopped) {
  Simulator sim;
  std::vector<SimTime> ticks;
  auto stop = SchedulePeriodic(sim, 100, 50, [&](SimTime t) {
    ticks.push_back(t);
    (void)t;
  });
  sim.RunUntil(300);
  EXPECT_EQ(ticks, (std::vector<SimTime>{100, 150, 200, 250, 300}));
  stop();
  sim.RunUntil(1000);
  EXPECT_EQ(ticks.size(), 5u);  // no further ticks after stop
}

TEST(Simulator, PeriodicTickStoppedFromInsideCallback) {
  Simulator sim;
  int count = 0;
  std::function<void()> stop;
  stop = SchedulePeriodic(sim, 10, 10, [&](SimTime) {
    if (++count == 3) stop();
  });
  sim.RunUntil(10'000);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, CancelManyInterleavedCompactsTombstones) {
  // Cancel every other event out of a large batch: the lazy tombstone list
  // must skip exactly the cancelled ones and consume each tombstone on pop.
  Simulator sim;
  std::vector<int> ran;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(sim.ScheduleAt(i, [&ran, i] { ran.push_back(i); }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) sim.Cancel(handles[i]);
  sim.RunAll();
  ASSERT_EQ(ran.size(), 100u);
  for (std::size_t i = 0; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i], static_cast<int>(2 * i + 1));
  }
  EXPECT_EQ(sim.executed_events(), 100u);
}

TEST(Simulator, DoubleCancelConsumesOnlyOneTombstone) {
  // Cancelling the same handle twice must not leave a stale tombstone that
  // could swallow an unrelated future event.
  Simulator sim;
  bool cancelled_ran = false, later_ran = false;
  const EventHandle h = sim.ScheduleAt(10, [&] { cancelled_ran = true; });
  sim.Cancel(h);
  sim.Cancel(h);
  sim.ScheduleAt(20, [&] { later_ran = true; });
  sim.RunAll();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(later_ran);
}

TEST(Simulator, CancelAfterFireDoesNotAffectLaterEvents) {
  // A tombstone for an already-fired handle must never match a live event,
  // even after the list is re-sorted by subsequent cancels.
  Simulator sim;
  int fired = 0;
  const EventHandle early = sim.ScheduleAt(1, [&] { ++fired; });
  sim.RunAll();
  sim.Cancel(early);  // stale: the event already fired
  const EventHandle doomed = sim.ScheduleAt(5, [&] { ++fired; });
  sim.ScheduleAt(6, [&] { ++fired; });
  sim.Cancel(doomed);  // forces a re-sort with the stale tombstone present
  sim.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelFromCallbackAtSameTimestamp) {
  // An event may cancel a simultaneous event that is still queued behind it.
  Simulator sim;
  bool victim_ran = false;
  EventHandle victim = kInvalidEvent;
  sim.ScheduleAt(10, [&] { sim.Cancel(victim); });
  victim = sim.ScheduleAt(10, [&] { victim_ran = true; });
  sim.RunAll();
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, PeriodicStopBeforeFirstTick) {
  Simulator sim;
  int count = 0;
  auto stop = SchedulePeriodic(sim, 100, 50, [&](SimTime) { ++count; });
  stop();  // stopped while the first tick is still pending
  sim.RunUntil(1000);
  EXPECT_EQ(count, 0);
}

TEST(Simulator, PeriodicStopIsIdempotent) {
  Simulator sim;
  int count = 0;
  auto stop = SchedulePeriodic(sim, 10, 10, [&](SimTime) { ++count; });
  sim.RunUntil(35);
  stop();
  stop();  // second call must be a harmless no-op
  sim.RunUntil(1000);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, TwoPeriodicsStopIndependently) {
  Simulator sim;
  int a = 0, b = 0;
  auto stop_a = SchedulePeriodic(sim, 10, 10, [&](SimTime) { ++a; });
  auto stop_b = SchedulePeriodic(sim, 10, 10, [&](SimTime) { ++b; });
  sim.RunUntil(30);
  stop_a();
  sim.RunUntil(60);
  stop_b();
  sim.RunUntil(1000);
  EXPECT_EQ(a, 3);
  EXPECT_EQ(b, 6);
}

TEST(Simulator, PendingEventCountTracksQueue) {
  Simulator sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.ScheduleAt(5, [] {});
  sim.ScheduleAt(6, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.RunAll();
  EXPECT_EQ(sim.pending_events(), 0u);
}

// ---- First-class periodic events -----------------------------------------

TEST(Simulator, StartPeriodicMatchesScheduleAfterChain) {
  // The in-place re-arm must order identically to the old pattern of the
  // callback re-scheduling itself: the next tick's sequence number is drawn
  // at fire time, so a same-timestamp one-shot scheduled earlier runs first
  // and one scheduled later (by a later event) runs after.
  auto run = [](bool first_class) {
    Simulator sim;
    std::vector<std::pair<SimTime, int>> order;
    if (first_class) {
      sim.StartPeriodic(10, 10, [&] { order.push_back({sim.Now(), 0}); });
    } else {
      struct Chain {
        Simulator* s;
        std::vector<std::pair<SimTime, int>>* order;
        void operator()() const {
          order->push_back({s->Now(), 0});
          s->ScheduleAfter(10, Chain{s, order});
        }
      };
      sim.ScheduleAt(10, Chain{&sim, &order});
    }
    // Competing one-shots at the tick timestamps, armed before and after.
    sim.ScheduleAt(20, [&] { order.push_back({sim.Now(), 1}); });
    sim.ScheduleAt(15, [&] {
      sim.ScheduleAt(30, [&] { order.push_back({sim.Now(), 2}); });
    });
    sim.RunUntil(45);
    return order;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Simulator, CancelStopsPeriodicFromOutside) {
  Simulator sim;
  int ticks = 0;
  const EventHandle h = sim.StartPeriodic(10, 10, [&] { ++ticks; });
  sim.RunUntil(35);
  EXPECT_EQ(ticks, 3);
  sim.Cancel(h);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunUntil(1000);
  EXPECT_EQ(ticks, 3);
}

TEST(Simulator, PeriodicCanCancelItselfMidTick) {
  Simulator sim;
  int ticks = 0;
  EventHandle h = kInvalidEvent;
  h = sim.StartPeriodic(10, 10, [&] {
    if (++ticks == 2) sim.Cancel(h);
  });
  sim.RunAll();
  EXPECT_EQ(ticks, 2);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, StaleHandleAfterSlotReuseIsNoOp) {
  Simulator sim;
  bool first = false;
  bool second = false;
  const EventHandle h1 = sim.ScheduleAt(10, [&] { first = true; });
  sim.Cancel(h1);  // frees the slot
  const EventHandle h2 = sim.ScheduleAt(20, [&] { second = true; });
  sim.Cancel(h1);  // stale generation: must NOT cancel the reused slot
  sim.RunAll();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
  EXPECT_NE(h1, h2);
}

TEST(Simulator, CancelOfFiredOneShotIsNoOp) {
  Simulator sim;
  EventHandle h = kInvalidEvent;
  bool later = false;
  h = sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [&] { later = true; });
  sim.RunUntil(15);
  sim.Cancel(h);  // already fired; slot may host another event by now
  sim.RunAll();
  EXPECT_TRUE(later);
}

TEST(Simulator, PendingExactAfterHeavyCancelChurn) {
  // Cancellation removes events immediately — no tombstones — so the
  // pending count stays exact through arbitrary cancel/re-schedule churn.
  Simulator sim;
  std::vector<EventHandle> pending;
  for (int i = 0; i < 100; ++i) {
    pending.push_back(sim.ScheduleAt(1000 + i, [] {}));
  }
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; i += 2) {
      sim.Cancel(pending[static_cast<std::size_t>(i)]);
      pending[static_cast<std::size_t>(i)] =
          sim.ScheduleAt(1000 + round, [] {});
    }
    EXPECT_EQ(sim.pending_events(), 100u);
  }
  sim.RunAll();
  EXPECT_EQ(sim.pending_events(), 0u);
  // Only the 100 live events plus what actually fired ran; churn executed
  // nothing extra.
  EXPECT_EQ(sim.executed_events(), 100u);
}

TEST(Simulator, SteadyStateSchedulingAllocatesNothing) {
  Simulator sim;
  // Warm-up grows the pool to its high-water mark.
  std::vector<EventHandle> pending;
  for (int i = 0; i < 64; ++i) {
    pending.push_back(sim.ScheduleAt(100 + i, [] {}));
  }
  const EventHandle tick = sim.StartPeriodic(50, 100, [] {});
  sim.RunUntil(200);
  const std::int64_t warm = sim.alloc_events();
  // Steady state: schedule/cancel/fire churn at the same concurrency.
  for (int round = 0; round < 200; ++round) {
    for (auto& h : pending) {
      sim.Cancel(h);
      h = sim.ScheduleAfter(100, [] {});
    }
    sim.RunUntil(sim.Now() + 10);
  }
  sim.Cancel(tick);  // a live periodic re-arms forever; RunAll must drain
  sim.RunAll();
  EXPECT_EQ(sim.alloc_events(), warm);
}

TEST(Simulator, OversizedCallbackCountsAsAllocEvent) {
  Simulator sim;
  const std::int64_t before = sim.alloc_events();
  struct Big {
    char payload[256];
  };
  Big big{};
  big.payload[0] = 1;
  bool ran = false;
  sim.ScheduleAt(10, [big, &ran] { ran = big.payload[0] == 1; });
  EXPECT_GE(sim.alloc_events(), before + 1);  // heap fallback is counted
  sim.RunAll();
  EXPECT_TRUE(ran);
}

TEST(Simulator, ReserveEventsPrewarmsPool) {
  Simulator sim;
  sim.ReserveEvents(128);
  const std::int64_t after_reserve = sim.alloc_events();
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(10 + i, [] {});
  }
  EXPECT_EQ(sim.alloc_events(), after_reserve);
  sim.RunAll();
}

}  // namespace
}  // namespace tango::sim
