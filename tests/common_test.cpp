// Unit tests for src/common: units, ids, rng, stats.
#include <gtest/gtest.h>

#include <set>

#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace tango {
namespace {

// ---------------------------------------------------------------- units --

TEST(Units, ConversionRoundTrips) {
  EXPECT_EQ(FromMilliseconds(23.0), 23 * kMillisecond);
  EXPECT_DOUBLE_EQ(ToMilliseconds(FromMilliseconds(97.5)), 97.5);
  EXPECT_DOUBLE_EQ(ToSeconds(kMinute), 60.0);
  EXPECT_EQ(kHour, 3600 * kSecond);
}

TEST(Units, TransferTimeScalesWithSizeAndBandwidth) {
  // 1 MiB over 1 Gbps ≈ 8.4 ms.
  const SimDuration t = TransferTime(1 << 20, 1'000'000);
  EXPECT_NEAR(ToMilliseconds(t), 8.39, 0.1);
  EXPECT_EQ(TransferTime(0, 1'000'000), 0);
  EXPECT_EQ(TransferTime(1 << 20, 0), 0);  // disabled link → no serialization
  // Halving bandwidth doubles time.
  EXPECT_EQ(TransferTime(4096, 500) , 2 * TransferTime(4096, 1000));
}

// ------------------------------------------------------------------ ids --

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, ClusterId>);
  NodeId a{3};
  NodeId b{3};
  NodeId c{4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(Ids, DefaultIsInvalid) {
  ServiceId s;
  EXPECT_FALSE(s.valid());
  EXPECT_TRUE(ServiceId{0}.valid());
}

TEST(Ids, Hashable) {
  std::set<NodeId> s{NodeId{1}, NodeId{2}};
  EXPECT_EQ(s.count(NodeId{1}), 1u);
  std::unordered_map<NodeId, int> m;
  m[NodeId{5}] = 7;
  EXPECT_EQ(m[NodeId{5}], 7);
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
  // Degenerate range.
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // Child and parent should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(0.7, 3.0), 0.7);
  }
}

// ---------------------------------------------------------------- stats --

TEST(Stats, PercentileNearestRank) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(std::vector<double>{}, 0.5), 0.0);
}

TEST(Stats, PercentileClampsQuantile) {
  std::vector<int> v{10, 20};
  EXPECT_EQ(Percentile(v, -1.0), 10);
  EXPECT_EQ(Percentile(v, 2.0), 20);
}

TEST(Stats, MeanHandlesEmpty) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{1.0, 3.0}), 2.0);
}

TEST(Stats, WindowedSamplesEvictOldEntries) {
  WindowedSamples w(100 * kMillisecond);
  w.Add(0, 1.0);
  w.Add(50 * kMillisecond, 2.0);
  w.Add(120 * kMillisecond, 3.0);
  // At t=120ms the t=0 sample is 120ms old — outside the 100ms window.
  EXPECT_EQ(w.size(), 2u);
  w.Evict(300 * kMillisecond);
  EXPECT_TRUE(w.empty());
}

TEST(Stats, WindowedSamplesPercentile) {
  WindowedSamples w(kSecond);
  for (int i = 1; i <= 100; ++i) w.Add(i, static_cast<double>(i));
  EXPECT_NEAR(w.Percentile(0.95), 95.0, 1.0);
  EXPECT_NEAR(w.Mean(), 50.5, 0.01);
}

TEST(Stats, WindowedSamplesPercentileIsRepeatableAcrossQueries) {
  // The scratch-buffer reuse must not leak state between queries or after
  // eviction shrinks the window.
  WindowedSamples w(100 * kMillisecond);
  for (int i = 1; i <= 50; ++i) {
    w.Add(i * kMillisecond, static_cast<double>(i));
  }
  const double p95_first = w.Percentile(0.95);
  EXPECT_DOUBLE_EQ(w.Percentile(0.95), p95_first);
  EXPECT_DOUBLE_EQ(w.Percentile(0.5), 26.0);  // round(0.5 * 49) = 25 → v[25]
  w.Evict(120 * kMillisecond);  // drops samples 1..19
  EXPECT_DOUBLE_EQ(w.Percentile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(w.Percentile(1.0), 50.0);
}

TEST(Stats, PercentileInPlaceMatchesCopyingVariant) {
  std::vector<double> v{9, 1, 7, 3, 5};
  for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    std::vector<double> scratch = v;
    EXPECT_DOUBLE_EQ(PercentileInPlace(scratch, q), Percentile(v, q)) << q;
  }
}

TEST(Stats, RunningStatTracksExtremes) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.Add(3.0);
  s.Add(-1.0);
  s.Add(10.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

}  // namespace
}  // namespace tango
