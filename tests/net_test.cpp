// Unit tests for the network topology model.
#include <gtest/gtest.h>

#include "net/topology.h"

namespace tango::net {
namespace {

Topology MakeLine() {
  // Clusters at x = 0, 300, 1000 km.
  return Topology({{0, 0}, {300, 0}, {1000, 0}}, LinkParams{});
}

TEST(Topology, GeoDistance) {
  const Topology t = MakeLine();
  EXPECT_DOUBLE_EQ(t.GeoDistanceKm(ClusterId{0}, ClusterId{1}), 300.0);
  EXPECT_DOUBLE_EQ(t.GeoDistanceKm(ClusterId{0}, ClusterId{2}), 1000.0);
  EXPECT_DOUBLE_EQ(t.GeoDistanceKm(ClusterId{1}, ClusterId{1}), 0.0);
}

TEST(Topology, IntraClusterUsesLanLatency) {
  const Topology t = MakeLine();
  EXPECT_EQ(t.OneWayDelay(ClusterId{0}, ClusterId{0}), t.params().lan_latency);
  EXPECT_EQ(t.Rtt(ClusterId{1}, ClusterId{1}), 2 * t.params().lan_latency);
}

TEST(Topology, WanDelayGrowsWithDistance) {
  const Topology t = MakeLine();
  const SimDuration near = t.OneWayDelay(ClusterId{0}, ClusterId{1});
  const SimDuration far = t.OneWayDelay(ClusterId{0}, ClusterId{2});
  EXPECT_GT(far, near);
  EXPECT_GT(near, t.params().lan_latency);
  // Delay is symmetric.
  EXPECT_EQ(t.OneWayDelay(ClusterId{2}, ClusterId{0}), far);
}

TEST(Topology, RttMatchesPaperScale) {
  // The paper measures up to ~97 ms RTT to the central cluster; a cluster
  // ~1500 km away should land in that regime with default parameters.
  const Topology t({{0, 0}, {1500, 0}}, LinkParams{});
  const double rtt_ms = ToMilliseconds(t.Rtt(ClusterId{0}, ClusterId{1}));
  EXPECT_GT(rtt_ms, 60.0);
  EXPECT_LT(rtt_ms, 130.0);
}

TEST(Topology, TransferDelayAddsSerialization) {
  const Topology t = MakeLine();
  const SimDuration prop = t.OneWayDelay(ClusterId{0}, ClusterId{1});
  const SimDuration with_payload =
      t.TransferDelay(ClusterId{0}, ClusterId{1}, 1 << 20);
  EXPECT_EQ(with_payload - prop,
            TransferTime(1 << 20, t.params().wan_bandwidth));
}

TEST(Topology, TransferDelayJitterBounded) {
  LinkParams p;
  p.jitter = 0.2;
  const Topology t({{0, 0}, {500, 0}}, p);
  Rng rng(5);
  const SimDuration base = t.TransferDelay(ClusterId{0}, ClusterId{1}, 0);
  for (int i = 0; i < 200; ++i) {
    const SimDuration d = t.TransferDelay(ClusterId{0}, ClusterId{1}, 0, &rng);
    EXPECT_GE(d, static_cast<SimDuration>(0.79 * static_cast<double>(base)));
    EXPECT_LE(d, static_cast<SimDuration>(1.21 * static_cast<double>(base)));
  }
}

TEST(Topology, NearbyClustersRespects500kmRule) {
  const Topology t = MakeLine();
  // From cluster 0, only the 300 km cluster is within the paper's 500 km.
  const auto nearby = t.NearbyClusters(ClusterId{0}, 500.0);
  ASSERT_EQ(nearby.size(), 1u);
  EXPECT_EQ(nearby[0], ClusterId{1});
  // Excludes self.
  for (const auto c : t.NearbyClusters(ClusterId{1}, 10'000.0)) {
    EXPECT_NE(c, ClusterId{1});
  }
}

TEST(Topology, MinCrossClusterLatencyIsClosestPairDelay) {
  const Topology t = MakeLine();
  // Closest pair is 0–1 at 300 km; the minimum must match its one-way
  // delay exactly (this is the shard engine's conservative lookahead).
  EXPECT_EQ(t.MinCrossClusterLatency(),
            t.OneWayDelay(ClusterId{0}, ClusterId{1}));
  EXPECT_LE(t.MinCrossClusterLatency(),
            t.OneWayDelay(ClusterId{0}, ClusterId{2}));
  EXPECT_GE(t.MinCrossClusterLatency(), t.params().wan_base_latency);
}

TEST(Topology, MinCrossClusterLatencySingleClusterFallsBackToWanFloor) {
  const Topology t({{0, 0}}, LinkParams{});
  EXPECT_EQ(t.MinCrossClusterLatency(), t.params().wan_base_latency);
}

TEST(Topology, CentralClusterMinimizesTotalDistance) {
  const Topology t = MakeLine();
  // x=300 is the geometric 1-median of {0, 300, 1000}.
  EXPECT_EQ(t.CentralCluster(), ClusterId{1});
}

TEST(Topology, RandomLayoutDeterministicUnderSeed) {
  Rng a(99), b(99);
  const auto la = Topology::RandomLayout(10, 1000.0, a);
  const auto lb = Topology::RandomLayout(10, 1000.0, b);
  ASSERT_EQ(la.size(), 10u);
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_DOUBLE_EQ(la[i].x_km, lb[i].x_km);
    EXPECT_DOUBLE_EQ(la[i].y_km, lb[i].y_km);
    EXPECT_GE(la[i].x_km, 0.0);
    EXPECT_LE(la[i].x_km, 1000.0);
  }
}

}  // namespace
}  // namespace tango::net
