// Tests for the WorkerNode execution engine: processor sharing, admission,
// D-VPA latency, eviction, abandonment, and telemetry.
#include <gtest/gtest.h>

#include "hrm/regulations.h"
#include "k8s/node.h"

namespace tango::k8s {
namespace {

using workload::Request;
using workload::ServiceCatalog;

struct NodeFixture : public ::testing::Test {
  void SetUp() override {
    catalog = ServiceCatalog::Standard();
    hrm_policy = std::make_unique<hrm::HrmAllocationPolicy>(&catalog);
    native_policy = std::make_unique<NativeAllocationPolicy>(
        &catalog, NativeAllocationPolicy::ProportionalFractions(catalog));
  }

  std::unique_ptr<WorkerNode> MakeNode(const AllocationPolicy* policy,
                                       Millicores cpu = 4000,
                                       MiB mem = 8192) {
    NodeSpec spec;
    spec.id = NodeId{7};
    spec.cluster = ClusterId{0};
    spec.capacity = {cpu, mem};
    WorkerNode::Callbacks cbs;
    cbs.on_complete = [this](const CompletionInfo& info) {
      completions.push_back(info);
    };
    cbs.on_abandon = [this](const Request& r, SimTime) {
      abandoned.push_back(r.id);
    };
    cbs.on_be_return = [this](const Request& r) {
      returned.push_back(r.id);
    };
    return std::make_unique<WorkerNode>(&sim, spec, &catalog, policy, cbs);
  }

  Request Req(int id, int svc, SimTime arrival = 0, double scale = 1.0) {
    Request r;
    r.id = RequestId{id};
    r.service = ServiceId{svc};
    r.origin = ClusterId{0};
    r.arrival = arrival;
    r.work_scale = scale;
    return r;
  }

  sim::Simulator sim;
  ServiceCatalog catalog;
  std::unique_ptr<hrm::HrmAllocationPolicy> hrm_policy;
  std::unique_ptr<NativeAllocationPolicy> native_policy;
  std::vector<CompletionInfo> completions;
  std::vector<RequestId> abandoned;
  std::vector<RequestId> returned;
};

TEST_F(NodeFixture, SingleLcRequestCompletesAtExpectedTime) {
  auto node = MakeNode(hrm_policy.get());
  // lc-factory-ctl: 200 mc × 40 ms work. Granted exactly its need (no cap
  // uplift for LC), so processing takes 40 ms plus the 23 ms D-VPA op.
  node->Enqueue(Req(1, 3));
  sim.RunUntil(kSecond);
  ASSERT_EQ(completions.size(), 1u);
  const SimTime expected = hrm_policy->AdmissionLatency() +
                           catalog.Get(ServiceId{3}).base_proc;
  EXPECT_NEAR(static_cast<double>(completions[0].completed),
              static_cast<double>(expected), 2000.0);  // within 2 ms
  EXPECT_EQ(completions[0].node, NodeId{7});
}

TEST_F(NodeFixture, WorkScaleStretchesProcessing) {
  auto node = MakeNode(hrm_policy.get());
  node->Enqueue(Req(1, 3, 0, 2.0));
  sim.RunUntil(kSecond);
  ASSERT_EQ(completions.size(), 1u);
  const SimTime expected = hrm_policy->AdmissionLatency() +
                           2 * catalog.Get(ServiceId{3}).base_proc;
  EXPECT_NEAR(static_cast<double>(completions[0].completed),
              static_cast<double>(expected), 2000.0);
}

TEST_F(NodeFixture, BeAloneExpandsAndFinishesFaster) {
  auto node = MakeNode(hrm_policy.get());
  // be-backup: 200 mc × 500 ms; with the 2× water-fill grant it should take
  // ~250 ms of execution.
  node->Enqueue(Req(1, 9));
  sim.RunUntil(2 * kSecond);
  ASSERT_EQ(completions.size(), 1u);
  const double exec_ms =
      ToMilliseconds(completions[0].completed - completions[0].exec_start);
  EXPECT_NEAR(exec_ms, 250.0, 10.0);
}

TEST_F(NodeFixture, ProcessorSharingSlowsConcurrentLc) {
  auto node = MakeNode(hrm_policy.get(), /*cpu=*/1000, /*mem=*/8192);
  // Two LC requests of 500 mc each on a 1-core node: they fit exactly; a
  // third would overload. Use lc-cloud-render (500 mc, 90 ms).
  node->Enqueue(Req(1, 0));
  node->Enqueue(Req(2, 0));
  node->Enqueue(Req(3, 0));
  sim.RunUntil(5 * kSecond);
  ASSERT_EQ(completions.size(), 3u);
  // With 3 concurrent, each gets 333 mc → the last finisher needed
  // noticeably longer than a solo 90 ms run.
  const SimTime last = completions.back().completed;
  EXPECT_GT(last, FromMilliseconds(90.0 + 23.0 + 30.0));
}

TEST_F(NodeFixture, DvpaOpCountsScalingOps) {
  auto node = MakeNode(hrm_policy.get());
  node->Enqueue(Req(1, 3));
  node->Enqueue(Req(2, 4));
  sim.RunUntil(kSecond);
  EXPECT_EQ(node->scaling_ops(), 2);
  EXPECT_GT(node->cgroups().write_count(), 0);
}

TEST_F(NodeFixture, NativePolicyHasNoScalingOps) {
  auto node = MakeNode(native_policy.get());
  node->Enqueue(Req(1, 3));
  sim.RunUntil(kSecond);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(node->scaling_ops(), 0);
}

TEST_F(NodeFixture, LcRequestAbandonedWhenStale) {
  auto node = MakeNode(hrm_policy.get(), /*cpu=*/400, /*mem=*/600);
  // Saturate memory with one LC so the next LC queues: lc-cloud-render
  // needs 512 MiB; node has 600.
  node->Enqueue(Req(1, 0, 0, 20.0));  // long-running (1.8 s of work)
  node->Enqueue(Req(2, 0, 0));
  sim.RunUntil(5 * kSecond);
  // Request 2 could not start before 2×300 ms; it must be abandoned.
  ASSERT_EQ(abandoned.size(), 1u);
  EXPECT_EQ(abandoned[0], RequestId{2});
}

TEST_F(NodeFixture, BeEvictedForLcMemoryAndReturned) {
  auto node = MakeNode(hrm_policy.get(), /*cpu=*/4000, /*mem=*/2300);
  // be-training holds 2048 MiB.
  node->Enqueue(Req(1, 6));
  sim.RunUntil(100 * kMillisecond);
  EXPECT_EQ(node->running_count(), 1);
  // An LC request needing 512 MiB arrives; 2300−2048=252 free → evict BE.
  node->Enqueue(Req(2, 0));
  sim.RunUntil(kSecond);
  ASSERT_EQ(returned.size(), 1u);
  EXPECT_EQ(returned[0], RequestId{1});
  // The LC request completed.
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].request.id, RequestId{2});
}

TEST_F(NodeFixture, BeQueueTimeoutBouncesRequest) {
  NodeTunables tun;
  tun.be_requeue_timeout = 2 * kSecond;
  NodeSpec spec;
  spec.id = NodeId{7};
  spec.cluster = ClusterId{0};
  spec.capacity = {4000, 2100};
  WorkerNode::Callbacks cbs;
  cbs.on_be_return = [this](const Request& r) { returned.push_back(r.id); };
  WorkerNode node(&sim, spec, &catalog, hrm_policy.get(), cbs, tun);
  // First BE occupies all memory for a long time.
  node.Enqueue(Req(1, 6, 0, 50.0));
  node.Enqueue(Req(2, 6, 0));  // cannot fit: 2×2048 > 2100
  sim.RunUntil(10 * kSecond);
  ASSERT_GE(returned.size(), 1u);
  EXPECT_EQ(returned[0], RequestId{2});
}

TEST_F(NodeFixture, TelemetryReflectsRunningSet) {
  auto node = MakeNode(hrm_policy.get());
  node->Enqueue(Req(1, 0));   // LC 500 mc / 512 MiB
  node->Enqueue(Req(2, 9));   // BE 200 mc / 256 MiB
  sim.RunUntil(50 * kMillisecond);  // past the D-VPA op
  EXPECT_EQ(node->running_count(), 2);
  EXPECT_EQ(node->running_lc(), 1);
  EXPECT_EQ(node->cpu_in_use_lc(), 500);
  EXPECT_GT(node->cpu_in_use_be(), 200);  // BE water-filled
  EXPECT_EQ(node->mem_in_use(), 512 + 256);
  const auto snap = node->Snapshot(sim.Now());
  EXPECT_EQ(snap.node, NodeId{7});
  EXPECT_EQ(snap.running_lc, 1);
  EXPECT_EQ(snap.running_be, 1);
  EXPECT_EQ(snap.cpu_available, 4000 - node->cpu_in_use());
  EXPECT_EQ(snap.mem_available, 8192 - 768);
}

TEST_F(NodeFixture, SnapshotOfIdleNode) {
  auto node = MakeNode(hrm_policy.get());
  const auto snap = node->Snapshot(0);
  EXPECT_EQ(snap.cpu_available, 4000);
  EXPECT_EQ(snap.mem_available, 8192);
  EXPECT_EQ(snap.queued, 0);
  EXPECT_FALSE(snap.is_master);
}

TEST_F(NodeFixture, PolicySwapTakesEffect) {
  auto node = MakeNode(native_policy.get());
  node->SetPolicy(hrm_policy.get());
  node->Enqueue(Req(1, 3));
  sim.RunUntil(kSecond);
  EXPECT_EQ(node->scaling_ops(), 1);  // HRM now charges D-VPA ops
}

TEST_F(NodeFixture, ManyRequestsAllComplete) {
  auto node = MakeNode(hrm_policy.get());
  for (int i = 0; i < 30; ++i) {
    node->Enqueue(Req(i, 4, 0));  // lc-web-api: 150 mc / 128 MiB
  }
  sim.RunUntil(20 * kSecond);
  // 30×150 = 4500 > 4000 so they contend, but all should finish well before
  // 20 s (work is 50 ms each).
  EXPECT_EQ(completions.size() + abandoned.size(), 30u);
  EXPECT_GT(completions.size(), 20u);
  EXPECT_EQ(node->running_count(), 0);
  EXPECT_EQ(node->queued_count(), 0);
}

TEST_F(NodeFixture, ContainerCgroupPathsCreatedLazily) {
  auto node = MakeNode(hrm_policy.get());
  const std::string p = node->ContainerCgroupPath(ServiceId{2});
  EXPECT_EQ(p, "kubepods/burstable/pod-n7-s2/c0");
  EXPECT_NE(node->cgroups().Find(p), nullptr);
  // Idempotent.
  EXPECT_EQ(node->ContainerCgroupPath(ServiceId{2}), p);
}

}  // namespace
}  // namespace tango::k8s
