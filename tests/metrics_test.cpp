// Unit tests for the metrics stack: time-series store, QoS detector, state
// storage.
#include <gtest/gtest.h>

#include "metrics/qos_detector.h"
#include "metrics/state_storage.h"
#include "metrics/timeseries.h"

namespace tango::metrics {
namespace {

// ----------------------------------------------------------- timeseries --

TEST(TimeSeries, GaugeAndQuery) {
  TimeSeriesStore tss;
  tss.Gauge("util", 100, 0.5);
  tss.Gauge("util", 200, 0.7);
  const Series* s = tss.Find("util");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->At(50), 0.0);    // before first sample
  EXPECT_DOUBLE_EQ(s->At(100), 0.5);
  EXPECT_DOUBLE_EQ(s->At(150), 0.5);   // holds last value
  EXPECT_DOUBLE_EQ(s->At(250), 0.7);
  EXPECT_DOUBLE_EQ(s->Latest(), 0.7);
}

TEST(TimeSeries, CounterAccumulates) {
  TimeSeriesStore tss;
  tss.CounterAdd("done", 10, 1.0);
  tss.CounterAdd("done", 20, 2.0);
  tss.CounterAdd("done", 30, 4.0);
  EXPECT_DOUBLE_EQ(tss.CounterValue("done"), 7.0);
  EXPECT_DOUBLE_EQ(tss.Find("done")->At(25), 3.0);
  EXPECT_DOUBLE_EQ(tss.CounterValue("missing"), 0.0);
}

TEST(TimeSeries, MeanOverRange) {
  TimeSeriesStore tss;
  for (int i = 1; i <= 10; ++i) {
    tss.Gauge("g", i * 100, static_cast<double>(i));
  }
  // (from, to] semantics.
  EXPECT_DOUBLE_EQ(tss.Find("g")->MeanOver(200, 500), (3 + 4 + 5) / 3.0);
  EXPECT_DOUBLE_EQ(tss.Find("g")->MeanOver(5000, 9000), 0.0);
}

TEST(TimeSeries, MeanOverBinarySearchedBoundaries) {
  // The prefix-sum path must honor (from, to] exactly, including window
  // edges that fall between samples and windows covering the whole series.
  TimeSeriesStore tss;
  for (int i = 1; i <= 1000; ++i) {
    tss.Gauge("g", i * 10, static_cast<double>(i));
  }
  const auto* s = tss.Find("g");
  EXPECT_DOUBLE_EQ(s->MeanOver(0, 10000), 500.5);      // everything
  EXPECT_DOUBLE_EQ(s->MeanOver(10, 20), 2.0);          // exact edges
  EXPECT_DOUBLE_EQ(s->MeanOver(15, 25), 2.0);          // between samples
  EXPECT_DOUBLE_EQ(s->MeanOver(-100, 10), 1.0);        // head window
  EXPECT_DOUBLE_EQ(s->MeanOver(9990, 20000), 1000.0);  // tail window
  EXPECT_DOUBLE_EQ(s->MeanOver(14, 15), 0.0);          // empty interior
  EXPECT_DOUBLE_EQ(s->MeanOver(300, 300), 0.0);        // degenerate
}

TEST(TimeSeries, NamesSorted) {
  TimeSeriesStore tss;
  tss.Gauge("b", 0, 1);
  tss.Gauge("a", 0, 1);
  const auto names = tss.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

// ---------------------------------------------------------- QoS detector --

constexpr NodeId kNode{1};
constexpr ServiceId kSvc{0};

TEST(QosDetector, TailLatencyOverWindow) {
  QosDetector det(100 * kMillisecond);
  for (int i = 1; i <= 100; ++i) {
    det.Observe(50 * kMillisecond, kNode, kSvc, i * kMillisecond);
  }
  const double p95 = det.TailLatency(60 * kMillisecond, kNode, kSvc);
  EXPECT_NEAR(p95 / kMillisecond, 95.0, 1.5);
}

TEST(QosDetector, WindowEviction) {
  QosDetector det(100 * kMillisecond);
  det.Observe(0, kNode, kSvc, 50 * kMillisecond);
  EXPECT_EQ(det.SampleCount(50 * kMillisecond, kNode, kSvc), 1u);
  EXPECT_EQ(det.SampleCount(200 * kMillisecond, kNode, kSvc), 0u);
}

TEST(QosDetector, SlackScoreDefinition) {
  QosDetector det;
  const SimDuration target = 300 * kMillisecond;
  // ξ = 150 ms against γ = 300 ms ⇒ δ = 0.5.
  det.Observe(0, kNode, kSvc, 150 * kMillisecond);
  EXPECT_NEAR(det.SlackScore(10, kNode, kSvc, target), 0.5, 1e-9);
}

TEST(QosDetector, NegativeSlackSignalsViolation) {
  QosDetector det;
  det.Observe(0, kNode, kSvc, 600 * kMillisecond);
  const double slack =
      det.SlackScore(10, kNode, kSvc, 300 * kMillisecond);
  EXPECT_LT(slack, 0.0);
  EXPECT_NEAR(slack, -1.0, 1e-9);
}

TEST(QosDetector, IdleServiceHasFullSlack) {
  QosDetector det;
  EXPECT_DOUBLE_EQ(det.SlackScore(0, kNode, kSvc, 300 * kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(det.TailLatency(0, kNode, kSvc), 0.0);
}

TEST(QosDetector, SeparatesNodesAndServices) {
  QosDetector det;
  det.Observe(0, NodeId{1}, ServiceId{0}, 100 * kMillisecond);
  det.Observe(0, NodeId{2}, ServiceId{0}, 200 * kMillisecond);
  det.Observe(0, NodeId{1}, ServiceId{1}, 300 * kMillisecond);
  EXPECT_NEAR(det.TailLatency(1, NodeId{1}, ServiceId{0}) / kMillisecond, 100,
              1);
  EXPECT_NEAR(det.TailLatency(1, NodeId{2}, ServiceId{0}) / kMillisecond, 200,
              1);
  EXPECT_NEAR(det.TailLatency(1, NodeId{1}, ServiceId{1}) / kMillisecond, 300,
              1);
}

// --------------------------------------------------------- state storage --

NodeSnapshot Snap(int node, int cluster, SimTime at) {
  NodeSnapshot s;
  s.node = NodeId{node};
  s.cluster = ClusterId{cluster};
  s.cpu_total = 4000;
  s.cpu_available = 2000;
  s.mem_total = 8192;
  s.mem_available = 4096;
  s.recorded_at = at;
  return s;
}

TEST(StateStorage, UpsertKeepsNewest) {
  StateStorage st;
  auto s1 = Snap(1, 0, 100);
  s1.cpu_available = 1000;
  st.Update(s1);
  auto s2 = Snap(1, 0, 200);
  s2.cpu_available = 3000;
  st.Update(s2);
  EXPECT_EQ(st.Find(NodeId{1})->cpu_available, 3000);
  // A stale snapshot must not clobber the newer one.
  auto s3 = Snap(1, 0, 150);
  s3.cpu_available = 500;
  st.Update(s3);
  EXPECT_EQ(st.Find(NodeId{1})->cpu_available, 3000);
  EXPECT_EQ(st.size(), 1u);
}

TEST(StateStorage, AllReturnsInNodeIdOrder) {
  StateStorage st;
  st.Update(Snap(5, 0, 0));
  st.Update(Snap(2, 0, 0));
  st.Update(Snap(9, 1, 0));
  const auto all = st.All();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].node, NodeId{2});
  EXPECT_EQ(all[1].node, NodeId{5});
  EXPECT_EQ(all[2].node, NodeId{9});
}

TEST(StateStorage, ForClusterFilters) {
  StateStorage st;
  st.Update(Snap(1, 0, 0));
  st.Update(Snap(2, 1, 0));
  st.Update(Snap(3, 1, 0));
  EXPECT_EQ(st.ForCluster(ClusterId{1}).size(), 2u);
  EXPECT_EQ(st.ForCluster(ClusterId{0}).size(), 1u);
  EXPECT_TRUE(st.ForCluster(ClusterId{7}).empty());
}

TEST(StateStorage, RttBookkeeping) {
  StateStorage st;
  EXPECT_FALSE(st.Rtt(ClusterId{3}).has_value());
  st.UpdateRtt(ClusterId{3}, 97 * kMillisecond);
  ASSERT_TRUE(st.Rtt(ClusterId{3}).has_value());
  EXPECT_EQ(*st.Rtt(ClusterId{3}), 97 * kMillisecond);
}

TEST(StateStorage, ClearEmptiesEverything) {
  StateStorage st;
  st.Update(Snap(1, 0, 0));
  st.UpdateRtt(ClusterId{0}, kMillisecond);
  st.Clear();
  EXPECT_EQ(st.size(), 0u);
  EXPECT_FALSE(st.Rtt(ClusterId{0}).has_value());
  EXPECT_EQ(st.Find(NodeId{1}), nullptr);
}

}  // namespace
}  // namespace tango::metrics
