// System-wide property tests: invariants that must hold for every scheduler
// and allocation policy on randomized workloads.
#include <gtest/gtest.h>

#include "eval/harness.h"

namespace tango {
namespace {

struct Combo {
  framework::LcAlgo lc;
  framework::BeAlgo be;
  bool hrm;
  std::uint64_t seed;
};

class InvariantTest : public ::testing::TestWithParam<Combo> {};

TEST_P(InvariantTest, EndToEndInvariantsHold) {
  const Combo combo = GetParam();
  const auto catalog = workload::ServiceCatalog::Standard();

  workload::TraceConfig tc;
  tc.catalog = &catalog;
  tc.num_clusters = 3;
  tc.duration = 15 * kSecond;
  tc.lc_rps = 60.0;
  tc.be_rps = 20.0;
  tc.hotspot_fraction = 0.6;
  tc.seed = combo.seed;
  const workload::Trace trace =
      workload::GeneratePattern(workload::Pattern::kP3, tc);

  k8s::SystemConfig sys;
  sys.clusters = eval::HybridClusters(1, 2, combo.seed);
  sys.region_km = 450.0;
  sys.seed = combo.seed + 1;
  k8s::EdgeCloudSystem system(sys, &catalog);
  framework::Assembly a =
      framework::InstallPair(system, combo.lc, combo.be, combo.hrm);
  system.SubmitTrace(trace);
  // Sample node state during the run to check capacity invariants live.
  bool capacity_ok = true;
  bool mem_ok = true;
  sim::SchedulePeriodic(system.simulator(), 500 * kMillisecond,
                        500 * kMillisecond, [&](SimTime) {
                          for (auto* w : system.AllWorkers()) {
                            capacity_ok = capacity_ok &&
                                          w->cpu_in_use() <=
                                              w->spec().capacity.cpu;
                            mem_ok = mem_ok && w->mem_in_use() <=
                                                   w->spec().capacity.mem;
                          }
                        });
  system.Run(tc.duration + 60 * kSecond);

  // 1. CPU grants never exceed node capacity; memory never oversubscribed.
  EXPECT_TRUE(capacity_ok);
  EXPECT_TRUE(mem_ok);

  // 2. Conservation: every request reaches exactly one terminal state
  //    (with a long drain window, nothing stays pending).
  const k8s::RunSummary s = system.Summary();
  EXPECT_EQ(s.lc_total + s.be_total, static_cast<int>(trace.size()));
  EXPECT_EQ(s.lc_completed + s.lc_abandoned, s.lc_total)
      << "LC requests lost or double-counted";
  if (combo.hrm) {
    // Elastic allocation always finds room eventually.
    EXPECT_EQ(s.be_completed, s.be_total)
        << "BE requests must finish eventually (evictions restart)";
  } else {
    // Native fixed container fractions structurally starve the biggest BE
    // jobs on small nodes (they never fit the per-service silo) — exactly
    // the §4.2 pain point. The bulk must still complete; the rest keeps
    // bouncing.
    EXPECT_GE(s.be_completed, (s.be_total * 6) / 10);
  }

  // 3. Per-record sanity: completion after dispatch after arrival; QoS flag
  //    consistent with the latency.
  for (const auto& rec : system.records()) {
    if (rec.outcome != k8s::Outcome::kCompleted) continue;
    EXPECT_GE(rec.dispatched, rec.request.arrival);
    EXPECT_GE(rec.completed, rec.dispatched);
    EXPECT_EQ(rec.latency, rec.completed - rec.request.arrival);
    const auto& svc = catalog.Get(rec.request.service);
    if (svc.is_lc()) {
      EXPECT_EQ(rec.qos_met, rec.latency <= svc.qos_target);
    }
  }

  // 4. Counters: met ≤ completed ≤ total.
  EXPECT_LE(s.lc_qos_met, s.lc_completed);
  EXPECT_LE(s.lc_completed, s.lc_total);

  // 5. Workers drained under elastic allocation: nothing still running or
  //    queued (native allocation may carry the structurally-starved BE
  //    backlog from invariant 2).
  if (combo.hrm) {
    for (auto* w : system.AllWorkers()) {
      EXPECT_EQ(w->running_count(), 0) << "node " << w->id().value;
      EXPECT_EQ(w->queued_count(), 0) << "node " << w->id().value;
    }
  }
}

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  std::string n = std::string(framework::LcAlgoName(info.param.lc)) + "_" +
                  framework::BeAlgoName(info.param.be) +
                  (info.param.hrm ? "_hrm" : "_native");
  for (auto& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    SchedulerMatrix, InvariantTest,
    ::testing::Values(
        Combo{framework::LcAlgo::kDssLc, framework::BeAlgo::kDcgBe, true, 1},
        Combo{framework::LcAlgo::kDssLc, framework::BeAlgo::kLoadGreedy,
              false, 2},
        Combo{framework::LcAlgo::kScoring, framework::BeAlgo::kGnnSac, true,
              3},
        Combo{framework::LcAlgo::kLoadGreedy, framework::BeAlgo::kK8sNative,
              true, 4},
        Combo{framework::LcAlgo::kK8sNative, framework::BeAlgo::kK8sNative,
              false, 5}),
    ComboName);

}  // namespace
}  // namespace tango
