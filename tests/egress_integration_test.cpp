// Integration tests for bandwidth regulation inside the full system:
// LC transfers must be shielded from BE bulk under HRM (bandwidth is a
// compressible resource, §4.1), and determinism must hold for the full
// Tango stack including the learned scheduler.
#include <gtest/gtest.h>

#include "eval/harness.h"

namespace tango {
namespace {

workload::ServiceCatalog BulkCatalog() {
  // Catalog with an LC service and a BE service whose payloads are huge —
  // enough to congest a cluster uplink on their own.
  auto specs = workload::ServiceCatalog::Standard().all();
  for (auto& s : specs) {
    if (!s.is_lc()) {
      s.request_size = 8 * 1024 * 1024;  // 8 MiB per BE request
    }
  }
  return workload::ServiceCatalog(std::move(specs));
}

k8s::RunSummary RunBulk(bool with_hrm, bool regulate,
                        const workload::ServiceCatalog& catalog) {
  workload::TraceConfig tc;
  tc.catalog = &catalog;
  tc.num_clusters = 3;
  tc.duration = 20 * kSecond;
  tc.lc_rps = 40.0;
  tc.be_rps = 25.0;  // heavy BE payload stream through the uplinks
  tc.seed = 19;
  const workload::Trace trace =
      workload::GeneratePattern(workload::Pattern::kP3, tc);

  k8s::SystemConfig sys;
  sys.clusters = eval::PhysicalClusters(3);
  sys.region_km = 450.0;
  sys.regulate_bandwidth = regulate;
  sys.egress.uplink = 120'000;  // 120 Mbps uplinks: BE bulk congests them
  sys.seed = 5;
  k8s::EdgeCloudSystem system(sys, &catalog);
  framework::Assembly a = framework::InstallPair(
      system, framework::LcAlgo::kDssLc, framework::BeAlgo::kLoadGreedy,
      with_hrm);
  system.SubmitTrace(trace);
  system.Run(45 * kSecond);
  return system.Summary();
}

TEST(EgressIntegration, HrmShieldsLcLatencyFromBeBulk) {
  const auto catalog = BulkCatalog();
  const auto hrm = RunBulk(/*with_hrm=*/true, /*regulate=*/true, catalog);
  const auto fair = RunBulk(/*with_hrm=*/false, /*regulate=*/true, catalog);
  // Under LC-priority egress the LC latency distribution must be no worse
  // than fair sharing — and clearly better at the tail.
  EXPECT_LE(hrm.p95_latency_ms, fair.p95_latency_ms);
  EXPECT_GE(hrm.qos_satisfaction, fair.qos_satisfaction);
}

TEST(EgressIntegration, RegulationTogglesCleanly) {
  const auto catalog = BulkCatalog();
  const auto off = RunBulk(true, /*regulate=*/false, catalog);
  const auto on = RunBulk(true, /*regulate=*/true, catalog);
  // Both configurations complete the workload; regulation only moves
  // transfer delays around.
  EXPECT_EQ(off.lc_completed + off.lc_abandoned, off.lc_total);
  EXPECT_EQ(on.lc_completed + on.lc_abandoned, on.lc_total);
}

TEST(EgressIntegration, FullTangoStackIsDeterministic) {
  const auto catalog = workload::ServiceCatalog::Standard();
  auto run = [&]() {
    workload::TraceConfig tc;
    tc.catalog = &catalog;
    tc.num_clusters = 2;
    tc.duration = 10 * kSecond;
    tc.lc_rps = 30.0;
    tc.be_rps = 10.0;
    tc.seed = 77;
    const workload::Trace trace =
        workload::GeneratePattern(workload::Pattern::kP3, tc);
    k8s::SystemConfig sys;
    sys.clusters = eval::PhysicalClusters(2);
    sys.seed = 8;
    k8s::EdgeCloudSystem system(sys, &catalog);
    framework::Assembly a = framework::InstallFramework(
        system, framework::FrameworkKind::kTango);
    system.SubmitTrace(trace);
    system.Run(25 * kSecond);
    return system.Summary();
  };
  const auto a = run();
  const auto b = run();
  // Bit-for-bit reproducibility across the whole stack, including the
  // GraphSAGE+A2C learner.
  EXPECT_EQ(a.lc_qos_met, b.lc_qos_met);
  EXPECT_EQ(a.lc_abandoned, b.lc_abandoned);
  EXPECT_EQ(a.be_completed, b.be_completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_DOUBLE_EQ(a.mean_util, b.mean_util);
}

}  // namespace
}  // namespace tango
