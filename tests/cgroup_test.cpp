// Unit tests for the cgroup hierarchy emulation — including the ordered-write
// invariant that motivates D-VPA's protocol (§4.2, Figure 5).
#include <gtest/gtest.h>

#include "cgroup/cgroup.h"

namespace tango::cgroup {
namespace {

TEST(Hierarchy, PreCreatesQosLevels) {
  Hierarchy h;
  EXPECT_NE(h.Find("kubepods"), nullptr);
  EXPECT_NE(h.Find("kubepods/guaranteed"), nullptr);
  EXPECT_NE(h.Find("kubepods/burstable"), nullptr);
  EXPECT_NE(h.Find("kubepods/besteffort"), nullptr);
  EXPECT_EQ(h.Find("kubepods/imaginary"), nullptr);
}

TEST(Hierarchy, QosPathHelper) {
  EXPECT_EQ(Hierarchy::QosPath(QosClass::kBurstable), "kubepods/burstable");
  EXPECT_EQ(Hierarchy::QosPath(QosClass::kGuaranteed), "kubepods/guaranteed");
  EXPECT_EQ(Hierarchy::QosPath(QosClass::kBestEffort), "kubepods/besteffort");
}

TEST(Hierarchy, CreateNestedGroups) {
  Hierarchy h;
  Group* pod = h.Create("kubepods/burstable", "pod1");
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->path(), "kubepods/burstable/pod1");
  Group* c = h.Create("kubepods/burstable/pod1", "c0");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->parent(), pod);
  EXPECT_EQ(pod->children().size(), 1u);
}

TEST(Hierarchy, CreateFailsOnDuplicateOrMissingParent) {
  Hierarchy h;
  EXPECT_NE(h.Create("kubepods/burstable", "pod1"), nullptr);
  EXPECT_EQ(h.Create("kubepods/burstable", "pod1"), nullptr);  // duplicate
  EXPECT_EQ(h.Create("kubepods/nowhere", "pod2"), nullptr);    // no parent
}

TEST(Hierarchy, RemoveRefusesNonLeafAndRoot) {
  Hierarchy h;
  h.Create("kubepods/burstable", "pod1");
  h.Create("kubepods/burstable/pod1", "c0");
  EXPECT_EQ(h.Remove("kubepods/burstable/pod1"), WriteResult::kBusy);
  EXPECT_EQ(h.Remove("kubepods"), WriteResult::kBusy);
  EXPECT_EQ(h.Remove("kubepods/burstable/pod1/c0"), WriteResult::kOk);
  EXPECT_EQ(h.Remove("kubepods/burstable/pod1"), WriteResult::kOk);
  EXPECT_EQ(h.Remove("kubepods/burstable/pod1"), WriteResult::kNoSuchGroup);
}

TEST(Hierarchy, CpuQuotaParentBoundEnforced) {
  Hierarchy h;
  h.Create("kubepods/burstable", "pod1");
  h.Create("kubepods/burstable/pod1", "c0");
  // Expansion in the wrong order: raising the container above the pod's
  // current quota fails — this is what forces "pod first" on expand.
  ASSERT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1", 50'000),
            WriteResult::kOk);
  EXPECT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1/c0", 80'000),
            WriteResult::kInvalidArgument);
  // Correct order succeeds.
  EXPECT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1", 80'000),
            WriteResult::kOk);
  EXPECT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1/c0", 80'000),
            WriteResult::kOk);
}

TEST(Hierarchy, CpuQuotaShrinkMustStartAtContainer) {
  Hierarchy h;
  h.Create("kubepods/burstable", "pod1");
  h.Create("kubepods/burstable/pod1", "c0");
  ASSERT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1", 80'000),
            WriteResult::kOk);
  ASSERT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1/c0", 80'000),
            WriteResult::kOk);
  // Shrinking the pod below a child's quota fails — "container first".
  EXPECT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1", 30'000),
            WriteResult::kInvalidArgument);
  EXPECT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1/c0", 30'000),
            WriteResult::kOk);
  EXPECT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1", 30'000),
            WriteResult::kOk);
}

TEST(Hierarchy, MemoryLimitParentBoundEnforced) {
  Hierarchy h;
  h.Create("kubepods/burstable", "pod1");
  h.Create("kubepods/burstable/pod1", "c0");
  ASSERT_EQ(h.WriteMemoryLimit("kubepods/burstable/pod1", 512),
            WriteResult::kOk);
  EXPECT_EQ(h.WriteMemoryLimit("kubepods/burstable/pod1/c0", 1024),
            WriteResult::kInvalidArgument);
  EXPECT_EQ(h.WriteMemoryLimit("kubepods/burstable/pod1/c0", 512),
            WriteResult::kOk);
  EXPECT_EQ(h.WriteMemoryLimit("kubepods/burstable/pod1", 256),
            WriteResult::kInvalidArgument);  // child at 512
}

TEST(Hierarchy, UnlimitedParentAcceptsAnyChild) {
  Hierarchy h;
  h.Create("kubepods/burstable", "pod1");
  h.Create("kubepods/burstable/pod1", "c0");
  // Pod quota unlimited (-1 default) — container can take any value.
  EXPECT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1/c0", 123'000),
            WriteResult::kOk);
}

TEST(Hierarchy, UnlimitedChildUnderLimitedParentRejected) {
  Hierarchy h;
  h.Create("kubepods/burstable", "pod1");
  h.Create("kubepods/burstable/pod1", "c0");
  ASSERT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1/c0", 10'000),
            WriteResult::kOk);
  ASSERT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1", 10'000),
            WriteResult::kOk);
  EXPECT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1/c0", -1),
            WriteResult::kInvalidArgument);
}

TEST(Hierarchy, InvalidKnobValuesRejected) {
  Hierarchy h;
  h.Create("kubepods/burstable", "pod1");
  EXPECT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1", 0),
            WriteResult::kInvalidArgument);
  EXPECT_EQ(h.WriteCpuQuota("kubepods/burstable/pod1", -7),
            WriteResult::kInvalidArgument);
  EXPECT_EQ(h.WriteCpuShares("kubepods/burstable/pod1", 1),
            WriteResult::kInvalidArgument);  // kernel floor is 2
  EXPECT_EQ(h.WriteCpuShares("kubepods/burstable/pod1", 2), WriteResult::kOk);
  EXPECT_EQ(h.WriteMemoryLimit("kubepods/burstable/pod1", 0),
            WriteResult::kInvalidArgument);
  EXPECT_EQ(h.WriteCpuQuota("kubepods/missing", 1000),
            WriteResult::kNoSuchGroup);
}

TEST(Hierarchy, WriteCountOnlyCountsSuccesses) {
  Hierarchy h;
  h.Create("kubepods/burstable", "pod1");
  const auto before = h.write_count();
  h.WriteCpuQuota("kubepods/burstable/pod1", 10'000);   // ok
  h.WriteCpuQuota("kubepods/burstable/pod1", 0);        // invalid
  h.WriteMemoryLimit("kubepods/missing", 100);          // missing
  EXPECT_EQ(h.write_count(), before + 1);
}

TEST(Knobs, CpuLimitMillicores) {
  Knobs k;
  EXPECT_FALSE(k.CpuLimitMillicores().has_value());  // unlimited
  k.cpu_cfs_quota_us = 50'000;
  k.cpu_cfs_period_us = 100'000;
  EXPECT_EQ(k.CpuLimitMillicores().value(), 500);
  k.cpu_cfs_quota_us = 400'000;
  EXPECT_EQ(k.CpuLimitMillicores().value(), 4000);
}

TEST(OpLatency, FullScaleOpMatchesPaper) {
  OpLatencyModel m;
  // Four ordered writes ≈ 23 ms; rebuild ≈ 100×.
  EXPECT_NEAR(ToMilliseconds(m.FullScaleOp()), 23.0, 0.1);
  EXPECT_NEAR(static_cast<double>(m.pod_rebuild) /
                  static_cast<double>(m.FullScaleOp()),
              100.0, 1.0);
}

TEST(Hierarchy, ListPathsContainsEverything) {
  Hierarchy h;
  h.Create("kubepods/burstable", "pod1");
  const auto paths = h.ListPaths();
  EXPECT_NE(std::find(paths.begin(), paths.end(), "kubepods/burstable/pod1"),
            paths.end());
  EXPECT_EQ(paths.size(), 5u);  // root + 3 QoS levels + pod1
}

}  // namespace
}  // namespace tango::cgroup
