// Tests for TangoStorm: streaming scenario generators, the Alibaba trace
// ingester, and the co-location interference model.
//
// The load-bearing contracts: per-seed determinism (a stream is
// byte-identical across runs), shard decomposability (the union of
// per-cluster streams equals the superposed scenario, and ShardEngine
// digests match across shard counts with a scenario configured), and
// interference being *exactly* the identity when disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "eval/scenarios.h"
#include "shard/engine.h"
#include "storm/alibaba.h"
#include "storm/generators.h"
#include "storm/interference.h"
#include "storm/scenario.h"
#include "storm/source.h"
#include "workload/service.h"

namespace tango::storm {
namespace {

constexpr ScenarioKind kAllKinds[] = {
    ScenarioKind::kSteady, ScenarioKind::kFlashCrowd, ScenarioKind::kDiurnal,
    ScenarioKind::kFailover, ScenarioKind::kMobility};

ScenarioConfig SmallScenario(const workload::ServiceCatalog& catalog,
                             std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.catalog = &catalog;
  cfg.num_clusters = 3;
  cfg.horizon = 2 * kSecond;
  cfg.rps_per_cluster = 40.0;
  cfg.seed = seed;
  cfg.spike_at = 500 * kMillisecond;
  cfg.spike_ramp = 100 * kMillisecond;
  cfg.spike_hold = 400 * kMillisecond;
  cfg.spike_decay = 200 * kMillisecond;
  cfg.diurnal_period = kSecond;
  cfg.failover_at = 500 * kMillisecond;
  cfg.failover_for = 600 * kMillisecond;
  cfg.drift_period = kSecond;
  return cfg;
}

bool SameRequest(const workload::Request& a, const workload::Request& b) {
  return a.service == b.service && a.origin == b.origin &&
         a.arrival == b.arrival && a.work_scale == b.work_scale;
}

// ---- seeds ---------------------------------------------------------------

TEST(StormSeed, PureAndCoordinateSensitive) {
  EXPECT_EQ(DeriveStreamSeed(1, 2, 3), DeriveStreamSeed(1, 2, 3));
  EXPECT_NE(DeriveStreamSeed(1, 2, 3), DeriveStreamSeed(2, 2, 3));
  EXPECT_NE(DeriveStreamSeed(1, 2, 3), DeriveStreamSeed(1, 3, 3));
  EXPECT_NE(DeriveStreamSeed(1, 2, 3), DeriveStreamSeed(1, 2, 4));
}

// ---- generator streams ---------------------------------------------------

TEST(StormStream, ArrivalOrderedWithinHorizonAllKinds) {
  const auto catalog = workload::ServiceCatalog::Standard();
  const ScenarioConfig cfg = SmallScenario(catalog);
  for (ScenarioKind kind : kAllKinds) {
    auto source = BuildScenario(kind, cfg);
    workload::Request req;
    SimTime prev = 0;
    int n = 0;
    while (source->NextRequest(&req)) {
      EXPECT_GE(req.arrival, prev) << ScenarioKindName(kind);
      EXPECT_LE(req.arrival, cfg.horizon) << ScenarioKindName(kind);
      EXPECT_GE(req.origin.value, 0);
      EXPECT_LT(req.origin.value, cfg.num_clusters);
      EXPECT_GE(req.work_scale, 0.6);
      EXPECT_LE(req.work_scale, 3.0);
      prev = req.arrival;
      ++n;
    }
    EXPECT_GT(n, 50) << ScenarioKindName(kind);
    // Exhausted streams stay exhausted.
    EXPECT_FALSE(source->NextRequest(&req));
  }
}

TEST(StormStream, DrainIsByteIdenticalPerSeed) {
  const auto catalog = workload::ServiceCatalog::Standard();
  const ScenarioConfig cfg = SmallScenario(catalog);
  for (ScenarioKind kind : kAllKinds) {
    workload::Trace a;
    workload::Trace b;
    auto sa = BuildScenario(kind, cfg);
    auto sb = BuildScenario(kind, cfg);
    Drain(*sa, &a);
    Drain(*sb, &b);
    ASSERT_EQ(a.size(), b.size()) << ScenarioKindName(kind);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      ASSERT_TRUE(SameRequest(a[i], b[i]))
          << ScenarioKindName(kind) << " diverges at " << i;
    }
  }
}

TEST(StormStream, DifferentSeedsProduceDifferentStreams) {
  const auto catalog = workload::ServiceCatalog::Standard();
  workload::Trace a;
  workload::Trace b;
  auto sa = BuildScenario(ScenarioKind::kSteady, SmallScenario(catalog, 7));
  auto sb = BuildScenario(ScenarioKind::kSteady, SmallScenario(catalog, 8));
  Drain(*sa, &a);
  Drain(*sb, &b);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = !SameRequest(a[i], b[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(StormStream, ClusterStreamUnionMatchesScenario) {
  // The property the sharded engine leans on: draining each cluster's
  // stream independently (any grouping) and merging yields exactly the
  // superposed scenario.
  const auto catalog = workload::ServiceCatalog::Standard();
  const ScenarioConfig cfg = SmallScenario(catalog);
  for (ScenarioKind kind : kAllKinds) {
    workload::Trace whole;
    auto scenario = BuildScenario(kind, cfg);
    Drain(*scenario, &whole);

    workload::Trace merged;
    for (int c = 0; c < cfg.num_clusters; ++c) {
      auto part = BuildClusterStream(kind, cfg, ClusterId{c});
      Drain(*part, &merged);  // appends
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const workload::Request& x,
                        const workload::Request& y) {
                       return x.arrival < y.arrival;
                     });
    ASSERT_EQ(merged.size(), whole.size()) << ScenarioKindName(kind);
    for (std::size_t i = 0; i < whole.size(); ++i) {
      ASSERT_TRUE(SameRequest(merged[i], whole[i]))
          << ScenarioKindName(kind) << " diverges at " << i;
    }
  }
}

TEST(StormStream, SuperposePreservesOrderAndCounts) {
  const auto catalog = workload::ServiceCatalog::Standard();
  StreamConfig base;
  base.catalog = &catalog;
  base.rate_rps = 30.0;
  base.horizon = 2 * kSecond;

  std::size_t solo_total = 0;
  std::vector<std::unique_ptr<ScenarioSource>> parts;
  for (int c = 0; c < 4; ++c) {
    StreamConfig cfg = base;
    cfg.origin = ClusterId{c};
    cfg.seed = DeriveStreamSeed(11, c, 0);
    workload::Trace t;
    PoissonSource solo(cfg);
    solo_total += Drain(solo, &t);
    parts.push_back(std::make_unique<PoissonSource>(cfg));
  }
  Superpose merged(std::move(parts));
  workload::Request req;
  SimTime prev = 0;
  std::size_t merged_total = 0;
  while (merged.NextRequest(&req)) {
    EXPECT_GE(req.arrival, prev);
    prev = req.arrival;
    ++merged_total;
  }
  EXPECT_EQ(merged_total, solo_total);
}

TEST(StormStream, PoissonRateRoughlyMatches) {
  const auto catalog = workload::ServiceCatalog::Standard();
  StreamConfig cfg;
  cfg.catalog = &catalog;
  cfg.rate_rps = 100.0;
  cfg.horizon = 10 * kSecond;
  cfg.seed = 3;
  PoissonSource source(cfg);
  workload::Trace t;
  const auto n = static_cast<double>(Drain(source, &t));
  EXPECT_GT(n, 0.7 * 1000.0);
  EXPECT_LT(n, 1.3 * 1000.0);
}

TEST(StormStream, DrainRecordsGeneratorMetrics) {
  const auto catalog = workload::ServiceCatalog::Standard();
  scope::MetricRegistry metrics;
  auto source =
      BuildScenario(ScenarioKind::kSteady, SmallScenario(catalog));
  workload::Trace t;
  const std::size_t n = Drain(*source, &t, &metrics);
  EXPECT_EQ(t.size(), n);
  EXPECT_EQ(metrics.GetCounter("storm.drained").value(),
            static_cast<std::int64_t>(n));
  EXPECT_EQ(metrics.GetHistogram("storm.drain_batch").count(), 1);
}

// ---- envelopes -----------------------------------------------------------

TEST(StormEnvelope, SpikeShape) {
  Envelope e;
  e.kind = Envelope::Kind::kSpike;
  e.t0 = 1000;
  e.ramp = 500;
  e.t1 = 3000;
  e.decay = 1000;
  e.mult = 4.0;
  EXPECT_DOUBLE_EQ(e.Value(0), 1.0);
  EXPECT_DOUBLE_EQ(e.Value(999), 1.0);
  EXPECT_DOUBLE_EQ(e.Value(1500), 4.0);  // ramp complete
  EXPECT_DOUBLE_EQ(e.Value(2999), 4.0);  // holding
  EXPECT_LT(e.Value(4000), 4.0);         // decaying
  EXPECT_GT(e.Value(4000), 1.0);
  EXPECT_DOUBLE_EQ(e.MaxValue(), 4.0);
  // Mid-ramp is between baseline and peak.
  EXPECT_GT(e.Value(1250), 1.0);
  EXPECT_LT(e.Value(1250), 4.0);
}

TEST(StormEnvelope, DiurnalBoundsAndWindowAndDrift) {
  Envelope d;
  d.kind = Envelope::Kind::kDiurnal;
  d.period = 8000;
  d.amplitude = 0.6;
  for (SimTime t = 0; t < 16000; t += 250) {
    EXPECT_GE(d.Value(t), 1.0 - 0.6 - 1e-12);
    EXPECT_LE(d.Value(t), 1.0 + 0.6 + 1e-12);
  }
  EXPECT_DOUBLE_EQ(d.MaxValue(), 1.6);

  Envelope w;
  w.kind = Envelope::Kind::kWindow;
  w.t0 = 100;
  w.t1 = 200;
  w.mult = 2.5;
  EXPECT_DOUBLE_EQ(w.Value(50), 1.0);
  EXPECT_DOUBLE_EQ(w.Value(150), 2.5);
  EXPECT_DOUBLE_EQ(w.Value(200), 1.0);
  EXPECT_DOUBLE_EQ(w.MaxValue(), 2.5);

  Envelope m;
  m.kind = Envelope::Kind::kDriftWave;
  m.period = 6000;
  m.floor = 0.3;
  m.phase = 0.5;
  for (SimTime t = 0; t < 12000; t += 125) {
    EXPECT_GE(m.Value(t), 0.3 - 1e-12);
    EXPECT_LE(m.Value(t), 1.0 + 1e-12);
  }
  // The hotspot passes over this cluster's ring position once per period.
  EXPECT_NEAR(m.Value(3000), 1.0, 1e-9);
  EXPECT_NEAR(m.Value(0), 0.3, 1e-9);
}

// ---- interference model --------------------------------------------------

TEST(StormInterference, StandardIsMonotoneAndAboveOne) {
  const auto catalog = workload::ServiceCatalog::Standard();
  const InterferenceModel model = InterferenceModel::Standard(catalog);
  EXPECT_GT(model.size(), 0);
  EXPECT_TRUE(model.CheckMonotone());
  const ServiceId victim = catalog.LcServices().front();
  EXPECT_DOUBLE_EQ(model.Inflation(victim, PressureVec{}), 1.0);
  const double light = model.Inflation(victim, {0.2, 0.2, 0.2});
  const double heavy = model.Inflation(victim, {2.0, 2.0, 2.0});
  EXPECT_GT(light, 1.0);
  EXPECT_GT(heavy, light);
  // Saturating: bounded by 1 + total sensitivity mass.
  EXPECT_LT(heavy, 2.0);
}

TEST(StormInterference, ZeroSensitivityIsExactIdentity) {
  const auto catalog = workload::ServiceCatalog::Standard();
  InterferenceModel model;
  for (const auto& spec : catalog.all()) {
    model.SetProfile(spec.id, SensitivityProfile{});
  }
  EXPECT_TRUE(model.CheckMonotone());
  for (const auto& spec : catalog.all()) {
    EXPECT_DOUBLE_EQ(model.Inflation(spec.id, {3.0, 7.0, 0.5}), 1.0);
  }
}

TEST(StormInterference, LcMoreSensitiveThanBe) {
  const auto catalog = workload::ServiceCatalog::Standard();
  const InterferenceModel model = InterferenceModel::Standard(catalog);
  const PressureVec p{1.0, 1.0, 1.0};
  EXPECT_GT(model.Inflation(catalog.LcServices().front(), p),
            model.Inflation(catalog.BeServices().front(), p));
}

// ---- sharded engine integration ------------------------------------------

shard::EngineConfig StormEngineConfig(const ScenarioConfig* scenario,
                                      ScenarioKind kind,
                                      std::uint64_t seed) {
  shard::EngineConfig cfg;
  for (int c = 0; c < scenario->num_clusters; ++c) {
    k8s::ClusterSpec spec;
    spec.num_workers = 4 + (c % 2) * 2;
    cfg.clusters.push_back(spec);
  }
  cfg.model.catalog = scenario->catalog;
  cfg.model.scenario = scenario;
  cfg.model.scenario_kind = kind;
  cfg.duration = scenario->horizon;
  cfg.seed = seed;
  return cfg;
}

TEST(StormShard, ScenarioStreamsByteIdenticalAcrossShardCounts) {
  const auto catalog = workload::ServiceCatalog::Standard();
  ScenarioConfig scenario = SmallScenario(catalog);
  scenario.num_clusters = 6;
  for (ScenarioKind kind : kAllKinds) {
    shard::RunResult serial;
    {
      shard::ShardEngine engine(StormEngineConfig(&scenario, kind, 21));
      serial = engine.Run();
    }
    EXPECT_GT(serial.totals.lc_arrived, 0) << ScenarioKindName(kind);
    EXPECT_GT(serial.totals.be_arrived, 0) << ScenarioKindName(kind);
    for (int shards : {2, 3}) {
      shard::EngineConfig cfg = StormEngineConfig(&scenario, kind, 21);
      cfg.num_shards = shards;
      shard::ShardEngine engine(std::move(cfg));
      const shard::RunResult parallel = engine.Run();
      EXPECT_EQ(parallel.digest, serial.digest)
          << ScenarioKindName(kind) << " shards=" << shards;
      EXPECT_EQ(parallel.cluster_digests, serial.cluster_digests);
      EXPECT_EQ(parallel.totals.lc_completed, serial.totals.lc_completed);
    }
  }
}

TEST(StormShard, DisabledInterferenceIsByteIdentical) {
  // A model whose profiles are all zero must produce the exact run a null
  // model does — the inflation hook is the identity, not merely close.
  const auto catalog = workload::ServiceCatalog::Standard();
  ScenarioConfig scenario = SmallScenario(catalog);
  InterferenceModel zero;
  for (const auto& spec : catalog.all()) {
    zero.SetProfile(spec.id, SensitivityProfile{});
  }

  shard::EngineConfig off = StormEngineConfig(
      &scenario, ScenarioKind::kFlashCrowd, 33);
  shard::EngineConfig on = off;
  on.model.interference = &zero;
  shard::ShardEngine a(std::move(off));
  shard::ShardEngine b(std::move(on));
  const shard::RunResult ra = a.Run();
  const shard::RunResult rb = b.Run();
  EXPECT_EQ(ra.digest, rb.digest);
  EXPECT_EQ(ra.cluster_digests, rb.cluster_digests);
  EXPECT_EQ(ra.totals.lc_completed, rb.totals.lc_completed);
  EXPECT_EQ(ra.totals.latency_sum_us, rb.totals.latency_sum_us);
}

TEST(StormShard, InterferenceInflatesLatencyWhenEnabled) {
  const auto catalog = workload::ServiceCatalog::Standard();
  ScenarioConfig scenario = SmallScenario(catalog);
  scenario.rps_per_cluster = 120.0;  // force co-location on every worker
  const InterferenceModel model = InterferenceModel::Standard(catalog);

  shard::EngineConfig off = StormEngineConfig(
      &scenario, ScenarioKind::kSteady, 9);
  shard::EngineConfig on = off;
  on.model.interference = &model;
  shard::ShardEngine a(std::move(off));
  shard::ShardEngine b(std::move(on));
  const shard::RunResult ra = a.Run();
  const shard::RunResult rb = b.Run();
  ASSERT_GT(ra.totals.lc_completed, 0);
  ASSERT_GT(rb.totals.lc_completed, 0);
  EXPECT_GT(rb.mean_latency_ms(), ra.mean_latency_ms());
}

// ---- eval scenario bundles -----------------------------------------------

TEST(StormScenarios, BundleDrainsEveryFamily) {
  const auto catalog = workload::ServiceCatalog::Standard();
  const auto clusters = eval::PhysicalClusters(4);
  const ScenarioConfig cfg = eval::DefaultScenarioConfig(
      catalog, 4, 4 * kSecond, 5);
  for (ScenarioKind kind : kAllKinds) {
    const eval::ScenarioBundle bundle =
        eval::BuildScenarioBundle(kind, cfg, clusters);
    EXPECT_GT(bundle.trace.size(), 100u) << ScenarioKindName(kind);
    EXPECT_EQ(bundle.has_faults, kind == ScenarioKind::kFailover);
  }
}

TEST(StormScenarios, FailoverBundleFailsTheScenarioRegion) {
  const auto catalog = workload::ServiceCatalog::Standard();
  const auto clusters = eval::PhysicalClusters(4);
  ScenarioConfig cfg = eval::DefaultScenarioConfig(catalog, 4, 4 * kSecond, 5);
  cfg.failover_cluster = ClusterId{2};
  const eval::ScenarioBundle bundle =
      eval::BuildScenarioBundle(ScenarioKind::kFailover, cfg, clusters);
  ASSERT_TRUE(bundle.has_faults);
  // Master fail/recover plus crash/recover per worker of the region.
  const auto events = bundle.faults.events();
  EXPECT_EQ(events.size(),
            2u * (1u + static_cast<std::size_t>(clusters[2].num_workers)));
  for (const auto& ev : events) {
    const bool master = ev.kind == fault::FaultKind::kMasterFail ||
                        ev.kind == fault::FaultKind::kMasterRecover;
    if (master) EXPECT_EQ(ev.cluster_a, ClusterId{2});
  }
}

// ---- Alibaba ingestion ---------------------------------------------------

AlibabaConfig AlibabaCfg(const workload::ServiceCatalog& catalog) {
  AlibabaConfig cfg;
  cfg.catalog = &catalog;
  cfg.num_clusters = 4;
  return cfg;
}

TEST(StormAlibaba, SyntheticCsvParsesSortedAndBounded) {
  const auto catalog = workload::ServiceCatalog::Standard();
  std::istringstream in(SyntheticAlibabaCsv(400, 1));
  const auto trace = ReadAlibabaBatchCsv(in, AlibabaCfg(catalog));
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->size(), 400u);  // Waiting rows skipped, Terminated kept
  for (std::size_t i = 0; i < trace->size(); ++i) {
    EXPECT_EQ((*trace)[i].id.value, static_cast<std::int32_t>(i));
    if (i > 0) EXPECT_GE((*trace)[i].arrival, (*trace)[i - 1].arrival);
    EXPECT_GE((*trace)[i].origin.value, 0);
    EXPECT_LT((*trace)[i].origin.value, 4);
    EXPECT_GE((*trace)[i].work_scale, 0.6);
    EXPECT_LE((*trace)[i].work_scale, 3.0);
  }
  EXPECT_EQ((*trace)[0].arrival, 0);  // normalized to earliest row
}

TEST(StormAlibaba, DurationCutoffSplitsLcFromBe) {
  const auto catalog = workload::ServiceCatalog::Standard();
  std::istringstream in(
      "short_task,1,job_a,A,Terminated,100,130,100,0.5\n"
      "long_task,1,job_b,A,Terminated,100,5000,200,0.5\n");
  const auto trace = ReadAlibabaBatchCsv(in, AlibabaCfg(catalog));
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->size(), 2u);
  EXPECT_TRUE(catalog.Get((*trace)[0].service).is_lc());
  EXPECT_FALSE(catalog.Get((*trace)[1].service).is_lc());
}

TEST(StormAlibaba, SameJobMapsToSameOrigin) {
  const auto catalog = workload::ServiceCatalog::Standard();
  std::istringstream in(
      "t1,1,job_x,A,Terminated,100,130,100,0.5\n"
      "t2,1,job_x,A,Terminated,200,260,100,0.5\n"
      "t3,1,job_x,A,Terminated,300,390,100,0.5\n");
  const auto trace = ReadAlibabaBatchCsv(in, AlibabaCfg(catalog));
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->size(), 3u);
  EXPECT_EQ((*trace)[0].origin, (*trace)[1].origin);
  EXPECT_EQ((*trace)[1].origin, (*trace)[2].origin);
}

TEST(StormAlibaba, RejectsWrongColumnCountWithLine) {
  const auto catalog = workload::ServiceCatalog::Standard();
  std::istringstream in(
      "t1,1,job_a,A,Terminated,100,130,100,0.5\n"
      "t2,1,job_a,A,Terminated,100,130\n");
  workload::TraceParseError err;
  EXPECT_FALSE(ReadAlibabaBatchCsv(in, AlibabaCfg(catalog), &err));
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("malformed"), std::string::npos);
}

TEST(StormAlibaba, RejectsJunkNumericsWithLine) {
  const auto catalog = workload::ServiceCatalog::Standard();
  std::istringstream in(
      "t1,1,job_a,A,Terminated,100,130,100,0.5\n"
      "t2,1,job_a,A,Terminated,100,130,12abc,0.5\n");
  workload::TraceParseError err;
  EXPECT_FALSE(ReadAlibabaBatchCsv(in, AlibabaCfg(catalog), &err));
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("junk numeric"), std::string::npos);
}

TEST(StormAlibaba, RejectsEndBeforeStartWithLine) {
  const auto catalog = workload::ServiceCatalog::Standard();
  std::istringstream in("t1,1,job_a,A,Terminated,500,130,100,0.5\n");
  workload::TraceParseError err;
  EXPECT_FALSE(ReadAlibabaBatchCsv(in, AlibabaCfg(catalog), &err));
  EXPECT_EQ(err.line, 1);
  EXPECT_NE(err.message.find("out-of-range"), std::string::npos);
}

TEST(StormAlibaba, RejectsEmptyAndUnterminatedInputs) {
  const auto catalog = workload::ServiceCatalog::Standard();
  std::istringstream empty("");
  workload::TraceParseError err;
  EXPECT_FALSE(ReadAlibabaBatchCsv(empty, AlibabaCfg(catalog), &err));
  EXPECT_NE(err.message.find("no Terminated rows"), std::string::npos);

  std::istringstream waiting(
      "t1,1,job_a,A,Waiting,0,0,100,0.5\n"
      "t2,1,job_a,A,Running,0,0,100,0.5\n");
  EXPECT_FALSE(ReadAlibabaBatchCsv(waiting, AlibabaCfg(catalog), &err));
  EXPECT_EQ(err.line, 2);
}

TEST(StormAlibaba, RejectsBadIntensityAndMissingFile) {
  const auto catalog = workload::ServiceCatalog::Standard();
  AlibabaConfig cfg = AlibabaCfg(catalog);
  cfg.intensity = 0.0;
  std::istringstream in("t1,1,job_a,A,Terminated,100,130,100,0.5\n");
  workload::TraceParseError err;
  EXPECT_FALSE(ReadAlibabaBatchCsv(in, cfg, &err));
  EXPECT_EQ(err.line, 0);
  EXPECT_NE(err.message.find("intensity"), std::string::npos);

  EXPECT_FALSE(ReadAlibabaBatchCsvFile("/tmp/definitely_missing_alibaba.csv",
                                       AlibabaCfg(catalog), &err));
  EXPECT_EQ(err.line, 0);
  EXPECT_NE(err.message.find("cannot open"), std::string::npos);
}

TEST(StormAlibaba, ToleratesPastedHeaderLine) {
  const auto catalog = workload::ServiceCatalog::Standard();
  std::istringstream in(
      "task_name,instance_num,job_name,task_type,status,start_time,"
      "end_time,plan_cpu,plan_mem\n"
      "t1,1,job_a,A,Terminated,100,130,100,0.5\n");
  const auto trace = ReadAlibabaBatchCsv(in, AlibabaCfg(catalog));
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->size(), 1u);
}

TEST(StormAlibaba, IntensityRescalesArrivals) {
  const auto catalog = workload::ServiceCatalog::Standard();
  const std::string csv = SyntheticAlibabaCsv(100, 2);
  std::istringstream a(csv);
  std::istringstream b(csv);
  AlibabaConfig fast = AlibabaCfg(catalog);
  fast.intensity = 10.0;
  const auto base = ReadAlibabaBatchCsv(a, AlibabaCfg(catalog));
  const auto scaled = ReadAlibabaBatchCsv(b, fast);
  ASSERT_TRUE(base.has_value() && scaled.has_value());
  ASSERT_EQ(base->size(), scaled->size());
  EXPECT_EQ(scaled->back().arrival,
            static_cast<SimTime>(
                static_cast<double>(base->back().arrival) / 10.0));

  // The post-hoc rescaler composes the same way: 1x .. 1000x.
  const workload::Trace x1000 = RescaleIntensity(*base, 1000.0);
  EXPECT_EQ(x1000.back().arrival, base->back().arrival / 1000);
  EXPECT_EQ(x1000.size(), base->size());
}

TEST(StormAlibaba, DownsampleKeepsRoughFractionAndRenumbers) {
  const auto catalog = workload::ServiceCatalog::Standard();
  std::istringstream in(SyntheticAlibabaCsv(1000, 3));
  const auto base = ReadAlibabaBatchCsv(in, AlibabaCfg(catalog));
  ASSERT_TRUE(base.has_value());
  const workload::Trace half = DownsampleTrace(*base, 0.5, 17);
  EXPECT_GT(half.size(), 350u);
  EXPECT_LT(half.size(), 650u);
  for (std::size_t i = 0; i < half.size(); ++i) {
    EXPECT_EQ(half[i].id.value, static_cast<std::int32_t>(i));
  }
  // Deterministic per seed.
  const workload::Trace again = DownsampleTrace(*base, 0.5, 17);
  EXPECT_EQ(again.size(), half.size());
}

}  // namespace
}  // namespace tango::storm
