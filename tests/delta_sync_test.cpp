// Delta state-sync under faults: the fast path (version-gated snapshot
// pushes, cached sync scopes, incremental metrics) must produce storages —
// and simulation outcomes — identical to the full-rebuild reference path
// through node crashes, link cuts, and master failover.
#include <gtest/gtest.h>

#include <memory>

#include "eval/harness.h"
#include "k8s/system.h"
#include "sched/be_baselines.h"
#include "sched/lc_baselines.h"

namespace tango::k8s {
namespace {

using workload::Request;
using workload::ServiceCatalog;

/// Compare snapshots field-by-field, excluding `recorded_at`: the delta
/// path deliberately leaves a clean node's stored timestamp stale (no
/// consumer reads it), so identity is defined over the decision-relevant
/// fields.
void ExpectSameSnapshot(const metrics::NodeSnapshot& a,
                        const metrics::NodeSnapshot& b) {
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.cluster, b.cluster);
  EXPECT_EQ(a.cpu_total, b.cpu_total);
  EXPECT_EQ(a.cpu_available, b.cpu_available);
  EXPECT_EQ(a.mem_total, b.mem_total);
  EXPECT_EQ(a.mem_available, b.mem_available);
  EXPECT_EQ(a.cpu_available_lc, b.cpu_available_lc);
  EXPECT_EQ(a.mem_available_lc, b.mem_available_lc);
  EXPECT_EQ(a.running_lc, b.running_lc);
  EXPECT_EQ(a.running_be, b.running_be);
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.alive, b.alive);
  EXPECT_EQ(a.reachable, b.reachable);
  EXPECT_EQ(a.draining, b.draining);
}

void ExpectSameStorage(const metrics::StateStorage& fast,
                       const metrics::StateStorage& slow, int num_clusters) {
  const auto fa = fast.All();
  const auto sa = slow.All();
  ASSERT_EQ(fa.size(), sa.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ExpectSameSnapshot(fa[i], sa[i]);
  }
  for (int c = 0; c < num_clusters; ++c) {
    EXPECT_EQ(fast.Rtt(ClusterId{c}).has_value(),
              slow.Rtt(ClusterId{c}).has_value());
    if (fast.Rtt(ClusterId{c}).has_value()) {
      EXPECT_EQ(*fast.Rtt(ClusterId{c}), *slow.Rtt(ClusterId{c}));
    }
  }
}

/// Two systems built from the same config except for `fast_path`, driven in
/// lockstep through the same trace and fault script.
struct DeltaSyncFixture : public ::testing::Test {
  void SetUp() override {
    catalog = ServiceCatalog::Standard();
    cfg.clusters = eval::PhysicalClusters(3);
    cfg.region_km = 450.0;  // everyone within LC dispatch range
    cfg.seed = 11;
    cfg.fast_path = true;
    fast = std::make_unique<EdgeCloudSystem>(cfg, &catalog);
    SystemConfig slow_cfg = cfg;
    slow_cfg.fast_path = false;
    slow = std::make_unique<EdgeCloudSystem>(slow_cfg, &catalog);
    for (EdgeCloudSystem* s : {fast.get(), slow.get()}) {
      lcs.push_back(std::make_unique<sched::LoadGreedyLcScheduler>(&catalog));
      bes.push_back(std::make_unique<sched::LoadGreedyBeScheduler>(&catalog));
      s->SetLcScheduler(lcs.back().get());
      s->SetBeScheduler(bes.back().get());
    }
  }

  workload::Trace MixedTrace(int count) {
    workload::Trace t;
    for (int i = 0; i < count; ++i) {
      Request r;
      r.id = RequestId{i};
      r.service = i % 3 == 2 ? ServiceId{9} : ServiceId{3};
      r.origin = ClusterId{i % 3};
      r.arrival = i * 20 * kMillisecond;
      r.work_scale = 1.0;
      t.push_back(r);
    }
    return t;
  }

  void SubmitBoth(const workload::Trace& t) {
    fast->SubmitTrace(t);
    slow->SubmitTrace(t);
  }

  void RunBoth(SimTime until) {
    fast->Run(until);
    slow->Run(until);
  }

  void Both(const std::function<void(EdgeCloudSystem&)>& f) {
    f(*fast);
    f(*slow);
  }

  void ExpectStoragesIdentical() {
    const int n = fast->num_clusters();
    for (int c = 0; c < n; ++c) {
      ExpectSameStorage(fast->LcStorage(ClusterId{c}),
                        slow->LcStorage(ClusterId{c}), n);
    }
    ExpectSameStorage(fast->BeStorage(), slow->BeStorage(), n);
  }

  void ExpectOutcomesIdentical() {
    const auto& fr = fast->records();
    const auto& sr = slow->records();
    ASSERT_EQ(fr.size(), sr.size());
    for (std::size_t i = 0; i < fr.size(); ++i) {
      EXPECT_EQ(fr[i].outcome, sr[i].outcome) << "request " << i;
      EXPECT_EQ(fr[i].target, sr[i].target) << "request " << i;
      EXPECT_EQ(fr[i].latency, sr[i].latency) << "request " << i;
      EXPECT_EQ(fr[i].qos_met, sr[i].qos_met) << "request " << i;
    }
  }

  SystemConfig cfg;
  ServiceCatalog catalog;
  std::unique_ptr<EdgeCloudSystem> fast;
  std::unique_ptr<EdgeCloudSystem> slow;
  std::vector<std::unique_ptr<LcScheduler>> lcs;
  std::vector<std::unique_ptr<BeScheduler>> bes;
};

TEST_F(DeltaSyncFixture, QuietSystemSkipsCleanPushes) {
  RunBoth(2 * kSecond);
  ExpectStoragesIdentical();
  // With no workload at all, after the first sync every node is clean: the
  // fast path must be skipping, the slow path never does.
  EXPECT_GT(fast->sync_stats().pushes_skipped, 0);
  EXPECT_LT(fast->sync_stats().pushes, slow->sync_stats().pushes);
  EXPECT_EQ(slow->sync_stats().pushes_skipped, 0);
}

TEST_F(DeltaSyncFixture, BusySystemStoragesMatch) {
  SubmitBoth(MixedTrace(60));
  RunBoth(5 * kSecond);
  ExpectStoragesIdentical();
  ExpectOutcomesIdentical();
}

TEST_F(DeltaSyncFixture, CrashBetweenSyncPeriodsPropagatesOnNextSync) {
  SubmitBoth(MixedTrace(30));
  RunBoth(1 * kSecond);
  // Crash mid-period: the death is invisible to storages until the next
  // sync (failure-detection semantics), then the version bump pushes it.
  RunBoth(1 * kSecond + 50 * kMillisecond);
  Both([](EdgeCloudSystem& s) { s.CrashWorker(NodeId{2}); });
  const auto* before = fast->BeStorage().Find(NodeId{2});
  ASSERT_NE(before, nullptr);
  EXPECT_TRUE(before->alive);  // not yet synced
  RunBoth(1 * kSecond + 200 * kMillisecond);  // next sync has passed
  const auto* after_fast = fast->BeStorage().Find(NodeId{2});
  const auto* after_slow = slow->BeStorage().Find(NodeId{2});
  ASSERT_NE(after_fast, nullptr);
  ASSERT_NE(after_slow, nullptr);
  EXPECT_FALSE(after_fast->alive);
  EXPECT_FALSE(after_slow->alive);
  ExpectStoragesIdentical();
  // Recovery re-advertises capacity immediately (node-ready push).
  Both([](EdgeCloudSystem& s) { s.RecoverWorker(NodeId{2}); });
  EXPECT_TRUE(fast->BeStorage().Find(NodeId{2})->alive);
  RunBoth(4 * kSecond);
  ExpectStoragesIdentical();
  ExpectOutcomesIdentical();
}

TEST_F(DeltaSyncFixture, LinkCutFreezesFarSideSnapshots) {
  SubmitBoth(MixedTrace(45));
  RunBoth(1 * kSecond);
  LinkFault cut;
  cut.cut = true;
  Both([&](EdgeCloudSystem& s) {
    s.SetLinkFault(ClusterId{0}, ClusterId{1}, cut);
  });
  RunBoth(2 * kSecond);
  // Cluster 0's view of cluster 1 is frozen and unreachable; both paths
  // must freeze the same content.
  const auto frozen_fast = fast->LcStorage(ClusterId{0});
  for (const auto& snap : frozen_fast.ForCluster(ClusterId{1})) {
    EXPECT_FALSE(snap.reachable);
  }
  ExpectStoragesIdentical();
  Both([](EdgeCloudSystem& s) {
    s.ClearLinkFault(ClusterId{0}, ClusterId{1});
  });
  RunBoth(4 * kSecond);
  for (const auto& snap :
       fast->LcStorage(ClusterId{0}).ForCluster(ClusterId{1})) {
    EXPECT_TRUE(snap.reachable);
  }
  ExpectStoragesIdentical();
  ExpectOutcomesIdentical();
}

TEST_F(DeltaSyncFixture, MasterFailoverForcesFullRepush) {
  SubmitBoth(MixedTrace(45));
  RunBoth(1 * kSecond);
  const ClusterId central = fast->acting_central();
  Both([&](EdgeCloudSystem& s) { s.FailMaster(central); });
  EXPECT_NE(fast->acting_central(), central);
  EXPECT_EQ(fast->acting_central(), slow->acting_central());
  EXPECT_GT(fast->sync_stats().full_resyncs, 0);
  RunBoth(2 * kSecond);
  ExpectStoragesIdentical();
  Both([&](EdgeCloudSystem& s) { s.RecoverMaster(central); });
  EXPECT_EQ(fast->acting_central(), central);  // original central reclaims
  RunBoth(4 * kSecond);
  ExpectStoragesIdentical();
  ExpectOutcomesIdentical();
}

TEST_F(DeltaSyncFixture, DrainUndrainKeepsStoragesIdentical) {
  SubmitBoth(MixedTrace(30));
  RunBoth(1 * kSecond);
  Both([](EdgeCloudSystem& s) { s.DrainWorker(NodeId{3}); });
  RunBoth(2 * kSecond);
  const auto* drained = fast->BeStorage().Find(NodeId{3});
  ASSERT_NE(drained, nullptr);
  EXPECT_TRUE(drained->draining);
  EXPECT_EQ(drained->cpu_available, 0);
  ExpectStoragesIdentical();
  Both([](EdgeCloudSystem& s) { s.UndrainWorker(NodeId{3}); });
  RunBoth(4 * kSecond);
  ExpectStoragesIdentical();
  ExpectOutcomesIdentical();
}

TEST_F(DeltaSyncFixture, IncrementalMetricsMatchFullScan) {
  SubmitBoth(MixedTrace(60));
  RunBoth(6 * kSecond);
  const auto& fp = fast->periods();
  const auto& sp = slow->periods();
  ASSERT_EQ(fp.size(), sp.size());
  for (std::size_t i = 0; i < fp.size(); ++i) {
    EXPECT_EQ(fp[i].util_total, sp[i].util_total) << "period " << i;
    EXPECT_EQ(fp[i].util_lc, sp[i].util_lc) << "period " << i;
    EXPECT_EQ(fp[i].util_be, sp[i].util_be) << "period " << i;
  }
}

}  // namespace
}  // namespace tango::k8s