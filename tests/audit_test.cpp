// TangoAudit seeded-bug coverage: every checker must be provably *live* —
// each test plants one corrupt state (via the #if TANGO_AUDIT test hooks or
// by feeding a pure-data checker violating values) and expects the abort
// with the structured "AUDIT VIOLATION" report. When the build has audit
// off, the same translation unit instead proves the layer is inert: the
// checkers no-op on violating input and the check counter stays zero.

#include <gtest/gtest.h>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "cgroup/cgroup.h"
#include "flow/mcmf.h"
#include "sim/simulator.h"

namespace tango {
namespace {

using audit::checks::DvpaOrderChecker;
using Level = DvpaOrderChecker::Level;

#if !defined(TANGO_AUDIT)

TEST(AuditDisabled, CheckersAreInert) {
  EXPECT_FALSE(audit::kEnabled);
  // Blatant violations must be ignored: the checks compile to nothing.
  audit::checks::CheckNodeConservation(0, 1, /*cpu_capacity=*/1000,
                                       /*cpu_granted=*/9999, 100, 9999);
  audit::checks::CheckUsageCache(0, 1, "cpu_in_use", 5, 7);
  audit::checks::CheckLcTargetUsable(0, 1, /*usable=*/false);
  audit::checks::CheckUniqueAssignment(0, 1, /*already_assigned=*/true);
  audit::checks::CheckVersionMonotonic(0, 1, /*seen=*/9, /*current=*/3);
  audit::checks::CheckDeltaIdentity(0, 1, /*contents_match=*/false);
  audit::checks::CheckCgroupBound(100, 200, "cpu.cfs_quota_us", "p/c");
  DvpaOrderChecker order(0, 1, 2);
  order.BeginKind("cpu.cfs_quota_us", 100, 50);  // shrink
  order.OnWrite(Level::kPod, false);             // wrong order AND rejected
  order.OnWrite(Level::kContainer, false);
  EXPECT_EQ(audit::checks_run(), 0);
}

TEST(AuditDisabled, RegistryIgnoresRegistration) {
  audit::Registry reg;
  reg.Register("never", [] { FAIL() << "must not be stored when off"; });
  EXPECT_EQ(reg.size(), 0u);
  reg.RunAll();
}

#else  // TANGO_AUDIT

TEST(AuditCore, PassingChecksCountAndDoNotAbort) {
  const std::int64_t before = audit::checks_run();
  audit::checks::CheckNodeConservation(5, 1, 1000, 800, 4096, 2048);
  audit::checks::CheckUsageCache(5, 1, "cpu_in_use", 42, 42);
  audit::checks::CheckVersionMonotonic(5, 1, 3, 7);
  EXPECT_GT(audit::checks_run(), before);
}

TEST(AuditCore, RegistryStoresAndRunsCheckers) {
  audit::Registry reg;
  int runs = 0;
  reg.Register("count", [&runs] { ++runs; });
  EXPECT_EQ(reg.size(), 1u);
  reg.RunAll();
  reg.RunAll();
  EXPECT_EQ(runs, 2);
}

using AuditDeathTest = ::testing::Test;

TEST(AuditDeathTest, NodeCpuConservation) {
  EXPECT_DEATH(audit::checks::CheckNodeConservation(7, 3, 1000, 1500, 4096,
                                                    100),
               "AUDIT VIOLATION.*node.cpu_conservation");
}

TEST(AuditDeathTest, NodeMemConservation) {
  EXPECT_DEATH(audit::checks::CheckNodeConservation(7, 3, 1000, 500, 4096,
                                                    8192),
               "AUDIT VIOLATION.*node.mem_conservation");
}

TEST(AuditDeathTest, UsageCacheDrift) {
  EXPECT_DEATH(audit::checks::CheckUsageCache(7, 3, "cpu_in_use", 100, 90),
               "AUDIT VIOLATION.*node.usage_cache");
}

TEST(AuditDeathTest, LcRoutedToDeadNode) {
  EXPECT_DEATH(audit::checks::CheckLcTargetUsable(7, 3, false),
               "AUDIT VIOLATION.*sched.lc_target_usable");
}

TEST(AuditDeathTest, DuplicateAssignment) {
  EXPECT_DEATH(audit::checks::CheckUniqueAssignment(7, 11, true),
               "AUDIT VIOLATION.*sched.unique_assignment");
}

TEST(AuditDeathTest, SeenVersionAheadOfWorker) {
  EXPECT_DEATH(audit::checks::CheckVersionMonotonic(7, 3, 9, 3),
               "AUDIT VIOLATION.*sync.version_monotonic");
}

TEST(AuditDeathTest, DeltaSkipWithStaleContent) {
  EXPECT_DEATH(audit::checks::CheckDeltaIdentity(7, 3, false),
               "AUDIT VIOLATION.*sync.delta_identity");
}

// --- D-VPA ordered-write protocol ---------------------------------------

TEST(AuditDeathTest, DvpaShrinkWritesPodFirst) {
  DvpaOrderChecker order(7, 3, 1);
  order.BeginKind("cpu.cfs_quota_us", /*old_pod_bound=*/100'000,
                  /*new_bound=*/50'000);
  EXPECT_DEATH(order.OnWrite(Level::kPod, true),
               "AUDIT VIOLATION.*dvpa.shrink_order");
}

TEST(AuditDeathTest, DvpaExpandWritesContainerFirst) {
  DvpaOrderChecker order(7, 3, 1);
  order.BeginKind("memory.limit_in_bytes", /*old_pod_bound=*/512,
                  /*new_bound=*/1024);
  EXPECT_DEATH(order.OnWrite(Level::kContainer, true),
               "AUDIT VIOLATION.*dvpa.expand_order");
}

TEST(AuditDeathTest, DvpaRejectedWrite) {
  DvpaOrderChecker order(7, 3, 1);
  order.BeginKind("cpu.cfs_quota_us", 100'000, 200'000);
  EXPECT_DEATH(order.OnWrite(Level::kPod, /*ok=*/false),
               "AUDIT VIOLATION.*dvpa.write_rejected");
}

TEST(AuditDeathTest, DvpaDuplicateWrite) {
  DvpaOrderChecker order(7, 3, 1);
  order.BeginKind("cpu.cfs_quota_us", 100'000, 200'000);
  order.OnWrite(Level::kPod, true);
  EXPECT_DEATH(order.OnWrite(Level::kPod, true),
               "AUDIT VIOLATION.*dvpa.duplicate_write");
}

TEST(AuditCore, DvpaLegalOrdersPass) {
  {
    DvpaOrderChecker order(7, 3, 1);  // expansion: pod then container
    order.BeginKind("cpu.cfs_quota_us", 100'000, 200'000);
    order.OnWrite(Level::kPod, true);
    order.OnWrite(Level::kContainer, true);
  }
  {
    DvpaOrderChecker order(7, 3, 1);  // shrink: container then pod
    order.BeginKind("cpu.cfs_quota_us", 200'000, 100'000);
    order.OnWrite(Level::kContainer, true);
    order.OnWrite(Level::kPod, true);
  }
  {
    DvpaOrderChecker order(7, 3, 1);  // unlimited old bound: either order
    order.BeginKind("memory.limit_in_bytes", -1, 1024);
    order.OnWrite(Level::kContainer, true);
    order.OnWrite(Level::kPod, true);
  }
}

// --- cgroup hierarchy ----------------------------------------------------

cgroup::Hierarchy PodWithContainer(const std::string& pod,
                                   const std::string& container) {
  cgroup::Hierarchy h;
  const std::string qos = cgroup::Hierarchy::QosPath(
      cgroup::QosClass::kBurstable);
  EXPECT_NE(h.Create(qos, pod), nullptr);
  EXPECT_NE(h.Create(qos + "/" + pod, container), nullptr);
  return h;
}

TEST(AuditDeathTest, CgroupChildAbovePlantedParentBound) {
  cgroup::Hierarchy h = PodWithContainer("pod-a", "c0");
  const std::string qos =
      cgroup::Hierarchy::QosPath(cgroup::QosClass::kBurstable);
  ASSERT_EQ(h.WriteCpuQuota(qos, 100'000), cgroup::WriteResult::kOk);
  // Plant a pod quota above the QoS-level bound, bypassing the EINVAL
  // check the kernel (and Hierarchy) would apply — exactly the corruption
  // a missed ordered write would cause. (Planted at the pod level so only
  // the parent-bound invariant trips, not pod-covers-children too.)
  h.SetCpuQuotaUncheckedForTest(qos + "/pod-a", 150'000);
  EXPECT_DEATH(h.Audit(), "AUDIT VIOLATION.*cgroup.child_within_parent");
}

TEST(AuditDeathTest, CgroupPodBelowChildrenSum) {
  cgroup::Hierarchy h = PodWithContainer("pod-a", "c0");
  const std::string pod = "kubepods/burstable/pod-a";
  ASSERT_NE(h.Create(pod, "c1"), nullptr);
  ASSERT_EQ(h.WriteCpuQuota(pod, 100'000), cgroup::WriteResult::kOk);
  ASSERT_EQ(h.WriteCpuQuota(pod + "/c0", 60'000), cgroup::WriteResult::kOk);
  // Each child individually respects the pod bound, but together they
  // overdraw it — the per-write EINVAL rule cannot see this, only the
  // pod-covers-children sweep can.
  EXPECT_DEATH(h.WriteCpuQuota(pod + "/c1", 60'000),
               "AUDIT VIOLATION.*cgroup.pod_covers_children");
}

// --- MCMF certificates ---------------------------------------------------

TEST(AuditDeathTest, FlowCapacityRespect) {
  flow::MinCostMaxFlow mcmf(4);
  const int a = mcmf.AddArc(0, 1, 5, 1);
  mcmf.AddArc(1, 3, 5, 1);
  mcmf.AddArc(0, 2, 3, 2);
  mcmf.AddArc(2, 3, 3, 2);
  const auto result = mcmf.Solve(0, 3);
  EXPECT_EQ(result.max_flow, 8);
  // Clobber one forward arc's residual: residual + flow no longer equals
  // the arc capacity, which also breaks conservation at its head.
  mcmf.CorruptArcForTest(a, 4);
  EXPECT_DEATH(mcmf.AuditSolution(0, 3, result.max_flow, result.saturated),
               "AUDIT VIOLATION.*flow\\.");
}

TEST(AuditDeathTest, FlowSourceOutflowMismatch) {
  flow::MinCostMaxFlow mcmf(2);
  mcmf.AddArc(0, 1, 5, 1);
  const auto result = mcmf.Solve(0, 1);
  EXPECT_EQ(result.max_flow, 5);
  EXPECT_DEATH(mcmf.AuditSolution(0, 1, result.max_flow + 1,
                                  result.saturated),
               "AUDIT VIOLATION.*flow.source_outflow");
}

TEST(AuditCore, FlowSolveSelfAuditsClean) {
  const std::int64_t before = audit::checks_run();
  flow::MinCostMaxFlow mcmf(4);
  mcmf.AddArc(0, 1, 5, 1);
  mcmf.AddArc(1, 3, 4, 1);
  mcmf.AddArc(0, 2, 3, -2);  // negative cost exercises Bellman-Ford
  mcmf.AddArc(2, 3, 3, 2);
  const auto result = mcmf.Solve(0, 3);
  EXPECT_EQ(result.max_flow, 7);
  EXPECT_GT(audit::checks_run(), before);  // Solve ran AuditSolution itself
}

// --- simulator event heap ------------------------------------------------

TEST(AuditDeathTest, HeapCorruptionCaught) {
  sim::Simulator sim;
  sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [] {});
  sim.ScheduleAt(30, [] {});
  sim.CorruptHeapForTest();  // swap two heap slots, back-indices now stale
  EXPECT_DEATH(sim.AuditHeap(), "AUDIT VIOLATION.*sim\\.heap");
}

TEST(AuditCore, SimulatorSelfAuditsMutations) {
  const std::int64_t before = audit::checks_run();
  sim::Simulator sim;
  // The mutation-site sweep is throttled 1-in-64, so drive well past one
  // throttle window to prove the wiring is live.
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(i, [] {});
  }
  sim.RunAll();
  EXPECT_GT(audit::checks_run(), before);
}

#endif  // TANGO_AUDIT

}  // namespace
}  // namespace tango
