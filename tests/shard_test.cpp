// Tests for the TangoShard conservative parallel simulation engine.
//
// The load-bearing property is byte-identity: any shard count (and the
// deterministic_reference mode) must produce exactly the per-cluster
// digests of the serial run — across seeds, partition strategies, chaos
// scripts, master failovers, and link faults. Everything else (mailbox
// ordering, lookahead, partitioning) exists in service of that contract.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fault/fault_script.h"
#include "k8s/partition.h"
#include "net/topology.h"
#include "shard/engine.h"
#include "shard/mailbox.h"
#include "shard/message.h"

namespace tango::shard {
namespace {

// ---- mailbox --------------------------------------------------------------

ShardMessage Msg(int src, int dst, SimTime deliver, std::uint64_t seq) {
  ShardMessage m;
  m.kind = MsgKind::kStateDelta;
  m.src = ClusterId{src};
  m.dst = ClusterId{dst};
  m.sent = 0;
  m.deliver = deliver;
  m.seq = seq;
  return m;
}

TEST(MailboxGrid, ExchangeMovesOutboxToInbox) {
  MailboxGrid grid(2);
  grid.BeginEpoch(10);
  grid.Send(0, 1, Msg(0, 1, 20, 0));
  grid.Send(1, 0, Msg(1, 0, 30, 0));
  EXPECT_FALSE(grid.Empty());
  grid.Exchange();
  std::vector<ShardMessage> sink;
  grid.Drain(1, sink);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0].deliver, 20);
  sink.clear();
  grid.Drain(0, sink);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0].deliver, 30);
  EXPECT_TRUE(grid.Empty());
  EXPECT_EQ(grid.exchanged(), 2);
  EXPECT_EQ(grid.drained(), 2);
}

TEST(MailboxGrid, DrainSortsByDeliverThenSrcThenSeq) {
  MailboxGrid grid(3);
  grid.BeginEpoch(0);
  // Same deliver time from two sources, plus an earlier message from the
  // higher-numbered source: order must be (deliver, src, seq), regardless
  // of send order.
  grid.Send(2, 0, Msg(5, 0, 50, 7));
  grid.Send(2, 0, Msg(5, 0, 40, 6));
  grid.Send(1, 0, Msg(3, 0, 50, 2));
  grid.Send(1, 0, Msg(3, 0, 50, 1));
  grid.Exchange();
  std::vector<ShardMessage> sink;
  grid.Drain(0, sink);
  ASSERT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink[0].deliver, 40);
  EXPECT_EQ(sink[1].src, ClusterId{3});
  EXPECT_EQ(sink[1].seq, 1u);
  EXPECT_EQ(sink[2].seq, 2u);
  EXPECT_EQ(sink[3].src, ClusterId{5});
}

TEST(MailboxGridDeathTest, SendAtOrBelowEpochBoundAborts) {
  MailboxGrid grid(2);
  grid.BeginEpoch(100);
  EXPECT_DEATH(grid.Send(0, 1, Msg(0, 1, 100, 0)), "lookahead violation");
}

TEST(MailboxGrid, UndrainedInboxSurvivesNextExchange) {
  // A shard that receives nothing one epoch must still see messages from
  // the epoch before (Exchange appends rather than dropping).
  MailboxGrid grid(2);
  grid.BeginEpoch(10);
  grid.Send(0, 1, Msg(0, 1, 20, 0));
  grid.Exchange();
  grid.BeginEpoch(20);
  grid.Send(0, 1, Msg(0, 1, 35, 1));
  grid.Exchange();
  std::vector<ShardMessage> sink;
  grid.Drain(1, sink);
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink[0].seq, 0u);
  EXPECT_EQ(sink[1].seq, 1u);
}

// ---- partitioning ---------------------------------------------------------

std::vector<k8s::ClusterSpec> Specs(std::initializer_list<int> workers) {
  std::vector<k8s::ClusterSpec> out;
  int id = 0;
  for (int w : workers) {
    k8s::ClusterSpec s;
    s.id = ClusterId{id++};
    s.num_workers = w;
    out.push_back(s);
  }
  return out;
}

TEST(Partition, EveryClusterAssignedExactlyOnce) {
  const auto specs = Specs({3, 20, 5, 8, 8, 12, 3, 7});
  for (auto strategy :
       {k8s::PartitionStrategy::kContiguous,
        k8s::PartitionStrategy::kRoundRobin,
        k8s::PartitionStrategy::kWorkerBalanced}) {
    const auto p = k8s::PartitionClusters(specs, 3, strategy);
    EXPECT_EQ(p.num_shards, 3);
    std::set<int> seen;
    for (const auto& shard : p.clusters) {
      for (ClusterId c : shard) {
        EXPECT_TRUE(seen.insert(c.value).second) << "duplicate cluster";
        EXPECT_EQ(p.shard_of_cluster(c),
                  static_cast<int>(&shard - p.clusters.data()));
      }
    }
    EXPECT_EQ(seen.size(), specs.size());
  }
}

TEST(Partition, ShardCountClampedToClusterCount) {
  const auto specs = Specs({4, 4});
  const auto p = k8s::PartitionClusters(
      specs, 16, k8s::PartitionStrategy::kContiguous);
  EXPECT_EQ(p.num_shards, 2);
  const auto p1 = k8s::PartitionClusters(
      specs, 0, k8s::PartitionStrategy::kContiguous);
  EXPECT_EQ(p1.num_shards, 1);
}

TEST(Partition, WorkerBalancedBeatsContiguousOnSkewedSizes) {
  // One giant cluster plus many small ones: balancing by worker count must
  // not put the giant together with extra load while another shard idles.
  const auto specs = Specs({40, 2, 2, 2, 2, 2, 2, 2});
  const auto balanced = k8s::PartitionClusters(
      specs, 2, k8s::PartitionStrategy::kWorkerBalanced);
  const auto counts = k8s::ShardWorkerCounts(specs, balanced);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0] + counts[1], 54);
  EXPECT_EQ(std::max(counts[0], counts[1]), 40);  // giant alone on a shard
}

TEST(Partition, ClusterListsAscendRegardlessOfStrategy) {
  const auto specs = Specs({1, 9, 2, 8, 3, 7, 4, 6});
  const auto p = k8s::PartitionClusters(
      specs, 3, k8s::PartitionStrategy::kWorkerBalanced);
  for (const auto& shard : p.clusters) {
    for (std::size_t i = 1; i < shard.size(); ++i) {
      EXPECT_LT(shard[i - 1], shard[i]);
    }
  }
}

// ---- engine determinism ---------------------------------------------------

EngineConfig BaseConfig(std::uint64_t seed, int num_clusters = 10) {
  EngineConfig cfg;
  for (int c = 0; c < num_clusters; ++c) {
    k8s::ClusterSpec spec;
    spec.num_workers = 4 + (c % 3) * 2;  // heterogeneous shard loads
    cfg.clusters.push_back(spec);
  }
  cfg.model.lc_rps = 30.0;
  cfg.model.be_rps = 6.0;
  cfg.duration = 2 * kSecond;
  cfg.seed = seed;
  return cfg;
}

fault::FaultScript Chaos(std::uint64_t seed,
                         const std::vector<k8s::ClusterSpec>& clusters) {
  fault::ChaosProfile profile;
  profile.seed = seed;
  profile.end = 2 * kSecond;
  profile.master_fails_per_min = 6.0;   // exercises failover + recovery
  profile.crashes_per_min = 30.0;       // node crash/recover churn
  profile.link_faults_per_min = 10.0;   // degradations and partitions
  return fault::GenerateChaos(profile, fault::WorkerIds(clusters),
                              static_cast<int>(clusters.size()));
}

struct RunSummary {
  std::uint64_t digest;
  std::vector<std::uint64_t> cluster_digests;
  ClusterStats totals;
};

RunSummary RunOnce(EngineConfig cfg) {
  ShardEngine engine(std::move(cfg));
  RunResult r = engine.Run();
  return {r.digest, r.cluster_digests, r.totals};
}

TEST(ShardEngine, ByteIdenticalAcrossShardCountsAndSeeds) {
  for (std::uint64_t seed : {1ull, 42ull, 777ull}) {
    EngineConfig base = BaseConfig(seed);
    base.faults = Chaos(seed ^ 0xF00D, base.clusters);
    const RunSummary serial = RunOnce(base);
    for (int shards : {2, 3, 4, 8}) {
      EngineConfig cfg = base;
      cfg.num_shards = shards;
      const RunSummary parallel = RunOnce(cfg);
      EXPECT_EQ(parallel.digest, serial.digest)
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(parallel.cluster_digests, serial.cluster_digests);
      EXPECT_EQ(parallel.totals.lc_completed, serial.totals.lc_completed);
      EXPECT_EQ(parallel.totals.be_completed, serial.totals.be_completed);
      EXPECT_EQ(parallel.totals.failovers, serial.totals.failovers);
      EXPECT_EQ(parallel.totals.msgs_sent, serial.totals.msgs_sent);
    }
  }
}

TEST(ShardEngine, DeterministicReferenceMatchesParallel) {
  EngineConfig base = BaseConfig(5);
  base.faults = Chaos(99, base.clusters);
  base.num_shards = 4;

  EngineConfig ref = base;
  ref.deterministic_reference = true;
  const RunSummary a = RunOnce(ref);
  const RunSummary b = RunOnce(base);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.cluster_digests, b.cluster_digests);
}

TEST(ShardEngine, PartitionStrategyDoesNotChangeResults) {
  EngineConfig base = BaseConfig(13);
  base.faults = Chaos(13, base.clusters);
  base.num_shards = 3;
  std::vector<std::uint64_t> digests;
  for (auto strategy :
       {k8s::PartitionStrategy::kContiguous,
        k8s::PartitionStrategy::kRoundRobin,
        k8s::PartitionStrategy::kWorkerBalanced}) {
    EngineConfig cfg = base;
    cfg.partition_strategy = strategy;
    digests.push_back(RunOnce(cfg).digest);
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
}

TEST(ShardEngine, ShorterEpochOverrideKeepsIdentity) {
  // Running with a smaller-than-necessary lookahead adds barriers but must
  // not change any cluster's event stream.
  EngineConfig base = BaseConfig(21);
  base.num_shards = 2;
  const RunSummary a = RunOnce(base);
  EngineConfig cfg = base;
  cfg.epoch_override = 1 * kMillisecond;  // < MinCrossClusterLatency (2ms+)
  const RunSummary b = RunOnce(cfg);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(ShardEngine, MasterFailoverIsDeterministicAndCounted) {
  // Deterministic script (no chaos): fail two masters, recover one.
  EngineConfig base = BaseConfig(3);
  base.faults.FailMasterFor(300 * kMillisecond, 800 * kMillisecond,
                            ClusterId{2});
  base.faults.FailMaster(500 * kMillisecond, ClusterId{7});
  const RunSummary serial = RunOnce(base);
  EXPECT_GT(serial.totals.failovers, 0);
  for (int shards : {2, 5}) {
    EngineConfig cfg = base;
    cfg.num_shards = shards;
    const RunSummary parallel = RunOnce(cfg);
    EXPECT_EQ(parallel.digest, serial.digest) << "shards=" << shards;
    EXPECT_EQ(parallel.totals.failovers, serial.totals.failovers);
  }
}

TEST(ShardEngine, LinkFaultsStayIdenticalAcrossPartitions) {
  EngineConfig base = BaseConfig(8);
  base.faults.DegradeLink(200 * kMillisecond, ClusterId{0}, ClusterId{1},
                          3.0, 0.5);
  base.faults.Partition(400 * kMillisecond, ClusterId{2}, ClusterId{3});
  base.faults.Heal(1200 * kMillisecond, ClusterId{2}, ClusterId{3});
  base.faults.RestoreLink(1500 * kMillisecond, ClusterId{0}, ClusterId{1});
  const RunSummary serial = RunOnce(base);
  EngineConfig cfg = base;
  cfg.num_shards = 4;
  const RunSummary parallel = RunOnce(cfg);
  EXPECT_EQ(parallel.digest, serial.digest);
  EXPECT_EQ(parallel.totals.msgs_lost, serial.totals.msgs_lost);
}

// ---- engine mechanics -----------------------------------------------------

TEST(ShardEngine, LookaheadDerivedFromTopologyMinLatency) {
  EngineConfig cfg = BaseConfig(2);
  ShardEngine engine(std::move(cfg));
  EXPECT_EQ(engine.lookahead(),
            engine.topology().MinCrossClusterLatency());
  EXPECT_GE(engine.lookahead(), net::LinkParams{}.wan_base_latency);
}

TEST(ShardEngineDeathTest, EpochOverrideAboveLookaheadRefused) {
  EngineConfig cfg = BaseConfig(2);
  cfg.epoch_override = 10 * kSecond;  // way beyond any WAN latency
  EXPECT_DEATH(ShardEngine{std::move(cfg)}, "conservative lookahead");
}

TEST(ShardEngine, MailboxConservationAndProgress) {
  EngineConfig cfg = BaseConfig(4);
  cfg.num_shards = 4;
  ShardEngine engine(std::move(cfg));
  const RunResult r = engine.Run();
  EXPECT_GT(r.executed_events, 0u);
  EXPECT_GT(r.epochs, 0);
  EXPECT_GT(r.mailbox_exchanged, 0);
  // Conservation: a message can only be drained after it was exchanged.
  // The two differ exactly by the end-of-run in-flight tail — messages
  // sent in the final epochs whose delivery lies past `duration`.
  EXPECT_LE(r.mailbox_drained, r.mailbox_exchanged);
  EXPECT_LT(r.mailbox_exchanged - r.mailbox_drained, 200);
  EXPECT_GT(r.totals.lc_completed, 0);
  EXPECT_GT(r.totals.be_completed, 0);
  EXPECT_GT(r.qos_rate(), 0.5);
}

TEST(ShardEngine, SingleClusterRunsWithoutCrossTraffic) {
  EngineConfig cfg;
  k8s::ClusterSpec spec;
  spec.num_workers = 8;
  cfg.clusters.push_back(spec);
  cfg.duration = 1 * kSecond;
  ShardEngine engine(std::move(cfg));
  const RunResult r = engine.Run();
  EXPECT_EQ(r.mailbox_exchanged, 0);
  EXPECT_GT(r.totals.lc_completed, 0);
}

TEST(ShardEngine, TracersMergeAcrossShards) {
  EngineConfig cfg = BaseConfig(6, 6);
  cfg.num_shards = 3;
  cfg.trace = true;
  cfg.trace_capacity = 1 << 10;
  ShardEngine engine(std::move(cfg));
  (void)engine.Run();
  const auto tracers = engine.tracers();
  ASSERT_EQ(tracers.size(), 3u);
  std::size_t spans = 0;
  for (const auto* t : tracers) spans += t->Snapshot().size();
  EXPECT_GT(spans, 0u);
}

}  // namespace
}  // namespace tango::shard
